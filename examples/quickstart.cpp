// Quickstart: build a small circuit, simulate it exactly, inspect amplitudes
// in the algebraic representation, and measure.
//
//   $ ./quickstart
#include <iostream>

#include "circuit/circuit.hpp"
#include "core/simulator.hpp"
#include "support/rng.hpp"

int main() {
  using namespace sliq;

  // 1. Build a circuit with the fluent builder API.
  QuantumCircuit circuit(3, "quickstart");
  circuit.h(0).cx(0, 1).t(1).h(2).cz(2, 0);

  // 2. Simulate it on the bit-sliced BDD engine. Everything is exact: no
  //    floating point number enters until *you* ask for one.
  SliqSimulator sim(3);
  sim.run(circuit);

  std::cout << "circuit : " << circuit.summary() << "\n";
  std::cout << "k scalar: " << sim.kScalar()
            << "   bit width r: " << sim.bitWidth() << "\n\n";

  // 3. Inspect exact amplitudes: (a·ω³ + b·ω² + c·ω + d)/√2ᵏ.
  std::cout << "exact amplitudes:\n";
  for (std::uint64_t i = 0; i < 8; ++i) {
    const AlgebraicComplex amp = sim.amplitude(i);
    if (amp.isZero()) continue;
    const auto numeric = amp.toComplex();
    std::cout << "  |" << ((i >> 2) & 1) << ((i >> 1) & 1) << (i & 1)
              << "⟩  " << amp.toString() << "  ≈ (" << numeric.real() << ", "
              << numeric.imag() << "i)\n";
  }

  // 4. Probabilities are computed from exact Z[√2] weights.
  std::cout << "\nPr[q0 = 1] = " << sim.probabilityOne(0) << "\n";
  std::cout << "Σ|α|²      = " << sim.totalProbability() << " (exactly 1)\n";

  // 5. Measure qubit 0 (collapse) and sample the rest.
  Rng rng(/*seed=*/2024);
  const bool q0 = sim.measure(0, rng.uniform());
  std::cout << "\nmeasured q0 -> " << q0 << "\n";
  const auto bits = sim.sampleAll(rng);
  std::cout << "sampled basis state: |";
  for (unsigned q = 3; q-- > 0;) std::cout << bits[q];
  std::cout << "⟩\n";
  return 0;
}
