// Grover search on the exact engine: success probability per iteration,
// computed from exact amplitudes (no sampling noise).
//
//   $ ./grover_search [qubits] [marked]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace sliq;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 10;
  const std::uint64_t marked =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0)
               : (0xB5ull & ((1ull << n) - 1));

  const unsigned optimal = static_cast<unsigned>(
      0.785398 * std::sqrt(static_cast<double>(1ull << n)));
  std::cout << "Grover over " << n << " qubits, marked item " << marked
            << ", optimal iterations ≈ " << optimal << "\n\n";
  std::cout << "iters  Pr[marked]\n";

  WallTimer timer;
  for (unsigned iters : {1u, optimal / 4, optimal / 2, optimal,
                         optimal + optimal / 2}) {
    if (iters == 0) continue;
    SliqSimulator sim(n);
    sim.run(groverSearch(n, marked, iters));
    const double p =
        std::norm(sim.amplitude(marked).toComplex() *
                  sim.normalizationCorrection());
    std::printf("%5u  %.6f%s\n", iters, p,
                iters == optimal ? "   <- optimal" : "");
  }
  std::cout << "\ntotal time: " << timer.seconds() << " s\n";
  return 0;
}
