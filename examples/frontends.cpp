// Frontends: drive the simulator from OpenQASM 2.0 text and from a RevLib
// .real reversible netlist, including the paper's "H-modification" that
// turns classical netlists into genuinely quantum workloads (Table IV).
//
//   $ ./frontends
#include <iostream>

#include "circuit/qasm.hpp"
#include "circuit/real_format.hpp"
#include "core/simulator.hpp"

int main() {
  using namespace sliq;

  // --- OpenQASM 2.0 ---------------------------------------------------
  const std::string qasm = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[4];
    h q[0];
    cx q[0],q[1];
    t q[1];
    ccx q[0],q[1],q[2];
    rx(pi/2) q[3];
  )";
  const QuantumCircuit fromQasm = parseQasmString(qasm, "from_qasm");
  SliqSimulator qasmSim(4);
  qasmSim.run(fromQasm);
  std::cout << "QASM circuit: " << fromQasm.summary() << "\n";
  std::cout << "  Σ|α|² = " << qasmSim.totalProbability() << "\n";
  std::cout << "  round-trip QASM:\n" << toQasmString(fromQasm) << "\n";

  // --- RevLib .real ----------------------------------------------------
  const std::string real = R"(
    .version 2.0
    .numvars 5
    .variables a b c d e
    .constants --0-0
    .begin
    t1 a
    t2 a b
    t3 a b c
    t4 a b c d
    f3 a d e
    .end
  )";
  const RealProgram program = parseRealString(real, "from_real");
  std::cout << "RevLib circuit: " << program.circuit.summary()
            << " (constants '" << program.constants << "')\n";

  // Original: classical reversible run.
  SliqSimulator orig(5);
  orig.run(instantiateOriginal(program, /*seed=*/1));
  std::cout << "  original (classical inputs): Σ|α|² = "
            << orig.totalProbability() << ", r = " << orig.bitWidth() << "\n";

  // Modified: superpose the unspecified inputs with Hadamards (paper §IV).
  const QuantumCircuit modified = modifyWithHadamards(program);
  SliqSimulator mod(5);
  mod.run(modified);
  std::cout << "  H-modified (quantum): " << modified.summary() << "\n";
  std::cout << "    Pr[e=1] = " << mod.probabilityOne(4)
            << ", state nodes = " << mod.stateNodeCount() << "\n";
  return 0;
}
