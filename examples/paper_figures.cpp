// Regenerates the paper's two figures from live data structures, as
// Graphviz files:
//
//   Fig. 1 — "Bit-slicing algebraic numbers with BDDs": one DOT file per
//            nonzero slice BDD F_{a_j}..F_{d_j} of a small example state.
//   Fig. 2 — "Monolithic BDD F for measurement": the hyper-function BDD of
//            Eq. 12 with qubit variables above the encoding variables.
//
//   $ ./paper_figures [outdir]     (default: .)
//   $ dot -Tpng fig2_monolithic.dot -o fig2.png
#include <fstream>
#include <iostream>
#include <string>

#include "bdd/dot.hpp"
#include "circuit/circuit.hpp"
#include "core/simulator.hpp"

int main(int argc, char** argv) {
  using namespace sliq;
  const std::string outdir = argc > 1 ? argv[1] : ".";

  // The running example: a 3-qubit state with genuinely mixed coefficients.
  QuantumCircuit circuit(3, "figure_state");
  circuit.h(0).t(0).cx(0, 1).h(2).s(2).cz(1, 2);
  SliqSimulator sim(3);
  sim.run(circuit);

  std::vector<std::string> varNames;
  for (unsigned q = 0; q < 3; ++q) varNames.push_back("q" + std::to_string(q));
  // Encoding variables appear after the first measurement-structure build.
  varNames.push_back("x0");
  varNames.push_back("x1");
  for (unsigned j = 0; j < 8; ++j) varNames.push_back("e" + std::to_string(j));

  // --- Fig. 1: the 4r slice BDDs --------------------------------------
  const char* vec = "abcd";
  unsigned written = 0;
  for (unsigned v = 0; v < 4; ++v) {
    for (unsigned bit = 0; bit < sim.bitWidth(); ++bit) {
      const bdd::Bdd& f = sim.slice(v, bit);
      if (f.isZero()) continue;
      const std::string path = outdir + "/fig1_slice_" + vec[v] +
                               std::to_string(bit) + ".dot";
      std::ofstream os(path);
      bdd::writeDot(sim.bddManager(), f.edge(), os, varNames);
      std::cout << "wrote " << path << " (" << f.nodeCount() << " nodes)\n";
      ++written;
    }
  }
  std::cout << "Fig. 1: " << written << " nonzero slices of r = "
            << sim.bitWidth() << ", k = " << sim.kScalar() << "\n";

  // --- Fig. 2: the monolithic measurement BDD --------------------------
  const bdd::Bdd mono = sim.monolithicForInspection();
  const std::string path = outdir + "/fig2_monolithic.dot";
  std::ofstream os(path);
  bdd::writeDot(sim.bddManager(), mono.edge(), os, varNames);
  std::cout << "wrote " << path << " (" << mono.nodeCount()
            << " nodes; qubit variables above x0,x1 and the bit-index "
               "encoding variables, as in the paper's Fig. 2)\n";
  return 0;
}
