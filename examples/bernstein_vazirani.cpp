// Bernstein–Vazirani at a scale no dense simulator can touch: recover a
// 2000-bit secret in one query (paper Table V runs up to 29999 gates; the
// QMDD baseline segfaults/errors out at 90+ qubits, the bit-sliced engine
// is linear).
//
//   $ ./bernstein_vazirani [qubits]
#include <cstdlib>
#include <iostream>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace sliq;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 2000;

  Rng rng(7);
  std::vector<bool> secret(n);
  for (unsigned q = 0; q < n; ++q) secret[q] = rng.flip();

  const QuantumCircuit circuit = bernsteinVazirani(n, secret);
  std::cout << "circuit: " << circuit.summary() << "\n";

  WallTimer timer;
  SliqSimulator sim(n + 1);
  sim.run(circuit);
  const double simSeconds = timer.seconds();

  timer.reset();
  const auto bits = sim.sampleAll(rng);
  const double sampleSeconds = timer.seconds();

  unsigned correct = 0;
  for (unsigned q = 0; q < n; ++q) correct += bits[q] == secret[q];
  std::cout << "recovered " << correct << "/" << n << " secret bits "
            << (correct == n ? "(exact!)" : "(MISMATCH — bug!)") << "\n";
  std::cout << "simulate: " << simSeconds << " s, sample: " << sampleSeconds
            << " s\n";
  std::cout << "peak BDD nodes: " << sim.stats().peakLiveNodes
            << ", final bit width r = " << sim.bitWidth() << "\n";
  return correct == n ? 0 : 1;
}
