// Quantum teleportation — the canonical dynamic circuit (README walkthrough).
//
// q0 carries the payload |ψ⟩ = S·H|0⟩ = |+i⟩ (Clifford, so even the chp
// engine runs this file); q1/q2 share a Bell pair. A Bell measurement of
// (q0, q1) into creg c steers the Pauli corrections on q2: afterwards q2
// is exactly |ψ⟩ for every one of the four equally likely outcomes, and
// ⟨Y⟩ on q2 is +1. With c = c[0] + 2·c[1], the X correction fires when
// c[1] = 1 (c ∈ {2,3}) and the Z correction when c[0] = 1 (c ∈ {1,3}).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[2];
// payload
h q[0];
s q[0];
// Bell pair q1-q2
h q[1];
cx q[1],q[2];
// Bell measurement of (q0, q1)
cx q[0],q[1];
h q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
// classically-controlled corrections
if (c==2) x q[2];
if (c==3) x q[2];
if (c==1) z q[2];
if (c==3) z q[2];
