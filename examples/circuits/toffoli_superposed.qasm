// Toffoli on a superposed control pair — non-Clifford (chp rejects it),
// exercising the exact engine's multi-controlled path and T-count handling.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
h q[1];
t q[0];
tdg q[1];
ccx q[0],q[1],q[2];
s q[2];
