// GHZ ("entanglement") preparation at thousands of qubits, the paper's
// Table V family — with a cross-check against the CHP-style stabilizer
// simulator, exactly as the paper compares against CHP.
//
//   $ ./ghz_at_scale [qubits]
#include <cstdlib>
#include <iostream>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "stabilizer/stabilizer.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace sliq;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 3000;
  const QuantumCircuit circuit = entanglementCircuit(n);
  std::cout << "circuit: " << circuit.summary() << "\n\n";

  {
    WallTimer timer;
    SliqSimulator sim(n);
    sim.run(circuit);
    std::cout << "bit-sliced BDD engine: " << timer.seconds() << " s, "
              << sim.stateNodeCount() << " state nodes\n";
    std::cout << "  Pr[q0=1] = " << sim.probabilityOne(0)
              << "  Pr[q" << n - 1 << "=1] = " << sim.probabilityOne(n - 1)
              << "\n";
    Rng rng(3);
    const auto bits = sim.sampleAll(rng);
    bool allEqual = true;
    for (unsigned q = 1; q < n; ++q) allEqual &= bits[q] == bits[0];
    std::cout << "  sampled outcome perfectly correlated: "
              << (allEqual ? "yes" : "NO (bug!)") << "\n";
  }
  {
    WallTimer timer;
    StabilizerSimulator chp(n);
    chp.run(circuit);
    Rng rng(3);
    const bool first = chp.measure(0, rng);
    bool allEqual = true;
    for (unsigned q = 1; q < n; ++q) allEqual &= chp.measure(q, rng) == first;
    std::cout << "CHP stabilizer engine: " << timer.seconds()
              << " s (specialized Clifford simulator; fastest, as the paper "
                 "notes)\n";
    std::cout << "  outcomes correlated: " << (allEqual ? "yes" : "NO") << "\n";
  }
  return 0;
}
