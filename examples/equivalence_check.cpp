// Exact equivalence checking (the SliQEC-style extension): verify known
// circuit identities, catch a subtle bug, and validate the peephole
// optimizer — all with zero numerical tolerance.
//
//   $ ./equivalence_check
#include <iostream>

#include "circuit/generators.hpp"
#include "circuit/optimizer.hpp"
#include "core/equivalence.hpp"
#include "support/timer.hpp"

int main() {
  using namespace sliq;

  auto show = [](const char* what, Equivalence e) {
    std::cout << "  " << what << ": " << toString(e) << "\n";
  };

  std::cout << "textbook identities:\n";
  {
    QuantumCircuit lhs(1), rhs(1);
    lhs.x(0);
    rhs.h(0).z(0).h(0);
    show("X vs H·Z·H", checkEquivalence(lhs, rhs));
  }
  {
    QuantumCircuit lhs(3), rhs(3);
    lhs.cswap(0, 1, 2);
    rhs.cx(2, 1).ccx(0, 1, 2).cx(2, 1);
    show("Fredkin vs CNOT-conjugated Toffoli", checkEquivalence(lhs, rhs));
  }
  {
    QuantumCircuit lhs(1), rhs(1);
    lhs.y(0);
    rhs.z(0).x(0);
    show("Y vs X·Z (differs by global phase i)", checkEquivalence(lhs, rhs));
  }

  std::cout << "\nbug hunting — a single dropped T gate is caught:\n";
  {
    const QuantumCircuit good = randomCircuit(6, 40, 11);
    QuantumCircuit buggy(6, "buggy");
    bool dropped = false;
    for (std::size_t i = 0; i < good.gateCount(); ++i) {
      if (!dropped && good.gate(i).kind == GateKind::kT) {
        dropped = true;  // the "bug": one T gate silently vanishes
        continue;
      }
      buggy.append(good.gate(i));
    }
    show("original vs mutated copy",
         checkEquivalence(good, buggy));
  }

  std::cout << "\noptimizer validation on a random circuit:\n";
  {
    const QuantumCircuit circuit = randomCircuit(8, 120, 5);
    OptimizerReport report;
    const QuantumCircuit optimized = optimizeCircuit(circuit, &report);
    std::cout << "  gates " << report.gatesBefore << " -> "
              << report.gatesAfter << " (cancelled " << report.cancelled
              << ", merged " << report.merged << ")\n";
    WallTimer timer;
    show("original vs optimized", checkEquivalence(circuit, optimized));
    std::cout << "  checked in " << timer.seconds() << " s\n";
  }
  return 0;
}
