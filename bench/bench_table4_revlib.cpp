// Table IV reproduction: RevLib-style reversible circuits, original vs
// H-modified (superposition on unspecified inputs).
//
// Paper shape: both engines handle the classical originals easily; the
// H-modified versions blow the QMDD baseline's memory (MO on most rows)
// while the bit-sliced engine completes them.
#include <iostream>

#include "circuit/generators.hpp"
#include "harness.hpp"
#include "support/table.hpp"

namespace sliq::bench {
namespace {

struct NamedProgram {
  std::string name;
  RealProgram program;
};

std::vector<NamedProgram> benchmarks() {
  std::vector<NamedProgram> out;
  out.push_back({"add8", revlibAdder(scaled(8))});
  out.push_back({"add16", revlibAdder(scaled(16))});
  out.push_back({"cascade24", revlibToffoliCascade(scaled(24), scaled(40), 1)});
  out.push_back({"cascade32", revlibToffoliCascade(scaled(32), scaled(60), 2)});
  out.push_back({"netlist20", revlibRandomNetlist(scaled(20), scaled(80), 3)});
  out.push_back({"netlist28", revlibRandomNetlist(scaled(28), scaled(120), 4)});
  out.push_back({"hwb7", revlibHwb(7)});
  out.push_back({"hwb9", revlibHwb(9)});
  return out;
}

std::string cell(const CaseOutcome& o) {
  switch (o.status) {
    case Status::kOk: return formatSeconds(o.seconds);
    case Status::kTimeout: return "TO";
    case Status::kMemout: return "MO";
    case Status::kNumError: return "error";
    case Status::kCrash: return "seg.";
  }
  return "?";
}

void report(std::ostream& os) {
  AsciiTable table({"Benchmark", "#Qubits", "#G(orig)", "DDSIM*", "Ours",
                    "#G(mod)", "DDSIM*", "Ours"});
  for (const NamedProgram& np : benchmarks()) {
    const QuantumCircuit orig = instantiateOriginal(np.program, 7);
    const QuantumCircuit mod = modifyWithHadamards(np.program);
    // Error column applies to the QMDD baseline only; the exact cells skip
    // the (costly, can't-fire) invariant check to keep timings comparable.
    const CaseOutcome qmO = runCase([&] { return runEngineOnce("qmdd", orig); });
    const CaseOutcome usO =
        runCase([&] { return runEngineOnce("exact", orig, 0, false); });
    const CaseOutcome qmM = runCase([&] { return runEngineOnce("qmdd", mod); });
    const CaseOutcome usM =
        runCase([&] { return runEngineOnce("exact", mod, 0, false); });
    table.addRow({np.name, std::to_string(np.program.circuit.numQubits()),
                  std::to_string(orig.gateCount()), cell(qmO), cell(usO),
                  std::to_string(mod.gateCount()), cell(qmM), cell(usM)});
  }
  os << "Table IV — RevLib-style reversible circuits, original vs H-modified"
     << " (limits: " << benchTimeoutSeconds() << " s / " << benchMemLimitMB()
     << " MiB)\n\n";
  table.print(os);
}

}  // namespace
}  // namespace sliq::bench

int main() {
  sliq::bench::report(std::cout);
  return 0;
}
