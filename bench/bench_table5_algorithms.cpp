// Table V reproduction: quantum algorithm circuits — entanglement (GHZ) and
// Bernstein–Vazirani — plus the paper's CHP side note on GHZ.
//
// Paper shape: GHZ is linear for both DD engines until the QMDD's
// node+weight overhead runs out of memory first; BV drives the QMDD into
// numerical errors / crashes while the bit-sliced engine stays exact; CHP
// (stabilizer) is fastest on GHZ but cannot run BV.
#include <iostream>

#include "circuit/generators.hpp"
#include "harness.hpp"
#include "support/table.hpp"

namespace sliq::bench {
namespace {

std::string cell(const CaseOutcome& o) {
  switch (o.status) {
    case Status::kOk: return formatSeconds(o.seconds);
    case Status::kTimeout: return "TO";
    case Status::kMemout: return "MO";
    case Status::kNumError: return "error";
    case Status::kCrash: return "seg.";
  }
  return "?";
}

void report(std::ostream& os) {
  AsciiTable table({"#Qubits", "GHZ #G", "DDSIM*", "Ours", "CHP", "BV #G",
                    "DDSIM*", "Ours"});
  for (const unsigned base : {100u, 250u, 500u, 1000u, 2000u}) {
    const unsigned n = scaled(base);
    const QuantumCircuit ghz = entanglementCircuit(n);
    const QuantumCircuit bv = bernsteinVazirani(n, std::uint64_t{42});

    // Error column applies to the QMDD baseline only (see table IV note).
    const CaseOutcome ghzQmdd =
        runCase([&] { return runEngineOnce("qmdd", ghz, n - 1); });
    const CaseOutcome ghzOurs =
        runCase([&] { return runEngineOnce("exact", ghz, n - 1, false); });
    const CaseOutcome ghzChp =
        runCase([&] { return runEngineOnce("chp", ghz, n - 1, false); });
    const CaseOutcome bvQmdd =
        runCase([&] { return runEngineOnce("qmdd", bv); });
    const CaseOutcome bvOurs =
        runCase([&] { return runEngineOnce("exact", bv, 0, false); });
    table.addRow({std::to_string(n), std::to_string(ghz.gateCount()),
                  cell(ghzQmdd), cell(ghzOurs), cell(ghzChp),
                  std::to_string(bv.gateCount()), cell(bvQmdd),
                  cell(bvOurs)});
  }
  os << "Table V — quantum algorithm circuits (limits: "
     << benchTimeoutSeconds() << " s / " << benchMemLimitMB() << " MiB)\n";
  os << "CHP runs GHZ only (BV is outside the stabilizer class)\n\n";
  table.print(os);
}

}  // namespace
}  // namespace sliq::bench

int main() {
  sliq::bench::report(std::cout);
  return 0;
}
