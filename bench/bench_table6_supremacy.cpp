// Table VI reproduction: Google quantum-supremacy-style grid circuits at
// reduced depth 5 (the paper's own reduction), with memory usage reported.
//
// Paper shape: DDSIM is faster on the small grids but hits MO as the grids
// grow; the bit-sliced engine is slower but markedly more memory-lean and
// fails by TO instead.
#include <iostream>

#include "circuit/generators.hpp"
#include "harness.hpp"
#include "support/table.hpp"

namespace sliq::bench {
namespace {

constexpr int kSeeds = 3;
constexpr unsigned kDepth = 5;

struct Grid {
  unsigned rows, cols;
};

void report(std::ostream& os) {
  AsciiTable table({"#Qubits", "#Gates", "DDSIM* Time(s)", "Mem(MB)",
                    "TO/MO", "Ours Time(s)", "Mem(MB)", "TO/MO"});
  for (const Grid g : {Grid{4, 4}, Grid{4, 5}, Grid{5, 5}, Grid{5, 6},
                       Grid{6, 6}}) {
    CellStats qm, ours;
    std::size_t gateCount = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const QuantumCircuit c = supremacyGrid(g.rows, g.cols, kDepth, seed);
      gateCount = c.gateCount();
      // Error column applies to the QMDD baseline only (see table IV note).
      qm.add(runCase([&] { return runEngineOnce("qmdd", c); }));
      ours.add(runCase([&] { return runEngineOnce("exact", c, 0, false); }));
    }
    table.addRow({std::to_string(g.rows * g.cols), std::to_string(gateCount),
                  qm.timeCell(), qm.memCell(),
                  std::to_string(qm.timeout) + "/" + std::to_string(qm.memout),
                  ours.timeCell(), ours.memCell(),
                  std::to_string(ours.timeout) + "/" +
                      std::to_string(ours.memout)});
  }
  os << "Table VI — Google supremacy-style grids, depth " << kDepth << " ("
     << kSeeds << " seeds; limits: " << benchTimeoutSeconds() << " s / "
     << benchMemLimitMB() << " MiB)\n\n";
  table.print(os);
}

}  // namespace
}  // namespace sliq::bench

int main() {
  sliq::bench::report(std::cout);
  return 0;
}
