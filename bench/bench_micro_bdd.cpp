// Micro-benchmarks for the BDD kernel (google-benchmark).
#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "support/rng.hpp"

namespace sliq::bdd {
namespace {

Bdd randomFunction(BddManager& mgr, Rng& rng, unsigned vars, unsigned ops) {
  Bdd f = makeVar(mgr, static_cast<unsigned>(rng.below(vars)));
  for (unsigned i = 0; i < ops; ++i) {
    Bdd v = makeVar(mgr, static_cast<unsigned>(rng.below(vars)));
    if (rng.flip()) v = ~v;
    switch (rng.below(3)) {
      case 0: f = f & v; break;
      case 1: f = f | v; break;
      default: f = f ^ v; break;
    }
  }
  return f;
}

void BM_IteRandom(benchmark::State& state) {
  const unsigned vars = static_cast<unsigned>(state.range(0));
  BddManager mgr(BddManager::Config{.initialVars = vars});
  Rng rng(1);
  std::vector<Bdd> pool;
  for (int i = 0; i < 32; ++i)
    pool.push_back(randomFunction(mgr, rng, vars, 12));
  std::size_t i = 0;
  for (auto _ : state) {
    const Bdd& f = pool[i % pool.size()];
    const Bdd& g = pool[(i + 7) % pool.size()];
    const Bdd& h = pool[(i + 13) % pool.size()];
    benchmark::DoNotOptimize(f.ite(g, h).edge().raw);
    ++i;
  }
  state.counters["live_nodes"] =
      static_cast<double>(mgr.liveNodeCount());
}
BENCHMARK(BM_IteRandom)->Arg(16)->Arg(64)->Arg(256);

void BM_Cofactor(benchmark::State& state) {
  const unsigned vars = 64;
  BddManager mgr(BddManager::Config{.initialVars = vars});
  Rng rng(2);
  Bdd f = randomFunction(mgr, rng, vars, 200);
  unsigned v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.cofactor(v % vars, (v & 1) != 0).edge().raw);
    ++v;
  }
}
BENCHMARK(BM_Cofactor);

void BM_XorChain(benchmark::State& state) {
  const unsigned vars = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    BddManager mgr(BddManager::Config{.initialVars = vars});
    Bdd f(&mgr, kFalseEdge);
    for (unsigned v = 0; v < vars; ++v) f = f ^ makeVar(mgr, v);
    benchmark::DoNotOptimize(f.edge().raw);
  }
}
BENCHMARK(BM_XorChain)->Arg(64)->Arg(512)->Arg(4096);

void BM_SatFraction(benchmark::State& state) {
  BddManager mgr(BddManager::Config{.initialVars = 64});
  Rng rng(3);
  Bdd f = randomFunction(mgr, rng, 64, 400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.satFraction(f.edge()));
  }
}
BENCHMARK(BM_SatFraction);

void BM_GarbageCollection(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    BddManager mgr(BddManager::Config{.initialVars = 32});
    Rng rng(4);
    {
      std::vector<Bdd> junk;
      for (int i = 0; i < 200; ++i)
        junk.push_back(randomFunction(mgr, rng, 32, 20));
    }
    state.ResumeTiming();
    mgr.garbageCollect();
    benchmark::DoNotOptimize(mgr.liveNodeCount());
  }
}
BENCHMARK(BM_GarbageCollection);

}  // namespace
}  // namespace sliq::bdd

BENCHMARK_MAIN();
