// --engine auto dispatch bench: planner throughput (plans/sec — the
// analyzer pass plus the portfolio scoring loop) on the three canonical
// workloads, with two built-in correctness gates:
//   1. the planner must pick the expected engine on every fixture (the
//      same selection the CI dispatch smoke asserts through the CLI), and
//   2. a chp-prefix handoff run must agree with the monolithic run to
//      1e-10 on every per-qubit probability.
// Either failing exits 1 — the plan is part of the product surface, not
// just a speed knob.
//
// Output: an ASCII table on stdout plus a JSON record written to
// $SLIQ_BENCH_JSON or BENCH_dispatch.json. The committed baseline pins
// the plans_per_s rates (a plan is pure CPU: one circuit walk plus four
// cost evaluations — fast enough that a regression means the analyzer
// grew an accidental extra pass). Timing keys ("*_s") are context only.
//
// Knobs: SLIQ_BENCH_SCALE percent scales repetition counts (ctest smoke
// runs at 25%); SLIQ_BENCH_JSON overrides the JSON output path.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/dispatch.hpp"
#include "core/engine_registry.hpp"
#include "harness.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace sliq::bench {
namespace {

constexpr unsigned kPlanRepetitions = 2000;
constexpr unsigned kHandoffRepetitions = 8;

QuantumCircuit ghzCircuit(unsigned n) {
  QuantumCircuit c(n, "ghz" + std::to_string(n));
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  return c;
}

QuantumCircuit cliffordPlusT(unsigned n) {
  QuantumCircuit c(n, "clifford_t" + std::to_string(n));
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < n; ++q) c.t(q);
  return c;
}

QuantumCircuit denseRandom(unsigned n, unsigned layers) {
  QuantumCircuit c(n, "dense" + std::to_string(n));
  for (unsigned l = 0; l < layers; ++l) {
    for (unsigned q = 0; q < n; ++q) c.h(q);
    for (unsigned q = 0; q < n; ++q) c.t(q);
    for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  }
  return c;
}

struct PlanCase {
  std::string circuit;
  std::string expected;
  std::string chosen;
  unsigned gates = 0;
  unsigned repetitions = 0;
  double planSeconds = 0;
  bool handoff = false;

  double plansPerSecond() const {
    return planSeconds > 0 ? repetitions / planSeconds : 0;
  }
};

struct HandoffResult {
  std::string circuit;
  std::string engine;
  std::size_t split = 0;
  unsigned repetitions = 0;
  double monolithicSeconds = 0;
  double handoffSeconds = 0;
  double maxAbsProbDiff = 0;
  bool agree = true;
};

void writeJson(const std::vector<PlanCase>& cases, const HandoffResult& h) {
  const char* env = std::getenv("SLIQ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_dispatch.json";
  std::ofstream os(path);
  os << "{\n  \"bench\": \"dispatch\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const PlanCase& r = cases[i];
    os << "    {\"circuit\": \"" << r.circuit << "\", \"expected\": \""
       << r.expected << "\", \"chosen\": \"" << r.chosen
       << "\", \"gates\": " << r.gates
       << ", \"repetitions\": " << r.repetitions
       << ", \"plan_s\": " << r.planSeconds
       << ", \"plans_per_s\": " << r.plansPerSecond()
       << ", \"handoff\": " << (r.handoff ? "true" : "false") << "}"
       << (i + 1 < cases.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"handoff\": {\"circuit\": \"" << h.circuit
     << "\", \"engine\": \"" << h.engine << "\", \"split\": " << h.split
     << ", \"repetitions\": " << h.repetitions
     << ", \"monolithic_s\": " << h.monolithicSeconds
     << ", \"handoff_s\": " << h.handoffSeconds
     << ", \"max_abs_prob_diff\": " << h.maxAbsProbDiff
     << ", \"agree_1e10\": " << (h.agree ? "true" : "false") << "}\n}\n";
  std::cout << "wrote " << path << "\n";
}

std::string round1(double v) {
  std::ostringstream os;
  os.precision(v < 10 ? 1 : 0);
  os << std::fixed << v;
  return os.str();
}

/// One handoff-vs-monolithic agreement + timing pass on the dispatcher's
/// own plan for `circuit` (the engine and split come from planEngine, the
/// same decision the CLI executes).
HandoffResult runHandoffComparison(const QuantumCircuit& circuit) {
  const EnginePlan plan = planEngine(circuit);
  HandoffResult h;
  h.circuit = circuit.name();
  h.engine = plan.chosen;
  h.split = plan.splitIndex;
  h.repetitions = std::max(1u, scaled(kHandoffRepetitions));
  if (!plan.handoff) {
    std::cerr << "ERROR: expected a handoff plan for " << circuit.name()
              << "\n";
    std::exit(1);
  }
  const unsigned n = circuit.numQubits();
  std::unique_ptr<Engine> monolithic;
  {
    WallTimer timer;
    for (unsigned i = 0; i < h.repetitions; ++i) {
      monolithic = makeEngine(plan.chosen, n);
      monolithic->run(circuit);
    }
    h.monolithicSeconds = timer.seconds();
  }
  std::unique_ptr<Engine> split;
  {
    WallTimer timer;
    for (unsigned i = 0; i < h.repetitions; ++i) {
      const std::unique_ptr<Engine> prefix = makeEngine("chp", n);
      for (std::size_t g = 0; g < plan.splitIndex; ++g)
        prefix->applyGate(circuit.gate(g));
      split = makeEngine(plan.chosen, n);
      prefix->exportTo(*split);
      for (std::size_t g = plan.splitIndex; g < circuit.gateCount(); ++g)
        split->applyGate(circuit.gate(g));
    }
    h.handoffSeconds = timer.seconds();
  }
  for (unsigned q = 0; q < n; ++q) {
    h.maxAbsProbDiff =
        std::max(h.maxAbsProbDiff, std::abs(split->probabilityOne(q) -
                                            monolithic->probabilityOne(q)));
  }
  h.agree = h.maxAbsProbDiff <= 1e-10;
  return h;
}

void report() {
  struct Spec {
    QuantumCircuit circuit;
    const char* expected;
  };
  // The three canonical workloads of DESIGN.md §13 (same shapes as the CI
  // dispatch smoke): pure Clifford → chp, wide Clifford+T → exact (dense
  // over budget), narrow dense → statevector.
  const Spec specs[] = {
      {ghzCircuit(16), "chp"},
      {cliffordPlusT(28), "exact"},
      {denseRandom(10, 3), "statevector"},
  };

  std::vector<PlanCase> cases;
  bool allChosen = true;
  for (const Spec& spec : specs) {
    PlanCase r;
    r.circuit = spec.circuit.name();
    r.expected = spec.expected;
    r.gates = static_cast<unsigned>(spec.circuit.gateCount());
    r.repetitions = std::max(1u, scaled(kPlanRepetitions));
    EnginePlan plan;
    {
      WallTimer timer;
      for (unsigned i = 0; i < r.repetitions; ++i)
        plan = planEngine(spec.circuit);
      r.planSeconds = timer.seconds();
    }
    r.chosen = plan.chosen;
    r.handoff = plan.handoff;
    allChosen = allChosen && r.chosen == r.expected;
    cases.push_back(r);
  }

  const HandoffResult handoff = runHandoffComparison(cliffordPlusT(16));

  AsciiTable table({"Circuit", "Gates", "Expected", "Chosen", "Plans/s",
                    "Handoff"});
  for (const PlanCase& r : cases) {
    table.addRow({r.circuit, std::to_string(r.gates), r.expected, r.chosen,
                  round1(r.plansPerSecond()), r.handoff ? "yes" : "no"});
  }
  std::cout << "--engine auto planner throughput (analyzer pass + portfolio "
               "scoring per plan)\n\n";
  table.print(std::cout);
  std::cout << "\nhandoff vs monolithic on " << handoff.circuit << " ("
            << handoff.engine << ", split " << handoff.split
            << "): " << formatSeconds(handoff.handoffSeconds) << " vs "
            << formatSeconds(handoff.monolithicSeconds)
            << ", max |dp| = " << handoff.maxAbsProbDiff << "\n";
  writeJson(cases, handoff);
  if (!allChosen) {
    std::cerr << "ERROR: planner picked an unexpected engine\n";
    std::exit(1);
  }
  if (!handoff.agree) {
    std::cerr << "ERROR: handoff and monolithic runs disagree\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace sliq::bench

int main(int argc, char** argv) {
  sliq::bench::report();
  return sliq::bench::maybeCheckBaseline(argc, argv, "BENCH_dispatch.json");
}
