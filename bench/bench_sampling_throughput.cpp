// Sampling-throughput bench: batched Engine::sampleShots against the
// pre-batching per-shot path, per engine.
//
// The per-shot baselines reproduce what each engine did before the
// persistent MeasurementContext / batched samplers landed:
//   exact        — a fresh measurement context (fresh weight memo) per shot,
//   qmdd, chp    — circuit replay on a throwaway instance per shot,
//   statevector  — full 2^n linear scan per shot.
// Baselines are measured over a capped number of shots and extrapolated
// linearly (each baseline shot is independent, so scaling is exact up to
// noise); the batched path always runs the full shot count.
//
// Output: an ASCII table on stdout plus a JSON record (for the perf
// trajectory artifacts) written to $SLIQ_BENCH_JSON or BENCH_sampling.json.
//
// Knobs: SLIQ_BENCH_SCALE percent scales the shot count (ctest smoke runs
// at 25%); SLIQ_BENCH_JSON overrides the JSON output path.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "core/engine_registry.hpp"
#include "core/measurement_context.hpp"
#include "core/simulator.hpp"
#include "harness.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "stabilizer/stabilizer.hpp"
#include "statevector/statevector.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace sliq::bench {
namespace {

constexpr unsigned kQubits = 16;
constexpr unsigned kFullShots = 10000;

/// Keeps benchmark work observable so the optimizer cannot drop it.
volatile std::uint64_t gSink = 0;
void sink(std::uint64_t v) { gSink = gSink + v; }

struct EngineResult {
  std::string engine;
  std::string circuit;
  unsigned shots = 0;
  unsigned baselineShotsMeasured = 0;
  double batchedSeconds = 0;
  double perShotSecondsExtrapolated = 0;
  double speedup = 0;
  /// Counter snapshot of the batched run (sliq.run_report.v1 JSON),
  /// embedded under the row's "metrics" key — never compared by --check.
  std::string metricsJson;
};

/// 16-qubit Clifford circuit with long-range entanglement (for chp too).
QuantumCircuit cliffordBench() {
  QuantumCircuit c(kQubits, "clifford16");
  c.h(0);
  for (unsigned q = 0; q + 1 < kQubits; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < kQubits; q += 2) c.s(q);
  for (unsigned q = 0; q < kQubits; q += 3) c.h(q);
  for (unsigned q = 0; q + 4 < kQubits; q += 4) c.cz(q, q + 4);
  return c;
}

/// 16-qubit non-Clifford circuit (T layers between entangling chains) that
/// keeps the bit-sliced BDD non-trivial without blowing it up. The depth is
/// chosen so the monolithic weight traversal clearly dominates a single
/// descent — the regime the batched sampler is built for.
QuantumCircuit nonCliffordBench() {
  QuantumCircuit c(kQubits, "tlayer16");
  for (unsigned q = 0; q < kQubits; ++q) c.h(q);
  for (unsigned layer = 1; layer <= 3; ++layer) {
    for (unsigned q = 0; q + layer < kQubits; ++q) c.cx(q, q + layer);
    for (unsigned q = layer - 1; q < kQubits; q += 2) c.t(q);
    for (unsigned q = 0; q + 1 < kQubits; q += 2) c.cz(q, q + 1);
  }
  return c;
}

double timeBatched(const std::string& engine, const QuantumCircuit& c,
                   unsigned shots, std::string* metricsJson) {
  const std::unique_ptr<Engine> e = makeEngine(engine, c.numQubits());
  // Telemetry rides along at full recording cost: the bench measures the
  // instrumented binary exactly as --stats users run it, and the counter
  // snapshot lands next to the throughput row it explains.
  e->metrics().enable();
  e->run(c);
  Rng rng(42);
  WallTimer timer;
  const auto samples = e->sampleShots(shots, rng);
  const double seconds = timer.seconds();
  sink(samples.size());
  *metricsJson = engineMetricsJson(*e);
  return seconds;
}

/// Pre-change per-shot path, measured over `measured` shots.
double timePerShot(const std::string& engine, const QuantumCircuit& c,
                   unsigned measured) {
  Rng rng(42);
  const unsigned n = c.numQubits();
  if (engine == "exact") {
    SliqSimulator sim(n);
    sim.run(c);
    WallTimer timer;
    for (unsigned s = 0; s < measured; ++s) {
      MeasurementContext fresh(sim);  // pre-change: one weight memo per shot
      sink(fresh.sampleAll(rng).size());
    }
    return timer.seconds();
  }
  if (engine == "qmdd") {
    WallTimer timer;
    for (unsigned s = 0; s < measured; ++s) {
      qmdd::QmddSimulator shot(n);  // pre-change: replay + collapse chain
      shot.run(c);
      bool parity = false;
      for (unsigned q = 0; q < n; ++q) parity ^= shot.measure(q, rng.uniform());
      sink(parity ? 1 : 0);
    }
    return timer.seconds();
  }
  if (engine == "chp") {
    WallTimer timer;
    for (unsigned s = 0; s < measured; ++s) {
      StabilizerSimulator shot(n);  // pre-change: replay + collapse chain
      shot.run(c);
      bool parity = false;
      for (unsigned q = 0; q < n; ++q) parity ^= shot.measure(q, rng.uniform());
      sink(parity ? 1 : 0);
    }
    return timer.seconds();
  }
  // statevector: pre-change sampleShot = one full 2^n scan per shot.
  StatevectorSimulator sim(n);
  sim.run(c);
  WallTimer timer;
  for (unsigned s = 0; s < measured; ++s)
    sink(sim.sampleAll(rng.uniform()));
  return timer.seconds();
}

EngineResult runOne(const std::string& engine, const QuantumCircuit& c,
                    unsigned shots) {
  EngineResult r;
  r.engine = engine;
  r.circuit = c.name();
  r.shots = shots;
  r.batchedSeconds = timeBatched(engine, c, shots, &r.metricsJson);
  // Baseline shots are independent, so a capped measurement extrapolates
  // linearly; keep the cap large enough to swamp timer noise.
  r.baselineShotsMeasured = std::min(shots, std::max(32u, shots / 50));
  const double measuredSeconds = timePerShot(engine, c, r.baselineShotsMeasured);
  r.perShotSecondsExtrapolated =
      measuredSeconds * (double(shots) / r.baselineShotsMeasured);
  r.speedup = r.batchedSeconds > 0
                  ? r.perShotSecondsExtrapolated / r.batchedSeconds
                  : 0;
  return r;
}

void writeJson(const std::vector<EngineResult>& results, unsigned shots) {
  const char* env = std::getenv("SLIQ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_sampling.json";
  std::ofstream os(path);
  os << "{\n  \"bench\": \"sampling_throughput\",\n  \"qubits\": " << kQubits
     << ",\n  \"shots\": " << shots << ",\n  \"engines\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const EngineResult& r = results[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"circuit\": \""
       << r.circuit << "\", \"batched_s\": " << r.batchedSeconds
       << ", \"per_shot_s\": " << r.perShotSecondsExtrapolated
       << ", \"baseline_shots_measured\": " << r.baselineShotsMeasured
       << ", \"speedup\": " << r.speedup
       << ", \"metrics\": " << r.metricsJson << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

std::string round2(double v) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << v;
  return os.str();
}

void report() {
  const unsigned shots = scaled(kFullShots);
  const QuantumCircuit clifford = cliffordBench();
  const QuantumCircuit nonClifford = nonCliffordBench();

  std::vector<EngineResult> results;
  for (const std::string& engine : engineNames()) {
    const QuantumCircuit& c = engine == "chp" ? clifford : nonClifford;
    results.push_back(runOne(engine, c, shots));
  }

  AsciiTable table({"Engine", "Circuit", "Shots", "Batched", "Per-shot*",
                    "Speedup"});
  for (const EngineResult& r : results) {
    table.addRow({r.engine, r.circuit, std::to_string(r.shots),
                  formatSeconds(r.batchedSeconds),
                  formatSeconds(r.perShotSecondsExtrapolated),
                  round2(r.speedup) + "x"});
  }
  std::cout << "Sampling throughput — " << kQubits << " qubits, " << shots
            << " shots (batched sampleShots vs pre-batching per-shot path)\n"
            << "*extrapolated from " << results.front().baselineShotsMeasured
            << "+ measured baseline shots\n\n";
  table.print(std::cout);
  writeJson(results, shots);
}

}  // namespace
}  // namespace sliq::bench

int main(int argc, char** argv) {
  sliq::bench::report();
  return sliq::bench::maybeCheckBaseline(argc, argv, "BENCH_sampling.json");
}
