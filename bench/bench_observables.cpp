// Pauli-observable expectation bench: native fast-path throughput
// (terms/sec) per engine against the generic basis-change fallback, with an
// in-bench cross-check that both paths agree to 1e-9 — the differential
// property the tier-1 tests pin at small scale.
//
// Output: an ASCII table on stdout plus a JSON record written to
// $SLIQ_BENCH_JSON or BENCH_observables.json (uploaded by bench.yml).
//
// Reading the numbers: the generic fallback pays 2·|support| gate
// applications plus one probabilityOne per string — on the exact engine
// every X/Y rotation additionally invalidates the persistent measurement
// context, so diagonal (Z-only) observables are where the native signed
// traversal wins biggest (no state mutation at all).
//
// Knobs: SLIQ_BENCH_SCALE percent scales the repetition count (ctest smoke
// runs at 25%); SLIQ_BENCH_JSON overrides the JSON output path.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "harness.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace sliq::bench {
namespace {

constexpr unsigned kFullRepetitions = 40;

/// 16-qubit Clifford circuit with long-range entanglement (same shape as
/// the sampling and noise benches).
QuantumCircuit cliffordBench() {
  QuantumCircuit c(16, "clifford16");
  c.h(0);
  for (unsigned q = 0; q + 1 < 16; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < 16; q += 2) c.s(q);
  for (unsigned q = 0; q < 16; q += 3) c.h(q);
  for (unsigned q = 0; q + 4 < 16; q += 4) c.cz(q, q + 4);
  return c;
}

/// 10-qubit non-Clifford circuit (T layers).
QuantumCircuit tLayerBench() {
  QuantumCircuit c(10, "tlayer10");
  for (unsigned q = 0; q < 10; ++q) c.h(q);
  for (unsigned layer = 1; layer <= 2; ++layer) {
    for (unsigned q = 0; q + layer < 10; ++q) c.cx(q, q + layer);
    for (unsigned q = layer - 1; q < 10; q += 2) c.t(q);
  }
  return c;
}

/// Transverse-field-Ising-style energy: n−1 ZZ couplings + n X fields.
PauliObservable isingObservable(unsigned n) {
  PauliObservable obs;
  for (unsigned q = 0; q + 1 < n; ++q) {
    obs.addTerm(1.0, {{q, Pauli::kZ}, {q + 1, Pauli::kZ}});
  }
  for (unsigned q = 0; q < n; ++q) obs.addTerm(0.5, {{q, Pauli::kX}});
  return obs;
}

/// Diagonal-only variant: the exact engine's zero-mutation fast path.
PauliObservable diagonalObservable(unsigned n) {
  PauliObservable obs;
  for (unsigned q = 0; q + 1 < n; ++q) {
    obs.addTerm(1.0, {{q, Pauli::kZ}, {q + 1, Pauli::kZ}});
  }
  for (unsigned q = 0; q < n; ++q) obs.addTerm(-0.25, {{q, Pauli::kZ}});
  return obs;
}

struct CaseResult {
  std::string engine;
  std::string circuit;
  std::string observable;
  unsigned terms = 0;
  unsigned repetitions = 0;
  double nativeSeconds = 0;
  double genericSeconds = 0;
  double maxAbsDiff = 0;
  bool agree = true;
  /// Counter snapshot of the run (sliq.run_report.v1 JSON), embedded under
  /// the case's "metrics" key — never compared by --check.
  std::string metricsJson;

  double nativeTermsPerSecond() const {
    return nativeSeconds > 0 ? terms * repetitions / nativeSeconds : 0;
  }
  double speedup() const {
    return nativeSeconds > 0 ? genericSeconds / nativeSeconds : 0;
  }
};

struct CaseSpec {
  const char* engine;
  QuantumCircuit (*circuit)();
  PauliObservable (*observable)(unsigned);
  const char* observableName;
};

std::string round1(double v) {
  std::ostringstream os;
  os.precision(v < 10 ? 1 : 0);
  os << std::fixed << v;
  return os.str();
}

void writeJson(const std::vector<CaseResult>& results) {
  const char* env = std::getenv("SLIQ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_observables.json";
  std::ofstream os(path);
  os << "{\n  \"bench\": \"observables\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"circuit\": \""
       << r.circuit << "\", \"observable\": \"" << r.observable
       << "\", \"terms\": " << r.terms
       << ", \"repetitions\": " << r.repetitions
       << ", \"native_s\": " << r.nativeSeconds
       << ", \"generic_s\": " << r.genericSeconds
       << ", \"native_terms_per_s\": " << r.nativeTermsPerSecond()
       << ", \"speedup_vs_generic\": " << r.speedup()
       << ", \"max_abs_diff\": " << r.maxAbsDiff
       << ", \"agree_1e9\": " << (r.agree ? "true" : "false")
       << ", \"metrics\": " << r.metricsJson << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

void report() {
  const CaseSpec specs[] = {
      {"exact", cliffordBench, diagonalObservable, "diag-ising"},
      {"exact", cliffordBench, isingObservable, "tf-ising"},
      {"exact", tLayerBench, isingObservable, "tf-ising"},
      {"qmdd", cliffordBench, isingObservable, "tf-ising"},
      {"qmdd", tLayerBench, isingObservable, "tf-ising"},
      {"chp", cliffordBench, isingObservable, "tf-ising"},
      {"statevector", cliffordBench, isingObservable, "tf-ising"},
      {"statevector", tLayerBench, isingObservable, "tf-ising"},
  };

  std::vector<CaseResult> results;
  for (const CaseSpec& spec : specs) {
    const QuantumCircuit circuit = spec.circuit();
    const PauliObservable obs = spec.observable(circuit.numQubits());
    const unsigned reps = std::max(1u, scaled(kFullRepetitions));

    const std::unique_ptr<Engine> engine =
        makeEngine(spec.engine, circuit.numQubits());
    // Telemetry rides along at full recording cost, same as --stats users
    // run the binary; the snapshot lands next to the rates it explains.
    engine->metrics().enable();
    engine->run(circuit);

    CaseResult r;
    r.engine = spec.engine;
    r.circuit = circuit.name();
    r.observable = spec.observableName;
    r.terms = static_cast<unsigned>(obs.terms().size());
    r.repetitions = reps;

    double native = 0, generic = 0;
    {
      WallTimer timer;
      for (unsigned i = 0; i < reps; ++i) native = engine->expectation(obs);
      r.nativeSeconds = timer.seconds();
    }
    {
      WallTimer timer;
      for (unsigned i = 0; i < reps; ++i)
        generic = genericExpectation(*engine, obs);
      r.genericSeconds = timer.seconds();
    }
    r.maxAbsDiff = std::abs(native - generic);
    r.agree = r.maxAbsDiff <= 1e-9;
    r.metricsJson = engineMetricsJson(*engine);
    results.push_back(r);
  }

  AsciiTable table({"Engine", "Circuit", "Observable", "Terms", "Native",
                    "Generic", "Terms/s", "Speedup", "Agree"});
  bool allAgree = true;
  for (const CaseResult& r : results) {
    allAgree = allAgree && r.agree;
    table.addRow({r.engine, r.circuit, r.observable, std::to_string(r.terms),
                  formatSeconds(r.nativeSeconds),
                  formatSeconds(r.genericSeconds),
                  round1(r.nativeTermsPerSecond()), round1(r.speedup()),
                  r.agree ? "ok" : "DIFF"});
  }
  std::cout << "Pauli-observable expectation throughput (native fast path vs "
               "generic basis-change fallback)\n'Agree' = |native − generic| "
               "<= 1e-9 on every case\n\n";
  table.print(std::cout);
  writeJson(results);
  if (!allAgree) {
    std::cerr << "ERROR: native and generic expectations disagree\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace sliq::bench

int main(int argc, char** argv) {
  sliq::bench::report();
  return sliq::bench::maybeCheckBaseline(argc, argv, "BENCH_observables.json");
}
