// Ablation: integer bit-width policy.
//
// The paper initializes r = 32 and extends on overflow; our default starts
// at the minimal r = 2 and trims redundant sign slices after every
// arithmetic gate. This bench quantifies the difference: slices carried
// per gate translate directly into BDD operations and nodes.
#include <iostream>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "harness.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace sliq::bench {
namespace {

struct Policy {
  const char* name;
  unsigned initialWidth;
  bool trim;
};

void report(std::ostream& os) {
  AsciiTable table({"Policy", "#Qubits", "Time(s)", "final r", "max r",
                    "peak nodes"});
  for (const unsigned n : {scaled(20), scaled(30)}) {
    for (const Policy p : {Policy{"minimal+trim (ours)", 2, true},
                           Policy{"paper r=32, no trim", 32, false},
                           Policy{"minimal, no trim", 2, false}}) {
      const QuantumCircuit c = randomCircuit(n, 3 * n, 1);
      SliqSimulator::Config cfg;
      cfg.initialBitWidth = p.initialWidth;
      cfg.trimBitWidth = p.trim;
      WallTimer timer;
      SliqSimulator sim(n, 0, cfg);
      sim.run(c);
      (void)sim.probabilityOne(0);
      table.addRow({p.name, std::to_string(n), formatSeconds(timer.seconds()),
                    std::to_string(sim.bitWidth()),
                    std::to_string(sim.stats().maxBitWidth),
                    std::to_string(sim.stats().peakLiveNodes)});
    }
  }
  os << "Ablation — bit-width policy on random circuits (3:1 gates)\n\n";
  table.print(os);
}

}  // namespace
}  // namespace sliq::bench

int main() {
  sliq::bench::report(std::cout);
  return 0;
}
