// Benchmark harness shared by the per-table binaries.
//
// Mirrors the paper's methodology (Section IV): every case runs under a
// wall-clock timeout and a memory limit, in a forked child process so that
// timeouts, memory exhaustion, numerical errors and crashes are all
// contained and reported — the TO / MO / err. / seg. columns of
// Tables III–VI.
//
// Environment knobs (all optional):
//   SLIQ_BENCH_TIMEOUT   per-case seconds (default 20)
//   SLIQ_BENCH_MEM_MB    per-case memory limit in MiB (default 512)
//   SLIQ_BENCH_SCALE     workload scale factor in percent (default 100)
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace sliq {
class Engine;  // core/engine_registry.hpp
}

namespace sliq::bench {

enum class Status {
  kOk,
  kTimeout,   // TO
  kMemout,    // MO
  kNumError,  // err.  (probabilities no longer sum to 1)
  kCrash,     // seg.
};

struct CaseOutcome {
  Status status = Status::kOk;
  double seconds = 0;
  double memMB = 0;
};

/// Aggregates one table cell over several seeds, paper-style.
struct CellStats {
  int ok = 0, timeout = 0, memout = 0, numError = 0, crash = 0;
  int memSamples = 0;
  double totalSeconds = 0;
  double totalMemMB = 0;

  void add(const CaseOutcome& o);
  /// "failed" when no case succeeded, else mean runtime of successes.
  std::string timeCell() const;
  std::string failCell() const;  // "TO/MO/err./seg." counts
  std::string memCell() const;   // mean MiB over all cases
};

/// The child body: run the workload; return true when the engine reports a
/// numerical error (paper's 'error' column). Memory/time limits and crashes
/// are handled by the harness. Throwing NodeLimitError/QmddLimitError/
/// bad_alloc inside counts as MO.
using CaseFn = std::function<bool()>;

/// Runs `fn` in a forked child under the configured limits.
CaseOutcome runCase(const CaseFn& fn);

/// The standard child body for one table cell, engine-agnostic: instantiate
/// `engine` through the engine registry (the same code path as the CLI and
/// the cross-engine test), run `c`, touch the measurement-probability
/// pipeline on `probeQubit`, and report the engine's numerical-error
/// criterion — the paper's 'error' column. Use inside runCase:
///   stats.add(runCase([&] { return runEngineOnce("qmdd", c); }));
/// Pass checkNumericalError = false for cells whose table has no error
/// column for that engine: the exact engine's check is a full extra BDD
/// traversal that would otherwise inflate the timed region.
bool runEngineOnce(const std::string& engine, const QuantumCircuit& c,
                   unsigned probeQubit = 0, bool checkNumericalError = true);

double benchTimeoutSeconds();
std::size_t benchMemLimitMB();
/// Scales a workload dimension by SLIQ_BENCH_SCALE percent.
unsigned scaled(unsigned value);

/// `engine`'s sliq.run_report.v1 record as a JSON value, for embedding
/// under a "metrics" key of a bench record (counter snapshots next to the
/// throughput numbers they explain). Keys under a "metrics" path are never
/// compared by the --check gate — telemetry is context, not a baseline.
std::string engineMetricsJson(Engine& engine);

// ---- perf-regression gate (--check) ---------------------------------------
//
// Every bench binary writes a JSON record; the repo commits one baseline
// per binary (BENCH_*.json at the repo root). `bench --check BASELINE`
// runs the bench as usual, then compares every *throughput-like* metric of
// the fresh JSON against the baseline: keys whose last path segment ends
// in "_per_s" or "speedup" (higher = better). Timing keys ("*_s") are NOT
// compared — absolute seconds vary with host load, while throughput ratios
// and normalized rates are the quantities the baselines pin. A metric
// below baseline·(1 − kBenchRegressionTolerance) is a regression.
//
// Exit-code contract: 0 ok, 2 throughput regression (CI treats it as soft
// unless SLIQ_BENCH_STRICT=1), 1 unreadable/malformed baseline — the same
// hard code the benches' internal correctness checks use.

constexpr double kBenchRegressionTolerance = 0.25;

struct BaselineCheck {
  int compared = 0;
  int regressions = 0;
  std::vector<std::string> messages;  // one line per regression
};

/// Flattened key → number view of one JSON file ("engines.0.speedup").
/// Minimal parser covering the bench JSON subset (objects, arrays,
/// numbers, strings, bools, null); throws std::runtime_error on malformed
/// input or unreadable files.
std::map<std::string, double> readJsonNumbers(const std::string& path);

/// Compares the throughput metrics of `currentPath` against
/// `baselinePath`. Metrics present in only one file are ignored (adding a
/// bench row must not fail the gate retroactively).
BaselineCheck checkAgainstBaseline(const std::string& baselinePath,
                                   const std::string& currentPath);

/// Standard main() tail for every bench binary: parses `--check FILE` from
/// argv (returns 0 when absent), compares the JSON the bench just wrote
/// ($SLIQ_BENCH_JSON or `defaultJson`) against FILE, prints a report and
/// returns the exit-code contract above.
int maybeCheckBaseline(int argc, char** argv, const std::string& defaultJson);

}  // namespace sliq::bench
