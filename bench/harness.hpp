// Benchmark harness shared by the per-table binaries.
//
// Mirrors the paper's methodology (Section IV): every case runs under a
// wall-clock timeout and a memory limit, in a forked child process so that
// timeouts, memory exhaustion, numerical errors and crashes are all
// contained and reported — the TO / MO / err. / seg. columns of
// Tables III–VI.
//
// Environment knobs (all optional):
//   SLIQ_BENCH_TIMEOUT   per-case seconds (default 20)
//   SLIQ_BENCH_MEM_MB    per-case memory limit in MiB (default 512)
//   SLIQ_BENCH_SCALE     workload scale factor in percent (default 100)
#pragma once

#include <functional>
#include <string>

#include "circuit/circuit.hpp"

namespace sliq::bench {

enum class Status {
  kOk,
  kTimeout,   // TO
  kMemout,    // MO
  kNumError,  // err.  (probabilities no longer sum to 1)
  kCrash,     // seg.
};

struct CaseOutcome {
  Status status = Status::kOk;
  double seconds = 0;
  double memMB = 0;
};

/// Aggregates one table cell over several seeds, paper-style.
struct CellStats {
  int ok = 0, timeout = 0, memout = 0, numError = 0, crash = 0;
  int memSamples = 0;
  double totalSeconds = 0;
  double totalMemMB = 0;

  void add(const CaseOutcome& o);
  /// "failed" when no case succeeded, else mean runtime of successes.
  std::string timeCell() const;
  std::string failCell() const;  // "TO/MO/err./seg." counts
  std::string memCell() const;   // mean MiB over all cases
};

/// The child body: run the workload; return true when the engine reports a
/// numerical error (paper's 'error' column). Memory/time limits and crashes
/// are handled by the harness. Throwing NodeLimitError/QmddLimitError/
/// bad_alloc inside counts as MO.
using CaseFn = std::function<bool()>;

/// Runs `fn` in a forked child under the configured limits.
CaseOutcome runCase(const CaseFn& fn);

/// The standard child body for one table cell, engine-agnostic: instantiate
/// `engine` through the engine registry (the same code path as the CLI and
/// the cross-engine test), run `c`, touch the measurement-probability
/// pipeline on `probeQubit`, and report the engine's numerical-error
/// criterion — the paper's 'error' column. Use inside runCase:
///   stats.add(runCase([&] { return runEngineOnce("qmdd", c); }));
/// Pass checkNumericalError = false for cells whose table has no error
/// column for that engine: the exact engine's check is a full extra BDD
/// traversal that would otherwise inflate the timed region.
bool runEngineOnce(const std::string& engine, const QuantumCircuit& c,
                   unsigned probeQubit = 0, bool checkNumericalError = true);

double benchTimeoutSeconds();
std::size_t benchMemLimitMB();
/// Scales a workload dimension by SLIQ_BENCH_SCALE percent.
unsigned scaled(unsigned value);

}  // namespace sliq::bench
