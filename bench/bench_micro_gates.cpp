// Micro-benchmarks for the bit-sliced gate kernels (google-benchmark):
// per-gate-kind application cost on a warmed-up entangled state.
#include <benchmark/benchmark.h>

#include <memory>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"

namespace sliq {
namespace {

constexpr unsigned kQubits = 24;

std::unique_ptr<SliqSimulator> makeWarmState() {
  auto sim = std::make_unique<SliqSimulator>(kQubits);
  sim->run(randomCircuit(kQubits, 48, 7));
  return sim;
}

void applyKind(benchmark::State& state, GateKind kind, unsigned numControls) {
  // One warmed simulator per iteration batch; gates cycle over qubits.
  auto sim = makeWarmState();
  unsigned q = 0;
  for (auto _ : state) {
    Gate gate;
    gate.kind = kind;
    const unsigned t = q % kQubits;
    if (kind == GateKind::kSwap) {
      gate.targets = {t, (t + 1) % kQubits};
      for (unsigned c = 0; c < numControls; ++c)
        gate.controls.push_back((t + 2 + c) % kQubits);
    } else {
      gate.targets = {t};
      for (unsigned c = 0; c < numControls; ++c)
        gate.controls.push_back((t + 1 + c) % kQubits);
    }
    sim->applyGate(gate);
    ++q;
  }
  state.counters["r"] = sim->bitWidth();
  state.counters["nodes"] = static_cast<double>(sim->stateNodeCount());
}

void BM_GateX(benchmark::State& s) { applyKind(s, GateKind::kX, 0); }
void BM_GateH(benchmark::State& s) { applyKind(s, GateKind::kH, 0); }
void BM_GateT(benchmark::State& s) { applyKind(s, GateKind::kT, 0); }
void BM_GateS(benchmark::State& s) { applyKind(s, GateKind::kS, 0); }
void BM_GateY(benchmark::State& s) { applyKind(s, GateKind::kY, 0); }
void BM_GateZ(benchmark::State& s) { applyKind(s, GateKind::kZ, 0); }
void BM_GateRx90(benchmark::State& s) { applyKind(s, GateKind::kRx90, 0); }
void BM_GateRy90(benchmark::State& s) { applyKind(s, GateKind::kRy90, 0); }
void BM_GateCnot(benchmark::State& s) { applyKind(s, GateKind::kCnot, 1); }
void BM_GateToffoli(benchmark::State& s) { applyKind(s, GateKind::kCnot, 2); }
void BM_GateCz(benchmark::State& s) { applyKind(s, GateKind::kCz, 1); }
void BM_GateSwap(benchmark::State& s) { applyKind(s, GateKind::kSwap, 0); }
void BM_GateFredkin(benchmark::State& s) { applyKind(s, GateKind::kSwap, 1); }

BENCHMARK(BM_GateX);
BENCHMARK(BM_GateH);
BENCHMARK(BM_GateT);
BENCHMARK(BM_GateS);
BENCHMARK(BM_GateY);
BENCHMARK(BM_GateZ);
BENCHMARK(BM_GateRx90);
BENCHMARK(BM_GateRy90);
BENCHMARK(BM_GateCnot);
BENCHMARK(BM_GateToffoli);
BENCHMARK(BM_GateCz);
BENCHMARK(BM_GateSwap);
BENCHMARK(BM_GateFredkin);

void BM_MeasureProbability(benchmark::State& state) {
  auto sim = makeWarmState();
  unsigned q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->probabilityOne(q % kQubits));
    ++q;
  }
}
BENCHMARK(BM_MeasureProbability);

}  // namespace
}  // namespace sliq

BENCHMARK_MAIN();
