// Gate-kernel micro-bench: fused vs unfused dense execution, thread
// scaling, the QMDD fused path, and the retained bit-sliced BDD per-kind
// rows (DESIGN.md §9).
//
// Sections:
//   dense    — per qubit count (12/16/20), one seeded random circuit run
//              three ways: `legacy` (the pre-blocking reference loops kept
//              here verbatim: pair loop + full 2^n controlled scan),
//              `unfused` (the blocked per-gate kernels), `fused`
//              (QuantumCircuit::fused() blocks — the engine default).
//              fusion_speedup = unfused/fused, total_speedup =
//              legacy/fused (the PR's fusion+blocking acceptance metric).
//   threads  — the 20-qubit fused workload across setThreads(1/2/4/8).
//   qmdd     — fused vs per-gate DD multiplies on one random circuit.
//   bdd      — per-gate-kind application cost on a warmed bit-sliced
//              state (what this binary measured before the rewrite).
//
// Correctness is checked in-binary (legacy vs unfused vs fused amplitudes
// to 1e-12) and fails HARD (exit 1). Throughput lives in BENCH_gates.json
// ($SLIQ_BENCH_JSON overrides); `--check BASELINE` applies the harness
// regression gate (exit 2, soft in CI unless SLIQ_BENCH_STRICT=1).
#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/optimizer.hpp"
#include "core/simulator.hpp"
#include "harness.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "statevector/statevector.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace sliq::bench {
namespace {

constexpr unsigned kDenseGates = 300;
constexpr unsigned kLayeredLayers = 8;
constexpr unsigned kThreadQubits = 20;
constexpr unsigned kQmddQubits = 14;
constexpr unsigned kQmddGates = 120;
constexpr unsigned kBddQubits = 20;
constexpr unsigned kBddGatesPerKind = 16;
constexpr std::uint64_t kSeed = 7;

volatile double gSink = 0;
void sink(double v) { gSink = gSink + v; }

// ---- legacy dense reference (pre-blocking apply loops, kept verbatim) -----

class LegacyStatevector {
 public:
  using Amp = std::complex<double>;

  explicit LegacyStatevector(unsigned numQubits)
      : numQubits_(numQubits),
        state_(std::uint64_t{1} << numQubits, Amp{0, 0}) {
    state_[0] = 1.0;
  }

  const std::vector<Amp>& state() const { return state_; }

  void run(const QuantumCircuit& c) {
    for (const Gate& g : c.gates()) applyGate(g);
  }

  void applyGate(const Gate& g) {
    if (g.kind == GateKind::kSwap) {
      applySwap(g);
      return;
    }
    Amp m[4];
    gateUnitary2x2(g.kind, m);
    if (g.controls.empty()) {
      apply1(g.target(), m);
      return;
    }
    std::uint64_t controlMask = 0;
    for (unsigned c : g.controls) controlMask |= std::uint64_t{1} << c;
    const std::uint64_t stride = std::uint64_t{1} << g.target();
    for (std::uint64_t i0 = 0; i0 < state_.size(); ++i0) {
      if ((i0 & stride) != 0) continue;
      if ((i0 & controlMask) != controlMask) continue;
      const std::uint64_t i1 = i0 | stride;
      const Amp a0 = state_[i0];
      const Amp a1 = state_[i1];
      state_[i0] = m[0] * a0 + m[1] * a1;
      state_[i1] = m[2] * a0 + m[3] * a1;
    }
  }

 private:
  void apply1(unsigned target, const Amp m[4]) {
    const std::uint64_t stride = std::uint64_t{1} << target;
    for (std::uint64_t base = 0; base < state_.size(); base += 2 * stride) {
      for (std::uint64_t off = 0; off < stride; ++off) {
        const std::uint64_t i0 = base + off;
        const std::uint64_t i1 = i0 + stride;
        const Amp a0 = state_[i0];
        const Amp a1 = state_[i1];
        state_[i0] = m[0] * a0 + m[1] * a1;
        state_[i1] = m[2] * a0 + m[3] * a1;
      }
    }
  }

  void applySwap(const Gate& g) {
    std::uint64_t controlMask = 0;
    for (unsigned c : g.controls) controlMask |= std::uint64_t{1} << c;
    const std::uint64_t bit0 = std::uint64_t{1} << g.targets[0];
    const std::uint64_t bit1 = std::uint64_t{1} << g.targets[1];
    for (std::uint64_t i = 0; i < state_.size(); ++i) {
      if ((i & bit0) == 0 || (i & bit1) != 0) continue;
      if ((i & controlMask) != controlMask) continue;
      std::swap(state_[i], state_[(i & ~bit0) | bit1]);
    }
  }

  unsigned numQubits_;
  std::vector<Amp> state_;
};

// ---- timing ---------------------------------------------------------------

// Repeats `fn` until ~0.1 s elapsed; returns mean seconds per repetition.
// One untimed warm-up call first (page-faults the state arrays).
template <typename Fn>
double timeReps(const Fn& fn) {
  fn();
  WallTimer timer;
  fn();
  double elapsed = timer.seconds();
  unsigned reps = 1;
  while (elapsed < 0.1 && reps < 1u << 14) {
    const unsigned extra = reps;  // double the count each round
    for (unsigned i = 0; i < extra; ++i) fn();
    reps += extra;
    elapsed = timer.seconds();
  }
  return elapsed / reps;
}

bool statesAgree(const std::vector<std::complex<double>>& a,
                 const std::vector<std::complex<double>>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-12) return false;
  }
  return true;
}

// ---- sections -------------------------------------------------------------

// Ansatz-style layered workload: an Euler-style 4-gate 1q run on every
// qubit, then a brickwork CX ladder (even/odd pairing alternates per
// layer). This is the circuit family gate fusion targets — each 2-qubit
// block absorbs ~9 gates before the alternating ladder forces a flush —
// whereas randomCircuit's interleaving keeps runs short (~1.7 gates/op).
QuantumCircuit layeredCircuit(unsigned qubits, unsigned layers) {
  QuantumCircuit c(qubits);
  for (unsigned layer = 0; layer < layers; ++layer) {
    for (unsigned q = 0; q < qubits; ++q) c.h(q).t(q).h(q).s(q);
    for (unsigned q = layer % 2; q + 1 < qubits; q += 2) c.cx(q, q + 1);
  }
  return c;
}

struct DenseRow {
  std::string workload;
  unsigned qubits = 0;
  unsigned gates = 0;
  std::size_t fusedOps = 0;
  double legacyPerS = 0, unfusedPerS = 0, fusedPerS = 0;
  double fusionSpeedup = 0, totalSpeedup = 0;
};

// Returns false on a correctness failure (printed; caller exits hard).
bool runDense(const std::string& workload, unsigned qubits,
              const QuantumCircuit& c, std::vector<DenseRow>* rows) {
  const FusedCircuit fc = c.fused();

  LegacyStatevector legacy(qubits);
  legacy.run(c);
  StatevectorSimulator unfused(qubits);
  unfused.run(c);
  StatevectorSimulator fused(qubits);
  fused.runFused(fc);
  if (!statesAgree(legacy.state(), unfused.state()) ||
      !statesAgree(legacy.state(), fused.state())) {
    std::cerr << "FAIL: dense paths disagree beyond 1e-12 at " << qubits
              << " qubits\n";
    return false;
  }

  DenseRow row;
  row.workload = workload;
  row.qubits = qubits;
  row.gates = c.gateCount();
  row.fusedOps = fc.opCount();
  const double legacyS = timeReps([&] {
    LegacyStatevector sim(qubits);
    sim.run(c);
    sink(sim.state()[0].real());
  });
  const double unfusedS = timeReps([&] {
    StatevectorSimulator sim(qubits);
    sim.run(c);
    sink(sim.state()[0].real());
  });
  const double fusedS = timeReps([&] {
    StatevectorSimulator sim(qubits);
    sim.runFused(fc);
    sink(sim.state()[0].real());
  });
  row.legacyPerS = row.gates / legacyS;
  row.unfusedPerS = row.gates / unfusedS;
  row.fusedPerS = row.gates / fusedS;
  row.fusionSpeedup = unfusedS / fusedS;
  row.totalSpeedup = legacyS / fusedS;
  rows->push_back(row);
  return true;
}

struct ThreadRow {
  unsigned threads = 0;
  double gatesPerS = 0;
  double threadSpeedup = 0;  // vs the 1-thread row
};

std::vector<ThreadRow> runThreads() {
  const QuantumCircuit c =
      layeredCircuit(kThreadQubits, std::max(1u, scaled(kLayeredLayers)));
  const FusedCircuit fc = c.fused();
  std::vector<ThreadRow> rows;
  double oneThreadS = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    const double seconds = timeReps([&] {
      StatevectorSimulator sim(kThreadQubits);
      sim.setThreads(threads);
      sim.runFused(fc);
      sink(sim.state()[0].real());
    });
    if (threads == 1) oneThreadS = seconds;
    ThreadRow row;
    row.threads = threads;
    row.gatesPerS = c.gateCount() / seconds;
    row.threadSpeedup = oneThreadS / seconds;
    rows.push_back(row);
  }
  return rows;
}

struct QmddRow {
  unsigned qubits = 0;
  unsigned gates = 0;
  double unfusedPerS = 0, fusedPerS = 0, fusionSpeedup = 0;
};

QmddRow runQmdd() {
  const unsigned gates = scaled(kQmddGates);
  const QuantumCircuit c = randomCircuit(kQmddQubits, gates, kSeed);
  const FusedCircuit fc = c.fused();
  QmddRow row;
  row.qubits = kQmddQubits;
  row.gates = c.gateCount();
  const double unfusedS = timeReps([&] {
    qmdd::QmddSimulator sim(kQmddQubits);
    sim.run(c);
    sink(sim.amplitude(0).real());
  });
  const double fusedS = timeReps([&] {
    qmdd::QmddSimulator sim(kQmddQubits);
    sim.runFused(fc);
    sink(sim.amplitude(0).real());
  });
  row.unfusedPerS = row.gates / unfusedS;
  row.fusedPerS = row.gates / fusedS;
  row.fusionSpeedup = unfusedS / fusedS;
  return row;
}

struct BddRow {
  std::string kind;
  double gatesPerS = 0;
};

std::vector<BddRow> runBdd() {
  struct KindSpec {
    const char* name;
    GateKind kind;
    unsigned controls;
  };
  const KindSpec kinds[] = {{"x", GateKind::kX, 0},
                            {"h", GateKind::kH, 0},
                            {"t", GateKind::kT, 0},
                            {"cx", GateKind::kCnot, 1},
                            {"ccx", GateKind::kCnot, 2}};
  const unsigned perKind = scaled(kBddGatesPerKind);
  std::vector<BddRow> rows;
  for (const KindSpec& spec : kinds) {
    // Fresh warmed state per kind so earlier kinds don't grow the BDD the
    // later ones pay for.
    SliqSimulator sim(kBddQubits);
    sim.run(randomCircuit(kBddQubits, 40, kSeed));
    WallTimer timer;
    for (unsigned i = 0; i < perKind; ++i) {
      Gate gate;
      gate.kind = spec.kind;
      const unsigned t = i % kBddQubits;
      gate.targets = {t};
      for (unsigned cIdx = 0; cIdx < spec.controls; ++cIdx)
        gate.controls.push_back((t + 1 + cIdx) % kBddQubits);
      sim.applyGate(gate);
    }
    const double seconds = timer.seconds();
    sink(static_cast<double>(sim.stateNodeCount()));
    BddRow row;
    row.kind = spec.name;
    row.gatesPerS = seconds > 0 ? perKind / seconds : 0;
    rows.push_back(row);
  }
  return rows;
}

// ---- output ---------------------------------------------------------------

void writeJson(const std::vector<DenseRow>& dense,
               const std::vector<ThreadRow>& threads, const QmddRow& qmdd,
               const std::vector<BddRow>& bdd) {
  const char* env = std::getenv("SLIQ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_gates.json";
  std::ofstream os(path);
  os << "{\n  \"bench\": \"micro_gates\",\n  \"dense\": [\n";
  for (std::size_t i = 0; i < dense.size(); ++i) {
    const DenseRow& r = dense[i];
    os << "    {\"workload\": \"" << r.workload << "\", \"qubits\": "
       << r.qubits << ", \"gates\": " << r.gates
       << ", \"fused_ops\": " << r.fusedOps
       << ", \"legacy_gates_per_s\": " << r.legacyPerS
       << ", \"unfused_gates_per_s\": " << r.unfusedPerS
       << ", \"fused_gates_per_s\": " << r.fusedPerS
       << ", \"fusion_speedup\": " << r.fusionSpeedup
       << ", \"total_speedup\": " << r.totalSpeedup << "}"
       << (i + 1 < dense.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"threads\": [\n";
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const ThreadRow& r = threads[i];
    os << "    {\"threads\": " << r.threads
       << ", \"gates_per_s\": " << r.gatesPerS
       << ", \"thread_speedup\": " << r.threadSpeedup << "}"
       << (i + 1 < threads.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"qmdd\": {\"qubits\": " << qmdd.qubits
     << ", \"gates\": " << qmdd.gates
     << ", \"unfused_gates_per_s\": " << qmdd.unfusedPerS
     << ", \"fused_gates_per_s\": " << qmdd.fusedPerS
     << ", \"fusion_speedup\": " << qmdd.fusionSpeedup << "},\n"
     << "  \"bdd\": [\n";
  for (std::size_t i = 0; i < bdd.size(); ++i) {
    os << "    {\"kind\": \"" << bdd[i].kind
       << "\", \"gates_per_s\": " << bdd[i].gatesPerS << "}"
       << (i + 1 < bdd.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

std::string round2(double v) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << v;
  return os.str();
}

std::string rate(double v) {
  std::ostringstream os;
  os.precision(0);
  os << std::fixed << v;
  return os.str();
}

int report() {
  std::vector<DenseRow> dense;
  for (unsigned qubits : {12u, 16u, 20u}) {
    const QuantumCircuit random =
        randomCircuit(qubits, scaled(kDenseGates), kSeed);
    const QuantumCircuit layered =
        layeredCircuit(qubits, std::max(1u, scaled(kLayeredLayers)));
    // Hard correctness failures (legacy/unfused/fused disagree) exit 1.
    if (!runDense("random", qubits, random, &dense)) return 1;
    if (!runDense("layered", qubits, layered, &dense)) return 1;
  }
  const std::vector<ThreadRow> threads = runThreads();
  const QmddRow qmdd = runQmdd();
  const std::vector<BddRow> bdd = runBdd();

  AsciiTable denseTable({"Workload", "Qubits", "Gates", "Fused ops",
                         "Legacy g/s", "Unfused g/s", "Fused g/s", "Fusion x",
                         "Total x"});
  for (const DenseRow& r : dense) {
    denseTable.addRow({r.workload, std::to_string(r.qubits),
                       std::to_string(r.gates), std::to_string(r.fusedOps),
                       rate(r.legacyPerS), rate(r.unfusedPerS),
                       rate(r.fusedPerS), round2(r.fusionSpeedup),
                       round2(r.totalSpeedup)});
  }
  std::cout << "Dense statevector: legacy loops vs blocked kernels vs fused "
               "blocks\n\n";
  denseTable.print(std::cout);

  AsciiTable threadTable({"Threads", "Gates/s", "Speedup"});
  for (const ThreadRow& r : threads) {
    threadTable.addRow({std::to_string(r.threads), rate(r.gatesPerS),
                        round2(r.threadSpeedup) + "x"});
  }
  std::cout << "\nFused dense workload at " << kThreadQubits
            << " qubits across setThreads(n)\n\n";
  threadTable.print(std::cout);

  std::cout << "\nQMDD " << qmdd.qubits << "q: " << rate(qmdd.unfusedPerS)
            << " gates/s unfused, " << rate(qmdd.fusedPerS)
            << " gates/s fused (" << round2(qmdd.fusionSpeedup) << "x)\n";

  AsciiTable bddTable({"BDD kind", "Gates/s"});
  for (const BddRow& r : bdd) bddTable.addRow({r.kind, rate(r.gatesPerS)});
  std::cout << "\nBit-sliced BDD per-kind application (warmed "
            << kBddQubits << "q state)\n\n";
  bddTable.print(std::cout);

  writeJson(dense, threads, qmdd, bdd);
  return 0;
}

}  // namespace
}  // namespace sliq::bench

int main(int argc, char** argv) {
  const int rc = sliq::bench::report();
  if (rc != 0) return rc;
  return sliq::bench::maybeCheckBaseline(argc, argv, "BENCH_gates.json");
}
