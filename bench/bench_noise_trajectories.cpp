// Noise-trajectory throughput bench: trajectories/sec per engine and
// execution path, swept over worker thread counts, plus an in-bench check
// that counts are bit-identical across thread counts (the determinism
// contract the tier-1 tests pin at small scale).
//
// Output: an ASCII table on stdout plus a JSON record written to
// $SLIQ_BENCH_JSON or BENCH_noise.json (uploaded by bench.yml).
//
// Reading the numbers: the fast path pays one ideal circuit run per worker
// before trajectories stream, so on a machine with fewer cores than
// workers, setup-heavy engines (exact: BDD build + weight memo per worker)
// can show *lower* throughput at higher thread counts — the sweep exists
// precisely to expose that crossover per host.
//
// Knobs: SLIQ_BENCH_SCALE percent scales the trajectory count (ctest smoke
// runs at 25%); SLIQ_BENCH_JSON overrides the JSON output path.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "noise/noise_model.hpp"
#include "noise/trajectory.hpp"
#include "support/table.hpp"

namespace sliq::bench {
namespace {

constexpr unsigned kFullTrajectories = 4000;
constexpr unsigned kThreadSweep[] = {1, 2, 4};

/// 16-qubit Clifford circuit with long-range entanglement — the Pauli-frame
/// fast-path workload (same shape as the sampling bench).
QuantumCircuit cliffordBench() {
  QuantumCircuit c(16, "clifford16");
  c.h(0);
  for (unsigned q = 0; q + 1 < 16; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < 16; q += 2) c.s(q);
  for (unsigned q = 0; q < 16; q += 3) c.h(q);
  for (unsigned q = 0; q + 4 < 16; q += 4) c.cz(q, q + 4);
  return c;
}

/// 10-qubit non-Clifford circuit (T layers) — forces the generic
/// replay-per-trajectory path.
QuantumCircuit tLayerBench() {
  QuantumCircuit c(10, "tlayer10");
  for (unsigned q = 0; q < 10; ++q) c.h(q);
  for (unsigned layer = 1; layer <= 2; ++layer) {
    for (unsigned q = 0; q + layer < 10; ++q) c.cx(q, q + layer);
    for (unsigned q = layer - 1; q < 10; q += 2) c.t(q);
  }
  return c;
}

noise::NoiseModel benchModel() {
  noise::NoiseModel model;
  model.addAfterGate1(noise::PauliChannel::depolarizing1(0.01));
  model.addAfterGate2(noise::PauliChannel::depolarizing2(0.02));
  model.setReadoutFlip(0.015);
  return model;
}

struct CaseResult {
  std::string engine;
  std::string circuit;
  std::string path;  // "fast" or "generic"
  unsigned threads = 0;
  unsigned trajectories = 0;
  double seconds = 0;
  double trajPerSecond = 0;
  bool deterministicVsOneThread = true;
};

struct CaseSpec {
  const char* engine;
  bool forceGeneric;
  /// Relative workload: generic-path engines replay the circuit per
  /// trajectory, so they run a fraction of the full count.
  unsigned divisor;
  QuantumCircuit (*circuit)();
};

std::string round0(double v) {
  std::ostringstream os;
  os.precision(0);
  os << std::fixed << v;
  return os.str();
}

void writeJson(const std::vector<CaseResult>& results) {
  const char* env = std::getenv("SLIQ_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_noise.json";
  std::ofstream os(path);
  os << "{\n  \"bench\": \"noise_trajectories\",\n  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"circuit\": \""
       << r.circuit << "\", \"path\": \"" << r.path
       << "\", \"threads\": " << r.threads
       << ", \"trajectories\": " << r.trajectories
       << ", \"seconds\": " << r.seconds
       << ", \"traj_per_s\": " << r.trajPerSecond
       << ", \"deterministic_vs_1thread\": "
       << (r.deterministicVsOneThread ? "true" : "false") << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

void report() {
  const CaseSpec specs[] = {
      {"chp", false, 1, cliffordBench},
      {"chp", true, 4, cliffordBench},  // fast-path speedup reference
      {"exact", false, 1, cliffordBench},
      {"qmdd", true, 4, tLayerBench},
      {"statevector", true, 4, tLayerBench},
  };

  std::vector<CaseResult> results;
  for (const CaseSpec& spec : specs) {
    const QuantumCircuit circuit = spec.circuit();
    noise::TrajectoryOptions options;
    options.trajectories = scaled(kFullTrajectories) / spec.divisor;
    options.seed = 42;
    options.forceGeneric = spec.forceGeneric;

    std::map<std::string, std::uint64_t> oneThreadCounts;
    for (const unsigned threads : kThreadSweep) {
      options.threads = threads;
      const noise::TrajectoryResult run =
          noise::runTrajectories(spec.engine, circuit, benchModel(), options);
      CaseResult r;
      r.engine = spec.engine;
      r.circuit = circuit.name();
      r.path = run.usedPauliFrameFastPath ? "fast" : "generic";
      r.threads = run.threadsUsed;
      r.trajectories = run.trajectories;
      r.seconds = run.seconds;
      r.trajPerSecond = run.trajectoriesPerSecond();
      if (threads == 1) {
        oneThreadCounts = run.counts;
      } else {
        r.deterministicVsOneThread = run.counts == oneThreadCounts;
      }
      results.push_back(r);
    }
  }

  AsciiTable table({"Engine", "Circuit", "Path", "Threads", "Traj", "Time",
                    "Traj/s", "Det."});
  bool allDeterministic = true;
  for (const CaseResult& r : results) {
    allDeterministic = allDeterministic && r.deterministicVsOneThread;
    table.addRow({r.engine, r.circuit, r.path, std::to_string(r.threads),
                  std::to_string(r.trajectories), formatSeconds(r.seconds),
                  round0(r.trajPerSecond),
                  r.deterministicVsOneThread ? "ok" : "DIFF"});
  }
  std::cout << "Noise-trajectory throughput (model: " << benchModel().summary()
            << ")\n'Det.' = counts bit-identical to the 1-thread run\n\n";
  table.print(std::cout);
  writeJson(results);
  if (!allDeterministic) {
    std::cerr << "ERROR: thread-count determinism violated\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace sliq::bench

int main(int argc, char** argv) {
  sliq::bench::report();
  return sliq::bench::maybeCheckBaseline(argc, argv, "BENCH_noise.json");
}
