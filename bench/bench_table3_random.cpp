// Table III reproduction: random circuits, #gates : #qubits = 3 : 1.
//
// Paper setup: qubit sizes 40..500, 10 seeds, 7200 s TO, 2 GB MO on a Xeon.
// Laptop-scaled defaults: sizes 20..60, 3 seeds, SLIQ_BENCH_TIMEOUT (20 s),
// SLIQ_BENCH_MEM_MB (512). Expected shape (paper): DDSIM degrades into
// MO/error/segfault as qubits grow; the bit-sliced engine stays exact and
// completes far larger instances.
#include <iostream>

#include "circuit/generators.hpp"
#include "harness.hpp"
#include "support/table.hpp"

namespace sliq::bench {
namespace {

constexpr int kSeeds = 3;

void report(std::ostream& os) {
  AsciiTable table({"#Qubits", "#Gates", "DDSIM* Time(s)", "TO/MO/err/seg",
                    "Ours Time(s)", "TO/MO/err/seg"});
  for (const unsigned base : {16u, 24u, 32u, 40u}) {
    const unsigned n = scaled(base);
    const unsigned gates = 2 * n;  // plus the n-gate H layer = 3n total
    CellStats qm, ours;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const QuantumCircuit c = randomCircuit(n, gates, seed);
      qm.add(runCase([&] { return runEngineOnce("qmdd", c); }));
      ours.add(runCase([&] { return runEngineOnce("exact", c); }));
    }
    table.addRow({std::to_string(n), std::to_string(n + gates), qm.timeCell(),
                  qm.failCell(), ours.timeCell(), ours.failCell()});
  }
  os << "Table III — random circuits (gates:qubits = 3:1, " << kSeeds
     << " seeds; limits: " << benchTimeoutSeconds() << " s / "
     << benchMemLimitMB() << " MiB)\n";
  os << "DDSIM* = our QMDD reimplementation of the DDSIM baseline\n\n";
  table.print(os);
}

}  // namespace
}  // namespace sliq::bench

int main() {
  sliq::bench::report(std::cout);
  return 0;
}
