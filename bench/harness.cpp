#include "harness.hpp"

#include <sys/resource.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <stdexcept>

#include "bdd/types.hpp"
#include "core/engine_registry.hpp"
#include "qmdd/qmdd.hpp"
#include "support/memuse.hpp"
#include "support/timer.hpp"

namespace sliq::bench {

namespace {

double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

struct ChildReport {
  int status;  // Status as int
  double seconds;
  double memMB;
};

}  // namespace

double benchTimeoutSeconds() { return envDouble("SLIQ_BENCH_TIMEOUT", 20.0); }
std::size_t benchMemLimitMB() {
  return static_cast<std::size_t>(envDouble("SLIQ_BENCH_MEM_MB", 512.0));
}
unsigned scaled(unsigned value) {
  const double pct = envDouble("SLIQ_BENCH_SCALE", 100.0);
  const double scaledValue = value * pct / 100.0;
  return scaledValue < 1.0 ? 1u : static_cast<unsigned>(scaledValue);
}

std::string engineMetricsJson(Engine& engine) {
  return engine.runMetrics().toJson();
}

bool runEngineOnce(const std::string& engine, const QuantumCircuit& c,
                   unsigned probeQubit, bool checkNumericalError) {
  const std::unique_ptr<Engine> e = makeEngine(engine, c.numQubits());
  e->run(c);
  (void)e->probabilityOne(probeQubit);
  return checkNumericalError && e->numericalError();
}

CaseOutcome runCase(const CaseFn& fn) {
  int pipeFd[2];
  if (pipe(pipeFd) != 0) throw std::runtime_error("pipe() failed");

  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork() failed");

  if (pid == 0) {
    // ---- child ----
    close(pipeFd[0]);
    // Memory limit (address space). Leave headroom for the runtime.
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max =
        (benchMemLimitMB() + 128) * 1024ull * 1024ull;
    setrlimit(RLIMIT_AS, &rl);

    ChildReport report{static_cast<int>(Status::kOk), 0, 0};
    WallTimer timer;
    try {
      const bool numericalError = fn();
      report.seconds = timer.seconds();
      report.status = static_cast<int>(numericalError ? Status::kNumError
                                                      : Status::kOk);
    } catch (const bdd::NodeLimitError&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (const qmdd::QmddLimitError&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (const std::bad_alloc&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (const std::length_error&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (...) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kCrash);
    }
    report.memMB = toMiB(peakRssBytes());
    // Best-effort write; the parent treats missing data as a crash.
    ssize_t ignored = write(pipeFd[1], &report, sizeof report);
    (void)ignored;
    close(pipeFd[1]);
    _exit(0);
  }

  // ---- parent ----
  close(pipeFd[1]);
  const double timeout = benchTimeoutSeconds();
  WallTimer timer;
  int waitStatus = 0;
  bool finished = false;
  while (timer.seconds() < timeout) {
    const pid_t r = waitpid(pid, &waitStatus, WNOHANG);
    if (r == pid) {
      finished = true;
      break;
    }
    usleep(5000);
  }
  CaseOutcome outcome;
  if (!finished) {
    kill(pid, SIGKILL);
    waitpid(pid, &waitStatus, 0);
    close(pipeFd[0]);
    outcome.status = Status::kTimeout;
    outcome.seconds = timeout;
    return outcome;
  }

  ChildReport report{};
  const ssize_t got = read(pipeFd[0], &report, sizeof report);
  close(pipeFd[0]);
  if (got != static_cast<ssize_t>(sizeof report) ||
      (WIFSIGNALED(waitStatus) != 0)) {
    // Child died without reporting: segfault or OOM-kill. An address-space
    // kill usually surfaces as bad_alloc (handled above); a raw signal is
    // the paper's "seg." column.
    outcome.status = Status::kCrash;
    outcome.seconds = timer.seconds();
    return outcome;
  }
  outcome.status = static_cast<Status>(report.status);
  outcome.seconds = report.seconds;
  outcome.memMB = report.memMB;
  // Address-space exhaustion that the child survived shows up as MO.
  if (outcome.status == Status::kOk && report.memMB > benchMemLimitMB())
    outcome.status = Status::kMemout;
  return outcome;
}

void CellStats::add(const CaseOutcome& o) {
  if (o.memMB > 0) {
    totalMemMB += o.memMB;
    ++memSamples;
  }
  switch (o.status) {
    case Status::kOk:
      ++ok;
      totalSeconds += o.seconds;
      break;
    case Status::kTimeout: ++timeout; break;
    case Status::kMemout: ++memout; break;
    case Status::kNumError: ++numError; break;
    case Status::kCrash: ++crash; break;
  }
}

std::string CellStats::timeCell() const {
  if (ok == 0) return "failed";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", totalSeconds / ok);
  return buf;
}

std::string CellStats::failCell() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%d/%d/%d/%d", timeout, memout, numError,
                crash);
  return buf;
}

std::string CellStats::memCell() const {
  // Timed-out children are killed before they can report memory; average
  // over the cases that did report.
  if (memSamples == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", totalMemMB / memSamples);
  return buf;
}

// ---- perf-regression gate (--check) ---------------------------------------

namespace {

// Minimal recursive-descent JSON reader flattening numeric leaves into
// dotted key paths. Covers exactly the subset the bench binaries emit.
class JsonFlattener {
 public:
  explicit JsonFlattener(const std::string& text) : text_(text) {}

  std::map<std::string, double> parse() {
    std::map<std::string, double> out;
    value("", out);
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters");
    return out;
  }

 private:
  void value(const std::string& path, std::map<std::string, double>& out) {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object(path, out);
    if (c == '[') return array(path, out);
    if (c == '"') {
      (void)string();
      return;
    }
    if (c == 't' || c == 'f' || c == 'n') return literal();
    number(path, out);
  }

  void object(const std::string& path, std::map<std::string, double>& out) {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skipWs();
      const std::string key = string();
      skipWs();
      expect(':');
      value(path.empty() ? key : path + "." + key, out);
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void array(const std::string& path, std::map<std::string, double>& out) {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    std::size_t index = 0;
    while (true) {
      value(path + "." + std::to_string(index++), out);
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string string() {
    expect('"');
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      s += text_[pos_++];
    }
    expect('"');
    return s;
  }

  void literal() {
    // true / false / null — uninteresting for the numeric view.
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void number(const std::string& path, std::map<std::string, double>& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    out[path] = std::atof(text_.substr(start, pos_ - start).c_str());
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Throughput metrics only: higher is better by construction. Timing keys
/// ("*_s") are excluded — see harness.hpp. Everything under a "metrics"
/// path segment is a telemetry snapshot (engineMetricsJson), excluded even
/// if a key there happens to match the throughput suffixes.
bool isThroughputKey(const std::string& key) {
  if (key.find("metrics.") != std::string::npos) return false;
  const std::size_t dot = key.rfind('.');
  const std::string leaf = dot == std::string::npos ? key : key.substr(dot + 1);
  return endsWith(leaf, "_per_s") || endsWith(leaf, "speedup");
}

}  // namespace

std::map<std::string, double> readJsonNumbers(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  return JsonFlattener(text).parse();
}

BaselineCheck checkAgainstBaseline(const std::string& baselinePath,
                                   const std::string& currentPath) {
  const std::map<std::string, double> baseline = readJsonNumbers(baselinePath);
  const std::map<std::string, double> current = readJsonNumbers(currentPath);
  BaselineCheck check;
  for (const auto& [key, base] : baseline) {
    if (!isThroughputKey(key)) continue;
    const auto it = current.find(key);
    if (it == current.end() || base <= 0) continue;
    ++check.compared;
    const double floor = base * (1.0 - kBenchRegressionTolerance);
    if (it->second < floor) {
      ++check.regressions;
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "%s: %.4g < %.4g (baseline %.4g - %.0f%% tolerance)",
                    key.c_str(), it->second, floor, base,
                    kBenchRegressionTolerance * 100);
      check.messages.push_back(buf);
    }
  }
  return check;
}

int maybeCheckBaseline(int argc, char** argv, const std::string& defaultJson) {
  std::string baselinePath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "--check requires a baseline JSON path\n";
        return 1;
      }
      baselinePath = argv[i + 1];
    }
  }
  if (baselinePath.empty()) return 0;
  const char* env = std::getenv("SLIQ_BENCH_JSON");
  const std::string currentPath = env != nullptr ? env : defaultJson;
  try {
    const BaselineCheck check = checkAgainstBaseline(baselinePath, currentPath);
    std::cout << "\nbaseline check vs " << baselinePath << ": "
              << check.compared << " throughput metric"
              << (check.compared == 1 ? "" : "s") << " compared, "
              << check.regressions << " regression"
              << (check.regressions == 1 ? "" : "s") << "\n";
    for (const std::string& m : check.messages) {
      std::cout << "  REGRESSION " << m << "\n";
    }
    return check.regressions > 0 ? 2 : 0;
  } catch (const std::exception& e) {
    std::cerr << "baseline check failed: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace sliq::bench
