#include "harness.hpp"

#include <sys/resource.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include "bdd/types.hpp"
#include "core/engine_registry.hpp"
#include "qmdd/qmdd.hpp"
#include "support/memuse.hpp"
#include "support/timer.hpp"

namespace sliq::bench {

namespace {

double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : fallback;
}

struct ChildReport {
  int status;  // Status as int
  double seconds;
  double memMB;
};

}  // namespace

double benchTimeoutSeconds() { return envDouble("SLIQ_BENCH_TIMEOUT", 20.0); }
std::size_t benchMemLimitMB() {
  return static_cast<std::size_t>(envDouble("SLIQ_BENCH_MEM_MB", 512.0));
}
unsigned scaled(unsigned value) {
  const double pct = envDouble("SLIQ_BENCH_SCALE", 100.0);
  const double scaledValue = value * pct / 100.0;
  return scaledValue < 1.0 ? 1u : static_cast<unsigned>(scaledValue);
}

bool runEngineOnce(const std::string& engine, const QuantumCircuit& c,
                   unsigned probeQubit, bool checkNumericalError) {
  const std::unique_ptr<Engine> e = makeEngine(engine, c.numQubits());
  e->run(c);
  (void)e->probabilityOne(probeQubit);
  return checkNumericalError && e->numericalError();
}

CaseOutcome runCase(const CaseFn& fn) {
  int pipeFd[2];
  if (pipe(pipeFd) != 0) throw std::runtime_error("pipe() failed");

  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("fork() failed");

  if (pid == 0) {
    // ---- child ----
    close(pipeFd[0]);
    // Memory limit (address space). Leave headroom for the runtime.
    rlimit rl{};
    rl.rlim_cur = rl.rlim_max =
        (benchMemLimitMB() + 128) * 1024ull * 1024ull;
    setrlimit(RLIMIT_AS, &rl);

    ChildReport report{static_cast<int>(Status::kOk), 0, 0};
    WallTimer timer;
    try {
      const bool numericalError = fn();
      report.seconds = timer.seconds();
      report.status = static_cast<int>(numericalError ? Status::kNumError
                                                      : Status::kOk);
    } catch (const bdd::NodeLimitError&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (const qmdd::QmddLimitError&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (const std::bad_alloc&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (const std::length_error&) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kMemout);
    } catch (...) {
      report.seconds = timer.seconds();
      report.status = static_cast<int>(Status::kCrash);
    }
    report.memMB = toMiB(peakRssBytes());
    // Best-effort write; the parent treats missing data as a crash.
    ssize_t ignored = write(pipeFd[1], &report, sizeof report);
    (void)ignored;
    close(pipeFd[1]);
    _exit(0);
  }

  // ---- parent ----
  close(pipeFd[1]);
  const double timeout = benchTimeoutSeconds();
  WallTimer timer;
  int waitStatus = 0;
  bool finished = false;
  while (timer.seconds() < timeout) {
    const pid_t r = waitpid(pid, &waitStatus, WNOHANG);
    if (r == pid) {
      finished = true;
      break;
    }
    usleep(5000);
  }
  CaseOutcome outcome;
  if (!finished) {
    kill(pid, SIGKILL);
    waitpid(pid, &waitStatus, 0);
    close(pipeFd[0]);
    outcome.status = Status::kTimeout;
    outcome.seconds = timeout;
    return outcome;
  }

  ChildReport report{};
  const ssize_t got = read(pipeFd[0], &report, sizeof report);
  close(pipeFd[0]);
  if (got != static_cast<ssize_t>(sizeof report) ||
      (WIFSIGNALED(waitStatus) != 0)) {
    // Child died without reporting: segfault or OOM-kill. An address-space
    // kill usually surfaces as bad_alloc (handled above); a raw signal is
    // the paper's "seg." column.
    outcome.status = Status::kCrash;
    outcome.seconds = timer.seconds();
    return outcome;
  }
  outcome.status = static_cast<Status>(report.status);
  outcome.seconds = report.seconds;
  outcome.memMB = report.memMB;
  // Address-space exhaustion that the child survived shows up as MO.
  if (outcome.status == Status::kOk && report.memMB > benchMemLimitMB())
    outcome.status = Status::kMemout;
  return outcome;
}

void CellStats::add(const CaseOutcome& o) {
  if (o.memMB > 0) {
    totalMemMB += o.memMB;
    ++memSamples;
  }
  switch (o.status) {
    case Status::kOk:
      ++ok;
      totalSeconds += o.seconds;
      break;
    case Status::kTimeout: ++timeout; break;
    case Status::kMemout: ++memout; break;
    case Status::kNumError: ++numError; break;
    case Status::kCrash: ++crash; break;
  }
}

std::string CellStats::timeCell() const {
  if (ok == 0) return "failed";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", totalSeconds / ok);
  return buf;
}

std::string CellStats::failCell() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%d/%d/%d/%d", timeout, memout, numError,
                crash);
  return buf;
}

std::string CellStats::memCell() const {
  // Timed-out children are killed before they can report memory; average
  // over the cases that did report.
  if (memSamples == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", totalMemMB / memSamples);
  return buf;
}

}  // namespace sliq::bench
