// Ablation: dynamic variable reordering (sifting), which the paper enables
// through CUDD. Reordering is applied every K gates during simulation of
// H-modified reversible netlists — the family where variable order matters
// most — and compared against the natural qubit order.
#include <iostream>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "harness.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace sliq::bench {
namespace {

struct RunResult {
  double seconds;
  std::size_t peakNodes;
  std::size_t finalNodes;
};

RunResult simulate(const QuantumCircuit& c, bool reorder) {
  WallTimer timer;
  SliqSimulator sim(c.numQubits());
  std::size_t sinceReorder = 0;
  for (const Gate& g : c.gates()) {
    sim.applyGate(g);
    if (reorder && ++sinceReorder >= 50) {
      sim.bddManager().reorderSift();
      sinceReorder = 0;
    }
  }
  return RunResult{timer.seconds(), sim.stats().peakLiveNodes,
                   sim.stateNodeCount()};
}

void report(std::ostream& os) {
  AsciiTable table({"Benchmark", "Order", "Time(s)", "peak nodes",
                    "state nodes"});
  struct Bench {
    std::string name;
    QuantumCircuit circuit;
  };
  std::vector<Bench> benches;
  benches.push_back(
      {"cascade20_mod",
       modifyWithHadamards(revlibToffoliCascade(scaled(20), scaled(30), 1))});
  benches.push_back(
      {"netlist16_mod",
       modifyWithHadamards(revlibRandomNetlist(scaled(16), scaled(60), 2))});
  benches.push_back({"random24", randomCircuit(scaled(24), scaled(72), 3)});
  for (const Bench& b : benches) {
    const RunResult natural = simulate(b.circuit, false);
    const RunResult sifted = simulate(b.circuit, true);
    table.addRow({b.name, "natural", formatSeconds(natural.seconds),
                  std::to_string(natural.peakNodes),
                  std::to_string(natural.finalNodes)});
    table.addRow({b.name, "sifting/50g", formatSeconds(sifted.seconds),
                  std::to_string(sifted.peakNodes),
                  std::to_string(sifted.finalNodes)});
  }
  os << "Ablation — dynamic variable reordering (sifting every 50 gates)\n\n";
  table.print(os);
}

}  // namespace
}  // namespace sliq::bench

int main() {
  sliq::bench::report(std::cout);
  return 0;
}
