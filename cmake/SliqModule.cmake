# sliq_add_module(<name> SOURCES <src...> [DEPS <module...>])
#
# Declares the static library sliq_<name> (alias sliq::<name>) for one
# directory under src/.  DEPS name sibling modules; they are linked PUBLIC so
# that include paths and transitive libraries propagate to dependents.
function(sliq_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(sliq_${name} STATIC ${ARG_SOURCES})
  add_library(sliq::${name} ALIAS sliq_${name})
  target_include_directories(sliq_${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_link_libraries(sliq_${name} PUBLIC sliq_build_flags)
  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(sliq_${name} PUBLIC sliq::${dep})
  endforeach()
endfunction()
