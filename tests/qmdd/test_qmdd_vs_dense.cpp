// Cross-validation of the QMDD baseline against the dense simulator and the
// exact bit-sliced engine.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "statevector/statevector.hpp"

namespace sliq::qmdd {
namespace {

class QmddRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QmddRandom, MatchesDenseOnRandomCircuits) {
  const QuantumCircuit c = randomCircuit(5, 30, GetParam());
  QmddSimulator qm(5);
  StatevectorSimulator dense(5);
  qm.run(c);
  dense.run(c);
  for (std::uint64_t i = 0; i < 32; ++i) {
    EXPECT_NEAR(std::abs(qm.amplitude(i) - dense.amplitude(i)), 0, 1e-7)
        << i;
  }
  for (unsigned q = 0; q < 5; ++q)
    EXPECT_NEAR(qm.probabilityOne(q), dense.probabilityOne(q), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QmddRandom,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(QmddVsExact, AgreesWithBitSlicedEngineOnSupremacyGrid) {
  const QuantumCircuit c = supremacyGrid(3, 3, 5, 2);
  QmddSimulator qm(9);
  SliqSimulator exact(9);
  qm.run(c);
  exact.run(c);
  for (unsigned q = 0; q < 9; ++q) {
    EXPECT_NEAR(qm.probabilityOne(q), exact.probabilityOne(q), 1e-6) << q;
  }
}

TEST(QmddVsExact, RxRyAgainstDense) {
  StatevectorSimulator dense(3);
  QmddSimulator qm(3);
  for (const Gate& g :
       {Gate{GateKind::kRx90, {0}, {}}, Gate{GateKind::kRy90, {1}, {}},
        Gate{GateKind::kH, {2}, {}}, Gate{GateKind::kCz, {2}, {0}},
        Gate{GateKind::kRx90, {1}, {}}, Gate{GateKind::kSdg, {0}, {}},
        Gate{GateKind::kTdg, {2}, {}},
        Gate{GateKind::kSwap, {0, 2}, {}},
        Gate{GateKind::kSwap, {1, 2}, {0}}}) {
    dense.applyGate(g);
    qm.applyGate(g);
  }
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(qm.amplitude(i) - dense.amplitude(i)), 0, 1e-7) << i;
}

TEST(QmddPrecision, RoundingAccumulatesUnlikeExactEngine) {
  // Drive both engines through a deep circuit; the exact engine's total
  // probability is exactly 1 while the QMDD's drifts (how far depends on
  // the circuit; we only assert the *sign* of the comparison, i.e. exact
  // engine error == 0, QMDD error >= 0 and measurable on deep circuits).
  const QuantumCircuit c = randomCircuit(6, 400, 99);
  SliqSimulator exact(6);
  exact.run(c);
  const Zroot2 w = exact.totalWeightScaled();
  EXPECT_EQ(w.irrational(), BigInt(0));
  EXPECT_EQ(w.rational(), BigInt(1) << static_cast<unsigned>(exact.kScalar()));

  QmddSimulator qm(6);
  qm.run(c);
  const double qmddError = std::abs(qm.totalProbability() - 1.0);
  // The QMDD stays roughly normalized on this size, but cannot be exact.
  EXPECT_LT(qmddError, 1e-2);
}

}  // namespace
}  // namespace sliq::qmdd
