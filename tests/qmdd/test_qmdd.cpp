#include "qmdd/qmdd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "qmdd/qmdd_sim.hpp"

namespace sliq::qmdd {
namespace {

constexpr double kTol = 1e-9;

TEST(ComplexTable, InternsWithinTolerance) {
  ComplexTable ct;
  const CIndex a = ct.lookup({0.5, 0.25});
  const CIndex b = ct.lookup({0.5 + 1e-12, 0.25 - 1e-12});
  EXPECT_EQ(a, b);
  const CIndex c = ct.lookup({0.5 + 1e-6, 0.25});
  EXPECT_NE(a, c);
}

TEST(ComplexTable, ConstantsPreInterned) {
  ComplexTable ct;
  EXPECT_EQ(ct.lookup({0, 0}), ct.zero());
  EXPECT_EQ(ct.lookup({1, 0}), ct.one());
  EXPECT_TRUE(ct.isZero(ct.lookup({1e-12, -1e-12})));
}

TEST(ComplexTable, Arithmetic) {
  ComplexTable ct;
  const CIndex half = ct.lookup({0.5, 0});
  const CIndex i = ct.lookup({0, 1});
  EXPECT_EQ(ct.mul(half, ct.zero()), ct.zero());
  EXPECT_EQ(ct.mul(half, ct.one()), half);
  const CIndex halfI = ct.mul(half, i);
  EXPECT_NEAR(std::abs(ct.value(halfI) - Complex(0, 0.5)), 0, 1e-12);
  EXPECT_EQ(ct.add(ct.zero(), half), half);
  EXPECT_EQ(ct.div(halfI, i), half);
}

TEST(QmddCore, BasisStateAmplitudes) {
  QmddManager mgr;
  const VEdge v = mgr.makeBasisState(3, {true, false, true});  // |101⟩=5
  EXPECT_NEAR(std::abs(mgr.getAmplitude(v, 3, 0b101) - Complex(1, 0)), 0,
              kTol);
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (i == 0b101) continue;
    EXPECT_NEAR(std::abs(mgr.getAmplitude(v, 3, i)), 0, kTol) << i;
  }
  EXPECT_NEAR(mgr.totalProbability(v, 3), 1.0, kTol);
}

TEST(QmddCore, VectorAddition) {
  QmddManager mgr;
  const VEdge a = mgr.makeBasisState(2, {false, false});
  const VEdge b = mgr.makeBasisState(2, {true, true});
  const VEdge sum = mgr.vAdd(a, b);
  EXPECT_NEAR(std::abs(mgr.getAmplitude(sum, 2, 0) - Complex(1, 0)), 0, kTol);
  EXPECT_NEAR(std::abs(mgr.getAmplitude(sum, 2, 3) - Complex(1, 0)), 0, kTol);
  EXPECT_NEAR(std::abs(mgr.getAmplitude(sum, 2, 1)), 0, kTol);
}

TEST(QmddCore, IdentityMatrixIsNoOp) {
  QmddManager mgr;
  const VEdge v = mgr.makeBasisState(3, {true, true, false});
  const MEdge identity = mgr.makeIdentity(3);
  const VEdge w = mgr.mvMultiply(identity, v);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(std::abs(mgr.getAmplitude(w, 3, i) -
                         mgr.getAmplitude(v, 3, i)),
                0, kTol);
  }
}

TEST(QmddCore, SharingCollapsesEqualSubtrees) {
  QmddManager mgr;
  // Building the same basis state twice returns the identical edge.
  const VEdge a = mgr.makeBasisState(4, {true, false, true, false});
  const VEdge b = mgr.makeBasisState(4, {true, false, true, false});
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.w, b.w);
}

TEST(QmddSim, HadamardAndBell) {
  QmddSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  EXPECT_NEAR(std::abs(sim.amplitude(0) - Complex(1 / std::sqrt(2.0), 0)), 0,
              kTol);
  sim.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  EXPECT_NEAR(std::norm(sim.amplitude(0b00)), 0.5, kTol);
  EXPECT_NEAR(std::norm(sim.amplitude(0b11)), 0.5, kTol);
  EXPECT_NEAR(std::norm(sim.amplitude(0b01)), 0.0, kTol);
  EXPECT_NEAR(sim.totalProbability(), 1.0, kTol);
  EXPECT_TRUE(sim.isNormalized());
}

TEST(QmddSim, MeasurementCollapse) {
  QmddSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  sim.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  const bool outcome = sim.measure(0, 0.3);
  EXPECT_NEAR(sim.probabilityOne(1), outcome ? 1.0 : 0.0, kTol);
  EXPECT_NEAR(sim.totalProbability(), 1.0, kTol);
}

TEST(QmddSim, GhzScalesLinearly) {
  QmddSimulator::Config cfg;
  cfg.dd.gcThreshold = 1024;  // force collections so liveNodes tracks state
  QmddSimulator sim(64, 0, cfg);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  for (unsigned q = 0; q + 1 < 64; ++q)
    sim.applyGate(Gate{GateKind::kCnot, {q + 1}, {q}});
  EXPECT_NEAR(sim.probabilityOne(63), 0.5, kTol);
  // The GHZ state itself is a 64-node chain (plus per-gate temporaries
  // bounded by the GC threshold).
  EXPECT_LT(sim.liveNodes(), 3000u);
}

TEST(QmddSim, NodeLimitThrows) {
  QmddSimulator::Config cfg;
  cfg.dd.maxNodes = 64;
  QmddSimulator sim(16, 0, cfg);
  auto blow = [&] {
    // Random-ish T/H/CX mix entangles and blows up the DD.
    for (unsigned round = 0; round < 8; ++round) {
      for (unsigned q = 0; q < 16; ++q) {
        sim.applyGate(Gate{GateKind::kH, {q}, {}});
        sim.applyGate(Gate{GateKind::kT, {q}, {}});
      }
      for (unsigned q = 0; q + 1 < 16; ++q)
        sim.applyGate(Gate{GateKind::kCnot, {q + 1}, {q}});
    }
  };
  EXPECT_THROW(blow(), QmddLimitError);
}

TEST(QmddSim, GarbageCollectionPreservesState) {
  QmddSimulator sim(6);
  for (unsigned q = 0; q < 6; ++q)
    sim.applyGate(Gate{GateKind::kH, {q}, {}});
  sim.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  sim.applyGate(Gate{GateKind::kT, {2}, {}});
  const double before = sim.probabilityOne(1);
  // Force a GC through the manager-facing path by applying many gates.
  for (int i = 0; i < 50; ++i) sim.applyGate(Gate{GateKind::kX, {3}, {}});
  EXPECT_NEAR(sim.probabilityOne(1), before, kTol);
  EXPECT_NEAR(sim.totalProbability(), 1.0, 1e-6);
}

}  // namespace
}  // namespace sliq::qmdd
