#include "bigint/zroot2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace sliq {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;

double approx(const Zroot2& z) {
  return z.rational().toDouble() + z.irrational().toDouble() * kSqrt2;
}

TEST(Zroot2, DefaultIsZero) {
  Zroot2 z;
  EXPECT_TRUE(z.isZero());
  EXPECT_EQ(z.signum(), 0);
  EXPECT_DOUBLE_EQ(z.toDouble(), 0.0);
}

TEST(Zroot2, Addition) {
  Zroot2 a(BigInt(1), BigInt(2));
  Zroot2 b(BigInt(3), BigInt(-5));
  Zroot2 c = a + b;
  EXPECT_EQ(c.rational(), BigInt(4));
  EXPECT_EQ(c.irrational(), BigInt(-3));
}

TEST(Zroot2, MultiplicationUsesRootTwoSquared) {
  // (1 + √2)(1 + √2) = 3 + 2√2
  Zroot2 a(BigInt(1), BigInt(1));
  Zroot2 sq = a * a;
  EXPECT_EQ(sq.rational(), BigInt(3));
  EXPECT_EQ(sq.irrational(), BigInt(2));
  // (1 + √2)(1 - √2) = -1
  Zroot2 conj(BigInt(1), BigInt(-1));
  Zroot2 prod = a * conj;
  EXPECT_EQ(prod.rational(), BigInt(-1));
  EXPECT_TRUE(prod.irrational().isZero());
}

TEST(Zroot2, SignumExactNearCancellation) {
  // 665857/470832 is a continued-fraction convergent of √2:
  // 665857 - 470832·√2 is positive but ~1e-6; naive doubles can get this
  // wrong at larger convergents.
  EXPECT_EQ(Zroot2(BigInt(665857), BigInt(-470832)).signum(), 1);
  EXPECT_EQ(Zroot2(BigInt(-665857), BigInt(470832)).signum(), -1);
  // Next convergent relationship flips the sign side:
  // 470832·√2 - 665856 > 0.
  EXPECT_EQ(Zroot2(BigInt(-665856), BigInt(470832)).signum(), 1);
}

TEST(Zroot2, SignumPureTerms) {
  EXPECT_EQ(Zroot2(BigInt(5), BigInt(0)).signum(), 1);
  EXPECT_EQ(Zroot2(BigInt(-5), BigInt(0)).signum(), -1);
  EXPECT_EQ(Zroot2(BigInt(0), BigInt(2)).signum(), 1);
  EXPECT_EQ(Zroot2(BigInt(0), BigInt(-2)).signum(), -1);
}

TEST(Zroot2, ToDoubleMatchesNaiveWhenSafe) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t u = static_cast<std::int64_t>(rng.below(1000)) - 500;
    const std::int64_t v = static_cast<std::int64_t>(rng.below(1000)) - 500;
    const Zroot2 z{BigInt(u), BigInt(v)};
    EXPECT_NEAR(z.toDouble(), u + v * kSqrt2, 1e-9) << u << " " << v;
  }
}

TEST(Zroot2, ToDoubleCancellationSafe) {
  // 3 - 2√2 = (√2 - 1)² ≈ 0.17157287525381. Exact to double precision.
  Zroot2 z(BigInt(3), BigInt(-2));
  EXPECT_NEAR(z.toDouble(), 0.17157287525380990, 1e-15);
  // (3 - 2√2)^8: tiny positive number computed from huge coefficients.
  Zroot2 p(BigInt(1), BigInt(0));
  for (int i = 0; i < 8; ++i) p *= z;
  const double expected = std::pow(0.17157287525380990, 8);
  EXPECT_NEAR(p.toDouble() / expected, 1.0, 1e-10);
}

TEST(Zroot2, RatioExact) {
  // (2 + √2) / (1 + √2)... compute approximately.
  Zroot2 num(BigInt(2), BigInt(1));
  Zroot2 den(BigInt(1), BigInt(1));
  EXPECT_NEAR(ratio(num, den), approx(num) / approx(den), 1e-12);
  EXPECT_THROW(ratio(num, Zroot2()), std::invalid_argument);
}

TEST(Zroot2, RatioOfProbabilityShapedValues) {
  // Ratios of |amplitude|² sums stay in [0,1] and must be accurate.
  Zroot2 half(BigInt(1), BigInt(0));
  Zroot2 whole(BigInt(2), BigInt(0));
  EXPECT_DOUBLE_EQ(ratio(half, whole), 0.5);
  Zroot2 num(BigInt(2), BigInt(-1));   // 2 - √2 ≈ 0.5857
  Zroot2 den(BigInt(4), BigInt(0));
  EXPECT_NEAR(ratio(num, den), (2 - kSqrt2) / 4, 1e-14);
}

TEST(Zroot2, ToStringReadable) {
  EXPECT_EQ(Zroot2().toString(), "0");
  EXPECT_EQ(Zroot2(BigInt(3), BigInt(-2)).toString(), "3 - 2√2");
  EXPECT_EQ(Zroot2(BigInt(0), BigInt(1)).toString(), "√2");
  EXPECT_EQ(Zroot2(BigInt(5), BigInt(0)).toString(), "5");
  EXPECT_EQ(Zroot2(BigInt(0), BigInt(-1)).toString(), "-√2");
}

class Zroot2Property : public ::testing::TestWithParam<int> {};

TEST_P(Zroot2Property, RingAndOrderAxioms) {
  Rng rng(GetParam());
  auto rnd = [&] {
    return Zroot2(BigInt(static_cast<std::int64_t>(rng.below(2000)) - 1000),
                  BigInt(static_cast<std::int64_t>(rng.below(2000)) - 1000));
  };
  for (int i = 0; i < 100; ++i) {
    const Zroot2 a = rnd(), b = rnd(), c = rnd();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a - a).signum(), 0);
    // signum agrees with double arithmetic away from cancellation.
    const double d = approx(a);
    if (std::abs(d) > 1e-6) {
      EXPECT_EQ(a.signum(), d > 0 ? 1 : -1);
    }
    // Multiplying by a positive element preserves order.
    const Zroot2 pos(BigInt(2), BigInt(1));
    if (a.signum() > 0) {
      EXPECT_GT((a * pos).signum(), 0);
    }
    if (a.signum() < 0) {
      EXPECT_LT((a * pos).signum(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Zroot2Property, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace sliq
