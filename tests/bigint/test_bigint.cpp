#include "bigint/bigint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "support/rng.hpp"

namespace sliq {
namespace {

TEST(BigInt, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.isZero());
  EXPECT_EQ(z.signum(), 0);
  EXPECT_EQ(z.toDecimal(), "0");
  EXPECT_EQ(z.bitLength(), 0u);
}

TEST(BigInt, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
                         std::int64_t{123456789}, std::int64_t{-987654321},
                         std::numeric_limits<std::int64_t>::max(),
                         std::numeric_limits<std::int64_t>::min()}) {
    BigInt b(v);
    std::int64_t out = 0;
    ASSERT_TRUE(b.toInt64(&out)) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(BigInt, DecimalRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigInt::fromDecimal(big).toDecimal(), big);
  EXPECT_EQ(BigInt::fromDecimal("-" + big).toDecimal(), "-" + big);
  EXPECT_EQ(BigInt::fromDecimal("0").toDecimal(), "0");
  EXPECT_EQ(BigInt::fromDecimal("+17").toDecimal(), "17");
}

TEST(BigInt, DecimalRejectsGarbage) {
  EXPECT_THROW(BigInt::fromDecimal(""), std::invalid_argument);
  EXPECT_THROW(BigInt::fromDecimal("12x"), std::invalid_argument);
  EXPECT_THROW(BigInt::fromDecimal("-"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::fromDecimal("18446744073709551615");  // 2^64 - 1
  BigInt one(1);
  EXPECT_EQ((a + one).toDecimal(), "18446744073709551616");
}

TEST(BigInt, SubtractionBorrowsAcrossLimbs) {
  BigInt a = BigInt::fromDecimal("18446744073709551616");
  EXPECT_EQ((a - BigInt(1)).toDecimal(), "18446744073709551615");
  EXPECT_EQ((a - a).toDecimal(), "0");
}

TEST(BigInt, MixedSignAddition) {
  EXPECT_EQ((BigInt(5) + BigInt(-9)).toDecimal(), "-4");
  EXPECT_EQ((BigInt(-5) + BigInt(9)).toDecimal(), "4");
  EXPECT_EQ((BigInt(-5) + BigInt(-9)).toDecimal(), "-14");
  EXPECT_EQ((BigInt(5) - BigInt(5)).signum(), 0);
}

TEST(BigInt, MultiplicationMatchesKnownSquare) {
  BigInt a = BigInt::fromDecimal("123456789012345678901234567890");
  EXPECT_EQ((a * a).toDecimal(),
            "15241578753238836750495351562536198787501905199875019052100");
}

TEST(BigInt, MultiplicationSignRules) {
  EXPECT_EQ((BigInt(-3) * BigInt(4)).toDecimal(), "-12");
  EXPECT_EQ((BigInt(-3) * BigInt(-4)).toDecimal(), "12");
  EXPECT_EQ((BigInt(3) * BigInt(0)).signum(), 0);
}

TEST(BigInt, ShiftLeftIsPow2Multiply) {
  BigInt a(1);
  EXPECT_EQ((a << 130).toDecimal(),
            (BigInt::pow2(130)).toDecimal());
  BigInt b(5);
  EXPECT_EQ((b << 70).toDecimal(), (BigInt(5) * BigInt::pow2(70)).toDecimal());
}

TEST(BigInt, ShiftRightIsFloorDivision) {
  EXPECT_EQ((BigInt(5) >> 1).toDecimal(), "2");
  EXPECT_EQ((BigInt(-5) >> 1).toDecimal(), "-3");  // floor(-2.5) = -3
  EXPECT_EQ((BigInt(-4) >> 1).toDecimal(), "-2");
  EXPECT_EQ((BigInt(-1) >> 10).toDecimal(), "-1");  // floor(-1/1024) = -1
  EXPECT_EQ((BigInt(1) >> 10).toDecimal(), "0");
  EXPECT_EQ(((BigInt(1) << 200) >> 200).toDecimal(), "1");
}

TEST(BigInt, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-2), BigInt(1));
  EXPECT_LT(BigInt(-2), BigInt(-1));
  EXPECT_LT(BigInt(1), BigInt(2));
  EXPECT_LT(BigInt(2), BigInt::fromDecimal("18446744073709551616"));
  EXPECT_LT(BigInt::fromDecimal("-18446744073709551616"), BigInt(-2));
  EXPECT_EQ(BigInt(7).compare(BigInt(7)), 0);
}

TEST(BigInt, TwosComplementBitsPositive) {
  // 0b0101 = 5 with sign bit 0.
  EXPECT_EQ(BigInt::fromTwosComplementBits({true, false, true, false})
                .toDecimal(),
            "5");
}

TEST(BigInt, TwosComplementBitsNegative) {
  // 0b1011 (LSB first: 1,1,0,1) = -5 in 4-bit two's complement.
  EXPECT_EQ(BigInt::fromTwosComplementBits({true, true, false, true})
                .toDecimal(),
            "-5");
  // All ones = -1 at any width.
  EXPECT_EQ(BigInt::fromTwosComplementBits({true, true, true}).toDecimal(),
            "-1");
  // Sign bit only: -2^(r-1).
  EXPECT_EQ(BigInt::fromTwosComplementBits({false, false, true}).toDecimal(),
            "-4");
}

TEST(BigInt, TwosComplementBitsEmptyIsZero) {
  EXPECT_TRUE(BigInt::fromTwosComplementBits({}).isZero());
  EXPECT_TRUE(BigInt::fromTwosComplementBits({false, false}).isZero());
}

TEST(BigInt, ToDoubleSmallValuesExact) {
  EXPECT_DOUBLE_EQ(BigInt(123456).toDouble(), 123456.0);
  EXPECT_DOUBLE_EQ(BigInt(-123456).toDouble(), -123456.0);
  EXPECT_DOUBLE_EQ(BigInt(0).toDouble(), 0.0);
}

TEST(BigInt, ToScaledDoubleNormalized) {
  double m;
  std::int64_t e;
  (BigInt(1) << 300).toScaledDouble(m, e);
  EXPECT_DOUBLE_EQ(m, 0.5);
  EXPECT_EQ(e, 301);
  BigInt(-6).toScaledDouble(m, e);
  EXPECT_DOUBLE_EQ(m, -0.75);
  EXPECT_EQ(e, 3);
}

TEST(BigInt, BitLength) {
  EXPECT_EQ(BigInt(1).bitLength(), 1u);
  EXPECT_EQ(BigInt(255).bitLength(), 8u);
  EXPECT_EQ(BigInt(256).bitLength(), 9u);
  EXPECT_EQ((BigInt(1) << 129).bitLength(), 130u);
}

// Property test: ring axioms on random 128-ish-bit values.
class BigIntProperty : public ::testing::TestWithParam<std::uint64_t> {};

BigInt randomBigInt(Rng& rng) {
  BigInt v;
  const int limbs = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < limbs; ++i) {
    v <<= 64;
    v += BigInt(static_cast<std::int64_t>(rng.next() >> 1));
  }
  if (rng.flip()) v = -v;
  return v;
}

TEST_P(BigIntProperty, RingAxioms) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const BigInt a = randomBigInt(rng);
    const BigInt b = randomBigInt(rng);
    const BigInt c = randomBigInt(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, BigInt(0));
    EXPECT_EQ(a + (-a), BigInt(0));
    EXPECT_EQ(a * BigInt(1), a);
    EXPECT_TRUE((a * BigInt(0)).isZero());
  }
}

TEST_P(BigIntProperty, ShiftsInvertAndOrder) {
  Rng rng(GetParam() * 31 + 7);
  for (int iter = 0; iter < 50; ++iter) {
    const BigInt a = randomBigInt(rng);
    const unsigned k = static_cast<unsigned>(rng.below(130));
    EXPECT_EQ((a << k) >> k, a);
    // Comparison is consistent with subtraction.
    const BigInt b = randomBigInt(rng);
    EXPECT_EQ(a.compare(b) < 0, (a - b).isNegative());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sliq
