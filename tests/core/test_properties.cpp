// Property-based sweeps over the exact engine (parameterized gtest):
// unitarity, inverse-circuit round trips, configuration invariance, and
// frontend round trips on randomized workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/generators.hpp"
#include "circuit/qasm.hpp"
#include "core/simulator.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

struct SweepParam {
  unsigned qubits;
  unsigned gates;
  std::uint64_t seed;
};

class RandomSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RandomSweep, UnitarityIsExact) {
  const auto [n, gates, seed] = GetParam();
  SliqSimulator sim(n);
  sim.run(randomCircuit(n, gates, seed));
  const Zroot2 w = sim.totalWeightScaled();
  EXPECT_EQ(w.irrational(), BigInt(0));
  EXPECT_EQ(w.rational(), BigInt(1) << static_cast<unsigned>(sim.kScalar()));
}

TEST_P(RandomSweep, InverseCircuitRestoresProbabilities) {
  const auto [n, gates, seed] = GetParam();
  const QuantumCircuit c = randomCircuit(n, gates, seed);
  SliqSimulator sim(n);
  sim.run(c);
  sim.run(c.inverse());
  // Back to |0...0⟩: every qubit reads 0 with certainty.
  for (unsigned q = 0; q < n; ++q) {
    EXPECT_NEAR(sim.probabilityOne(q), 0.0, 1e-12) << q;
  }
  // And exactly: the |0...0⟩ amplitude has unit norm.
  const Zroot2 norm = sim.amplitude(0).normSqScaled();
  EXPECT_EQ(norm.irrational(), BigInt(0));
  EXPECT_EQ(norm.rational(), BigInt(1) << static_cast<unsigned>(sim.kScalar()));
}

TEST_P(RandomSweep, BitWidthConfigDoesNotChangeState) {
  const auto [n, gates, seed] = GetParam();
  const QuantumCircuit c = randomCircuit(n, gates, seed);
  SliqSimulator::Config wide;
  wide.initialBitWidth = 32;
  wide.trimBitWidth = false;
  SliqSimulator a(n), b(n, 0, wide);
  a.run(c);
  b.run(c);
  Rng rng(seed);
  for (int probe = 0; probe < 20; ++probe) {
    const std::uint64_t basis = rng.below(std::uint64_t{1} << n);
    EXPECT_EQ(a.amplitude(basis), b.amplitude(basis)) << basis;
  }
}

TEST_P(RandomSweep, QasmRoundTripPreservesSemantics) {
  const auto [n, gates, seed] = GetParam();
  const QuantumCircuit c = randomCircuit(n, gates, seed);
  const QuantumCircuit reparsed = parseQasmString(toQasmString(c));
  SliqSimulator a(n), b(n);
  a.run(c);
  b.run(reparsed);
  EXPECT_EQ(a.kScalar(), b.kScalar());
  for (std::uint64_t i = 0; i < (std::uint64_t{1} << n); i += 3)
    EXPECT_EQ(a.amplitude(i), b.amplitude(i)) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomSweep,
    ::testing::Values(SweepParam{3, 20, 1}, SweepParam{4, 30, 2},
                      SweepParam{5, 40, 3}, SweepParam{6, 50, 4},
                      SweepParam{7, 40, 5}, SweepParam{8, 30, 6}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "q" + std::to_string(info.param.qubits) + "g" +
             std::to_string(info.param.gates) + "s" +
             std::to_string(info.param.seed);
    });

TEST(InverseWithRotations, RestoresProbabilitiesUpToGlobalPhase) {
  // Rx/Ry inverses carry a global phase; probabilities must still restore.
  Rng rng(8);
  for (int rep = 0; rep < 5; ++rep) {
    QuantumCircuit c(4, "rot");
    for (int g = 0; g < 20; ++g) {
      const unsigned q = static_cast<unsigned>(rng.below(4));
      switch (rng.below(4)) {
        case 0: c.rx90(q); break;
        case 1: c.ry90(q); break;
        case 2: c.t(q); break;
        default: c.h(q); break;
      }
    }
    SliqSimulator sim(4);
    sim.run(c);
    sim.run(c.inverse());
    for (unsigned q = 0; q < 4; ++q)
      EXPECT_NEAR(sim.probabilityOne(q), 0.0, 1e-12);
  }
}

TEST(MeasurementChain, FullCascadeMatchesSampledDistribution) {
  // Sequentially measuring all qubits must follow the same distribution as
  // sampleAll. χ²-ish loose check over a 3-qubit biased state.
  auto build = [] {
    auto sim = std::make_unique<SliqSimulator>(3);
    sim->applyGate(Gate{GateKind::kH, {0}, {}});
    sim->applyGate(Gate{GateKind::kT, {0}, {}});
    sim->applyGate(Gate{GateKind::kH, {0}, {}});
    sim->applyGate(Gate{GateKind::kCnot, {1}, {0}});
    sim->applyGate(Gate{GateKind::kH, {2}, {}});
    return sim;
  };
  Rng rng(55);
  int viaMeasure[8] = {0};
  int viaSample[8] = {0};
  const int kShots = 1500;
  auto sampler = build();
  for (int s = 0; s < kShots; ++s) {
    auto sim = build();
    unsigned m = 0;
    for (unsigned q = 0; q < 3; ++q)
      m |= sim->measure(q, rng.uniform()) ? 1u << q : 0;
    ++viaMeasure[m];
    const auto bits = sampler->sampleAll(rng);
    unsigned v = 0;
    for (unsigned q = 0; q < 3; ++q) v |= bits[q] ? 1u << q : 0;
    ++viaSample[v];
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_NEAR(viaMeasure[i], viaSample[i], 150) << i;
  }
}

TEST(Scale, WideGhzAndBvStayLinear) {
  // 1500 qubits: node counts must stay linear (structure test, not timing).
  SliqSimulator ghz(1500);
  ghz.run(entanglementCircuit(1500));
  EXPECT_LT(ghz.stateNodeCount(), 4500u);
  EXPECT_NEAR(ghz.probabilityOne(1499), 0.5, 1e-12);
}

TEST(Scale, DeepTCircuitKeepsExactness) {
  // 1000 T gates cycle phases exactly: T^8k = I.
  SliqSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  for (int i = 0; i < 1000; ++i) sim.applyGate(Gate{GateKind::kT, {0}, {}});
  // 1000 = 8·125: identity on phases.
  const AlgebraicComplex invSqrt2(BigInt(0), BigInt(0), BigInt(0), BigInt(1),
                                  1);
  EXPECT_EQ(sim.amplitude(0), invSqrt2);
  EXPECT_EQ(sim.amplitude(1), invSqrt2);
}

}  // namespace
}  // namespace sliq
