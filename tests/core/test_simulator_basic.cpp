#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator.hpp"

namespace sliq {
namespace {

constexpr double kTol = 1e-12;

TEST(SliqBasic, InitialStateIsBasisState) {
  SliqSimulator sim(3, 0b110);
  EXPECT_EQ(sim.amplitude(0b110), AlgebraicComplex::one());
  EXPECT_TRUE(sim.amplitude(0b000).isZero());
  EXPECT_TRUE(sim.amplitude(0b111).isZero());
  EXPECT_NEAR(sim.totalProbability(), 1.0, kTol);
  EXPECT_EQ(sim.kScalar(), 0);
  EXPECT_EQ(sim.bitWidth(), 2u);
}

TEST(SliqBasic, HadamardSuperposition) {
  SliqSimulator sim(1);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  EXPECT_EQ(sim.kScalar(), 1);
  // Both amplitudes are exactly 1/√2: d=1, k=1.
  const AlgebraicComplex expected(BigInt(0), BigInt(0), BigInt(0), BigInt(1),
                                  1);
  EXPECT_EQ(sim.amplitude(0), expected);
  EXPECT_EQ(sim.amplitude(1), expected);
  EXPECT_NEAR(sim.probabilityOne(0), 0.5, kTol);
}

TEST(SliqBasic, TGateExactOmega) {
  SliqSimulator sim(1, 1);  // |1⟩
  sim.applyGate(Gate{GateKind::kT, {0}, {}});
  // T|1⟩ = ω|1⟩ exactly: c = 1.
  EXPECT_EQ(sim.amplitude(1),
            AlgebraicComplex(BigInt(0), BigInt(0), BigInt(1), BigInt(0), 0));
}

TEST(SliqBasic, YGateExact) {
  SliqSimulator sim(1);  // |0⟩
  sim.applyGate(Gate{GateKind::kY, {0}, {}});
  // Y|0⟩ = i|1⟩: b = 1 at index 1.
  EXPECT_TRUE(sim.amplitude(0).isZero());
  EXPECT_EQ(sim.amplitude(1),
            AlgebraicComplex(BigInt(0), BigInt(1), BigInt(0), BigInt(0), 0));
  sim.applyGate(Gate{GateKind::kY, {0}, {}});
  // Y² = I.
  EXPECT_EQ(sim.amplitude(0), AlgebraicComplex::one());
}

TEST(SliqBasic, BellStateExact) {
  SliqSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  sim.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  const AlgebraicComplex invSqrt2(BigInt(0), BigInt(0), BigInt(0), BigInt(1),
                                  1);
  EXPECT_EQ(sim.amplitude(0b00), invSqrt2);
  EXPECT_EQ(sim.amplitude(0b11), invSqrt2);
  EXPECT_TRUE(sim.amplitude(0b01).isZero());
  EXPECT_TRUE(sim.amplitude(0b10).isZero());
  // Total weight is exactly 2^k.
  const Zroot2 w = sim.totalWeightScaled();
  EXPECT_EQ(w.rational(), BigInt(2));
  EXPECT_TRUE(w.irrational().isZero());
}

TEST(SliqBasic, HTwiceIsIdentityExactly) {
  SliqSimulator sim(1);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  // Amplitude of |0⟩ is 2/√2² = 1 — algebraic equality handles k alignment.
  EXPECT_EQ(sim.amplitude(0), AlgebraicComplex::one());
  EXPECT_TRUE(sim.amplitude(1).isZero());
  EXPECT_EQ(sim.kScalar(), 2);  // k grows; coefficients compensate
}

TEST(SliqBasic, PermutationGates) {
  SliqSimulator sim(3, 0b001);
  sim.applyGate(Gate{GateKind::kX, {1}, {}});  // -> 011
  EXPECT_EQ(sim.amplitude(0b011), AlgebraicComplex::one());
  sim.applyGate(Gate{GateKind::kCnot, {2}, {0, 1}});  // Toffoli -> 111
  EXPECT_EQ(sim.amplitude(0b111), AlgebraicComplex::one());
  sim.applyGate(Gate{GateKind::kX, {0}, {}});  // -> 110
  sim.applyGate(Gate{GateKind::kSwap, {0, 2}, {}});  // -> 011
  EXPECT_EQ(sim.amplitude(0b011), AlgebraicComplex::one());
  sim.applyGate(Gate{GateKind::kSwap, {1, 2}, {0}});  // control 0 is 1 -> swap
  EXPECT_EQ(sim.amplitude(0b101), AlgebraicComplex::one());
}

TEST(SliqBasic, PhaseFlipGates) {
  SliqSimulator sim(2, 0b11);
  sim.applyGate(Gate{GateKind::kZ, {0}, {}});
  EXPECT_EQ(sim.amplitude(0b11), -AlgebraicComplex::one());
  sim.applyGate(Gate{GateKind::kCz, {1}, {0}});
  EXPECT_EQ(sim.amplitude(0b11), AlgebraicComplex::one());
}

TEST(SliqBasic, RunWholeCircuit) {
  QuantumCircuit c(2);
  c.h(0).cx(0, 1).z(1).h(0);
  SliqSimulator sim(2);
  sim.run(c);
  EXPECT_EQ(sim.stats().gatesApplied, 4u);
  EXPECT_NEAR(sim.totalProbability(), 1.0, kTol);
}

TEST(SliqBasic, StateNodeCountIsSmallForProductStates) {
  SliqSimulator sim(8);
  for (unsigned q = 0; q < 8; ++q)
    sim.applyGate(Gate{GateKind::kH, {q}, {}});
  // Uniform superposition: every slice is constant; node count stays tiny.
  EXPECT_LE(sim.stateNodeCount(), 2u);
  EXPECT_NEAR(sim.totalProbability(), 1.0, kTol);
}

TEST(SliqBasic, RejectsBadInput) {
  EXPECT_THROW(SliqSimulator(0), std::invalid_argument);
  EXPECT_THROW(SliqSimulator(2, 4), std::invalid_argument);
  SliqSimulator sim(2);
  EXPECT_THROW(sim.probabilityOne(5), std::invalid_argument);
  EXPECT_THROW(sim.measure(0, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace sliq
