// Integer bit-width growth: the paper grows r when overflow is detected; we
// pre-extend by a sign slice and trim. These tests force coefficient growth
// and check exactness is preserved.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "statevector/statevector.hpp"

namespace sliq {
namespace {

TEST(BitWidth, RepeatedHGrowsCoefficients) {
  // (H on q0)^{2m} = I but k grows by 2m; between pairs, interleave with a
  // T to prevent trivial cancellation... simplest growth driver: HZH chains
  // produce alternating ±. Here: apply H T H T ... and watch r grow beyond
  // its initial 2 while amplitudes stay exact vs dense.
  SliqSimulator sliq(2);
  StatevectorSimulator dense(2);
  for (int i = 0; i < 12; ++i) {
    for (const Gate& g : {Gate{GateKind::kH, {0}, {}},
                          Gate{GateKind::kT, {0}, {}},
                          Gate{GateKind::kH, {1}, {}},
                          Gate{GateKind::kCnot, {1}, {0}}}) {
      sliq.applyGate(g);
      dense.applyGate(g);
    }
  }
  EXPECT_GT(sliq.stats().maxBitWidth, 2u);
  const auto got = sliq.statevector();
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(std::abs(got[i] - dense.state()[i]), 0.0, 1e-9) << i;
  }
}

TEST(BitWidth, TrimKeepsWidthMinimal) {
  // A plain GHZ needs tiny coefficients; after the whole circuit r must
  // have been trimmed back to 2 (values in {0, 1}).
  SliqSimulator sim(6);
  sim.run(entanglementCircuit(6));
  EXPECT_EQ(sim.bitWidth(), 2u);
  EXPECT_NEAR(sim.totalProbability(), 1.0, 1e-12);
}

TEST(BitWidth, NoTrimConfigKeepsGrowing) {
  SliqSimulator::Config cfg;
  cfg.trimBitWidth = false;
  SliqSimulator sim(2, 0, cfg);
  for (int i = 0; i < 5; ++i) sim.applyGate(Gate{GateKind::kH, {0}, {}});
  // Width grows by one per arithmetic gate without trimming.
  EXPECT_EQ(sim.bitWidth(), 2u + 5u);
  // Still exact.
  EXPECT_NEAR(sim.totalProbability(), 1.0, 1e-12);
}

TEST(BitWidth, PaperStyleInitialWidth32) {
  SliqSimulator::Config cfg;
  cfg.initialBitWidth = 32;
  cfg.trimBitWidth = false;
  SliqSimulator sim(3, 0, cfg);
  EXPECT_EQ(sim.bitWidth(), 32u);
  sim.run(entanglementCircuit(3));
  StatevectorSimulator dense(3);
  dense.run(entanglementCircuit(3));
  const auto got = sim.statevector();
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(std::abs(got[i] - dense.state()[i]), 0.0, 1e-12);
}

TEST(BitWidth, LargeCoefficientsStayExact) {
  // Drive coefficients past 64 bits: ~80 arithmetic gates on 2 qubits give
  // coefficient magnitudes up to 2^80-ish. BigInt decoding must stay exact:
  // total probability is exactly 1.
  SliqSimulator sim(2);
  for (int i = 0; i < 80; ++i) {
    sim.applyGate(Gate{GateKind::kH, {i % 2 == 0 ? 0u : 1u}, {}});
    sim.applyGate(Gate{GateKind::kT, {0}, {}});
    sim.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  }
  const Zroot2 w = sim.totalWeightScaled();
  EXPECT_EQ(w.irrational(), BigInt(0));
  EXPECT_EQ(w.rational(), BigInt(1) << static_cast<unsigned>(sim.kScalar()));
  EXPECT_GT(sim.kScalar(), 60);
}

TEST(BitWidth, StatsTrackPeaks) {
  SliqSimulator sim(3);
  sim.run(randomCircuit(3, 30, 2));
  EXPECT_GE(sim.stats().maxBitWidth, sim.bitWidth());
  EXPECT_GT(sim.stats().peakLiveNodes, 0u);
  EXPECT_EQ(sim.stats().gatesApplied, 33u);
}

}  // namespace
}  // namespace sliq
