// The sliq.run_report.v1 schema pin (DESIGN.md §11): every engine's
// 16-qubit run report carries the common counter/gauge/phase keys — the
// acceptance contract of `sliqsim --stats=json` — plus each engine's
// native totals. Also pins the resolved-threads reporting (the 0 = auto
// sentinel never leaks into a report) and runMetrics() idempotence.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/engine_registry.hpp"
#include "support/metrics.hpp"

namespace sliq {
namespace {

constexpr unsigned kQubits = 16;

/// 16-qubit Clifford circuit every engine supports (chp included), with
/// enough structure that gate counters, caches and the BDD all move.
QuantumCircuit benchCircuit() {
  QuantumCircuit c(kQubits);
  c.h(0);
  for (unsigned q = 0; q + 1 < kQubits; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < kQubits; q += 2) c.s(q);
  for (unsigned q = 0; q + 4 < kQubits; q += 4) c.cz(q, q + 4);
  return c;
}

metrics::RunReport reportFor(const std::string& engineName) {
  const std::unique_ptr<Engine> engine = makeEngine(engineName, kQubits);
  engine->metrics().enable();
  engine->run(benchCircuit());
  return engine->runMetrics();
}

TEST(RunReportSchema, CommonKeysPresentOnEveryEngine) {
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    const metrics::RunReport report = reportFor(name);
    EXPECT_EQ(report.engine, name);
    EXPECT_EQ(report.qubits, kQubits);

    // Counters: pre/post-fusion gate counts, applied gates, GC runs,
    // cache traffic — present on every engine (zero where inapplicable).
    const auto& counters = report.metrics.counters;
    ASSERT_TRUE(counters.count("gates.pre_fusion"));
    ASSERT_TRUE(counters.count("gates.post_fusion"));
    ASSERT_TRUE(counters.count("gates.applied"));
    ASSERT_TRUE(counters.count("gc.runs"));
    ASSERT_TRUE(counters.count("cache.lookups"));
    ASSERT_TRUE(counters.count("cache.hits"));
    EXPECT_EQ(counters.at("gates.pre_fusion"), benchCircuit().gateCount());
    EXPECT_GT(counters.at("gates.post_fusion"), 0u);
    EXPECT_GT(counters.at("gates.applied"), 0u);
    EXPECT_LE(counters.at("cache.hits"), counters.at("cache.lookups"));

    // Gauges: resolved worker count, RSS high-water, state size.
    const auto& gauges = report.metrics.gauges;
    ASSERT_TRUE(gauges.count("threads.resolved"));
    ASSERT_TRUE(gauges.count("rss.high_water_bytes"));
    ASSERT_TRUE(gauges.count("state.bytes"));
    EXPECT_GE(gauges.at("threads.resolved"), 1.0);
    EXPECT_GT(gauges.at("rss.high_water_bytes"), 0.0);
    EXPECT_GT(gauges.at("state.bytes"), 0.0);

    // Phases: the facade times every run and gate loop.
    const auto& phases = report.metrics.timers;
    ASSERT_TRUE(phases.count("engine.run"));
    ASSERT_TRUE(phases.count("gate_loop"));
    EXPECT_EQ(phases.at("engine.run").count, 1u);
    EXPECT_GE(phases.at("engine.run").seconds,
              phases.at("gate_loop").seconds);

    // The serialized record self-identifies.
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\":\"sliq.run_report.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"engine\":\"" + name + "\""), std::string::npos);
  }
}

TEST(RunReportSchema, EngineNativeTotalsAreMirrored) {
  {
    const metrics::RunReport r = reportFor("exact");
    EXPECT_GT(r.metrics.gauges.at("nodes.peak_live"), 0.0);
    EXPECT_GT(r.metrics.counters.at("bdd.created_nodes"), 0u);
    EXPECT_GT(r.metrics.counters.at("cache.lookups"), 0u);
  }
  {
    const metrics::RunReport r = reportFor("qmdd");
    EXPECT_GT(r.metrics.gauges.at("nodes.peak_live"), 0.0);
    EXPECT_GT(r.metrics.gauges.at("complex_table.entries"), 0.0);
  }
  {
    const metrics::RunReport r = reportFor("chp");
    EXPECT_EQ(r.metrics.gauges.at("tableau.rows"), 2.0 * kQubits + 1.0);
  }
  {
    const metrics::RunReport r = reportFor("statevector");
    // A dense 16-qubit register is at least 2^16 complex doubles.
    EXPECT_GE(r.metrics.gauges.at("state.bytes"), 65536.0 * 16);
  }
}

TEST(RunReportSchema, RunMetricsIsIdempotent) {
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    const std::unique_ptr<Engine> engine = makeEngine(name, kQubits);
    engine->metrics().enable();
    engine->run(benchCircuit());
    const metrics::RunReport first = engine->runMetrics();
    const metrics::RunReport second = engine->runMetrics();
    // Native totals are absolute mirrors: calling twice never
    // double-counts. (Gauges like the RSS high-water may only grow.)
    EXPECT_EQ(first.metrics.counters, second.metrics.counters);
    EXPECT_EQ(first.metrics.timers.at("engine.run").count,
              second.metrics.timers.at("engine.run").count);
  }
}

TEST(RunReportSchema, DisabledRegistryStillYieldsPinnedKeys) {
  // --stats off: nothing records, but a report requested anyway is still
  // schema-complete (all pinned keys, zero values) — consumers never
  // branch on key presence.
  const std::unique_ptr<Engine> engine = makeEngine("chp", kQubits);
  engine->run(benchCircuit());
  const metrics::RunReport report = engine->runMetrics();
  EXPECT_EQ(report.metrics.counters.at("gates.applied"), 0u);
  EXPECT_EQ(report.metrics.gauges.at("threads.resolved"), 0.0);
  EXPECT_TRUE(report.metrics.counters.count("cache.hits"));
}

TEST(RunReportSchema, ResolvedThreadsNeverReportsTheAutoSentinel) {
  const std::unique_ptr<Engine> engine = makeEngine("statevector", kQubits);
  engine->metrics().enable();
  EXPECT_EQ(engine->resolvedExecutionThreads(), 1u);  // before any request
  engine->setExecutionThreads(0);  // auto: resolve to detected concurrency
  EXPECT_GE(engine->resolvedExecutionThreads(), 1u);
  engine->run(benchCircuit());
  const metrics::RunReport autoReport = engine->runMetrics();
  EXPECT_EQ(autoReport.metrics.gauges.at("threads.resolved"),
            static_cast<double>(engine->resolvedExecutionThreads()));
  EXPECT_GE(autoReport.metrics.gauges.at("threads.resolved"), 1.0);

  const std::unique_ptr<Engine> explicitEngine =
      makeEngine("statevector", kQubits);
  explicitEngine->metrics().enable();
  explicitEngine->setExecutionThreads(3);
  EXPECT_EQ(explicitEngine->resolvedExecutionThreads(), 3u);
  explicitEngine->run(benchCircuit());
  EXPECT_EQ(explicitEngine->runMetrics().metrics.gauges.at("threads.resolved"),
            3.0);
}

}  // namespace
}  // namespace sliq
