// Circuit analyzer: the workload features driving --engine auto
// (DESIGN.md §13) — gate classification, prefix detection, and the
// two-qubit-depth / interaction-width entanglement proxies.
#include "core/circuit_analyzer.hpp"

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"

namespace sliq {
namespace {

TEST(CircuitAnalyzer, EmptyCircuit) {
  const CircuitFeatures f = analyzeCircuit(QuantumCircuit(3));
  EXPECT_EQ(f.numQubits, 3u);
  EXPECT_EQ(f.gateCount, 0u);
  EXPECT_EQ(f.unitaryGates, 0u);
  EXPECT_EQ(f.cliffordFraction, 1.0);  // vacuously Clifford
  EXPECT_EQ(f.tCount, 0u);
  EXPECT_EQ(f.twoQubitDepth, 0u);
  EXPECT_EQ(f.cliffordPrefixGates, 0u);
  EXPECT_EQ(f.interactionWidth, 1u);  // no gate links any qubits
  EXPECT_FALSE(f.dynamic);
}

TEST(CircuitAnalyzer, PureCliffordGhz) {
  QuantumCircuit c(4);
  c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
  const CircuitFeatures f = analyzeCircuit(c);
  EXPECT_EQ(f.gateCount, 4u);
  EXPECT_EQ(f.cliffordGates, 4u);
  EXPECT_EQ(f.nonCliffordGates, 0u);
  EXPECT_EQ(f.cliffordFraction, 1.0);
  EXPECT_EQ(f.cliffordPrefixGates, 4u);
  EXPECT_EQ(f.twoQubitGates, 3u);
  EXPECT_EQ(f.twoQubitDepth, 3u);      // the CNOT chain is sequential
  EXPECT_EQ(f.interactionWidth, 4u);   // one connected component
  EXPECT_EQ(f.histogram.at("cx"), 3u);
}

TEST(CircuitAnalyzer, TGatesEndTheCliffordPrefix) {
  QuantumCircuit c(2);
  c.h(0).cx(0, 1).t(0).tdg(1).h(0);
  const CircuitFeatures f = analyzeCircuit(c);
  EXPECT_EQ(f.cliffordGates, 3u);
  EXPECT_EQ(f.nonCliffordGates, 2u);
  EXPECT_EQ(f.tCount, 2u);
  EXPECT_DOUBLE_EQ(f.cliffordFraction, 3.0 / 5.0);
  // The prefix stops at the first T and never restarts, even though a
  // later Clifford gate follows.
  EXPECT_EQ(f.cliffordPrefixGates, 2u);
}

TEST(CircuitAnalyzer, MultiControlledGatesAreNonClifford) {
  QuantumCircuit c(3);
  c.ccx(0, 1, 2);              // Toffoli: outside the tableau gate set
  c.cswap(0, 1, 2);            // Fredkin: likewise
  const CircuitFeatures f = analyzeCircuit(c);
  EXPECT_EQ(f.nonCliffordGates, 2u);
  EXPECT_EQ(f.tCount, 0u);     // non-Clifford without being T gates
  EXPECT_EQ(f.cliffordPrefixGates, 0u);
  EXPECT_EQ(f.twoQubitGates, 2u);  // arity >= 2 regardless of class
}

TEST(CircuitAnalyzer, DynamicOpsAreCountedAndFlagged) {
  QuantumCircuit c(2);
  c.declareClassicalRegister(2);
  c.h(0);
  c.measure(0, 0);
  c.onlyIf(1, Gate{GateKind::kX, {1}, {}});
  c.reset(0);
  const CircuitFeatures f = analyzeCircuit(c);
  EXPECT_TRUE(f.dynamic);
  EXPECT_EQ(f.dynamicOps, 3u);         // measure + conditioned X + reset
  EXPECT_EQ(f.unitaryGates, 2u);       // h and the conditioned x
  // The prefix must be executable unconditionally, so it ends at the
  // measure even though every unitary involved is Clifford.
  EXPECT_EQ(f.cliffordPrefixGates, 1u);
}

TEST(CircuitAnalyzer, TwoQubitDepthTracksPerQubitChains) {
  QuantumCircuit c(4);
  // Two parallel CNOTs (depth 1 each), then one crossing CNOT on top.
  c.cx(0, 1).cx(2, 3).cx(1, 2);
  const CircuitFeatures f = analyzeCircuit(c);
  EXPECT_EQ(f.twoQubitGates, 3u);
  EXPECT_EQ(f.twoQubitDepth, 2u);  // the crossing gate stacks on both pairs
  EXPECT_EQ(f.interactionWidth, 4u);
}

TEST(CircuitAnalyzer, InteractionWidthSeesDisjointBlocks) {
  QuantumCircuit c(6);
  c.cx(0, 1).cx(1, 2);  // block {0,1,2}
  c.cx(4, 5);           // block {4,5}; qubit 3 untouched
  const CircuitFeatures f = analyzeCircuit(c);
  EXPECT_EQ(f.interactionWidth, 3u);
  // Single-qubit gates never link qubits.
  QuantumCircuit d(6);
  for (unsigned q = 0; q < 6; ++q) d.h(q);
  EXPECT_EQ(analyzeCircuit(d).interactionWidth, 1u);
}

}  // namespace
}  // namespace sliq
