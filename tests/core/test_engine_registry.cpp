// Engine registry: name lookup (case handling, unknown-name rejection),
// registration semantics, and a behavioral round-trip of every registered
// engine on a 2-qubit Bell circuit.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

QuantumCircuit bellCircuit() {
  QuantumCircuit c(2, "bell");
  c.h(0).cx(0, 1);
  return c;
}

TEST(EngineRegistry, BuiltInsRegistered) {
  const std::vector<std::string> names = engineNames();
  EXPECT_EQ(names.size(), 4u);
  for (const char* expected : {"chp", "exact", "qmdd", "statevector"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
    EXPECT_TRUE(EngineRegistry::instance().contains(expected)) << expected;
    EXPECT_FALSE(EngineRegistry::instance().describe(expected).empty())
        << expected;
  }
}

TEST(EngineRegistry, RegisteredCapabilitiesMatchInstanceCapabilities) {
  // The registry stores capability flags so callers can query them without
  // constructing an engine; this pins the copy to what instances report.
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    const EngineCapabilities fromRegistry =
        EngineRegistry::instance().capabilities(name);
    const EngineCapabilities fromInstance =
        makeEngine(name, 2)->capabilities();
    EXPECT_EQ(fromRegistry.batchedSampling, fromInstance.batchedSampling);
    EXPECT_EQ(fromRegistry.noiseFastPath, fromInstance.noiseFastPath);
    EXPECT_EQ(fromRegistry.nativeExpectation, fromInstance.nativeExpectation);
    EXPECT_EQ(fromRegistry.dynamicCircuits, fromInstance.dynamicCircuits);
    EXPECT_EQ(fromRegistry.invariantAudit, fromInstance.invariantAudit);
    EXPECT_EQ(fromRegistry.serialization, fromInstance.serialization);
  }
  EXPECT_THROW(EngineRegistry::instance().capabilities("no-such-engine"),
               UnknownEngineError);
  // Distinguishing expectations: the exact engine batches natively, chp's
  // stabilizer formalism absorbs Pauli noise, and every built-in contracts
  // Pauli observables natively.
  EXPECT_TRUE(EngineRegistry::instance().capabilities("exact").batchedSampling);
  EXPECT_TRUE(EngineRegistry::instance().capabilities("chp").noiseFastPath);
  EXPECT_FALSE(EngineRegistry::instance().capabilities("chp").batchedSampling);
  for (const std::string& name : engineNames()) {
    EXPECT_TRUE(EngineRegistry::instance().capabilities(name).nativeExpectation)
        << name;
    // Every built-in implements the per-op primitives runDynamic drives.
    EXPECT_TRUE(EngineRegistry::instance().capabilities(name).dynamicCircuits)
        << name;
    // And every built-in walks its representation's structural invariants.
    EXPECT_TRUE(EngineRegistry::instance().capabilities(name).invariantAudit)
        << name;
    // And every built-in snapshots its state natively (DESIGN.md §12).
    EXPECT_TRUE(EngineRegistry::instance().capabilities(name).serialization)
        << name;
  }
}

TEST(EngineRegistry, UnknownNameIsRejectedWithTheRegisteredList) {
  EXPECT_FALSE(EngineRegistry::instance().contains("no-such-engine"));
  try {
    makeEngine("no-such-engine", 2);
    FAIL() << "expected UnknownEngineError";
  } catch (const UnknownEngineError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-engine"), std::string::npos) << what;
    // The message must teach the valid names.
    for (const char* name : {"chp", "exact", "qmdd", "statevector"}) {
      EXPECT_NE(what.find(name), std::string::npos) << what;
    }
  }
}

TEST(EngineRegistry, TypoWithinDistanceTwoGetsASuggestion) {
  // One edit away from a registered name: the error teaches the fix.
  for (const auto& [typo, want] :
       std::vector<std::pair<std::string, std::string>>{
           {"exat", "exact"},        // deletion
           {"exactt", "exact"},      // insertion
           {"qmde", "qmdd"},         // substitution
           {"chpp", "chp"},          // insertion
           {"statevectr", "statevector"},
           {"CHPP", "chp"},          // suggestion matching is case-folded
       }) {
    SCOPED_TRACE(typo);
    EXPECT_EQ(EngineRegistry::instance().closestName(typo), want);
    try {
      makeEngine(typo, 2);
      FAIL() << "expected UnknownEngineError";
    } catch (const UnknownEngineError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("did you mean '" + want + "'"), std::string::npos)
          << what;
    }
  }
}

TEST(EngineRegistry, FarFromEveryNameGetsNoSuggestion) {
  for (const char* junk : {"no-such-engine", "tensornetwork", "", "x"}) {
    SCOPED_TRACE(junk);
    EXPECT_EQ(EngineRegistry::instance().closestName(junk), "");
    try {
      EngineRegistry::instance().describe(junk);
      FAIL() << "expected UnknownEngineError";
    } catch (const UnknownEngineError& e) {
      const std::string what = e.what();
      EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
      // The registered list still teaches the valid names.
      EXPECT_NE(what.find("exact"), std::string::npos) << what;
    }
  }
}

TEST(EngineRegistry, AllThreeLookupEntryPointsSuggest) {
  // describe / capabilities / create share one error path; a typo through
  // any of them carries the suggestion.
  const auto expectSuggests = [](auto&& call) {
    try {
      call();
      FAIL() << "expected UnknownEngineError";
    } catch (const UnknownEngineError& e) {
      EXPECT_NE(std::string(e.what()).find("did you mean 'qmdd'"),
                std::string::npos)
          << e.what();
    }
  };
  const EngineRegistry& registry = EngineRegistry::instance();
  expectSuggests([&] { registry.describe("qmd"); });
  expectSuggests([&] { (void)registry.capabilities("qmd"); });
  expectSuggests([&] { (void)registry.create("qmd", 2); });
}

TEST(EngineRegistry, LookupIsCaseInsensitive) {
  for (const char* spelling :
       {"exact", "Exact", "EXACT", "QMDD", "Qmdd", "CHP", "StateVector"}) {
    EXPECT_TRUE(EngineRegistry::instance().contains(spelling)) << spelling;
    const std::unique_ptr<Engine> engine = makeEngine(spelling, 2);
    ASSERT_NE(engine, nullptr) << spelling;
    // The facade reports the canonical lower-case name.
    EXPECT_EQ(engine->name(),
              [&] {
                std::string s = spelling;
                std::transform(s.begin(), s.end(), s.begin(), ::tolower);
                return s;
              }())
        << spelling;
  }
}

TEST(EngineRegistry, ReRegisteringReplacesAndNewNamesExtend) {
  EngineRegistry local;
  local.add("Mine", "first", [](unsigned n) { return makeEngine("exact", n); },
            {/*batchedSampling=*/true, /*noiseFastPath=*/false});
  EXPECT_TRUE(local.contains("mine"));
  EXPECT_EQ(local.describe("MINE"), "first");
  EXPECT_TRUE(local.capabilities("mine").batchedSampling);
  local.add("mine", "second",
            [](unsigned n) { return makeEngine("qmdd", n); },
            {/*batchedSampling=*/false, /*noiseFastPath=*/true});
  EXPECT_EQ(local.names().size(), 1u);
  EXPECT_EQ(local.describe("mine"), "second");
  EXPECT_EQ(local.create("mine", 2)->name(), "qmdd");
  // Re-registration replaces the capability flags along with the factory.
  EXPECT_FALSE(local.capabilities("mine").batchedSampling);
  EXPECT_TRUE(local.capabilities("mine").noiseFastPath);
}

TEST(EngineRegistry, EveryEngineRoundTripsABellCircuit) {
  const QuantumCircuit bell = bellCircuit();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->numQubits(), 2u);
    ASSERT_TRUE(engine->supports(bell));
    engine->run(bell);
    EXPECT_NEAR(engine->probabilityOne(0), 0.5, 1e-9);
    EXPECT_NEAR(engine->probabilityOne(1), 0.5, 1e-9);
    EXPECT_NEAR(engine->totalProbability(), 1.0, 1e-9);
    EXPECT_FALSE(engine->numericalError());

    // Collapse: deviate 0.25 < Pr[q0=1] = 0.5 selects outcome 1 on every
    // engine; the Bell correlation then forces q1 to 1 deterministically.
    EXPECT_TRUE(engine->measure(0, 0.25));
    EXPECT_NEAR(engine->probabilityOne(1), 1.0, 1e-9);
    EXPECT_TRUE(engine->measure(1, 0.999));
  }
}

TEST(EngineRegistry, ShotsArePerfectlyCorrelatedOnBell) {
  const QuantumCircuit bell = bellCircuit();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    engine->run(bell);
    Rng rng(7);
    for (int shot = 0; shot < 16; ++shot) {
      const std::vector<bool> bits = engine->sampleShot(rng);
      ASSERT_EQ(bits.size(), 2u);
      EXPECT_EQ(bits[0], bits[1]);
    }
  }
}

TEST(EngineRegistry, SampleShotAfterMeasureIsALogicErrorOnEveryEngine) {
  // The facade contract pins shot sampling to the state prepared by run();
  // mixing it with collapses is rejected uniformly across engines.
  const QuantumCircuit bell = bellCircuit();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    engine->run(bell);
    (void)engine->measure(0, 0.25);
    Rng rng(3);
    EXPECT_THROW(engine->sampleShot(rng), std::logic_error);
  }
}

TEST(EngineRegistry, CliffordSupportSplitsTheEngines) {
  QuantumCircuit nonClifford(1, "t-gate");
  nonClifford.t(0);
  EXPECT_FALSE(makeEngine("chp", 1)->supports(nonClifford));
  for (const char* name : {"exact", "qmdd", "statevector"}) {
    EXPECT_TRUE(makeEngine(name, 1)->supports(nonClifford)) << name;
  }
}

}  // namespace
}  // namespace sliq
