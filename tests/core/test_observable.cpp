// PauliObservable: spec parsing with file:line diagnostics (mirroring the
// noise-model parser tests), the Engine::expectation facade contract, and
// agreement of every engine's native fast path with closed-form values and
// with the engine-agnostic basis-change fallback — all without collapsing
// the state.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "core/measurement_context.hpp"
#include "core/observable.hpp"
#include "core/simulator.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

void expectSpecError(const std::string& spec, const std::string& fragment,
                     const std::string& location) {
  try {
    PauliObservable::parseString(spec);
    FAIL() << "expected ObservableSpecError for: " << spec;
  } catch (const ObservableSpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(location), std::string::npos) << what;
    EXPECT_NE(what.find(fragment), std::string::npos) << what;
  }
}

// ---- spec parsing ---------------------------------------------------------

TEST(ObservableSpec, ParsesFullSpec) {
  const PauliObservable obs = PauliObservable::parseString(
      "# Ising-style energy\n"
      "0.5  Z0 Z1\n"
      "-.25 x0 y2   # case-insensitive factors\n"
      "1.5          # identity term (constant offset)\n"
      "2 I3 Z4      # identity factors are dropped\n");
  ASSERT_EQ(obs.terms().size(), 4u);
  EXPECT_DOUBLE_EQ(obs.terms()[0].coefficient, 0.5);
  EXPECT_EQ(obs.terms()[0].pauliText(), "Z0 Z1");
  EXPECT_DOUBLE_EQ(obs.terms()[1].coefficient, -0.25);
  EXPECT_EQ(obs.terms()[1].pauliText(), "X0 Y2");
  EXPECT_TRUE(obs.terms()[2].isIdentity());
  EXPECT_EQ(obs.terms()[3].pauliText(), "Z4");
  EXPECT_EQ(obs.numQubitsRequired(), 5u);
  EXPECT_TRUE(obs.terms()[0].isDiagonal());
  EXPECT_FALSE(obs.terms()[1].isDiagonal());
  // Parsed line numbers anchor later width diagnostics.
  EXPECT_EQ(obs.terms()[0].sourceLine, 2u);
  EXPECT_EQ(obs.terms()[3].sourceLine, 5u);
}

TEST(ObservableSpec, BadPauliCharacterNamesOriginAndLine) {
  expectSpecError("1.0 Z0\n0.5 Q1\n", "Q1", "<spec>:2");
  expectSpecError("1.0 Z0 W2\n", "W2", "<spec>:1");
}

TEST(ObservableSpec, QubitIndexDiagnostics) {
  // Malformed / absurd indices fail at parse time...
  expectSpecError("1.0 Z\n", "Z", "<spec>:1");
  expectSpecError("1.0 Z-1\n", "Z-1", "<spec>:1");
  expectSpecError("1.0 Zx\n", "Zx", "<spec>:1");
  expectSpecError("1.0 Z999999999999\n", "Z999999999999", "<spec>:1");
  // ...and in-range-at-parse indices are checked against the actual circuit
  // width later, still citing the defining spec line.
  const PauliObservable obs =
      PauliObservable::parseString("1.0 Z0\n0.5 Z0 Z7\n");
  try {
    obs.validateForWidth(4);
    FAIL() << "expected ObservableSpecError";
  } catch (const ObservableSpecError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("<spec>:2"), std::string::npos) << what;
    EXPECT_NE(what.find("qubit 7"), std::string::npos) << what;
    EXPECT_NE(what.find("4 qubits"), std::string::npos) << what;
  }
  obs.validateForWidth(8);  // wide enough: no throw
}

TEST(ObservableSpec, DuplicateQubitInOneStringIsRejected) {
  expectSpecError("1.0 Z0 X0\n", "duplicate qubit 0", "<spec>:1");
  expectSpecError("0.5 Z1\n1.0 Y2 Z3 Y2\n", "duplicate qubit 2", "<spec>:2");
}

TEST(ObservableSpec, EmptySpecIsRejectedWithOriginAndLine) {
  expectSpecError("", "no terms", "<spec>:1");
  expectSpecError("# only comments\n\n   \n", "no terms", "<spec>:3");
}

TEST(ObservableSpec, BadCoefficientIsRejected) {
  expectSpecError("abc Z0\n", "coefficient", "<spec>:1");
  expectSpecError("1.0.0 Z0\n", "coefficient", "<spec>:1");
}

TEST(ObservableSpec, MissingFileThrows) {
  EXPECT_THROW(PauliObservable::parseFile("/no/such/observable.txt"),
               ObservableSpecError);
}

TEST(ObservableApi, AddTermSortsFactorsAndRejectsDuplicates) {
  PauliObservable obs;
  obs.addTerm(1.0, {{3, Pauli::kX}, {1, Pauli::kZ}, {2, Pauli::kI}});
  ASSERT_EQ(obs.terms().size(), 1u);
  EXPECT_EQ(obs.terms()[0].pauliText(), "Z1 X3");  // sorted, I dropped
  EXPECT_THROW(obs.addTerm(1.0, {{0, Pauli::kX}, {0, Pauli::kZ}}),
               ObservableSpecError);
}

// ---- expectation values ---------------------------------------------------

/// ⟨O⟩ on `circuit` for every engine that supports it; each value must be
/// within 1e-10 of `expected` (native fast paths) and of the generic
/// basis-change fallback.
void expectAllEngines(const QuantumCircuit& circuit, const std::string& spec,
                      double expected) {
  const PauliObservable obs = PauliObservable::parseString(spec);
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name + " on " + spec);
    std::unique_ptr<Engine> engine = makeEngine(name, circuit.numQubits());
    if (!engine->supports(circuit)) continue;
    engine->run(circuit);
    EXPECT_NEAR(engine->expectation(obs), expected, 1e-10);
    EXPECT_NEAR(genericExpectation(*engine, obs), expected, 1e-10);
  }
}

TEST(Expectation, BellStateClosedForms) {
  QuantumCircuit bell(2);
  bell.h(0).cx(0, 1);
  expectAllEngines(bell, "1 Z0 Z1", 1.0);
  expectAllEngines(bell, "1 X0 X1", 1.0);
  expectAllEngines(bell, "1 Y0 Y1", -1.0);
  expectAllEngines(bell, "1 Z0", 0.0);
  expectAllEngines(bell, "1 X0", 0.0);
  expectAllEngines(bell, "1 X0 Y1", 0.0);
  expectAllEngines(bell, "0.5 Z0 Z1\n-0.25 Y0 Y1\n2.0\n", 2.75);
}

TEST(Expectation, GhzParitiesAndSingleQubitTerms) {
  QuantumCircuit ghz(4);
  ghz.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
  expectAllEngines(ghz, "1 Z0 Z2", 1.0);
  expectAllEngines(ghz, "1 X0 X1 X2 X3", 1.0);
  expectAllEngines(ghz, "1 Y0 Y1 X2 X3", -1.0);  // two Y pairs flip sign
  expectAllEngines(ghz, "1 Z0 Z1 Z2", 0.0);
  expectAllEngines(ghz, "1 X0", 0.0);
}

TEST(Expectation, TStateSingleQubitBlochVector) {
  // H then T: Bloch vector (cos π/4, sin π/4, 0).
  QuantumCircuit c(1);
  c.h(0).t(0);
  const double inv = 1.0 / std::sqrt(2.0);
  expectAllEngines(c, "1 X0", inv);
  expectAllEngines(c, "1 Y0", inv);
  expectAllEngines(c, "1 Z0", 0.0);
}

TEST(Expectation, ProductStateWithFlippedQubit) {
  QuantumCircuit c(3);
  c.x(1).h(2);
  expectAllEngines(c, "1 Z0", 1.0);
  expectAllEngines(c, "1 Z1", -1.0);
  expectAllEngines(c, "1 X2", 1.0);
  expectAllEngines(c, "1 Z0 Z1", -1.0);
  expectAllEngines(c, "1 Z1 X2", -1.0);
}

TEST(Expectation, IdentityObservableIsExactlyOne) {
  QuantumCircuit c(2);
  c.h(0).t(0).cx(0, 1);
  expectAllEngines(c, "3.5\n", 3.5);
  expectAllEngines(c, "1 I0 I1\n", 1.0);
}

TEST(Expectation, NativeMatchesGenericOnNonCliffordStates) {
  // Entangled non-Clifford state: natives (signed BDD traversal, DD pair
  // contraction, dense contraction) against the basis-change fallback.
  QuantumCircuit c(3);
  c.h(0).t(0).cx(0, 1).h(2).t(2).cx(1, 2).s(1).h(1);
  const char* specs[] = {
      "1 Z0 Z1 Z2", "1 X0 Y1", "1 Y0 X1 Z2", "1 X2",
      "0.5 Z0 Z1\n0.25 X0 X1 X2\n-1 Y1 Y2\n0.125\n",
  };
  for (const std::string& name : engineNames()) {
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    if (!engine->supports(c)) continue;
    engine->run(c);
    for (const char* spec : specs) {
      SCOPED_TRACE(name + std::string(" on ") + spec);
      const PauliObservable obs = PauliObservable::parseString(spec);
      EXPECT_NEAR(engine->expectation(obs), genericExpectation(*engine, obs),
                  1e-10);
    }
  }
}

TEST(Expectation, DoesNotCollapseOrPerturbTheState) {
  // expectation() must leave every later query identical: probabilities,
  // expectations, and sampled shots under a fixed seed.
  QuantumCircuit c(3);
  c.h(0).t(0).cx(0, 1).cx(1, 2);
  const PauliObservable obs =
      PauliObservable::parseString("1 X0 Y1 Z2\n0.5 Z0 Z1\n");
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> probed = makeEngine(name, c.numQubits());
    std::unique_ptr<Engine> control = makeEngine(name, c.numQubits());
    if (!probed->supports(c)) continue;
    probed->run(c);
    control->run(c);
    const double first = probed->expectation(obs);
    EXPECT_NEAR(probed->expectation(obs), first, 1e-12) << "not repeatable";
    for (unsigned q = 0; q < c.numQubits(); ++q) {
      EXPECT_NEAR(probed->probabilityOne(q), control->probabilityOne(q),
                  1e-12);
    }
    Rng rngProbed(99), rngControl(99);
    EXPECT_EQ(probed->sampleShots(16, rngProbed),
              control->sampleShots(16, rngControl));
  }
}

TEST(Expectation, ZOnlyStringsLeaveTheExactContextWarm) {
  // The tentpole property: a diagonal string is one signed traversal of the
  // already-built monolithic hyper-function — no gate application, no cache
  // invalidation, no collapse.
  QuantumCircuit c(3);
  c.h(0).t(0).cx(0, 1).cx(1, 2);
  SliqSimulator sim(c.numQubits());
  sim.run(c);
  (void)sim.probabilityOne(0);  // warm the context
  ASSERT_TRUE(sim.measurementContext().current());
  std::vector<bool> zmask(3, false);
  zmask[0] = zmask[2] = true;
  const double zz = sim.measurementContext().expectationZ(zmask);
  EXPECT_TRUE(sim.measurementContext().current()) << "Z string mutated state";
  // Cross-check against the facade's generic fallback on a twin.
  std::unique_ptr<Engine> twin = makeEngine("exact", c.numQubits());
  twin->run(c);
  EXPECT_NEAR(
      zz,
      genericExpectation(*twin, PauliObservable::parseString("1 Z0 Z2")),
      1e-12);
}

TEST(Expectation, AfterMeasureThrowsOnEveryEngine) {
  QuantumCircuit c(2);
  c.h(0).cx(0, 1);
  const PauliObservable obs = PauliObservable::parseString("1 Z0 Z1");
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    engine->run(c);
    (void)engine->measure(0, 0.25);
    EXPECT_THROW(engine->expectation(obs), std::logic_error);
  }
}

TEST(Expectation, TooWideObservableIsRejectedOnEveryEngine) {
  const PauliObservable obs = PauliObservable::parseString("1 Z0 Z5");
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    engine->run(QuantumCircuit(2).h(0));
    EXPECT_THROW(engine->expectation(obs), ObservableSpecError);
  }
}

}  // namespace
}  // namespace sliq
