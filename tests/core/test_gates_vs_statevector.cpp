// Cross-validation: every gate kernel of the bit-sliced engine against the
// dense statevector simulator, on randomized states and randomized circuits.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "statevector/statevector.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

constexpr double kTol = 1e-9;

void expectStatesMatch(SliqSimulator& sliq, const StatevectorSimulator& dense,
                       const std::string& context) {
  const auto got = sliq.statevector();
  ASSERT_EQ(got.size(), dense.state().size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), dense.state()[i].real(), kTol)
        << context << " index " << i;
    EXPECT_NEAR(got[i].imag(), dense.state()[i].imag(), kTol)
        << context << " index " << i;
  }
}

/// Applies a pseudo-random supported-gate prefix to both engines.
void randomPrefix(SliqSimulator& sliq, StatevectorSimulator& dense,
                  unsigned n, unsigned len, std::uint64_t seed) {
  const QuantumCircuit prefix = randomCircuit(n, len, seed);
  sliq.run(prefix);
  dense.run(prefix);
}

struct GateCase {
  const char* name;
  Gate gate;
};

class SingleGate : public ::testing::TestWithParam<GateCase> {};

TEST_P(SingleGate, MatchesDenseOnRandomStates) {
  const GateCase& gc = GetParam();
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    SliqSimulator sliq(4);
    StatevectorSimulator dense(4);
    randomPrefix(sliq, dense, 4, 16, seed);
    sliq.applyGate(gc.gate);
    dense.applyGate(gc.gate);
    expectStatesMatch(sliq, dense, std::string(gc.name) + " seed " +
                                       std::to_string(seed));
    EXPECT_NEAR(sliq.totalProbability(), 1.0, kTol) << gc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, SingleGate,
    ::testing::Values(
        GateCase{"X", Gate{GateKind::kX, {1}, {}}},
        GateCase{"Y", Gate{GateKind::kY, {2}, {}}},
        GateCase{"Z", Gate{GateKind::kZ, {0}, {}}},
        GateCase{"H", Gate{GateKind::kH, {3}, {}}},
        GateCase{"S", Gate{GateKind::kS, {1}, {}}},
        GateCase{"Sdg", Gate{GateKind::kSdg, {1}, {}}},
        GateCase{"T", Gate{GateKind::kT, {2}, {}}},
        GateCase{"Tdg", Gate{GateKind::kTdg, {2}, {}}},
        GateCase{"Rx90", Gate{GateKind::kRx90, {0}, {}}},
        GateCase{"Ry90", Gate{GateKind::kRy90, {3}, {}}},
        GateCase{"CNOT", Gate{GateKind::kCnot, {2}, {0}}},
        GateCase{"CZ", Gate{GateKind::kCz, {1}, {3}}},
        GateCase{"Toffoli", Gate{GateKind::kCnot, {3}, {0, 1}}},
        GateCase{"Toffoli3", Gate{GateKind::kCnot, {3}, {0, 1, 2}}},
        GateCase{"MCZ", Gate{GateKind::kCz, {3}, {0, 2}}},
        GateCase{"SWAP", Gate{GateKind::kSwap, {0, 2}, {}}},
        GateCase{"Fredkin", Gate{GateKind::kSwap, {1, 3}, {0}}},
        GateCase{"Fredkin2c", Gate{GateKind::kSwap, {2, 3}, {0, 1}}}),
    [](const ::testing::TestParamInfo<GateCase>& info) {
      return info.param.name;
    });

class RandomCircuitMatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCircuitMatch, FullCircuitAgainstDense) {
  const std::uint64_t seed = GetParam();
  const unsigned n = 5;
  const QuantumCircuit circuit = randomCircuit(n, 40, seed);
  SliqSimulator sliq(n);
  StatevectorSimulator dense(n);
  sliq.run(circuit);
  dense.run(circuit);
  expectStatesMatch(sliq, dense, "seed " + std::to_string(seed));
  EXPECT_NEAR(sliq.totalProbability(), 1.0, kTol);
  // Probabilities agree per qubit.
  for (unsigned q = 0; q < n; ++q) {
    EXPECT_NEAR(sliq.probabilityOne(q), dense.probabilityOne(q), kTol)
        << "qubit " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitMatch,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(RxRyCircuits, MatchDense) {
  // Rx/Ry are excluded from randomCircuit (per the paper's recipe), so
  // exercise them in dedicated mixed circuits here.
  Rng rng(9);
  for (int rep = 0; rep < 6; ++rep) {
    const unsigned n = 4;
    SliqSimulator sliq(n);
    StatevectorSimulator dense(n);
    for (int g = 0; g < 30; ++g) {
      const unsigned q = static_cast<unsigned>(rng.below(n));
      Gate gate;
      switch (rng.below(4)) {
        case 0: gate = Gate{GateKind::kRx90, {q}, {}}; break;
        case 1: gate = Gate{GateKind::kRy90, {q}, {}}; break;
        case 2: gate = Gate{GateKind::kT, {q}, {}}; break;
        default: gate = Gate{GateKind::kH, {q}, {}}; break;
      }
      sliq.applyGate(gate);
      dense.applyGate(gate);
    }
    expectStatesMatch(sliq, dense, "rep " + std::to_string(rep));
  }
}

TEST(AlgebraicExactness, ProbabilitiesSumExactlyToOne) {
  // The killer feature vs QMDD/DDSIM: after thousands of gates the total
  // probability is *exactly* 1 (one final rounding).
  const QuantumCircuit circuit = randomCircuit(6, 300, 424242);
  SliqSimulator sliq(6);
  sliq.run(circuit);
  const Zroot2 w = sliq.totalWeightScaled();
  // Exact invariant: Σ|α|²·2ᵏ == 2ᵏ.
  EXPECT_EQ(w.irrational(), BigInt(0));
  EXPECT_EQ(w.rational(),
            BigInt(1) << static_cast<unsigned>(sliq.kScalar()));
}

TEST(GateAlgebra, ExactIdentitiesOnBitSlicedEngine) {
  const QuantumCircuit prefix = randomCircuit(3, 15, 5);
  auto fresh = [&] {
    auto sim = std::make_unique<SliqSimulator>(3);
    sim->run(prefix);
    return sim;
  };
  auto statesEqual = [&](SliqSimulator& x, SliqSimulator& y) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      if (!(x.amplitude(i) == y.amplitude(i))) return false;
    }
    return true;
  };
  {  // T⁸ = I (exactly, in the algebraic representation)
    auto a = fresh(), b = fresh();
    for (int i = 0; i < 8; ++i) a->applyGate(Gate{GateKind::kT, {0}, {}});
    EXPECT_TRUE(statesEqual(*a, *b));
  }
  {  // S·S† = I
    auto a = fresh(), b = fresh();
    a->applyGate(Gate{GateKind::kS, {1}, {}});
    a->applyGate(Gate{GateKind::kSdg, {1}, {}});
    EXPECT_TRUE(statesEqual(*a, *b));
  }
  {  // Z = S² (exact)
    auto a = fresh(), b = fresh();
    a->applyGate(Gate{GateKind::kS, {2}, {}});
    a->applyGate(Gate{GateKind::kS, {2}, {}});
    b->applyGate(Gate{GateKind::kZ, {2}, {}});
    EXPECT_TRUE(statesEqual(*a, *b));
  }
  {  // CZ is symmetric in its two qubits
    auto a = fresh(), b = fresh();
    a->applyGate(Gate{GateKind::kCz, {1}, {0}});
    b->applyGate(Gate{GateKind::kCz, {0}, {1}});
    EXPECT_TRUE(statesEqual(*a, *b));
  }
  {  // Fredkin = CNOT-conjugated Toffoli
    auto a = fresh(), b = fresh();
    a->applyGate(Gate{GateKind::kSwap, {1, 2}, {0}});
    b->applyGate(Gate{GateKind::kCnot, {1}, {2}});
    b->applyGate(Gate{GateKind::kCnot, {2}, {0, 1}});
    b->applyGate(Gate{GateKind::kCnot, {1}, {2}});
    EXPECT_TRUE(statesEqual(*a, *b));
  }
}

}  // namespace
}  // namespace sliq
