#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "statevector/statevector.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

constexpr double kTol = 1e-9;

TEST(Measurement, ProbabilitiesMatchDenseAfterRandomCircuit) {
  for (std::uint64_t seed : {4ull, 5ull, 6ull}) {
    const QuantumCircuit c = randomCircuit(5, 35, seed);
    SliqSimulator sliq(5);
    StatevectorSimulator dense(5);
    sliq.run(c);
    dense.run(c);
    for (unsigned q = 0; q < 5; ++q)
      EXPECT_NEAR(sliq.probabilityOne(q), dense.probabilityOne(q), kTol);
  }
}

TEST(Measurement, CollapseMatchesDense) {
  const QuantumCircuit c = randomCircuit(4, 25, 9);
  SliqSimulator sliq(4);
  StatevectorSimulator dense(4);
  sliq.run(c);
  dense.run(c);
  // Force the same outcomes on both engines.
  for (unsigned q = 0; q < 4; q += 2) {
    const double random = 0.25;
    const bool a = sliq.measure(q, random);
    const bool b = dense.measure(q, random);
    ASSERT_EQ(a, b) << "qubit " << q;
    // Post-collapse distributions agree on the remaining qubits.
    for (unsigned p = 0; p < 4; ++p)
      EXPECT_NEAR(sliq.probabilityOne(p), dense.probabilityOne(p), kTol);
  }
}

TEST(Measurement, BellStateCorrelation) {
  SliqSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  sim.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  const bool first = sim.measure(0, 0.7);
  // Perfect correlation, exactly.
  EXPECT_NEAR(sim.probabilityOne(1), first ? 1.0 : 0.0, 0.0);
  const bool second = sim.measure(1, 0.99);
  EXPECT_EQ(first, second);
}

TEST(Measurement, GhzSequentialMeasurementAllAgree) {
  SliqSimulator sim(8);
  sim.run(entanglementCircuit(8));
  Rng rng(31);
  const bool first = sim.measure(0, rng.uniform());
  for (unsigned q = 1; q < 8; ++q) {
    EXPECT_EQ(sim.measure(q, rng.uniform()), first) << q;
  }
}

TEST(Measurement, MeasurementFrequenciesFollowBornRule) {
  // |ψ⟩ = T H |0⟩ then H: Pr[1] = (2-√2)/4 ≈ 0.1464. Exact check via
  // probabilityOne, stochastic check via measure().
  auto build = [] {
    auto sim = std::make_unique<SliqSimulator>(1);
    sim->applyGate(Gate{GateKind::kH, {0}, {}});
    sim->applyGate(Gate{GateKind::kT, {0}, {}});
    sim->applyGate(Gate{GateKind::kH, {0}, {}});
    return sim;
  };
  auto sim = build();
  const double p1 = sim->probabilityOne(0);
  EXPECT_NEAR(p1, (2.0 - std::sqrt(2.0)) / 4.0, 1e-15);
  Rng rng(17);
  int ones = 0;
  const int kShots = 3000;
  for (int s = 0; s < kShots; ++s) {
    auto shot = build();
    ones += shot->measure(0, rng.uniform());
  }
  EXPECT_NEAR(double(ones) / kShots, p1, 0.02);
}

TEST(Measurement, SampleAllMatchesDistribution) {
  // Two-qubit state with asymmetric probabilities.
  SliqSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  sim.applyGate(Gate{GateKind::kT, {0}, {}});
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  sim.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  StatevectorSimulator dense(2);
  dense.applyGate(Gate{GateKind::kH, {0}, {}});
  dense.applyGate(Gate{GateKind::kT, {0}, {}});
  dense.applyGate(Gate{GateKind::kH, {0}, {}});
  dense.applyGate(Gate{GateKind::kCnot, {1}, {0}});

  Rng rng(23);
  std::map<unsigned, int> counts;
  const int kShots = 4000;
  for (int s = 0; s < kShots; ++s) {
    const auto bits = sim.sampleAll(rng);
    unsigned index = 0;
    for (unsigned q = 0; q < 2; ++q) index |= bits[q] ? 1u << q : 0;
    ++counts[index];
  }
  for (unsigned i = 0; i < 4; ++i) {
    const double expected = std::norm(dense.amplitude(i));
    EXPECT_NEAR(double(counts[i]) / kShots, expected, 0.03) << i;
  }
}

TEST(Measurement, SampleAllUniformOnSkippedQubits) {
  // Uniform superposition: the monolithic BDD skips every qubit level, so
  // sampling must still produce uniform bits.
  SliqSimulator sim(3);
  for (unsigned q = 0; q < 3; ++q)
    sim.applyGate(Gate{GateKind::kH, {q}, {}});
  Rng rng(41);
  std::map<unsigned, int> counts;
  for (int s = 0; s < 4000; ++s) {
    const auto bits = sim.sampleAll(rng);
    unsigned index = 0;
    for (unsigned q = 0; q < 3; ++q) index |= bits[q] ? 1u << q : 0;
    ++counts[index];
  }
  for (unsigned i = 0; i < 8; ++i) EXPECT_NEAR(counts[i], 500, 100) << i;
}

TEST(Measurement, NormalizationCorrectionAfterCollapse) {
  // Dyadic collapse (Clifford): the post-measure renormalization path
  // re-points the k scalar at the halved weight, so the state is exactly
  // normalized again and the correction degenerates to 1 (DESIGN.md §8).
  SliqSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  sim.applyGate(Gate{GateKind::kH, {1}, {}});
  sim.measure(0, 0.2);  // collapse to q0 = 1 branch (p1 = 0.5 > 0.2)
  EXPECT_NEAR(sim.totalProbability(), 1.0, 1e-12);
  EXPECT_NEAR(sim.normalizationCorrection(), 1.0, 1e-12);
  const auto amp = sim.amplitude(0b01).toComplex();
  EXPECT_NEAR(std::abs(amp), 1.0 / std::sqrt(2.0), 1e-12);

  // Non-dyadic collapse (T-circuit): √(keep probability) is not a power of
  // √2, so the state stays sub-normalized and normalizationCorrection
  // restores physical amplitudes, exactly as before.
  SliqSimulator tsim(1);
  tsim.applyGate(Gate{GateKind::kH, {0}, {}});
  tsim.applyGate(Gate{GateKind::kT, {0}, {}});
  tsim.applyGate(Gate{GateKind::kH, {0}, {}});
  // p1 = (2−√2)/4 ≈ 0.1464: random 0.5 collapses to the 0 branch.
  const double keep = (2.0 + std::sqrt(2.0)) / 4.0;
  EXPECT_FALSE(tsim.measure(0, 0.5));
  EXPECT_NEAR(tsim.totalProbability(), keep, 1e-12);
  const double s = tsim.normalizationCorrection();
  EXPECT_NEAR(s, 1.0 / std::sqrt(keep), 1e-12);
  EXPECT_NEAR(std::abs(tsim.amplitude(0).toComplex()) * s, 1.0, 1e-12);
}

TEST(Measurement, RepeatedMeasurementIsStable) {
  SliqSimulator sim(3);
  sim.run(entanglementCircuit(3));
  const bool v = sim.measure(1, 0.4);
  for (int i = 0; i < 3; ++i) {
    // Measuring the same qubit again returns the same value surely.
    EXPECT_EQ(sim.measure(1, 0.999), v);
    EXPECT_EQ(sim.measure(1, 0.0), v);
  }
}

}  // namespace
}  // namespace sliq
