// Exact functional equivalence checking (the SliQEC-style extension).
#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "circuit/optimizer.hpp"
#include "core/equivalence.hpp"

namespace sliq {
namespace {

TEST(Equivalence, IdenticalCircuitsAreEqual) {
  const QuantumCircuit c = randomCircuit(4, 25, 3);
  EXPECT_EQ(checkEquivalence(c, c), Equivalence::kEqual);
}

TEST(Equivalence, KnownIdentities) {
  // X = HZH.
  QuantumCircuit lhs(2), rhs(2);
  lhs.x(0);
  rhs.h(0).z(0).h(0);
  EXPECT_EQ(checkEquivalence(lhs, rhs), Equivalence::kEqual);
  // SWAP = 3 CNOTs.
  QuantumCircuit sw(3), cxs(3);
  sw.swap(0, 2);
  cxs.cx(0, 2).cx(2, 0).cx(0, 2);
  EXPECT_EQ(checkEquivalence(sw, cxs), Equivalence::kEqual);
  // Fredkin = CNOT-conjugated Toffoli.
  QuantumCircuit fred(3), tof(3);
  fred.cswap(0, 1, 2);
  tof.cx(2, 1).ccx(0, 1, 2).cx(2, 1);
  EXPECT_EQ(checkEquivalence(fred, tof), Equivalence::kEqual);
  // T² = S, S² = Z.
  QuantumCircuit t2(1), s1(1);
  t2.t(0).t(0);
  s1.s(0);
  EXPECT_EQ(checkEquivalence(t2, s1), Equivalence::kEqual);
}

TEST(Equivalence, DistinguishesNonEquivalentCircuits) {
  QuantumCircuit a(2), b(2), c(2);
  a.h(0).cx(0, 1);
  b.h(0).cx(0, 1).z(1);
  c.h(1).cx(1, 0);
  EXPECT_EQ(checkEquivalence(a, b), Equivalence::kNotEquivalent);
  EXPECT_EQ(checkEquivalence(a, c), Equivalence::kNotEquivalent);
  // One T gate of difference is detected exactly (no tolerance games).
  QuantumCircuit d = a;
  d.t(0);
  EXPECT_EQ(checkEquivalence(a, d), Equivalence::kNotEquivalent);
}

TEST(Equivalence, GlobalPhaseDetected) {
  // Y = i·X·Z: equal only up to the global phase i = ω².
  QuantumCircuit y(1), xz(1);
  y.y(0);
  xz.z(0).x(0);
  EXPECT_EQ(checkEquivalence(y, xz), Equivalence::kEqualUpToPhase);
  EquivalenceOptions strict;
  strict.allowGlobalPhase = false;
  EXPECT_EQ(checkEquivalence(y, xz, strict), Equivalence::kNotEquivalent);
}

TEST(Equivalence, InverseComposesToIdentity) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    const QuantumCircuit c = randomCircuit(4, 20, seed);
    QuantumCircuit identity(4);
    // An empty circuit is not constructible through run(); compare against
    // c·c⁻¹ instead.
    QuantumCircuit roundTrip = c;
    roundTrip.compose(c.inverse());
    QuantumCircuit empty(4, "empty");
    EXPECT_EQ(checkEquivalence(roundTrip, empty), Equivalence::kEqual)
        << seed;
  }
}

TEST(Equivalence, CommutingGatesReorder) {
  QuantumCircuit a(3), b(3);
  a.h(0).t(1).x(2);
  b.x(2).h(0).t(1);
  EXPECT_EQ(checkEquivalence(a, b), Equivalence::kEqual);
}

TEST(Equivalence, RejectsWidthMismatch) {
  QuantumCircuit a(2), b(3);
  EXPECT_THROW(checkEquivalence(a, b), std::invalid_argument);
}

TEST(Equivalence, OptimizerOutputAlwaysEquivalent) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const QuantumCircuit c = randomCircuit(4, 40, seed);
    OptimizerReport report;
    const QuantumCircuit opt = optimizeCircuit(c, &report);
    EXPECT_EQ(checkEquivalence(c, opt), Equivalence::kEqual) << seed;
    EXPECT_LE(report.gatesAfter, report.gatesBefore);
  }
}

}  // namespace
}  // namespace sliq
