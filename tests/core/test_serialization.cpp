// Engine state snapshots (Engine::saveState / Engine::loadState): for every
// registered engine, save→load round-trips must reproduce the state
// bit-identically (probabilities, expectations, seeded sample streams, and
// the re-saved bytes themselves), and every corrupted or truncated snapshot
// must be rejected with a diagnostic — leaving the receiving engine's state
// untouched. The committed golden fixtures pin cross-build format
// compatibility (regenerate with SLIQ_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "support/rng.hpp"
#include "support/serialize.hpp"

namespace sliq {
namespace {

bool isClifford(const std::string& engine) { return engine == "chp"; }

/// GHZ-4 dressed with extra Cliffords — valid on every engine; non-Clifford
/// engines get T-layer dressing on top so their payloads exercise
/// non-stabilizer amplitudes.
QuantumCircuit fixtureCircuit(const std::string& engine) {
  QuantumCircuit c(4);
  c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).s(1).cz(0, 2).sdg(3);
  if (!isClifford(engine)) c.t(0).t(1).tdg(2);
  return c;
}

QuantumCircuit bellCircuit(const std::string& engine) {
  QuantumCircuit c(2);
  c.h(0).cx(0, 1);
  if (!isClifford(engine)) c.t(1);
  return c;
}

std::string saveToString(Engine& engine) {
  std::ostringstream out;
  engine.saveState(out);
  return out.str();
}

void loadFromString(Engine& engine, const std::string& bytes) {
  std::istringstream in(bytes);
  engine.loadState(in);
}

std::vector<double> allProbabilities(Engine& engine) {
  std::vector<double> probs;
  for (unsigned q = 0; q < engine.numQubits(); ++q)
    probs.push_back(engine.probabilityOne(q));
  return probs;
}

PauliObservable probeObservable(unsigned numQubits) {
  PauliObservable obs;
  std::vector<PauliFactor> factors;
  for (unsigned q = 0; q < numQubits; ++q)
    factors.push_back({q, q % 2 == 0 ? Pauli::kZ : Pauli::kX});
  obs.addTerm(1.0, std::move(factors));
  return obs;
}

TEST(Serialization, RoundTripIsBitIdentical) {
  for (const std::string& name : engineNames()) {
    const QuantumCircuit circuit = fixtureCircuit(name);
    const std::unique_ptr<Engine> original =
        makeEngine(name, circuit.numQubits());
    original->run(circuit);
    const std::string bytes = saveToString(*original);

    const std::unique_ptr<Engine> restored =
        makeEngine(name, circuit.numQubits());
    loadFromString(*restored, bytes);
    restored->auditInvariants();

    // Canonical re-serialization: saving the restored state reproduces the
    // original bytes exactly (the loaders rebuild through the managers'
    // canonicalizing constructors, so nothing drifts). Checked before any
    // query — queries may legitimately renormalize internal representation
    // details (e.g. the exact engine's bit-width) on BOTH engines alike.
    EXPECT_EQ(saveToString(*restored), bytes) << name;

    // Bit-identical queries: probabilities, expectations, and the seeded
    // sample stream — EXPECT_EQ on doubles deliberately, not EXPECT_NEAR.
    EXPECT_EQ(allProbabilities(*original), allProbabilities(*restored))
        << name;
    const PauliObservable obs = probeObservable(circuit.numQubits());
    EXPECT_EQ(original->expectation(obs), restored->expectation(obs)) << name;
    Rng rngA(42), rngB(42);
    EXPECT_EQ(original->sampleShots(16, rngA),
              restored->sampleShots(16, rngB))
        << name;
  }
}

TEST(Serialization, ResumeSemanticsMatchStraightThroughRun) {
  // loadState then run(rest) == run(whole): the CLI's --save-state /
  // --load-state checkpoint-resume contract, at the library level.
  for (const std::string& name : engineNames()) {
    const QuantumCircuit whole = fixtureCircuit(name);
    const std::size_t cut = whole.gateCount() / 2;
    QuantumCircuit prefix(whole.numQubits()), rest(whole.numQubits());
    for (std::size_t i = 0; i < whole.gateCount(); ++i)
      (i < cut ? prefix : rest).append(whole.gate(i));

    const std::unique_ptr<Engine> straight =
        makeEngine(name, whole.numQubits());
    straight->run(whole);

    const std::unique_ptr<Engine> first = makeEngine(name, whole.numQubits());
    first->run(prefix);
    const std::string checkpoint = saveToString(*first);
    const std::unique_ptr<Engine> resumed =
        makeEngine(name, whole.numQubits());
    loadFromString(*resumed, checkpoint);
    resumed->run(rest);

    EXPECT_EQ(allProbabilities(*straight), allProbabilities(*resumed))
        << name;
    Rng rngA(7), rngB(7);
    EXPECT_EQ(straight->sampleShots(8, rngA), resumed->sampleShots(8, rngB))
        << name;
  }
}

TEST(Serialization, WrongRepresentationTagIsRejected) {
  const std::unique_ptr<Engine> exact = makeEngine("exact", 2);
  exact->run(bellCircuit("exact"));
  const std::string bytes = saveToString(*exact);
  const std::unique_ptr<Engine> chp = makeEngine("chp", 2);
  try {
    loadFromString(*chp, bytes);
    FAIL() << "expected SerializationError";
  } catch (const serialize::SerializationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("exact"), std::string::npos) << what;
    EXPECT_NE(what.find("chp"), std::string::npos) << what;
    EXPECT_NE(what.find("representation"), std::string::npos) << what;
  }
}

TEST(Serialization, WrongQubitCountIsRejected) {
  const std::unique_ptr<Engine> three = makeEngine("statevector", 3);
  const std::string bytes = saveToString(*three);
  const std::unique_ptr<Engine> two = makeEngine("statevector", 2);
  try {
    loadFromString(*two, bytes);
    FAIL() << "expected SerializationError";
  } catch (const serialize::SerializationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3"), std::string::npos) << what;
    EXPECT_NE(what.find("2"), std::string::npos) << what;
  }
}

TEST(Serialization, EveryByteFlipIsRejectedAndStateSurvives) {
  // Byte-level corruption injection: no single-byte flip may load, and a
  // failed load must leave the receiving engine exactly as it was (the
  // never-partial-state rule) — pinned by comparing its queries before and
  // after every rejected attempt.
  for (const std::string& name : engineNames()) {
    const QuantumCircuit circuit = bellCircuit(name);
    const std::unique_ptr<Engine> source =
        makeEngine(name, circuit.numQubits());
    source->run(circuit);
    const std::string good = saveToString(*source);

    const std::unique_ptr<Engine> target =
        makeEngine(name, circuit.numQubits());
    target->run(circuit);
    const std::vector<double> before = allProbabilities(*target);

    for (std::size_t i = 0; i < good.size(); ++i) {
      std::string corrupt = good;
      corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5a);
      EXPECT_THROW(loadFromString(*target, corrupt),
                   serialize::SerializationError)
          << name << " byte " << i;
      ASSERT_EQ(allProbabilities(*target), before) << name << " byte " << i;
    }
    // And the target still accepts the intact snapshot afterwards.
    EXPECT_NO_THROW(loadFromString(*target, good)) << name;
  }
}

TEST(Serialization, EveryTruncationIsRejected) {
  for (const std::string& name : engineNames()) {
    const QuantumCircuit circuit = bellCircuit(name);
    const std::unique_ptr<Engine> source =
        makeEngine(name, circuit.numQubits());
    source->run(circuit);
    const std::string good = saveToString(*source);
    const std::unique_ptr<Engine> target =
        makeEngine(name, circuit.numQubits());
    for (std::size_t len = 0; len < good.size(); ++len) {
      EXPECT_THROW(loadFromString(*target, good.substr(0, len)),
                   serialize::SerializationError)
          << name << " length " << len;
    }
  }
}

// ---- payload-level validation (valid envelope, hostile payload) -----------

std::string envelopeAround(const std::string& repr, std::uint32_t numQubits,
                           const serialize::Writer& payload) {
  std::ostringstream out;
  serialize::writeSnapshot(out, repr, numQubits, payload.data());
  return out.str();
}

TEST(Serialization, PayloadWidthMismatchIsRejected) {
  // Envelope says 2 qubits (matching the engine) but the payload's own
  // width field says 3 — the loader cross-checks both.
  serialize::Writer payload;
  payload.u32(3);
  const std::unique_ptr<Engine> engine = makeEngine("statevector", 2);
  EXPECT_THROW(
      loadFromString(*engine, envelopeAround("statevector", 2, payload)),
      serialize::SerializationError);
}

TEST(Serialization, TrailingPayloadBytesAreRejected) {
  for (const std::string& name : engineNames()) {
    const QuantumCircuit circuit = bellCircuit(name);
    const std::unique_ptr<Engine> source =
        makeEngine(name, circuit.numQubits());
    source->run(circuit);
    // Re-wrap the valid payload with one extra byte appended: the envelope
    // (sizes, checksum) is coherent, so only requireExhausted can object.
    std::istringstream in(saveToString(*source));
    const serialize::Snapshot snap = serialize::readSnapshot(in);
    serialize::Writer padded;
    padded.bytes(snap.payload.data(), snap.payload.size());
    padded.u8(0);
    const std::unique_ptr<Engine> target =
        makeEngine(name, circuit.numQubits());
    try {
      loadFromString(*target,
                     envelopeAround(name, circuit.numQubits(), padded));
      FAIL() << name << ": expected SerializationError";
    } catch (const serialize::SerializationError& e) {
      EXPECT_NE(std::string(e.what()).find("trailing"), std::string::npos)
          << name << ": " << e.what();
    }
  }
}

TEST(Serialization, ChpStrayBitsBeyondRegisterAreRejected) {
  // A 2-qubit tableau travels as full 64-bit words; bits 2..63 must be
  // zero. Take a valid snapshot and set a stray bit in the first row's
  // x-word (payload layout: u32 n, u32 words, then rows of x/z words).
  const std::unique_ptr<Engine> source = makeEngine("chp", 2);
  source->run(bellCircuit("chp"));
  std::istringstream in(saveToString(*source));
  const serialize::Snapshot snap = serialize::readSnapshot(in);
  std::vector<std::uint8_t> payload = snap.payload;
  payload[8] |= 0x04;  // qubit-2 bit of row 0's first x-word
  serialize::Writer hostile;
  hostile.bytes(payload.data(), payload.size());
  const std::unique_ptr<Engine> target = makeEngine("chp", 2);
  try {
    loadFromString(*target, envelopeAround("chp", 2, hostile));
    FAIL() << "expected SerializationError";
  } catch (const serialize::SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("stray"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, QmddForwardReferenceIsRejected) {
  // Node record 0 referencing record 5 violates children-before-parents.
  serialize::Writer payload;
  payload.u32(2);  // numQubits
  payload.u64(1);  // nodeCount
  payload.u32(0);  // node 0: level 0
  payload.u32(5);  // e0 ref: forward reference
  payload.f64(1.0);
  payload.f64(0.0);
  payload.u32(0xffffffffu);  // e1: terminal
  payload.f64(0.0);
  payload.f64(0.0);
  const std::unique_ptr<Engine> engine = makeEngine("qmdd", 2);
  try {
    loadFromString(*engine, envelopeAround("qmdd", 2, payload));
    FAIL() << "expected SerializationError";
  } catch (const serialize::SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("precede"), std::string::npos)
        << e.what();
  }
}

TEST(Serialization, FuzzRoundTripsRandomCircuits) {
  // Differential-fuzz-style: fixed-seed random circuits per engine, each
  // saved, restored, and compared bit-identically on every query surface.
  Rng rng(20260808);
  for (const std::string& name : engineNames()) {
    for (int trial = 0; trial < 8; ++trial) {
      const unsigned n = 2 + static_cast<unsigned>(rng.uniform() * 4);  // 2..5
      QuantumCircuit circuit(n);
      const int gates = 4 + static_cast<int>(rng.uniform() * 20);
      for (int g = 0; g < gates; ++g) {
        const unsigned q = static_cast<unsigned>(rng.uniform() * n);
        unsigned p = static_cast<unsigned>(rng.uniform() * n);
        if (p == q) p = (q + 1) % n;
        const int kinds = isClifford(name) ? 8 : 10;
        switch (static_cast<int>(rng.uniform() * kinds)) {
          case 0: circuit.h(q); break;
          case 1: circuit.s(q); break;
          case 2: circuit.sdg(q); break;
          case 3: circuit.x(q); break;
          case 4: circuit.y(q); break;
          case 5: circuit.z(q); break;
          case 6: circuit.cx(q, p); break;
          case 7: circuit.cz(q, p); break;
          case 8: circuit.t(q); break;
          default: circuit.tdg(q); break;
        }
      }
      const std::unique_ptr<Engine> original = makeEngine(name, n);
      original->run(circuit);
      const std::string bytes = saveToString(*original);
      const std::unique_ptr<Engine> restored = makeEngine(name, n);
      loadFromString(*restored, bytes);
      restored->auditInvariants();
      EXPECT_EQ(saveToString(*restored), bytes) << name << " trial " << trial;
      EXPECT_EQ(allProbabilities(*original), allProbabilities(*restored))
          << name << " trial " << trial;
      const PauliObservable obs = probeObservable(n);
      EXPECT_EQ(original->expectation(obs), restored->expectation(obs))
          << name << " trial " << trial;
      Rng rngA(trial), rngB(trial);
      EXPECT_EQ(original->sampleShots(8, rngA),
                restored->sampleShots(8, rngB))
          << name << " trial " << trial;
    }
  }
}

// ---- golden fixtures -------------------------------------------------------

std::string goldenPath(const std::string& engine) {
  return std::string(SLIQ_SERIALIZATION_GOLDEN_DIR) + "/golden-" + engine +
         serialize::kFileExtension;
}

TEST(Serialization, GoldenFixturesLoadOnEveryBuild) {
  // Format-compatibility pin: the committed .sliqstate fixtures were
  // written by an earlier build; every current build must load them and
  // reproduce the fixture circuit's state exactly. Regenerate (only after
  // a deliberate, version-bumped format change) with:
  //   SLIQ_REGEN_GOLDEN=1 ./test_serialization
  for (const std::string& name : engineNames()) {
    const QuantumCircuit circuit = fixtureCircuit(name);
    const std::unique_ptr<Engine> reference =
        makeEngine(name, circuit.numQubits());
    reference->run(circuit);

    if (std::getenv("SLIQ_REGEN_GOLDEN") != nullptr) {
      std::ofstream out(goldenPath(name), std::ios::binary);
      ASSERT_TRUE(out) << goldenPath(name);
      reference->saveState(out);
      continue;
    }

    std::ifstream in(goldenPath(name), std::ios::binary);
    ASSERT_TRUE(in) << "missing golden fixture " << goldenPath(name)
                    << " — regenerate with SLIQ_REGEN_GOLDEN=1";
    const std::unique_ptr<Engine> restored =
        makeEngine(name, circuit.numQubits());
    restored->loadState(in);
    restored->auditInvariants();
    EXPECT_EQ(allProbabilities(*reference), allProbabilities(*restored))
        << name;
    const PauliObservable obs = probeObservable(circuit.numQubits());
    EXPECT_EQ(reference->expectation(obs), restored->expectation(obs))
        << name;
    Rng rngA(11), rngB(11);
    EXPECT_EQ(reference->sampleShots(16, rngA),
              restored->sampleShots(16, rngB))
        << name;
  }
}

}  // namespace
}  // namespace sliq
