// Dynamic-circuit execution through the Engine facade: classical control
// flow, collapse/reset semantics, the cross-engine deviate-consumption
// contract, and the closed-form scenarios (teleportation, repeat-until-
// success) that only dynamic circuits can express.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/optimizer.hpp"
#include "core/engine_registry.hpp"
#include "core/equivalence.hpp"
#include "core/observable.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

/// ⟨P_q⟩ of a single one-qubit Pauli on the engine's current state.
double pauliExpectation(Engine& engine, unsigned q, Pauli p) {
  PauliObservable obs;
  obs.addTerm(1.0, {PauliFactor{q, p}});
  return engine.expectation(obs);
}

/// Standard teleportation of the 1-qubit state prepared by `payloadPrep`
/// on q0: Bell pair (q1, q2), Bell measurement of (q0, q1) into c, then
/// the classically-controlled Pauli corrections on q2.
QuantumCircuit teleport(const std::vector<Gate>& payloadPrep) {
  QuantumCircuit c(3, "teleport");
  c.declareClassicalRegister(2);
  for (const Gate& g : payloadPrep) c.append(g);
  c.h(1).cx(1, 2);
  c.cx(0, 1).h(0);
  c.measure(0, 0).measure(1, 1);
  c.onlyIf(2, Gate{GateKind::kX, {2}, {}});
  c.onlyIf(3, Gate{GateKind::kX, {2}, {}});
  c.onlyIf(1, Gate{GateKind::kZ, {2}, {}});
  c.onlyIf(3, Gate{GateKind::kZ, {2}, {}});
  return c;
}

TEST(Dynamic, StaticRunRejectsDynamicCircuits) {
  QuantumCircuit c(2);
  c.declareClassicalRegister(1);
  c.h(0).measure(0, 0);
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    EXPECT_THROW(makeEngine(name, 2)->run(c), std::logic_error);
  }
}

TEST(Dynamic, RunDynamicDegeneratesToRunOnStaticCircuits) {
  QuantumCircuit c(2);
  c.h(0).cx(0, 1).t(1);
  for (const std::string& name : engineNames()) {
    if (name == "chp") continue;  // T gate
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> viaRun = makeEngine(name, 2);
    viaRun->run(c);
    std::unique_ptr<Engine> viaDynamic = makeEngine(name, 2);
    Rng rng(1);
    const DynamicRun result = viaDynamic->runDynamic(c, rng);
    EXPECT_EQ(result.measures, 0u);
    EXPECT_EQ(result.resets, 0u);
    EXPECT_TRUE(result.creg.empty());
    // No deviate was drawn for a measure-free circuit.
    EXPECT_EQ(rng.next(), Rng(1).next());
    for (unsigned q = 0; q < 2; ++q) {
      EXPECT_NEAR(viaDynamic->probabilityOne(q), viaRun->probabilityOne(q),
                  1e-12);
    }
  }
}

TEST(Dynamic, ClassicalConditionsGateExecution) {
  // x q0 makes the first measure deterministically 1; the condition c==1
  // then fires the X on q1, whose measure records 1; the condition c==0
  // (now false: c==3) must NOT fire the X on q2.
  QuantumCircuit c(3);
  c.declareClassicalRegister(3);
  c.x(0);
  c.measure(0, 0);
  c.onlyIf(1, Gate{GateKind::kX, {1}, {}});
  c.measure(1, 1);
  c.onlyIf(0, Gate{GateKind::kX, {2}, {}});
  c.measure(2, 2);
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 3);
    Rng rng(7);
    const DynamicRun result = engine->runDynamic(c, rng);
    ASSERT_EQ(result.creg.size(), 3u);
    EXPECT_TRUE(result.creg[0]);
    EXPECT_TRUE(result.creg[1]);
    EXPECT_FALSE(result.creg[2]);
    EXPECT_EQ(result.cregValue(), 3u);
    EXPECT_EQ(result.measures, 3u);
    EXPECT_EQ(result.outcomes, (std::vector<bool>{true, true, false}));
  }
}

TEST(Dynamic, ResetForcesZeroFromAnyState) {
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    // From a superposition...
    {
      QuantumCircuit c(1);
      c.h(0).reset(0);
      std::unique_ptr<Engine> engine = makeEngine(name, 1);
      Rng rng(3);
      const DynamicRun result = engine->runDynamic(c, rng);
      EXPECT_EQ(result.resets, 1u);
      EXPECT_NEAR(engine->probabilityOne(0), 0.0, 1e-12);
      EXPECT_NEAR(engine->totalProbability(), 1.0, 1e-9);
    }
    // ...and from a definite |1⟩ (the X-correction branch of reset).
    {
      QuantumCircuit c(2);
      c.x(0).cx(0, 1).reset(0);
      std::unique_ptr<Engine> engine = makeEngine(name, 2);
      Rng rng(3);
      engine->runDynamic(c, rng);
      EXPECT_NEAR(engine->probabilityOne(0), 0.0, 1e-12);
      // The entangled partner keeps its collapsed value.
      EXPECT_NEAR(engine->probabilityOne(1), 1.0, 1e-12);
    }
  }
}

TEST(Dynamic, PostDynamicStateIsANewReferenceState) {
  const QuantumCircuit c = teleport({Gate{GateKind::kH, {0}, {}}});
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 3);
    Rng rng(11);
    const DynamicRun result = engine->runDynamic(c, rng);
    // Measured qubits hold their recorded value...
    EXPECT_NEAR(engine->probabilityOne(0), result.creg[0] ? 1.0 : 0.0, 1e-12);
    EXPECT_NEAR(engine->probabilityOne(1), result.creg[1] ? 1.0 : 0.0, 1e-12);
    // ...and the post-run state is sampleable and queryable (the collapse
    // restriction is re-armed, not left tripped by the mid-run measures).
    EXPECT_NO_THROW(engine->sampleShot(rng));
    EXPECT_NO_THROW(engine->expectation(PauliObservable{}));
    // An ad-hoc measure() afterwards trips it again.
    engine->measure(2, 0.5);
    EXPECT_THROW(engine->sampleShot(rng), std::logic_error);
  }
}

TEST(Dynamic, TeleportationPreservesThePayloadExactly) {
  // Payload T·H|0⟩ — Bloch vector (1/√2, 1/√2, 0), non-Clifford, so the
  // teleported state is checked on the three full-amplitude engines.
  const double inv = 1.0 / std::sqrt(2.0);
  const QuantumCircuit magic =
      teleport({Gate{GateKind::kH, {0}, {}}, Gate{GateKind::kT, {0}, {}}});
  for (const std::string& name : engineNames()) {
    if (name == "chp") continue;
    SCOPED_TRACE(name);
    std::set<std::uint64_t> branches;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      std::unique_ptr<Engine> engine = makeEngine(name, 3);
      Rng rng(seed);
      const DynamicRun result = engine->runDynamic(magic, rng);
      branches.insert(result.cregValue());
      // Fidelity 1: the output Bloch vector IS the payload's, for every
      // measurement branch.
      EXPECT_NEAR(pauliExpectation(*engine, 2, Pauli::kX), inv, 1e-10);
      EXPECT_NEAR(pauliExpectation(*engine, 2, Pauli::kY), inv, 1e-10);
      EXPECT_NEAR(pauliExpectation(*engine, 2, Pauli::kZ), 0.0, 1e-10);
    }
    // The 20 fixed seeds exercise every correction branch (validated once;
    // deterministic forever).
    EXPECT_EQ(branches.size(), 4u);
  }
  // Clifford payload S·H|0⟩ = |+i⟩ for the stabilizer engine: ⟨Y⟩ = +1.
  const QuantumCircuit clifford =
      teleport({Gate{GateKind::kH, {0}, {}}, Gate{GateKind::kS, {0}, {}}});
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::unique_ptr<Engine> engine = makeEngine("chp", 3);
    Rng rng(seed);
    engine->runDynamic(clifford, rng);
    EXPECT_NEAR(pauliExpectation(*engine, 2, Pauli::kY), 1.0, 1e-12);
    EXPECT_NEAR(pauliExpectation(*engine, 2, Pauli::kX), 0.0, 1e-12);
    EXPECT_NEAR(pauliExpectation(*engine, 2, Pauli::kZ), 0.0, 1e-12);
  }
}

TEST(Dynamic, RepeatUntilSuccessFailureDecaysGeometrically) {
  // K unrolled rounds of "flip a fair coin until it lands 0": round 1 runs
  // unconditionally, rounds 2..K only while the register still reads 1
  // (failure). P[fail after K rounds] = 2^-K.
  constexpr unsigned kRounds = 8;
  QuantumCircuit c(1, "rus");
  c.declareClassicalRegister(1);
  c.h(0).measure(0, 0);
  for (unsigned round = 1; round < kRounds; ++round) {
    c.onlyIf(1, Gate{GateKind::kReset, {0}, {}});
    c.onlyIf(1, Gate{GateKind::kH, {0}, {}});
    Gate m{GateKind::kMeasure, {0}, {}};
    m.cbit = 0;
    c.onlyIf(1, std::move(m));
  }
  constexpr unsigned kShots = 200;
  unsigned failures = 0;
  Rng rng(42);
  for (unsigned s = 0; s < kShots; ++s) {
    std::unique_ptr<Engine> engine = makeEngine("statevector", 1);
    const DynamicRun result = engine->runDynamic(c, rng);
    failures += result.creg[0] ? 1 : 0;
    // Deviate accounting doubles as a loop bound: a run that succeeded in
    // round r consumed 1 + 2(r-1) deviates (one measure per round, plus a
    // reset per retry), never more than 1 + 2(K-1).
    EXPECT_LE(result.measures + result.resets, 1 + 2 * (kRounds - 1));
  }
  // E[failures] = 200/256 ≈ 0.8; the bound is ~8 binomial sigmas out and
  // the fixed seed makes the draw deterministic anyway.
  EXPECT_LE(failures, 8u);
}

TEST(Dynamic, DeviateConsumptionIsPinnedAcrossEngines) {
  // Executed ops: 2 measures + 1 reset (the c==0 reset is skipped: c==3).
  // Contract: exactly one uniform deviate per executed measure/reset, in
  // op order, for EVERY engine — that is what makes seeded classical
  // outcome streams engine-independent.
  QuantumCircuit c(2);
  c.declareClassicalRegister(2);
  c.x(0);
  c.measure(0, 0);
  c.onlyIf(1, Gate{GateKind::kX, {1}, {}});
  c.measure(1, 1);
  c.reset(0);
  c.onlyIf(0, Gate{GateKind::kReset, {1}, {}});
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    Rng rng(99);
    const DynamicRun result = engine->runDynamic(c, rng);
    EXPECT_EQ(result.measures, 2u);
    EXPECT_EQ(result.resets, 1u);
    Rng expected(99);
    for (unsigned d = 0; d < 3; ++d) expected.next();
    EXPECT_EQ(rng.next(), expected.next());
  }
}

TEST(Dynamic, SampleShotsAfterRunDynamicKeepsItsDeviateContract) {
  // Extends the PR 2 sampleShots(0) pinning: after a dynamic run, batched
  // sampling still consumes exactly the documented deviates — none for an
  // empty batch, and per shot one deviate per qubit on the descent-based
  // engines (exact/qmdd/chp) vs one per shot on the CDF-based statevector.
  QuantumCircuit c(3);
  c.declareClassicalRegister(1);
  c.h(0).cx(0, 1).measure(0, 0).h(2);
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 3);
    Rng runRng(5);
    engine->runDynamic(c, runRng);

    Rng empty(17);
    EXPECT_TRUE(engine->sampleShots(0, empty).empty());
    EXPECT_EQ(empty.next(), Rng(17).next());

    constexpr unsigned kShots = 4;
    Rng sampling(17);
    const auto shots = engine->sampleShots(kShots, sampling);
    ASSERT_EQ(shots.size(), kShots);
    const unsigned perShot = name == "statevector" ? 1u : 3u;
    Rng expected(17);
    for (unsigned d = 0; d < kShots * perShot; ++d) expected.next();
    EXPECT_EQ(sampling.next(), expected.next());
  }
}

TEST(Dynamic, StructuralToolsRejectOrPassDynamicCircuitsThrough) {
  QuantumCircuit c(2);
  c.declareClassicalRegister(1);
  c.h(0).h(0).measure(0, 0);  // the H·H pair would fuse if it were static
  EXPECT_THROW(c.inverse(), std::logic_error);
  OptimizerReport report;
  const QuantumCircuit optimized = optimizeCircuit(c, &report);
  EXPECT_EQ(optimized.gateCount(), c.gateCount());
  EXPECT_TRUE(optimized.isDynamic());
  EXPECT_EQ(report.gatesBefore, report.gatesAfter);
  QuantumCircuit other(2);
  other.h(0);
  EXPECT_THROW(checkEquivalence(c, other), std::invalid_argument);
  EXPECT_THROW(checkEquivalence(other, c), std::invalid_argument);
}

TEST(Dynamic, CircuitBuilderValidation) {
  QuantumCircuit c(2);
  // Measure / conditions need a declared register.
  EXPECT_THROW(c.measure(0, 0), std::invalid_argument);
  EXPECT_THROW(c.onlyIf(0, Gate{GateKind::kX, {0}, {}}),
               std::invalid_argument);
  EXPECT_FALSE(c.isDynamic());
  c.declareClassicalRegister(2);
  EXPECT_THROW(c.declareClassicalRegister(3), std::invalid_argument);
  c.declareClassicalRegister(2);  // same size: idempotent
  EXPECT_THROW(c.measure(0, 2), std::invalid_argument);  // cbit range
  EXPECT_THROW(c.onlyIf(4, Gate{GateKind::kX, {0}, {}}),
               std::invalid_argument);  // condition value range
  c.measure(0, 1);
  EXPECT_TRUE(c.isDynamic());
  QuantumCircuit wide(2);
  EXPECT_THROW(wide.declareClassicalRegister(65), std::invalid_argument);
  EXPECT_THROW(wide.declareClassicalRegister(0), std::invalid_argument);
  // Controls on measure/reset are rejected at the gate level.
  Gate bad{GateKind::kMeasure, {0}, {1}};
  EXPECT_THROW(validateGate(bad, 2), std::invalid_argument);
}

}  // namespace
}  // namespace sliq
