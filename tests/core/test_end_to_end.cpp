// End-to-end algorithm runs on the bit-sliced engine: Bernstein–Vazirani,
// GHZ at scale, Grover, the QASM/RevLib frontends, and supremacy grids.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "circuit/qasm.hpp"
#include "circuit/real_format.hpp"
#include "core/simulator.hpp"
#include "statevector/statevector.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

TEST(EndToEnd, BernsteinVaziraniRecoversSecret) {
  Rng rng(5);
  for (unsigned n : {8u, 40u, 100u}) {
    std::vector<bool> secret(n);
    for (unsigned q = 0; q < n; ++q) secret[q] = rng.flip();
    SliqSimulator sim(n + 1);
    sim.run(bernsteinVazirani(n, secret));
    // Deterministic outcome: each data qubit reads the secret bit exactly.
    for (unsigned q = 0; q < n; ++q) {
      EXPECT_NEAR(sim.probabilityOne(q), secret[q] ? 1.0 : 0.0, 1e-12)
          << "qubit " << q << " n " << n;
    }
    // And sampling returns the secret surely.
    const auto bits = sim.sampleAll(rng);
    for (unsigned q = 0; q < n; ++q) EXPECT_EQ(bits[q], secret[q]);
  }
}

TEST(EndToEnd, GhzAtScale) {
  // 500 qubits — far beyond dense simulation; linear for the BDD engine.
  const unsigned n = 500;
  SliqSimulator sim(n);
  sim.run(entanglementCircuit(n));
  EXPECT_NEAR(sim.totalProbability(), 1.0, 1e-12);
  EXPECT_NEAR(sim.probabilityOne(0), 0.5, 1e-12);
  EXPECT_NEAR(sim.probabilityOne(n - 1), 0.5, 1e-12);
  // All sampled bits agree (GHZ correlation).
  Rng rng(7);
  const auto bits = sim.sampleAll(rng);
  for (unsigned q = 1; q < n; ++q) EXPECT_EQ(bits[q], bits[0]);
  // State BDDs stay linear in n.
  EXPECT_LT(sim.stateNodeCount(), 3 * n);
}

TEST(EndToEnd, GroverAmplifiesMarkedItem) {
  const unsigned n = 6;
  const std::uint64_t marked = 0b101101 & ((1u << n) - 1);
  SliqSimulator sim(n);
  sim.run(groverSearch(n, marked));
  // After ⌊π/4·√64⌋ = 6 iterations success probability is ~0.997.
  double pMarked = 1.0;
  for (unsigned q = 0; q < n; ++q) {
    const double p1 = sim.probabilityOne(q);
    pMarked *= ((marked >> q) & 1) ? p1 : 1 - p1;
  }
  // Per-qubit product underestimates joint probability; check the exact
  // joint amplitude instead.
  const double correction = sim.normalizationCorrection();
  const double joint =
      std::norm(sim.amplitude(marked).toComplex() * correction);
  EXPECT_GT(joint, 0.99);
  (void)pMarked;
}

TEST(EndToEnd, QasmRoundTripSimulatesIdentically) {
  const QuantumCircuit original = randomCircuit(4, 30, 13);
  const QuantumCircuit reparsed = parseQasmString(toQasmString(original));
  SliqSimulator a(4), b(4);
  a.run(original);
  b.run(reparsed);
  for (std::uint64_t i = 0; i < 16; ++i)
    EXPECT_EQ(a.amplitude(i), b.amplitude(i)) << i;
}

TEST(EndToEnd, RevlibAdderAddsExactly) {
  // 3-bit adder: verify b <- a + b on computational basis inputs.
  const RealProgram adder = revlibAdder(3);
  const unsigned n = adder.circuit.numQubits();
  for (const auto& [aVal, bVal] : std::vector<std::pair<unsigned, unsigned>>{
           {3, 4}, {7, 7}, {0, 5}, {6, 1}}) {
    std::uint64_t init = 0;
    for (unsigned i = 0; i < 3; ++i) {
      if ((aVal >> i) & 1) init |= std::uint64_t{1} << (1 + i);
      if ((bVal >> i) & 1) init |= std::uint64_t{1} << (1 + 3 + i);
    }
    SliqSimulator sim(n, init);
    sim.run(adder.circuit);
    Rng rng(1);
    const auto bits = sim.sampleAll(rng);  // classical state: deterministic
    unsigned sum = 0;
    for (unsigned i = 0; i < 3; ++i) sum |= bits[1 + 3 + i] ? 1u << i : 0;
    unsigned carryOut = bits[1 + 2] ? 1 : 0;  // MSB of a-register holds carry
    EXPECT_EQ(sum, (aVal + bVal) & 7u) << aVal << "+" << bVal;
    (void)carryOut;
  }
}

TEST(EndToEnd, ModifiedRevlibMatchesDense) {
  const RealProgram p = revlibRandomNetlist(6, 25, 3);
  const QuantumCircuit mod = modifyWithHadamards(p);
  SliqSimulator sliq(6);
  StatevectorSimulator dense(6);
  sliq.run(mod);
  dense.run(mod);
  for (unsigned q = 0; q < 6; ++q)
    EXPECT_NEAR(sliq.probabilityOne(q), dense.probabilityOne(q), 1e-9);
}

TEST(EndToEnd, SupremacyGridMatchesDense) {
  const QuantumCircuit c = supremacyGrid(3, 3, 6, 11);
  SliqSimulator sliq(9);
  StatevectorSimulator dense(9);
  sliq.run(c);
  dense.run(c);
  EXPECT_NEAR(sliq.totalProbability(), 1.0, 1e-9);
  for (unsigned q = 0; q < 9; ++q)
    EXPECT_NEAR(sliq.probabilityOne(q), dense.probabilityOne(q), 1e-9);
}

TEST(EndToEnd, HwbCircuitRunsExactly) {
  const RealProgram p = revlibHwb(4);
  const QuantumCircuit mod = modifyWithHadamards(p);
  SliqSimulator sim(mod.numQubits());
  sim.run(mod);
  EXPECT_NEAR(sim.totalProbability(), 1.0, 1e-12);
}

}  // namespace
}  // namespace sliq
