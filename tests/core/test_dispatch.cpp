// Dispatch planner: engine selection on the three canonical workloads
// (pure Clifford → chp, wide Clifford+T → exact, narrow dense → dense
// statevector), feasibility gating, handoff decisions, and the dispatch.*
// metrics encoding.
#include "core/dispatch.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "circuit/circuit.hpp"
#include "support/metrics.hpp"

namespace sliq {
namespace {

QuantumCircuit ghzCircuit(unsigned n) {
  QuantumCircuit c(n, "ghz");
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  return c;
}

QuantumCircuit cliffordPlusTCircuit(unsigned n) {
  QuantumCircuit c = ghzCircuit(n);
  for (unsigned q = 0; q < n; ++q) c.t(q);
  return c;
}

QuantumCircuit denseRandomCircuit(unsigned n, unsigned layers) {
  QuantumCircuit c(n, "dense");
  for (unsigned l = 0; l < layers; ++l) {
    for (unsigned q = 0; q < n; ++q) c.h(q);
    for (unsigned q = 0; q < n; ++q) c.t(q);
    for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  }
  return c;
}

const EngineScore& scoreOf(const EnginePlan& plan, const std::string& name) {
  const auto it = std::find_if(
      plan.scores.begin(), plan.scores.end(),
      [&](const EngineScore& s) { return s.name == name; });
  EXPECT_NE(it, plan.scores.end()) << name;
  return *it;
}

TEST(Dispatch, PureCliffordChoosesChp) {
  const EnginePlan plan = planEngine(ghzCircuit(8));
  EXPECT_EQ(plan.chosen, "chp");
  EXPECT_FALSE(plan.handoff);  // chp never hands off to itself
  EXPECT_TRUE(scoreOf(plan, "chp").feasible);
  // Every engine is feasible here, but the tableau is cheapest by orders
  // of magnitude.
  for (const EngineScore& s : plan.scores) {
    EXPECT_TRUE(s.feasible) << s.name;
    if (s.name != "chp") EXPECT_GT(s.cost, scoreOf(plan, "chp").cost);
  }
}

TEST(Dispatch, WideCliffordPlusTChoosesExactWithHandoff) {
  // 28 qubits: 2^28 amplitudes = 4 GiB, over the default 1 GiB budget, so
  // the dense engine is infeasible; the T layer rules out chp; of the two
  // decision-diagram engines the bit-sliced exact node is cheaper.
  const EnginePlan plan = planEngine(cliffordPlusTCircuit(28));
  EXPECT_EQ(plan.chosen, "exact");
  EXPECT_FALSE(scoreOf(plan, "chp").feasible);
  EXPECT_FALSE(scoreOf(plan, "statevector").feasible);
  EXPECT_TRUE(scoreOf(plan, "qmdd").feasible);
  EXPECT_LT(scoreOf(plan, "exact").cost, scoreOf(plan, "qmdd").cost);
  // The 28-gate GHZ prefix is Clifford: run it on chp, convert, finish.
  EXPECT_TRUE(plan.handoff);
  EXPECT_EQ(plan.splitIndex, 28u);
}

TEST(Dispatch, NarrowDenseCircuitChoosesStatevector) {
  // 10 qubits of interleaved H/T/CNOT layers: the effective diagram width
  // saturates at the full register, so 2^10 dense amplitudes beat the
  // per-node decision-diagram overhead.
  const EnginePlan plan = planEngine(denseRandomCircuit(10, 3));
  EXPECT_EQ(plan.chosen, "statevector");
  EXPECT_FALSE(scoreOf(plan, "chp").feasible);
  EXPECT_LT(scoreOf(plan, "statevector").cost, scoreOf(plan, "exact").cost);
  // The leading H layer is a 10-gate Clifford prefix — handoff applies.
  EXPECT_TRUE(plan.handoff);
  EXPECT_EQ(plan.splitIndex, 10u);
}

TEST(Dispatch, BudgetParameterMovesTheDenseFeasibilityEdge) {
  const QuantumCircuit c = cliffordPlusTCircuit(12);
  // Default budget: 12 qubits (64 KiB dense) is easily feasible and wins.
  EXPECT_EQ(planEngine(c).chosen, "statevector");
  // A budget below 2^12 amplitudes forces the planner off the dense path.
  const EnginePlan tight = planEngine(c, denseStateBytes(12) - 1);
  EXPECT_FALSE(scoreOf(tight, "statevector").feasible);
  EXPECT_EQ(tight.chosen, "exact");
}

TEST(Dispatch, ShortCliffordPrefixDoesNotHandOff) {
  // Prefix below kMinHandoffPrefixGates: conversion overhead isn't paid.
  QuantumCircuit c(12);
  c.h(0);
  c.t(0);
  for (unsigned q = 0; q + 1 < 12; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < 12; ++q) c.t(q);
  const EnginePlan plan = planEngine(c);
  EXPECT_NE(plan.chosen, "chp");
  EXPECT_EQ(plan.features.cliffordPrefixGates, 1u);
  EXPECT_FALSE(plan.handoff);
}

TEST(Dispatch, DynamicCircuitsNeverHandOff) {
  // The cross-engine deviate contract pins a dynamic run to one engine:
  // splitting would change which engine consumes which deviate.
  QuantumCircuit c(4);
  c.declareClassicalRegister(1);
  c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
  for (unsigned q = 0; q < 4; ++q) c.t(q);
  c.measure(0, 0);
  const EnginePlan plan = planEngine(c);
  EXPECT_TRUE(plan.features.dynamic);
  EXPECT_GE(plan.features.cliffordPrefixGates, kMinHandoffPrefixGates);
  EXPECT_FALSE(plan.handoff);
}

TEST(Dispatch, RecordPlanEmitsTheDispatchGauges) {
  const EnginePlan plan = planEngine(cliffordPlusTCircuit(28));
  metrics::Registry registry;
  registry.enable();
  recordPlan(plan, registry);
  const metrics::Snapshot snap = registry.snapshot();
  // One-hot chosen encoding (numeric-only registry: the name lives in the
  // key, the value is the indicator).
  EXPECT_EQ(snap.gauges.at("dispatch.chosen.exact"), 1.0);
  EXPECT_EQ(snap.gauges.count("dispatch.chosen.chp"), 0u);
  EXPECT_EQ(snap.gauges.at("dispatch.feasible.chp"), 0.0);
  EXPECT_EQ(snap.gauges.at("dispatch.feasible.exact"), 1.0);
  // Infeasible engines report no cost (there is none to compare).
  EXPECT_EQ(snap.gauges.count("dispatch.cost.statevector"), 0u);
  EXPECT_GT(snap.gauges.at("dispatch.cost.exact"), 0.0);
  EXPECT_EQ(snap.gauges.at("dispatch.feature.qubits"), 28.0);
  EXPECT_EQ(snap.gauges.at("dispatch.feature.t_count"), 28.0);
  EXPECT_EQ(snap.gauges.at("dispatch.handoff"), 1.0);
  EXPECT_EQ(snap.gauges.at("dispatch.split_index"), 28.0);
}

TEST(Dispatch, RationaleNamesTheChoiceAndEveryVerdict) {
  const EnginePlan plan = planEngine(cliffordPlusTCircuit(28));
  const std::string text = planRationale(plan);
  EXPECT_NE(text.find("chose 'exact'"), std::string::npos) << text;
  EXPECT_NE(text.find("handoff after gate 28"), std::string::npos) << text;
  for (const EngineScore& s : plan.scores) {
    EXPECT_NE(text.find(s.name), std::string::npos) << s.name;
  }
  EXPECT_NE(text.find("infeasible"), std::string::npos) << text;
}

}  // namespace
}  // namespace sliq
