// Engine::exportTo — the cross-representation conversion matrix of
// state_convert.hpp: every engine pair, the typed failure modes
// (ConversionError, MemoryBudgetError), the collapse re-arm contract, and
// the dense-budget regression (the old hard 20-qubit extraction wall is
// gone; the budget is the only limit).
#include "core/state_convert.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "support/memuse.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

/// A 4-qubit Clifford state rich enough to expose phase errors: GHZ with
/// S/S† twists and a CZ (every engine, chp included, runs it).
QuantumCircuit twistedGhz4() {
  QuantumCircuit c(4, "twisted-ghz");
  c.h(0).cx(0, 1).s(1).cx(1, 2).sdg(2).cz(2, 3).cx(2, 3).h(3).s(3);
  return c;
}

PauliObservable phaseProbe() {
  PauliObservable obs;
  obs.addTerm(1.0, {{0, Pauli::kX}, {1, Pauli::kY}, {2, Pauli::kZ}});
  obs.addTerm(-0.5, {{1, Pauli::kX}, {3, Pauli::kY}});
  obs.addTerm(0.25, {{0, Pauli::kZ}, {3, Pauli::kX}});
  return obs;
}

void expectSameState(Engine& a, Engine& b, double tol = 1e-10) {
  ASSERT_EQ(a.numQubits(), b.numQubits());
  for (unsigned q = 0; q < a.numQubits(); ++q) {
    EXPECT_NEAR(a.probabilityOne(q), b.probabilityOne(q), tol) << "q" << q;
  }
  EXPECT_NEAR(a.totalProbability(), b.totalProbability(), tol);
  const PauliObservable obs = phaseProbe();
  for (const PauliString& term : obs.terms()) {
    EXPECT_NEAR(a.expectation(singleStringObservable(term)),
                b.expectation(singleStringObservable(term)), tol)
        << term.pauliText();
  }
}

TEST(StateConvert, RouteMatrixCoversExactlyTheDocumentedPairs) {
  // The success set of the matrix in state_convert.hpp: same-name snapshot
  // for all four, chp prep-replay into everything, and dense hand-over
  // into the two engines that can ingest doubles.
  const std::set<std::pair<std::string, std::string>> convertible = {
      {"chp", "chp"},         {"exact", "exact"},
      {"qmdd", "qmdd"},       {"statevector", "statevector"},
      {"chp", "exact"},       {"chp", "qmdd"},
      {"chp", "statevector"}, {"exact", "qmdd"},
      {"exact", "statevector"}, {"qmdd", "statevector"},
      {"statevector", "qmdd"},
  };
  const QuantumCircuit c = twistedGhz4();
  for (const std::string& srcName : engineNames()) {
    for (const std::string& dstName : engineNames()) {
      SCOPED_TRACE(srcName + " -> " + dstName);
      const std::unique_ptr<Engine> src = makeEngine(srcName, 4);
      const std::unique_ptr<Engine> dst = makeEngine(dstName, 4);
      src->run(c);
      if (convertible.count({srcName, dstName}) > 0) {
        src->exportTo(*dst);
        expectSameState(*src, *dst);
        // The converted state is a first-class reference state: the target
        // samples from it directly.
        Rng rng(11);
        EXPECT_EQ(dst->sampleShot(rng).size(), 4u);
      } else {
        EXPECT_THROW(src->exportTo(*dst), ConversionError);
      }
    }
  }
}

TEST(StateConvert, SameRepresentationRouteIsBitIdenticalUnderSampling) {
  const QuantumCircuit c = twistedGhz4();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    const std::unique_ptr<Engine> src = makeEngine(name, 4);
    const std::unique_ptr<Engine> dst = makeEngine(name, 4);
    src->run(c);
    src->exportTo(*dst);
    // The snapshot round-trip is bit-identical, so equal deviate streams
    // must produce equal shot streams.
    Rng rngA(99);
    Rng rngB(99);
    for (int shot = 0; shot < 32; ++shot) {
      EXPECT_EQ(src->sampleShot(rngA), dst->sampleShot(rngB)) << shot;
    }
  }
}

TEST(StateConvert, SameInstanceAndWidthMismatchAreTypedErrors) {
  const std::unique_ptr<Engine> engine = makeEngine("exact", 3);
  EXPECT_THROW(engine->exportTo(*engine), ConversionError);
  const std::unique_ptr<Engine> wider = makeEngine("statevector", 4);
  try {
    engine->exportTo(*wider);
    FAIL() << "expected ConversionError";
  } catch (const ConversionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3"), std::string::npos) << what;
    EXPECT_NE(what.find("4"), std::string::npos) << what;
  }
}

TEST(StateConvert, DenseRouteIsBudgetedOnBothSides) {
  const QuantumCircuit c = twistedGhz4();
  const std::unique_ptr<Engine> src = makeEngine("exact", 4);
  src->run(c);
  // Over budget: the typed error propagates out of exportTo with the
  // figures intact (the caller can catch and fall back).
  const std::unique_ptr<Engine> dst = makeEngine("statevector", 4);
  try {
    src->exportTo(*dst, denseStateBytes(4) - 1);
    FAIL() << "expected MemoryBudgetError";
  } catch (const MemoryBudgetError& e) {
    EXPECT_EQ(e.numQubits(), 4u);
    EXPECT_EQ(e.requiredBytes(), denseStateBytes(4));
    EXPECT_EQ(e.budgetBytes(), denseStateBytes(4) - 1);
  }
  // Exactly at budget succeeds.
  src->exportTo(*dst, denseStateBytes(4));
  expectSameState(*src, *dst);
}

TEST(StateConvert, DenseConversionWorksAboveTheOldTwentyQubitWall) {
  // Regression for the removed SLIQ_REQUIRE(n_ <= 20) in state_export.cpp:
  // 21 qubits is 32 MiB of amplitudes — far inside the 1 GiB default
  // budget, and rejected only by budget, never by a hard-coded width.
  constexpr unsigned kWide = 21;
  QuantumCircuit ghz(kWide, "ghz21");
  ghz.h(0);
  for (unsigned q = 0; q + 1 < kWide; ++q) ghz.cx(q, q + 1);
  const std::unique_ptr<Engine> src = makeEngine("qmdd", kWide);
  src->run(ghz);
  const std::unique_ptr<Engine> dst = makeEngine("statevector", kWide);
  src->exportTo(*dst);
  EXPECT_NEAR(dst->probabilityOne(0), 0.5, 1e-10);
  EXPECT_NEAR(dst->probabilityOne(kWide - 1), 0.5, 1e-10);
  EXPECT_NEAR(dst->totalProbability(), 1.0, 1e-10);
}

TEST(StateConvert, CollapsedSourceConvertsAndReArmsTheTarget) {
  // Sampling from a collapsed engine is a logic error — but conversion is
  // not sampling: the exported state is the target's new reference state,
  // so the target may sample from it.
  for (const char* dstName : {"exact", "qmdd", "statevector"}) {
    SCOPED_TRACE(dstName);
    const std::unique_ptr<Engine> src = makeEngine("chp", 2);
    QuantumCircuit bell(2, "bell");
    bell.h(0).cx(0, 1);
    src->run(bell);
    EXPECT_TRUE(src->measure(0, 0.25));  // deviate 0.25 < 0.5 -> outcome 1
    Rng rng(5);
    EXPECT_THROW(src->sampleShot(rng), std::logic_error);
    const std::unique_ptr<Engine> dst = makeEngine(dstName, 2);
    src->exportTo(*dst);
    // The Bell correlation collapsed both qubits to 1.
    EXPECT_NEAR(dst->probabilityOne(0), 1.0, 1e-10);
    EXPECT_NEAR(dst->probabilityOne(1), 1.0, 1e-10);
    const std::vector<bool> shot = dst->sampleShot(rng);  // re-armed
    EXPECT_TRUE(shot[0]);
    EXPECT_TRUE(shot[1]);
  }
}

TEST(StateConvert, ConversionErrorsNameBothEngines) {
  const QuantumCircuit c = twistedGhz4();
  const std::unique_ptr<Engine> src = makeEngine("statevector", 4);
  src->run(c);
  const std::unique_ptr<Engine> dst = makeEngine("chp", 4);
  try {
    src->exportTo(*dst);
    FAIL() << "expected ConversionError";
  } catch (const ConversionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("statevector"), std::string::npos) << what;
    EXPECT_NE(what.find("chp"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace sliq
