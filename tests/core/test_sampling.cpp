// Batched multi-shot sampling (Engine::sampleShots / MeasurementContext):
// statistical correctness against the engines' own exact probabilities,
// exact agreement between the batched and loop paths under a fixed seed,
// and invalidation of the persistent measurement context on state mutation.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "core/measurement_context.hpp"
#include "core/observable.hpp"
#include "core/simulator.hpp"
#include "statevector/statevector.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

/// Entangled Clifford circuit every registered engine supports.
QuantumCircuit cliffordEntangled() {
  QuantumCircuit c(5, "clifford-entangled");
  c.h(0).cx(0, 1).s(1).cx(1, 2).h(3).cx(3, 4).cz(0, 4).x(2);
  return c;
}

/// Small entangled circuit with non-Clifford (T) structure, giving
/// asymmetric per-qubit probabilities. chp does not support it.
QuantumCircuit tEntangled() {
  QuantumCircuit c(3, "t-entangled");
  c.h(0).t(0).h(0).cx(0, 1).h(2).t(2).h(2).cx(1, 2);
  return c;
}

std::uint64_t toIndex(const std::vector<bool>& bits) {
  std::uint64_t index = 0;
  for (std::size_t q = 0; q < bits.size(); ++q)
    if (bits[q]) index |= std::uint64_t{1} << q;
  return index;
}

/// Chi-squared test of per-qubit empirical frequencies against the
/// engine's own exact probabilityOne values. Deterministic qubits
/// (p ∈ {0,1}) are checked exactly and excluded from the statistic.
void expectMarginalsMatch(Engine& engine, const QuantumCircuit& c,
                          unsigned shots, std::uint64_t seed) {
  engine.run(c);
  const unsigned n = engine.numQubits();
  std::vector<double> expected(n);
  for (unsigned q = 0; q < n; ++q) expected[q] = engine.probabilityOne(q);

  Rng rng(seed);
  const auto samples = engine.sampleShots(shots, rng);
  ASSERT_EQ(samples.size(), shots);
  std::vector<unsigned> ones(n, 0);
  for (const auto& bits : samples) {
    ASSERT_EQ(bits.size(), n);
    for (unsigned q = 0; q < n; ++q) ones[q] += bits[q] ? 1 : 0;
  }

  double chiSq = 0;
  unsigned dof = 0;
  for (unsigned q = 0; q < n; ++q) {
    const double p = expected[q];
    if (p <= 0.0) {
      EXPECT_EQ(ones[q], 0u) << "qubit " << q;
    } else if (p >= 1.0) {
      EXPECT_EQ(ones[q], shots) << "qubit " << q;
    } else {
      const double diff = ones[q] - shots * p;
      chiSq += diff * diff / (shots * p * (1.0 - p));
      ++dof;
    }
  }
  if (dof > 0) {
    // Heuristic bound, not an exact chi² test: per-qubit marginals of an
    // entangled state are correlated, so the summed z² statistic is only
    // approximately chi²(dof). The threshold exceeds the chi²(dof) 99.9th
    // percentile for every dof ≥ 1 (10.83 at dof = 1, 20.5 at dof = 5),
    // and the fixed seed makes each run deterministic regardless.
    EXPECT_LT(chiSq, 10.0 + 4.0 * dof) << "dof = " << dof;
  }
}

TEST(Sampling, MarginalsMatchProbabilityOneOnEveryEngine) {
  const QuantumCircuit c = cliffordEntangled();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    ASSERT_TRUE(engine->supports(c));
    expectMarginalsMatch(*engine, c, 6000, 1234);
  }
}

TEST(Sampling, MarginalsMatchProbabilityOneNonClifford) {
  const QuantumCircuit c = tEntangled();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    if (!engine->supports(c)) continue;  // chp: Clifford only
    expectMarginalsMatch(*engine, c, 6000, 99);
  }
}

TEST(Sampling, JointDistributionMatchesDenseGroundTruth) {
  // Total-variation bound of the empirical joint distribution against the
  // dense simulator's exact |amplitude|². With k shots the expected TV
  // distance scales like √(#states/k); 0.05 is a comfortable margin for
  // 8 states and 8000 shots (and the seed is fixed).
  const QuantumCircuit c = tEntangled();
  StatevectorSimulator dense(c.numQubits());
  dense.run(c);
  const unsigned kShots = 8000;
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    if (!engine->supports(c)) continue;
    engine->run(c);
    Rng rng(7);
    std::map<std::uint64_t, unsigned> counts;
    for (const auto& bits : engine->sampleShots(kShots, rng))
      ++counts[toIndex(bits)];
    double tv = 0;
    for (std::uint64_t i = 0; i < (1u << c.numQubits()); ++i) {
      const double empirical =
          counts.count(i) ? double(counts[i]) / kShots : 0.0;
      tv += std::abs(empirical - std::norm(dense.amplitude(i)));
    }
    EXPECT_LT(tv / 2, 0.05);
  }
}

TEST(Sampling, BatchedAgreesWithLoopUnderFixedSeed) {
  // Every engine's batched sampler consumes deviates exactly like its
  // per-shot sampler, so the two paths must produce identical shots.
  const QuantumCircuit c = cliffordEntangled();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    const unsigned kShots = 128;
    std::unique_ptr<Engine> batched = makeEngine(name, c.numQubits());
    batched->run(c);
    Rng rngBatched(4242);
    const auto batchedShots = batched->sampleShots(kShots, rngBatched);

    std::unique_ptr<Engine> looped = makeEngine(name, c.numQubits());
    looped->run(c);
    Rng rngLoop(4242);
    ASSERT_EQ(batchedShots.size(), kShots);
    for (unsigned s = 0; s < kShots; ++s) {
      EXPECT_EQ(batchedShots[s], looped->sampleShot(rngLoop)) << "shot " << s;
    }
  }
}

TEST(Sampling, SampleShotsAfterMeasureThrowsOnEveryEngine) {
  const QuantumCircuit c = cliffordEntangled();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    engine->run(c);
    (void)engine->measure(0, 0.25);
    Rng rng(3);
    EXPECT_THROW(engine->sampleShots(4, rng), std::logic_error);
  }
}

TEST(Sampling, SampleShotsZeroCountIsEmpty) {
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    engine->run(QuantumCircuit(2).h(0).cx(0, 1));
    Rng rng(1);
    EXPECT_TRUE(engine->sampleShots(0, rng).empty());
  }
}

TEST(Sampling, SampleShotsZeroCountLeavesRngUntouched) {
  // The facade contract pins count == 0 to "no deviate consumed" on every
  // engine, so interleaving empty batches can never perturb a seeded run.
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, 2);
    engine->run(QuantumCircuit(2).h(0).cx(0, 1));
    Rng used(123), untouched(123);
    (void)engine->sampleShots(0, used);
    EXPECT_EQ(used.next(), untouched.next());
    // And subsequent sampling behaves as if the empty batch never happened.
    Rng a(7), b(7);
    (void)engine->sampleShots(0, a);
    EXPECT_EQ(engine->sampleShots(2, a), engine->sampleShots(2, b));
  }
}

/// Chi-squared-style test that shot-based estimators of ⟨Z_i⟩ and
/// ⟨Z_i Z_j⟩ converge to the engine's analytic expectation(): each
/// estimator's z² enters a summed statistic exactly like
/// expectMarginalsMatch's, with Var[estimate] = (1 − e²)/shots for a ±1
/// observable. Deterministic observables (|e| = 1) are checked exactly and
/// excluded from the statistic.
void expectShotEstimatesMatchExpectation(Engine& engine,
                                         const QuantumCircuit& c,
                                         unsigned shots, std::uint64_t seed) {
  engine.run(c);
  const unsigned n = engine.numQubits();
  Rng rng(seed);
  const auto samples = engine.sampleShots(shots, rng);
  ASSERT_EQ(samples.size(), shots);

  double chiSq = 0;
  unsigned dof = 0;
  auto check = [&](const PauliObservable& obs, double estimate) {
    const double exact = engine.expectation(obs);
    if (std::abs(exact) >= 1.0 - 1e-12) {
      EXPECT_NEAR(estimate, exact, 1e-12) << obs.summary();
      return;
    }
    const double variance = (1.0 - exact * exact) / shots;
    const double diff = estimate - exact;
    chiSq += diff * diff / variance;
    ++dof;
  };

  // ⟨Z_i⟩ from per-qubit means of (−1)^bit.
  for (unsigned q = 0; q < n; ++q) {
    double mean = 0;
    for (const auto& bits : samples) mean += bits[q] ? -1.0 : 1.0;
    PauliObservable obs;
    obs.addTerm(1.0, {{q, Pauli::kZ}});
    check(obs, mean / shots);
  }
  // ⟨Z_i Z_j⟩ from pair parities (adjacent pairs keep the statistic small).
  for (unsigned q = 0; q + 1 < n; ++q) {
    double mean = 0;
    for (const auto& bits : samples)
      mean += (bits[q] != bits[q + 1]) ? -1.0 : 1.0;
    PauliObservable obs;
    obs.addTerm(1.0, {{q, Pauli::kZ}, {q + 1, Pauli::kZ}});
    check(obs, mean / shots);
  }
  if (dof > 0) {
    // Same heuristic bound as expectMarginalsMatch: the estimators are
    // correlated on entangled states, so the summed z² is only
    // approximately chi²(dof); the threshold clears the 99.9th percentile
    // for every dof ≥ 1 and the fixed seed makes the run deterministic.
    EXPECT_LT(chiSq, 10.0 + 4.0 * dof) << "dof = " << dof;
  }
}

TEST(Sampling, ShotEstimatesConvergeToExpectationOnEveryEngine) {
  const QuantumCircuit c = cliffordEntangled();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    ASSERT_TRUE(engine->supports(c));
    expectShotEstimatesMatchExpectation(*engine, c, 6000, 4321);
  }
}

TEST(Sampling, ShotEstimatesConvergeToExpectationNonClifford) {
  const QuantumCircuit c = tEntangled();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    if (!engine->supports(c)) continue;  // chp: Clifford only
    expectShotEstimatesMatchExpectation(*engine, c, 6000, 777);
  }
}

TEST(Sampling, PersistentContextInvalidatesOnMutation) {
  // Interleave cached queries with state mutations and check every answer
  // against a dense simulator following the same evolution.
  const QuantumCircuit c = tEntangled();
  SliqSimulator sim(c.numQubits());
  StatevectorSimulator dense(c.numQubits());
  sim.run(c);
  dense.run(c);

  auto expectProbsMatch = [&] {
    for (unsigned q = 0; q < c.numQubits(); ++q)
      EXPECT_NEAR(sim.probabilityOne(q), dense.probabilityOne(q), 1e-9) << q;
  };

  expectProbsMatch();
  EXPECT_TRUE(sim.measurementContext().current());

  // Gate application must invalidate the context.
  const Gate extra{GateKind::kH, {1}, {}};
  sim.applyGate(extra);
  dense.applyGate(extra);
  EXPECT_FALSE(sim.measurementContext().current());
  expectProbsMatch();

  // Sampling warms the caches; repeated queries stay correct.
  Rng rng(5);
  (void)sim.sampleShots(32, rng);
  EXPECT_TRUE(sim.measurementContext().current());
  expectProbsMatch();

  // Collapse must invalidate too, and post-collapse answers must track the
  // dense simulator collapsed with the same deviate.
  const double deviate = 0.37;
  EXPECT_EQ(sim.measure(0, deviate), dense.measure(0, deviate));
  expectProbsMatch();
  EXPECT_NEAR(sim.normalizationCorrection() /
                  std::sqrt(1.0 / sim.totalProbability()),
              1.0, 1e-9);
}

TEST(Sampling, ExactBatchedMatchesRepeatedSampleAll) {
  // SliqSimulator::sampleShots is defined as count sampleAll calls sharing
  // one context; verify against literal repeated sampleAll on a twin.
  const QuantumCircuit c = tEntangled();
  SliqSimulator a(c.numQubits());
  SliqSimulator b(c.numQubits());
  a.run(c);
  b.run(c);
  Rng rngA(11), rngB(11);
  const auto batch = a.sampleShots(50, rngA);
  for (const auto& bits : batch) {
    EXPECT_EQ(bits, b.sampleAll(rngB));
  }
}

}  // namespace
}  // namespace sliq
