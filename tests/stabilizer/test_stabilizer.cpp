#include "stabilizer/stabilizer.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"
#include "statevector/statevector.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

TEST(Stabilizer, InitialStateDeterministicZero) {
  StabilizerSimulator sim(4);
  Rng rng(1);
  for (unsigned q = 0; q < 4; ++q) {
    EXPECT_DOUBLE_EQ(sim.probabilityOne(q), 0.0);
    EXPECT_FALSE(sim.measure(q, rng));
  }
}

TEST(Stabilizer, XFlipsDeterministically) {
  StabilizerSimulator sim(2);
  sim.applyGate(Gate{GateKind::kX, {1}, {}});
  EXPECT_DOUBLE_EQ(sim.probabilityOne(1), 1.0);
  EXPECT_DOUBLE_EQ(sim.probabilityOne(0), 0.0);
}

TEST(Stabilizer, HadamardGivesRandomOutcome) {
  StabilizerSimulator sim(1);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  EXPECT_DOUBLE_EQ(sim.probabilityOne(0), 0.5);
  // Measuring fixes the outcome; re-measuring is deterministic.
  Rng rng(3);
  const bool v = sim.measure(0, rng);
  EXPECT_DOUBLE_EQ(sim.probabilityOne(0), v ? 1.0 : 0.0);
}

TEST(Stabilizer, GhzCorrelations) {
  const unsigned n = 50;
  StabilizerSimulator sim(n);
  sim.run(entanglementCircuit(n));
  EXPECT_DOUBLE_EQ(sim.probabilityOne(0), 0.5);
  EXPECT_DOUBLE_EQ(sim.probabilityOne(n - 1), 0.5);
  Rng rng(7);
  const bool first = sim.measure(0, rng);
  for (unsigned q = 1; q < n; ++q) {
    EXPECT_DOUBLE_EQ(sim.probabilityOne(q), first ? 1.0 : 0.0);
    EXPECT_EQ(sim.measure(q, rng), first);
  }
}

TEST(Stabilizer, MeasurementFrequenciesUniform) {
  Rng rng(11);
  int ones = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    StabilizerSimulator sim(1);
    sim.applyGate(Gate{GateKind::kH, {0}, {}});
    ones += sim.measure(0, rng);
  }
  EXPECT_NEAR(ones, 1000, 120);
}

TEST(Stabilizer, CliffordGatesMatchDense) {
  // Exhaustive probability comparison over random Clifford circuits.
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const unsigned n = 5;
    StabilizerSimulator stab(n);
    StatevectorSimulator dense(n);
    for (int g = 0; g < 40; ++g) {
      Gate gate;
      const unsigned q = static_cast<unsigned>(rng.below(n));
      unsigned p = static_cast<unsigned>(rng.below(n));
      while (p == q) p = static_cast<unsigned>(rng.below(n));
      switch (rng.below(9)) {
        case 0: gate = Gate{GateKind::kH, {q}, {}}; break;
        case 1: gate = Gate{GateKind::kS, {q}, {}}; break;
        case 2: gate = Gate{GateKind::kSdg, {q}, {}}; break;
        case 3: gate = Gate{GateKind::kX, {q}, {}}; break;
        case 4: gate = Gate{GateKind::kY, {q}, {}}; break;
        case 5: gate = Gate{GateKind::kZ, {q}, {}}; break;
        case 6: gate = Gate{GateKind::kRx90, {q}, {}}; break;
        case 7: gate = Gate{GateKind::kRy90, {q}, {}}; break;
        default: gate = Gate{GateKind::kCnot, {q}, {p}}; break;
      }
      stab.applyGate(gate);
      dense.applyGate(gate);
    }
    for (unsigned q = 0; q < n; ++q) {
      EXPECT_NEAR(stab.probabilityOne(q), dense.probabilityOne(q), 1e-9)
          << "trial " << trial << " qubit " << q;
    }
  }
}

TEST(Stabilizer, CzAndSwapMatchDense) {
  StabilizerSimulator stab(3);
  StatevectorSimulator dense(3);
  for (const Gate& g :
       {Gate{GateKind::kH, {0}, {}}, Gate{GateKind::kCz, {1}, {0}},
        Gate{GateKind::kH, {1}, {}}, Gate{GateKind::kSwap, {0, 2}, {}},
        Gate{GateKind::kCz, {2}, {1}}}) {
    stab.applyGate(g);
    dense.applyGate(g);
  }
  for (unsigned q = 0; q < 3; ++q)
    EXPECT_NEAR(stab.probabilityOne(q), dense.probabilityOne(q), 1e-9) << q;
}

TEST(Stabilizer, RejectsNonClifford) {
  StabilizerSimulator sim(3);
  EXPECT_THROW(sim.applyGate(Gate{GateKind::kT, {0}, {}}),
               UnsupportedGateError);
  EXPECT_THROW(sim.applyGate(Gate{GateKind::kTdg, {0}, {}}),
               UnsupportedGateError);
  EXPECT_THROW(sim.applyGate(Gate{GateKind::kCnot, {2}, {0, 1}}),
               UnsupportedGateError);
  EXPECT_THROW(sim.applyGate(Gate{GateKind::kSwap, {1, 2}, {0}}),
               UnsupportedGateError);
}

TEST(Stabilizer, SupportsPredicate) {
  EXPECT_TRUE(StabilizerSimulator::supports(entanglementCircuit(10)));
  QuantumCircuit withT(2);
  withT.h(0).t(1);
  EXPECT_FALSE(StabilizerSimulator::supports(withT));
  QuantumCircuit withToffoli(3);
  withToffoli.ccx(0, 1, 2);
  EXPECT_FALSE(StabilizerSimulator::supports(withToffoli));
}

TEST(Stabilizer, LargeGhzIsFast) {
  const unsigned n = 2000;
  StabilizerSimulator sim(n);
  sim.run(entanglementCircuit(n));
  Rng rng(5);
  const bool first = sim.measure(0, rng);
  EXPECT_EQ(sim.measure(n - 1, rng), first);
}

}  // namespace
}  // namespace sliq
