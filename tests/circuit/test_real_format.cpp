#include "circuit/real_format.hpp"

#include <gtest/gtest.h>

namespace sliq {
namespace {

TEST(RealFormat, ParsesToffoliNetlist) {
  const std::string text = R"(
    # a tiny reversible circuit
    .version 2.0
    .numvars 3
    .variables a b c
    .constants 0--
    .begin
    t1 a
    t2 a b
    t3 a b c
    .end
  )";
  const RealProgram p = parseRealString(text);
  EXPECT_EQ(p.circuit.numQubits(), 3u);
  EXPECT_EQ(p.circuit.gateCount(), 3u);
  EXPECT_EQ(p.constants, "0--");
  EXPECT_EQ(p.circuit.gate(0).kind, GateKind::kCnot);
  EXPECT_TRUE(p.circuit.gate(0).controls.empty());
  EXPECT_EQ(p.circuit.gate(1).controls.size(), 1u);
  EXPECT_EQ(p.circuit.gate(2).controls.size(), 2u);
  EXPECT_EQ(p.circuit.gate(2).target(), 2u);
}

TEST(RealFormat, ParsesFredkin) {
  const RealProgram p = parseRealString(R"(
    .numvars 3
    .variables x y z
    .begin
    f3 x y z
    .end
  )");
  EXPECT_EQ(p.circuit.gateCount(), 1u);
  EXPECT_EQ(p.circuit.gate(0).kind, GateKind::kSwap);
  EXPECT_EQ(p.circuit.gate(0).controls.size(), 1u);
  EXPECT_EQ(p.circuit.gate(0).targets.size(), 2u);
  EXPECT_EQ(p.constants, "---");  // defaulted
}

TEST(RealFormat, NegativeControlRewrite) {
  const RealProgram p = parseRealString(R"(
    .numvars 3
    .variables a b c
    .begin
    t3 -a b c
    .end
  )");
  // X(a), CCX(a,b,c), X(a).
  ASSERT_EQ(p.circuit.gateCount(), 3u);
  EXPECT_EQ(p.circuit.gate(0).kind, GateKind::kX);
  EXPECT_TRUE(p.circuit.gate(0).controls.empty());
  EXPECT_EQ(p.circuit.gate(0).target(), 0u);
  EXPECT_EQ(p.circuit.gate(1).controls.size(), 2u);
  EXPECT_EQ(p.circuit.gate(2).target(), 0u);
}

TEST(RealFormat, PositionalNamesWithoutVariables) {
  const RealProgram p = parseRealString(R"(
    .numvars 4
    .begin
    t2 x0 x3
    .end
  )");
  EXPECT_EQ(p.circuit.gate(0).controls[0], 0u);
  EXPECT_EQ(p.circuit.gate(0).target(), 3u);
}

TEST(RealFormat, Rejections) {
  EXPECT_THROW(parseRealString(".begin\nt1 a\n.end"), std::invalid_argument);
  EXPECT_THROW(parseRealString(".numvars 2\n.variables a b\n.begin\nt2 a z\n.end"),
               std::invalid_argument);
  EXPECT_THROW(parseRealString(".numvars 2\n.variables a b\nt1 a"),
               std::invalid_argument);
  EXPECT_THROW(parseRealString(".numvars 2\n.variables a b\n.begin\nv1 a\n.end"),
               std::invalid_argument);
  // Negative polarity on a target is invalid.
  EXPECT_THROW(parseRealString(".numvars 2\n.variables a b\n.begin\nt2 a -b\n.end"),
               std::invalid_argument);
}

TEST(RealFormat, ModifyWithHadamards) {
  const RealProgram p = parseRealString(R"(
    .numvars 4
    .variables a b c d
    .constants 01--
    .begin
    t3 a b c
    .end
  )");
  const QuantumCircuit mod = modifyWithHadamards(p);
  // One X for the '1' constant, two H for the two '-' inputs, plus the body.
  EXPECT_EQ(mod.gateCount(), 4u);
  EXPECT_EQ(mod.histogram().at("h"), 2u);
  EXPECT_EQ(mod.histogram().at("x"), 1u);
}

TEST(RealFormat, InstantiateOriginalIsDeterministicInSeed) {
  const RealProgram p = parseRealString(R"(
    .numvars 3
    .variables a b c
    .constants ---
    .begin
    t2 a b
    .end
  )");
  const QuantumCircuit c1 = instantiateOriginal(p, 7);
  const QuantumCircuit c2 = instantiateOriginal(p, 7);
  EXPECT_EQ(c1.gateCount(), c2.gateCount());
}

}  // namespace
}  // namespace sliq
