#include "circuit/generators.hpp"

#include <gtest/gtest.h>

namespace sliq {
namespace {

TEST(Generators, RandomCircuitMatchesPaperRecipe) {
  const QuantumCircuit c = randomCircuit(40, 120, 1);
  EXPECT_EQ(c.numQubits(), 40u);
  // n initial H gates + 120 random gates.
  EXPECT_EQ(c.gateCount(), 160u);
  for (unsigned q = 0; q < 40; ++q) {
    EXPECT_EQ(c.gate(q).kind, GateKind::kH);
    EXPECT_EQ(c.gate(q).target(), q);
  }
  // Rx/Ry excluded per the paper.
  const auto h = c.histogram();
  EXPECT_EQ(h.count("rx90"), 0u);
  EXPECT_EQ(h.count("ry90"), 0u);
}

TEST(Generators, RandomCircuitDeterministicInSeed) {
  const QuantumCircuit a = randomCircuit(10, 30, 5);
  const QuantumCircuit b = randomCircuit(10, 30, 5);
  ASSERT_EQ(a.gateCount(), b.gateCount());
  for (std::size_t i = 0; i < a.gateCount(); ++i) {
    EXPECT_EQ(a.gate(i).kind, b.gate(i).kind);
    EXPECT_EQ(a.gate(i).targets, b.gate(i).targets);
  }
  const QuantumCircuit other = randomCircuit(10, 30, 6);
  bool differs = false;
  for (std::size_t i = 0; i < a.gateCount(); ++i)
    differs |= a.gate(i).kind != other.gate(i).kind ||
               a.gate(i).targets != other.gate(i).targets;
  EXPECT_TRUE(differs);
}

TEST(Generators, EntanglementShape) {
  const QuantumCircuit c = entanglementCircuit(100);
  EXPECT_EQ(c.gateCount(), 100u);  // paper: #gates == #qubits
  EXPECT_EQ(c.gate(0).kind, GateKind::kH);
  for (unsigned i = 1; i < 100; ++i) {
    EXPECT_EQ(c.gate(i).kind, GateKind::kCnot);
    EXPECT_EQ(c.gate(i).controls[0], i - 1);
    EXPECT_EQ(c.gate(i).target(), i);
  }
}

TEST(Generators, BernsteinVaziraniGateCount) {
  // Paper Table V reports ~3n gates; ours is 1 X + (n+1) H + #ones CX + n H.
  const QuantumCircuit c =
      bernsteinVazirani(80, std::vector<bool>(80, true));
  EXPECT_EQ(c.numQubits(), 81u);
  EXPECT_EQ(c.gateCount(), 1u + 81u + 80u + 80u);
}

TEST(Generators, BernsteinVaziraniSecretEncoded) {
  const std::vector<bool> secret{true, false, true, true};
  const QuantumCircuit c = bernsteinVazirani(4, secret);
  std::size_t cxCount = 0;
  for (const Gate& g : c.gates())
    if (g.kind == GateKind::kCnot) ++cxCount;
  EXPECT_EQ(cxCount, 3u);
}

TEST(Generators, GroverUsesOnlySupportedGates) {
  const QuantumCircuit c = groverSearch(5, 19, 2);
  for (const Gate& g : c.gates()) {
    EXPECT_TRUE(g.kind == GateKind::kH || g.kind == GateKind::kX ||
                g.kind == GateKind::kCz);
  }
  // Two iterations: 2 MCZ per iteration.
  std::size_t mcz = 0;
  for (const Gate& g : c.gates())
    if (g.kind == GateKind::kCz) ++mcz;
  EXPECT_EQ(mcz, 4u);
}

TEST(Generators, SupremacyGridShape) {
  const QuantumCircuit c = supremacyGrid(4, 4, 8, 3);
  EXPECT_EQ(c.numQubits(), 16u);
  // Starts with an H on every qubit.
  for (unsigned q = 0; q < 16; ++q) EXPECT_EQ(c.gate(q).kind, GateKind::kH);
  const auto h = c.histogram();
  EXPECT_GT(h.at("cz"), 0u);
  EXPECT_GT(h.at("t"), 0u);
  // Only the GRCS gate population appears.
  for (const auto& [name, count] : h) {
    EXPECT_TRUE(name == "h" || name == "cz" || name == "t" ||
                name == "rx90" || name == "ry90")
        << name;
  }
}

TEST(Generators, SupremacyGateCountScalesWithPaperTable) {
  // Paper Table VI reports ~61 gates for 16 qubits at (reduced) depth 5+2.
  const QuantumCircuit c = supremacyGrid(4, 4, 5, 0);
  EXPECT_GT(c.gateCount(), 30u);
  EXPECT_LT(c.gateCount(), 120u);
}

TEST(Generators, RevlibAdderComputesAddition) {
  const RealProgram p = revlibAdder(4);
  EXPECT_EQ(p.circuit.numQubits(), 9u);
  EXPECT_EQ(p.constants[0], '0');
  // Gate population is Toffoli/CNOT only.
  for (const Gate& g : p.circuit.gates())
    EXPECT_EQ(g.kind, GateKind::kCnot);
}

TEST(Generators, RevlibFamiliesProduceValidPrograms) {
  for (const RealProgram& p :
       {revlibToffoliCascade(12, 20, 1), revlibRandomNetlist(10, 50, 2),
        revlibHwb(5)}) {
    EXPECT_GE(p.circuit.gateCount(), 10u);
    EXPECT_EQ(p.constants.size(), p.circuit.numQubits());
    const QuantumCircuit mod = modifyWithHadamards(p);
    EXPECT_GT(mod.gateCount(), p.circuit.gateCount());
  }
}

}  // namespace
}  // namespace sliq
