#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

namespace sliq {
namespace {

TEST(Qasm, ParsesAllSupportedGates) {
  const std::string text = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[4];
    creg c[4];
    h q[0];
    x q[1]; y q[2]; z q[3];
    s q[0]; sdg q[1]; t q[2]; tdg q[3];
    rx(pi/2) q[0];
    ry(pi/2) q[1];
    cx q[0],q[1];
    cz q[1],q[2];
    ccx q[0],q[1],q[2];
    swap q[2],q[3];
    cswap q[0],q[1],q[2];
    barrier q[0];
    measure q[0] -> c[0];
  )";
  const QuantumCircuit c = parseQasmString(text);
  EXPECT_EQ(c.numQubits(), 4u);
  EXPECT_EQ(c.numClbits(), 4u);
  EXPECT_EQ(c.gateCount(), 16u);  // barrier ignored; measure is an op now
  EXPECT_EQ(c.gate(0).kind, GateKind::kH);
  EXPECT_EQ(c.gate(8).kind, GateKind::kRx90);
  EXPECT_EQ(c.gate(14).kind, GateKind::kSwap);
  EXPECT_EQ(c.gate(14).controls.size(), 1u);
  EXPECT_EQ(c.gate(15).kind, GateKind::kMeasure);
  EXPECT_EQ(c.gate(15).target(), 0u);
  EXPECT_EQ(c.gate(15).cbit, 0u);
  EXPECT_TRUE(c.isDynamic());
}

TEST(Qasm, RoundTrip) {
  QuantumCircuit c(5, "rt");
  c.h(0).t(1).cx(0, 2).ccx(1, 2, 3).mcx({0, 1, 2, 3}, 4).cswap(0, 1, 2);
  c.rx90(3).ry90(4).sdg(0).tdg(1).cz(2, 4).swap(0, 4).mcz({0, 1}, 2);
  const QuantumCircuit parsed = parseQasmString(toQasmString(c));
  ASSERT_EQ(parsed.gateCount(), c.gateCount());
  ASSERT_EQ(parsed.numQubits(), c.numQubits());
  for (std::size_t i = 0; i < c.gateCount(); ++i) {
    EXPECT_EQ(parsed.gate(i).kind, c.gate(i).kind) << i;
    EXPECT_EQ(parsed.gate(i).targets, c.gate(i).targets) << i;
    EXPECT_EQ(parsed.gate(i).controls, c.gate(i).controls) << i;
  }
}

TEST(Qasm, RejectsArbitraryRotation) {
  EXPECT_THROW(parseQasmString("qreg q[1]; rx(0.3) q[0];"),
               std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[1]; rz(pi/8) q[0];"),
               std::invalid_argument);
}

TEST(Qasm, RejectsUnknownGateAndRegister) {
  EXPECT_THROW(parseQasmString("qreg q[2]; foo q[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[2]; h r[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("h q[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[2]; h q[0]"), std::invalid_argument);
}

TEST(Qasm, RejectsOperandCountMismatch) {
  EXPECT_THROW(parseQasmString("qreg q[3]; cx q[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[3]; h q[0],q[1];"),
               std::invalid_argument);
}

TEST(Qasm, MultilineStatements) {
  const QuantumCircuit c = parseQasmString("qreg q[2];\ncx\n q[0],\n q[1];");
  EXPECT_EQ(c.gateCount(), 1u);
  EXPECT_EQ(c.gate(0).kind, GateKind::kCnot);
}

TEST(Qasm, CommentsIgnored) {
  const QuantumCircuit c =
      parseQasmString("qreg q[1]; // declare\nh q[0]; // mix\n// x q[0];");
  EXPECT_EQ(c.gateCount(), 1u);
}

// ---- dynamic-circuit surface (measure / reset / creg / if) ----------------

/// The qasm:<line>: prefix of every parser diagnostic, asserted so the
/// file:line contract of the new surface is pinned, not just the throw.
std::string diagnosticOf(const std::string& text) {
  try {
    parseQasmString(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(Qasm, ParsesDynamicOps) {
  const QuantumCircuit c = parseQasmString(R"(
    OPENQASM 2.0;
    qreg q[3];
    creg c[2];
    h q[0];
    measure q[0] -> c[1];
    reset q[2];
    if (c==2) x q[1];
    if(c == 1) measure q[1] -> c[0];
  )");
  ASSERT_EQ(c.gateCount(), 5u);
  EXPECT_EQ(c.numClbits(), 2u);
  EXPECT_TRUE(c.isDynamic());
  EXPECT_EQ(c.gate(1).kind, GateKind::kMeasure);
  EXPECT_EQ(c.gate(1).target(), 0u);
  EXPECT_EQ(c.gate(1).cbit, 1u);
  EXPECT_EQ(c.gate(2).kind, GateKind::kReset);
  EXPECT_EQ(c.gate(2).target(), 2u);
  EXPECT_TRUE(c.gate(3).conditioned);
  EXPECT_EQ(c.gate(3).conditionValue, 2u);
  EXPECT_EQ(c.gate(3).kind, GateKind::kX);
  EXPECT_TRUE(c.gate(4).conditioned);
  EXPECT_EQ(c.gate(4).conditionValue, 1u);
  EXPECT_EQ(c.gate(4).kind, GateKind::kMeasure);
}

TEST(Qasm, WholeRegisterMeasureAndReset) {
  const QuantumCircuit c = parseQasmString(
      "qreg q[3]; creg c[3]; h q[0]; measure q -> c; reset q;");
  ASSERT_EQ(c.gateCount(), 7u);
  for (unsigned i = 0; i < 3; ++i) {
    EXPECT_EQ(c.gate(1 + i).kind, GateKind::kMeasure);
    EXPECT_EQ(c.gate(1 + i).target(), i);
    EXPECT_EQ(c.gate(1 + i).cbit, i);
    EXPECT_EQ(c.gate(4 + i).kind, GateKind::kReset);
  }
}

TEST(Qasm, CregRedeclarationDiagnostic) {
  const std::string msg =
      diagnosticOf("qreg q[2];\ncreg c[2];\ncreg d[3];\n");
  EXPECT_NE(msg.find("qasm:3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("already declared"), std::string::npos) << msg;
}

TEST(Qasm, IfOnUndeclaredRegisterDiagnostic) {
  // No creg at all...
  std::string msg = diagnosticOf("qreg q[2];\nif (c==1) x q[0];\n");
  EXPECT_NE(msg.find("qasm:2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("undeclared classical register 'c'"), std::string::npos)
      << msg;
  // ...and a declared creg under a different name.
  msg = diagnosticOf("qreg q[2];\ncreg c[2];\nif (d==1) x q[0];\n");
  EXPECT_NE(msg.find("qasm:3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("undeclared classical register 'd'"), std::string::npos)
      << msg;
}

TEST(Qasm, ConditionValueOutOfRangeDiagnostic) {
  const std::string msg =
      diagnosticOf("qreg q[2];\ncreg c[2];\nif (c==4) x q[0];\n");
  EXPECT_NE(msg.find("qasm:3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  // Boundary: c==3 is the largest representable value for creg c[2].
  EXPECT_NO_THROW(
      parseQasmString("qreg q[2]; creg c[2]; if (c==3) x q[0];"));
}

TEST(Qasm, ResetOnMissingQubitDiagnostic) {
  const std::string msg = diagnosticOf("qreg q[2];\nreset q[5];\n");
  EXPECT_NE(msg.find("qasm:2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

TEST(Qasm, MeasureDiagnostics) {
  // Measure before any creg declaration.
  std::string msg = diagnosticOf("qreg q[2];\nmeasure q[0] -> c[0];\n");
  EXPECT_NE(msg.find("qasm:2:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("creg"), std::string::npos) << msg;
  // Classical target bit out of range.
  msg = diagnosticOf("qreg q[2];\ncreg c[1];\nmeasure q[0] -> c[1];\n");
  EXPECT_NE(msg.find("qasm:3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  // Malformed arrow.
  msg = diagnosticOf("qreg q[2];\ncreg c[2];\nmeasure q[0], c[0];\n");
  EXPECT_NE(msg.find("qasm:3:"), std::string::npos) << msg;
}

TEST(Qasm, ConditionedWholeRegisterMeasureRejected) {
  // QASM 2.0 evaluates `if` once per statement; the per-bit expansion
  // would re-evaluate it after each recorded bit (an earlier outcome can
  // falsify the condition mid-statement), so the combination is refused.
  const std::string msg = diagnosticOf(
      "qreg q[2];\ncreg c[2];\nx q[0]; x q[1];\nif (c==0) measure q -> c;\n");
  EXPECT_NE(msg.find("qasm:4:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("whole-register measure"), std::string::npos) << msg;
  // Per-bit conditioned measures and conditioned whole-register reset
  // (which never writes the register) remain legal.
  EXPECT_NO_THROW(parseQasmString(
      "qreg q[2]; creg c[2]; if (c==0) measure q[0] -> c[0]; "
      "if (c==0) reset q;"));
}

TEST(Qasm, HugeNumericLiteralsStayInsideTheDiagnosticContract) {
  // 2^32 + 2 used to truncate to a 2-qubit register through the unsigned
  // cast; >uint64 literals used to escape as bare std::out_of_range.
  std::string msg = diagnosticOf("qreg q[4294967298];\n");
  EXPECT_NE(msg.find("qasm:1:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
  msg = diagnosticOf("qreg q[99999999999999999999];\n");
  EXPECT_NE(msg.find("qasm:1:"), std::string::npos) << msg;
  msg = diagnosticOf("qreg q[2];\nh q[99999999999999999999];\n");
  EXPECT_NE(msg.find("qasm:2:"), std::string::npos) << msg;
  msg = diagnosticOf(
      "qreg q[2];\ncreg c[2];\nif (c==99999999999999999999) x q[0];\n");
  EXPECT_NE(msg.find("qasm:3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

TEST(Qasm, NestedIfRejected) {
  const std::string msg = diagnosticOf(
      "qreg q[2];\ncreg c[2];\nif (c==1) if (c==2) x q[0];\n");
  EXPECT_NE(msg.find("nested if"), std::string::npos) << msg;
}

TEST(Qasm, DynamicRoundTrip) {
  QuantumCircuit c(3, "dyn_rt");
  c.declareClassicalRegister(2);
  c.h(0).cx(0, 1);
  c.measure(0, 0).measure(1, 1);
  c.reset(0);
  c.onlyIf(2, Gate{GateKind::kX, {2}, {}});
  c.onlyIf(3, Gate{GateKind::kZ, {2}, {}});
  Gate condMeasure{GateKind::kMeasure, {2}, {}};
  condMeasure.cbit = 0;
  c.onlyIf(1, std::move(condMeasure));

  const QuantumCircuit parsed = parseQasmString(toQasmString(c));
  ASSERT_EQ(parsed.gateCount(), c.gateCount());
  ASSERT_EQ(parsed.numClbits(), c.numClbits());
  for (std::size_t i = 0; i < c.gateCount(); ++i) {
    EXPECT_EQ(parsed.gate(i).kind, c.gate(i).kind) << i;
    EXPECT_EQ(parsed.gate(i).targets, c.gate(i).targets) << i;
    EXPECT_EQ(parsed.gate(i).cbit, c.gate(i).cbit) << i;
    EXPECT_EQ(parsed.gate(i).conditioned, c.gate(i).conditioned) << i;
    EXPECT_EQ(parsed.gate(i).conditionValue, c.gate(i).conditionValue) << i;
  }
  // Emit → parse → emit is a fixpoint.
  EXPECT_EQ(toQasmString(parsed), toQasmString(c));
}

}  // namespace
}  // namespace sliq
