#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

namespace sliq {
namespace {

TEST(Qasm, ParsesAllSupportedGates) {
  const std::string text = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[4];
    creg c[4];
    h q[0];
    x q[1]; y q[2]; z q[3];
    s q[0]; sdg q[1]; t q[2]; tdg q[3];
    rx(pi/2) q[0];
    ry(pi/2) q[1];
    cx q[0],q[1];
    cz q[1],q[2];
    ccx q[0],q[1],q[2];
    swap q[2],q[3];
    cswap q[0],q[1],q[2];
    barrier q[0];
    measure q[0] -> c[0];
  )";
  const QuantumCircuit c = parseQasmString(text);
  EXPECT_EQ(c.numQubits(), 4u);
  EXPECT_EQ(c.gateCount(), 15u);  // barrier/measure/creg ignored
  EXPECT_EQ(c.gate(0).kind, GateKind::kH);
  EXPECT_EQ(c.gate(8).kind, GateKind::kRx90);
  EXPECT_EQ(c.gate(14).kind, GateKind::kSwap);
  EXPECT_EQ(c.gate(14).controls.size(), 1u);
}

TEST(Qasm, RoundTrip) {
  QuantumCircuit c(5, "rt");
  c.h(0).t(1).cx(0, 2).ccx(1, 2, 3).mcx({0, 1, 2, 3}, 4).cswap(0, 1, 2);
  c.rx90(3).ry90(4).sdg(0).tdg(1).cz(2, 4).swap(0, 4).mcz({0, 1}, 2);
  const QuantumCircuit parsed = parseQasmString(toQasmString(c));
  ASSERT_EQ(parsed.gateCount(), c.gateCount());
  ASSERT_EQ(parsed.numQubits(), c.numQubits());
  for (std::size_t i = 0; i < c.gateCount(); ++i) {
    EXPECT_EQ(parsed.gate(i).kind, c.gate(i).kind) << i;
    EXPECT_EQ(parsed.gate(i).targets, c.gate(i).targets) << i;
    EXPECT_EQ(parsed.gate(i).controls, c.gate(i).controls) << i;
  }
}

TEST(Qasm, RejectsArbitraryRotation) {
  EXPECT_THROW(parseQasmString("qreg q[1]; rx(0.3) q[0];"),
               std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[1]; rz(pi/8) q[0];"),
               std::invalid_argument);
}

TEST(Qasm, RejectsUnknownGateAndRegister) {
  EXPECT_THROW(parseQasmString("qreg q[2]; foo q[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[2]; h r[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("h q[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[2]; h q[0]"), std::invalid_argument);
}

TEST(Qasm, RejectsOperandCountMismatch) {
  EXPECT_THROW(parseQasmString("qreg q[3]; cx q[0];"), std::invalid_argument);
  EXPECT_THROW(parseQasmString("qreg q[3]; h q[0],q[1];"),
               std::invalid_argument);
}

TEST(Qasm, MultilineStatements) {
  const QuantumCircuit c = parseQasmString("qreg q[2];\ncx\n q[0],\n q[1];");
  EXPECT_EQ(c.gateCount(), 1u);
  EXPECT_EQ(c.gate(0).kind, GateKind::kCnot);
}

TEST(Qasm, CommentsIgnored) {
  const QuantumCircuit c =
      parseQasmString("qreg q[1]; // declare\nh q[0]; // mix\n// x q[0];");
  EXPECT_EQ(c.gateCount(), 1u);
}

}  // namespace
}  // namespace sliq
