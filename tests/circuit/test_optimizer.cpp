#include "circuit/optimizer.hpp"

#include <gtest/gtest.h>

#include "circuit/generators.hpp"

namespace sliq {
namespace {

TEST(Optimizer, CancelsAdjacentSelfInversePairs) {
  QuantumCircuit c(3);
  c.h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1).swap(1, 2).swap(1, 2);
  OptimizerReport r;
  const QuantumCircuit opt = optimizeCircuit(c, &r);
  EXPECT_EQ(opt.gateCount(), 0u);
  EXPECT_EQ(r.cancelled, 8u);
}

TEST(Optimizer, CancelsInversePhasePairs) {
  QuantumCircuit c(1);
  c.s(0).sdg(0).t(0).tdg(0).tdg(0).t(0);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 0u);
}

TEST(Optimizer, MergesPhaseGates) {
  QuantumCircuit c(1);
  c.t(0).t(0);  // -> S
  OptimizerReport r;
  const QuantumCircuit opt = optimizeCircuit(c, &r);
  ASSERT_EQ(opt.gateCount(), 1u);
  EXPECT_EQ(opt.gate(0).kind, GateKind::kS);
  EXPECT_EQ(r.merged, 1u);
}

TEST(Optimizer, MergeCascadesToFixpoint) {
  QuantumCircuit c(1);
  // T T T T = S S = Z.
  c.t(0).t(0).t(0).t(0);
  const QuantumCircuit opt = optimizeCircuit(c);
  ASSERT_EQ(opt.gateCount(), 1u);
  EXPECT_EQ(opt.gate(0).kind, GateKind::kZ);
  // T^8 = I.
  QuantumCircuit c8(1);
  for (int i = 0; i < 8; ++i) c8.t(0);
  EXPECT_EQ(optimizeCircuit(c8).gateCount(), 0u);
}

TEST(Optimizer, InterveningGateOnSharedQubitBlocks) {
  QuantumCircuit c(2);
  c.h(0).t(0).h(0);  // nothing cancels: T sits between the two H
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 3u);
}

TEST(Optimizer, InterveningGateOnOtherQubitDoesNotBlock) {
  QuantumCircuit c(2);
  c.h(0).x(1).h(0);  // X(1) commutes trivially: H pair cancels
  const QuantumCircuit opt = optimizeCircuit(c);
  ASSERT_EQ(opt.gateCount(), 1u);
  EXPECT_EQ(opt.gate(0).kind, GateKind::kX);
}

TEST(Optimizer, RoleSwappedCnotDoesNotCancel) {
  QuantumCircuit c(2);
  c.cx(0, 1).cx(1, 0);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 2u);
}

TEST(Optimizer, SwapTargetsAreUnordered) {
  QuantumCircuit c(2);
  c.swap(0, 1).swap(1, 0);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 0u);
}

TEST(Optimizer, ControlledPhaseMergingIsConservative) {
  // Controlled gates are never phase-merged (only cancelled).
  QuantumCircuit c(2);
  c.cz(0, 1).cz(0, 1);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 0u);  // cancel, not merge
  QuantumCircuit c2(3);
  c2.ccx(0, 1, 2).ccx(1, 0, 2);  // same control *set*: cancels
  EXPECT_EQ(optimizeCircuit(c2).gateCount(), 0u);
}

TEST(Optimizer, ReportCountsConsistent) {
  const QuantumCircuit c = randomCircuit(5, 60, 9);
  OptimizerReport r;
  const QuantumCircuit opt = optimizeCircuit(c, &r);
  EXPECT_EQ(r.gatesBefore, c.gateCount());
  EXPECT_EQ(r.gatesAfter, opt.gateCount());
  EXPECT_EQ(r.gatesBefore - r.gatesAfter, r.cancelled + r.merged);
}

}  // namespace
}  // namespace sliq
