#include "circuit/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/generators.hpp"

namespace sliq {
namespace {

TEST(Optimizer, CancelsAdjacentSelfInversePairs) {
  QuantumCircuit c(3);
  c.h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1).swap(1, 2).swap(1, 2);
  OptimizerReport r;
  const QuantumCircuit opt = optimizeCircuit(c, &r);
  EXPECT_EQ(opt.gateCount(), 0u);
  EXPECT_EQ(r.cancelled, 8u);
}

TEST(Optimizer, CancelsInversePhasePairs) {
  QuantumCircuit c(1);
  c.s(0).sdg(0).t(0).tdg(0).tdg(0).t(0);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 0u);
}

TEST(Optimizer, MergesPhaseGates) {
  QuantumCircuit c(1);
  c.t(0).t(0);  // -> S
  OptimizerReport r;
  const QuantumCircuit opt = optimizeCircuit(c, &r);
  ASSERT_EQ(opt.gateCount(), 1u);
  EXPECT_EQ(opt.gate(0).kind, GateKind::kS);
  EXPECT_EQ(r.merged, 1u);
}

TEST(Optimizer, MergeCascadesToFixpoint) {
  QuantumCircuit c(1);
  // T T T T = S S = Z.
  c.t(0).t(0).t(0).t(0);
  const QuantumCircuit opt = optimizeCircuit(c);
  ASSERT_EQ(opt.gateCount(), 1u);
  EXPECT_EQ(opt.gate(0).kind, GateKind::kZ);
  // T^8 = I.
  QuantumCircuit c8(1);
  for (int i = 0; i < 8; ++i) c8.t(0);
  EXPECT_EQ(optimizeCircuit(c8).gateCount(), 0u);
}

TEST(Optimizer, InterveningGateOnSharedQubitBlocks) {
  QuantumCircuit c(2);
  c.h(0).t(0).h(0);  // nothing cancels: T sits between the two H
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 3u);
}

TEST(Optimizer, InterveningGateOnOtherQubitDoesNotBlock) {
  QuantumCircuit c(2);
  c.h(0).x(1).h(0);  // X(1) commutes trivially: H pair cancels
  const QuantumCircuit opt = optimizeCircuit(c);
  ASSERT_EQ(opt.gateCount(), 1u);
  EXPECT_EQ(opt.gate(0).kind, GateKind::kX);
}

TEST(Optimizer, RoleSwappedCnotDoesNotCancel) {
  QuantumCircuit c(2);
  c.cx(0, 1).cx(1, 0);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 2u);
}

TEST(Optimizer, SwapTargetsAreUnordered) {
  QuantumCircuit c(2);
  c.swap(0, 1).swap(1, 0);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 0u);
}

TEST(Optimizer, ControlledPhaseMergingIsConservative) {
  // Controlled gates are never phase-merged (only cancelled).
  QuantumCircuit c(2);
  c.cz(0, 1).cz(0, 1);
  EXPECT_EQ(optimizeCircuit(c).gateCount(), 0u);  // cancel, not merge
  QuantumCircuit c2(3);
  c2.ccx(0, 1, 2).ccx(1, 0, 2);  // same control *set*: cancels
  EXPECT_EQ(optimizeCircuit(c2).gateCount(), 0u);
}

TEST(Optimizer, ReportCountsConsistent) {
  const QuantumCircuit c = randomCircuit(5, 60, 9);
  OptimizerReport r;
  const QuantumCircuit opt = optimizeCircuit(c, &r);
  EXPECT_EQ(r.gatesBefore, c.gateCount());
  EXPECT_EQ(r.gatesAfter, opt.gateCount());
  EXPECT_EQ(r.gatesBefore - r.gatesAfter, r.cancelled + r.merged);
}

// ---- gate fusion structure (behavioral agreement: integration/test_fusion)

TEST(Fusion, SingleQubitRunBecomesOneBlock) {
  QuantumCircuit c(1);
  c.h(0).t(0).s(0).h(0);
  FusionReport r;
  const FusedCircuit fc = fuseCircuit(c, &r);
  ASSERT_EQ(fc.opCount(), 1u);
  EXPECT_EQ(fc.ops()[0].kind, FusedOp::Kind::k1q);
  EXPECT_EQ(fc.ops()[0].gatesFused, 4u);
  EXPECT_EQ(r.fusedBlocks, 1u);
  // H·S·T·H (right-to-left product) — spot-check one entry: row 0 applied
  // to |0⟩ gives (1 + e^{3iπ/4})/2.
  const std::complex<double> expected =
      (1.0 + std::polar(1.0, 3 * M_PI / 4)) / 2.0;
  EXPECT_NEAR(std::abs(fc.ops()[0].m1[0] - expected), 0.0, 1e-15);
}

TEST(Fusion, LoneGatePassesThroughVerbatim) {
  QuantumCircuit c(3);
  c.h(0).ccx(0, 1, 2);  // Toffoli: support 3, never fused
  const FusedCircuit fc = fuseCircuit(c);
  ASSERT_EQ(fc.opCount(), 2u);
  EXPECT_EQ(fc.ops()[0].kind, FusedOp::Kind::kGate);  // H flushed alone
  EXPECT_EQ(fc.ops()[1].kind, FusedOp::Kind::kGate);
  EXPECT_EQ(fc.ops()[1].gate.kind, GateKind::kCnot);
}

TEST(Fusion, CnotRunBecomesOne2qBlock) {
  QuantumCircuit c(2);
  c.h(0).cx(0, 1).h(1).cx(0, 1);
  FusionReport r;
  const FusedCircuit fc = fuseCircuit(c, &r);
  ASSERT_EQ(fc.opCount(), 1u);
  EXPECT_EQ(fc.ops()[0].kind, FusedOp::Kind::k2q);
  EXPECT_EQ(fc.ops()[0].q0, 0u);
  EXPECT_EQ(fc.ops()[0].q1, 1u);
  EXPECT_EQ(fc.ops()[0].gatesFused, 4u);
  EXPECT_FALSE(fc.ops()[0].diagonal);
}

TEST(Fusion, DiagonalRunSetsDiagonalFlag) {
  QuantumCircuit c(2);
  c.t(0).cz(0, 1).s(1).tdg(0);
  FusionReport r;
  const FusedCircuit fc = fuseCircuit(c, &r);
  ASSERT_EQ(fc.opCount(), 1u);
  ASSERT_EQ(fc.ops()[0].kind, FusedOp::Kind::k2q);
  EXPECT_TRUE(fc.ops()[0].diagonal);
  EXPECT_EQ(r.diagonalBlocks, 1u);
  for (unsigned row = 0; row < 4; ++row) {
    for (unsigned col = 0; col < 4; ++col) {
      if (row != col) {
        EXPECT_EQ(fc.ops()[0].m2[row * 4 + col], std::complex<double>{})
            << row << "," << col;
      }
    }
  }
}

TEST(Fusion, FusesPastDisjointQubits) {
  // H(0) … H(0) with intervening gates on other qubits only: the two H's
  // commute past them and must land in one block.
  QuantumCircuit c(4);
  c.h(0).x(1).cz(2, 3).h(0);
  const FusedCircuit fc = fuseCircuit(c);
  unsigned blocksOn0 = 0;
  for (const FusedOp& op : fc.ops()) {
    if (op.kind == FusedOp::Kind::k1q && op.q0 == 0) {
      ++blocksOn0;
      EXPECT_EQ(op.gatesFused, 2u);
    }
  }
  EXPECT_EQ(blocksOn0, 1u);
}

TEST(Fusion, SharedQubitConflictPreservesOrder) {
  // CX(0,1) then CX(1,2): support {0,1,2} exceeds a block — the second CX
  // must flush the first, preserving program order on the shared qubit.
  QuantumCircuit c(3);
  c.cx(0, 1).cx(1, 2);
  const FusedCircuit fc = fuseCircuit(c);
  ASSERT_EQ(fc.opCount(), 2u);
}

TEST(Fusion, UncontrolledSwapFuses) {
  QuantumCircuit c(2);
  c.x(0).swap(0, 1);
  const FusedCircuit fc = fuseCircuit(c);
  ASSERT_EQ(fc.opCount(), 1u);
  ASSERT_EQ(fc.ops()[0].kind, FusedOp::Kind::k2q);
  // SWAP · (X⊗I) maps |00⟩ → |01⟩ → swap → |10⟩: column 0 has its one at
  // row 2 (b = 2·bit(q1) + bit(q0)).
  EXPECT_NEAR(std::abs(fc.ops()[0].m2[2 * 4 + 0] - 1.0), 0.0, 1e-15);
}

TEST(Fusion, ReportTotalsAreConsistent) {
  const QuantumCircuit c = randomCircuit(6, 80, 33);
  FusionReport r;
  const FusedCircuit fc = fuseCircuit(c, &r);
  EXPECT_EQ(r.gatesIn, c.gateCount());
  EXPECT_EQ(r.opsOut, fc.opCount());
  std::size_t gatesAccounted = 0;
  std::size_t fusedBlocks = 0;
  for (const FusedOp& op : fc.ops()) {
    gatesAccounted += op.gatesFused;
    if (op.gatesFused >= 2) ++fusedBlocks;
  }
  EXPECT_EQ(gatesAccounted, c.gateCount());
  EXPECT_EQ(fusedBlocks, r.fusedBlocks);
}

}  // namespace
}  // namespace sliq
