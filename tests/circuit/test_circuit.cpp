#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

namespace sliq {
namespace {

TEST(Circuit, BuildersAppendExpectedGates) {
  QuantumCircuit c(4, "demo");
  c.h(0).x(1).cx(0, 1).ccx(0, 1, 2).cswap(0, 1, 2).swap(2, 3).t(3).cz(1, 3);
  EXPECT_EQ(c.gateCount(), 8u);
  EXPECT_EQ(c.gate(0).kind, GateKind::kH);
  EXPECT_EQ(c.gate(2).controls.size(), 1u);
  EXPECT_EQ(c.gate(3).controls.size(), 2u);
  EXPECT_EQ(c.gate(4).targets.size(), 2u);
  EXPECT_EQ(gateName(c.gate(3)), "ccx");
  EXPECT_EQ(gateName(c.gate(4)), "cswap");
}

TEST(Circuit, RejectsOutOfRangeQubit) {
  QuantumCircuit c(2);
  EXPECT_THROW(c.h(2), std::invalid_argument);
  EXPECT_THROW(c.cx(0, 5), std::invalid_argument);
}

TEST(Circuit, RejectsDuplicateQubits) {
  QuantumCircuit c(3);
  EXPECT_THROW(c.cx(1, 1), std::invalid_argument);
  EXPECT_THROW(c.ccx(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(c.swap(2, 2), std::invalid_argument);
}

TEST(Circuit, RejectsControlsOnNonControllableBase) {
  QuantumCircuit c(3);
  EXPECT_THROW(c.append(Gate{GateKind::kH, {0}, {1}}), std::invalid_argument);
  EXPECT_THROW(c.append(Gate{GateKind::kT, {0}, {1, 2}}),
               std::invalid_argument);
}

TEST(Circuit, MultiControlToffoli) {
  QuantumCircuit c(6);
  c.mcx({0, 1, 2, 3, 4}, 5);
  EXPECT_EQ(c.gate(0).controls.size(), 5u);
  EXPECT_EQ(gateName(c.gate(0)), "c5x");
}

TEST(Circuit, HistogramAndSummary) {
  QuantumCircuit c(3, "hist");
  c.h(0).h(1).t(2).cx(0, 1);
  const auto h = c.histogram();
  EXPECT_EQ(h.at("h"), 2u);
  EXPECT_EQ(h.at("t"), 1u);
  EXPECT_EQ(h.at("cx"), 1u);
  const std::string s = c.summary();
  EXPECT_NE(s.find("hist"), std::string::npos);
  EXPECT_NE(s.find("4 gates"), std::string::npos);
}

TEST(Circuit, CountKIncrements) {
  QuantumCircuit c(2);
  c.h(0).rx90(1).ry90(0).t(1).x(0).cx(0, 1);
  EXPECT_EQ(c.countKIncrements(), 3u);
}

TEST(Circuit, ComposeRequiresSameWidth) {
  QuantumCircuit a(3), b(3), c(4);
  a.h(0);
  b.x(1);
  a.compose(b);
  EXPECT_EQ(a.gateCount(), 2u);
  EXPECT_THROW(a.compose(c), std::invalid_argument);
}

TEST(Circuit, ZeroQubitCircuitRejected) {
  EXPECT_THROW(QuantumCircuit(0), std::invalid_argument);
}

}  // namespace
}  // namespace sliq
