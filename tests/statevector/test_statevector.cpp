#include "statevector/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generators.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

constexpr double kTol = 1e-12;

TEST(Statevector, InitialBasisState) {
  StatevectorSimulator sim(3, 0b101);
  EXPECT_NEAR(std::abs(sim.amplitude(0b101)), 1.0, kTol);
  EXPECT_NEAR(sim.totalProbability(), 1.0, kTol);
}

TEST(Statevector, HadamardCreatesUniform) {
  StatevectorSimulator sim(1);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  EXPECT_NEAR(sim.amplitude(0).real(), 1 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(sim.amplitude(1).real(), 1 / std::sqrt(2.0), kTol);
}

TEST(Statevector, BellState) {
  StatevectorSimulator sim(2);
  sim.run(entanglementCircuit(2));
  EXPECT_NEAR(std::norm(sim.amplitude(0b00)), 0.5, kTol);
  EXPECT_NEAR(std::norm(sim.amplitude(0b11)), 0.5, kTol);
  EXPECT_NEAR(std::norm(sim.amplitude(0b01)), 0.0, kTol);
  EXPECT_NEAR(sim.probabilityOne(0), 0.5, kTol);
}

TEST(Statevector, GateAlgebraIdentities) {
  Rng rng(3);
  // Random state via a fixed prefix circuit.
  auto fresh = [&] {
    StatevectorSimulator sim(3);
    sim.run(randomCircuit(3, 12, 77));
    return sim;
  };
  auto expectSame = [&](const StatevectorSimulator& x,
                        const StatevectorSimulator& y) {
    for (std::size_t i = 0; i < x.state().size(); ++i) {
      EXPECT_NEAR(std::abs(x.state()[i] - y.state()[i]), 0.0, 1e-9) << i;
    }
  };
  // H² = I
  {
    StatevectorSimulator a = fresh(), b = fresh();
    a.applyGate(Gate{GateKind::kH, {0}, {}});
    a.applyGate(Gate{GateKind::kH, {0}, {}});
    expectSame(a, b);
  }
  // S = T², Z = S².
  {
    StatevectorSimulator a = fresh(), b = fresh();
    a.applyGate(Gate{GateKind::kT, {1}, {}});
    a.applyGate(Gate{GateKind::kT, {1}, {}});
    b.applyGate(Gate{GateKind::kS, {1}, {}});
    expectSame(a, b);
  }
  // X = HZH.
  {
    StatevectorSimulator a = fresh(), b = fresh();
    a.applyGate(Gate{GateKind::kH, {2}, {}});
    a.applyGate(Gate{GateKind::kZ, {2}, {}});
    a.applyGate(Gate{GateKind::kH, {2}, {}});
    b.applyGate(Gate{GateKind::kX, {2}, {}});
    expectSame(a, b);
  }
  // Sdg S = I, Tdg T = I.
  {
    StatevectorSimulator a = fresh(), b = fresh();
    a.applyGate(Gate{GateKind::kS, {0}, {}});
    a.applyGate(Gate{GateKind::kSdg, {0}, {}});
    a.applyGate(Gate{GateKind::kT, {1}, {}});
    a.applyGate(Gate{GateKind::kTdg, {1}, {}});
    expectSame(a, b);
  }
}

TEST(Statevector, SwapViaCnots) {
  StatevectorSimulator a(2), b(2);
  a.applyGate(Gate{GateKind::kH, {0}, {}});
  b.applyGate(Gate{GateKind::kH, {0}, {}});
  a.applyGate(Gate{GateKind::kSwap, {0, 1}, {}});
  b.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  b.applyGate(Gate{GateKind::kCnot, {0}, {1}});
  b.applyGate(Gate{GateKind::kCnot, {1}, {0}});
  for (std::size_t i = 0; i < a.state().size(); ++i)
    EXPECT_NEAR(std::abs(a.state()[i] - b.state()[i]), 0.0, kTol);
}

TEST(Statevector, UnitarityPreservedOnRandomCircuits) {
  for (std::uint64_t seed : {1, 2, 3}) {
    StatevectorSimulator sim(6);
    sim.run(randomCircuit(6, 60, seed));
    EXPECT_NEAR(sim.totalProbability(), 1.0, 1e-9);
  }
}

TEST(Statevector, MeasurementCollapses) {
  StatevectorSimulator sim(2);
  sim.run(entanglementCircuit(2));
  const bool outcome = sim.measure(0, 0.3);
  // Bell state: qubit 1 must agree with qubit 0 after measurement.
  EXPECT_NEAR(sim.probabilityOne(1), outcome ? 1.0 : 0.0, kTol);
  EXPECT_NEAR(sim.totalProbability(), 1.0, kTol);
}

TEST(Statevector, SampleAllFollowsDistribution) {
  StatevectorSimulator sim(2);
  sim.applyGate(Gate{GateKind::kH, {0}, {}});
  Rng rng(11);
  int ones = 0;
  for (int i = 0; i < 2000; ++i) ones += sim.sampleAll(rng.uniform()) & 1;
  EXPECT_NEAR(ones, 1000, 120);
}

TEST(Statevector, RejectsTooManyQubits) {
  EXPECT_THROW(StatevectorSimulator(29), std::invalid_argument);
}

}  // namespace
}  // namespace sliq
