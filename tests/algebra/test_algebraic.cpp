#include "algebra/algebraic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "support/rng.hpp"

namespace sliq {
namespace {

constexpr double kTol = 1e-12;
const std::complex<double> kOmega = std::polar(1.0, M_PI / 4);

std::complex<double> naive(std::int64_t a, std::int64_t b, std::int64_t c,
                           std::int64_t d, std::int64_t k) {
  const std::complex<double> val =
      double(a) * std::pow(kOmega, 3) + double(b) * std::pow(kOmega, 2) +
      double(c) * kOmega + double(d);
  return val / std::pow(std::sqrt(2.0), double(k));
}

AlgebraicComplex make(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t d, std::int64_t k = 0) {
  return AlgebraicComplex(BigInt(a), BigInt(b), BigInt(c), BigInt(d), k);
}

void expectNear(const AlgebraicComplex& x, std::complex<double> want) {
  const auto got = x.toComplex();
  EXPECT_NEAR(got.real(), want.real(), kTol) << x.toString();
  EXPECT_NEAR(got.imag(), want.imag(), kTol) << x.toString();
}

TEST(Algebraic, BasisValues) {
  expectNear(AlgebraicComplex::one(), {1, 0});
  expectNear(make(0, 0, 1, 0), kOmega);
  expectNear(make(0, 1, 0, 0), {0, 1});
  expectNear(make(1, 0, 0, 0), std::pow(kOmega, 3));
  expectNear(make(0, 0, 0, 1, 2), {0.5, 0});
}

TEST(Algebraic, ToComplexMatchesNaive) {
  Rng rng(21);
  for (int i = 0; i < 200; ++i) {
    const auto pick = [&] {
      return static_cast<std::int64_t>(rng.below(200)) - 100;
    };
    const std::int64_t a = pick(), b = pick(), c = pick(), d = pick();
    const std::int64_t k = static_cast<std::int64_t>(rng.below(6));
    const auto want = naive(a, b, c, d, k);
    expectNear(make(a, b, c, d, k), want);
  }
}

TEST(Algebraic, TimesOmegaIsRotation) {
  AlgebraicComplex x = make(3, -2, 5, 7, 1);
  AlgebraicComplex cur = x;
  for (unsigned p = 1; p <= 8; ++p) {
    cur = cur.timesOmega();
    const auto want = x.toComplex() * std::pow(kOmega, double(p));
    expectNear(cur, want);
  }
  EXPECT_EQ(cur, x);  // ω⁸ = 1
  EXPECT_EQ(x.timesOmega(3), x.timesOmega().timesOmega().timesOmega());
}

TEST(Algebraic, AdditionAlignsK) {
  // 1/√2 + 1/√2 = 2/√2 = √2: (d=1,k=1) + (d=1,k=1) = (d=2,k=1).
  const AlgebraicComplex half = make(0, 0, 0, 1, 1);
  expectNear(half + half, {std::sqrt(2.0), 0});
  // Mixed k: 1 + 1/√2.
  const AlgebraicComplex one = AlgebraicComplex::one();
  expectNear(one + half, {1.0 + 1.0 / std::sqrt(2.0), 0});
  // k alignment with odd difference exercises the √2 coefficient rotation.
  const AlgebraicComplex x = make(1, 2, 3, 4, 3);
  const AlgebraicComplex y = make(-2, 0, 1, 5, 0);
  expectNear(x + y, naive(1, 2, 3, 4, 3) + naive(-2, 0, 1, 5, 0));
}

TEST(Algebraic, EqualityAcrossRepresentations) {
  // √2/√2² == 1/√2: (c=1,a=-1,k=2) vs (d=1,k=1)?  √2 = ω - ω³.
  const AlgebraicComplex sqrt2Form = make(-1, 0, 1, 0, 2);
  const AlgebraicComplex direct = make(0, 0, 0, 1, 1);
  EXPECT_EQ(sqrt2Form, direct);
  EXPECT_NE(sqrt2Form, AlgebraicComplex::one());
  // 2/√2² == 1.
  EXPECT_EQ(make(0, 0, 0, 2, 2), AlgebraicComplex::one());
}

TEST(Algebraic, MultiplicationMatchesComplex) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto pick = [&] {
      return static_cast<std::int64_t>(rng.below(40)) - 20;
    };
    const AlgebraicComplex x = make(pick(), pick(), pick(), pick(),
                                    static_cast<std::int64_t>(rng.below(4)));
    const AlgebraicComplex y = make(pick(), pick(), pick(), pick(),
                                    static_cast<std::int64_t>(rng.below(4)));
    const auto want = x.toComplex() * y.toComplex();
    expectNear(x * y, want);
  }
}

TEST(Algebraic, ConjugateAndNormSq) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto pick = [&] {
      return static_cast<std::int64_t>(rng.below(60)) - 30;
    };
    const AlgebraicComplex x = make(pick(), pick(), pick(), pick(),
                                    static_cast<std::int64_t>(rng.below(5)));
    expectNear(x.conjugate(), std::conj(x.toComplex()));
    EXPECT_NEAR(x.normSq(), std::norm(x.toComplex()), 1e-9);
    // x * conj(x) is real and equals |x|².
    const AlgebraicComplex prod = x * x.conjugate();
    const auto asComplex = prod.toComplex();
    EXPECT_NEAR(asComplex.imag(), 0.0, 1e-9);
    EXPECT_NEAR(asComplex.real(), x.normSq(), 1e-9);
  }
}

TEST(Algebraic, NormSqScaledExactForm) {
  // |ω + 1|² = 2 + √2 exactly.
  const Zroot2 w = make(0, 0, 1, 1).normSqScaled();
  EXPECT_EQ(w.rational(), BigInt(2));
  EXPECT_EQ(w.irrational(), BigInt(1));
  // |1/√2|²·2¹ = 1.
  const Zroot2 h = make(0, 0, 0, 1, 1).normSqScaled();
  EXPECT_EQ(h.rational(), BigInt(1));
  EXPECT_TRUE(h.irrational().isZero());
}

TEST(Algebraic, ZeroBehaviour) {
  AlgebraicComplex z;
  EXPECT_TRUE(z.isZero());
  EXPECT_EQ(z.normSq(), 0.0);
  expectNear(z, {0, 0});
  EXPECT_EQ(z + make(1, 2, 3, 4), make(1, 2, 3, 4));
  EXPECT_TRUE((z * make(1, 2, 3, 4)).isZero());
}

TEST(Algebraic, ToStringReadable) {
  EXPECT_EQ(AlgebraicComplex::one().toString(), "(1)");
  EXPECT_EQ(make(0, 0, 0, 0).toString(), "(0)");
  EXPECT_EQ(make(-1, 0, 2, 1, 3).toString(), "(-ω³ + 2ω + 1)/√2^3");
}

}  // namespace
}  // namespace sliq
