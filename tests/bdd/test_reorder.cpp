#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "support/rng.hpp"

namespace sliq::bdd {
namespace {

/// The classic order-sensitive function: x0·x1 + x2·x3 + ... pairs.
/// With pair-adjacent order it is linear-size; with interleaved order it is
/// exponential. Sifting from the bad order must shrink it substantially.
Bdd pairwiseAnd(BddManager& mgr, const std::vector<unsigned>& pairing) {
  Bdd acc(&mgr, kFalseEdge);
  for (std::size_t i = 0; i + 1 < pairing.size(); i += 2) {
    acc = acc | (makeVar(mgr, pairing[i]) & makeVar(mgr, pairing[i + 1]));
  }
  return acc;
}

TEST(BddReorder, SwapPreservesSemantics) {
  BddManager mgr(BddManager::Config{.initialVars = 4});
  Bdd f = (makeVar(mgr, 0) & makeVar(mgr, 1)) ^
          (makeVar(mgr, 2) | ~makeVar(mgr, 3));
  std::vector<std::vector<bool>> points;
  std::vector<bool> expected;
  for (unsigned row = 0; row < 16; ++row) {
    std::vector<bool> pt{(row & 1) != 0, (row & 2) != 0, (row & 4) != 0,
                         (row & 8) != 0};
    points.push_back(pt);
    expected.push_back(f.eval(pt));
  }
  mgr.reorderSift();
  mgr.checkConsistency();
  for (unsigned row = 0; row < 16; ++row) {
    EXPECT_EQ(f.eval(points[row]), expected[row]) << row;
  }
}

TEST(BddReorder, SiftingShrinksInterleavedPairs) {
  constexpr unsigned kPairs = 8;
  BddManager mgr(BddManager::Config{.initialVars = 2 * kPairs});
  // Interleaved (bad) pairing under the natural order: (0,8),(1,9),...
  std::vector<unsigned> bad;
  for (unsigned i = 0; i < kPairs; ++i) {
    bad.push_back(i);
    bad.push_back(i + kPairs);
  }
  Bdd f = pairwiseAnd(mgr, bad);
  const std::size_t before = f.nodeCount();
  mgr.reorderSift();
  mgr.checkConsistency();
  const std::size_t after = f.nodeCount();
  // The optimum is 2*kPairs nodes; sifting should get close. Require at
  // least a 4x improvement over the interleaved order (which is ~2^kPairs).
  EXPECT_LT(after * 4, before);
  // Semantics retained on a few sample points.
  std::vector<bool> pt(2 * kPairs, false);
  EXPECT_FALSE(f.eval(pt));
  pt[0] = pt[kPairs] = true;  // first pair satisfied
  EXPECT_TRUE(f.eval(pt));
}

TEST(BddReorder, ReorderWithComplementEdges) {
  BddManager mgr(BddManager::Config{.initialVars = 6});
  Rng rng(5);
  std::vector<Bdd> funcs;
  for (int i = 0; i < 10; ++i) {
    Bdd f(&mgr, kTrueEdge);
    for (int d = 0; d < 6; ++d) {
      Bdd v = makeVar(mgr, static_cast<unsigned>(rng.below(6)));
      if (rng.flip()) v = ~v;
      f = rng.flip() ? (f ^ v) : (f & v);
    }
    funcs.push_back(f);
  }
  std::vector<std::vector<bool>> samples;
  for (int s = 0; s < 20; ++s) {
    std::vector<bool> pt(6);
    for (int v = 0; v < 6; ++v) pt[v] = rng.flip();
    samples.push_back(pt);
  }
  std::vector<std::vector<bool>> expected;
  for (const auto& f : funcs) {
    std::vector<bool> row;
    for (const auto& pt : samples) row.push_back(f.eval(pt));
    expected.push_back(row);
  }
  mgr.reorderSift();
  mgr.checkConsistency();
  for (std::size_t i = 0; i < funcs.size(); ++i) {
    for (std::size_t s = 0; s < samples.size(); ++s) {
      EXPECT_EQ(funcs[i].eval(samples[s]), expected[i][s]);
    }
  }
}

TEST(BddReorder, LevelMapsStayInverse) {
  BddManager mgr(BddManager::Config{.initialVars = 10});
  Bdd f(&mgr, kTrueEdge);
  Rng rng(17);
  for (int i = 0; i < 30; ++i)
    f = f ^ makeVar(mgr, static_cast<unsigned>(rng.below(10)));
  mgr.reorderSift();
  for (unsigned v = 0; v < mgr.varCount(); ++v) {
    EXPECT_EQ(mgr.varAtLevel(mgr.levelOfVar(v)), v);
  }
}

}  // namespace
}  // namespace sliq::bdd
