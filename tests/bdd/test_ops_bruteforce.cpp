// Property tests: random Boolean expressions evaluated both through the BDD
// package and through brute-force truth tables over up to 6 variables.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "support/rng.hpp"

namespace sliq::bdd {
namespace {

constexpr unsigned kVars = 6;
using TruthTable = std::uint64_t;  // 2^6 rows

struct ExprGen {
  BddManager& mgr;
  Rng& rng;

  // Returns a (Bdd, truth table) pair built from a random expression tree.
  std::pair<Bdd, TruthTable> gen(int depth) {
    if (depth == 0 || rng.below(5) == 0) {
      const unsigned v = static_cast<unsigned>(rng.below(kVars));
      TruthTable tt = 0;
      for (unsigned row = 0; row < 64; ++row)
        if ((row >> v) & 1u) tt |= TruthTable{1} << row;
      Bdd f = makeVar(mgr, v);
      if (rng.flip()) return {~f, ~tt};
      return {f, tt};
    }
    auto [l, lt] = gen(depth - 1);
    auto [r, rt] = gen(depth - 1);
    switch (rng.below(4)) {
      case 0: return {l & r, lt & rt};
      case 1: return {l | r, lt | rt};
      case 2: return {l ^ r, lt ^ rt};
      default: {
        auto [s, st] = gen(depth - 1);
        return {l.ite(r, s), (lt & rt) | (~lt & st)};
      }
    }
  }
};

bool ttBit(TruthTable tt, unsigned row) { return (tt >> row) & 1u; }

std::vector<bool> rowToPoint(unsigned row) {
  std::vector<bool> pt(kVars);
  for (unsigned v = 0; v < kVars; ++v) pt[v] = (row >> v) & 1u;
  return pt;
}

class BruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BruteForce, RandomExpressionsMatchTruthTables) {
  BddManager mgr(BddManager::Config{.initialVars = kVars});
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003);
  ExprGen gen{mgr, rng};
  for (int iter = 0; iter < 40; ++iter) {
    auto [f, tt] = gen.gen(4);
    for (unsigned row = 0; row < 64; ++row) {
      ASSERT_EQ(f.eval(rowToPoint(row)), ttBit(tt, row))
          << "iter " << iter << " row " << row;
    }
    // satFraction agrees with popcount.
    EXPECT_DOUBLE_EQ(mgr.satFraction(f.edge()),
                     __builtin_popcountll(tt) / 64.0);
  }
  mgr.checkConsistency();
}

TEST_P(BruteForce, CofactorMatchesTruthTableRestriction) {
  BddManager mgr(BddManager::Config{.initialVars = kVars});
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7777 + 3);
  ExprGen gen{mgr, rng};
  for (int iter = 0; iter < 30; ++iter) {
    auto [f, tt] = gen.gen(4);
    const unsigned var = static_cast<unsigned>(rng.below(kVars));
    const bool val = rng.flip();
    Bdd g = f.cofactor(var, val);
    for (unsigned row = 0; row < 64; ++row) {
      // Evaluate the cofactor at `row`; it must equal f at row with var set.
      unsigned forced = row;
      if (val) forced |= 1u << var;
      else forced &= ~(1u << var);
      ASSERT_EQ(g.eval(rowToPoint(row)), ttBit(tt, forced));
    }
    // The cofactor's support excludes the restricted variable.
    for (unsigned sv : mgr.supportVars(g.edge())) ASSERT_NE(sv, var);
  }
}

TEST_P(BruteForce, CanonicityEqualTruthTablesShareEdges) {
  BddManager mgr(BddManager::Config{.initialVars = kVars});
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 11);
  ExprGen gen{mgr, rng};
  std::vector<std::pair<TruthTable, Edge>> seen;
  std::vector<Bdd> keep;  // keeps the recorded edges alive within this test
  for (int iter = 0; iter < 60; ++iter) {
    auto [f, tt] = gen.gen(3);
    for (const auto& [tt2, e2] : seen) {
      if (tt2 == tt) {
        ASSERT_EQ(f.edge(), e2);
      }
      if (tt2 == ~tt) {
        ASSERT_EQ(f.edge(), !e2);
      }
    }
    seen.emplace_back(tt, f.edge());
    keep.push_back(f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForce, ::testing::Range(1, 9));

}  // namespace
}  // namespace sliq::bdd
