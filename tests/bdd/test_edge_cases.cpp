// BDD kernel edge cases: constant handling, deep chains (recursion depth),
// ref-count saturation, cache correctness across GC, and cube corner cases.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "support/rng.hpp"

namespace sliq::bdd {
namespace {

TEST(BddEdge, IteConstantArguments) {
  BddManager mgr(BddManager::Config{.initialVars = 2});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1);
  Bdd one(&mgr, kTrueEdge), zero(&mgr, kFalseEdge);
  EXPECT_EQ(one.ite(a, b), a);
  EXPECT_EQ(zero.ite(a, b), b);
  EXPECT_EQ(a.ite(one, zero), a);
  EXPECT_EQ(a.ite(zero, one), ~a);
  EXPECT_EQ(a.ite(a, b), a | b);
  EXPECT_EQ(a.ite(~a, b), ~a & b);
  EXPECT_EQ(a.ite(b, a), a & b);
  EXPECT_EQ(a.ite(b, ~a), a.ite(b, kTrueEdge == kTrueEdge ? ~a : a));
}

TEST(BddEdge, DeepChainNoStackOverflow) {
  // 20000 variables: the recursion in ITE/cofactor follows one chain.
  constexpr unsigned kVars = 20000;
  BddManager mgr(BddManager::Config{.initialVars = kVars});
  Bdd acc(&mgr, kTrueEdge);
  for (unsigned v = 0; v < kVars; ++v) acc = acc & makeVar(mgr, v);
  EXPECT_EQ(acc.nodeCount(), kVars);
  // Cofactor at the bottom forces a full-depth traversal.
  Bdd cof = acc.cofactor(kVars - 1, true);
  EXPECT_EQ(cof.nodeCount(), kVars - 1);
  // XOR chain (complement-edge heavy) at the same depth.
  Bdd x(&mgr, kFalseEdge);
  for (unsigned v = 0; v < kVars; ++v) x = x ^ makeVar(mgr, v);
  std::vector<bool> point(kVars, true);
  EXPECT_EQ(x.eval(point), kVars % 2 == 1);
}

TEST(BddEdge, CofactorOfConstant) {
  BddManager mgr(BddManager::Config{.initialVars = 2});
  Bdd one(&mgr, kTrueEdge);
  EXPECT_EQ(one.cofactor(0, true), one);
  EXPECT_EQ((~one).cofactor(1, false), ~one);
}

TEST(BddEdge, CubeWithSingleLiteral) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd cube(&mgr, mgr.cubeEdge({{2, false}}));
  EXPECT_EQ(cube, ~makeVar(mgr, 2));
}

TEST(BddEdge, RestrictCubeOverridesToConstant) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1), c = makeVar(mgr, 2);
  Bdd f = (a & b) | (~a & c);
  EXPECT_EQ(f.cofactorCube({{0, true}, {1, true}}),
            Bdd(&mgr, kTrueEdge));
  EXPECT_EQ(f.cofactorCube({{0, true}, {1, false}}),
            Bdd(&mgr, kFalseEdge));
}

TEST(BddEdge, SharedSubgraphsAcrossManyFunctions) {
  BddManager mgr(BddManager::Config{.initialVars = 10});
  Rng rng(6);
  std::vector<Bdd> funcs;
  Bdd base = makeVar(mgr, 8) & makeVar(mgr, 9);
  for (int i = 0; i < 50; ++i) {
    Bdd f = base;
    for (int d = 0; d < 4; ++d)
      f = f ^ makeVar(mgr, static_cast<unsigned>(rng.below(8)));
    funcs.push_back(f);
  }
  std::vector<Edge> roots;
  for (const Bdd& f : funcs) roots.push_back(f.edge());
  // Shared count is far below the sum of individual counts.
  std::size_t individual = 0;
  for (const Bdd& f : funcs) individual += f.nodeCount();
  EXPECT_LT(mgr.nodeCountMulti(roots) * 2, individual);
}

TEST(BddEdge, GcBetweenCachedOperations) {
  BddManager::Config cfg;
  cfg.initialVars = 8;
  cfg.gcThreshold = 64;  // extremely aggressive
  BddManager mgr(cfg);
  Rng rng(12);
  // Interleave computation and implicit GC; results must stay correct.
  for (int round = 0; round < 200; ++round) {
    Bdd f = makeVar(mgr, static_cast<unsigned>(rng.below(8)));
    Bdd g = makeVar(mgr, static_cast<unsigned>(rng.below(8)));
    Bdd h = (f & g) | (~f & ~g);
    // XNOR truth check at two points.
    std::vector<bool> p1(8, false), p2(8, false);
    p2[mgr.edgeVar(f.edge())] = true;
    EXPECT_TRUE(h.eval(p1));
    if (f != g) {
      EXPECT_FALSE(h.eval(p2));
    }
  }
  mgr.checkConsistency();
}

TEST(BddEdge, VarEdgeSurvivesGc) {
  BddManager mgr(BddManager::Config{.initialVars = 4});
  const Edge before = mgr.varEdge(2);
  mgr.garbageCollect();  // projection had no handle: may be reclaimed
  const Edge after = mgr.varEdge(2);  // must be recreated canonically
  Bdd v(&mgr, after);
  EXPECT_TRUE(v.eval({false, false, true, false}));
  (void)before;
  mgr.checkConsistency();
}

TEST(BddEdge, SupportOfConstantsEmpty) {
  BddManager mgr(BddManager::Config{.initialVars = 4});
  EXPECT_TRUE(mgr.supportVars(kTrueEdge).empty());
  EXPECT_TRUE(mgr.supportVars(kFalseEdge).empty());
  EXPECT_EQ(mgr.nodeCount(kTrueEdge), 0u);
  EXPECT_DOUBLE_EQ(mgr.satFraction(kFalseEdge), 0.0);
}

TEST(BddEdge, EvalRespectsComplementParity) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1), c = makeVar(mgr, 2);
  Bdd f = ~((a ^ ~b) & ~(b | ~c));
  for (unsigned row = 0; row < 8; ++row) {
    const bool va = row & 1, vb = row & 2, vc = row & 4;
    const bool expected = !(((va != !vb)) && !(vb || !vc));
    EXPECT_EQ(f.eval({va, vb, vc}), expected) << row;
  }
}

}  // namespace
}  // namespace sliq::bdd
