#include <gtest/gtest.h>

#include <sstream>

#include "bdd/bdd.hpp"
#include "bdd/dot.hpp"
#include "bdd/manager.hpp"

namespace sliq::bdd {
namespace {

TEST(BddBasic, ConstantsAreDistinctAndComplementary) {
  BddManager mgr;
  EXPECT_EQ(kTrueEdge, !kFalseEdge);
  EXPECT_NE(kTrueEdge, kFalseEdge);
  Bdd one(&mgr, kTrueEdge);
  EXPECT_TRUE(one.isOne());
  EXPECT_TRUE((~one).isZero());
}

TEST(BddBasic, VarEdgeIsProjection) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd x = makeVar(mgr, 1);
  EXPECT_TRUE(x.eval({false, true, false}));
  EXPECT_FALSE(x.eval({true, false, true}));
}

TEST(BddBasic, VarEdgeIsCanonical) {
  BddManager mgr(BddManager::Config{.initialVars = 2});
  EXPECT_EQ(mgr.varEdge(0), mgr.varEdge(0));
  EXPECT_NE(mgr.varEdge(0), mgr.varEdge(1));
}

TEST(BddBasic, AndOrXorSemantics) {
  BddManager mgr(BddManager::Config{.initialVars = 2});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1);
  const Bdd conj = a & b, disj = a | b, exor = a ^ b;
  for (bool va : {false, true}) {
    for (bool vb : {false, true}) {
      std::vector<bool> pt{va, vb};
      EXPECT_EQ(conj.eval(pt), va && vb);
      EXPECT_EQ(disj.eval(pt), va || vb);
      EXPECT_EQ(exor.eval(pt), va != vb);
    }
  }
}

TEST(BddBasic, CanonicityMakesEqualFunctionsIdentical) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1), c = makeVar(mgr, 2);
  // De Morgan
  EXPECT_EQ(~(a & b), ~a | ~b);
  // Distribution
  EXPECT_EQ(a & (b | c), (a & b) | (a & c));
  // XOR via AND/OR
  EXPECT_EQ(a ^ b, (a & ~b) | (~a & b));
  // Shannon expansion
  EXPECT_EQ(a.ite(b, c), (a & b) | (~a & c));
}

TEST(BddBasic, ComplementEdgeMakesNegationFree) {
  BddManager mgr(BddManager::Config{.initialVars = 4});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1);
  Bdd f = (a & b) | (~a & ~b);
  const std::size_t before = mgr.stats().createdNodes;
  Bdd g = ~f;
  EXPECT_EQ(mgr.stats().createdNodes, before);  // no new nodes for NOT
  EXPECT_EQ(g.edge(), !f.edge());
}

TEST(BddBasic, CofactorShannon) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1), c = makeVar(mgr, 2);
  Bdd f = (a & b) ^ c;
  EXPECT_EQ(f.cofactor(0, true), b ^ c);
  EXPECT_EQ(f.cofactor(0, false), c);
  EXPECT_EQ(f.cofactor(2, false), a & b);
  // Cofactor w.r.t. a variable outside the support is identity.
  BddManager::Config cfg;
  EXPECT_EQ(f.cofactor(1, true).cofactor(1, false), f.cofactor(1, true));
}

TEST(BddBasic, CofactorCube) {
  BddManager mgr(BddManager::Config{.initialVars = 4});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1), c = makeVar(mgr, 2),
      d = makeVar(mgr, 3);
  Bdd f = (a & b & c) | d;
  Bdd g = f.cofactorCube({{0, true}, {2, true}});
  EXPECT_EQ(g, b | d);
}

TEST(BddBasic, CubeEdgeBuildsConjunction) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd cube(&mgr, mgr.cubeEdge({{0, true}, {1, false}, {2, true}}));
  EXPECT_TRUE(cube.eval({true, false, true}));
  EXPECT_FALSE(cube.eval({true, true, true}));
  EXPECT_FALSE(cube.eval({false, false, true}));
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1), c = makeVar(mgr, 2);
  EXPECT_EQ(cube, a & ~b & c);
}

TEST(BddBasic, EmptyCubeIsTrue) {
  BddManager mgr;
  EXPECT_EQ(mgr.cubeEdge({}), kTrueEdge);
}

TEST(BddBasic, SatFraction) {
  BddManager mgr(BddManager::Config{.initialVars = 3});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1);
  EXPECT_DOUBLE_EQ(mgr.satFraction(kTrueEdge), 1.0);
  EXPECT_DOUBLE_EQ(mgr.satFraction(kFalseEdge), 0.0);
  EXPECT_DOUBLE_EQ(mgr.satFraction(a.edge()), 0.5);
  EXPECT_DOUBLE_EQ(mgr.satFraction((a & b).edge()), 0.25);
  EXPECT_DOUBLE_EQ(mgr.satFraction((a | b).edge()), 0.75);
  EXPECT_DOUBLE_EQ(mgr.satFraction((a ^ b).edge()), 0.5);
}

TEST(BddBasic, SupportVars) {
  BddManager mgr(BddManager::Config{.initialVars = 5});
  Bdd a = makeVar(mgr, 0), c = makeVar(mgr, 2), e = makeVar(mgr, 4);
  Bdd f = (a & c) | e;
  EXPECT_EQ(f.isZero(), false);
  const auto support = mgr.supportVars(f.edge());
  EXPECT_EQ(support, (std::vector<unsigned>{0, 2, 4}));
  EXPECT_TRUE(mgr.supportVars(kTrueEdge).empty());
}

TEST(BddBasic, NodeCountSharing) {
  BddManager mgr(BddManager::Config{.initialVars = 2});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1);
  Bdd x = a ^ b;
  // XOR over 2 vars: one a-node, one b-node (complement edges share the
  // b-node between both branches).
  EXPECT_EQ(x.nodeCount(), 2u);
  EXPECT_EQ(mgr.nodeCountMulti({x.edge(), (~x).edge()}), 2u);
}

TEST(BddBasic, NewVarGrowsOrder) {
  BddManager mgr;
  EXPECT_EQ(mgr.varCount(), 0u);
  const unsigned v0 = mgr.newVar();
  const unsigned v1 = mgr.newVar();
  EXPECT_EQ(v0, 0u);
  EXPECT_EQ(v1, 1u);
  EXPECT_LT(mgr.levelOfVar(v0), mgr.levelOfVar(v1));
  Bdd f = makeVar(mgr, v0) & makeVar(mgr, v1);
  EXPECT_TRUE(f.eval({true, true}));
}

TEST(BddBasic, ConsistencyAfterWork) {
  BddManager mgr(BddManager::Config{.initialVars = 8});
  Bdd acc(&mgr, kTrueEdge);
  for (unsigned v = 0; v < 8; ++v) {
    acc = (acc ^ makeVar(mgr, v)) | (acc & makeVar(mgr, (v + 3) % 8));
  }
  mgr.checkConsistency();
  EXPECT_GT(mgr.liveNodeCount(), 1u);
}

TEST(BddBasic, DotExportContainsStructure) {
  BddManager mgr(BddManager::Config{.initialVars = 2});
  Bdd f = makeVar(mgr, 0) & ~makeVar(mgr, 1);
  std::ostringstream os;
  writeDot(mgr, f.edge(), os, {"q0", "q1"});
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("q0"), std::string::npos);
  EXPECT_NE(dot.find("q1"), std::string::npos);
  EXPECT_NE(dot.find("one"), std::string::npos);
}

TEST(BddBasic, NodeLimitThrows) {
  BddManager::Config cfg;
  cfg.initialVars = 24;
  cfg.maxLiveNodes = 200;
  BddManager mgr(cfg);
  auto build = [&] {
    Bdd acc(&mgr, kFalseEdge);
    // Interleaved AND-pairs are exponential under the natural order.
    for (unsigned v = 0; v < 12; ++v) {
      acc = acc | (makeVar(mgr, v) & makeVar(mgr, v + 12));
    }
    return acc;
  };
  EXPECT_THROW(build(), NodeLimitError);
}

}  // namespace
}  // namespace sliq::bdd
