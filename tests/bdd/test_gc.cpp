#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "support/rng.hpp"

namespace sliq::bdd {
namespace {

TEST(BddGc, ReclaimsDroppedFunctions) {
  BddManager mgr(BddManager::Config{.initialVars = 16});
  const std::size_t baseline = mgr.liveNodeCount();
  {
    Bdd acc(&mgr, kTrueEdge);
    for (unsigned v = 0; v < 16; ++v) acc = acc ^ makeVar(mgr, v);
    EXPECT_GT(mgr.liveNodeCount(), baseline);
  }
  mgr.garbageCollect();
  // Only projection nodes (if any were created) may survive; the XOR chain
  // itself is gone.
  EXPECT_LE(mgr.liveNodeCount(), baseline + 16);
  mgr.checkConsistency();
}

TEST(BddGc, LiveHandlesSurviveGc) {
  BddManager mgr(BddManager::Config{.initialVars = 8});
  Bdd a = makeVar(mgr, 0), b = makeVar(mgr, 1), c = makeVar(mgr, 2);
  Bdd f = (a & b) | (~b & c);
  mgr.garbageCollect();
  mgr.checkConsistency();
  // f still evaluates correctly after GC.
  EXPECT_TRUE(f.eval({true, true, false, false, false, false, false, false}));
  EXPECT_TRUE(f.eval({false, false, true, false, false, false, false, false}));
  EXPECT_FALSE(f.eval({false, true, false, false, false, false, false, false}));
}

TEST(BddGc, RebuildAfterGcIsCanonical) {
  BddManager mgr(BddManager::Config{.initialVars = 4});
  Edge before;
  {
    Bdd f = (makeVar(mgr, 0) & makeVar(mgr, 1)) ^ makeVar(mgr, 2);
    before = f.edge();
  }
  mgr.garbageCollect();
  Bdd g = (makeVar(mgr, 0) & makeVar(mgr, 1)) ^ makeVar(mgr, 2);
  // The function was reclaimed and rebuilt; it may or may not reuse the same
  // index, but it must be self-consistent and semantically right.
  EXPECT_TRUE(g.eval({true, true, false, false}));
  EXPECT_FALSE(g.eval({true, true, true, false}));
  mgr.checkConsistency();
  (void)before;
}

TEST(BddGc, StressRandomChurn) {
  BddManager::Config cfg;
  cfg.initialVars = 12;
  cfg.gcThreshold = 2000;  // force frequent collections
  BddManager mgr(cfg);
  Rng rng(99);
  std::vector<Bdd> pool;
  for (unsigned v = 0; v < 12; ++v) pool.push_back(makeVar(mgr, v));
  for (int iter = 0; iter < 3000; ++iter) {
    const std::size_t i = rng.below(pool.size());
    const std::size_t j = rng.below(pool.size());
    Bdd combined;
    switch (rng.below(3)) {
      case 0: combined = pool[i] & pool[j]; break;
      case 1: combined = pool[i] | ~pool[j]; break;
      default: combined = pool[i] ^ pool[j]; break;
    }
    if (pool.size() > 40) {
      pool[rng.below(pool.size())] = combined;  // drop one, keep churn
    } else {
      pool.push_back(combined);
    }
  }
  mgr.garbageCollect();
  mgr.checkConsistency();
  EXPECT_GT(mgr.stats().gcRuns, 0u);
}

TEST(BddGc, RestrictCubeResultSurvivesGcBeforeAdoption) {
  // Regression: restrictCube used to deref its result before returning it,
  // so a GC between the call and the caller's ref could reclaim the cone.
  // The result now arrives referenced (ownership handoff, see manager.hpp).
  BddManager mgr(BddManager::Config{.initialVars = 8});
  // f = v0 ⊕ (v1 ∧ v2) ⊕ v3. Restricting the *middle* variable v1 yields
  // v0 ⊕ v2 ⊕ v3, whose root is a freshly built node outside f's cone —
  // only the handoff reference keeps it alive below.
  Bdd f = makeVar(mgr, 0) ^ (makeVar(mgr, 1) & makeVar(mgr, 2)) ^
          makeVar(mgr, 3);
  const Edge restricted = mgr.restrictCube(f.edge(), {{1, true}});
  // Force a GC before any caller ref, then churn the manager so that a
  // wrongly reclaimed slot would have been reused by now.
  mgr.garbageCollect();
  {
    Bdd churn(&mgr, kTrueEdge);
    for (unsigned v = 0; v < 8; ++v) churn = churn ^ makeVar(mgr, v);
  }
  mgr.garbageCollect();
  mgr.checkConsistency();
  Bdd g(&mgr, restricted);
  mgr.deref(restricted);  // release the handoff reference
  // g must still be v0 ⊕ v2 ⊕ v3.
  for (unsigned assignment = 0; assignment < 16; ++assignment) {
    std::vector<bool> point(8, false);
    for (unsigned v = 0; v < 4; ++v) point[v] = ((assignment >> v) & 1) != 0;
    const bool expected = point[0] ^ point[2] ^ point[3];
    EXPECT_EQ(g.eval(point), expected) << assignment;
  }
  mgr.checkConsistency();
}

TEST(BddGc, HandleCopySemantics) {
  BddManager mgr(BddManager::Config{.initialVars = 4});
  Bdd f = makeVar(mgr, 0) & makeVar(mgr, 1);
  Bdd copy = f;
  Bdd moved = std::move(f);
  EXPECT_EQ(copy, moved);
  copy = copy;  // self-assignment must be safe
  EXPECT_EQ(copy, moved);
  {
    Bdd tmp = copy;
    tmp = ~tmp;
    EXPECT_NE(tmp, copy);
  }
  mgr.garbageCollect();
  EXPECT_TRUE(moved.eval({true, true, false, false}));
  mgr.checkConsistency();
}

}  // namespace
}  // namespace sliq::bdd
