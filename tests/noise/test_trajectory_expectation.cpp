// Trajectory-mean Pauli expectations (noise::runTrajectoryExpectation):
// thread-count invariance (bit-identical doubles), agreement of the
// Pauli-frame sign path with the generic replay path, closed-form checks
// for readout attenuation and simple channels, and the error contract.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "noise/noise_model.hpp"
#include "noise/trajectory.hpp"

namespace sliq::noise {
namespace {

QuantumCircuit ghz(unsigned n) {
  QuantumCircuit c(n, "ghz");
  c.h(0);
  for (unsigned q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
  return c;
}

QuantumCircuit tEntangled() {
  QuantumCircuit c(3, "t-entangled");
  c.h(0).t(0).h(0).cx(0, 1).h(2).t(2).h(2).cx(1, 2);
  return c;
}

NoiseModel depolarizingModel() {
  NoiseModel model;
  model.addAfterGate1(PauliChannel::depolarizing1(0.02));
  model.addAfterGate2(PauliChannel::depolarizing2(0.03));
  return model;
}

PauliObservable ghzObservable() {
  return PauliObservable::parseString("1 Z0 Z1\n0.5 X0 X1 X2 X3\n-0.25 Z2\n");
}

TEST(TrajectoryExpectation, MeanIsThreadCountInvariantFastPath) {
  const QuantumCircuit c = ghz(4);
  const NoiseModel model = depolarizingModel();
  const PauliObservable obs = ghzObservable();
  for (const std::string& engine : engineNames()) {
    SCOPED_TRACE(engine);
    TrajectoryOptions options;
    options.trajectories = 300;
    options.seed = 11;
    options.threads = 1;
    const ExpectationResult one =
        runTrajectoryExpectation(engine, c, model, obs, options);
    EXPECT_TRUE(one.usedPauliFrameFastPath);
    for (const unsigned threads : {2u, 3u, 8u}) {
      options.threads = threads;
      const ExpectationResult many =
          runTrajectoryExpectation(engine, c, model, obs, options);
      // Bit-identical, not approximately equal: the per-trajectory values
      // land in index-addressed slots and reduce in index order.
      EXPECT_EQ(many.mean, one.mean) << threads;
      EXPECT_EQ(many.stddev, one.stddev) << threads;
      EXPECT_EQ(many.standardError, one.standardError) << threads;
    }
  }
}

TEST(TrajectoryExpectation, MeanIsThreadCountInvariantGenericPath) {
  const QuantumCircuit c = tEntangled();  // non-Clifford: generic path only
  const NoiseModel model = depolarizingModel();
  const PauliObservable obs =
      PauliObservable::parseString("1 Z0 Z1\n-0.5 X2\n");
  for (const char* engine : {"exact", "qmdd", "statevector"}) {
    SCOPED_TRACE(engine);
    TrajectoryOptions options;
    options.trajectories = 60;
    options.seed = 5;
    options.threads = 1;
    const ExpectationResult one =
        runTrajectoryExpectation(engine, c, model, obs, options);
    EXPECT_FALSE(one.usedPauliFrameFastPath);
    options.threads = 4;
    const ExpectationResult four =
        runTrajectoryExpectation(engine, c, model, obs, options);
    EXPECT_EQ(four.mean, one.mean);
    EXPECT_EQ(four.stddev, one.stddev);
  }
}

TEST(TrajectoryExpectation, FrameSignPathMatchesGenericReplay) {
  // Same seeds, same substream consumption: the frame path's ±⟨P⟩_ideal per
  // trajectory must equal the generic path's exact ⟨P⟩ of the realized
  // noisy circuit (Pauli conjugation of a Pauli observable is exact).
  const QuantumCircuit c = ghz(4);
  const NoiseModel model = depolarizingModel();
  const PauliObservable obs = ghzObservable();
  for (const std::string& engine : engineNames()) {
    SCOPED_TRACE(engine);
    TrajectoryOptions options;
    options.trajectories = 120;
    options.seed = 21;
    options.threads = 2;
    const ExpectationResult fast =
        runTrajectoryExpectation(engine, c, model, obs, options);
    options.forceGeneric = true;
    const ExpectationResult generic =
        runTrajectoryExpectation(engine, c, model, obs, options);
    EXPECT_TRUE(fast.usedPauliFrameFastPath);
    EXPECT_FALSE(generic.usedPauliFrameFastPath);
    EXPECT_NEAR(fast.mean, generic.mean, 1e-10);
  }
}

TEST(TrajectoryExpectation, ReadoutAttenuationClosedForm) {
  // Readout-only noise never randomizes the trajectory, so the mean is the
  // exact closed form (1−2p)^|support|·⟨P⟩ with zero variance:
  // GHZ-4 has ⟨Z0 Z1⟩ = 1 and ⟨X⊗4⟩ = 1.
  const QuantumCircuit c = ghz(4);
  NoiseModel model;
  model.setReadoutFlip(0.1);
  TrajectoryOptions options;
  options.trajectories = 16;
  options.seed = 3;
  const double f2 = (1 - 0.2) * (1 - 0.2);
  const double f4 = f2 * f2;
  const ExpectationResult zz = runTrajectoryExpectation(
      "exact", c, model, PauliObservable::parseString("1 Z0 Z1"), options);
  EXPECT_NEAR(zz.mean, f2, 1e-12);
  EXPECT_NEAR(zz.stddev, 0.0, 1e-12);
  const ExpectationResult xxxx = runTrajectoryExpectation(
      "chp", c, model, PauliObservable::parseString("1 X0 X1 X2 X3"),
      options);
  EXPECT_NEAR(xxxx.mean, f4, 1e-12);
  // The identity term is a constant: untouched by readout error.
  const ExpectationResult constant = runTrajectoryExpectation(
      "exact", c, model, PauliObservable::parseString("2.5\n"), options);
  EXPECT_NEAR(constant.mean, 2.5, 1e-12);
}

TEST(TrajectoryExpectation, BitFlipChannelClosedForm) {
  // One-qubit circuit X(0) with gate1 bitflip(p): a trajectory flips the
  // output with probability p, so ⟨Z0⟩ averages to −(1−2p). Monte-Carlo
  // estimate with a fixed seed: allow 5 standard errors.
  QuantumCircuit c(1);
  c.x(0);
  const double p = 0.2;
  NoiseModel model;
  model.addAfterGate1(PauliChannel::bitFlip(p));
  TrajectoryOptions options;
  options.trajectories = 4000;
  options.seed = 77;
  options.threads = 0;  // auto: determinism is thread-count independent
  const ExpectationResult result = runTrajectoryExpectation(
      "chp", c, model, PauliObservable::parseString("1 Z0"), options);
  const double expected = -(1 - 2 * p);
  EXPECT_NEAR(result.mean, expected, 5 * result.standardError + 1e-12);
  // Per-trajectory values are ±1, so the sample stddev is ≈ 2√(p(1−p)).
  EXPECT_NEAR(result.stddev, 2 * std::sqrt(p * (1 - p)), 0.05);
}

TEST(TrajectoryExpectation, DepolarizedGhzParityShrinks) {
  // Depolarizing noise must shrink |⟨X⊗4⟩| strictly below 1 but keep it
  // positive at these rates; the exact and chp engines agree bit-for-bit on
  // the fast path because per-trajectory values are exact ±⟨P⟩.
  const QuantumCircuit c = ghz(4);
  const NoiseModel model = depolarizingModel();
  const PauliObservable obs = PauliObservable::parseString("1 X0 X1 X2 X3");
  TrajectoryOptions options;
  options.trajectories = 1500;
  options.seed = 13;
  options.threads = 2;
  const ExpectationResult exact =
      runTrajectoryExpectation("exact", c, model, obs, options);
  const ExpectationResult chp =
      runTrajectoryExpectation("chp", c, model, obs, options);
  EXPECT_EQ(exact.mean, chp.mean);
  EXPECT_GT(exact.mean, 0.3);
  EXPECT_LT(exact.mean, 0.99);
}

TEST(TrajectoryExpectation, ZeroTrajectoriesIsEmpty) {
  TrajectoryOptions options;
  options.trajectories = 0;
  const ExpectationResult result = runTrajectoryExpectation(
      "exact", ghz(2), NoiseModel(), PauliObservable::parseString("1 Z0"),
      options);
  EXPECT_EQ(result.trajectories, 0u);
  EXPECT_EQ(result.mean, 0.0);
}

TEST(TrajectoryExpectation, ErrorsMirrorTheHistogramRunner) {
  const PauliObservable obs = PauliObservable::parseString("1 Z0");
  // chp cannot run T gates.
  QuantumCircuit nonClifford(2);
  nonClifford.t(0);
  EXPECT_THROW(runTrajectoryExpectation("chp", nonClifford, NoiseModel(), obs),
               NoiseError);
  // Unknown engine.
  EXPECT_THROW(
      runTrajectoryExpectation("no-such-engine", ghz(2), NoiseModel(), obs),
      UnknownEngineError);
  // Observable wider than the circuit.
  EXPECT_THROW(
      runTrajectoryExpectation("exact", ghz(2), NoiseModel(),
                               PauliObservable::parseString("1 Z5")),
      ObservableSpecError);
  // Noise-model filter wider than the circuit.
  NoiseModel narrow;
  narrow.addAfterGate1(PauliChannel::bitFlip(0.1), {7});
  EXPECT_THROW(runTrajectoryExpectation("exact", ghz(2), narrow, obs),
               NoiseError);
}

TEST(TrajectoryExpectation, FacadeOverloadMatchesNameOverload) {
  const QuantumCircuit c = ghz(3);
  const NoiseModel model = depolarizingModel();
  const PauliObservable obs = PauliObservable::parseString("1 Z0 Z2");
  TrajectoryOptions options;
  options.trajectories = 64;
  options.seed = 9;
  const std::unique_ptr<Engine> prototype = makeEngine("qmdd", 3);
  const ExpectationResult byName =
      runTrajectoryExpectation("qmdd", c, model, obs, options);
  const ExpectationResult byFacade =
      runTrajectoryExpectation(*prototype, c, model, obs, options);
  EXPECT_EQ(byName.mean, byFacade.mean);
  EXPECT_EQ(byName.stddev, byFacade.stddev);
}

}  // namespace
}  // namespace sliq::noise
