// Pauli channels: closed-form Kraus probabilities, parameter validation,
// and sampling statistics/determinism.
#include "noise/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sliq::noise {
namespace {

double termProbability(const PauliChannel& channel, Pauli p0,
                       Pauli p1 = Pauli::kI) {
  for (const PauliTerm& t : channel.terms()) {
    if (t.paulis[0] == p0 && t.paulis[1] == p1) return t.probability;
  }
  ADD_FAILURE() << "term " << pauliChar(p0) << pauliChar(p1) << " not found";
  return -1;
}

double totalProbability(const PauliChannel& channel) {
  double total = 0;
  for (const PauliTerm& t : channel.terms()) total += t.probability;
  return total;
}

TEST(Channel, BitFlipClosedForm) {
  const PauliChannel c = PauliChannel::bitFlip(0.125);
  EXPECT_EQ(c.arity(), 1u);
  ASSERT_EQ(c.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kI), 0.875);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kX), 0.125);
}

TEST(Channel, PhaseFlipClosedForm) {
  const PauliChannel c = PauliChannel::phaseFlip(0.25);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kI), 0.75);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kZ), 0.25);
}

TEST(Channel, Depolarizing1ClosedForm) {
  const PauliChannel c = PauliChannel::depolarizing1(0.3);
  ASSERT_EQ(c.terms().size(), 4u);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kI), 0.7);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kX), 0.1);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kY), 0.1);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kZ), 0.1);
}

TEST(Channel, Depolarizing2ClosedForm) {
  const PauliChannel c = PauliChannel::depolarizing2(0.15);
  EXPECT_EQ(c.arity(), 2u);
  ASSERT_EQ(c.terms().size(), 16u);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kI, Pauli::kI), 0.85);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kX, Pauli::kZ), 0.01);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kI, Pauli::kY), 0.01);
  EXPECT_NEAR(totalProbability(c), 1.0, 1e-15);
}

TEST(Channel, AmplitudeDampingTwirlClosedForm) {
  // The chi-matrix diagonal of amplitude damping: p_X = p_Y = γ/4,
  // p_Z = (1−√(1−γ))²/4, p_I = (1+√(1−γ))²/4.
  const double gamma = 0.36;
  const double root = std::sqrt(1.0 - gamma);  // = 0.8
  const PauliChannel c = PauliChannel::amplitudeDampingTwirl(gamma);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kX), gamma / 4);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kY), gamma / 4);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kZ),
                   (1 - root) * (1 - root) / 4);
  EXPECT_DOUBLE_EQ(termProbability(c, Pauli::kI),
                   (1 + root) * (1 + root) / 4);
  EXPECT_NEAR(totalProbability(c), 1.0, 1e-15);
}

TEST(Channel, AmplitudeDampingTwirlLimits) {
  EXPECT_DOUBLE_EQ(PauliChannel::amplitudeDampingTwirl(0.0)
                       .identityProbability(),
                   1.0);
  // γ = 1: fully mixed over {I, X, Y, Z}.
  const PauliChannel full = PauliChannel::amplitudeDampingTwirl(1.0);
  for (const PauliTerm& t : full.terms()) {
    EXPECT_DOUBLE_EQ(t.probability, 0.25);
  }
}

TEST(Channel, ProbabilitiesSumToOneAcrossParameters) {
  for (const double p : {0.0, 1e-6, 0.01, 0.3, 0.999, 1.0}) {
    EXPECT_NEAR(totalProbability(PauliChannel::bitFlip(p)), 1.0, 1e-15);
    EXPECT_NEAR(totalProbability(PauliChannel::phaseFlip(p)), 1.0, 1e-15);
    EXPECT_NEAR(totalProbability(PauliChannel::depolarizing1(p)), 1.0, 1e-15);
    EXPECT_NEAR(totalProbability(PauliChannel::depolarizing2(p)), 1.0, 1e-15);
    EXPECT_NEAR(totalProbability(PauliChannel::amplitudeDampingTwirl(p)), 1.0,
                1e-15);
  }
}

TEST(Channel, InvalidParametersThrow) {
  EXPECT_THROW(PauliChannel::bitFlip(-0.1), NoiseError);
  EXPECT_THROW(PauliChannel::bitFlip(1.1), NoiseError);
  EXPECT_THROW(PauliChannel::depolarizing2(2.0), NoiseError);
  EXPECT_THROW(PauliChannel::amplitudeDampingTwirl(-1e-9), NoiseError);
  EXPECT_THROW(PauliChannel::amplitudeDampingTwirl(
                   std::nan("")),
               NoiseError);
}

TEST(Channel, SampleFrequenciesMatchProbabilities) {
  const PauliChannel c = PauliChannel::depolarizing1(0.4);
  Rng rng(2024);
  const unsigned kDraws = 40000;
  std::vector<unsigned> counts(c.terms().size(), 0);
  for (unsigned i = 0; i < kDraws; ++i) ++counts[c.sample(rng)];
  double chiSq = 0;
  for (std::size_t t = 0; t < counts.size(); ++t) {
    const double expected = kDraws * c.terms()[t].probability;
    chiSq += (counts[t] - expected) * (counts[t] - expected) / expected;
  }
  // chi²(3) 99.9th percentile is 16.27; the fixed seed makes this exact.
  EXPECT_LT(chiSq, 16.27);
}

TEST(Channel, SampleConsumesExactlyOneDeviate) {
  // The trajectory runner's deviate accounting (identical consumption on
  // both execution paths) depends on this.
  const PauliChannel c = PauliChannel::depolarizing2(0.2);
  Rng sampled(77), reference(77);
  for (int i = 0; i < 100; ++i) {
    (void)c.sample(sampled);
    (void)reference.uniform();
  }
  EXPECT_EQ(sampled.next(), reference.next());
}

TEST(Channel, ZeroProbabilityChannelAlwaysIdentity) {
  const PauliChannel c = PauliChannel::depolarizing1(0.0);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(c.sample(rng), 0u);
}

}  // namespace
}  // namespace sliq::noise
