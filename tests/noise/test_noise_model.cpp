// NoiseModel: spec parsing (grammar, diagnostics), attachment semantics and
// validation.
#include "noise/noise_model.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sliq::noise {
namespace {

TEST(NoiseSpec, ParsesFullSpec) {
  const NoiseModel model = NoiseModel::parseString(R"(
# a full model
gate1 depolarizing 0.01
gate2 depolarizing 0.02   # two-qubit variant under gate2
idle damping 0.002
measure 0.015
)");
  ASSERT_EQ(model.afterGate1().size(), 1u);
  EXPECT_EQ(model.afterGate1()[0].channel.name(), "depolarizing");
  EXPECT_EQ(model.afterGate1()[0].channel.arity(), 1u);
  ASSERT_EQ(model.afterGate2().size(), 1u);
  EXPECT_EQ(model.afterGate2()[0].channel.arity(), 2u);
  ASSERT_EQ(model.idle().size(), 1u);
  EXPECT_EQ(model.idle()[0].channel.name(), "damping");
  EXPECT_DOUBLE_EQ(model.readoutFlip(), 0.015);
  EXPECT_FALSE(model.empty());
}

TEST(NoiseSpec, EmptyAndCommentOnlySpecsAreEmptyModels) {
  EXPECT_TRUE(NoiseModel::parseString("").empty());
  EXPECT_TRUE(NoiseModel::parseString("# nothing\n\n   \n# here\n").empty());
  EXPECT_EQ(NoiseModel().summary(), "(no noise)");
}

TEST(NoiseSpec, QubitFiltersParseSortedAndDeduplicated) {
  const NoiseModel model =
      NoiseModel::parseString("gate1 bitflip 0.1 on 3 1 3 2\n");
  ASSERT_EQ(model.afterGate1().size(), 1u);
  const AttachedChannel& rule = model.afterGate1()[0];
  EXPECT_EQ(rule.qubits, (std::vector<unsigned>{1, 2, 3}));
  EXPECT_TRUE(rule.appliesTo(2));
  EXPECT_FALSE(rule.appliesTo(0));
  EXPECT_FALSE(rule.appliesTo(4));
}

TEST(NoiseSpec, EmptyFilterAppliesEverywhere) {
  const NoiseModel model = NoiseModel::parseString("idle phaseflip 0.2\n");
  EXPECT_TRUE(model.idle()[0].appliesTo(0));
  EXPECT_TRUE(model.idle()[0].appliesTo(1000));
}

TEST(NoiseSpec, MultipleRulesPerEventStack) {
  const NoiseModel model = NoiseModel::parseString(
      "gate1 bitflip 0.1\ngate1 phaseflip 0.2 on 0\n");
  ASSERT_EQ(model.afterGate1().size(), 2u);
  EXPECT_EQ(model.afterGate1()[0].channel.name(), "bitflip");
  EXPECT_EQ(model.afterGate1()[1].channel.name(), "phaseflip");
}

TEST(NoiseSpec, DiagnosticsNameOriginAndLine) {
  try {
    NoiseModel::parseString("gate1 depolarizing 0.01\nbogus 1\n");
    FAIL() << "expected NoiseSpecError";
  } catch (const NoiseSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("<spec>:2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(NoiseSpec, RejectsMalformedLines) {
  EXPECT_THROW(NoiseModel::parseString("gate1\n"), NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("gate1 bitflip\n"), NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("gate1 bitflip abc\n"),
               NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("gate1 bitflip 1.5\n"),
               NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("gate1 warp 0.1\n"), NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("gate1 bitflip 0.1 qubits 1\n"),
               NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("gate1 bitflip 0.1 on\n"),
               NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("gate1 bitflip 0.1 on -2\n"),
               NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("measure\n"), NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("measure 0.1 0.2\n"), NoiseSpecError);
  EXPECT_THROW(NoiseModel::parseString("measure 0.1\nmeasure 0.1\n"),
               NoiseSpecError);
}

TEST(NoiseSpec, MissingFileThrows) {
  EXPECT_THROW(NoiseModel::parseFile("/nonexistent/noise.txt"),
               NoiseSpecError);
}

TEST(NoiseModelApi, RejectsWrongArityAttachments) {
  NoiseModel model;
  EXPECT_THROW(model.addAfterGate1(PauliChannel::depolarizing2(0.1)),
               NoiseError);
  EXPECT_THROW(model.addIdle(PauliChannel::depolarizing2(0.1)), NoiseError);
  // gate2 accepts both arities.
  model.addAfterGate2(PauliChannel::depolarizing2(0.1));
  model.addAfterGate2(PauliChannel::bitFlip(0.1));
  EXPECT_EQ(model.afterGate2().size(), 2u);
}

TEST(NoiseModelApi, ValidateForWidthChecksFilters) {
  NoiseModel model;
  model.addAfterGate1(PauliChannel::bitFlip(0.1), {1, 4});
  model.validateForWidth(5);
  EXPECT_THROW(model.validateForWidth(4), NoiseError);
}

TEST(NoiseModelApi, SummaryListsRules) {
  NoiseModel model;
  model.addAfterGate1(PauliChannel::depolarizing1(0.01), {0, 2});
  model.setReadoutFlip(0.05);
  const std::string s = model.summary();
  EXPECT_NE(s.find("gate1: depolarizing(p=0.01) on 0 2"), std::string::npos)
      << s;
  EXPECT_NE(s.find("measure: 0.05"), std::string::npos) << s;
}

}  // namespace
}  // namespace sliq::noise
