// Trajectory runner: Pauli-frame conjugation correctness, noisy marginals
// against closed forms on every engine (both execution paths), and the
// thread-determinism contract.
#include "noise/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_registry.hpp"
#include "statevector/statevector.hpp"

namespace sliq::noise {
namespace {

// ---- PauliFrame conjugation ------------------------------------------------

Gate pauliGate(Pauli p, unsigned q) {
  switch (p) {
    case Pauli::kX: return Gate{GateKind::kX, {q}, {}};
    case Pauli::kY: return Gate{GateKind::kY, {q}, {}};
    case Pauli::kZ: return Gate{GateKind::kZ, {q}, {}};
    case Pauli::kI: break;
  }
  return Gate{GateKind::kX, {q}, {}};  // unreachable
}

/// Checks U·P|ψ⟩ and P'·U|ψ⟩ (P' the propagated frame) give identical
/// output distributions on an entangled 2-qubit state — the exact property
/// the fast path uses frames for (phases are allowed to differ).
void expectConjugationCorrect(const Gate& gate) {
  for (unsigned q = 0; q < 2; ++q) {
    for (const Pauli p : {Pauli::kX, Pauli::kY, Pauli::kZ}) {
      SCOPED_TRACE(std::string("pauli ") + pauliChar(p) + " on q" +
                   std::to_string(q) + " through " + gateName(gate));
      const QuantumCircuit prep =
          QuantumCircuit(2).h(0).t(0).cx(0, 1).s(1).h(1);

      StatevectorSimulator before(2);  // U · P |ψ⟩
      before.run(prep);
      before.applyGate(pauliGate(p, q));
      before.applyGate(gate);

      PauliFrame frame(2);
      frame.multiply(q, p);
      frame.propagateThrough(gate);

      StatevectorSimulator after(2);  // P' · U |ψ⟩
      after.run(prep);
      after.applyGate(gate);
      for (unsigned fq = 0; fq < 2; ++fq) {
        if (frame.z(fq)) after.applyGate(pauliGate(Pauli::kZ, fq));
        if (frame.x(fq)) after.applyGate(pauliGate(Pauli::kX, fq));
      }

      for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(std::norm(before.amplitude(i)),
                    std::norm(after.amplitude(i)), 1e-12)
            << "basis state " << i;
      }
    }
  }
}

TEST(PauliFrame, ConjugationMatchesDenseSimulation) {
  expectConjugationCorrect(Gate{GateKind::kH, {0}, {}});
  expectConjugationCorrect(Gate{GateKind::kH, {1}, {}});
  expectConjugationCorrect(Gate{GateKind::kS, {0}, {}});
  expectConjugationCorrect(Gate{GateKind::kSdg, {1}, {}});
  expectConjugationCorrect(Gate{GateKind::kX, {0}, {}});
  expectConjugationCorrect(Gate{GateKind::kY, {1}, {}});
  expectConjugationCorrect(Gate{GateKind::kZ, {0}, {}});
  expectConjugationCorrect(Gate{GateKind::kRx90, {0}, {}});
  expectConjugationCorrect(Gate{GateKind::kRy90, {1}, {}});
  expectConjugationCorrect(Gate{GateKind::kCnot, {1}, {0}});
  expectConjugationCorrect(Gate{GateKind::kCnot, {0}, {1}});
  expectConjugationCorrect(Gate{GateKind::kCz, {1}, {0}});
  expectConjugationCorrect(Gate{GateKind::kSwap, {0, 1}, {}});
}

TEST(PauliFrame, PauliMultiplicationComposesByXor) {
  PauliFrame frame(1);
  EXPECT_TRUE(frame.isIdentity());
  frame.multiply(0, Pauli::kX);
  frame.multiply(0, Pauli::kZ);
  EXPECT_TRUE(frame.x(0));
  EXPECT_TRUE(frame.z(0));  // X·Z ≃ Y up to phase
  frame.multiply(0, Pauli::kY);
  EXPECT_TRUE(frame.isIdentity());
}

TEST(PauliFrame, NonCliffordGateThrows) {
  PauliFrame frame(2);
  EXPECT_THROW(frame.propagateThrough(Gate{GateKind::kT, {0}, {}}),
               NoiseError);
  EXPECT_THROW(frame.propagateThrough(Gate{GateKind::kCnot, {2}, {0, 1}}),
               NoiseError);
}

// ---- realization sampling --------------------------------------------------

TEST(Realization, InsertsOnlyPaulisAndIsSeedDeterministic) {
  const QuantumCircuit c = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2);
  NoiseModel model;
  model.addAfterGate1(PauliChannel::depolarizing1(0.5));
  model.addAfterGate2(PauliChannel::depolarizing2(0.5));

  Rng rngA(9), rngB(9);
  const QuantumCircuit a = sampleRealization(c, model, rngA);
  const QuantumCircuit b = sampleRealization(c, model, rngB);
  ASSERT_EQ(a.gateCount(), b.gateCount());
  for (std::size_t i = 0; i < a.gateCount(); ++i) {
    EXPECT_EQ(a.gate(i).kind, b.gate(i).kind);
    EXPECT_EQ(a.gate(i).targets, b.gate(i).targets);
  }
  // Inserted gates beyond the base ones must be bare Paulis.
  EXPECT_GE(a.gateCount(), c.gateCount());
  std::size_t base = 0;
  for (std::size_t i = 0; i < a.gateCount(); ++i) {
    const Gate& g = a.gate(i);
    if (base < c.gateCount() && g.kind == c.gate(base).kind &&
        g.targets == c.gate(base).targets &&
        g.controls == c.gate(base).controls) {
      ++base;
      continue;
    }
    EXPECT_TRUE(g.kind == GateKind::kX || g.kind == GateKind::kY ||
                g.kind == GateKind::kZ)
        << "inserted gate " << gateName(g);
    EXPECT_TRUE(g.controls.empty());
  }
  EXPECT_EQ(base, c.gateCount()) << "base circuit not preserved in order";
}

TEST(Realization, NoNoiseReturnsBaseCircuit) {
  const QuantumCircuit c = QuantumCircuit(2).h(0).cx(0, 1);
  Rng rng(1);
  EXPECT_EQ(sampleRealization(c, NoiseModel(), rng).gateCount(),
            c.gateCount());
}

// ---- noisy marginals vs closed form ---------------------------------------

/// Pr[qubit = 1] from a counts histogram (bitstring keys, qubit n-1
/// leftmost).
double marginal(const TrajectoryResult& result, unsigned numQubits,
                unsigned qubit) {
  std::uint64_t ones = 0, total = 0;
  for (const auto& [bits, count] : result.counts) {
    EXPECT_EQ(bits.size(), numQubits);
    total += count;
    if (bits[numQubits - 1 - qubit] == '1') ones += count;
  }
  EXPECT_EQ(total, result.trajectories);
  return total > 0 ? static_cast<double>(ones) / total : 0.0;
}

/// 4σ binomial tolerance — comfortably beyond the chi-squared 99.9th
/// percentile for one marginal, and the fixed seed makes runs exact.
double tol4Sigma(double p, unsigned n) {
  return 4.0 * std::sqrt(std::max(p * (1 - p), 0.01) / n) + 1e-12;
}

struct PathSpec {
  const char* engine;
  bool forceGeneric;
  unsigned trajectories;
};

/// Engines × paths matrix for the closed-form marginal tests. The generic
/// exact path rebuilds a BDD engine per trajectory, so it gets a smaller
/// (still 4σ-valid) sample.
const PathSpec kPaths[] = {
    {"chp", false, 4000},  {"chp", true, 2000},
    {"exact", false, 4000}, {"exact", true, 150},
    {"qmdd", false, 4000}, {"qmdd", true, 1000},
    {"statevector", false, 4000}, {"statevector", true, 1000},
};

void expectMarginals(const QuantumCircuit& c, const NoiseModel& model,
                     const std::vector<double>& expected) {
  for (const PathSpec& spec : kPaths) {
    SCOPED_TRACE(std::string(spec.engine) +
                 (spec.forceGeneric ? " (generic)" : " (fast path)"));
    TrajectoryOptions options;
    options.trajectories = spec.trajectories;
    options.threads = 2;
    options.seed = 20240515;
    options.forceGeneric = spec.forceGeneric;
    const TrajectoryResult result =
        runTrajectories(spec.engine, c, model, options);
    EXPECT_EQ(result.usedPauliFrameFastPath, !spec.forceGeneric);
    for (unsigned q = 0; q < c.numQubits(); ++q) {
      EXPECT_NEAR(marginal(result, c.numQubits(), q), expected[q],
                  tol4Sigma(expected[q], spec.trajectories))
          << "qubit " << q;
    }
  }
}

TEST(TrajectoryMarginals, BitFlipClosedForm) {
  // |0⟩ → X → bitflip(p): Pr[1] = 1 − p.
  const double p = 0.2;
  NoiseModel model;
  model.addAfterGate1(PauliChannel::bitFlip(p));
  expectMarginals(QuantumCircuit(1).x(0), model, {1 - p});
}

TEST(TrajectoryMarginals, PhaseFlipClosedForm) {
  // H, phaseflip(p) on |+⟩, H: a Z between the Hadamards maps to X, so
  // Pr[1] = p (the flip after the second H is Z-basis invisible).
  const double p = 0.3;
  NoiseModel model;
  model.addAfterGate1(PauliChannel::phaseFlip(p));
  expectMarginals(QuantumCircuit(1).h(0).h(0), model, {p});
}

TEST(TrajectoryMarginals, DepolarizingClosedForm) {
  // |1⟩ under depolarizing(p): X and Y flip, Z and I do not:
  // Pr[1] = 1 − 2p/3.
  const double p = 0.3;
  NoiseModel model;
  model.addAfterGate1(PauliChannel::depolarizing1(p));
  expectMarginals(QuantumCircuit(1).x(0), model, {1 - 2 * p / 3});
}

TEST(TrajectoryMarginals, TwoQubitDepolarizingClosedForm) {
  // CX on |00⟩ is the identity; two-qubit depolarizing(p) flips qubit q iff
  // its Pauli is X or Y: 8 of the 15 equally-likely non-identity pairs, so
  // Pr[q = 1] = 8p/15 per qubit.
  const double p = 0.45;
  NoiseModel model;
  model.addAfterGate2(PauliChannel::depolarizing2(p));
  expectMarginals(QuantumCircuit(2).cx(0, 1), model,
                  {8 * p / 15, 8 * p / 15});
}

TEST(TrajectoryMarginals, IdleNoiseHitsOnlyIdleQubits) {
  // X on qubit 0; qubit 1 idles through that one gate under bitflip(p).
  const double p = 0.25;
  NoiseModel model;
  model.addIdle(PauliChannel::bitFlip(p));
  expectMarginals(QuantumCircuit(2).x(0), model, {1.0, p});
}

TEST(TrajectoryMarginals, ReadoutErrorClosedForm) {
  // Noiseless |1⟩ with readout flip p: Pr[read 1] = 1 − p.
  const double p = 0.15;
  NoiseModel model;
  model.setReadoutFlip(p);
  expectMarginals(QuantumCircuit(1).x(0), model, {1 - p});
}

TEST(TrajectoryMarginals, AmplitudeDampingTwirlClosedForm) {
  // |1⟩ under the damping twirl flips with p_X + p_Y = γ/2, so
  // Pr[1] = 1 − γ/2. (The exact non-twirled channel would give 1 − γ:
  // the twirl's directional decay becomes symmetric — the documented
  // approximation error, DESIGN.md §6.)
  const double gamma = 0.4;
  NoiseModel model;
  model.addAfterGate1(PauliChannel::amplitudeDampingTwirl(gamma));
  expectMarginals(QuantumCircuit(1).x(0), model, {1 - gamma / 2});
}

TEST(TrajectoryMarginals, QubitFilterRestrictsRule) {
  // bitflip(p) only on qubit 1: qubit 0's X stays clean.
  const double p = 0.5;
  NoiseModel model;
  model.addAfterGate1(PauliChannel::bitFlip(p), {1});
  expectMarginals(QuantumCircuit(2).x(0).x(1), model, {1.0, 1 - p});
}

// ---- thread determinism ----------------------------------------------------

QuantumCircuit cliffordEntangled() {
  QuantumCircuit c(5, "clifford-entangled");
  c.h(0).cx(0, 1).s(1).cx(1, 2).h(3).cx(3, 4).cz(0, 4).x(2);
  return c;
}

NoiseModel basicModel() {
  NoiseModel model;
  model.addAfterGate1(PauliChannel::depolarizing1(0.05));
  model.addAfterGate2(PauliChannel::depolarizing2(0.08));
  model.addIdle(PauliChannel::amplitudeDampingTwirl(0.01));
  model.setReadoutFlip(0.02);
  return model;
}

TEST(TrajectoryDeterminism, CountsAreThreadCountInvariantFastPath) {
  const QuantumCircuit c = cliffordEntangled();
  const NoiseModel model = basicModel();
  TrajectoryOptions options;
  options.trajectories = 1500;
  options.seed = 99;
  options.threads = 1;
  const TrajectoryResult one = runTrajectories("chp", c, model, options);
  ASSERT_TRUE(one.usedPauliFrameFastPath);
  for (const unsigned threads : {4u, 0u}) {  // 0 = auto-detect
    options.threads = threads;
    const TrajectoryResult many = runTrajectories("chp", c, model, options);
    EXPECT_EQ(one.counts, many.counts) << threads << " threads";
  }
}

TEST(TrajectoryDeterminism, CountsAreThreadCountInvariantGenericPath) {
  // Non-Clifford circuit: the generic path is the only choice.
  const QuantumCircuit c = QuantumCircuit(3).h(0).t(0).cx(0, 1).h(2).t(2);
  const NoiseModel model = basicModel();
  TrajectoryOptions options;
  options.trajectories = 300;
  options.seed = 4242;
  options.threads = 1;
  const TrajectoryResult one = runTrajectories("qmdd", c, model, options);
  ASSERT_FALSE(one.usedPauliFrameFastPath);
  options.threads = 4;
  const TrajectoryResult four = runTrajectories("qmdd", c, model, options);
  EXPECT_EQ(one.counts, four.counts);
}

TEST(TrajectoryDeterminism, ShardedRunsMergeToMonolithicBitForBit) {
  // The --traj-offset / --merge-counts contract: trajectory i of a shard
  // with firstTrajectory=F consumes substream split(F + i), so shards
  // covering disjoint offset ranges draw exactly the monolithic run's
  // deviate slices and their histograms sum to its counts — on both
  // execution paths, for any thread count.
  struct PathCase {
    const char* engine;
    QuantumCircuit circuit;
    bool expectFastPath;
  };
  const PathCase cases[] = {
      {"chp", cliffordEntangled(), true},
      {"statevector", QuantumCircuit(3).h(0).t(0).cx(0, 1).h(2).t(2), false},
  };
  const NoiseModel model = basicModel();
  for (const PathCase& pc : cases) {
    SCOPED_TRACE(pc.engine);
    TrajectoryOptions options;
    options.trajectories = 200;
    options.seed = 777;
    options.threads = 2;
    const TrajectoryResult mono =
        runTrajectories(pc.engine, pc.circuit, model, options);
    ASSERT_EQ(mono.usedPauliFrameFastPath, pc.expectFastPath);

    std::map<std::string, std::uint64_t> merged;
    for (const auto& [first, count] :
         {std::pair<unsigned, unsigned>{0, 120},
          std::pair<unsigned, unsigned>{120, 50},
          std::pair<unsigned, unsigned>{170, 30}}) {
      options.firstTrajectory = first;
      options.trajectories = count;
      options.threads = first == 120 ? 1 : 3;  // thread count must not matter
      const TrajectoryResult shard =
          runTrajectories(pc.engine, pc.circuit, model, options);
      for (const auto& [bits, n] : shard.counts) merged[bits] += n;
    }
    EXPECT_EQ(merged, mono.counts);
  }
}

TEST(TrajectoryDeterminism, FastAndGenericPathsAgreeInDistribution) {
  // Same model, same circuit: the two execution paths sample the same
  // distribution. Total-variation distance between two independent
  // empirical distributions of 3000 draws over ≤32 states concentrates
  // well under 0.1.
  const QuantumCircuit c = cliffordEntangled();
  const NoiseModel model = basicModel();
  TrajectoryOptions options;
  options.trajectories = 3000;
  options.seed = 7;
  options.threads = 2;
  const TrajectoryResult fast = runTrajectories("chp", c, model, options);
  options.forceGeneric = true;
  options.seed = 8;  // independent sample
  const TrajectoryResult generic = runTrajectories("chp", c, model, options);
  ASSERT_TRUE(fast.usedPauliFrameFastPath);
  ASSERT_FALSE(generic.usedPauliFrameFastPath);

  std::map<std::string, double> diff;
  for (const auto& [bits, count] : fast.counts)
    diff[bits] += static_cast<double>(count) / fast.trajectories;
  for (const auto& [bits, count] : generic.counts)
    diff[bits] -= static_cast<double>(count) / generic.trajectories;
  double tv = 0;
  for (const auto& [bits, d] : diff) tv += std::abs(d);
  EXPECT_LT(tv / 2, 0.1);
}

TEST(TrajectoryDeterminism, DeterministicNoisePathsAgreeExactly) {
  // bitflip(1) turns every X into identity deterministically; with fully
  // deterministic outcomes both paths must produce identical counts.
  NoiseModel model;
  model.addAfterGate1(PauliChannel::bitFlip(1.0));
  const QuantumCircuit c = QuantumCircuit(2).x(0).x(1);
  TrajectoryOptions options;
  options.trajectories = 64;
  options.seed = 3;
  const TrajectoryResult fast = runTrajectories("chp", c, model, options);
  options.forceGeneric = true;
  const TrajectoryResult generic = runTrajectories("chp", c, model, options);
  ASSERT_EQ(fast.counts.size(), 1u);
  EXPECT_EQ(fast.counts.at("00"), 64u);
  EXPECT_EQ(fast.counts, generic.counts);
}

// ---- facade, edge cases, errors -------------------------------------------

TEST(Trajectory, EngineFacadeOverloadMatchesNameOverload) {
  const QuantumCircuit c = cliffordEntangled();
  const NoiseModel model = basicModel();
  TrajectoryOptions options;
  options.trajectories = 200;
  options.seed = 11;
  const std::unique_ptr<Engine> engine = makeEngine("chp", c.numQubits());
  const TrajectoryResult viaFacade =
      runTrajectories(*engine, c, model, options);
  const TrajectoryResult viaName = runTrajectories("chp", c, model, options);
  EXPECT_EQ(viaFacade.counts, viaName.counts);
}

TEST(Trajectory, ZeroTrajectoriesIsEmpty) {
  TrajectoryOptions options;
  options.trajectories = 0;
  const TrajectoryResult result = runTrajectories(
      "chp", QuantumCircuit(2).h(0), NoiseModel(), options);
  EXPECT_TRUE(result.counts.empty());
  EXPECT_EQ(result.threadsUsed, 0u);
}

TEST(Trajectory, MoreThreadsThanTrajectoriesIsClamped) {
  TrajectoryOptions options;
  options.trajectories = 3;
  options.threads = 16;
  const TrajectoryResult result = runTrajectories(
      "chp", QuantumCircuit(1).h(0), NoiseModel(), options);
  EXPECT_EQ(result.threadsUsed, 3u);
  std::uint64_t total = 0;
  for (const auto& [bits, count] : result.counts) total += count;
  EXPECT_EQ(total, 3u);
}

TEST(Trajectory, UnsupportedEngineCircuitThrows) {
  const QuantumCircuit nonClifford = QuantumCircuit(2).h(0).t(0);
  EXPECT_THROW(runTrajectories("chp", nonClifford, NoiseModel(), {}),
               NoiseError);
}

TEST(Trajectory, OutOfRangeQubitFilterThrows) {
  NoiseModel model;
  model.addAfterGate1(PauliChannel::bitFlip(0.1), {5});
  EXPECT_THROW(runTrajectories("qmdd", QuantumCircuit(2).x(0), model, {}),
               NoiseError);
}

TEST(Trajectory, UnknownEngineThrows) {
  EXPECT_THROW(
      runTrajectories("warpdrive", QuantumCircuit(1).x(0), NoiseModel(), {}),
      UnknownEngineError);
}

}  // namespace
}  // namespace sliq::noise
