// Noise-trajectory execution of DYNAMIC circuits: per-trajectory replay of
// the classical control flow under the PR 3 substream contract (thread-count
// invariance, zero-noise equivalence with plain runDynamic), the strict
// Pauli-frame refusal, and the 3-qubit bit-flip-code correction cycle whose
// logical error rate has an exact closed form.
#include "noise/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>

#include "core/engine_registry.hpp"
#include "support/bits.hpp"

namespace sliq::noise {
namespace {

/// Teleportation with a Clifford payload (|+i⟩) — every engine runs it.
QuantumCircuit teleportCircuit() {
  QuantumCircuit c(3, "teleport");
  c.declareClassicalRegister(2);
  c.h(0).s(0);
  c.h(1).cx(1, 2);
  c.cx(0, 1).h(0);
  c.measure(0, 0).measure(1, 1);
  c.onlyIf(2, Gate{GateKind::kX, {2}, {}});
  c.onlyIf(3, Gate{GateKind::kX, {2}, {}});
  c.onlyIf(1, Gate{GateKind::kZ, {2}, {}});
  c.onlyIf(3, Gate{GateKind::kZ, {2}, {}});
  return c;
}

NoiseModel basicModel() {
  NoiseModel model;
  model.addAfterGate1(PauliChannel::depolarizing1(0.02));
  model.addAfterGate2(PauliChannel::depolarizing2(0.03));
  model.addIdle(PauliChannel::bitFlip(0.004));
  model.setReadoutFlip(0.01);
  return model;
}

TEST(TrajectoryDynamic, ThreadCountNeverChangesDynamicCounts) {
  const QuantumCircuit c = teleportCircuit();
  const NoiseModel model = basicModel();
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    TrajectoryOptions options;
    options.trajectories = 150;
    options.seed = 11;
    options.threads = 1;
    const TrajectoryResult one = runTrajectories(name, c, model, options);
    EXPECT_FALSE(one.usedPauliFrameFastPath);  // dynamic: never the frame path
    for (const unsigned threads : {2u, 3u, 5u}) {
      SCOPED_TRACE(threads);
      options.threads = threads;
      const TrajectoryResult many = runTrajectories(name, c, model, options);
      EXPECT_EQ(many.counts, one.counts);
    }
  }
}

TEST(TrajectoryDynamic, ZeroNoiseTrajectoriesReplayRunDynamicExactly) {
  // With an empty model the trajectory worker must be bit-identical to
  // plain runDynamic on substream split(t) — pinning that the dynamic walk
  // lives in one place (the facade) and the noise path only instruments it.
  const QuantumCircuit c = teleportCircuit();
  const NoiseModel ideal;
  TrajectoryOptions options;
  options.trajectories = 40;
  options.seed = 23;
  options.threads = 3;
  const TrajectoryResult result =
      runTrajectories("statevector", c, ideal, options);

  std::map<std::string, std::uint64_t> expected;
  const RngState root{options.seed};
  for (unsigned t = 0; t < options.trajectories; ++t) {
    std::unique_ptr<Engine> engine = makeEngine("statevector", 3);
    Rng rng = root.split(t).rng();
    const DynamicRun run = engine->runDynamic(c, rng);
    ++expected[bitsToString(run.creg)];
  }
  EXPECT_EQ(result.counts, expected);
}

TEST(TrajectoryDynamic, PauliFramePathIsStrictlyRefusedForDynamicCircuits) {
  const QuantumCircuit dynamic = teleportCircuit();
  const NoiseModel model = basicModel();
  TrajectoryOptions options;
  options.trajectories = 10;
  options.forcePauliFrame = true;
  // Dynamic circuit: frames do not commute through classical control.
  EXPECT_THROW(runTrajectories("chp", dynamic, model, options), NoiseError);
  // Non-Clifford static circuit: frames cannot conjugate through T.
  const QuantumCircuit tCircuit = QuantumCircuit(2).h(0).t(0).cx(0, 1);
  EXPECT_THROW(runTrajectories("statevector", tCircuit, model, options),
               NoiseError);
  // Mutually-exclusive force flags.
  options.forceGeneric = true;
  const QuantumCircuit clifford = QuantumCircuit(2).h(0).cx(0, 1);
  EXPECT_THROW(runTrajectories("chp", clifford, model, options), NoiseError);
  // Sanity: forcing the frame path on a Clifford static circuit is honored.
  options.forceGeneric = false;
  const TrajectoryResult framed =
      runTrajectories("chp", clifford, model, options);
  EXPECT_TRUE(framed.usedPauliFrameFastPath);
}

TEST(TrajectoryDynamic, ExpectationAndRealizationRejectDynamicCircuits) {
  const QuantumCircuit c = teleportCircuit();
  PauliObservable obs;
  obs.addTerm(1.0, {PauliFactor{2, Pauli::kY}});
  EXPECT_THROW(runTrajectoryExpectation("statevector", c, basicModel(), obs),
               NoiseError);
  Rng rng(1);
  EXPECT_THROW(sampleRealization(c, basicModel(), rng), NoiseError);
}

TEST(TrajectoryDynamic, MidCircuitReadoutErrorFlipsTheRecordItself) {
  // readout flip 1.0 turns a deterministic measured 1 into a recorded 0,
  // and classical control must act on the *record*: the c==0 branch fires.
  QuantumCircuit c(2);
  c.declareClassicalRegister(2);
  c.x(0);
  c.measure(0, 0);
  c.onlyIf(0, Gate{GateKind::kX, {1}, {}});
  c.measure(1, 1);
  NoiseModel model;
  model.setReadoutFlip(1.0);
  TrajectoryOptions options;
  options.trajectories = 8;
  const TrajectoryResult result =
      runTrajectories("statevector", c, model, options);
  // Record: c0 = !1 = 0 → X on q1 fires → measured 1, recorded 0. The
  // whole register reads 00 every trajectory.
  ASSERT_EQ(result.counts.size(), 1u);
  EXPECT_EQ(result.counts.begin()->first, "00");
  EXPECT_EQ(result.counts.begin()->second, 8u);
}

TEST(TrajectoryDynamic, BitFlipCodeLogicalErrorRateMatchesTheClosedForm) {
  // 3-qubit repetition code protecting logical |1⟩ = |111⟩ against
  // bit-flips injected after each preparation X (gate1 bitflip p), with a
  // mid-circuit syndrome readout (two ancillas) steering conditioned X
  // corrections, then a destructive data measurement decoded by majority
  // vote. Closed form: the cycle fails iff >= 2 preparation flips occurred
  // (the correction then either targets the wrong qubit or nothing), so
  //   P_L = 3p²(1−p) + p³
  // EXACTLY — including the bitflip noise that trails each *correction* X,
  // because a single post-correction flip can never overturn a majority.
  constexpr double p = 0.15;
  QuantumCircuit c(5, "bitflip-code");
  c.declareClassicalRegister(5);
  c.x(0).x(1).x(2);                    // encode |1⟩_L (noisy preps)
  c.cx(0, 3).cx(1, 3);                 // syndrome s0 = f0 ⊕ f1
  c.cx(1, 4).cx(2, 4);                 // syndrome s1 = f1 ⊕ f2
  c.measure(3, 0).measure(4, 1);
  c.onlyIf(1, Gate{GateKind::kX, {0}, {}});  // s = (1,0) → flip on q0
  c.onlyIf(3, Gate{GateKind::kX, {1}, {}});  // s = (1,1) → flip on q1
  c.onlyIf(2, Gate{GateKind::kX, {2}, {}});  // s = (0,1) → flip on q2
  c.measure(0, 2).measure(1, 3).measure(2, 4);

  NoiseModel model;
  model.addAfterGate1(PauliChannel::bitFlip(p));

  TrajectoryOptions options;
  options.trajectories = 3000;
  options.threads = 4;
  options.seed = 2026;
  const TrajectoryResult result =
      runTrajectories("statevector", c, model, options);

  std::uint64_t logicalErrors = 0;
  std::uint64_t total = 0;
  for (const auto& [bits, count] : result.counts) {
    // bitsToString renders bit numClbits-1 leftmost: creg bit c is at
    // string index (4 - c). Majority-decode the data record (c2, c3, c4).
    ASSERT_EQ(bits.size(), 5u);
    const int ones = (bits[4 - 2] == '1') + (bits[4 - 3] == '1') +
                     (bits[4 - 4] == '1');
    if (ones <= 1) logicalErrors += count;
    total += count;
  }
  ASSERT_EQ(total, options.trajectories);

  const double expected = 3 * p * p * (1 - p) + p * p * p;
  const double observed =
      static_cast<double>(logicalErrors) / options.trajectories;
  // One-degree chi-squared against the closed form: (obs−exp)²/var < 16
  // (a 4σ gate; the fixed seed makes the draw deterministic anyway).
  const double variance =
      expected * (1 - expected) / options.trajectories;
  const double chi2 =
      (observed - expected) * (observed - expected) / variance;
  EXPECT_LT(chi2, 16.0) << "observed " << observed << " expected " << expected;
}

}  // namespace
}  // namespace sliq::noise
