// Cross-validation over every engine in the registry: the exact bit-sliced
// engine is the reference; the QMDD baseline, the dense statevector and (on
// Clifford circuits) the stabilizer tableau must agree on per-qubit
// probabilities for every workload family of the paper's evaluation.
//
// Engines are instantiated through the engine registry — the same code path
// the CLI and the bench harness use — so a newly registered engine is
// cross-validated here automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "circuit/generators.hpp"
#include "core/engine_registry.hpp"

namespace sliq {
namespace {

// Speed cap for the dense comparator in this test; its structural limit is
// higher (Engine::supports), but 2^n work per gate dominates the suite.
constexpr unsigned kDenseTestQubits = 12;

void expectAllEnginesAgree(const QuantumCircuit& c, double tol = 1e-6) {
  const unsigned n = c.numQubits();
  std::unique_ptr<Engine> reference = makeEngine("exact", n);
  reference->run(c);
  for (const std::string& name : engineNames()) {
    if (name == "exact") continue;
    std::unique_ptr<Engine> engine = makeEngine(name, n);
    if (!engine->supports(c)) continue;
    if (name == "statevector" && n > kDenseTestQubits) continue;
    engine->run(c);
    for (unsigned q = 0; q < n; ++q) {
      EXPECT_NEAR(engine->probabilityOne(q), reference->probabilityOne(q),
                  tol)
          << c.name() << " engine " << name << " q" << q;
    }
  }
}

TEST(CrossEngine, RegistryProvidesAllFourEngines) {
  const std::vector<std::string> names = engineNames();
  for (const char* expected : {"chp", "exact", "qmdd", "statevector"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(CrossEngine, RandomFamily) {
  for (std::uint64_t seed : {21ull, 22ull}) {
    expectAllEnginesAgree(randomCircuit(8, 24, seed));
  }
}

TEST(CrossEngine, EntanglementFamily) {
  expectAllEnginesAgree(entanglementCircuit(10));
  expectAllEnginesAgree(entanglementCircuit(30));
}

TEST(CrossEngine, BernsteinVaziraniFamily) {
  expectAllEnginesAgree(
      bernsteinVazirani(9, std::vector<bool>{true, false, true, true, false,
                                             false, true, false, true}));
}

TEST(CrossEngine, RevlibModifiedFamily) {
  expectAllEnginesAgree(modifyWithHadamards(revlibAdder(4)));
  expectAllEnginesAgree(
      modifyWithHadamards(revlibToffoliCascade(10, 12, 5)));
  expectAllEnginesAgree(modifyWithHadamards(revlibHwb(5)));
}

TEST(CrossEngine, SupremacyFamily) {
  expectAllEnginesAgree(supremacyGrid(3, 3, 4, 1));
  expectAllEnginesAgree(supremacyGrid(2, 5, 6, 2));
}

TEST(CrossEngine, GroverFamily) {
  expectAllEnginesAgree(groverSearch(5, 11, 2));
}

TEST(CrossEngine, MeasurementOutcomesAgreeUnderSharedRandomness) {
  const QuantumCircuit c = randomCircuit(6, 20, 30);
  std::unique_ptr<Engine> exact = makeEngine("exact", 6);
  std::unique_ptr<Engine> qm = makeEngine("qmdd", 6);
  std::unique_ptr<Engine> dense = makeEngine("statevector", 6);
  exact->run(c);
  qm->run(c);
  dense->run(c);
  // Same uniform deviates drive all engines: identical collapse cascades.
  const double deviates[6] = {0.13, 0.82, 0.47, 0.09, 0.71, 0.55};
  for (unsigned q = 0; q < 6; ++q) {
    const bool a = exact->measure(q, deviates[q]);
    const bool b = qm->measure(q, deviates[q]);
    const bool d = dense->measure(q, deviates[q]);
    EXPECT_EQ(a, b) << q;
    EXPECT_EQ(a, d) << q;
  }
}

}  // namespace
}  // namespace sliq
