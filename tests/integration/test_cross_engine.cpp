// Four-engine cross-validation: the exact bit-sliced engine, the QMDD
// baseline, the dense statevector and (on Clifford circuits) the stabilizer
// tableau must agree on per-qubit probabilities for every workload family
// of the paper's evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/generators.hpp"
#include "core/simulator.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "stabilizer/stabilizer.hpp"
#include "statevector/statevector.hpp"

namespace sliq {
namespace {

void expectAllEnginesAgree(const QuantumCircuit& c, double tol = 1e-6) {
  const unsigned n = c.numQubits();
  SliqSimulator exact(n);
  qmdd::QmddSimulator qm(n);
  exact.run(c);
  qm.run(c);
  std::unique_ptr<StatevectorSimulator> dense;
  if (n <= 12) {
    dense = std::make_unique<StatevectorSimulator>(n);
    dense->run(c);
  }
  std::unique_ptr<StabilizerSimulator> stab;
  if (StabilizerSimulator::supports(c)) {
    stab = std::make_unique<StabilizerSimulator>(n);
    stab->run(c);
  }
  for (unsigned q = 0; q < n; ++q) {
    const double p = exact.probabilityOne(q);
    EXPECT_NEAR(qm.probabilityOne(q), p, tol) << c.name() << " q" << q;
    if (dense) {
      EXPECT_NEAR(dense->probabilityOne(q), p, tol) << c.name() << " q" << q;
    }
    if (stab) {
      EXPECT_NEAR(stab->probabilityOne(q), p, tol) << c.name() << " q" << q;
    }
  }
}

TEST(CrossEngine, RandomFamily) {
  for (std::uint64_t seed : {21ull, 22ull}) {
    expectAllEnginesAgree(randomCircuit(8, 24, seed));
  }
}

TEST(CrossEngine, EntanglementFamily) {
  expectAllEnginesAgree(entanglementCircuit(10));
  expectAllEnginesAgree(entanglementCircuit(30));
}

TEST(CrossEngine, BernsteinVaziraniFamily) {
  expectAllEnginesAgree(
      bernsteinVazirani(9, std::vector<bool>{true, false, true, true, false,
                                             false, true, false, true}));
}

TEST(CrossEngine, RevlibModifiedFamily) {
  expectAllEnginesAgree(modifyWithHadamards(revlibAdder(4)));
  expectAllEnginesAgree(
      modifyWithHadamards(revlibToffoliCascade(10, 12, 5)));
  expectAllEnginesAgree(modifyWithHadamards(revlibHwb(5)));
}

TEST(CrossEngine, SupremacyFamily) {
  expectAllEnginesAgree(supremacyGrid(3, 3, 4, 1));
  expectAllEnginesAgree(supremacyGrid(2, 5, 6, 2));
}

TEST(CrossEngine, GroverFamily) {
  expectAllEnginesAgree(groverSearch(5, 11, 2));
}

TEST(CrossEngine, MeasurementOutcomesAgreeUnderSharedRandomness) {
  const QuantumCircuit c = randomCircuit(6, 20, 30);
  SliqSimulator exact(6);
  qmdd::QmddSimulator qm(6);
  StatevectorSimulator dense(6);
  exact.run(c);
  qm.run(c);
  dense.run(c);
  // Same uniform deviates drive all engines: identical collapse cascades.
  const double deviates[6] = {0.13, 0.82, 0.47, 0.09, 0.71, 0.55};
  for (unsigned q = 0; q < 6; ++q) {
    const bool a = exact.measure(q, deviates[q]);
    const bool b = qm.measure(q, deviates[q]);
    const bool d = dense.measure(q, deviates[q]);
    EXPECT_EQ(a, b) << q;
    EXPECT_EQ(a, d) << q;
  }
}

}  // namespace
}  // namespace sliq
