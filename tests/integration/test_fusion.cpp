// Gate fusion differential suite (DESIGN.md §9).
//
// The fused execution path is the *default* for the dense engines
// (statevector, qmdd) in Engine::runStatic, so these tests pin:
//   * fused vs unfused amplitudes/probabilities/expectations agree to
//     1e-12 on a seeded random corpus, across every engine in the registry
//   * thread invariance: StatevectorSimulator::setThreads(1..8) yields
//     BIT-IDENTICAL amplitudes (the kernels partition contiguously with no
//     reductions) — run under TSan in CI, this also races the pool
//   * the peephole optimizer and the fusion pass compose
//   * dynamic circuits pass through fusion verbatim
#include <gtest/gtest.h>

#include <complex>
#include <memory>
#include <vector>

#include "circuit/generators.hpp"
#include "circuit/optimizer.hpp"
#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "statevector/statevector.hpp"

namespace sliq {
namespace {

constexpr double kTol = 1e-12;

// Unfused dense ground truth for a static circuit.
std::vector<std::complex<double>> unfusedState(const QuantumCircuit& c) {
  StatevectorSimulator sim(c.numQubits());
  sim.run(c);
  return sim.state();
}

TEST(Fusion, FusedStatevectorMatchesUnfusedAmplitudes) {
  for (std::uint64_t seed : {101ull, 102ull, 103ull, 104ull}) {
    const QuantumCircuit c = randomCircuit(8, 80, seed);
    const auto reference = unfusedState(c);
    StatevectorSimulator fusedSim(c.numQubits());
    fusedSim.runFused(c.fused());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_NEAR(std::abs(fusedSim.state()[i] - reference[i]), 0.0, kTol)
          << "seed " << seed << " amplitude " << i;
    }
  }
}

TEST(Fusion, FusionReducesOpCount) {
  // The corpus is 1q/2q-heavy, so fusion must actually combine something —
  // guards against a regression that silently emits everything verbatim.
  const QuantumCircuit c = randomCircuit(8, 80, 101);
  FusionReport report;
  const FusedCircuit fc = fuseCircuit(c, &report);
  EXPECT_EQ(report.gatesIn, c.gateCount());
  EXPECT_EQ(report.opsOut, fc.opCount());
  EXPECT_LT(fc.opCount(), c.gateCount());
  EXPECT_GE(report.fusedBlocks, 1u);
}

TEST(Fusion, AllEnginesAgreeOnFusedDefaultPath) {
  // Engine::run() is the fused default path for statevector/qmdd; the
  // exact and chp engines execute unfused. Everything must agree with the
  // unfused dense ground truth to 1e-12.
  for (std::uint64_t seed : {201ull, 202ull, 203ull}) {
    const QuantumCircuit c = randomCircuit(7, 60, seed);
    const auto reference = unfusedState(c);
    for (const std::string& name : engineNames()) {
      std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
      if (!engine->supports(c)) continue;
      engine->run(c);
      for (unsigned q = 0; q < c.numQubits(); ++q) {
        double p1 = 0;
        const std::uint64_t bit = std::uint64_t{1} << q;
        for (std::uint64_t i = 0; i < reference.size(); ++i) {
          if (i & bit) p1 += std::norm(reference[i]);
        }
        ASSERT_NEAR(engine->probabilityOne(q), p1, kTol)
            << "seed " << seed << " engine " << name << " q" << q;
      }
    }
  }
}

TEST(Fusion, AllEnginesAgreeOnExpectations) {
  const QuantumCircuit c = randomCircuit(6, 50, 301);
  const PauliObservable obs = PauliObservable::parseString(
      "0.75 Z0\n-0.5 X1 X2\n0.25 Y3 Z4\n1.5 Z1 Z5\n");
  std::unique_ptr<Engine> reference = makeEngine("statevector", c.numQubits());
  reference->run(c);
  const double expected = reference->expectation(obs);
  for (const std::string& name : engineNames()) {
    std::unique_ptr<Engine> engine = makeEngine(name, c.numQubits());
    if (!engine->supports(c)) continue;
    engine->run(c);
    EXPECT_NEAR(engine->expectation(obs), expected, kTol) << name;
  }
}

TEST(Fusion, ThreadCountYieldsBitIdenticalAmplitudes) {
  // 17 qubits → 2^16 pairs per 1q kernel, above dense::kMinParallelGroups,
  // so the pool genuinely partitions. Contiguous reduction-free partitions
  // make every thread count bit-identical — EQ on doubles, not NEAR.
  const QuantumCircuit c = randomCircuit(17, 120, 401);
  const FusedCircuit fc = c.fused();
  StatevectorSimulator reference(c.numQubits());
  reference.setThreads(1);
  reference.runFused(fc);
  for (unsigned threads : {2u, 3u, 4u, 8u}) {
    StatevectorSimulator sim(c.numQubits());
    sim.setThreads(threads);
    sim.runFused(fc);
    for (std::size_t i = 0; i < reference.state().size(); ++i) {
      ASSERT_EQ(sim.state()[i].real(), reference.state()[i].real())
          << threads << " threads, amplitude " << i;
      ASSERT_EQ(sim.state()[i].imag(), reference.state()[i].imag())
          << threads << " threads, amplitude " << i;
    }
  }
}

TEST(Fusion, ThreadedUnfusedGatePathIsAlsoBitIdentical) {
  // The per-gate kernels (apply1/applyControlled1/applySwap) share the
  // same partitioning; pin them too, including controlled + swap gates.
  QuantumCircuit c(17);
  for (unsigned q = 0; q < 17; ++q) c.h(q);
  c.ccx(0, 1, 2).cswap(3, 4, 5).swap(6, 7).t(8).cz(9, 10).cx(11, 12);
  StatevectorSimulator reference(c.numQubits());
  reference.setThreads(1);
  reference.run(c);
  StatevectorSimulator sim(c.numQubits());
  sim.setThreads(4);
  sim.run(c);
  for (std::size_t i = 0; i < reference.state().size(); ++i) {
    ASSERT_EQ(sim.state()[i].real(), reference.state()[i].real()) << i;
    ASSERT_EQ(sim.state()[i].imag(), reference.state()[i].imag()) << i;
  }
}

TEST(Fusion, ComposesWithPeepholeOptimizer) {
  for (std::uint64_t seed : {501ull, 502ull}) {
    const QuantumCircuit c = randomCircuit(8, 80, seed);
    const auto reference = unfusedState(c);
    const QuantumCircuit peepholed = optimizeCircuit(c);
    StatevectorSimulator sim(c.numQubits());
    sim.runFused(peepholed.fused());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_NEAR(std::abs(sim.state()[i] - reference[i]), 0.0, kTol)
          << "seed " << seed << " amplitude " << i;
    }
  }
}

TEST(Fusion, DynamicCircuitsPassThroughVerbatim) {
  QuantumCircuit c(3);
  c.declareClassicalRegister(2);
  c.h(0).cx(0, 1);
  c.measure(0, 0);
  c.onlyIf(1, Gate{GateKind::kX, {2}, {}});
  c.h(1).h(1);  // would fuse in a static circuit
  c.reset(0);
  FusionReport report;
  const FusedCircuit fc = fuseCircuit(c, &report);
  ASSERT_EQ(fc.opCount(), c.gateCount());
  EXPECT_EQ(report.fusedBlocks, 0u);
  for (std::size_t i = 0; i < fc.opCount(); ++i) {
    EXPECT_EQ(fc.ops()[i].kind, FusedOp::Kind::kGate) << i;
    EXPECT_EQ(fc.ops()[i].gate.kind, c.gate(i).kind) << i;
  }
}

TEST(Fusion, SupremacyStyleCircuitFusesAndAgrees) {
  // Entanglement family exercises H+CNOT chains (long fusable runs).
  const QuantumCircuit c = entanglementCircuit(10);
  const auto reference = unfusedState(c);
  StatevectorSimulator sim(c.numQubits());
  sim.runFused(c.fused());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_NEAR(std::abs(sim.state()[i] - reference[i]), 0.0, kTol) << i;
  }
}

}  // namespace
}  // namespace sliq
