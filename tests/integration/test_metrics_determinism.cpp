// Telemetry is observationally invisible (DESIGN.md §11): enabling the
// metrics registry — spans, counters, trace events — must never consume an
// RNG deviate or mutate engine state, so every simulation output is
// bit-identical with --stats/--trace on or off. Pinned here across all
// four engines for static sampling, expectation values, dynamic circuits
// and the (threaded) noise trajectory runner.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "noise/trajectory.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace sliq {
namespace {

constexpr unsigned kQubits = 10;
constexpr std::uint64_t kSeed = 2026;

/// Clifford circuit (for chp) — entangling, all-qubit support.
QuantumCircuit cliffordCircuit() {
  QuantumCircuit c(kQubits);
  c.h(0);
  for (unsigned q = 0; q + 1 < kQubits; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < kQubits; q += 2) c.s(q);
  return c;
}

/// Non-Clifford circuit (T layers) for the universal engines.
QuantumCircuit nonCliffordCircuit() {
  QuantumCircuit c(kQubits);
  for (unsigned q = 0; q < kQubits; ++q) c.h(q);
  for (unsigned q = 0; q + 1 < kQubits; ++q) c.cx(q, q + 1);
  for (unsigned q = 0; q < kQubits; q += 2) c.t(q);
  for (unsigned q = 0; q + 1 < kQubits; q += 2) c.cz(q, q + 1);
  return c;
}

QuantumCircuit circuitFor(const std::string& engine) {
  return engine == "chp" ? cliffordCircuit() : nonCliffordCircuit();
}

/// Teleport-shaped dynamic circuit: mid-circuit measurement, classical
/// control and reset — every dynamic op kind the engines execute.
QuantumCircuit dynamicCircuit() {
  QuantumCircuit c(3);
  c.declareClassicalRegister(2);
  c.h(0).s(0);  // payload (Clifford, so chp executes this circuit too)
  c.h(1).cx(1, 2);
  c.cx(0, 1).h(0);
  c.measure(0, 0).measure(1, 1);
  c.onlyIf(1, Gate{GateKind::kZ, {2}, {}});
  c.onlyIf(2, Gate{GateKind::kX, {2}, {}});
  c.onlyIf(3, Gate{GateKind::kX, {2}, {}});
  c.onlyIf(3, Gate{GateKind::kZ, {2}, {}});
  c.reset(0);
  return c;
}

TEST(MetricsDeterminism, SamplingIsBitIdenticalWithTelemetryOn) {
  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    const QuantumCircuit c = circuitFor(name);

    const std::unique_ptr<Engine> plain = makeEngine(name, kQubits);
    plain->run(c);
    Rng plainRng(kSeed);
    const auto plainShots = plain->sampleShots(128, plainRng);

    const std::unique_ptr<Engine> instrumented = makeEngine(name, kQubits);
    instrumented->metrics().enable();
    instrumented->run(c);
    Rng instrumentedRng(kSeed);
    const auto instrumentedShots = instrumented->sampleShots(128,
                                                             instrumentedRng);

    EXPECT_EQ(plainShots, instrumentedShots);
    // Both RNGs must sit at the same stream position afterwards: telemetry
    // consumed zero deviates.
    EXPECT_EQ(plainRng.uniform(), instrumentedRng.uniform());
    // The instrumented run actually recorded something.
    EXPECT_GT(
        instrumented->runMetrics().metrics.counters.at("gates.pre_fusion"),
        0u);
  }
}

TEST(MetricsDeterminism, QueriesAreExactlyEqualWithTelemetryOn) {
  PauliObservable obs;
  for (unsigned q = 0; q + 1 < kQubits; ++q)
    obs.addTerm(1.0, {{q, Pauli::kZ}, {q + 1, Pauli::kZ}});
  for (unsigned q = 0; q < kQubits; ++q) obs.addTerm(0.5, {{q, Pauli::kX}});

  for (const std::string& name : engineNames()) {
    SCOPED_TRACE(name);
    const QuantumCircuit c = circuitFor(name);

    const std::unique_ptr<Engine> plain = makeEngine(name, kQubits);
    plain->run(c);
    const std::unique_ptr<Engine> instrumented = makeEngine(name, kQubits);
    instrumented->metrics().enable();
    instrumented->run(c);

    for (unsigned q = 0; q < kQubits; ++q) {
      EXPECT_EQ(plain->probabilityOne(q), instrumented->probabilityOne(q))
          << "qubit " << q;  // bitwise ==, not NEAR: identical code path
    }
    EXPECT_EQ(plain->expectation(obs), instrumented->expectation(obs));
    EXPECT_EQ(plain->totalProbability(), instrumented->totalProbability());
  }
}

TEST(MetricsDeterminism, DynamicRunsAreBitIdenticalWithTelemetryOn) {
  const QuantumCircuit c = dynamicCircuit();
  for (const std::string& name : engineNames()) {
    if (!EngineRegistry::instance().capabilities(name).dynamicCircuits)
      continue;
    SCOPED_TRACE(name);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const std::unique_ptr<Engine> plain = makeEngine(name, 3);
      Rng plainRng(seed);
      const DynamicRun p = plain->runDynamic(c, plainRng);

      const std::unique_ptr<Engine> instrumented = makeEngine(name, 3);
      instrumented->metrics().enable();
      Rng instrumentedRng(seed);
      const DynamicRun i = instrumented->runDynamic(c, instrumentedRng);

      EXPECT_EQ(p.creg, i.creg) << "seed " << seed;
      EXPECT_EQ(p.outcomes, i.outcomes) << "seed " << seed;
      EXPECT_EQ(p.measures, i.measures);
      EXPECT_EQ(p.resets, i.resets);
      EXPECT_EQ(plainRng.uniform(), instrumentedRng.uniform());
    }
  }
}

TEST(MetricsDeterminism, TrajectoriesAreBitIdenticalWithTelemetryOn) {
  noise::NoiseModel model;
  model.addAfterGate1(noise::PauliChannel::depolarizing1(0.02));
  model.addAfterGate2(noise::PauliChannel::depolarizing2(0.05));

  for (const bool forceGeneric : {false, true}) {
    SCOPED_TRACE(forceGeneric ? "generic path" : "fast path allowed");
    noise::TrajectoryOptions plainOpts;
    plainOpts.trajectories = 200;
    plainOpts.threads = 2;
    plainOpts.seed = kSeed;
    plainOpts.forceGeneric = forceGeneric;
    const noise::TrajectoryResult plain =
        noise::runTrajectories("chp", cliffordCircuit(), model, plainOpts);

    metrics::Registry sink;
    sink.enable();
    noise::TrajectoryOptions instrumentedOpts = plainOpts;
    instrumentedOpts.metrics = &sink;
    const noise::TrajectoryResult instrumented = noise::runTrajectories(
        "chp", cliffordCircuit(), model, instrumentedOpts);

    EXPECT_EQ(plain.counts, instrumented.counts);
    EXPECT_EQ(plain.trajectories, instrumented.trajectories);
    EXPECT_EQ(plain.usedPauliFrameFastPath,
              instrumented.usedPauliFrameFastPath);
    // The sink saw every trajectory, and one span per worker.
    const metrics::Snapshot snap = sink.snapshot();
    EXPECT_EQ(snap.counters.at("trajectories.executed"), 200u);
    EXPECT_EQ(snap.timers.at("trajectory.worker").count, 2u);
    EXPECT_EQ(snap.gauges.at("trajectory.threads"), 2.0);
  }
}

}  // namespace
}  // namespace sliq
