// Conditioned cross-engine differential fuzz harness for DYNAMIC circuits:
// seeded random Clifford(+T) circuits with interleaved mid-circuit
// measurements, resets and classically-conditioned gates, executed shot by
// shot through Engine::runDynamic under one shared seed per engine. The
// per-shot classical-register outcome streams must agree BIT-EXACTLY across
// the exact, qmdd and statevector engines (chp joins on the Clifford-only
// subset): every engine consumes one deviate per executed collapse in op
// order, and their collapse probabilities agree to >=10 digits, so a shared
// seed forces identical classical control flow end to end.
//
// Reproducibility: the committed golden file pins an FNV-1a digest of each
// generated op list AND of the exact engine's outcome stream, so neither
// the generator nor the execution pipeline can drift silently. Regenerate
// with SLIQ_REGEN_GOLDEN=1 (rewrites the file in the source tree).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "support/bits.hpp"
#include "support/rng.hpp"

#ifndef SLIQ_DIFFERENTIAL_DYNAMIC_GOLDEN
#error "tests/CMakeLists.txt must define SLIQ_DIFFERENTIAL_DYNAMIC_GOLDEN"
#endif

namespace sliq {
namespace {

constexpr unsigned kShotsPerCase = 6;

struct FuzzCase {
  std::string id;
  QuantumCircuit circuit;
  bool cliffordOnly;
};

/// Random dynamic circuit: a Clifford (or Clifford+T) gate stream with
/// interleaved measure → creg, reset, and `if (c==v)` conditioned ops.
/// Measures target low classical bits and condition values stay small so
/// conditions genuinely fire on some shots (both branches get coverage).
QuantumCircuit randomDynamic(unsigned numQubits, unsigned numOps,
                             std::uint64_t seed, bool cliffordOnly) {
  QuantumCircuit c(numQubits, cliffordOnly ? "dyn-clifford" : "dyn-fuzz");
  c.declareClassicalRegister(numQubits);
  Rng rng(seed);
  for (unsigned q = 0; q < numQubits; ++q) c.h(q);
  auto randomGate = [&]() -> Gate {
    const unsigned kinds = cliffordOnly ? 9u : 11u;
    const unsigned kind = static_cast<unsigned>(rng.below(kinds));
    const unsigned a = static_cast<unsigned>(rng.below(numQubits));
    unsigned b = static_cast<unsigned>(rng.below(numQubits));
    while (b == a) b = static_cast<unsigned>(rng.below(numQubits));
    switch (kind) {
      case 0: return Gate{GateKind::kH, {a}, {}};
      case 1: return Gate{GateKind::kS, {a}, {}};
      case 2: return Gate{GateKind::kSdg, {a}, {}};
      case 3: return Gate{GateKind::kX, {a}, {}};
      case 4: return Gate{GateKind::kY, {a}, {}};
      case 5: return Gate{GateKind::kZ, {a}, {}};
      case 6: return Gate{GateKind::kCnot, {b}, {a}};
      case 7: return Gate{GateKind::kCz, {b}, {a}};
      case 8: return Gate{GateKind::kSwap, {a, b}, {}};
      case 9: return Gate{GateKind::kT, {a}, {}};
      default: return Gate{GateKind::kTdg, {a}, {}};
    }
  };
  for (unsigned op = 0; op < numOps; ++op) {
    const std::uint64_t roll = rng.below(10);
    if (roll < 6) {
      c.append(randomGate());
    } else if (roll < 8) {
      const unsigned q = static_cast<unsigned>(rng.below(numQubits));
      const unsigned cbit =
          static_cast<unsigned>(rng.below(std::min(numQubits, 2u)));
      c.measure(q, cbit);
    } else if (roll < 9) {
      c.reset(static_cast<unsigned>(rng.below(numQubits)));
    } else {
      // Conditioned op: usually a gate, sometimes a measure — condition
      // values in [0, 4) so low-bit measures actually trigger them.
      const std::uint64_t value = rng.below(4);
      if (rng.below(4) == 0) {
        Gate m{GateKind::kMeasure,
               {static_cast<unsigned>(rng.below(numQubits))},
               {}};
        m.cbit = static_cast<unsigned>(rng.below(std::min(numQubits, 2u)));
        c.onlyIf(value, std::move(m));
      } else {
        c.onlyIf(value, randomGate());
      }
    }
  }
  // Every circuit ends with a full-register measurement so the creg carries
  // information about every qubit's final state.
  for (unsigned q = 0; q < numQubits; ++q) c.measure(q, q);
  return c;
}

/// FNV-1a over the structural op stream, dynamic fields included.
std::uint64_t circuitDigest(const QuantumCircuit& c) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(c.numQubits());
  mix(c.numClbits());
  for (const Gate& g : c.gates()) {
    mix(0xff);  // op separator
    mix(static_cast<std::uint64_t>(g.kind));
    for (const unsigned q : g.controls) mix(0x100 + q);
    for (const unsigned q : g.targets) mix(0x200 + q);
    if (g.kind == GateKind::kMeasure) mix(0x300 + g.cbit);
    if (g.conditioned) {
      mix(0x400);
      mix(g.conditionValue);
    }
  }
  return h;
}

/// Executes `kShotsPerCase` seeded shots on one engine (fresh instance per
/// shot, one shared Rng across shots — the CLI's per-shot re-execution
/// semantics) and renders the full classical record: final creg plus the
/// chronological measure-outcome stream of every shot.
std::string outcomeStream(const std::string& engineName,
                          const QuantumCircuit& circuit, std::uint64_t seed) {
  Rng rng(seed);
  std::ostringstream os;
  for (unsigned s = 0; s < kShotsPerCase; ++s) {
    const std::unique_ptr<Engine> engine =
        makeEngine(engineName, circuit.numQubits());
    const DynamicRun run = engine->runDynamic(circuit, rng);
    os << bitsToString(run.creg) << ":";
    for (const bool bit : run.outcomes) os << (bit ? '1' : '0');
    os << ";";
  }
  return os.str();
}

std::uint64_t streamDigest(const std::string& stream) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : stream) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<FuzzCase> fuzzCorpus() {
  std::vector<FuzzCase> cases;
  for (unsigned n = 2; n <= 4; ++n) {
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      {
        std::ostringstream id;
        id << "dyn-clifford+t n=" << n << " seed=" << seed;
        cases.push_back(
            {id.str(), randomDynamic(n, 6 * n, 3000 * n + seed, false),
             false});
      }
      {
        std::ostringstream id;
        id << "dyn-clifford n=" << n << " seed=" << seed;
        cases.push_back(
            {id.str(), randomDynamic(n, 6 * n, 4000 * n + seed, true),
             true});
      }
    }
  }
  return cases;
}

std::uint64_t caseSeed(const FuzzCase& fuzz) {
  return circuitDigest(fuzz.circuit) | 1;  // any nonzero function of the case
}

std::string goldenLine(const FuzzCase& fuzz) {
  std::ostringstream os;
  os << fuzz.id << " | ops=" << fuzz.circuit.gateCount() << " digest="
     << std::hex << circuitDigest(fuzz.circuit) << " stream="
     << streamDigest(outcomeStream("exact", fuzz.circuit, caseSeed(fuzz)));
  return os.str();
}

TEST(DifferentialDynamic, GoldenFilePinsCorpusAndOutcomeStreams) {
  const std::vector<FuzzCase> corpus = fuzzCorpus();
  if (std::getenv("SLIQ_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(SLIQ_DIFFERENTIAL_DYNAMIC_GOLDEN);
    ASSERT_TRUE(out.good()) << SLIQ_DIFFERENTIAL_DYNAMIC_GOLDEN;
    out << "# Fixed-seed dynamic fuzz corpus: circuit digests + exact-engine "
           "outcome-stream digests.\n"
           "# Regenerate with SLIQ_REGEN_GOLDEN=1 ./test_differential_dynamic\n";
    for (const FuzzCase& fuzz : corpus) out << goldenLine(fuzz) << "\n";
    GTEST_SKIP() << "regenerated " << SLIQ_DIFFERENTIAL_DYNAMIC_GOLDEN;
  }
  std::ifstream in(SLIQ_DIFFERENTIAL_DYNAMIC_GOLDEN);
  ASSERT_TRUE(in.good()) << "missing golden file "
                         << SLIQ_DIFFERENTIAL_DYNAMIC_GOLDEN;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), corpus.size())
      << "corpus size changed; regenerate the golden file";
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(lines[i], goldenLine(corpus[i]))
        << "generator or execution pipeline drifted for " << corpus[i].id;
  }
}

TEST(DifferentialDynamic, OutcomeStreamsAgreeBitExactlyAcrossEngines) {
  for (const FuzzCase& fuzz : fuzzCorpus()) {
    SCOPED_TRACE(fuzz.id);
    const std::uint64_t seed = caseSeed(fuzz);
    const std::string reference =
        outcomeStream("statevector", fuzz.circuit, seed);
    for (const std::string& name : engineNames()) {
      if (name == "statevector") continue;
      if (name == "chp" && !fuzz.cliffordOnly) continue;
      SCOPED_TRACE(name);
      EXPECT_EQ(outcomeStream(name, fuzz.circuit, seed), reference);
    }
  }
}

TEST(DifferentialDynamic, PostRunStatesAgreeAcrossEngines) {
  // Beyond the classical record: after one shared-seed dynamic run, the
  // engines hold the same post-measurement quantum state — per-qubit
  // Pr[q=1] agrees to 10 digits (the collapse cascade was identical).
  for (const FuzzCase& fuzz : fuzzCorpus()) {
    SCOPED_TRACE(fuzz.id);
    const std::uint64_t seed = caseSeed(fuzz);
    const unsigned n = fuzz.circuit.numQubits();
    std::unique_ptr<Engine> reference = makeEngine("statevector", n);
    {
      Rng rng(seed);
      reference->runDynamic(fuzz.circuit, rng);
    }
    for (const std::string& name : engineNames()) {
      if (name == "statevector") continue;
      if (name == "chp" && !fuzz.cliffordOnly) continue;
      SCOPED_TRACE(name);
      std::unique_ptr<Engine> engine = makeEngine(name, n);
      Rng rng(seed);
      engine->runDynamic(fuzz.circuit, rng);
      for (unsigned q = 0; q < n; ++q) {
        EXPECT_NEAR(engine->probabilityOne(q), reference->probabilityOne(q),
                    1e-10)
            << "qubit " << q;
      }
    }
  }
}

TEST(DifferentialDynamic, PostRunConversionAgreesAcrossRepresentations) {
  // Conversion composes with dynamic runs: after a collapsing shared-seed
  // run on the exact engine, the dense exportTo routes hand the collapsed
  // state to qmdd / statevector targets with per-qubit probabilities and
  // total norm intact to 10 digits (dynamic circuits never split mid-run —
  // the deviate contract — but their FINAL states convert freely).
  for (const FuzzCase& fuzz : fuzzCorpus()) {
    SCOPED_TRACE(fuzz.id);
    const unsigned n = fuzz.circuit.numQubits();
    const std::unique_ptr<Engine> src = makeEngine("exact", n);
    Rng rng(caseSeed(fuzz));
    src->runDynamic(fuzz.circuit, rng);
    for (const char* dstName : {"qmdd", "statevector"}) {
      SCOPED_TRACE(dstName);
      const std::unique_ptr<Engine> dst = makeEngine(dstName, n);
      src->exportTo(*dst);
      for (unsigned q = 0; q < n; ++q) {
        EXPECT_NEAR(dst->probabilityOne(q), src->probabilityOne(q), 1e-10)
            << "qubit " << q;
      }
      EXPECT_NEAR(dst->totalProbability(), src->totalProbability(), 1e-10);
    }
  }
}

}  // namespace
}  // namespace sliq
