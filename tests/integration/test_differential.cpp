// Cross-engine differential fuzz harness: seeded random Clifford+T circuits
// (and Clifford-only ones for the chp engine) per qubit count, checked for
// agreement of (a) per-basis-state probabilities and (b) Pauli-observable
// expectations across the exact, qmdd and statevector engines to 1e-10 —
// the exact engine is the oracle the paper's representation makes possible.
//
// Reproducibility: every circuit is a pure function of the fixed seeds
// below, and the committed golden file pins an FNV-1a digest of each
// generated gate list, so a failure names exactly which circuit diverged
// and the generators cannot drift silently. Regenerate the golden file with
// SLIQ_REGEN_GOLDEN=1 (it rewrites the file in the source tree).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/generators.hpp"
#include "core/circuit_analyzer.hpp"
#include "core/dispatch.hpp"
#include "core/engine_registry.hpp"
#include "core/observable.hpp"
#include "core/simulator.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "stabilizer/stabilizer.hpp"
#include "statevector/statevector.hpp"
#include "support/rng.hpp"

#ifndef SLIQ_DIFFERENTIAL_GOLDEN
#error "tests/CMakeLists.txt must define SLIQ_DIFFERENTIAL_GOLDEN"
#endif

namespace sliq {
namespace {

struct FuzzCase {
  std::string id;
  QuantumCircuit circuit;
  bool cliffordOnly;
};

/// Random Clifford circuit (H, S, S†, X, Y, Z, CNOT, CZ, SWAP) — the chp
/// subset; randomCircuit() covers Clifford+T (with Toffoli/Fredkin).
QuantumCircuit randomClifford(unsigned numQubits, unsigned numGates,
                              std::uint64_t seed) {
  QuantumCircuit c(numQubits, "clifford-fuzz");
  Rng rng(seed);
  for (unsigned q = 0; q < numQubits; ++q) c.h(q);
  for (unsigned g = 0; g < numGates; ++g) {
    const unsigned kind = static_cast<unsigned>(rng.below(9));
    const unsigned a = static_cast<unsigned>(rng.below(numQubits));
    unsigned b = static_cast<unsigned>(rng.below(numQubits));
    while (b == a) b = static_cast<unsigned>(rng.below(numQubits));
    switch (kind) {
      case 0: c.h(a); break;
      case 1: c.s(a); break;
      case 2: c.sdg(a); break;
      case 3: c.x(a); break;
      case 4: c.y(a); break;
      case 5: c.z(a); break;
      case 6: c.cx(a, b); break;
      case 7: c.cz(a, b); break;
      default: c.swap(a, b); break;
    }
  }
  return c;
}

/// FNV-1a over the structural gate stream — the golden-file digest.
std::uint64_t circuitDigest(const QuantumCircuit& c) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(c.numQubits());
  for (const Gate& g : c.gates()) {
    mix(0xff);  // gate separator
    mix(static_cast<std::uint64_t>(g.kind));
    for (const unsigned q : g.controls) mix(0x100 + q);
    for (const unsigned q : g.targets) mix(0x200 + q);
  }
  return h;
}

std::vector<FuzzCase> fuzzCorpus() {
  std::vector<FuzzCase> cases;
  for (unsigned n = 2; n <= 5; ++n) {
    // Clifford+T family (paper's random-circuit recipe: H layer + uniform
    // gate picks including T and Toffoli/Fredkin — needs >= 3 qubits).
    for (std::uint64_t seed = 1; n >= 3 && seed <= 4; ++seed) {
      std::ostringstream id;
      id << "clifford+t n=" << n << " seed=" << seed;
      cases.push_back(
          {id.str(), randomCircuit(n, 4 * n, 1000 * n + seed), false});
    }
    // Clifford-only family: the stabilizer engine joins the comparison.
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      std::ostringstream id;
      id << "clifford n=" << n << " seed=" << seed;
      cases.push_back(
          {id.str(), randomClifford(n, 5 * n, 2000 * n + seed), true});
    }
  }
  return cases;
}

/// Handoff corpus: every circuit opens with a guaranteed Clifford prefix
/// (an H layer plus 2n random tableau gates), then a T gate pins the prefix
/// end, then a Clifford+T tail. This is exactly the shape the dispatcher
/// splits: chp runs the prefix, exportTo hands the tableau state to the
/// scored-best engine, which finishes the tail.
std::vector<FuzzCase> handoffCorpus() {
  std::vector<FuzzCase> cases;
  for (unsigned n = 3; n <= 5; ++n) {  // randomCircuit needs >= 3 qubits
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      std::ostringstream id;
      id << "handoff n=" << n << " seed=" << seed;
      QuantumCircuit c = randomClifford(n, 2 * n, 5000 * n + seed);
      c.t(static_cast<unsigned>(seed % n));
      c.compose(randomCircuit(n, 2 * n, 6000 * n + seed));
      cases.push_back({id.str(), std::move(c), false});
    }
  }
  return cases;
}

/// Deterministic random observable for one case: `count` strings over the
/// full width (each qubit I/X/Y/Z uniformly, re-rolled if fully identity)
/// with ±(0.25 + k/8) coefficients.
PauliObservable randomObservable(unsigned numQubits, unsigned count,
                                 std::uint64_t seed) {
  PauliObservable obs;
  Rng rng(seed);
  for (unsigned k = 0; k < count; ++k) {
    std::vector<PauliFactor> factors;
    do {
      factors.clear();
      for (unsigned q = 0; q < numQubits; ++q) {
        const Pauli op = static_cast<Pauli>(rng.below(4));
        if (op != Pauli::kI) factors.push_back({q, op});
      }
    } while (factors.empty());
    const double coefficient = (rng.flip() ? 1.0 : -1.0) * (0.25 + k / 8.0);
    obs.addTerm(coefficient, std::move(factors));
  }
  return obs;
}

std::string goldenLine(const FuzzCase& fuzz) {
  std::ostringstream os;
  os << fuzz.id << " | gates=" << fuzz.circuit.gateCount() << " digest="
     << std::hex << circuitDigest(fuzz.circuit);
  return os.str();
}

TEST(Differential, GoldenFilePinsTheGeneratedCorpus) {
  // Both generated families are pinned: the cross-engine fuzz corpus and
  // the handoff corpus the split-point test below replays.
  std::vector<FuzzCase> corpus = fuzzCorpus();
  for (FuzzCase& fuzz : handoffCorpus()) corpus.push_back(std::move(fuzz));
  if (std::getenv("SLIQ_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(SLIQ_DIFFERENTIAL_GOLDEN);
    ASSERT_TRUE(out.good()) << SLIQ_DIFFERENTIAL_GOLDEN;
    out << "# Fixed-seed fuzz corpus digests — regenerate with "
           "SLIQ_REGEN_GOLDEN=1 ./test_differential\n";
    for (const FuzzCase& fuzz : corpus) out << goldenLine(fuzz) << "\n";
    GTEST_SKIP() << "regenerated " << SLIQ_DIFFERENTIAL_GOLDEN;
  }
  std::ifstream in(SLIQ_DIFFERENTIAL_GOLDEN);
  ASSERT_TRUE(in.good()) << "missing golden file " << SLIQ_DIFFERENTIAL_GOLDEN;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), corpus.size())
      << "corpus size changed; regenerate the golden file";
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(lines[i], goldenLine(corpus[i]))
        << "generator output drifted for case " << corpus[i].id;
  }
}

TEST(Differential, BasisStateProbabilitiesAgreeToTenDigits) {
  for (const FuzzCase& fuzz : fuzzCorpus()) {
    SCOPED_TRACE(fuzz.id);
    const unsigned n = fuzz.circuit.numQubits();
    SliqSimulator exact(n);
    StatevectorSimulator dense(n);
    qmdd::QmddSimulator dd(n);
    exact.run(fuzz.circuit);
    dense.run(fuzz.circuit);
    dd.run(fuzz.circuit);
    const std::vector<std::complex<double>> exactVec = exact.statevector();
    for (std::uint64_t i = 0; i < (std::uint64_t{1} << n); ++i) {
      const double reference = std::norm(dense.amplitude(i));
      EXPECT_NEAR(std::norm(exactVec[i]), reference, 1e-10)
          << "exact vs dense at basis state " << i;
      EXPECT_NEAR(std::norm(dd.amplitude(i)), reference, 1e-10)
          << "qmdd vs dense at basis state " << i;
    }
  }
}

TEST(Differential, ExpectationsAgreeAcrossEnginesToTenDigits) {
  for (const FuzzCase& fuzz : fuzzCorpus()) {
    SCOPED_TRACE(fuzz.id);
    const unsigned n = fuzz.circuit.numQubits();
    const PauliObservable obs =
        randomObservable(n, 4, circuitDigest(fuzz.circuit));

    std::unique_ptr<Engine> reference = makeEngine("statevector", n);
    reference->run(fuzz.circuit);
    // Each term separately (sharper than only the weighted sum) plus the
    // full weighted observable.
    std::vector<PauliObservable> probes;
    for (const PauliString& term : obs.terms())
      probes.push_back(singleStringObservable(term));
    probes.push_back(obs);

    for (const std::string& name : engineNames()) {
      if (name == "statevector") continue;
      if (name == "chp" && !fuzz.cliffordOnly) continue;
      SCOPED_TRACE(name);
      std::unique_ptr<Engine> engine = makeEngine(name, n);
      ASSERT_TRUE(engine->supports(fuzz.circuit));
      engine->run(fuzz.circuit);
      for (std::size_t p = 0; p < probes.size(); ++p) {
        SCOPED_TRACE("probe " + std::to_string(p));
        EXPECT_NEAR(engine->expectation(probes[p]),
                    reference->expectation(probes[p]), 1e-10);
      }
    }
    // The acceptance property: the exact engine's non-collapsing traversal
    // against the dense contraction, plus the generic fallback as a third
    // independent computation of the same numbers.
    std::unique_ptr<Engine> exact = makeEngine("exact", n);
    exact->run(fuzz.circuit);
    EXPECT_NEAR(exact->expectation(obs), reference->expectation(obs), 1e-10);
    EXPECT_NEAR(genericExpectation(*exact, obs), reference->expectation(obs),
                1e-10);
  }
}

TEST(Differential, ChpExtractionMatchesEveryPrefixToTenDigits) {
  // The tableau→circuit extraction behind every chp→* conversion route:
  // for EVERY prefix length of every Clifford-only fuzz case, replaying
  // extractPreparation() from |0...0⟩ reproduces the prefix's per-basis
  // probabilities to 10 digits (the extraction is exact up to global
  // phase, so probabilities — not amplitudes — are the comparable).
  for (const FuzzCase& fuzz : fuzzCorpus()) {
    if (!fuzz.cliffordOnly) continue;
    SCOPED_TRACE(fuzz.id);
    const unsigned n = fuzz.circuit.numQubits();
    StatevectorSimulator reference(n);  // advanced gate by gate in lockstep
    StabilizerSimulator tableau(n);
    for (std::size_t len = 0; len <= fuzz.circuit.gateCount(); ++len) {
      if (len > 0) {
        const Gate& g = fuzz.circuit.gate(len - 1);
        reference.applyGate(g);
        tableau.applyGate(g);
      }
      StatevectorSimulator replay(n);
      replay.run(tableau.extractPreparation());
      for (std::uint64_t i = 0; i < (std::uint64_t{1} << n); ++i) {
        EXPECT_NEAR(std::norm(replay.amplitude(i)),
                    std::norm(reference.amplitude(i)), 1e-10)
            << "prefix " << len << " basis state " << i;
      }
    }
  }
}

TEST(Differential, ChpHandoffMatchesMonolithicAtEverySplitPoint) {
  // The acceptance property of the engine portfolio: a chp-prefix handoff
  // into each of exact/qmdd/statevector is pinned <= 1e-10 against the
  // monolithic run for EVERY split point inside the Clifford prefix —
  // wherever the dispatcher cuts, the answer is the same.
  for (const FuzzCase& fuzz : handoffCorpus()) {
    SCOPED_TRACE(fuzz.id);
    const unsigned n = fuzz.circuit.numQubits();
    const std::size_t prefix =
        analyzeCircuit(fuzz.circuit).cliffordPrefixGates;
    // The corpus shape guarantees a split the dispatcher would take.
    ASSERT_GE(prefix, kMinHandoffPrefixGates);
    ASSERT_LT(prefix, fuzz.circuit.gateCount());
    const PauliObservable obs =
        randomObservable(n, 3, circuitDigest(fuzz.circuit) ^ 0x9e3779b9ULL);
    for (const char* name : {"exact", "qmdd", "statevector"}) {
      SCOPED_TRACE(name);
      const std::unique_ptr<Engine> monolithic = makeEngine(name, n);
      monolithic->run(fuzz.circuit);
      const double monolithicExpectation = monolithic->expectation(obs);
      for (std::size_t split = 0; split <= prefix; ++split) {
        SCOPED_TRACE("split " + std::to_string(split));
        const std::unique_ptr<Engine> chp = makeEngine("chp", n);
        for (std::size_t i = 0; i < split; ++i)
          chp->applyGate(fuzz.circuit.gate(i));
        const std::unique_ptr<Engine> engine = makeEngine(name, n);
        chp->exportTo(*engine);
        for (std::size_t i = split; i < fuzz.circuit.gateCount(); ++i)
          engine->applyGate(fuzz.circuit.gate(i));
        for (unsigned q = 0; q < n; ++q) {
          EXPECT_NEAR(engine->probabilityOne(q), monolithic->probabilityOne(q),
                      1e-10)
              << "qubit " << q;
        }
        EXPECT_NEAR(engine->expectation(obs), monolithicExpectation, 1e-10);
        EXPECT_NEAR(engine->totalProbability(), 1.0, 1e-10);
      }
    }
  }
}

}  // namespace
}  // namespace sliq
