// ThreadPool: task execution, exception propagation through futures, and
// concurrent-use smoke (the TSan CI job runs this suite).
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sliq {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> done;
  for (int i = 0; i < 1000; ++i) {
    done.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPool, ReturnsTaskValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> results;
  for (int i = 0; i < 64; ++i) {
    results.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[i].get(), i * i);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  const std::vector<int> values = [] {
    std::vector<int> v(10000);
    std::iota(v.begin(), v.end(), 1);
    return v;
  }();
  const long expected =
      std::accumulate(values.begin(), values.end(), 0L);

  ThreadPool pool(4);
  const std::size_t chunk = values.size() / 4;
  std::vector<std::future<long>> parts;
  for (unsigned w = 0; w < 4; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = w == 3 ? values.size() : begin + chunk;
    parts.push_back(pool.submit([&values, begin, end] {
      return std::accumulate(values.begin() + begin, values.begin() + end,
                             0L);
    }));
  }
  long total = 0;
  for (auto& p : parts) total += p.get();
  EXPECT_EQ(total, expected);
}

TEST(ThreadPool, ExceptionPropagatesThroughFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failure");
  });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task keeps serving.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, ZeroRequestedThreadsStillRuns) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPool, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

}  // namespace
}  // namespace sliq
