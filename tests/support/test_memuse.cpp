// Edge-case coverage for support/memuse.cpp: the /proc/self/status scraper
// behind the paper tables' memory column.
#include "support/memuse.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace sliq {
namespace {

TEST(Memuse, CurrentRssIsStableAcrossBackToBackReads) {
  const std::size_t a = currentRssBytes();
  const std::size_t b = currentRssBytes();
  ASSERT_GT(a, 0u);
  // Two immediate reads may differ (the second parse itself allocates a
  // page or two at most) but not by an order of magnitude.
  EXPECT_LT(a, b * 10);
  EXPECT_LT(b, a * 10);
}

TEST(Memuse, PeakTracksLargeAllocation) {
  const std::size_t before = peakRssBytes();
  ASSERT_GT(before, 0u);
  {
    // 64 MiB, touched so the kernel actually maps it.
    std::vector<char> block(64u << 20, 1);
    volatile char sink = block[block.size() - 1];
    (void)sink;
    EXPECT_GE(peakRssBytes(), before);
  }
  // The high-water mark never decreases, even after the block is freed.
  EXPECT_GE(peakRssBytes(), before);
}

TEST(Memuse, ValuesArePageGranular) {
  // /proc reports KiB; the conversion multiplies by 1024, so the result is
  // always KiB-aligned. Guards against unit slips (bytes vs KiB vs pages).
  EXPECT_EQ(currentRssBytes() % 1024, 0u);
  EXPECT_EQ(peakRssBytes() % 1024, 0u);
}

}  // namespace
}  // namespace sliq
