// Edge-case coverage for support/memuse.cpp: the /proc/self/status scraper
// behind the paper tables' memory column.
#include "support/memuse.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sliq {
namespace {

TEST(Memuse, CurrentRssIsStableAcrossBackToBackReads) {
  const std::size_t a = currentRssBytes();
  const std::size_t b = currentRssBytes();
  ASSERT_GT(a, 0u);
  // Two immediate reads may differ (the second parse itself allocates a
  // page or two at most) but not by an order of magnitude.
  EXPECT_LT(a, b * 10);
  EXPECT_LT(b, a * 10);
}

TEST(Memuse, PeakTracksLargeAllocation) {
  const std::size_t before = peakRssBytes();
  ASSERT_GT(before, 0u);
  {
    // 64 MiB, touched so the kernel actually maps it.
    std::vector<char> block(64u << 20, 1);
    volatile char sink = block[block.size() - 1];
    (void)sink;
    EXPECT_GE(peakRssBytes(), before);
  }
  // The high-water mark never decreases, even after the block is freed.
  EXPECT_GE(peakRssBytes(), before);
}

TEST(Memuse, ValuesArePageGranular) {
  // /proc reports KiB; the conversion multiplies by 1024, so the result is
  // always KiB-aligned. Guards against unit slips (bytes vs KiB vs pages).
  EXPECT_EQ(currentRssBytes() % 1024, 0u);
  EXPECT_EQ(peakRssBytes() % 1024, 0u);
}


TEST(Memuse, DenseStateBytesIs16BytesPerAmplitude) {
  EXPECT_EQ(denseStateBytes(0), 16u);          // one amplitude
  EXPECT_EQ(denseStateBytes(1), 32u);
  EXPECT_EQ(denseStateBytes(20), (1u << 20) * 16ull);
  EXPECT_EQ(denseStateBytes(26), (1ull << 26) * 16ull);
  // Widths whose byte count would overflow 64 bits saturate instead of
  // wrapping to a tiny (and thus always-in-budget) value.
  EXPECT_EQ(denseStateBytes(60), ~std::uint64_t{0});
  EXPECT_EQ(denseStateBytes(64), ~std::uint64_t{0});
}

TEST(Memuse, RequireDenseBudgetPassesWithinAndThrowsOver) {
  // In budget: 2^10 amplitudes = 16 KiB against a 1 MiB budget.
  EXPECT_NO_THROW(requireDenseBudget(10, 1u << 20));
  // Exactly at the budget is still allowed (<=, not <).
  EXPECT_NO_THROW(requireDenseBudget(10, denseStateBytes(10)));
  EXPECT_THROW(requireDenseBudget(10, denseStateBytes(10) - 1),
               MemoryBudgetError);
  // The default budget admits 26 qubits (1 GiB) and refuses 27.
  EXPECT_NO_THROW(requireDenseBudget(26, kDefaultDenseBudgetBytes));
  EXPECT_THROW(requireDenseBudget(27, kDefaultDenseBudgetBytes),
               MemoryBudgetError);
}

TEST(Memuse, MemoryBudgetErrorCarriesTheSizesAndNamesThem) {
  try {
    requireDenseBudget(30, 1u << 20);
    FAIL() << "expected MemoryBudgetError";
  } catch (const MemoryBudgetError& e) {
    EXPECT_EQ(e.numQubits(), 30u);
    EXPECT_EQ(e.requiredBytes(), (1ull << 30) * 16ull);
    EXPECT_EQ(e.budgetBytes(), 1ull << 20);
    const std::string what = e.what();
    // The message must name the qubit count and both byte figures so the
    // caller can act on it without re-deriving anything.
    EXPECT_NE(what.find("30"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string((1ull << 30) * 16ull)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(std::to_string(1ull << 20)), std::string::npos)
        << what;
  }
  // A catch as std::runtime_error also works (typed but catchable broadly).
  EXPECT_THROW(requireDenseBudget(40, 1), std::runtime_error);
}

}  // namespace
}  // namespace sliq
