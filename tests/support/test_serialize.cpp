// Wire-format units for the sliq.state.v1 snapshot envelope
// (support/serialize.hpp): byte-level little-endian layout, bounds-checked
// reads with offset-naming diagnostics, and envelope validation (magic,
// version, sizes, FNV checksum) rejecting every single-byte corruption.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "support/serialize.hpp"

namespace sliq::serialize {
namespace {

TEST(SerializeWriter, LittleEndianByteLayout) {
  Writer w;
  w.u8(0xab);
  w.u32(0x01020304u);
  w.u64(0x1122334455667788ULL);
  const std::vector<std::uint8_t> expected = {
      0xab,                                            // u8
      0x04, 0x03, 0x02, 0x01,                          // u32, LE
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // u64, LE
  };
  EXPECT_EQ(w.data(), expected);
  EXPECT_EQ(w.offset(), expected.size());
}

TEST(SerializeWriter, StrIsLengthPrefixed) {
  Writer w;
  w.str("chp");
  const std::vector<std::uint8_t> expected = {3, 0, 0, 0, 'c', 'h', 'p'};
  EXPECT_EQ(w.data(), expected);
}

TEST(SerializeReader, RoundTripsEveryType) {
  Writer w;
  w.u8(7);
  w.u32(0xdeadbeefu);
  w.u64(~std::uint64_t{0});
  w.i64(-123456789012345678LL);
  w.f64(-0.1);
  w.f64(0.0);
  w.str("statevector");
  Reader r(w.data());
  EXPECT_EQ(r.u8("a"), 7u);
  EXPECT_EQ(r.u32("b"), 0xdeadbeefu);
  EXPECT_EQ(r.u64("c"), ~std::uint64_t{0});
  EXPECT_EQ(r.i64("d"), -123456789012345678LL);
  EXPECT_EQ(r.f64("e"), -0.1);
  EXPECT_EQ(r.f64("f"), 0.0);
  EXPECT_EQ(r.str("g"), "statevector");
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.requireExhausted("test"));
}

TEST(SerializeReader, TruncationNamesFieldAndOffset) {
  Writer w;
  w.u32(5);
  Reader r(w.data());
  EXPECT_EQ(r.u32("first"), 5u);
  try {
    r.u64("second");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'second'"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset 4"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST(SerializeReader, BaseOffsetShiftsDiagnostics) {
  // Payload readers are constructed with the payload's absolute file
  // offset, so diagnostics name positions in the FILE, not the buffer.
  const std::vector<std::uint8_t> empty;
  Reader r(empty, /*baseOffset=*/100);
  try {
    r.u8("flag");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset 100"),
              std::string::npos)
        << e.what();
  }
}

TEST(SerializeReader, StrLengthGuardRejectsCorruptPrefix) {
  Writer w;
  w.u32(50);  // length prefix claiming 50 bytes that do not follow
  EXPECT_THROW(Reader(w.data()).str("name", /*maxLen=*/16),
               SerializationError);
  Writer big;
  big.str(std::string(32, 'x'));
  EXPECT_THROW(Reader(big.data()).str("name", /*maxLen=*/16),
               SerializationError);
}

TEST(SerializeReader, RequireExhaustedRejectsTrailingBytes) {
  Writer w;
  w.u32(1);
  w.u8(0);
  Reader r(w.data());
  r.u32("value");
  try {
    r.requireExhausted("chp");
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chp"), std::string::npos) << what;
    EXPECT_NE(what.find("trailing"), std::string::npos) << what;
  }
}

// ---- envelope --------------------------------------------------------------

std::string snapshotBytes(const std::string& repr = "exact",
                          std::uint32_t numQubits = 3) {
  Writer payload;
  payload.u32(numQubits);
  payload.f64(0.5);
  std::ostringstream out;
  writeSnapshot(out, repr, numQubits, payload.data());
  return out.str();
}

TEST(SerializeEnvelope, RoundTripPreservesHeaderAndPayload) {
  Writer payload;
  payload.u32(3);
  payload.f64(0.5);
  std::stringstream stream(snapshotBytes());
  const Snapshot snap = readSnapshot(stream);
  EXPECT_EQ(snap.info.formatVersion, kFormatVersion);
  EXPECT_EQ(snap.info.representation, "exact");
  EXPECT_EQ(snap.info.numQubits, 3u);
  EXPECT_EQ(snap.payload, payload.data());
  // The payload's absolute offset: magic(8) + version(4) + repr(4+5) +
  // numQubits(4) + payloadSize(8).
  EXPECT_EQ(snap.info.payloadOffset, 8u + 4 + 4 + 5 + 4 + 8);
}

TEST(SerializeEnvelope, InfoPeekReadsHeaderOnly) {
  std::stringstream stream(snapshotBytes("qmdd", 7));
  const SnapshotInfo info = readSnapshotInfo(stream);
  EXPECT_EQ(info.formatVersion, kFormatVersion);
  EXPECT_EQ(info.representation, "qmdd");
  EXPECT_EQ(info.numQubits, 7u);
}

TEST(SerializeEnvelope, RejectsBadMagic) {
  std::string bytes = snapshotBytes();
  bytes[0] = 'X';
  std::stringstream stream(bytes);
  try {
    readSnapshot(stream);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
}

TEST(SerializeEnvelope, RejectsFutureAndZeroVersions) {
  // The version field sits right after the 8-byte magic and is validated
  // before the checksum, so patching it yields the version diagnostic.
  for (const std::uint8_t version : {std::uint8_t{2}, std::uint8_t{0}}) {
    std::string bytes = snapshotBytes();
    bytes[8] = static_cast<char>(version);
    std::stringstream stream(bytes);
    try {
      readSnapshot(stream);
      FAIL() << "expected SerializationError for version " << int(version);
    } catch (const SerializationError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
          << e.what();
    }
  }
}

TEST(SerializeEnvelope, EveryByteFlipIsRejected) {
  // The checksum spans every preceding byte, so whatever the semantic
  // checks miss, the checksum catches — no single-byte corruption loads.
  const std::string good = snapshotBytes();
  {
    std::stringstream stream(good);
    EXPECT_NO_THROW(readSnapshot(stream));
  }
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bytes = good;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x5a);
    std::stringstream stream(bytes);
    EXPECT_THROW(readSnapshot(stream), SerializationError) << "byte " << i;
  }
}

TEST(SerializeEnvelope, EveryTruncationIsRejected) {
  const std::string good = snapshotBytes();
  for (std::size_t len = 0; len < good.size(); ++len) {
    std::stringstream stream(good.substr(0, len));
    EXPECT_THROW(readSnapshot(stream), SerializationError) << "length " << len;
  }
}

}  // namespace
}  // namespace sliq::serialize
