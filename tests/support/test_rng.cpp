#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sliq {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroOrOneBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, FlipIsBalanced) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.flip();
  EXPECT_NEAR(heads, 5000, 300);
}

// ---- RngState::split substreams -------------------------------------------

TEST(RngSplit, DeterministicPureFunctionOfSeedAndIndex) {
  const RngState root{42};
  EXPECT_EQ(root.split(7).seed, root.split(7).seed);
  Rng a = root.split(7).rng(), b = root.split(7).rng();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  // Deriving other streams in between must not perturb stream 7 — split is
  // a value operation, not a stateful one (the thread-determinism anchor).
  const std::uint64_t first = root.split(7).rng().next();
  (void)root.split(3);
  (void)root.split(1000000);
  EXPECT_EQ(root.split(7).rng().next(), first);
}

TEST(RngSplit, StreamsAndRootsDiffer) {
  const RngState root{42};
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i) seeds.insert(root.split(i).seed);
  EXPECT_EQ(seeds.size(), 4096u);  // no collisions across stream indices
  // Different roots land in unrelated parts of seed space.
  EXPECT_NE(RngState{1}.split(0).seed, RngState{2}.split(0).seed);
  // Sequential indices avalanche: adjacent streams share no prefix.
  Rng s0 = root.split(0).rng(), s1 = root.split(1).rng();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += s0.next() == s1.next();
  EXPECT_LT(equal, 4);
}

TEST(RngSplit, SubstreamsAreStatisticallyIndependent) {
  // Pool draws across many substreams of one root: uniformity must hold
  // jointly, not just per stream. Also check pairwise cross-correlation of
  // the leading bits between adjacent streams.
  const RngState root{20240515};
  const unsigned kStreams = 64, kDraws = 512;
  std::vector<int> buckets(16, 0);
  double bitAgreement = 0;
  for (unsigned s = 0; s < kStreams; ++s) {
    Rng a = root.split(s).rng();
    Rng b = root.split(s + 1).rng();
    for (unsigned d = 0; d < kDraws; ++d) {
      const std::uint64_t va = a.next();
      ++buckets[va >> 60];
      bitAgreement += ((va >> 63) == (b.next() >> 63)) ? 1 : 0;
    }
  }
  const double total = double(kStreams) * kDraws;
  double chiSq = 0;
  for (const int c : buckets) {
    const double expected = total / 16;
    chiSq += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chiSq, 37.70);  // chi²(15) 99.9th percentile
  // Top bits of adjacent streams agree ~half the time.
  EXPECT_NEAR(bitAgreement / total, 0.5, 0.02);
}

TEST(RngSplit, NestedSplitsDiffer) {
  const RngState root{7};
  EXPECT_NE(root.split(0).split(1).seed, root.split(1).split(0).seed);
  EXPECT_NE(root.split(0).split(0).seed, root.split(0).seed);
}

}  // namespace
}  // namespace sliq
