#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sliq {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroOrOneBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Rng, FlipIsBalanced) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.flip();
  EXPECT_NEAR(heads, 5000, 300);
}

}  // namespace
}  // namespace sliq
