// Audit-subsystem tests (DESIGN.md §10): clean states across all four
// engines pass their deep structural audits; deliberately corrupted
// structures are detected with diagnostics naming the structure and node;
// the teardown leak accounting sees deliberate leaks.
//
// Corruption is injected through AuditCorruptor, the test-only friend each
// auditable class declares. Every corruption is undone after the expected
// failure so teardown (and the global leak-check environment) stays green.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"
#include "core/simulator.hpp"
#include "qmdd/complex_table.hpp"
#include "qmdd/qmdd.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "stabilizer/stabilizer.hpp"
#include "statevector/statevector.hpp"
#include "support/audit.hpp"
#include "support/rng.hpp"

namespace sliq::bdd {

// Test-only corruption hooks (friend of BddManager).
struct AuditCorruptor {
  using Node = BddManager::Node;

  /// Files a copy of e's node into the unique table — a duplicate
  /// (var, then, else) triple, the canonical canonicity violation.
  /// Returns the injected index for removeDuplicate.
  static std::uint32_t injectDuplicate(BddManager& mgr, Edge e) {
    const std::uint32_t src = e.index();
    Node copy = mgr.nodes_[src];
    copy.ref = 1;
    const std::uint32_t idx = static_cast<std::uint32_t>(mgr.nodes_.size());
    auto& st = mgr.subtables_[mgr.varToLevel_[copy.var]];
    auto& head =
        st.buckets[BddManager::nodeHash(copy.var, copy.hi, copy.lo) &
                   (st.buckets.size() - 1)];
    copy.next = head;
    mgr.nodes_.push_back(copy);
    head = idx;
    ++st.count;
    ++mgr.liveNodes_;
    return idx;
  }

  static void removeDuplicate(BddManager& mgr, std::uint32_t idx) {
    const Node n = mgr.nodes_[idx];
    auto& st = mgr.subtables_[mgr.varToLevel_[n.var]];
    auto& head = st.buckets[BddManager::nodeHash(n.var, n.hi, n.lo) &
                            (st.buckets.size() - 1)];
    head = n.next;  // the duplicate was chained in at the head
    mgr.nodes_.pop_back();
    --st.count;
    --mgr.liveNodes_;
  }

  static void dropRef(BddManager& mgr, Edge e) {
    --mgr.nodes_[e.index()].ref;
  }
  static void addRef(BddManager& mgr, Edge e) {
    ++mgr.nodes_[e.index()].ref;
  }
};

namespace {

BddManager::Config twoVarConfig() {
  BddManager::Config cfg;
  cfg.initialVars = 2;
  return cfg;
}

TEST(BddAudit, CleanManagerPasses) {
  BddManager mgr(twoVarConfig());
  const Bdd x0 = makeVar(mgr, 0);
  const Bdd x1 = makeVar(mgr, 1);
  const Bdd f = (x0 & x1) | (~x0 & ~x1);
  EXPECT_NO_THROW(mgr.auditInvariants());
  (void)f;
}

TEST(BddAudit, DetectsDuplicateUniqueTableTriple) {
  BddManager mgr(twoVarConfig());
  Bdd f;
  {
    const Bdd x0 = makeVar(mgr, 0);
    const Bdd x1 = makeVar(mgr, 1);
    f = x0 & x1;
  }
  const std::uint32_t injected =
      AuditCorruptor::injectDuplicate(mgr, f.edge());
  try {
    mgr.auditInvariants();
    FAIL() << "duplicate triple not detected";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "bdd-unique-table");
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("node"), std::string::npos)
        << e.what();
  }
  AuditCorruptor::removeDuplicate(mgr, injected);
  EXPECT_NO_THROW(mgr.auditInvariants());
}

TEST(BddAudit, DetectsRefcountUnderflow) {
  BddManager mgr(twoVarConfig());
  Bdd f;
  {
    const Bdd x0 = makeVar(mgr, 0);
    const Bdd x1 = makeVar(mgr, 1);
    f = x0 & x1;
  }
  // The root's THEN child (the x1 projection) is referenced only as a
  // parent edge now that the handles above are gone.
  const Edge child = mgr.thenEdge(f.edge());
  ASSERT_FALSE(BddManager::isTerminal(child));
  AuditCorruptor::dropRef(mgr, child);
  try {
    mgr.auditInvariants();
    FAIL() << "refcount underflow not detected";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "bdd-unique-table");
    EXPECT_NE(std::string(e.what()).find("underflow"), std::string::npos)
        << e.what();
  }
  AuditCorruptor::addRef(mgr, child);
  EXPECT_NO_THROW(mgr.auditInvariants());
}

TEST(BddAudit, TeardownReportsLeakedExternalReference) {
  ASSERT_EQ(audit::leakedNodeCount(), 0u) << audit::leakReport();
  {
    BddManager mgr(twoVarConfig());
    // An external reference taken and never returned — the class of bug
    // the R1 lint rule and this accounting exist to catch.
    mgr.ref(mgr.varEdge(0));
  }
  EXPECT_EQ(audit::leakedNodeCount(), 1u) << audit::leakReport();
  EXPECT_NE(audit::leakReport().find("bdd"), std::string::npos);
  audit::resetLeakStats();
  EXPECT_EQ(audit::leakedNodeCount(), 0u);
}

}  // namespace
}  // namespace sliq::bdd

namespace sliq::qmdd {

// Test-only corruption hooks (friend of QmddManager / ComplexTable /
// QmddSimulator).
struct AuditCorruptor {
  static std::int32_t bumpRootLevel(QmddSimulator& sim) {
    QmddManager& mgr = sim.mgr_;
    const std::int32_t old = mgr.vNodes_[mgr.root().node].level;
    mgr.vNodes_[mgr.root().node].level = old + 7;
    return old;
  }
  static void setRootLevel(QmddSimulator& sim, std::int32_t level) {
    QmddManager& mgr = sim.mgr_;
    mgr.vNodes_[mgr.root().node].level = level;
  }
  static void pushDuplicateValue(ComplexTable& ct, CIndex of) {
    ct.values_.push_back(ct.values_[of]);
  }
  static void popValue(ComplexTable& ct) { ct.values_.pop_back(); }
};

namespace {

TEST(QmddAudit, CleanSimulatorPasses) {
  QmddSimulator sim(3);
  QuantumCircuit c(3);
  c.h(0).cx(0, 1).t(1).cx(1, 2).h(2);
  sim.run(c);
  EXPECT_NO_THROW(sim.auditInvariants());
}

TEST(QmddAudit, DetectsCorruptedNodeLevel) {
  QmddSimulator sim(1);
  QuantumCircuit c(1);
  c.h(0);
  sim.run(c);
  const std::int32_t old = AuditCorruptor::bumpRootLevel(sim);
  try {
    sim.auditInvariants();
    FAIL() << "corrupted level not detected";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "qmdd-vector-table");
  }
  AuditCorruptor::setRootLevel(sim, old);
  EXPECT_NO_THROW(sim.auditInvariants());
}

TEST(QmddAudit, ComplexTableDetectsDuplicateEntry) {
  ComplexTable ct;
  (void)ct.lookup(Complex{0.25, -0.5});
  EXPECT_NO_THROW(ct.auditInvariants());
  // A second copy of an interned value, bypassing lookup's dedup.
  AuditCorruptor::pushDuplicateValue(ct, ct.one());
  try {
    ct.auditInvariants();
    FAIL() << "duplicate complex-table entry not detected";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "qmdd-complex-table");
  }
  AuditCorruptor::popValue(ct);
  EXPECT_NO_THROW(ct.auditInvariants());
}

TEST(QmddAudit, SurvivesCollapseAndGc) {
  QmddSimulator sim(4);
  QuantumCircuit c(4);
  c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).t(0).h(3);
  sim.run(c);
  (void)sim.measure(1, 0.3);
  EXPECT_NO_THROW(sim.auditInvariants());
}

}  // namespace
}  // namespace sliq::qmdd

namespace sliq {

// Test-only corruption hooks (friend of StabilizerSimulator /
// StatevectorSimulator / SliqSimulator).
struct AuditCorruptor {
  static void flipStabilizerBit(StabilizerSimulator& sim) {
    sim.rows_[sim.n_].x[0] ^= 1u;  // stabilizer 0, qubit 0 X bit
  }
  static void corruptAmplitude(StatevectorSimulator& sim) {
    sim.state_[0] = std::numeric_limits<double>::quiet_NaN();
  }
  static void restoreAmplitude(StatevectorSimulator& sim,
                               StatevectorSimulator::Amplitude a) {
    sim.state_[0] = a;
  }
  static std::int64_t corruptKScalar(SliqSimulator& sim) {
    const std::int64_t old = sim.k_;
    sim.k_ = -1;
    return old;
  }
  static void restoreKScalar(SliqSimulator& sim, std::int64_t k) {
    sim.k_ = k;
  }
};

namespace {

TEST(TableauAudit, CleanTableauPassesThroughCliffordsAndMeasurement) {
  StabilizerSimulator sim(5);
  QuantumCircuit c(5);
  c.h(0).cx(0, 1).s(1).cx(1, 2).cz(2, 3).h(3).swap(3, 4).x(4);
  sim.run(c);
  EXPECT_NO_THROW(sim.auditInvariants());
  (void)sim.measure(2, 0.7);
  (void)sim.reset(0, 0.2);
  EXPECT_NO_THROW(sim.auditInvariants());
}

TEST(TableauAudit, DetectsBrokenSymplecticPairing) {
  StabilizerSimulator sim(2);
  QuantumCircuit c(2);
  c.h(0).cx(0, 1);
  sim.run(c);
  AuditCorruptor::flipStabilizerBit(sim);
  try {
    sim.auditInvariants();
    FAIL() << "broken symplectic pairing not detected";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "chp-tableau");
    EXPECT_NE(std::string(e.what()).find("stabilizer"), std::string::npos)
        << e.what();
  }
  AuditCorruptor::flipStabilizerBit(sim);
  EXPECT_NO_THROW(sim.auditInvariants());
}

TEST(StatevectorAudit, DetectsNaNAmplitude) {
  StatevectorSimulator sim(2);
  QuantumCircuit c(2);
  c.h(0).cx(0, 1);
  sim.run(c);
  EXPECT_NO_THROW(sim.auditInvariants());
  const auto saved = sim.amplitude(0);
  AuditCorruptor::corruptAmplitude(sim);
  try {
    sim.auditInvariants();
    FAIL() << "NaN amplitude not detected";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "statevector");
  }
  AuditCorruptor::restoreAmplitude(sim, saved);
  EXPECT_NO_THROW(sim.auditInvariants());
}

TEST(SliqAudit, CleanStatePassesThroughGatesAndMeasurement) {
  SliqSimulator sim(4);
  QuantumCircuit c(4);
  c.h(0).cx(0, 1).t(1).h(2).ccx(0, 2, 3).s(3);
  sim.run(c);
  EXPECT_NO_THROW(sim.auditInvariants());
  (void)sim.measure(1, 0.4);
  EXPECT_NO_THROW(sim.auditInvariants());
}

TEST(SliqAudit, DetectsKScalarOutOfRange) {
  SliqSimulator sim(2);
  QuantumCircuit c(2);
  c.h(0).cx(0, 1);
  sim.run(c);
  const std::int64_t old = AuditCorruptor::corruptKScalar(sim);
  try {
    sim.auditInvariants();
    FAIL() << "k-scalar corruption not detected";
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "sliq-bitsliced-state");
    EXPECT_NE(std::string(e.what()).find("k-scalar"), std::string::npos)
        << e.what();
  }
  AuditCorruptor::restoreKScalar(sim, old);
  EXPECT_NO_THROW(sim.auditInvariants());
}

TEST(EngineAudit, AllEnginesAdvertiseAndPassAudits) {
  for (const std::string& name : engineNames()) {
    auto engine = makeEngine(name, 3);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_TRUE(engine->capabilities().invariantAudit) << name;
    QuantumCircuit c(3);
    c.h(0).cx(0, 1).cx(1, 2);
    engine->run(c);
    EXPECT_NO_THROW(engine->auditInvariants()) << name;
  }
}

TEST(EngineAudit, AuditsPassAfterDynamicRun) {
  QuantumCircuit c(3);
  c.declareClassicalRegister(2);
  c.h(0).cx(0, 1).measure(1, 0).reset(0);
  c.onlyIf(1, Gate{GateKind::kX, {2}, {}});
  for (const std::string& name : engineNames()) {
    auto engine = makeEngine(name, 3);
    Rng rng(12345);
    engine->runDynamic(c, rng);
    EXPECT_NO_THROW(engine->auditInvariants()) << name;
  }
}

TEST(WithAudit, RunsAuditAndForwardsResult) {
  SliqSimulator sim(2);
  const double p = audit::withAudit(sim, [&] {
    QuantumCircuit c(2);
    c.h(0).cx(0, 1);
    sim.run(c);
    return sim.totalProbability();
  });
  EXPECT_NEAR(p, 1.0, 1e-12);
  // Void-returning callables audit too.
  audit::withAudit(sim, [&] { (void)sim.measure(0, 0.9); });
}

TEST(WithAudit, PropagatesAuditErrorFromCorruptedState) {
  SliqSimulator sim(2);
  QuantumCircuit c(2);
  c.h(0);
  sim.run(c);
  const std::int64_t old = AuditCorruptor::corruptKScalar(sim);
  EXPECT_THROW(audit::withAudit(sim, [] {}), audit::AuditError);
  AuditCorruptor::restoreKScalar(sim, old);
}

TEST(AuditApi, ErrorCarriesStructureAndDetail) {
  try {
    audit::fail("demo-structure", "node 42 misfiled");
    FAIL();
  } catch (const audit::AuditError& e) {
    EXPECT_EQ(e.structure(), "demo-structure");
    EXPECT_NE(std::string(e.what()).find("node 42"), std::string::npos);
  }
}

TEST(AuditApi, LiveStructureCountTracksManagers) {
  const std::size_t before = audit::liveStructureCount();
  {
    SliqSimulator exact(2);
    qmdd::QmddSimulator dd(2);
    EXPECT_EQ(audit::liveStructureCount(), before + 2);
  }
  EXPECT_EQ(audit::liveStructureCount(), before);
}

}  // namespace
}  // namespace sliq
