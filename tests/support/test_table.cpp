#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/memuse.hpp"

namespace sliq {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t({"#Qubits", "Time(s)"});
  t.addRow({"40", "0.82"});
  t.addRow({"500", "2485.64"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("#Qubits"), std::string::npos);
  EXPECT_NE(out.find("2485.64"), std::string::npos);
  // All lines are equally wide (aligned columns).
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(AsciiTable, RejectsMismatchedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(AsciiTable, EmptyTablePrintsHeaderAndRule) {
  AsciiTable t({"col"});
  std::ostringstream os;
  t.print(os);
  // Header line + separator rule, nothing else.
  EXPECT_EQ(os.str(), "| col |\n|-----|\n");
}

TEST(AsciiTable, EmptyCellsPadToColumnWidth) {
  AsciiTable t({"name", "value"});
  t.addRow({"", ""});
  t.addRow({"total", "12"});
  std::ostringstream os;
  t.print(os);
  std::istringstream lines(os.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(AsciiTable, CellWiderThanHeaderSetsColumnWidth) {
  AsciiTable t({"x"});
  t.addRow({"very-long-cell"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // The header line pads out to the widest cell.
  EXPECT_NE(out.find("| x              |"), std::string::npos) << out;
}

TEST(FormatSeconds, PaperStyle) {
  EXPECT_EQ(formatSeconds(0.004), "<0.01");
  EXPECT_EQ(formatSeconds(0.82), "0.82");
  EXPECT_EQ(formatSeconds(66.949), "66.95");
}

TEST(FormatSeconds, BoundaryAtOneHundredth) {
  // 0.01 is the first value printed numerically; just below stays "<0.01".
  EXPECT_EQ(formatSeconds(0.01), "0.01");
  EXPECT_EQ(formatSeconds(0.0099999), "<0.01");
  EXPECT_EQ(formatSeconds(0.0), "<0.01");
}

TEST(FormatSeconds, LargeValuesKeepTwoDecimals) {
  EXPECT_EQ(formatSeconds(2485.639), "2485.64");
  EXPECT_EQ(formatSeconds(86400.0), "86400.00");
}

TEST(Memuse, ReportsPlausibleRss) {
  const std::size_t rss = currentRssBytes();
  // On Linux this must be nonzero and at least a few hundred KiB.
  EXPECT_GT(rss, 100u * 1024);
  EXPECT_GE(peakRssBytes(), rss);
}

}  // namespace
}  // namespace sliq
