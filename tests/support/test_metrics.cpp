// Metrics registry unit tests (support/metrics.hpp): disabled no-op
// behavior, scalar semantics (add vs counterSet, gaugeSet vs gaugeMax),
// span/timer accounting, deterministic merge, the sliq.run_report.v1 JSON
// contract and the Chrome trace-event export shape.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sliq::metrics {
namespace {

TEST(MetricsRegistry, DisabledRecordsNothing) {
  Registry reg;  // default-constructed: disabled
  EXPECT_FALSE(reg.enabled());
  reg.add("c");
  reg.counterSet("c2", 7);
  reg.gaugeSet("g", 1.5);
  reg.gaugeMax("g2", 2.5);
  reg.timerAdd("t", 0.25);
  reg.instant("i");
  EXPECT_EQ(reg.beginSpan("span"), -1);
  reg.endSpan("span", -1);
  { const ScopedSpan span(reg, "scoped"); }

  const Snapshot snap = reg.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.timers.empty());
  EXPECT_TRUE(reg.traceEvents().empty());
}

TEST(MetricsRegistry, ScopedSpanIsNullSafe) {
  const ScopedSpan span(nullptr, "nothing");  // must not crash
}

TEST(MetricsRegistry, CounterAddAndSetSemantics) {
  Registry reg;
  reg.enable();
  reg.add("events");           // 1
  reg.add("events", 4);        // 5
  reg.counterSet("mirror", 42);
  reg.counterSet("mirror", 42);  // idempotent absolute mirror
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("events"), 5u);
  EXPECT_EQ(snap.counters.at("mirror"), 42u);
}

TEST(MetricsRegistry, GaugeSetOverwritesGaugeMaxHighWaters) {
  Registry reg;
  reg.enable();
  reg.gaugeSet("level", 3.0);
  reg.gaugeSet("level", 1.0);  // last write wins
  reg.gaugeMax("peak", 3.0);
  reg.gaugeMax("peak", 1.0);  // high-water mark keeps the max
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.gauges.at("level"), 1.0);
  EXPECT_EQ(snap.gauges.at("peak"), 3.0);
}

TEST(MetricsRegistry, InstantBumpsCounterAndRecordsEvent) {
  Registry reg;
  reg.enable();
  reg.instant("gc");
  reg.instant("gc");
  EXPECT_EQ(reg.snapshot().counters.at("gc"), 2u);
  const std::vector<TraceEvent> events = reg.traceEvents();
  ASSERT_EQ(events.size(), 2u);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.name, "gc");
    EXPECT_EQ(e.phase, TraceEvent::Phase::kInstant);
  }
}

TEST(MetricsRegistry, SpansAccumulateTimersAndNestLifo) {
  Registry reg;
  reg.enable();
  {
    const ScopedSpan outer(reg, "outer");
    { const ScopedSpan inner(reg, "inner"); }
    { const ScopedSpan inner(reg, "inner"); }
  }
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.timers.at("outer").count, 1u);
  EXPECT_EQ(snap.timers.at("inner").count, 2u);
  EXPECT_GE(snap.timers.at("outer").seconds, snap.timers.at("inner").seconds);

  // Trace: B/E pairs in LIFO order — outer.B inner.B inner.E inner.B
  // inner.E outer.E, every timestamp non-decreasing.
  const std::vector<TraceEvent> events = reg.traceEvents();
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events.front().name, "outer");
  EXPECT_EQ(events.front().phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events.back().name, "outer");
  EXPECT_EQ(events.back().phase, TraceEvent::Phase::kEnd);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].micros, events[i].micros) << i;
}

TEST(MetricsRegistry, MergeSumsCountersMaxesGaugesAppendsEvents) {
  Registry a, b;
  a.enable(0);
  b.enable(1);  // worker track
  a.add("shots", 3);
  b.add("shots", 4);
  a.gaugeMax("peak", 10);
  b.gaugeMax("peak", 20);
  a.timerAdd("work", 0.5);
  b.timerAdd("work", 0.25);
  b.instant("evt");

  a.merge(b);
  const Snapshot snap = a.snapshot();
  EXPECT_EQ(snap.counters.at("shots"), 7u);
  EXPECT_EQ(snap.gauges.at("peak"), 20.0);
  EXPECT_DOUBLE_EQ(snap.timers.at("work").seconds, 0.75);
  EXPECT_EQ(snap.timers.at("work").count, 2u);
  // b's instant arrives with b's track label intact.
  bool sawWorkerEvent = false;
  for (const TraceEvent& e : a.traceEvents())
    sawWorkerEvent = sawWorkerEvent || (e.name == "evt" && e.track == 1);
  EXPECT_TRUE(sawWorkerEvent);
}

TEST(MetricsRegistry, ResetClearsMetricsKeepsEnabled) {
  Registry reg;
  reg.enable();
  reg.add("c");
  reg.instant("i");
  reg.reset();
  EXPECT_TRUE(reg.enabled());
  EXPECT_TRUE(reg.snapshot().counters.empty());
  EXPECT_TRUE(reg.traceEvents().empty());
  reg.add("c");  // still recording after reset
  EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

TEST(MetricsRegistry, ConcurrentAddsSum) {
  Registry reg;
  reg.enable();
  constexpr int kPerThread = 10000;
  std::thread t1([&] { for (int i = 0; i < kPerThread; ++i) reg.add("n"); });
  std::thread t2([&] { for (int i = 0; i < kPerThread; ++i) reg.add("n"); });
  t1.join();
  t2.join();
  EXPECT_EQ(reg.snapshot().counters.at("n"),
            static_cast<std::uint64_t>(2 * kPerThread));
}

TEST(MetricsRegistry, EpochIsMonotonic) {
  const std::int64_t a = epochMicros();
  const std::int64_t b = epochMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

// ---- sliq.run_report.v1 ----------------------------------------------------

TEST(RunReport, JsonIsStableAndKeySorted) {
  RunReport report;
  report.engine = "exact";
  report.qubits = 16;
  report.metrics.counters["b.second"] = 2;
  report.metrics.counters["a.first"] = 1;
  report.metrics.gauges["z"] = 0.5;
  report.metrics.timers["phase"] = TimerValue{0.125, 3};

  const std::string json = report.toJson();
  EXPECT_EQ(json, report.toJson());  // byte-stable for identical values
  EXPECT_NE(json.find("\"schema\":\"sliq.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"engine\":\"exact\""), std::string::npos);
  EXPECT_NE(json.find("\"qubits\":16"), std::string::npos);
  // std::map serialization: a.first before b.second.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
}

TEST(RunReport, TextRenderingMentionsEveryMetric) {
  RunReport report;
  report.engine = "chp";
  report.qubits = 4;
  report.metrics.counters["gates.applied"] = 9;
  report.metrics.gauges["threads.resolved"] = 2;
  report.metrics.timers["engine.run"] = TimerValue{0.5, 1};
  const std::string text = report.toText();
  EXPECT_NE(text.find("gates.applied"), std::string::npos);
  EXPECT_NE(text.find("threads.resolved"), std::string::npos);
  EXPECT_NE(text.find("engine.run"), std::string::npos);
}

TEST(RunReport, FormatDoubleRoundTripsExactly) {
  for (const double v : {0.1, 1.0 / 3.0, 12345.6789, 1e-17, 2.5e300}) {
    const std::string s = formatDouble(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(RunReport, PinCommonSchemaKeysInsertsWithoutOverwriting) {
  Snapshot snap;
  snap.counters["gates.applied"] = 11;  // pre-existing value survives
  pinCommonSchemaKeys(snap);
  EXPECT_EQ(snap.counters.at("gates.applied"), 11u);
  for (const char* key : {"gates.pre_fusion", "gates.post_fusion", "gc.runs",
                          "cache.lookups", "cache.hits"})
    EXPECT_EQ(snap.counters.at(key), 0u) << key;
  for (const char* key :
       {"threads.resolved", "rss.high_water_bytes", "state.bytes"})
    EXPECT_EQ(snap.gauges.at(key), 0.0) << key;
}

// ---- Chrome trace export ---------------------------------------------------

TEST(ChromeTrace, ExportsBalancedSpansAndInstants) {
  Registry reg;
  reg.enable(3);
  { const ScopedSpan span(reg, "phase"); }
  reg.instant("marker");

  std::ostringstream os;
  reg.writeChromeTrace(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"phase\""), std::string::npos);
  EXPECT_NE(trace.find("\"marker\""), std::string::npos);
  // The registry's logical track labels the events.
  EXPECT_NE(trace.find("\"tid\":3"), std::string::npos);

  // Count B and E occurrences: every span export is balanced.
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = trace.find("\"ph\":\"B\"", pos)) != std::string::npos) {
    ++begins;
    ++pos;
  }
  pos = 0;
  while ((pos = trace.find("\"ph\":\"E\"", pos)) != std::string::npos) {
    ++ends;
    ++pos;
  }
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(begins, 1u);
}

}  // namespace
}  // namespace sliq::metrics
