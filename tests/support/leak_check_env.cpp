// Global teardown leak check, linked into every test binary (see
// tests/CMakeLists.txt). After the last test in a binary runs, every
// BddManager / QmddManager must have been destroyed, and no destructor may
// have reported leaked nodes or surplus external references. A failure here
// means some test (or the library) let a handle outlive its manager or
// dropped refcounts on the floor — exactly the class of bug the audit
// subsystem exists to catch (DESIGN.md §10).
#include <gtest/gtest.h>

#include "support/audit.hpp"

namespace {

class LeakCheckEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    EXPECT_EQ(sliq::audit::liveStructureCount(), 0u)
        << sliq::audit::leakReport();
    EXPECT_EQ(sliq::audit::leakedNodeCount(), 0u)
        << sliq::audit::leakReport();
  }
};

// Registered via static initialization so simply linking this TU arms the
// check; gtest owns and frees the environment.
const ::testing::Environment* const kLeakCheckEnv =
    ::testing::AddGlobalTestEnvironment(new LeakCheckEnvironment);

}  // namespace
