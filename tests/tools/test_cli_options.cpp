// Flag-combination validation for the sliqsim CLI (tools/cli_options.hpp):
// the pure rules main() applies before doing any work, unit-tested without
// spawning the binary.
#include <gtest/gtest.h>

#include <string>

#include "circuit/circuit.hpp"
#include "cli_options.hpp"
#include "warm_cache.hpp"

namespace sliq::cli {
namespace {

Options base() {
  Options opt;
  opt.path = "circuit.qasm";
  return opt;
}

TEST(CliOptions, DefaultsAreValid) {
  EXPECT_EQ(validateOptions(base()), "");
}

TEST(CliOptions, IdealModeQueriesAreValidTogether) {
  Options opt = base();
  opt.shots = 100;
  opt.probs = true;
  opt.amps = 4;
  opt.stats = true;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, TrajectoriesRequireNoise) {
  Options opt = base();
  opt.trajectoriesGiven = true;
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--trajectories"), std::string::npos) << error;
  EXPECT_NE(error.find("--noise"), std::string::npos) << error;
  opt.noisePath = "model.txt";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ThreadsValidWithAndWithoutNoise) {
  // --threads without --noise drives the single-circuit dense kernels
  // (Engine::setExecutionThreads); with --noise it parameterizes the
  // trajectory runner. Both combinations are coherent.
  Options opt = base();
  opt.threadsGiven = true;
  opt.threads = 4;
  EXPECT_EQ(validateOptions(opt), "");
  opt.noisePath = "model.txt";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, NoiseRejectsIdealStateQueries) {
  for (int which = 0; which < 3; ++which) {
    Options opt = base();
    opt.noisePath = "model.txt";
    if (which == 0) opt.shots = 16;
    if (which == 1) opt.probs = true;
    if (which == 2) opt.amps = 2;
    const std::string error = validateOptions(opt);
    EXPECT_NE(error.find("--noise"), std::string::npos) << which << error;
  }
}

TEST(CliOptions, TelemetryComposesWithEveryMode) {
  // --stats/--trace report on the run itself (not the ideal state), so
  // unlike --shots/--probs/--amps they stay valid under --noise: the report
  // aggregates the trajectory workers.
  Options opt = base();
  opt.stats = true;
  opt.tracePath = "out.trace.json";
  EXPECT_EQ(validateOptions(opt), "");
  opt.noisePath = "model.txt";
  EXPECT_EQ(validateOptions(opt), "");
  opt.observablePath = "obs.txt";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, StatsFormatMustBeTextOrJson) {
  Options opt = base();
  opt.stats = true;
  opt.statsFormat = "json";
  EXPECT_EQ(validateOptions(opt), "");
  opt.statsFormat = "text";
  EXPECT_EQ(validateOptions(opt), "");
  opt.statsFormat = "xml";
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--stats"), std::string::npos) << error;
  // The format of an unused --stats is irrelevant (default text anyway).
  opt.stats = false;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ObservableRejectsShots) {
  // Expectations are computed analytically; shot sampling estimates the
  // same quantity with noise, so combining them is a category error.
  Options opt = base();
  opt.observablePath = "obs.txt";
  opt.shots = 1000;
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--observable"), std::string::npos) << error;
  EXPECT_NE(error.find("--shots"), std::string::npos) << error;
}

TEST(CliOptions, ObservableAloneAndWithIdealQueriesIsValid) {
  Options opt = base();
  opt.observablePath = "obs.txt";
  EXPECT_EQ(validateOptions(opt), "");
  opt.probs = true;
  opt.amps = 4;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ObservableWithNoiseTrajectoriesThreadsIsValid) {
  // The noisy-expectation mode: --observable + --noise with the full
  // trajectory parameterization (determinism across --threads is pinned by
  // the trajectory-expectation tests and the CI diff smoke).
  Options opt = base();
  opt.observablePath = "obs.txt";
  opt.noisePath = "model.txt";
  opt.trajectoriesGiven = true;
  opt.trajectories = 500;
  opt.threadsGiven = true;
  opt.threads = 4;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ObservableWithNoiseStillRejectsShotsAndProbes) {
  Options opt = base();
  opt.observablePath = "obs.txt";
  opt.noisePath = "model.txt";
  opt.shots = 16;
  EXPECT_NE(validateOptions(opt), "");
  opt.shots = 0;
  opt.probs = true;
  EXPECT_NE(validateOptions(opt), "");
}

// ---- parseUnsigned (strict base 10) ---------------------------------------

TEST(CliParseUnsigned, ZeroPaddedValuesAreDecimalNotOctal) {
  // Regression: base-0 strtoull parsing read "010" as octal 8 and accepted
  // hex. Integer flags are documentation-plain base 10, always.
  std::uint64_t value = 0;
  EXPECT_EQ(parseUnsigned("--shots", "010", 1u << 30, &value), "");
  EXPECT_EQ(value, 10u);
  EXPECT_EQ(parseUnsigned("--shots", "0", 1u << 30, &value), "");
  EXPECT_EQ(value, 0u);
  EXPECT_EQ(parseUnsigned("--seed", "00042", ~std::uint64_t{0}, &value), "");
  EXPECT_EQ(value, 42u);
}

TEST(CliParseUnsigned, HexInputIsRejectedWithAClearMessage) {
  std::uint64_t value = 99;
  const std::string error =
      parseUnsigned("--seed", "0x10", ~std::uint64_t{0}, &value);
  EXPECT_NE(error.find("--seed"), std::string::npos) << error;
  EXPECT_NE(error.find("base-10"), std::string::npos) << error;
  EXPECT_NE(error.find("0x10"), std::string::npos) << error;
  EXPECT_EQ(value, 99u);  // *out untouched on failure
}

TEST(CliParseUnsigned, SignsGarbageEmptyAndOverflowAreRejected) {
  std::uint64_t value = 0;
  // strtoull silently wraps negative input — rejected up front instead.
  EXPECT_NE(parseUnsigned("--shots", "-1", 100, &value), "");
  EXPECT_NE(parseUnsigned("--shots", "+5", 100, &value), "");
  EXPECT_NE(parseUnsigned("--shots", "12abc", 100, &value), "");
  EXPECT_NE(parseUnsigned("--shots", "", 100, &value), "");
  EXPECT_NE(parseUnsigned("--shots", nullptr, 100, &value), "");
  EXPECT_NE(parseUnsigned("--shots", "18446744073709551616", ~std::uint64_t{0},
                          &value),
            "");  // 2^64 overflows
  const std::string error = parseUnsigned("--amps", "101", 100, &value);
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
  EXPECT_NE(error.find("100"), std::string::npos) << error;
}

// ---- parseCountsLine (shard histogram rows) --------------------------------

TEST(CliParseCountsLine, ParsesHistogramRowsAndSkipsNarration) {
  std::string bits;
  std::uint64_t count = 0;
  bool isCounts = false;
  EXPECT_EQ(parseCountsLine("01101  42", &bits, &count, &isCounts), "");
  EXPECT_TRUE(isCounts);
  EXPECT_EQ(bits, "01101");
  EXPECT_EQ(count, 42u);
  // Tabs and a trailing CR (files written on Windows) are tolerated.
  EXPECT_EQ(parseCountsLine("11\t7\r", &bits, &count, &isCounts), "");
  EXPECT_TRUE(isCounts);
  EXPECT_EQ(count, 7u);
  // Narration lines pass through silently.
  for (const char* line :
       {"loaded: ghz8.qasm: 8 qubits", "ran 100 trajectories in 0.1 s", ""}) {
    EXPECT_EQ(parseCountsLine(line, &bits, &count, &isCounts), "") << line;
    EXPECT_FALSE(isCounts) << line;
  }
}

TEST(CliParseCountsLine, MalformedRowsAreHardErrors) {
  std::string bits;
  std::uint64_t count = 0;
  bool isCounts = false;
  for (const char* line : {"0110", "0110  ", "0110  12x", "0110x 3"}) {
    const std::string error = parseCountsLine(line, &bits, &count, &isCounts);
    EXPECT_NE(error.find("malformed"), std::string::npos) << line << error;
    EXPECT_FALSE(isCounts) << line;
  }
}

// ---- snapshot / merge / warm-cache flag rules ------------------------------

TEST(CliOptions, SaveAndLoadStateComposeWithIdealQueries) {
  Options opt = base();
  opt.saveStatePath = "state.sliqstate";
  opt.shots = 16;
  opt.probs = true;
  EXPECT_EQ(validateOptions(opt), "");
  opt.loadStatePath = "prev.sliqstate";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, PureQueryModeNeedsNoCircuit) {
  Options opt;  // no path
  opt.loadStatePath = "state.sliqstate";
  opt.probs = true;
  opt.shots = 8;
  EXPECT_EQ(validateOptions(opt), "");
  // ...but circuit transforms are meaningless without a circuit.
  opt.optimize = true;
  EXPECT_NE(validateOptions(opt), "");
  opt.optimize = false;
  opt.modifyH = true;
  EXPECT_NE(validateOptions(opt), "");
}

TEST(CliOptions, SnapshotFlagsDoNotComposeWithNoise) {
  Options opt = base();
  opt.noisePath = "model.txt";
  opt.saveStatePath = "state.sliqstate";
  EXPECT_NE(validateOptions(opt), "");
  opt.saveStatePath.clear();
  opt.loadStatePath = "state.sliqstate";
  EXPECT_NE(validateOptions(opt), "");
  opt.loadStatePath.clear();
  opt.warmCacheDir = "cache/";
  EXPECT_NE(validateOptions(opt), "");
}

TEST(CliOptions, WarmCacheExcludesLoadState) {
  Options opt = base();
  opt.warmCacheDir = "cache/";
  EXPECT_EQ(validateOptions(opt), "");
  opt.loadStatePath = "state.sliqstate";
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--warm-cache"), std::string::npos) << error;
  EXPECT_NE(error.find("--load-state"), std::string::npos) << error;
}

TEST(CliOptions, TrajOffsetRequiresNoise) {
  Options opt = base();
  opt.trajOffsetGiven = true;
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--traj-offset"), std::string::npos) << error;
  EXPECT_NE(error.find("--noise"), std::string::npos) << error;
  opt.noisePath = "model.txt";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, MergeCountsIsStandalone) {
  Options opt;
  opt.mergeCounts = true;
  opt.inputs = {"shard0.txt", "shard1.txt"};
  EXPECT_EQ(validateOptions(opt), "");
  // No shard files at all is an error...
  opt.inputs.clear();
  EXPECT_NE(validateOptions(opt), "");
  // ...and so is combining with anything else, including --engine.
  opt.inputs = {"shard0.txt"};
  opt.engineGiven = true;
  EXPECT_NE(validateOptions(opt), "");
  opt.engineGiven = false;
  opt.shots = 8;
  EXPECT_NE(validateOptions(opt), "");
  opt.shots = 0;
  opt.noisePath = "model.txt";
  EXPECT_NE(validateOptions(opt), "");
}

// ---- dynamic-circuit rules (validateDynamic) ------------------------------

TEST(CliOptions, StaticCircuitsAreUnaffectedByDynamicRules) {
  Options opt = base();
  opt.observablePath = "obs.txt";
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/false), "");
  opt.shots = 16;
  opt.observablePath.clear();
  opt.probs = true;
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/false), "");
}

TEST(CliOptions, ObservableOnDynamicCircuitsIsAStrictError) {
  // Mirrors the facade's collapse restriction: a dynamic circuit's <O> is
  // conditioned on its classical outcome stream.
  Options opt = base();
  opt.observablePath = "obs.txt";
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  // ...with or without --noise.
  opt.noisePath = "model.txt";
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
}

TEST(CliOptions, DynamicShotsExcludeSingleFinalStateQueries) {
  Options opt = base();
  opt.shots = 16;
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  opt.probs = true;
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  opt.probs = false;
  opt.amps = 4;
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  // Without --shots the single post-run state exists and is queryable.
  opt.shots = 0;
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  // Dynamic circuits under --noise histogram the creg: fine without the
  // ideal-state queries (validateOptions already rejects those).
  Options noisy = base();
  noisy.noisePath = "model.txt";
  EXPECT_EQ(validateDynamic(noisy, /*circuitIsDynamic=*/true), "");
}

TEST(CliOptions, DynamicShotsExcludeSnapshots) {
  // Per-shot re-execution leaves no single final state to snapshot, and no
  // single run for a snapshot to resume.
  Options opt = base();
  opt.shots = 16;
  opt.saveStatePath = "state.sliqstate";
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/false), "");
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  opt.saveStatePath.clear();
  opt.loadStatePath = "state.sliqstate";
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  // A single dynamic run (no --shots) has a final state: both compose.
  opt.shots = 0;
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
}

TEST(CliOptions, WarmCacheRequiresStaticCircuit) {
  // Restoring a dynamic prefix would skip its measurement deviates and
  // desynchronize the shot stream from a straight-through run.
  Options opt = base();
  opt.warmCacheDir = "cache/";
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/false), "");
  const std::string error = validateDynamic(opt, /*circuitIsDynamic=*/true);
  EXPECT_NE(error.find("--warm-cache"), std::string::npos) << error;
}


TEST(CliOptions, IsAutoEngineMatchesCaseInsensitively) {
  Options opt = base();
  EXPECT_FALSE(isAutoEngine(opt));  // default engine, not given
  opt.engineGiven = true;
  for (const char* spelling : {"auto", "Auto", "AUTO", "aUtO"}) {
    opt.engine = spelling;
    EXPECT_TRUE(isAutoEngine(opt)) << spelling;
  }
  for (const char* concrete : {"exact", "chp", "auto2", "aut", "autoo"}) {
    opt.engine = concrete;
    EXPECT_FALSE(isAutoEngine(opt)) << concrete;
  }
  // An un-given engine named "auto" by default initialization would not
  // trigger dispatch either: the flag must be explicit.
  Options silent = base();
  silent.engine = "auto";
  EXPECT_FALSE(isAutoEngine(silent));
}

TEST(CliOptions, AutoEngineRejectsLoadState) {
  // Pinned decision: --engine auto + --load-state is a strict error (the
  // snapshot header already fixes the representation; silently ignoring
  // the user's "choose for me" would be worse than refusing).
  Options opt = base();
  opt.engineGiven = true;
  opt.engine = "auto";
  EXPECT_EQ(validateOptions(opt), "");
  opt.loadStatePath = "state.sliqstate";
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--engine auto"), std::string::npos) << error;
  EXPECT_NE(error.find("--load-state"), std::string::npos) << error;
  // A concrete engine with --load-state stays valid.
  opt.engine = "exact";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, AutoEngineComposesWithWarmCacheAndQueries) {
  Options opt = base();
  opt.engineGiven = true;
  opt.engine = "auto";
  opt.warmCacheDir = "cache/";
  opt.probs = true;
  opt.shots = 8;
  opt.stats = true;
  EXPECT_EQ(validateOptions(opt), "");
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/false), "");
}

TEST(WarmCache, PathKeyIncludesEngineWidthAndDigest) {
  QuantumCircuit c(3);
  c.h(0).cx(0, 1).cx(1, 2);
  const std::uint64_t digest = circuitPrefixDigest(c, c.gateCount());
  const std::string exact = warmCachePath("dir", "exact", 3, digest);
  const std::string chp = warmCachePath("dir", "chp", 3, digest);
  // Same circuit, different resolved engines: distinct cache entries —
  // snapshots of different representations are not interchangeable.
  EXPECT_NE(exact, chp);
  EXPECT_NE(exact.find("exact-q3-"), std::string::npos) << exact;
  EXPECT_NE(chp.find("chp-q3-"), std::string::npos) << chp;
  // Key stability: prefix digests are a pure function of the gate stream.
  EXPECT_EQ(exact, warmCachePath("dir", "exact", 3,
                                 circuitPrefixDigest(c, c.gateCount())));
}

TEST(WarmCache, PrefixDigestDistinguishesPrefixLengthsAndWidths) {
  QuantumCircuit c(3);
  c.h(0).cx(0, 1).cx(1, 2);
  EXPECT_NE(circuitPrefixDigest(c, 1), circuitPrefixDigest(c, 2));
  EXPECT_NE(circuitPrefixDigest(c, 2), circuitPrefixDigest(c, 3));
  QuantumCircuit wider(4);
  wider.h(0).cx(0, 1).cx(1, 2);
  // Same gates, different register width: different key.
  EXPECT_NE(circuitPrefixDigest(c, 3), circuitPrefixDigest(wider, 3));
}

TEST(WarmCache, AutoMetaEngineIsNeverAValidCacheKey) {
  // The cache key must name the RESOLVED engine; keying on the "auto"
  // meta-name would let runs that resolve to different engines share (and
  // corrupt) one entry.
  EXPECT_THROW(warmCachePath("dir", "auto", 3, 42), std::invalid_argument);
}

}  // namespace
}  // namespace sliq::cli
