// Flag-combination validation for the sliqsim CLI (tools/cli_options.hpp):
// the pure rules main() applies before doing any work, unit-tested without
// spawning the binary.
#include <gtest/gtest.h>

#include <string>

#include "cli_options.hpp"

namespace sliq::cli {
namespace {

Options base() {
  Options opt;
  opt.path = "circuit.qasm";
  return opt;
}

TEST(CliOptions, DefaultsAreValid) {
  EXPECT_EQ(validateOptions(base()), "");
}

TEST(CliOptions, IdealModeQueriesAreValidTogether) {
  Options opt = base();
  opt.shots = 100;
  opt.probs = true;
  opt.amps = 4;
  opt.stats = true;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, TrajectoriesRequireNoise) {
  Options opt = base();
  opt.trajectoriesGiven = true;
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--trajectories"), std::string::npos) << error;
  EXPECT_NE(error.find("--noise"), std::string::npos) << error;
  opt.noisePath = "model.txt";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ThreadsValidWithAndWithoutNoise) {
  // --threads without --noise drives the single-circuit dense kernels
  // (Engine::setExecutionThreads); with --noise it parameterizes the
  // trajectory runner. Both combinations are coherent.
  Options opt = base();
  opt.threadsGiven = true;
  opt.threads = 4;
  EXPECT_EQ(validateOptions(opt), "");
  opt.noisePath = "model.txt";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, NoiseRejectsIdealStateQueries) {
  for (int which = 0; which < 3; ++which) {
    Options opt = base();
    opt.noisePath = "model.txt";
    if (which == 0) opt.shots = 16;
    if (which == 1) opt.probs = true;
    if (which == 2) opt.amps = 2;
    const std::string error = validateOptions(opt);
    EXPECT_NE(error.find("--noise"), std::string::npos) << which << error;
  }
}

TEST(CliOptions, TelemetryComposesWithEveryMode) {
  // --stats/--trace report on the run itself (not the ideal state), so
  // unlike --shots/--probs/--amps they stay valid under --noise: the report
  // aggregates the trajectory workers.
  Options opt = base();
  opt.stats = true;
  opt.tracePath = "out.trace.json";
  EXPECT_EQ(validateOptions(opt), "");
  opt.noisePath = "model.txt";
  EXPECT_EQ(validateOptions(opt), "");
  opt.observablePath = "obs.txt";
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, StatsFormatMustBeTextOrJson) {
  Options opt = base();
  opt.stats = true;
  opt.statsFormat = "json";
  EXPECT_EQ(validateOptions(opt), "");
  opt.statsFormat = "text";
  EXPECT_EQ(validateOptions(opt), "");
  opt.statsFormat = "xml";
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--stats"), std::string::npos) << error;
  // The format of an unused --stats is irrelevant (default text anyway).
  opt.stats = false;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ObservableRejectsShots) {
  // Expectations are computed analytically; shot sampling estimates the
  // same quantity with noise, so combining them is a category error.
  Options opt = base();
  opt.observablePath = "obs.txt";
  opt.shots = 1000;
  const std::string error = validateOptions(opt);
  EXPECT_NE(error.find("--observable"), std::string::npos) << error;
  EXPECT_NE(error.find("--shots"), std::string::npos) << error;
}

TEST(CliOptions, ObservableAloneAndWithIdealQueriesIsValid) {
  Options opt = base();
  opt.observablePath = "obs.txt";
  EXPECT_EQ(validateOptions(opt), "");
  opt.probs = true;
  opt.amps = 4;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ObservableWithNoiseTrajectoriesThreadsIsValid) {
  // The noisy-expectation mode: --observable + --noise with the full
  // trajectory parameterization (determinism across --threads is pinned by
  // the trajectory-expectation tests and the CI diff smoke).
  Options opt = base();
  opt.observablePath = "obs.txt";
  opt.noisePath = "model.txt";
  opt.trajectoriesGiven = true;
  opt.trajectories = 500;
  opt.threadsGiven = true;
  opt.threads = 4;
  EXPECT_EQ(validateOptions(opt), "");
}

TEST(CliOptions, ObservableWithNoiseStillRejectsShotsAndProbes) {
  Options opt = base();
  opt.observablePath = "obs.txt";
  opt.noisePath = "model.txt";
  opt.shots = 16;
  EXPECT_NE(validateOptions(opt), "");
  opt.shots = 0;
  opt.probs = true;
  EXPECT_NE(validateOptions(opt), "");
}

// ---- dynamic-circuit rules (validateDynamic) ------------------------------

TEST(CliOptions, StaticCircuitsAreUnaffectedByDynamicRules) {
  Options opt = base();
  opt.observablePath = "obs.txt";
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/false), "");
  opt.shots = 16;
  opt.observablePath.clear();
  opt.probs = true;
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/false), "");
}

TEST(CliOptions, ObservableOnDynamicCircuitsIsAStrictError) {
  // Mirrors the facade's collapse restriction: a dynamic circuit's <O> is
  // conditioned on its classical outcome stream.
  Options opt = base();
  opt.observablePath = "obs.txt";
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  // ...with or without --noise.
  opt.noisePath = "model.txt";
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
}

TEST(CliOptions, DynamicShotsExcludeSingleFinalStateQueries) {
  Options opt = base();
  opt.shots = 16;
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  opt.probs = true;
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  opt.probs = false;
  opt.amps = 4;
  EXPECT_NE(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  // Without --shots the single post-run state exists and is queryable.
  opt.shots = 0;
  EXPECT_EQ(validateDynamic(opt, /*circuitIsDynamic=*/true), "");
  // Dynamic circuits under --noise histogram the creg: fine without the
  // ideal-state queries (validateOptions already rejects those).
  Options noisy = base();
  noisy.noisePath = "model.txt";
  EXPECT_EQ(validateDynamic(noisy, /*circuitIsDynamic=*/true), "");
}

}  // namespace
}  // namespace sliq::cli
