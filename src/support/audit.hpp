// Runtime structural-audit framework (DESIGN.md §10).
//
// Every engine representation carries invariants the normal API never
// re-checks: unique-table canonicity and refcount discipline in the BDD
// package, complex-table dedup and edge-weight normalization in the QMDD
// package, symplectic consistency of the CHP tableau, norm preservation in
// the statevector. `auditInvariants()` methods walk the live structures and
// throw AuditError (naming the structure and the offending node/row) on the
// first violation.
//
// Audits are always *compiled*; what `-DSLIQ_AUDIT=ON` adds is the facade
// hooks: Engine::run/runDynamic call auditInvariants() after every static
// run and after every mid-circuit collapse. Tests can run any callable
// under an audit in every build via `withAudit`.
//
// This header also owns the process-wide teardown leak accounting: managers
// register in their constructors and report leaked nodes from their
// destructors (destructors must not throw), and the gtest leak-check
// environment fails the binary if anything is still live or leaked after
// the last test.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

namespace sliq::audit {

// Compile-time switch mirror of the SLIQ_AUDIT CMake option: true when the
// facade audit hooks are active in this build.
inline constexpr bool kHooksEnabled =
#ifdef SLIQ_AUDIT
    true;
#else
    false;
#endif

/// A structural invariant violation. `structure()` names the representation
/// that failed ("bdd-unique-table", "qmdd-complex-table", "chp-tableau",
/// "statevector", ...); what() carries the full diagnostic including the
/// offending node/row.
class AuditError : public std::logic_error {
 public:
  AuditError(std::string structure, const std::string& detail);
  const std::string& structure() const noexcept { return structure_; }

 private:
  std::string structure_;
};

/// Throws AuditError{structure, detail}.
[[noreturn]] void fail(const std::string& structure, const std::string& detail);

// ---------------------------------------------------------------------------
// Teardown leak accounting (process-wide, thread-safe: trajectory workers
// construct and destroy engines concurrently).

enum class StructureKind : unsigned {
  kBddManager = 0,
  kQmddManager = 1,
};

/// Registered by manager constructors / destructors.
void noteLiveStructure(StructureKind kind) noexcept;
void noteDeadStructure(StructureKind kind) noexcept;

/// Called from manager destructors when nodes (or external references) are
/// still live at teardown. Never throws — destructors report, the gtest
/// leak-check environment fails.
void noteLeakedNodes(StructureKind kind, std::size_t count,
                     const std::string& detail) noexcept;

/// Number of managers currently alive (all kinds).
std::size_t liveStructureCount() noexcept;
/// Total nodes reported leaked at manager teardown since the last reset.
std::size_t leakedNodeCount() noexcept;
/// Human-readable summary of live structures and recorded leaks.
std::string leakReport();
/// Clears the leak tally (used by tests that leak deliberately). Does not
/// touch the live-structure counts — those only fall when managers die.
void resetLeakStats() noexcept;

// ---------------------------------------------------------------------------

/// Runs `fn`, then audits `subject` (anything with an auditInvariants()
/// member — a simulator, a manager, or an Engine), and returns fn's result.
/// Works in every build; this is how tests wrap individual operations in an
/// audit without rebuilding with SLIQ_AUDIT.
template <typename Auditable, typename Fn>
decltype(auto) withAudit(Auditable& subject, Fn&& fn) {
  if constexpr (std::is_void_v<decltype(std::forward<Fn>(fn)())>) {
    std::forward<Fn>(fn)();
    subject.auditInvariants();
  } else {
    decltype(auto) result = std::forward<Fn>(fn)();
    subject.auditInvariants();
    return result;
  }
}

}  // namespace sliq::audit
