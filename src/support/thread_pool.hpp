// Fixed-size worker thread pool.
//
// The repo's first parallel execution path (the noise-trajectory runner)
// fans independent work items across these workers; determinism is the
// caller's job (per-item RNG substreams, order-independent reduction — see
// RngState::split), the pool only provides execution. Tasks are type-erased
// thunks; submit() returns a std::future so exceptions thrown inside a task
// propagate to whoever joins on the result.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace sliq {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);
  /// Drains the queue, then joins every worker. Pending tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues `fn` and returns its future. A task that throws stores the
  /// exception in the future (the worker itself never dies).
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn fn) {
    using Result = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::move(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// std::thread::hardware_concurrency() clamped to at least 1 (the
  /// standard allows it to report 0 when unknown).
  static unsigned hardwareConcurrency();

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sliq
