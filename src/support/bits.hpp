// Shared bit-vector rendering.
#pragma once

#include <string>
#include <vector>

namespace sliq {

/// Renders a measurement outcome with qubit n-1 leftmost — the one shot /
/// histogram-key convention shared by the CLI and the trajectory runner
/// (keeping it in one place is what keeps them from drifting apart).
inline std::string bitsToString(const std::vector<bool>& bits) {
  std::string s;
  s.reserve(bits.size());
  for (std::size_t q = bits.size(); q-- > 0;) s += bits[q] ? '1' : '0';
  return s;
}

}  // namespace sliq
