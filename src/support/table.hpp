// Minimal ASCII table printer used by the benchmark harnesses to render
// rows in the same layout as the paper's Tables III–VI.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sliq {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  /// Renders the table with column-aligned cells and a header separator.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds the way the paper does: "<0.01", "1.09", "TO", "MO", ...
std::string formatSeconds(double s);

}  // namespace sliq
