#include "support/metrics.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace sliq::metrics {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point processEpoch() {
  // Captured once per process so every registry shares one timeline; the
  // static local is initialized thread-safely on first use.
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// JSON string escaping for metric names (conservative: names are ASCII
/// identifiers by convention, but the writer must never emit broken JSON).
void writeJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::int64_t epochMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               processEpoch())
      .count();
}

std::string formatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void Registry::enable(std::uint32_t track) {
  const std::lock_guard<std::mutex> lock(mutex_);
  track_ = track;
  enabled_.store(true, std::memory_order_relaxed);
}

void Registry::add(std::string_view counter, std::uint64_t delta) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::string(counter)] += delta;
}

void Registry::counterSet(std::string_view counter, std::uint64_t value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_[std::string(counter)] = value;
}

void Registry::gaugeSet(std::string_view gauge, double value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[std::string(gauge)] = value;
}

void Registry::gaugeMax(std::string_view gauge, double value) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = gauges_.emplace(std::string(gauge), value);
  if (!inserted && it->second < value) it->second = value;
}

void Registry::timerAdd(std::string_view timer, double seconds) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  TimerValue& t = timers_[std::string(timer)];
  t.seconds += seconds;
  ++t.count;
}

void Registry::instant(std::string_view name) {
  if (!enabled()) return;
  const std::int64_t now = epochMicros();
  const std::lock_guard<std::mutex> lock(mutex_);
  ++counters_[std::string(name)];
  events_.push_back(
      TraceEvent{std::string(name), TraceEvent::Phase::kInstant, track_, now});
}

std::int64_t Registry::beginSpan(std::string_view name) {
  if (!enabled()) return -1;
  const std::int64_t now = epochMicros();
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      TraceEvent{std::string(name), TraceEvent::Phase::kBegin, track_, now});
  return now;
}

void Registry::endSpan(std::string_view name, std::int64_t startMicros) {
  if (!enabled() || startMicros < 0) return;
  // Clamp to the span's own start: the steady clock is monotonic, but a
  // sub-microsecond span must still close at ts >= its B event for the
  // trace linter's monotonicity check.
  std::int64_t now = epochMicros();
  if (now < startMicros) now = startMicros;
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      TraceEvent{std::string(name), TraceEvent::Phase::kEnd, track_, now});
  TimerValue& t = timers_[std::string(name)];
  t.seconds += static_cast<double>(now - startMicros) * 1e-6;
  ++t.count;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return Snapshot{counters_, gauges_, timers_};
}

std::vector<TraceEvent> Registry::traceEvents() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Registry::merge(const Registry& other) {
  if (!enabled()) return;
  const Snapshot theirs = other.snapshot();
  std::vector<TraceEvent> theirEvents = other.traceEvents();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : theirs.counters) counters_[name] += value;
  for (const auto& [name, value] : theirs.gauges) {
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted && it->second < value) it->second = value;
  }
  for (const auto& [name, value] : theirs.timers) {
    TimerValue& t = timers_[name];
    t.seconds += value.seconds;
    t.count += value.count;
  }
  events_.insert(events_.end(), theirEvents.begin(), theirEvents.end());
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  events_.clear();
}

void Registry::writeChromeTrace(std::ostream& os) const {
  std::vector<TraceEvent> events = traceEvents();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    const char* ph = e.phase == TraceEvent::Phase::kBegin ? "B"
                     : e.phase == TraceEvent::Phase::kEnd ? "E"
                                                          : "i";
    os << "{\"name\":";
    writeJsonString(os, e.name);
    os << ",\"ph\":\"" << ph << "\",\"pid\":1,\"tid\":" << e.track
       << ",\"ts\":" << e.micros;
    if (e.phase == TraceEvent::Phase::kInstant) os << ",\"s\":\"t\"";
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void pinCommonSchemaKeys(Snapshot& snapshot) {
  for (const char* key :
       {"gates.pre_fusion", "gates.post_fusion", "gates.applied", "gc.runs",
        "cache.lookups", "cache.hits"}) {
    snapshot.counters.emplace(key, 0);
  }
  for (const char* key :
       {"threads.resolved", "rss.high_water_bytes", "state.bytes"}) {
    snapshot.gauges.emplace(key, 0.0);
  }
}

std::string RunReport::toJson() const {
  std::ostringstream os;
  os << "{\"schema\":\"sliq.run_report.v1\",\"engine\":";
  writeJsonString(os, engine);
  os << ",\"qubits\":" << qubits;
  os << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : metrics.counters) {
    if (!first) os << ",";
    first = false;
    writeJsonString(os, name);
    os << ":" << value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : metrics.gauges) {
    if (!first) os << ",";
    first = false;
    writeJsonString(os, name);
    os << ":" << formatDouble(value);
  }
  os << "},\"phases\":{";
  first = true;
  for (const auto& [name, value] : metrics.timers) {
    if (!first) os << ",";
    first = false;
    writeJsonString(os, name);
    os << ":{\"seconds\":" << formatDouble(value.seconds)
       << ",\"count\":" << value.count << "}";
  }
  os << "}}";
  return os.str();
}

std::string RunReport::toText() const {
  std::ostringstream os;
  os << "run report (" << engine << ", " << qubits << " qubits)\n";
  if (!metrics.counters.empty()) {
    os << "  counters:\n";
    for (const auto& [name, value] : metrics.counters)
      os << "    " << name << " = " << value << "\n";
  }
  if (!metrics.gauges.empty()) {
    os << "  gauges:\n";
    for (const auto& [name, value] : metrics.gauges)
      os << "    " << name << " = " << formatDouble(value) << "\n";
  }
  if (!metrics.timers.empty()) {
    os << "  phases:\n";
    for (const auto& [name, value] : metrics.timers) {
      os << "    " << name << " = " << formatDouble(value.seconds) << " s";
      if (value.count > 1) os << " (" << value.count << " spans)";
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace sliq::metrics
