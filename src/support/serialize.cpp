#include "support/serialize.hpp"

#include <istream>
#include <ostream>

namespace sliq::serialize {

namespace {

/// Fixed envelope field offsets (see the header-comment layout).
constexpr std::uint64_t kMagicOffset = 0;
constexpr std::uint64_t kVersionOffset = 8;

void appendLe32(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void appendLe64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i)
    buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Reads the whole stream into memory. Snapshots are validated against
/// their checksum before any payload byte is interpreted, which requires
/// the full byte range up front anyway.
std::vector<std::uint8_t> slurp(std::istream& in) {
  std::vector<std::uint8_t> data;
  char chunk[1 << 16];
  while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
    data.insert(data.end(), chunk, chunk + in.gcount());
    if (in.eof()) break;
  }
  if (in.bad()) {
    throw SerializationError("snapshot read failed (stream I/O error)");
  }
  return data;
}

/// Parses the envelope header out of `r` (shared by readSnapshot and
/// readSnapshotInfo — the latter simply stops here).
SnapshotInfo parseHeader(Reader& r) {
  char magic[8];
  r.bytes(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw SerializationError(
        "not a sliq.state.v1 snapshot: bad magic at byte offset " +
        std::to_string(kMagicOffset) + " (field 'magic')");
  }
  SnapshotInfo info;
  info.formatVersion = r.u32("formatVersion");
  if (info.formatVersion > kFormatVersion) {
    throw SerializationError(
        "snapshot format version " + std::to_string(info.formatVersion) +
        " is newer than this build supports (max " +
        std::to_string(kFormatVersion) + "; field 'formatVersion' at byte "
        "offset " + std::to_string(kVersionOffset) + ")");
  }
  if (info.formatVersion == 0) {
    throw SerializationError(
        "snapshot format version 0 is invalid (field 'formatVersion' at "
        "byte offset " + std::to_string(kVersionOffset) + ")");
  }
  info.representation = r.str("representation", 256);
  info.numQubits = r.u32("numQubits");
  return info;
}

}  // namespace

void writeSnapshot(std::ostream& out, const std::string& representation,
                   std::uint32_t numQubits,
                   const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> head;
  head.insert(head.end(), kMagic, kMagic + sizeof(kMagic));
  appendLe32(head, kFormatVersion);
  appendLe32(head, static_cast<std::uint32_t>(representation.size()));
  head.insert(head.end(), representation.begin(), representation.end());
  appendLe32(head, numQubits);
  appendLe64(head, payload.size());

  Fnv1a checksum;
  checksum.update(head.data(), head.size());
  checksum.update(payload.data(), payload.size());
  std::vector<std::uint8_t> tail;
  appendLe64(tail, checksum.digest());

  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(tail.data()),
            static_cast<std::streamsize>(tail.size()));
  if (!out) {
    throw SerializationError("snapshot write failed (stream I/O error)");
  }
}

Snapshot readSnapshot(std::istream& in) {
  const std::vector<std::uint8_t> data = slurp(in);
  Reader r(data);
  Snapshot snap;
  snap.info = parseHeader(r);

  const std::uint64_t payloadSize = r.u64("payloadSize");
  snap.info.payloadOffset = r.offset();
  // The remaining bytes must be exactly payload + the 8-byte checksum:
  // fewer is truncation, more is trailing garbage — both corrupt.
  if (r.remaining() < 8 || r.remaining() - 8 != payloadSize) {
    throw SerializationError(
        "snapshot truncated or oversized: payloadSize field says " +
        std::to_string(payloadSize) + " byte(s) but " +
        std::to_string(r.remaining() >= 8 ? r.remaining() - 8 : 0) +
        " follow the header (field 'payload' at byte offset " +
        std::to_string(snap.info.payloadOffset) + ")");
  }

  // Checksum covers every byte before the trailing u64 — verified BEFORE
  // the payload is interpreted, so a flipped bit anywhere fails here.
  Fnv1a checksum;
  checksum.update(data.data(), data.size() - 8);
  Reader tail(data.data() + (data.size() - 8), 8, data.size() - 8);
  const std::uint64_t stored = tail.u64("checksum");
  if (stored != checksum.digest()) {
    throw SerializationError(
        "snapshot checksum mismatch (field 'checksum' at byte offset " +
        std::to_string(data.size() - 8) + "): the file is corrupt");
  }

  snap.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(
                                         snap.info.payloadOffset),
                      data.end() - 8);
  return snap;
}

SnapshotInfo readSnapshotInfo(std::istream& in) {
  // The header is tiny; read just enough of the stream to parse it. 8
  // (magic) + 4 (version) + 4 + 256 (representation) + 4 (qubits) + 8
  // (payloadSize) bounds it comfortably.
  std::vector<std::uint8_t> head(8 + 4 + 4 + 256 + 4 + 8);
  in.read(reinterpret_cast<char*>(head.data()),
          static_cast<std::streamsize>(head.size()));
  head.resize(static_cast<std::size_t>(in.gcount()));
  if (in.bad()) {
    throw SerializationError("snapshot read failed (stream I/O error)");
  }
  Reader r(head);
  SnapshotInfo info = parseHeader(r);
  r.u64("payloadSize");
  info.payloadOffset = r.offset();
  return info;
}

}  // namespace sliq::serialize
