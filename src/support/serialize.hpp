// Versioned binary state snapshots (`sliq.state.v1`) — the wire format of
// Engine::saveState / Engine::loadState (DESIGN.md §12).
//
// Envelope layout (all integers little-endian, byte-wise — the format is
// endian-explicit, not host-order):
//
//   offset 0   magic            8 bytes  "sliqstat"
//   offset 8   formatVersion    u32      currently 1; readers reject newer
//   offset 12  representation   u32 len + bytes (engine registry name)
//   ...        numQubits        u32
//   ...        payloadSize      u64      engine-specific payload byte count
//   ...        payload          payloadSize bytes
//   ...        checksum         u64      FNV-1a over every preceding byte
//
// Readers validate the envelope (magic, version, sizes, checksum) BEFORE
// any payload byte is interpreted, and every payload read is bounds-checked
// with diagnostics naming the absolute byte offset and the field being
// read — a corrupt or truncated snapshot throws SerializationError, never
// UB and never a partially mutated engine.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace sliq::serialize {

class SerializationError : public std::runtime_error {
 public:
  explicit SerializationError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The 8-byte envelope magic ("sliqstat").
inline constexpr char kMagic[8] = {'s', 'l', 'i', 'q', 's', 't', 'a', 't'};
/// Format version this build writes and the newest it can read.
inline constexpr std::uint32_t kFormatVersion = 1;
/// Conventional file extension for snapshot files.
inline constexpr const char* kFileExtension = ".sliqstate";

/// Incremental FNV-1a over bytes — the same constants as the circuit
/// digests of the differential harness, applied to the serialized stream.
class Fnv1a {
 public:
  void update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h_ ^= bytes[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Appends typed little-endian values to an in-memory payload buffer. The
/// envelope writer (writeSnapshot) wraps the finished buffer; engines never
/// touch the envelope themselves.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { putLe(v, 4); }
  void u64(std::uint64_t v) { putLe(v, 8); }
  void i64(std::int64_t v) { putLe(static_cast<std::uint64_t>(v), 8); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putLe(bits, 8);
  }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }
  /// u32 length prefix + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
  }

  std::uint64_t offset() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }

 private:
  void putLe(std::uint64_t v, unsigned count) {
    for (unsigned i = 0; i < count; ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked typed reads over a borrowed byte range. Every read names
/// its field; running past the end throws SerializationError with the
/// absolute byte offset (baseOffset + cursor) and the field name — the
/// diagnostics contract of the corrupt-snapshot tests.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size,
         std::uint64_t baseOffset = 0)
      : data_(data), size_(size), base_(baseOffset) {}
  explicit Reader(const std::vector<std::uint8_t>& data,
                  std::uint64_t baseOffset = 0)
      : Reader(data.data(), data.size(), baseOffset) {}

  std::uint8_t u8(const char* field) {
    need(1, field);
    return data_[pos_++];
  }
  std::uint32_t u32(const char* field) {
    return static_cast<std::uint32_t>(getLe(4, field));
  }
  std::uint64_t u64(const char* field) { return getLe(8, field); }
  std::int64_t i64(const char* field) {
    return static_cast<std::int64_t>(getLe(8, field));
  }
  double f64(const char* field) {
    const std::uint64_t bits = getLe(8, field);
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// u32 length prefix + raw bytes; `maxLen` guards against a corrupt
  /// length swallowing the rest of the payload.
  std::string str(const char* field, std::uint32_t maxLen = 4096) {
    const std::uint32_t len = u32(field);
    if (len > maxLen) {
      throw SerializationError(fieldError(field) + ": string length " +
                               std::to_string(len) + " exceeds limit " +
                               std::to_string(maxLen));
    }
    need(len, field);
    std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return out;
  }
  void bytes(void* out, std::size_t size, const char* field) {
    need(size, field);
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  /// Absolute byte offset of the next read (for error messages composed by
  /// callers doing semantic validation on already-read values).
  std::uint64_t offset() const { return base_ + pos_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Rejects trailing bytes after the last expected field — a
  /// longer-than-expected payload is corruption, not padding.
  void requireExhausted(const char* context) const {
    if (pos_ != size_) {
      throw SerializationError(
          std::string("snapshot payload of ") + context + " has " +
          std::to_string(size_ - pos_) + " unexpected trailing byte(s) at "
          "byte offset " + std::to_string(base_ + pos_));
    }
  }

 private:
  std::string fieldError(const char* field) const {
    return "snapshot field '" + std::string(field) + "' at byte offset " +
           std::to_string(base_ + pos_);
  }
  void need(std::size_t count, const char* field) {
    if (size_ - pos_ < count) {
      throw SerializationError(
          fieldError(field) + ": truncated (need " + std::to_string(count) +
          " byte(s), have " + std::to_string(size_ - pos_) + ")");
    }
  }
  std::uint64_t getLe(unsigned count, const char* field) {
    need(count, field);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < count; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += count;
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::uint64_t base_;
  std::size_t pos_ = 0;
};

/// The envelope header fields (everything before the payload).
struct SnapshotInfo {
  std::uint32_t formatVersion = 0;
  std::string representation;  // engine registry name
  std::uint32_t numQubits = 0;
  /// Absolute byte offset where the payload starts (base offset for the
  /// payload Reader, so payload diagnostics name file offsets).
  std::uint64_t payloadOffset = 0;
};

/// A fully validated snapshot: header fields + checksum-verified payload.
struct Snapshot {
  SnapshotInfo info;
  std::vector<std::uint8_t> payload;
};

/// Writes one complete `sliq.state.v1` snapshot (envelope + checksum)
/// around an engine payload. Throws SerializationError on stream failure.
void writeSnapshot(std::ostream& out, const std::string& representation,
                   std::uint32_t numQubits,
                   const std::vector<std::uint8_t>& payload);

/// Reads and validates one complete snapshot: magic, format version
/// (rejecting anything newer than kFormatVersion), sizes, and the trailing
/// FNV checksum — all BEFORE the payload is handed to the caller. Throws
/// SerializationError naming offset + field on any violation.
Snapshot readSnapshot(std::istream& in);

/// Header peek: reads only the envelope fields (no checksum validation,
/// no payload) so callers can learn the representation and width before
/// constructing an engine. Leaves the stream position unspecified —
/// reopen or seek before a full load.
SnapshotInfo readSnapshotInfo(std::istream& in);

}  // namespace sliq::serialize
