#include "support/audit.hpp"

#include <array>
#include <atomic>
#include <mutex>
#include <sstream>

namespace sliq::audit {

AuditError::AuditError(std::string structure, const std::string& detail)
    : std::logic_error("invariant audit failed [" + structure + "]: " + detail),
      structure_(std::move(structure)) {}

void fail(const std::string& structure, const std::string& detail) {
  throw AuditError(structure, detail);
}

namespace {

constexpr std::size_t kKinds = 2;

const char* kindName(StructureKind kind) {
  switch (kind) {
    case StructureKind::kBddManager: return "bdd-manager";
    case StructureKind::kQmddManager: return "qmdd-manager";
  }
  return "unknown";
}

std::array<std::atomic<long long>, kKinds>& liveCounts() {
  static std::array<std::atomic<long long>, kKinds> counts{};
  return counts;
}

std::atomic<unsigned long long>& leakedTotal() {
  static std::atomic<unsigned long long> total{0};
  return total;
}

std::mutex& reportMutex() {
  static std::mutex m;
  return m;
}

std::string& leakDetails() {
  static std::string details;
  return details;
}

}  // namespace

void noteLiveStructure(StructureKind kind) noexcept {
  liveCounts()[static_cast<unsigned>(kind)].fetch_add(
      1, std::memory_order_relaxed);
}

void noteDeadStructure(StructureKind kind) noexcept {
  liveCounts()[static_cast<unsigned>(kind)].fetch_sub(
      1, std::memory_order_relaxed);
}

void noteLeakedNodes(StructureKind kind, std::size_t count,
                     const std::string& detail) noexcept {
  if (count == 0) return;
  leakedTotal().fetch_add(count, std::memory_order_relaxed);
  try {
    const std::lock_guard<std::mutex> lock(reportMutex());
    leakDetails() += std::string("  [") + kindName(kind) + "] " + detail + "\n";
  } catch (...) {
    // Reporting is best-effort inside destructors; the counter above is
    // what the leak-check environment gates on.
  }
}

std::size_t liveStructureCount() noexcept {
  long long total = 0;
  for (const auto& c : liveCounts()) total += c.load(std::memory_order_relaxed);
  return total > 0 ? static_cast<std::size_t>(total) : 0;
}

std::size_t leakedNodeCount() noexcept {
  return static_cast<std::size_t>(leakedTotal().load(std::memory_order_relaxed));
}

std::string leakReport() {
  std::ostringstream os;
  os << "live structures:";
  for (std::size_t k = 0; k < kKinds; ++k) {
    os << ' ' << kindName(static_cast<StructureKind>(k)) << '='
       << liveCounts()[k].load(std::memory_order_relaxed);
  }
  os << "; leaked nodes=" << leakedNodeCount() << '\n';
  {
    const std::lock_guard<std::mutex> lock(reportMutex());
    os << leakDetails();
  }
  return os.str();
}

void resetLeakStats() noexcept {
  leakedTotal().store(0, std::memory_order_relaxed);
  try {
    const std::lock_guard<std::mutex> lock(reportMutex());
    leakDetails().clear();
  } catch (...) {
  }
}

}  // namespace sliq::audit
