// Hashing utilities shared by the BDD unique tables and computed caches.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sliq {

/// Finalizer from MurmurHash3: good avalanche on 64-bit keys.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine two 64-bit hashes (boost::hash_combine-style with 64-bit constant).
inline std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

inline std::uint64_t hash3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return hashCombine(hashCombine(mix64(a), b), c);
}

}  // namespace sliq
