// Assertion macros used throughout the library.
//
// SLIQ_ASSERT  — debug-only invariant check (compiled out in NDEBUG builds).
// SLIQ_CHECK   — always-on check for conditions that guard data integrity
//                (e.g. unique-table canonicity); throws std::logic_error.
// SLIQ_REQUIRE — precondition check on public API entry points; throws
//                std::invalid_argument with a caller-facing message.
//
// Contract: the argument of SLIQ_ASSERT must be side-effect free. The macro
// expands to ((void)0) under NDEBUG, so any mutation, ++/--, assignment, or
// call with observable effects inside it silently changes behavior between
// build types. Hoist such expressions into a named local first and assert
// on the local (see tools/lint/sliq_lint.py, which enforces this). CHECK
// and REQUIRE always evaluate their condition, but keep them pure anyway —
// an assertion that mutates state is a bug magnet in either flavor.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sliq {

[[noreturn]] inline void assertFail(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'R') throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace sliq

#define SLIQ_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) ::sliq::assertFail("CHECK", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SLIQ_REQUIRE(cond, msg)                                            \
  do {                                                                     \
    if (!(cond))                                                           \
      ::sliq::assertFail("REQUIRE", #cond, __FILE__, __LINE__, (msg));     \
  } while (0)

#ifdef NDEBUG
#define SLIQ_ASSERT(cond) ((void)0)
#else
#define SLIQ_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) ::sliq::assertFail("ASSERT", #cond, __FILE__, __LINE__, ""); \
  } while (0)
#endif
