#include "support/memuse.hpp"

#include <cstdio>
#include <cstring>

namespace sliq {
namespace {

std::size_t readStatusField(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  const std::size_t fieldLen = std::strlen(field);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, field, fieldLen) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + fieldLen, " %llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

}  // namespace

std::size_t currentRssBytes() { return readStatusField("VmRSS:"); }

std::size_t peakRssBytes() {
  const std::size_t hwm = readStatusField("VmHWM:");
  // Some container kernels do not expose VmHWM; fall back to current RSS.
  return hwm != 0 ? hwm : currentRssBytes();
}

}  // namespace sliq
