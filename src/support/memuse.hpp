// Process memory introspection (Linux /proc based), used by the benchmark
// harnesses to report the Mem(MB) columns of the paper's tables.
#pragma once

#include <cstddef>

namespace sliq {

/// Current resident set size in bytes, or 0 if unavailable.
std::size_t currentRssBytes();

/// Peak resident set size in bytes (VmHWM), or 0 if unavailable.
std::size_t peakRssBytes();

inline double toMiB(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace sliq
