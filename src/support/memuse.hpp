// Process memory introspection (Linux /proc based), used by the benchmark
// harnesses to report the Mem(MB) columns of the paper's tables, plus the
// shared dense-allocation budget contract: every code path that would
// materialize a 2^n amplitude array (state_export, conversion, the dense
// engine) checks the same budget and throws the same typed error, so the
// dispatcher/conversion layer can catch it and fall back instead of
// aborting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace sliq {

/// Current resident set size in bytes, or 0 if unavailable.
std::size_t currentRssBytes();

/// Peak resident set size in bytes (VmHWM), or 0 if unavailable.
std::size_t peakRssBytes();

inline double toMiB(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// A dense 2^n amplitude array would exceed its byte budget. Typed (not a
/// bare invalid_argument) so callers — the engine dispatcher, state
/// conversion — can catch it and fall back to a compressed representation.
class MemoryBudgetError : public std::runtime_error {
 public:
  MemoryBudgetError(unsigned numQubits, std::uint64_t requiredBytes,
                    std::uint64_t budgetBytes)
      : std::runtime_error(
            "dense extraction of " + std::to_string(numQubits) +
            " qubit(s) needs " + std::to_string(requiredBytes) +
            " bytes (2^" + std::to_string(numQubits) +
            " amplitudes), over the " + std::to_string(budgetBytes) +
            "-byte budget"),
        numQubits_(numQubits),
        requiredBytes_(requiredBytes),
        budgetBytes_(budgetBytes) {}

  unsigned numQubits() const { return numQubits_; }
  std::uint64_t requiredBytes() const { return requiredBytes_; }
  std::uint64_t budgetBytes() const { return budgetBytes_; }

 private:
  unsigned numQubits_;
  std::uint64_t requiredBytes_;
  std::uint64_t budgetBytes_;
};

/// Default dense budget: 1 GiB = 2^26 amplitudes, matching the dense
/// engine's historical feasibility ceiling.
inline constexpr std::uint64_t kDefaultDenseBudgetBytes =
    std::uint64_t{1} << 30;

/// Bytes of a dense complex<double> statevector over `numQubits` qubits
/// (saturates instead of overflowing for absurd widths).
inline std::uint64_t denseStateBytes(unsigned numQubits) {
  if (numQubits >= 60) return ~std::uint64_t{0};
  return (std::uint64_t{1} << numQubits) * 2 * sizeof(double);
}

/// Throws MemoryBudgetError when a dense array over `numQubits` qubits
/// would not fit in `budgetBytes`.
inline void requireDenseBudget(unsigned numQubits, std::uint64_t budgetBytes) {
  const std::uint64_t required = denseStateBytes(numQubits);
  if (required > budgetBytes) {
    throw MemoryBudgetError(numQubits, required, budgetBytes);
  }
}

}  // namespace sliq
