// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generators, measurement
// sampling, noise trajectories) take an explicit Rng so experiments are
// reproducible from a seed. RngState adds deterministic substream derivation
// (split) for parallel consumers: substream i depends only on (seed, i),
// never on how many deviates any other stream consumed, which is what makes
// multithreaded trajectory results independent of the thread count.
#pragma once

#include <cstdint>

namespace sliq {

namespace detail {
/// One SplitMix64 scramble round (Steele, Lea & Flood) — full avalanche,
/// bijective on 64-bit words. Shared by Rng seeding and RngState::split.
inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace detail

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      word = detail::splitmix64(x);
      x += 0x9e3779b97f4a7c15ULL;
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool flip() { return (next() >> 63) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Value-type handle into seed space with splitmix-based substream
/// derivation. split(i) is a pure function of (seed, i): the substreams of a
/// root state form a deterministic tree that is statistically independent
/// of the traversal order, so N workers can each take split(workerItem)
/// without any coordination and reproduce a single-threaded run exactly.
struct RngState {
  std::uint64_t seed;

  /// Derives substream `streamIndex`. The index is scrambled before being
  /// folded into the seed so that adjacent indices land in unrelated parts
  /// of seed space (Rng's own seeding would mask sequential seeds, but the
  /// statistical-independence tests hold at this layer already).
  RngState split(std::uint64_t streamIndex) const {
    return RngState{detail::splitmix64(seed ^ detail::splitmix64(streamIndex))};
  }

  /// Instantiates the generator for this state.
  Rng rng() const { return Rng(seed); }
};

}  // namespace sliq
