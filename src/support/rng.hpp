// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generators, measurement
// sampling) take an explicit Rng so experiments are reproducible from a seed.
#pragma once

#include <cstdint>

namespace sliq {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool flip() { return (next() >> 63) != 0; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace sliq
