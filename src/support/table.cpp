#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace sliq {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::addRow(std::vector<std::string> cells) {
  SLIQ_REQUIRE(cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
}

std::string formatSeconds(double s) {
  if (s < 0.01) return "<0.01";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", s);
  return buf;
}

}  // namespace sliq
