// Unified metrics & tracing (DESIGN.md §11): a registry of named counters,
// gauges and timers plus lightweight hierarchical spans, shared by every
// engine through the Engine::metrics() facade.
//
// Design constraints, in priority order:
//
//  * Determinism: recording metrics must never consume RNG deviates or
//    mutate engine state — enabling --stats/--trace yields bit-identical
//    simulation output (pinned by tests/integration/
//    test_metrics_determinism.cpp). Instrumentation sites therefore only
//    ever *read* engine state.
//  * Near-zero overhead when disabled: every recording call first checks
//    one relaxed atomic bool and returns without locking or allocating.
//    A default-constructed Registry is disabled; engines carry one by
//    value, so un-instrumented runs pay a single predictable branch per
//    site.
//  * Thread-safe aggregation: recording calls may race (one mutex guards
//    the maps); cross-worker aggregation merges per-worker registries in
//    worker-index order so the merged totals are deterministic even though
//    the per-worker splits are not (trajectory.cpp).
//
// Span events use a process-global epoch so registries merged from
// different components (CLI parse phase, engine run, trajectory workers)
// share one consistent timeline. Export formats: RunReport::toJson()
// (stable sliq.run_report.v1 schema, 17-digit doubles) and
// Registry::writeChromeTrace() (chrome://tracing / Perfetto-loadable
// trace-event JSON with B/E span pairs and instant events).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sliq::metrics {

/// Accumulated wall time of one named phase (a completed span, or an
/// explicit timerAdd for phases measured outside a span).
struct TimerValue {
  double seconds = 0;
  std::uint64_t count = 0;
};

/// Point-in-time copy of a registry's scalar metrics: plain data, mergeable
/// and comparable. std::map keeps every serialization key-sorted, so the
/// JSON output is byte-stable for identical metric values.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerValue> timers;
};

/// One trace event: a span boundary (kBegin/kEnd pair, LIFO-nested per
/// track) or an instant marker (GC, memo invalidation).
struct TraceEvent {
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };
  std::string name;
  Phase phase = Phase::kInstant;
  /// Logical track id: 0 = main thread, w+1 = trajectory worker w. A
  /// deterministic label, deliberately not the OS thread id.
  std::uint32_t track = 0;
  /// Microseconds since the process-global epoch (epochMicros()).
  std::int64_t micros = 0;
};

/// Microseconds since a process-wide steady-clock epoch captured on first
/// use — the shared timeline of every registry in the process.
std::int64_t epochMicros();

class Registry {
 public:
  Registry() = default;  // disabled until enable()
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Arms recording. `track` labels this registry's span events in the
  /// merged trace (0 = main; trajectory workers use w+1).
  void enable(std::uint32_t track = 0);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // ---- scalar metrics (all no-ops when disabled) -------------------------
  /// counter += delta (monotonic event counts: gates applied, GC runs).
  void add(std::string_view counter, std::uint64_t delta = 1);
  /// counter = value (absolute mirrors of engine-native totals; idempotent
  /// so runMetrics() may be called repeatedly).
  void counterSet(std::string_view counter, std::uint64_t value);
  /// gauge = value (instantaneous level: resolved threads, state bytes).
  void gaugeSet(std::string_view gauge, double value);
  /// gauge = max(gauge, value) (high-water marks: peak RSS, peak nodes).
  void gaugeMax(std::string_view gauge, double value);
  /// timer += seconds (phases timed outside a ScopedSpan, e.g. a phase
  /// that completed before the engine's registry existed).
  void timerAdd(std::string_view timer, double seconds);
  /// Records an instant trace event (GC, memo invalidation) and bumps the
  /// counter of the same name.
  void instant(std::string_view name);

  // ---- spans (prefer ScopedSpan) -----------------------------------------
  /// Opens a span: records a kBegin event now. Returns the epoch-relative
  /// start in microseconds (endSpan needs it), or -1 when disabled.
  std::int64_t beginSpan(std::string_view name);
  /// Closes a span opened by beginSpan: records the kEnd event and
  /// accumulates the duration into the timer of the same name. `startMicros`
  /// is beginSpan's return value; -1 (disabled at open time) is a no-op.
  void endSpan(std::string_view name, std::int64_t startMicros);

  // ---- aggregation & export ----------------------------------------------
  Snapshot snapshot() const;
  std::vector<TraceEvent> traceEvents() const;
  /// Folds `other` into this registry: counters/timers sum, gauges take the
  /// max (every multi-source gauge is a high-water mark), trace events
  /// append in `other`'s recording order. Merging workers in index order
  /// keeps the aggregate deterministic.
  void merge(const Registry& other);
  /// Clears every metric and trace event; keeps the enabled state.
  void reset();

  /// Chrome trace-event JSON ("traceEvents" array of B/E/i events, ts in
  /// microseconds) — loadable by chrome://tracing and Perfetto, validated
  /// by tools/lint/check_trace.py.
  void writeChromeTrace(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  std::uint32_t track_ = 0;
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerValue> timers_;
  std::vector<TraceEvent> events_;
};

/// RAII span over a Registry (null-safe: a ScopedSpan over nullptr or a
/// disabled registry records nothing). The span's duration lands both in
/// the trace (B/E pair) and in the phase timer of the same name.
class ScopedSpan {
 public:
  ScopedSpan(Registry* registry, const char* name)
      : registry_(registry != nullptr && registry->enabled() ? registry
                                                             : nullptr),
        name_(name),
        start_(registry_ != nullptr ? registry_->beginSpan(name) : -1) {}
  ScopedSpan(Registry& registry, const char* name)
      : ScopedSpan(&registry, name) {}
  ~ScopedSpan() {
    if (registry_ != nullptr) registry_->endSpan(name_, start_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Registry* registry_;
  const char* name_;
  std::int64_t start_;
};

/// The unified per-run telemetry record every engine reports through
/// Engine::runMetrics() — the sliq.run_report.v1 schema (DESIGN.md §11).
/// The counter/gauge keys shared by all four engines are pinned by
/// tests/core/test_run_report.cpp.
struct RunReport {
  std::string engine;
  unsigned qubits = 0;
  Snapshot metrics;

  /// Stable JSON: top-level schema/engine/qubits plus key-sorted
  /// counters/gauges/phases objects; doubles printed with 17 significant
  /// digits so values round-trip exactly.
  std::string toJson() const;
  /// Human-readable multi-line rendering (--stats / --stats=text).
  std::string toText() const;
};

/// Prints `value` with up to 17 significant digits (round-trip exact), the
/// formatting contract of every double in the v1 schema.
std::string formatDouble(double value);

/// Inserts — zero-valued, never overwriting — the counter and gauge keys
/// every sliq.run_report.v1 report carries regardless of engine, so
/// consumers never branch on key presence. The single source of truth for
/// the cross-engine schema (Engine::runMetrics and the CLI's aggregated
/// per-shot reports both go through here).
void pinCommonSchemaKeys(Snapshot& snapshot);

}  // namespace sliq::metrics
