#include "support/thread_pool.hpp"

#include <algorithm>

namespace sliq {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the future
  }
}

unsigned ThreadPool::hardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace sliq
