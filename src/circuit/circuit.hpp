// QuantumCircuit: an ordered gate list over n qubits, with builder helpers
// for every supported gate and simple structural statistics.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace sliq {

class FusedCircuit;  // circuit/optimizer.hpp

class QuantumCircuit {
 public:
  explicit QuantumCircuit(unsigned numQubits, std::string name = "circuit");

  unsigned numQubits() const { return numQubits_; }
  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  // ---- classical register (dynamic circuits, DESIGN.md §8) ---------------
  /// Declares the classical register (`creg c[bits];`). At most 64 bits so
  /// a register value fits one machine word; re-declaring with a different
  /// size throws (the QASM frontend surfaces this as a redeclaration
  /// diagnostic). Must be declared before any measure / conditioned op.
  void declareClassicalRegister(unsigned bits);
  unsigned numClbits() const { return numClbits_; }
  /// True when the circuit contains any dynamic operation (measure, reset,
  /// or a classically-conditioned gate) — such circuits collapse state
  /// mid-run and must execute through Engine::runDynamic.
  bool isDynamic() const { return dynamicOps_ > 0; }

  std::size_t gateCount() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_[i]; }

  /// Appends a validated gate.
  void append(Gate gate);

  // Single-qubit builders.
  QuantumCircuit& x(unsigned q) { return add1(GateKind::kX, q); }
  QuantumCircuit& y(unsigned q) { return add1(GateKind::kY, q); }
  QuantumCircuit& z(unsigned q) { return add1(GateKind::kZ, q); }
  QuantumCircuit& h(unsigned q) { return add1(GateKind::kH, q); }
  QuantumCircuit& s(unsigned q) { return add1(GateKind::kS, q); }
  QuantumCircuit& sdg(unsigned q) { return add1(GateKind::kSdg, q); }
  QuantumCircuit& t(unsigned q) { return add1(GateKind::kT, q); }
  QuantumCircuit& tdg(unsigned q) { return add1(GateKind::kTdg, q); }
  QuantumCircuit& rx90(unsigned q) { return add1(GateKind::kRx90, q); }
  QuantumCircuit& ry90(unsigned q) { return add1(GateKind::kRy90, q); }

  // Multi-qubit builders.
  QuantumCircuit& cx(unsigned control, unsigned target);
  QuantumCircuit& cz(unsigned control, unsigned target);
  QuantumCircuit& ccx(unsigned c0, unsigned c1, unsigned target);
  /// Toffoli with an arbitrary control set (paper: "general Toffoli gate").
  QuantumCircuit& mcx(const std::vector<unsigned>& controls, unsigned target);
  QuantumCircuit& mcz(const std::vector<unsigned>& controls, unsigned target);
  QuantumCircuit& swap(unsigned q0, unsigned q1);
  /// Fredkin (controlled swap).
  QuantumCircuit& cswap(unsigned control, unsigned q0, unsigned q1);

  // Dynamic-circuit builders.
  /// Mid-circuit measurement of `qubit` recorded into classical bit `cbit`.
  QuantumCircuit& measure(unsigned qubit, unsigned cbit);
  /// Reset of `qubit` to |0⟩ (measure + conditional flip).
  QuantumCircuit& reset(unsigned qubit);
  /// Appends `gate` conditioned on the full classical register equaling
  /// `value` (OpenQASM 2.0 `if (c == value) gate;`).
  QuantumCircuit& onlyIf(std::uint64_t value, Gate gate);

  /// Appends all gates of `other` (same width required).
  QuantumCircuit& compose(const QuantumCircuit& other);

  /// The inverse circuit: gates reversed, each replaced by its inverse
  /// (S↔S†, T↔T†; the rest of Table I is self-inverse). Rx(π/2) and
  /// Ry(π/2) invert only up to a global phase — Rx(π/2)⁻¹ ≃ H·S†·H and
  /// Ry(π/2)⁻¹ = Z·H... emitted as gate sequences; composing a circuit with
  /// its inverse therefore restores all probabilities exactly and all
  /// amplitudes up to one global ω power per Rx gate. Dynamic circuits have
  /// no inverse (measurement is irreversible) — throws std::logic_error.
  QuantumCircuit inverse() const;

  /// The fused view of this circuit (optimizer.hpp: greedy two-qubit-block
  /// gate fusion; dynamic circuits pass through verbatim). The dense-path
  /// engines (statevector, qmdd) execute this by default in runStatic.
  FusedCircuit fused() const;

  /// Gate-kind histogram keyed by mnemonic ("h", "cx", ...).
  std::map<std::string, std::size_t> histogram() const;
  /// Count of gates for which incrementsK() holds — determines the final
  /// k scalar of the algebraic state and bounds integer growth.
  std::size_t countKIncrements() const;

  /// Multi-line description: name, width, gate count, histogram.
  std::string summary() const;

 private:
  QuantumCircuit& add1(GateKind kind, unsigned q);

  unsigned numQubits_;
  unsigned numClbits_ = 0;
  std::size_t dynamicOps_ = 0;  // measure + reset + conditioned ops
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace sliq
