#include "circuit/qasm.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "support/assert.hpp"

namespace sliq {

namespace {

struct Parser {
  std::istream& in;
  std::string circuitName;
  unsigned lineNo = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("qasm:" + std::to_string(lineNo) + ": " + msg);
  }

  static std::string strip(std::string s) {
    const auto comment = s.find("//");
    if (comment != std::string::npos) s.erase(comment);
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) return "";
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
  }

  /// Splits "cx q[0],q[1]" into mnemonic and argument list.
  static void splitStatement(const std::string& stmt, std::string& head,
                             std::string& args) {
    const auto space = stmt.find_first_of(" \t");
    if (space == std::string::npos) {
      head = stmt;
      args = "";
    } else {
      head = stmt.substr(0, space);
      args = strip(stmt.substr(space + 1));
    }
  }

  unsigned parseIndex(const std::string& operand, const std::string& reg) {
    // Accepts "q[7]" for the declared register name.
    const auto open = operand.find('[');
    const auto close = operand.find(']');
    if (open == std::string::npos || close == std::string::npos ||
        close < open + 2)
      fail("malformed operand '" + operand + "'");
    const std::string name = strip(operand.substr(0, open));
    if (name != reg) fail("unknown register '" + name + "'");
    const std::string idx = operand.substr(open + 1, close - open - 1);
    for (char c : idx)
      if (c < '0' || c > '9') fail("bad index '" + idx + "'");
    return static_cast<unsigned>(std::stoul(idx));
  }

  std::vector<unsigned> parseOperands(const std::string& args,
                                      const std::string& reg) {
    std::vector<unsigned> out;
    std::string current;
    std::istringstream ss(args);
    while (std::getline(ss, current, ',')) {
      const std::string op = strip(current);
      if (op.empty()) fail("empty operand");
      out.push_back(parseIndex(op, reg));
    }
    return out;
  }

  QuantumCircuit run() {
    std::optional<QuantumCircuit> circuit;
    std::string qreg;
    std::string pending;  // statements may span lines until ';'
    std::string line;
    while (std::getline(in, line)) {
      ++lineNo;
      if (!pending.empty()) pending += ' ';
      pending += strip(line);
      std::size_t semi;
      while ((semi = pending.find(';')) != std::string::npos) {
        const std::string stmt = strip(pending.substr(0, semi));
        pending = strip(pending.substr(semi + 1));
        if (stmt.empty()) continue;
        handleStatement(stmt, circuit, qreg);
      }
    }
    if (!strip(pending).empty()) fail("trailing statement without ';'");
    if (!circuit) fail("no qreg declaration found");
    return std::move(*circuit);
  }

  void handleStatement(const std::string& stmt,
                       std::optional<QuantumCircuit>& circuit,
                       std::string& qreg) {
    std::string head, args;
    splitStatement(stmt, head, args);

    if (head == "OPENQASM" || head == "include" || head == "creg" ||
        head == "barrier")
      return;  // accepted and ignored
    if (head == "qreg") {
      const auto open = args.find('[');
      const auto close = args.find(']');
      if (open == std::string::npos || close == std::string::npos)
        fail("malformed qreg");
      qreg = strip(args.substr(0, open));
      const unsigned n = static_cast<unsigned>(
          std::stoul(args.substr(open + 1, close - open - 1)));
      if (circuit) fail("multiple qreg declarations");
      circuit.emplace(n, circuitName);
      return;
    }
    if (!circuit) fail("gate before qreg declaration");
    if (head == "measure") return;  // terminal measurement handled by caller

    // Normalize parameterized mnemonics rx(pi/2) / ry(pi/2).
    std::string mnemonic = head;
    const auto paren = head.find('(');
    if (paren != std::string::npos) {
      const std::string base = head.substr(0, paren);
      std::string angle = head.substr(paren);
      angle.erase(std::remove_if(angle.begin(), angle.end(),
                            [](char c) { return c == ' ' || c == '(' || c == ')'; }),
                  angle.end());
      if ((base == "rx" || base == "ry") && angle == "pi/2") {
        mnemonic = base + "90";
      } else {
        fail("unsupported parameterized gate '" + head +
             "' (only rx(pi/2), ry(pi/2) are algebraically representable)");
      }
    }

    const std::vector<unsigned> ops = parseOperands(args, qreg);
    auto need = [&](std::size_t n) {
      if (ops.size() != n)
        fail("gate '" + mnemonic + "' expects " + std::to_string(n) +
             " operands");
    };
    static const std::map<std::string, GateKind> kSingle = {
        {"x", GateKind::kX},       {"y", GateKind::kY},
        {"z", GateKind::kZ},       {"h", GateKind::kH},
        {"s", GateKind::kS},       {"sdg", GateKind::kSdg},
        {"t", GateKind::kT},       {"tdg", GateKind::kTdg},
        {"rx90", GateKind::kRx90}, {"ry90", GateKind::kRy90}};
    if (auto it = kSingle.find(mnemonic); it != kSingle.end()) {
      need(1);
      circuit->append(Gate{it->second, {ops[0]}, {}});
    } else if (mnemonic == "cx") {
      need(2);
      circuit->cx(ops[0], ops[1]);
    } else if (mnemonic == "cz") {
      need(2);
      circuit->cz(ops[0], ops[1]);
    } else if (mnemonic == "ccx") {
      need(3);
      circuit->ccx(ops[0], ops[1], ops[2]);
    } else if (mnemonic == "swap") {
      need(2);
      circuit->swap(ops[0], ops[1]);
    } else if (mnemonic == "cswap") {
      need(3);
      circuit->cswap(ops[0], ops[1], ops[2]);
    } else if (mnemonic.size() > 2 && mnemonic.front() == 'c' &&
               (mnemonic.back() == 'x' || mnemonic.back() == 'z')) {
      // cNx / cNz with explicit count, e.g. "c3x q[0],q[1],q[2],q[3]".
      const std::string countStr = mnemonic.substr(1, mnemonic.size() - 2);
      unsigned count = 0;
      for (char c : countStr) {
        if (c < '0' || c > '9') fail("unknown gate '" + mnemonic + "'");
        count = count * 10 + static_cast<unsigned>(c - '0');
      }
      if (ops.size() != count + 1) fail("operand count mismatch");
      std::vector<unsigned> controls(ops.begin(), ops.end() - 1);
      if (mnemonic.back() == 'x') {
        circuit->mcx(controls, ops.back());
      } else {
        circuit->mcz(controls, ops.back());
      }
    } else {
      fail("unknown gate '" + mnemonic + "'");
    }
  }
};

}  // namespace

QuantumCircuit parseQasm(std::istream& in, const std::string& name) {
  Parser p{in, name};
  return p.run();
}

QuantumCircuit parseQasmString(const std::string& text,
                               const std::string& name) {
  std::istringstream ss(text);
  return parseQasm(ss, name);
}

QuantumCircuit parseQasmFile(const std::string& path) {
  std::ifstream in(path);
  SLIQ_REQUIRE(in.good(), "cannot open QASM file: " + path);
  return parseQasm(in, path);
}

void writeQasm(const QuantumCircuit& circuit, std::ostream& out) {
  out << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  out << "qreg q[" << circuit.numQubits() << "];\n";
  for (const Gate& g : circuit.gates()) {
    std::string mnemonic = gateName(g);
    if (mnemonic == "rx90") mnemonic = "rx(pi/2)";
    if (mnemonic == "ry90") mnemonic = "ry(pi/2)";
    out << mnemonic << " ";
    bool first = true;
    for (unsigned q : g.controls) {
      out << (first ? "" : ",") << "q[" << q << "]";
      first = false;
    }
    for (unsigned q : g.targets) {
      out << (first ? "" : ",") << "q[" << q << "]";
      first = false;
    }
    out << ";\n";
  }
}

std::string toQasmString(const QuantumCircuit& circuit) {
  std::ostringstream os;
  writeQasm(circuit, os);
  return os.str();
}

}  // namespace sliq
