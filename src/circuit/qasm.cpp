#include "circuit/qasm.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "support/assert.hpp"

namespace sliq {

namespace {

struct Parser {
  std::istream& in;
  std::string circuitName;
  unsigned lineNo = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("qasm:" + std::to_string(lineNo) + ": " + msg);
  }

  static std::string strip(std::string s) {
    const auto comment = s.find("//");
    if (comment != std::string::npos) s.erase(comment);
    const auto begin = s.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos) return "";
    const auto end = s.find_last_not_of(" \t\r\n");
    return s.substr(begin, end - begin + 1);
  }

  /// Splits "cx q[0],q[1]" into mnemonic and argument list.
  static void splitStatement(const std::string& stmt, std::string& head,
                             std::string& args) {
    const auto space = stmt.find_first_of(" \t");
    if (space == std::string::npos) {
      head = stmt;
      args = "";
    } else {
      head = stmt.substr(0, space);
      args = strip(stmt.substr(space + 1));
    }
  }

  unsigned parseIndex(const std::string& operand, const std::string& reg) {
    // Accepts "q[7]" for the declared register name.
    const auto open = operand.find('[');
    const auto close = operand.find(']');
    if (open == std::string::npos || close == std::string::npos ||
        close < open + 2)
      fail("malformed operand '" + operand + "'");
    const std::string name = strip(operand.substr(0, open));
    if (name != reg) fail("unknown register '" + name + "'");
    const std::string idx = operand.substr(open + 1, close - open - 1);
    return static_cast<unsigned>(
        parseNumber(idx, std::numeric_limits<unsigned>::max(), "index"));
  }

  std::vector<unsigned> parseOperands(const std::string& args,
                                      const std::string& reg) {
    std::vector<unsigned> out;
    std::string current;
    std::istringstream ss(args);
    while (std::getline(ss, current, ',')) {
      const std::string op = strip(current);
      if (op.empty()) fail("empty operand");
      out.push_back(parseIndex(op, reg));
    }
    return out;
  }

  QuantumCircuit run() {
    std::optional<QuantumCircuit> circuit;
    std::string qreg;
    std::string pending;  // statements may span lines until ';'
    std::string line;
    while (std::getline(in, line)) {
      ++lineNo;
      if (!pending.empty()) pending += ' ';
      pending += strip(line);
      std::size_t semi;
      while ((semi = pending.find(';')) != std::string::npos) {
        const std::string stmt = strip(pending.substr(0, semi));
        pending = strip(pending.substr(semi + 1));
        if (stmt.empty()) continue;
        handleStatement(stmt, circuit, qreg);
      }
    }
    if (!strip(pending).empty()) fail("trailing statement without ';'");
    if (!circuit) fail("no qreg declaration found");
    return std::move(*circuit);
  }

  /// Overflow-checked decimal parse of `digits` into [0, maxValue] — keeps
  /// huge literals inside the qasm:<line>: diagnostic contract instead of
  /// leaking std::out_of_range (or silently truncating through a cast).
  std::uint64_t parseNumber(const std::string& digits, std::uint64_t maxValue,
                            const char* what) {
    if (digits.empty()) fail(std::string("missing ") + what);
    std::uint64_t value = 0;
    for (char c : digits) {
      if (c < '0' || c > '9')
        fail(std::string("bad ") + what + " '" + digits + "'");
      const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
      // Accumulation overflow (uint64) or final value beyond the cap both
      // land in the same diagnostic.
      if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10 ||
          value * 10 + digit > maxValue)
        fail(std::string(what) + " '" + digits + "' is out of range (max " +
             std::to_string(maxValue) + ")");
      value = value * 10 + digit;
    }
    return value;
  }

  /// Parses "name[size]" (register declarations).
  void parseRegDecl(const std::string& args, const char* what,
                    std::string& name, unsigned& size) {
    const auto open = args.find('[');
    const auto close = args.find(']');
    if (open == std::string::npos || close == std::string::npos ||
        close < open + 2)
      fail(std::string("malformed ") + what);
    name = strip(args.substr(0, open));
    const std::string digits = args.substr(open + 1, close - open - 1);
    size = static_cast<unsigned>(parseNumber(
        digits, std::numeric_limits<unsigned>::max(),
        (std::string(what) + " size").c_str()));
  }

  /// Bounds-checked qubit operand (both register-name and index range).
  unsigned parseQubit(const std::string& operand, const std::string& qreg,
                      const QuantumCircuit& circuit) {
    const unsigned q = parseIndex(operand, qreg);
    if (q >= circuit.numQubits()) {
      fail("qubit index " + std::to_string(q) + " out of range for " + qreg +
           "[" + std::to_string(circuit.numQubits()) + "]");
    }
    return q;
  }

  void handleStatement(const std::string& stmt,
                       std::optional<QuantumCircuit>& circuit,
                       std::string& qreg) {
    std::string head, args;
    splitStatement(stmt, head, args);

    if (head == "OPENQASM" || head == "include" || head == "barrier")
      return;  // accepted and ignored
    if (head == "qreg") {
      std::string name;
      unsigned n = 0;
      parseRegDecl(args, "qreg", name, n);
      if (circuit) fail("multiple qreg declarations");
      qreg = name;
      circuit.emplace(n, circuitName);
      return;
    }
    if (!circuit) fail("statement before qreg declaration");
    if (head == "creg") {
      std::string name;
      unsigned bits = 0;
      parseRegDecl(args, "creg", name, bits);
      if (!creg_.empty())
        fail("classical register '" + creg_ + "' already declared (one creg "
             "supported)");
      if (bits == 0 || bits > 64)
        fail("creg size must be in [1, 64], got " + std::to_string(bits));
      creg_ = name;
      circuit->declareClassicalRegister(bits);
      return;
    }

    // OpenQASM 2.0 classical control: `if (c == n) <quantum op>;`.
    bool conditioned = false;
    std::uint64_t conditionValue = 0;
    if (head == "if" || head.rfind("if(", 0) == 0) {
      const auto open = stmt.find('(');
      const auto close = stmt.find(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open)
        fail("malformed if condition");
      std::string cond = stmt.substr(open + 1, close - open - 1);
      cond.erase(std::remove(cond.begin(), cond.end(), ' '), cond.end());
      const auto eq = cond.find("==");
      if (eq == std::string::npos) fail("if condition must be '<creg>==<n>'");
      const std::string name = cond.substr(0, eq);
      const std::string digits = cond.substr(eq + 2);
      if (creg_.empty())
        fail("if on undeclared classical register '" + name + "'");
      if (name != creg_)
        fail("if on undeclared classical register '" + name +
             "' (declared: " + creg_ + ")");
      if (digits.empty()) fail("if condition must be '<creg>==<n>'");
      const unsigned bits = circuit->numClbits();
      const std::uint64_t maxValue =
          bits >= 64 ? std::numeric_limits<std::uint64_t>::max()
                     : (std::uint64_t{1} << bits) - 1;
      conditionValue = parseNumber(digits, maxValue, "condition value");
      const std::string rest = strip(stmt.substr(close + 1));
      if (rest.empty()) fail("if without a quantum operation");
      splitStatement(rest, head, args);
      if (head == "if" || head.rfind("if(", 0) == 0)
        fail("nested if is not supported");
      conditioned = true;
    }

    // Routes every op through the circuit's validated append, attaching the
    // pending condition. (A conditioned whole-register *measure* is refused
    // below: its expansion could not honor QASM's evaluate-once semantics.
    // Whole-register reset is fine — resets never write the register.)
    auto appendOp = [&](Gate g) {
      if (conditioned) {
        g.conditioned = true;
        g.conditionValue = conditionValue;
      }
      circuit->append(std::move(g));
    };

    if (head == "measure") {
      // `measure q[i] -> c[j];` or the whole-register `measure q -> c;`.
      const auto arrow = args.find("->");
      if (arrow == std::string::npos)
        fail("measure expects '<qubit> -> <clbit>'");
      const std::string src = strip(args.substr(0, arrow));
      const std::string dst = strip(args.substr(arrow + 2));
      if (creg_.empty()) fail("measure before creg declaration");
      if (src == qreg && dst == creg_) {
        if (circuit->numQubits() > circuit->numClbits())
          fail("whole-register measure needs " + creg_ + " to span " + qreg);
        if (conditioned) {
          // QASM 2.0 evaluates `if` ONCE per statement, but the expansion
          // below re-evaluates per bit — and earlier bits' creg writes
          // would falsify the condition mid-statement. Refuse rather than
          // silently diverge.
          fail("conditioned whole-register measure is unsupported (the "
               "per-bit expansion would re-evaluate the condition after "
               "each recorded bit); write per-bit measures");
        }
        for (unsigned q = 0; q < circuit->numQubits(); ++q) {
          Gate g{GateKind::kMeasure, {q}, {}};
          g.cbit = q;
          appendOp(std::move(g));
        }
        return;
      }
      const unsigned q = parseQubit(src, qreg, *circuit);
      const unsigned c = parseIndex(dst, creg_);
      if (c >= circuit->numClbits()) {
        fail("classical bit " + std::to_string(c) + " out of range for " +
             creg_ + "[" + std::to_string(circuit->numClbits()) + "]");
      }
      Gate g{GateKind::kMeasure, {q}, {}};
      g.cbit = c;
      appendOp(std::move(g));
      return;
    }
    if (head == "reset") {
      // `reset q[i];` or the whole-register `reset q;`.
      if (strip(args) == qreg) {
        for (unsigned q = 0; q < circuit->numQubits(); ++q)
          appendOp(Gate{GateKind::kReset, {q}, {}});
        return;
      }
      appendOp(Gate{GateKind::kReset, {parseQubit(args, qreg, *circuit)}, {}});
      return;
    }

    // Normalize parameterized mnemonics rx(pi/2) / ry(pi/2).
    std::string mnemonic = head;
    const auto paren = head.find('(');
    if (paren != std::string::npos) {
      const std::string base = head.substr(0, paren);
      std::string angle = head.substr(paren);
      angle.erase(std::remove_if(angle.begin(), angle.end(),
                            [](char c) { return c == ' ' || c == '(' || c == ')'; }),
                  angle.end());
      if ((base == "rx" || base == "ry") && angle == "pi/2") {
        mnemonic = base + "90";
      } else {
        fail("unsupported parameterized gate '" + head +
             "' (only rx(pi/2), ry(pi/2) are algebraically representable)");
      }
    }

    const std::vector<unsigned> ops = parseOperands(args, qreg);
    auto need = [&](std::size_t n) {
      if (ops.size() != n)
        fail("gate '" + mnemonic + "' expects " + std::to_string(n) +
             " operands");
    };
    static const std::map<std::string, GateKind> kSingle = {
        {"x", GateKind::kX},       {"y", GateKind::kY},
        {"z", GateKind::kZ},       {"h", GateKind::kH},
        {"s", GateKind::kS},       {"sdg", GateKind::kSdg},
        {"t", GateKind::kT},       {"tdg", GateKind::kTdg},
        {"rx90", GateKind::kRx90}, {"ry90", GateKind::kRy90}};
    if (auto it = kSingle.find(mnemonic); it != kSingle.end()) {
      need(1);
      appendOp(Gate{it->second, {ops[0]}, {}});
    } else if (mnemonic == "cx") {
      need(2);
      appendOp(Gate{GateKind::kCnot, {ops[1]}, {ops[0]}});
    } else if (mnemonic == "cz") {
      need(2);
      appendOp(Gate{GateKind::kCz, {ops[1]}, {ops[0]}});
    } else if (mnemonic == "ccx") {
      need(3);
      appendOp(Gate{GateKind::kCnot, {ops[2]}, {ops[0], ops[1]}});
    } else if (mnemonic == "swap") {
      need(2);
      appendOp(Gate{GateKind::kSwap, {ops[0], ops[1]}, {}});
    } else if (mnemonic == "cswap") {
      need(3);
      appendOp(Gate{GateKind::kSwap, {ops[1], ops[2]}, {ops[0]}});
    } else if (mnemonic.size() > 2 && mnemonic.front() == 'c' &&
               (mnemonic.back() == 'x' || mnemonic.back() == 'z')) {
      // cNx / cNz with explicit count, e.g. "c3x q[0],q[1],q[2],q[3]".
      const std::string countStr = mnemonic.substr(1, mnemonic.size() - 2);
      unsigned count = 0;
      for (char c : countStr) {
        if (c < '0' || c > '9') fail("unknown gate '" + mnemonic + "'");
        count = count * 10 + static_cast<unsigned>(c - '0');
      }
      if (ops.size() != count + 1) fail("operand count mismatch");
      std::vector<unsigned> controls(ops.begin(), ops.end() - 1);
      appendOp(Gate{mnemonic.back() == 'x' ? GateKind::kCnot : GateKind::kCz,
                    {ops.back()}, std::move(controls)});
    } else {
      fail("unknown gate '" + mnemonic + "'");
    }
  }

  std::string creg_;  // declared classical register name ("" = none)
};

}  // namespace

QuantumCircuit parseQasm(std::istream& in, const std::string& name) {
  Parser p{in, name};
  return p.run();
}

QuantumCircuit parseQasmString(const std::string& text,
                               const std::string& name) {
  std::istringstream ss(text);
  return parseQasm(ss, name);
}

QuantumCircuit parseQasmFile(const std::string& path) {
  std::ifstream in(path);
  SLIQ_REQUIRE(in.good(), "cannot open QASM file: " + path);
  return parseQasm(in, path);
}

void writeQasm(const QuantumCircuit& circuit, std::ostream& out) {
  out << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  out << "qreg q[" << circuit.numQubits() << "];\n";
  if (circuit.numClbits() > 0)
    out << "creg c[" << circuit.numClbits() << "];\n";
  for (const Gate& g : circuit.gates()) {
    if (g.conditioned) out << "if (c==" << g.conditionValue << ") ";
    if (g.kind == GateKind::kMeasure) {
      out << "measure q[" << g.target() << "] -> c[" << g.cbit << "];\n";
      continue;
    }
    if (g.kind == GateKind::kReset) {
      out << "reset q[" << g.target() << "];\n";
      continue;
    }
    std::string mnemonic = gateName(g);
    if (mnemonic == "rx90") mnemonic = "rx(pi/2)";
    if (mnemonic == "ry90") mnemonic = "ry(pi/2)";
    out << mnemonic << " ";
    bool first = true;
    for (unsigned q : g.controls) {
      out << (first ? "" : ",") << "q[" << q << "]";
      first = false;
    }
    for (unsigned q : g.targets) {
      out << (first ? "" : ",") << "q[" << q << "]";
      first = false;
    }
    out << ";\n";
  }
}

std::string toQasmString(const QuantumCircuit& circuit) {
  std::ostringstream os;
  writeQasm(circuit, os);
  return os.str();
}

}  // namespace sliq
