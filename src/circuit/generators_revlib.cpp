// Synthetic stand-ins for the RevLib benchmark circuits of Table IV (the
// original .real files are an external resource; see DESIGN.md §4). All
// generators emit genuine RealProgram objects — including the ".constants"
// metadata that drives the paper's H-modification — over the same gate
// population as RevLib netlists: {NOT, CNOT, multi-control Toffoli, Fredkin}.
#include <string>

#include "circuit/generators.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace sliq {

RealProgram revlibAdder(unsigned width) {
  SLIQ_REQUIRE(width >= 1, "adder width must be positive");
  // Layout: c0, a0..a_{w-1}, b0..b_{w-1}; CDKM ripple adder computing
  // b <- a + b with MAJ / UMA blocks.
  const unsigned n = 2 * width + 1;
  QuantumCircuit c(n, "revlib_add" + std::to_string(width));
  auto a = [&](unsigned i) { return 1 + i; };
  auto b = [&](unsigned i) { return 1 + width + i; };
  const unsigned carry = 0;

  auto maj = [&](unsigned x, unsigned y, unsigned z) {
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
  };
  auto uma = [&](unsigned x, unsigned y, unsigned z) {
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
  };
  maj(carry, b(0), a(0));
  for (unsigned i = 1; i < width; ++i) maj(a(i - 1), b(i), a(i));
  for (unsigned i = width; i-- > 1;) uma(a(i - 1), b(i), a(i));
  uma(carry, b(0), a(0));

  // Inputs: carry is the constant 0, operands are unspecified.
  std::string constants(n, '-');
  constants[carry] = '0';
  return RealProgram{std::move(c), std::move(constants)};
}

RealProgram revlibToffoliCascade(unsigned numQubits, unsigned levels,
                                 std::uint64_t seed) {
  SLIQ_REQUIRE(numQubits >= 4, "cascade needs >= 4 qubits");
  Rng rng(seed);
  QuantumCircuit c(numQubits, "revlib_cascade_q" + std::to_string(numQubits) +
                                  "_l" + std::to_string(levels));
  // Control-unit-like structure: each level computes a wide AND into one
  // line, then fans out through CNOTs, occasionally inverting controls.
  for (unsigned level = 0; level < levels; ++level) {
    const unsigned target = static_cast<unsigned>(rng.below(numQubits));
    std::vector<unsigned> controls;
    const unsigned fan = 2 + static_cast<unsigned>(rng.below(3));  // 2..4
    while (controls.size() < fan) {
      const unsigned q = static_cast<unsigned>(rng.below(numQubits));
      bool dup = q == target;
      for (unsigned seen : controls) dup |= seen == q;
      if (!dup) controls.push_back(q);
    }
    // Mixed polarity via surrounding NOTs (as RevLib's negative controls).
    std::vector<unsigned> flipped;
    for (unsigned q : controls) {
      if (rng.below(3) == 0) flipped.push_back(q);
    }
    for (unsigned q : flipped) c.x(q);
    c.mcx(controls, target);
    for (unsigned q : flipped) c.x(q);
    // Fan-out stage.
    const unsigned fanOut = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned j = 0; j < fanOut; ++j) {
      unsigned dst = static_cast<unsigned>(rng.below(numQubits));
      if (dst == target) dst = (dst + 1) % numQubits;
      c.cx(target, dst);
    }
  }
  // Roughly half the inputs carry fixed values, half are unspecified —
  // matching the profile of RevLib control circuits.
  std::string constants(numQubits, '-');
  for (unsigned q = 0; q < numQubits; ++q) {
    if (rng.below(2) == 0) constants[q] = rng.flip() ? '1' : '0';
  }
  return RealProgram{std::move(c), std::move(constants)};
}

RealProgram revlibRandomNetlist(unsigned numQubits, unsigned numGates,
                                std::uint64_t seed) {
  SLIQ_REQUIRE(numQubits >= 4, "netlist needs >= 4 qubits");
  Rng rng(seed);
  QuantumCircuit c(numQubits, "revlib_rand_q" + std::to_string(numQubits) +
                                  "_g" + std::to_string(numGates));
  auto distinct = [&](unsigned count) {
    std::vector<unsigned> qs;
    while (qs.size() < count) {
      const unsigned q = static_cast<unsigned>(rng.below(numQubits));
      bool dup = false;
      for (unsigned seen : qs) dup |= seen == q;
      if (!dup) qs.push_back(q);
    }
    return qs;
  };
  for (unsigned i = 0; i < numGates; ++i) {
    switch (rng.below(6)) {
      case 0: c.x(static_cast<unsigned>(rng.below(numQubits))); break;
      case 1: {
        const auto qs = distinct(2);
        c.cx(qs[0], qs[1]);
        break;
      }
      case 2:
      case 3: {
        const auto qs = distinct(3);
        c.ccx(qs[0], qs[1], qs[2]);
        break;
      }
      case 4: {
        const auto qs = distinct(4);
        c.mcx({qs[0], qs[1], qs[2]}, qs[3]);
        break;
      }
      default: {
        const auto qs = distinct(3);
        c.cswap(qs[0], qs[1], qs[2]);
        break;
      }
    }
  }
  std::string constants(numQubits, '-');
  return RealProgram{std::move(c), std::move(constants)};
}

RealProgram revlibHwb(unsigned dataBits) {
  SLIQ_REQUIRE(dataBits >= 2 && dataBits <= 16, "hwb size out of range");
  // Popcount network into ⌈log2(n+1)⌉ ancilla counters via Toffoli ladders,
  // then a result line toggled under counter patterns — control-heavy like
  // RevLib's hwb family.
  unsigned counterBits = 0;
  while ((1u << counterBits) <= dataBits) ++counterBits;
  const unsigned n = dataBits + counterBits + 1;
  QuantumCircuit c(n, "revlib_hwb" + std::to_string(dataBits));
  auto counter = [&](unsigned i) { return dataBits + i; };
  const unsigned result = dataBits + counterBits;

  // Increment the counter for each set data bit: ripple increment
  // controlled on the data qubit (MSB-first Toffoli ladder).
  for (unsigned d = 0; d < dataBits; ++d) {
    for (unsigned i = counterBits; i-- > 0;) {
      std::vector<unsigned> controls{d};
      for (unsigned j = 0; j < i; ++j) controls.push_back(counter(j));
      c.mcx(controls, counter(i));
    }
  }
  // Toggle the result under each counter value with odd parity of low bits.
  for (unsigned v = 1; v < (1u << counterBits); v += 2) {
    std::vector<unsigned> controls;
    std::vector<unsigned> flips;
    for (unsigned i = 0; i < counterBits; ++i) {
      controls.push_back(counter(i));
      if (((v >> i) & 1) == 0) flips.push_back(counter(i));
    }
    for (unsigned q : flips) c.x(q);
    c.mcx(controls, result);
    for (unsigned q : flips) c.x(q);
  }
  std::string constants(n, '-');
  for (unsigned i = 0; i < counterBits; ++i) constants[counter(i)] = '0';
  constants[result] = '0';
  return RealProgram{std::move(c), std::move(constants)};
}

}  // namespace sliq
