// Quantum gate model: the paper's Table I gate library plus the S†/T†
// extensions (marked; see DESIGN.md §3).
#pragma once

#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace sliq {

enum class GateKind : std::uint8_t {
  kX,        // Pauli-X
  kY,        // Pauli-Y
  kZ,        // Pauli-Z
  kH,        // Hadamard
  kS,        // Phase
  kSdg,      // Phase†            (extension beyond Table I)
  kT,        // T
  kTdg,      // T†                (extension beyond Table I)
  kRx90,     // Rx(π/2)
  kRy90,     // Ry(π/2)
  kCnot,     // controlled-NOT (any number of controls = Toffoli family)
  kCz,       // controlled-Z
  kSwap,     // SWAP; with controls = Fredkin family
  // Dynamic-circuit operations (DESIGN.md §8). These are not unitary gates:
  // they collapse (and, for kMeasure, record) state, so the static
  // Engine::run path rejects circuits containing them — execution goes
  // through Engine::runDynamic, which owns the classical register.
  kMeasure,  // projective Z measurement of targets[0], recorded in creg[cbit]
  kReset,    // measure targets[0], then flip to |0⟩ (outcome discarded)
};

/// One circuit operation: a kind, target qubit(s) and control qubits.
/// kCnot with >=2 controls is the Toffoli of the paper (arbitrary control
/// count supported); kSwap with >=1 control is the Fredkin gate.
///
/// Dynamic-circuit extensions: kMeasure writes its outcome into classical
/// bit `cbit`; any operation may carry a classical condition (`conditioned`
/// + `conditionValue`), the OpenQASM 2.0 `if (c == n) op;` — the op
/// executes iff the full classical register currently equals the value.
struct Gate {
  GateKind kind;
  std::vector<unsigned> targets;   // 1 target (2 for kSwap)
  std::vector<unsigned> controls;  // empty unless controlled
  unsigned cbit = 0;               // kMeasure: classical bit written
  bool conditioned = false;        // classical condition attached?
  std::uint64_t conditionValue = 0;  // execute iff creg == conditionValue

  unsigned target() const { return targets[0]; }
  /// Total distinct qubits touched.
  unsigned arity() const {
    return static_cast<unsigned>(targets.size() + controls.size());
  }
  /// True for the non-unitary dynamic operations (measure / reset).
  bool isDynamicOp() const {
    return kind == GateKind::kMeasure || kind == GateKind::kReset;
  }
};

/// Lower-case mnemonic ("h", "cx", "ccx", "cswap", ...) used by the QASM
/// writer and log output.
std::string gateName(const Gate& gate);

/// True for gates that only permute basis states (no amplitude arithmetic):
/// X, CNOT/Toffoli, SWAP/Fredkin.
bool isPermutationGate(GateKind kind);

/// The 2×2 unitary applied to the target qubit, row-major
/// (m[0]=⟨0|U|0⟩, m[1]=⟨0|U|1⟩, m[2]=⟨1|U|0⟩, m[3]=⟨1|U|1⟩). Valid for
/// every kind with a single-qubit base unitary — i.e. everything except
/// kSwap and the dynamic ops, for which it throws std::invalid_argument.
/// For kCnot/kCz this is the base X/Z applied under the controls. The one
/// shared definition of the gate constants (dense engine, QMDD gate DDs and
/// the fusion pass all consume it).
void gateUnitary2x2(GateKind kind, std::complex<double> m[4]);

/// True when gateUnitary2x2 is defined for `kind`.
bool hasUnitary2x2(GateKind kind);

/// True for gates whose unitary is diagonal in the computational basis
/// (Z, S, S†, T, T†, CZ and their multi-controlled forms).
bool isDiagonalGate(GateKind kind);

/// True for the gates carrying a 1/√2 factor (H, Rx(π/2), Ry(π/2)); these
/// increment the global k scalar in the algebraic representation.
bool incrementsK(GateKind kind);

/// Validates qubit indices and distinctness; throws std::invalid_argument.
/// (Classical-register fields — cbit range, condition width — are validated
/// by QuantumCircuit::append, which knows the register size.)
void validateGate(const Gate& gate, unsigned numQubits);

}  // namespace sliq
