// Peephole circuit optimizer over the Table I gate library.
//
// Rewrites gate sequences without changing the circuit unitary:
//   * cancellation   — G·G = I for the self-inverse gates (X, Y, Z, H,
//                      CNOT/Toffoli, CZ, SWAP/Fredkin), S·S† = T·T† = I
//   * phase merging  — T·T → S, S·S → Z, S†·S† → Z, T†·T† → S†
//
// A pair only fuses when the two gates are adjacent on *all* their qubits:
// no intervening gate may touch any qubit of the pair. The pass iterates to
// a fixpoint. Every rewrite is exactness-preserving; the test suite verifies
// optimized circuits against the originals with the exact equivalence
// checker.
#pragma once

#include "circuit/circuit.hpp"

namespace sliq {

struct OptimizerReport {
  std::size_t gatesBefore = 0;
  std::size_t gatesAfter = 0;
  std::size_t cancelled = 0;  // gates removed by G·G⁻¹ = I
  std::size_t merged = 0;     // gates fused by phase merging
};

QuantumCircuit optimizeCircuit(const QuantumCircuit& circuit,
                               OptimizerReport* report = nullptr);

}  // namespace sliq
