// Peephole circuit optimizer over the Table I gate library.
//
// Rewrites gate sequences without changing the circuit unitary:
//   * cancellation   — G·G = I for the self-inverse gates (X, Y, Z, H,
//                      CNOT/Toffoli, CZ, SWAP/Fredkin), S·S† = T·T† = I
//   * phase merging  — T·T → S, S·S → Z, S†·S† → Z, T†·T† → S†
//
// A pair only fuses when the two gates are adjacent on *all* their qubits:
// no intervening gate may touch any qubit of the pair. The pass iterates to
// a fixpoint. Every rewrite is exactness-preserving; the test suite verifies
// optimized circuits against the originals with the exact equivalence
// checker.
#pragma once

#include <array>
#include <complex>

#include "circuit/circuit.hpp"

namespace sliq {

struct OptimizerReport {
  std::size_t gatesBefore = 0;
  std::size_t gatesAfter = 0;
  std::size_t cancelled = 0;  // gates removed by G·G⁻¹ = I
  std::size_t merged = 0;     // gates fused by phase merging
};

QuantumCircuit optimizeCircuit(const QuantumCircuit& circuit,
                               OptimizerReport* report = nullptr);

// ---- gate fusion (DESIGN.md §9) -------------------------------------------
//
// Dense-engine preprocessing: runs of adjacent gates whose combined support
// fits in one or two qubits are multiplied into a single 2×2 or 4×4 unitary
// block, so the amplitude array (or decision diagram) is traversed once per
// *block* instead of once per gate. "Adjacent" is modulo trivially commuting
// gates on disjoint qubits: a 1q gate on q fuses past any number of gates
// not touching q. Blocks never reorder relative to gates they share a qubit
// with, so the fused circuit computes the exact same unitary (up to the
// floating-point reassociation of the matrix products — bounded by the
// differential tests at 1e-12).

/// One operation of a fused circuit: either an original gate passed through
/// (multi-qubit support > 2, or nothing adjacent to fuse with), a fused 2×2
/// on one qubit, or a fused 4×4 on an ordered qubit pair.
struct FusedOp {
  enum class Kind : std::uint8_t {
    kGate,  // `gate` verbatim (Toffoli/Fredkin/MCZ, or an unfused single)
    k1q,    // m1 applied to qubit q0
    k2q,    // m2 applied to the (q0, q1) pair, q0 < q1
  };

  Kind kind = Kind::kGate;
  Gate gate;                 // kGate only
  unsigned q0 = 0;           // k1q / k2q
  unsigned q1 = 0;           // k2q only (q0 < q1)
  /// Row-major 2×2 (k1q).
  std::array<std::complex<double>, 4> m1{};
  /// Row-major 4×4 (k2q); basis index b = 2·(bit of q1) + (bit of q0).
  std::array<std::complex<double>, 16> m2{};
  /// k2q with every off-diagonal entry exactly zero (a run of Z/S/T/CZ):
  /// engines apply it as a phase multiply instead of a 4×4 product.
  bool diagonal = false;
  /// Original gates combined into this op (1 for kGate).
  unsigned gatesFused = 1;
};

struct FusionReport {
  std::size_t gatesIn = 0;
  std::size_t opsOut = 0;
  std::size_t fusedBlocks = 0;     // ops combining >= 2 gates
  std::size_t diagonalBlocks = 0;  // k2q blocks with the diagonal flag
};

/// A fused view of one static circuit (see QuantumCircuit::fused()).
class FusedCircuit {
 public:
  FusedCircuit(unsigned numQubits, std::vector<FusedOp> ops)
      : numQubits_(numQubits), ops_(std::move(ops)) {}

  unsigned numQubits() const { return numQubits_; }
  std::size_t opCount() const { return ops_.size(); }
  const std::vector<FusedOp>& ops() const { return ops_; }

 private:
  unsigned numQubits_;
  std::vector<FusedOp> ops_;
};

/// Greedy two-qubit-block fusion. Dynamic circuits pass through untouched
/// (every op emitted as kGate in order): collapse points and classical
/// conditions must see exactly the per-op execution runDynamic drives.
FusedCircuit fuseCircuit(const QuantumCircuit& circuit,
                         FusionReport* report = nullptr);

}  // namespace sliq
