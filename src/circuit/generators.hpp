// Workload generators reproducing the paper's four benchmark families
// (Section IV). Each generator is deterministic in its seed.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/real_format.hpp"

namespace sliq {

// ---- Benchmark set 1: random circuits (Table III) -------------------------

/// The paper's recipe: one H on every qubit, then `numGates` gates picked
/// uniformly from {X, Y, Z, H, S, T, CNOT, CZ, Toffoli, Fredkin} (Rx/Ry
/// excluded, "as they exhibit similar effects as the H-gate") applied to
/// uniformly random distinct qubits. Total gate count = n + numGates.
QuantumCircuit randomCircuit(unsigned numQubits, unsigned numGates,
                             std::uint64_t seed);

// ---- Benchmark set 2: RevLib-style reversible circuits (Table IV) ---------

/// Ripple-carry adder (CDKM-style MAJ/UMA network) over two `width`-bit
/// registers plus one carry qubit: 2*width+1 qubits, Toffoli/CNOT gates.
RealProgram revlibAdder(unsigned width);

/// Multi-level Toffoli cascade with `levels` layers mixing control polarity,
/// shaped like RevLib's ALU/control-unit netlists.
RealProgram revlibToffoliCascade(unsigned numQubits, unsigned levels,
                                 std::uint64_t seed);

/// Random reversible netlist over {NOT, CNOT, Toffoli, Fredkin} with a bias
/// toward multi-control gates, shaped like synthesized RevLib functions.
RealProgram revlibRandomNetlist(unsigned numQubits, unsigned numGates,
                                std::uint64_t seed);

/// Hidden-weight-bit-style circuit: computes a popcount-indexed bit through
/// Toffoli ladders into ancillae (control-heavy, like RevLib hwb*).
RealProgram revlibHwb(unsigned dataBits);

// ---- Benchmark set 3: quantum algorithm circuits (Table V) -----------------

/// GHZ/entanglement preparation: H(0) then a CNOT chain — the paper's
/// "Entanglement" family (one gate per qubit).
QuantumCircuit entanglementCircuit(unsigned numQubits);

/// Bernstein–Vazirani with a `secret` bit string (LSB = qubit 0) over
/// numQubits data qubits plus one ancilla: 3n + #ones gates as in the paper
/// (H layer, oracle of CNOTs, H layer).
QuantumCircuit bernsteinVazirani(unsigned numQubits,
                                 const std::vector<bool>& secret);
/// Convenience overload with a pseudo-random secret.
QuantumCircuit bernsteinVazirani(unsigned numQubits, std::uint64_t seed);

/// Grover search over `numQubits` data qubits marking `marked` (uses
/// multi-controlled Z; iteration count ⌊π/4·√2ⁿ⌋ unless overridden).
QuantumCircuit groverSearch(unsigned numQubits, std::uint64_t marked,
                            unsigned iterations = 0);

// ---- Benchmark set 4: Google supremacy-style grids (Table VI) -------------

/// Random circuit on a rows x cols qubit grid following the GRCS rule set
/// (Boixo et al.): initial H layer; per depth layer one of 8 CZ tilings plus
/// random single-qubit gates from {T, X^1/2 (Rx90), Y^1/2 (Ry90)} on qubits
/// that were CZ-active in the previous layer (first single-qubit gate on a
/// qubit is always T).
QuantumCircuit supremacyGrid(unsigned rows, unsigned cols, unsigned depth,
                             std::uint64_t seed);

}  // namespace sliq
