#include <algorithm>
#include <cmath>

#include "circuit/generators.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace sliq {

QuantumCircuit entanglementCircuit(unsigned numQubits) {
  QuantumCircuit c(numQubits, "entangle_q" + std::to_string(numQubits));
  c.h(0);
  for (unsigned q = 0; q + 1 < numQubits; ++q) c.cx(q, q + 1);
  return c;
}

QuantumCircuit bernsteinVazirani(unsigned numQubits,
                                 const std::vector<bool>& secret) {
  SLIQ_REQUIRE(secret.size() == numQubits, "secret width mismatch");
  // Data qubits 0..n-1, ancilla n prepared in |−⟩.
  QuantumCircuit c(numQubits + 1, "bv_q" + std::to_string(numQubits));
  const unsigned ancilla = numQubits;
  c.x(ancilla);
  for (unsigned q = 0; q <= numQubits; ++q) c.h(q);
  for (unsigned q = 0; q < numQubits; ++q) {
    if (secret[q]) c.cx(q, ancilla);
  }
  for (unsigned q = 0; q < numQubits; ++q) c.h(q);
  return c;
}

QuantumCircuit bernsteinVazirani(unsigned numQubits, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> secret(numQubits);
  for (unsigned q = 0; q < numQubits; ++q) secret[q] = rng.flip();
  QuantumCircuit c = bernsteinVazirani(numQubits, secret);
  c.setName(c.name() + "_s" + std::to_string(seed));
  return c;
}

QuantumCircuit groverSearch(unsigned numQubits, std::uint64_t marked,
                            unsigned iterations) {
  SLIQ_REQUIRE(numQubits >= 2 && numQubits < 63, "grover width out of range");
  SLIQ_REQUIRE(marked < (std::uint64_t{1} << numQubits),
               "marked item out of range");
  if (iterations == 0) {
    // ⌊π/4 · √(2ⁿ)⌋, at least 1.
    const double amplitudes = std::sqrt(static_cast<double>(
        std::uint64_t{1} << numQubits));
    iterations = std::max(1u, static_cast<unsigned>(0.785398 * amplitudes));
  }
  QuantumCircuit c(numQubits, "grover_q" + std::to_string(numQubits));
  std::vector<unsigned> allButLast;
  for (unsigned q = 0; q + 1 < numQubits; ++q) allButLast.push_back(q);

  for (unsigned q = 0; q < numQubits; ++q) c.h(q);
  for (unsigned it = 0; it < iterations; ++it) {
    // Oracle: phase-flip the marked basis state via X-conjugated MCZ.
    for (unsigned q = 0; q < numQubits; ++q) {
      if (((marked >> q) & 1) == 0) c.x(q);
    }
    c.mcz(allButLast, numQubits - 1);
    for (unsigned q = 0; q < numQubits; ++q) {
      if (((marked >> q) & 1) == 0) c.x(q);
    }
    // Diffusion: H X (MCZ) X H.
    for (unsigned q = 0; q < numQubits; ++q) c.h(q);
    for (unsigned q = 0; q < numQubits; ++q) c.x(q);
    c.mcz(allButLast, numQubits - 1);
    for (unsigned q = 0; q < numQubits; ++q) c.x(q);
    for (unsigned q = 0; q < numQubits; ++q) c.h(q);
  }
  return c;
}

}  // namespace sliq
