#include "circuit/generators.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace sliq {

QuantumCircuit randomCircuit(unsigned numQubits, unsigned numGates,
                             std::uint64_t seed) {
  SLIQ_REQUIRE(numQubits >= 3, "random circuits need >= 3 qubits (Fredkin)");
  Rng rng(seed);
  QuantumCircuit c(numQubits,
                   "random_q" + std::to_string(numQubits) + "_g" +
                       std::to_string(numGates) + "_s" + std::to_string(seed));
  // "we first inserted an H-gate to every qubit (so to impose state
  //  superposition in the beginning)"
  for (unsigned q = 0; q < numQubits; ++q) c.h(q);

  // Gate population of the paper: all supported gates except Rx/Ry(π/2).
  enum Pick { kPX, kPY, kPZ, kPH, kPS, kPT, kPCnot, kPCz, kPToffoli, kPFredkin };
  auto distinct = [&](unsigned count) {
    std::vector<unsigned> qs;
    while (qs.size() < count) {
      const unsigned q = static_cast<unsigned>(rng.below(numQubits));
      bool dup = false;
      for (unsigned seen : qs) dup |= seen == q;
      if (!dup) qs.push_back(q);
    }
    return qs;
  };
  for (unsigned i = 0; i < numGates; ++i) {
    switch (static_cast<Pick>(rng.below(10))) {
      case kPX: c.x(static_cast<unsigned>(rng.below(numQubits))); break;
      case kPY: c.y(static_cast<unsigned>(rng.below(numQubits))); break;
      case kPZ: c.z(static_cast<unsigned>(rng.below(numQubits))); break;
      case kPH: c.h(static_cast<unsigned>(rng.below(numQubits))); break;
      case kPS: c.s(static_cast<unsigned>(rng.below(numQubits))); break;
      case kPT: c.t(static_cast<unsigned>(rng.below(numQubits))); break;
      case kPCnot: {
        const auto qs = distinct(2);
        c.cx(qs[0], qs[1]);
        break;
      }
      case kPCz: {
        const auto qs = distinct(2);
        c.cz(qs[0], qs[1]);
        break;
      }
      case kPToffoli: {
        const auto qs = distinct(3);
        c.ccx(qs[0], qs[1], qs[2]);
        break;
      }
      case kPFredkin: {
        const auto qs = distinct(3);
        c.cswap(qs[0], qs[1], qs[2]);
        break;
      }
    }
  }
  return c;
}

}  // namespace sliq
