// Google quantum-supremacy-style random grid circuits (Boixo et al.,
// "Characterizing quantum supremacy in near-term devices"), the source of
// the paper's Table VI benchmarks (GRCS "inst/rectangular/cz_v2").
//
// Rule set implemented:
//  * qubits form a rows x cols grid; layer 0 applies H everywhere;
//  * each subsequent layer activates one of 8 CZ tilings (horizontal pairs
//    in 4 staggered configurations, vertical pairs in 4), cycling;
//  * a qubit idle in the current CZ tiling receives a random single-qubit
//    gate from {T, X^1/2, Y^1/2} if it was CZ-active in the previous layer;
//    the first single-qubit gate a qubit ever receives is T;
//  * no single-qubit gate repeats back-to-back on the same qubit.
#include <string>
#include <vector>

#include "circuit/generators.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace sliq {

namespace {

enum class Sq : std::uint8_t { kNone, kT, kX90, kY90 };

}  // namespace

QuantumCircuit supremacyGrid(unsigned rows, unsigned cols, unsigned depth,
                             std::uint64_t seed) {
  SLIQ_REQUIRE(rows >= 1 && cols >= 1, "empty grid");
  const unsigned n = rows * cols;
  Rng rng(seed);
  QuantumCircuit c(n, "supremacy_" + std::to_string(rows) + "x" +
                          std::to_string(cols) + "_d" + std::to_string(depth) +
                          "_s" + std::to_string(seed));
  auto qubit = [&](unsigned r, unsigned col) { return r * cols + col; };

  for (unsigned q = 0; q < n; ++q) c.h(q);

  std::vector<bool> everSingle(n, false);
  std::vector<Sq> lastSingle(n, Sq::kNone);
  std::vector<bool> activePrev(n, true);  // H layer counts as activity

  for (unsigned layer = 0; layer < depth; ++layer) {
    // CZ tiling: 8 configurations as in the GRCS rectangular pattern.
    const unsigned config = layer % 8;
    const bool horizontal = config < 4;
    const unsigned parity = config % 2;        // staggered row/col start
    const unsigned offset = (config / 2) % 2;  // alternate pair phase
    std::vector<bool> activeNow(n, false);

    if (horizontal) {
      for (unsigned r = 0; r < rows; ++r) {
        if (r % 2 != parity) continue;
        for (unsigned col = offset; col + 1 < cols; col += 2) {
          c.cz(qubit(r, col), qubit(r, col + 1));
          activeNow[qubit(r, col)] = activeNow[qubit(r, col + 1)] = true;
        }
      }
    } else {
      for (unsigned col = 0; col < cols; ++col) {
        if (col % 2 != parity) continue;
        for (unsigned r = offset; r + 1 < rows; r += 2) {
          c.cz(qubit(r, col), qubit(r + 1, col));
          activeNow[qubit(r, col)] = activeNow[qubit(r + 1, col)] = true;
        }
      }
    }

    // Single-qubit gates on qubits idle now but CZ-active last layer.
    for (unsigned q = 0; q < n; ++q) {
      if (activeNow[q] || !activePrev[q]) continue;
      Sq pick;
      if (!everSingle[q]) {
        pick = Sq::kT;  // first single-qubit gate is always T
      } else {
        do {
          const std::uint64_t r = rng.below(3);
          pick = r == 0 ? Sq::kT : (r == 1 ? Sq::kX90 : Sq::kY90);
        } while (pick == lastSingle[q]);
      }
      switch (pick) {
        case Sq::kT: c.t(q); break;
        case Sq::kX90: c.rx90(q); break;
        case Sq::kY90: c.ry90(q); break;
        case Sq::kNone: break;
      }
      everSingle[q] = true;
      lastSingle[q] = pick;
    }
    activePrev.assign(activeNow.begin(), activeNow.end());
  }
  return c;
}

}  // namespace sliq
