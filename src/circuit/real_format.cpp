#include "circuit/real_format.hpp"

#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace sliq {

namespace {

std::string strip(std::string s) {
  const auto comment = s.find('#');
  if (comment != std::string::npos) s.erase(comment);
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> tokens(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string tok;
  while (ss >> tok) out.push_back(tok);
  return out;
}

}  // namespace

RealProgram parseReal(std::istream& in, const std::string& name) {
  unsigned lineNo = 0;
  auto fail = [&](const std::string& msg) -> void {
    throw std::invalid_argument("real:" + std::to_string(lineNo) + ": " + msg);
  };

  std::optional<unsigned> numVars;
  std::map<std::string, unsigned> varIndex;
  std::string constants;
  std::optional<QuantumCircuit> circuit;
  bool inBody = false;

  std::string line;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::string stmt = strip(line);
    if (stmt.empty()) continue;
    const std::vector<std::string> tok = tokens(stmt);

    if (tok[0][0] == '.') {
      if (tok[0] == ".numvars") {
        if (tok.size() != 2) fail(".numvars needs one argument");
        numVars = static_cast<unsigned>(std::stoul(tok[1]));
      } else if (tok[0] == ".variables") {
        if (!numVars) fail(".variables before .numvars");
        if (tok.size() != *numVars + 1) fail("variable count mismatch");
        for (unsigned i = 1; i < tok.size(); ++i) varIndex[tok[i]] = i - 1;
      } else if (tok[0] == ".constants") {
        if (tok.size() == 2) constants = tok[1];
      } else if (tok[0] == ".begin") {
        if (!numVars) fail(".begin before .numvars");
        circuit.emplace(*numVars, name);
        inBody = true;
      } else if (tok[0] == ".end") {
        inBody = false;
      }
      // .version/.inputs/.outputs/.garbage/... accepted and ignored.
      continue;
    }

    if (!inBody) fail("gate line outside .begin/.end");
    SLIQ_ASSERT(circuit.has_value());

    // Gate line: t<N> or f<N> followed by N variable names; a '-' prefix on
    // a control denotes a negative control.
    const std::string& mnemonic = tok[0];
    if (mnemonic.size() < 2 || (mnemonic[0] != 't' && mnemonic[0] != 'f'))
      fail("unsupported gate '" + mnemonic + "'");
    const bool fredkin = mnemonic[0] == 'f';
    unsigned arity = 0;
    for (std::size_t i = 1; i < mnemonic.size(); ++i) {
      if (mnemonic[i] < '0' || mnemonic[i] > '9')
        fail("unsupported gate '" + mnemonic + "'");
      arity = arity * 10 + static_cast<unsigned>(mnemonic[i] - '0');
    }
    if (tok.size() != arity + 1) fail("operand count mismatch");
    if (fredkin && arity < 2) fail("fredkin needs at least two operands");

    auto resolve = [&](std::string operand, bool* negative) {
      *negative = false;
      if (!operand.empty() && operand[0] == '-') {
        *negative = true;
        operand.erase(0, 1);
      }
      if (varIndex.empty()) {
        // Files without .variables use positional names x0, x1, ...
        if (operand.size() > 1 && (operand[0] == 'x' || operand[0] == 'q'))
          return static_cast<unsigned>(std::stoul(operand.substr(1)));
        fail("unknown variable '" + operand + "'");
        return 0u;  // unreachable
      }
      const auto it = varIndex.find(operand);
      if (it == varIndex.end()) {
        fail("unknown variable '" + operand + "'");
        return 0u;  // unreachable
      }
      return it->second;
    };

    const unsigned numTargets = fredkin ? 2 : 1;
    std::vector<unsigned> controls;
    std::vector<unsigned> negatives;
    for (std::size_t i = 1; i + numTargets < tok.size(); ++i) {
      bool neg = false;
      const unsigned q = resolve(tok[i], &neg);
      controls.push_back(q);
      if (neg) negatives.push_back(q);
    }
    std::vector<unsigned> targets;
    for (std::size_t i = tok.size() - numTargets; i < tok.size(); ++i) {
      bool neg = false;
      targets.push_back(resolve(tok[i], &neg));
      if (neg) fail("negative polarity on a target");
    }

    // Negative controls: conjugate with X on those controls.
    for (unsigned q : negatives) circuit->x(q);
    if (fredkin) {
      circuit->append(Gate{GateKind::kSwap, targets, controls});
    } else {
      circuit->append(Gate{GateKind::kCnot, targets, controls});
    }
    for (unsigned q : negatives) circuit->x(q);
  }

  if (!circuit) fail("missing .begin section");
  if (constants.empty()) constants.assign(circuit->numQubits(), '-');
  SLIQ_REQUIRE(constants.size() == circuit->numQubits(),
               ".constants width mismatch");
  return RealProgram{std::move(*circuit), std::move(constants)};
}

RealProgram parseRealString(const std::string& text, const std::string& name) {
  std::istringstream ss(text);
  return parseReal(ss, name);
}

RealProgram parseRealFile(const std::string& path) {
  std::ifstream in(path);
  SLIQ_REQUIRE(in.good(), "cannot open .real file: " + path);
  return parseReal(in, path);
}

QuantumCircuit modifyWithHadamards(const RealProgram& program) {
  QuantumCircuit out(program.circuit.numQubits(),
                     program.circuit.name() + "_mod");
  for (unsigned q = 0; q < out.numQubits(); ++q) {
    if (program.constants[q] == '-') out.h(q);
    if (program.constants[q] == '1') out.x(q);
  }
  out.compose(program.circuit);
  return out;
}

QuantumCircuit instantiateOriginal(const RealProgram& program,
                                   std::uint64_t seed) {
  Rng rng(seed);
  QuantumCircuit out(program.circuit.numQubits(),
                     program.circuit.name() + "_orig");
  for (unsigned q = 0; q < out.numQubits(); ++q) {
    const char c = program.constants[q];
    if (c == '1' || (c == '-' && rng.flip())) out.x(q);
  }
  out.compose(program.circuit);
  return out;
}

}  // namespace sliq
