#include "circuit/optimizer.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "support/assert.hpp"

namespace sliq {

namespace {

std::vector<unsigned> touchedQubits(const Gate& g) {
  std::vector<unsigned> qs = g.targets;
  qs.insert(qs.end(), g.controls.begin(), g.controls.end());
  std::sort(qs.begin(), qs.end());
  return qs;
}

bool sameQubits(const Gate& a, const Gate& b) {
  if (a.controls.size() != b.controls.size()) return false;
  std::vector<unsigned> ca = a.controls, cb = b.controls;
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  if (ca != cb) return false;
  std::vector<unsigned> ta = a.targets, tb = b.targets;
  if (a.kind == GateKind::kSwap) {  // SWAP targets are unordered
    std::sort(ta.begin(), ta.end());
    std::sort(tb.begin(), tb.end());
  }
  return ta == tb;
}

bool selfInverse(GateKind k) {
  switch (k) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kCnot:
    case GateKind::kCz:
    case GateKind::kSwap:
      return true;
    default:
      return false;
  }
}

bool inversePair(GateKind a, GateKind b) {
  return (a == GateKind::kS && b == GateKind::kSdg) ||
         (a == GateKind::kSdg && b == GateKind::kS) ||
         (a == GateKind::kT && b == GateKind::kTdg) ||
         (a == GateKind::kTdg && b == GateKind::kT);
}

/// If a·b fuses into one gate, the fused kind. a is applied first.
std::optional<GateKind> mergeKind(GateKind a, GateKind b) {
  if (a == GateKind::kT && b == GateKind::kT) return GateKind::kS;
  if (a == GateKind::kS && b == GateKind::kS) return GateKind::kZ;
  if (a == GateKind::kSdg && b == GateKind::kSdg) return GateKind::kZ;
  if (a == GateKind::kTdg && b == GateKind::kTdg) return GateKind::kSdg;
  // S·T and T·S would be T³ — not in the library; left alone.
  return std::nullopt;
}

}  // namespace

QuantumCircuit optimizeCircuit(const QuantumCircuit& circuit,
                               OptimizerReport* report) {
  OptimizerReport local;
  local.gatesBefore = circuit.gateCount();

  // Dynamic circuits are returned untouched: collapse points and classical
  // conditions partition the gate list into regions the peephole rules
  // would have to respect (a pair straddling a measure of a shared qubit
  // must not fuse), and none of the rewrites below are aware of them.
  if (circuit.isDynamic()) {
    local.gatesAfter = circuit.gateCount();
    if (report != nullptr) *report = local;
    return circuit;
  }

  std::vector<Gate> gates = circuit.gates();
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Gate> next;
    std::vector<bool> removed(gates.size(), false);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (removed[i]) continue;
      // Find the next gate j > i sharing a qubit with gates[i]; only an
      // immediately-adjacent partner (no interference in between) may fuse.
      const std::vector<unsigned> qs = touchedQubits(gates[i]);
      std::size_t j = i + 1;
      bool blocked = false;
      for (; j < gates.size(); ++j) {
        if (removed[j]) continue;
        const std::vector<unsigned> qj = touchedQubits(gates[j]);
        bool overlap = false;
        for (unsigned q : qj)
          overlap |= std::binary_search(qs.begin(), qs.end(), q);
        if (!overlap) continue;
        // gates[j] is the first gate touching any shared qubit. It blocks
        // unless it acts on exactly the same qubits in the same roles.
        blocked = !sameQubits(gates[i], gates[j]);
        break;
      }
      if (j < gates.size() && !blocked && !removed[j]) {
        const GateKind a = gates[i].kind;
        const GateKind b = gates[j].kind;
        const bool cancels = (a == b && selfInverse(a)) || inversePair(a, b);
        if (cancels && sameQubits(gates[i], gates[j])) {
          removed[i] = removed[j] = true;
          local.cancelled += 2;
          changed = true;
          continue;
        }
        if (gates[i].controls.empty() && gates[j].controls.empty()) {
          if (const auto fused = mergeKind(a, b)) {
            gates[j].kind = *fused;
            removed[i] = true;
            ++local.merged;
            changed = true;
            continue;
          }
        }
      }
      next.push_back(gates[i]);
    }
    gates = std::move(next);
  }

  QuantumCircuit out(circuit.numQubits(), circuit.name() + "_opt");
  for (Gate& g : gates) out.append(std::move(g));
  local.gatesAfter = out.gateCount();
  if (report != nullptr) *report = local;
  return out;
}

// ---- gate fusion -----------------------------------------------------------

namespace {

using C = std::complex<double>;

/// out = a · b, row-major 2×2.
std::array<C, 4> mul2(const std::array<C, 4>& a, const std::array<C, 4>& b) {
  std::array<C, 4> out{};
  for (unsigned r = 0; r < 2; ++r)
    for (unsigned c = 0; c < 2; ++c)
      out[r * 2 + c] = a[r * 2 + 0] * b[0 * 2 + c] + a[r * 2 + 1] * b[1 * 2 + c];
  return out;
}

/// out = a · b, row-major 4×4.
std::array<C, 16> mul4(const std::array<C, 16>& a, const std::array<C, 16>& b) {
  std::array<C, 16> out{};
  for (unsigned r = 0; r < 4; ++r)
    for (unsigned c = 0; c < 4; ++c) {
      C acc = 0;
      for (unsigned k = 0; k < 4; ++k) acc += a[r * 4 + k] * b[k * 4 + c];
      out[r * 4 + c] = acc;
    }
  return out;
}

/// Embeds a 2×2 into the 4×4 over (lo, hi); basis index b = 2·b_hi + b_lo.
/// `atLow` selects which slot the 2×2 acts on (identity on the other).
std::array<C, 16> embed2(const std::array<C, 4>& u, bool atLow) {
  std::array<C, 16> out{};
  for (unsigned other = 0; other < 2; ++other)
    for (unsigned r = 0; r < 2; ++r)
      for (unsigned c = 0; c < 2; ++c) {
        const unsigned row = atLow ? other * 2 + r : r * 2 + other;
        const unsigned col = atLow ? other * 2 + c : c * 2 + other;
        out[row * 4 + col] = u[r * 2 + c];
      }
  return out;
}

/// The 4×4 of one gate whose support ⊆ {lo, hi} (lo < hi), basis index
/// b = 2·b_hi + b_lo, built column by column: out[r·4+c] = ⟨r|G|c⟩.
std::array<C, 16> gateBlock4(const Gate& g, unsigned lo, unsigned hi) {
  SLIQ_CHECK(lo < hi, "block support must be ordered");
  std::array<C, 16> out{};
  if (g.kind == GateKind::kSwap && g.controls.empty()) {
    for (unsigned col = 0; col < 4; ++col) {
      const unsigned swapped = ((col & 1u) << 1) | ((col >> 1) & 1u);
      out[swapped * 4 + col] = 1.0;
    }
    return out;
  }
  const auto bitOf = [&](unsigned q, unsigned col) -> unsigned {
    return q == lo ? (col & 1u) : ((col >> 1) & 1u);
  };
  const auto withBit = [&](unsigned col, unsigned q, unsigned bit) -> unsigned {
    const unsigned shift = q == lo ? 0u : 1u;
    return (col & ~(1u << shift)) | (bit << shift);
  };
  C u[4];
  gateUnitary2x2(g.kind, u);
  const unsigned t = g.target();
  for (unsigned col = 0; col < 4; ++col) {
    bool active = true;
    for (unsigned c : g.controls) active = active && bitOf(c, col) == 1u;
    if (!active) {
      out[col * 4 + col] = 1.0;  // controls unmet: identity column
      continue;
    }
    const unsigned tb = bitOf(t, col);
    out[withBit(col, t, 0) * 4 + col] += u[0 * 2 + tb];
    out[withBit(col, t, 1) * 4 + col] += u[1 * 2 + tb];
  }
  return out;
}

/// One pending fusion block: an accumulated unitary over 1 or 2 qubits.
struct Block {
  std::vector<unsigned> qs;  // ascending support, size 1 or 2
  std::array<C, 4> m1{};     // qs.size() == 1
  std::array<C, 16> m2{};    // qs.size() == 2
  Gate firstGate;            // emitted verbatim when count == 1
  unsigned count = 0;
  bool alive = false;
};

/// True when the fusion pass may absorb `g` into a block: a unitary whose
/// support fits a 2-qubit block. (Dynamic ops never reach here — dynamic
/// circuits pass through whole.)
bool fusible(const Gate& g) {
  if (g.isDynamicOp() || g.conditioned) return false;
  if (g.targets.size() + g.controls.size() > 2) return false;
  return hasUnitary2x2(g.kind) ||
         (g.kind == GateKind::kSwap && g.controls.empty());
}

std::vector<unsigned> gateSupport(const Gate& g) {
  std::vector<unsigned> qs = g.targets;
  qs.insert(qs.end(), g.controls.begin(), g.controls.end());
  std::sort(qs.begin(), qs.end());
  return qs;
}

/// Widens a block to the 2-qubit support `qs` (ascending, superset of the
/// current support) without changing the represented unitary.
void widenBlock(Block& b, const std::vector<unsigned>& qs) {
  if (b.qs == qs) return;
  b.m2 = embed2(b.m1, /*atLow=*/b.qs[0] == qs[0]);
  b.qs = qs;
}

}  // namespace

FusedCircuit fuseCircuit(const QuantumCircuit& circuit, FusionReport* report) {
  FusionReport local;
  local.gatesIn = circuit.gateCount();
  std::vector<FusedOp> ops;

  // Dynamic circuits: verbatim passthrough (see header).
  if (circuit.isDynamic()) {
    for (const Gate& g : circuit.gates()) {
      FusedOp op;
      op.gate = g;
      ops.push_back(std::move(op));
    }
    local.opsOut = ops.size();
    if (report != nullptr) *report = local;
    return FusedCircuit(circuit.numQubits(), std::move(ops));
  }

  std::vector<Block> blocks;
  std::vector<int> freeSlots;  // dead entries of `blocks`, reused for new ones
  // Qubit -> index of the block currently accumulating on it (-1: none).
  // Active blocks have pairwise disjoint supports, so blocks commute with
  // each other and a flushed block may be emitted at the current position.
  std::vector<int> owner(circuit.numQubits(), -1);

  const auto emit = [&](int index) {
    Block& b = blocks[index];
    FusedOp op;
    op.gatesFused = b.count;
    if (b.count == 1) {
      op.gate = b.firstGate;  // keep the engines' specialized gate kernels
    } else if (b.qs.size() == 1) {
      op.kind = FusedOp::Kind::k1q;
      op.q0 = b.qs[0];
      op.m1 = b.m1;
      ++local.fusedBlocks;
    } else {
      op.kind = FusedOp::Kind::k2q;
      op.q0 = b.qs[0];
      op.q1 = b.qs[1];
      op.m2 = b.m2;
      op.diagonal = true;
      for (unsigned r = 0; r < 4 && op.diagonal; ++r)
        for (unsigned c = 0; c < 4; ++c)
          if (r != c && b.m2[r * 4 + c] != 0.0) {
            op.diagonal = false;
            break;
          }
      if (op.diagonal) ++local.diagonalBlocks;
      ++local.fusedBlocks;
    }
    ops.push_back(std::move(op));
    for (unsigned q : b.qs) owner[q] = -1;
    b.alive = false;
    freeSlots.push_back(index);
  };

  for (const Gate& g : circuit.gates()) {
    const std::vector<unsigned> support = gateSupport(g);

    // Blocks already accumulating on this gate's qubits, in index order.
    std::vector<int> touched;
    for (unsigned q : support) {
      const int b = owner[q];
      if (b >= 0 &&
          std::find(touched.begin(), touched.end(), b) == touched.end())
        touched.push_back(b);
    }

    // Combined support of gate + touched blocks.
    std::vector<unsigned> combined = support;
    for (int bi : touched)
      for (unsigned q : blocks[bi].qs)
        if (std::find(combined.begin(), combined.end(), q) == combined.end())
          combined.push_back(q);
    std::sort(combined.begin(), combined.end());

    if (!fusible(g) || combined.size() > 2) {
      // Conflict: retire the touched blocks (disjoint from everything still
      // pending, so position-order is preserved), then restart below.
      for (int bi : touched) emit(bi);
      if (!fusible(g)) {
        FusedOp op;
        op.gate = g;
        ops.push_back(std::move(op));
        continue;
      }
      touched.clear();
      combined = support;
    }

    if (touched.empty()) {
      Block b;
      b.qs = combined;
      b.firstGate = g;
      b.count = 1;
      b.alive = true;
      if (combined.size() == 1) {
        gateUnitary2x2(g.kind, b.m1.data());
      } else {
        b.m2 = gateBlock4(g, combined[0], combined[1]);
      }
      int slot;
      if (!freeSlots.empty()) {
        slot = freeSlots.back();
        freeSlots.pop_back();
        blocks[slot] = std::move(b);
      } else {
        slot = static_cast<int>(blocks.size());
        blocks.push_back(std::move(b));
      }
      for (unsigned q : combined) owner[q] = slot;
      continue;
    }

    // Merge everything into touched[0], then multiply the gate on top.
    Block& target = blocks[touched[0]];
    if (combined.size() == 1) {
      std::array<C, 4> u;
      gateUnitary2x2(g.kind, u.data());
      target.m1 = mul2(u, target.m1);
    } else {
      widenBlock(target, combined);
      for (std::size_t i = 1; i < touched.size(); ++i) {
        Block& other = blocks[touched[i]];
        widenBlock(other, combined);
        // Disjoint original supports: the embedded factors commute, so the
        // product order is immaterial.
        target.m2 = mul4(other.m2, target.m2);
        target.count += other.count;
        for (unsigned q : other.qs) owner[q] = touched[0];
        other.alive = false;
        freeSlots.push_back(touched[i]);
      }
      target.m2 = mul4(gateBlock4(g, combined[0], combined[1]), target.m2);
      for (unsigned q : combined) owner[q] = touched[0];
      target.qs = combined;
    }
    ++target.count;
  }

  // Retire the survivors (supports are disjoint, so any order is
  // unitary-equivalent; slot order keeps the output deterministic).
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (blocks[i].alive) emit(static_cast<int>(i));

  local.opsOut = ops.size();
  if (report != nullptr) *report = local;
  return FusedCircuit(circuit.numQubits(), std::move(ops));
}

}  // namespace sliq
