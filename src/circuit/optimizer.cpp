#include "circuit/optimizer.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace sliq {

namespace {

std::vector<unsigned> touchedQubits(const Gate& g) {
  std::vector<unsigned> qs = g.targets;
  qs.insert(qs.end(), g.controls.begin(), g.controls.end());
  std::sort(qs.begin(), qs.end());
  return qs;
}

bool sameQubits(const Gate& a, const Gate& b) {
  if (a.controls.size() != b.controls.size()) return false;
  std::vector<unsigned> ca = a.controls, cb = b.controls;
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  if (ca != cb) return false;
  std::vector<unsigned> ta = a.targets, tb = b.targets;
  if (a.kind == GateKind::kSwap) {  // SWAP targets are unordered
    std::sort(ta.begin(), ta.end());
    std::sort(tb.begin(), tb.end());
  }
  return ta == tb;
}

bool selfInverse(GateKind k) {
  switch (k) {
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kCnot:
    case GateKind::kCz:
    case GateKind::kSwap:
      return true;
    default:
      return false;
  }
}

bool inversePair(GateKind a, GateKind b) {
  return (a == GateKind::kS && b == GateKind::kSdg) ||
         (a == GateKind::kSdg && b == GateKind::kS) ||
         (a == GateKind::kT && b == GateKind::kTdg) ||
         (a == GateKind::kTdg && b == GateKind::kT);
}

/// If a·b fuses into one gate, the fused kind. a is applied first.
std::optional<GateKind> mergeKind(GateKind a, GateKind b) {
  if (a == GateKind::kT && b == GateKind::kT) return GateKind::kS;
  if (a == GateKind::kS && b == GateKind::kS) return GateKind::kZ;
  if (a == GateKind::kSdg && b == GateKind::kSdg) return GateKind::kZ;
  if (a == GateKind::kTdg && b == GateKind::kTdg) return GateKind::kSdg;
  // S·T and T·S would be T³ — not in the library; left alone.
  return std::nullopt;
}

}  // namespace

QuantumCircuit optimizeCircuit(const QuantumCircuit& circuit,
                               OptimizerReport* report) {
  OptimizerReport local;
  local.gatesBefore = circuit.gateCount();

  // Dynamic circuits are returned untouched: collapse points and classical
  // conditions partition the gate list into regions the peephole rules
  // would have to respect (a pair straddling a measure of a shared qubit
  // must not fuse), and none of the rewrites below are aware of them.
  if (circuit.isDynamic()) {
    local.gatesAfter = circuit.gateCount();
    if (report != nullptr) *report = local;
    return circuit;
  }

  std::vector<Gate> gates = circuit.gates();
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Gate> next;
    std::vector<bool> removed(gates.size(), false);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (removed[i]) continue;
      // Find the next gate j > i sharing a qubit with gates[i]; only an
      // immediately-adjacent partner (no interference in between) may fuse.
      const std::vector<unsigned> qs = touchedQubits(gates[i]);
      std::size_t j = i + 1;
      bool blocked = false;
      for (; j < gates.size(); ++j) {
        if (removed[j]) continue;
        const std::vector<unsigned> qj = touchedQubits(gates[j]);
        bool overlap = false;
        for (unsigned q : qj)
          overlap |= std::binary_search(qs.begin(), qs.end(), q);
        if (!overlap) continue;
        // gates[j] is the first gate touching any shared qubit. It blocks
        // unless it acts on exactly the same qubits in the same roles.
        blocked = !sameQubits(gates[i], gates[j]);
        break;
      }
      if (j < gates.size() && !blocked && !removed[j]) {
        const GateKind a = gates[i].kind;
        const GateKind b = gates[j].kind;
        const bool cancels = (a == b && selfInverse(a)) || inversePair(a, b);
        if (cancels && sameQubits(gates[i], gates[j])) {
          removed[i] = removed[j] = true;
          local.cancelled += 2;
          changed = true;
          continue;
        }
        if (gates[i].controls.empty() && gates[j].controls.empty()) {
          if (const auto fused = mergeKind(a, b)) {
            gates[j].kind = *fused;
            removed[i] = true;
            ++local.merged;
            changed = true;
            continue;
          }
        }
      }
      next.push_back(gates[i]);
    }
    gates = std::move(next);
  }

  QuantumCircuit out(circuit.numQubits(), circuit.name() + "_opt");
  for (Gate& g : gates) out.append(std::move(g));
  local.gatesAfter = out.gateCount();
  if (report != nullptr) *report = local;
  return out;
}

}  // namespace sliq
