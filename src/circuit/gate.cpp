#include "circuit/gate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/assert.hpp"

namespace sliq {

std::string gateName(const Gate& gate) {
  std::string base;
  switch (gate.kind) {
    case GateKind::kX: base = "x"; break;
    case GateKind::kY: base = "y"; break;
    case GateKind::kZ: base = "z"; break;
    case GateKind::kH: base = "h"; break;
    case GateKind::kS: base = "s"; break;
    case GateKind::kSdg: base = "sdg"; break;
    case GateKind::kT: base = "t"; break;
    case GateKind::kTdg: base = "tdg"; break;
    case GateKind::kRx90: base = "rx90"; break;
    case GateKind::kRy90: base = "ry90"; break;
    case GateKind::kCnot: base = "x"; break;
    case GateKind::kCz: base = "z"; break;
    case GateKind::kSwap: base = "swap"; break;
    case GateKind::kMeasure: base = "measure"; break;
    case GateKind::kReset: base = "reset"; break;
  }
  if (gate.kind == GateKind::kCnot) {
    if (gate.controls.size() == 1) return "cx";
    if (gate.controls.size() == 2) return "ccx";
    if (gate.controls.empty()) return "x";
    return "c" + std::to_string(gate.controls.size()) + "x";
  }
  if (gate.kind == GateKind::kCz) {
    if (gate.controls.size() == 1) return "cz";
    if (gate.controls.empty()) return "z";
    return "c" + std::to_string(gate.controls.size()) + "z";
  }
  if (gate.kind == GateKind::kSwap && !gate.controls.empty()) {
    if (gate.controls.size() == 1) return "cswap";
    return "c" + std::to_string(gate.controls.size()) + "swap";
  }
  return base;
}

bool isPermutationGate(GateKind kind) {
  return kind == GateKind::kX || kind == GateKind::kCnot ||
         kind == GateKind::kSwap;
}

bool hasUnitary2x2(GateKind kind) {
  return kind != GateKind::kSwap && kind != GateKind::kMeasure &&
         kind != GateKind::kReset;
}

void gateUnitary2x2(GateKind kind, std::complex<double> m[4]) {
  // 1/√2 to the last bit (std::sqrt would round identically, but a literal
  // keeps the constant independent of libm).
  constexpr double kInvSqrt2 = 0.7071067811865476;
  const std::complex<double> i{0.0, 1.0};
  const std::complex<double> omega = std::polar(1.0, M_PI / 4);
  switch (kind) {
    case GateKind::kX:
    case GateKind::kCnot: m[0] = 0; m[1] = 1; m[2] = 1; m[3] = 0; return;
    case GateKind::kY: m[0] = 0; m[1] = -i; m[2] = i; m[3] = 0; return;
    case GateKind::kZ:
    case GateKind::kCz: m[0] = 1; m[1] = 0; m[2] = 0; m[3] = -1; return;
    case GateKind::kH:
      m[0] = kInvSqrt2; m[1] = kInvSqrt2;
      m[2] = kInvSqrt2; m[3] = -kInvSqrt2;
      return;
    case GateKind::kS: m[0] = 1; m[1] = 0; m[2] = 0; m[3] = i; return;
    case GateKind::kSdg: m[0] = 1; m[1] = 0; m[2] = 0; m[3] = -i; return;
    case GateKind::kT: m[0] = 1; m[1] = 0; m[2] = 0; m[3] = omega; return;
    case GateKind::kTdg:
      m[0] = 1; m[1] = 0; m[2] = 0; m[3] = std::conj(omega);
      return;
    case GateKind::kRx90:
      m[0] = kInvSqrt2; m[1] = -i * kInvSqrt2;
      m[2] = -i * kInvSqrt2; m[3] = kInvSqrt2;
      return;
    case GateKind::kRy90:
      m[0] = kInvSqrt2; m[1] = -kInvSqrt2;
      m[2] = kInvSqrt2; m[3] = kInvSqrt2;
      return;
    case GateKind::kSwap:
    case GateKind::kMeasure:
    case GateKind::kReset:
      break;
  }
  throw std::invalid_argument("no single-qubit unitary for this gate kind");
}

bool isDiagonalGate(GateKind kind) {
  switch (kind) {
    case GateKind::kZ:
    case GateKind::kS:
    case GateKind::kSdg:
    case GateKind::kT:
    case GateKind::kTdg:
    case GateKind::kCz:
      return true;
    default:
      return false;
  }
}

bool incrementsK(GateKind kind) {
  return kind == GateKind::kH || kind == GateKind::kRx90 ||
         kind == GateKind::kRy90;
}

void validateGate(const Gate& gate, unsigned numQubits) {
  const std::size_t expectedTargets =
      gate.kind == GateKind::kSwap ? 2 : 1;
  SLIQ_REQUIRE(gate.targets.size() == expectedTargets,
               "wrong target count for gate " + gateName(gate));
  if (gate.isDynamicOp()) {
    SLIQ_REQUIRE(gate.controls.empty(),
                 "measure/reset take no control qubits");
  }
  std::vector<unsigned> all = gate.targets;
  all.insert(all.end(), gate.controls.begin(), gate.controls.end());
  for (unsigned q : all)
    SLIQ_REQUIRE(q < numQubits, "qubit index out of range");
  std::sort(all.begin(), all.end());
  SLIQ_REQUIRE(std::adjacent_find(all.begin(), all.end()) == all.end(),
               "gate touches a qubit twice");
  if (!gate.controls.empty()) {
    SLIQ_REQUIRE(gate.kind == GateKind::kCnot || gate.kind == GateKind::kCz ||
                     gate.kind == GateKind::kSwap,
                 "controls only supported on X, Z and SWAP bases");
  }
}

}  // namespace sliq
