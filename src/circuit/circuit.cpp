#include "circuit/circuit.hpp"

#include <sstream>
#include <stdexcept>

#include "circuit/optimizer.hpp"
#include "support/assert.hpp"

namespace sliq {

QuantumCircuit::QuantumCircuit(unsigned numQubits, std::string name)
    : numQubits_(numQubits), name_(std::move(name)) {
  SLIQ_REQUIRE(numQubits > 0, "circuit needs at least one qubit");
}

void QuantumCircuit::declareClassicalRegister(unsigned bits) {
  SLIQ_REQUIRE(bits > 0, "classical register needs at least one bit");
  SLIQ_REQUIRE(bits <= 64,
               "classical register limited to 64 bits (one register word)");
  SLIQ_REQUIRE(numClbits_ == 0 || numClbits_ == bits,
               "classical register already declared with a different size");
  numClbits_ = bits;
}

void QuantumCircuit::append(Gate gate) {
  validateGate(gate, numQubits_);
  if (gate.kind == GateKind::kMeasure) {
    SLIQ_REQUIRE(gate.cbit < numClbits_,
                 "measure target bit out of range (declare the classical "
                 "register first)");
  }
  if (gate.conditioned) {
    SLIQ_REQUIRE(numClbits_ > 0,
                 "conditioned operation without a classical register");
    SLIQ_REQUIRE(
        numClbits_ >= 64 || gate.conditionValue < (std::uint64_t{1} << numClbits_),
        "condition value out of range for the classical register");
  }
  if (gate.isDynamicOp() || gate.conditioned) ++dynamicOps_;
  gates_.push_back(std::move(gate));
}

QuantumCircuit& QuantumCircuit::add1(GateKind kind, unsigned q) {
  append(Gate{kind, {q}, {}});
  return *this;
}

QuantumCircuit& QuantumCircuit::cx(unsigned control, unsigned target) {
  append(Gate{GateKind::kCnot, {target}, {control}});
  return *this;
}

QuantumCircuit& QuantumCircuit::cz(unsigned control, unsigned target) {
  append(Gate{GateKind::kCz, {target}, {control}});
  return *this;
}

QuantumCircuit& QuantumCircuit::ccx(unsigned c0, unsigned c1,
                                    unsigned target) {
  append(Gate{GateKind::kCnot, {target}, {c0, c1}});
  return *this;
}

QuantumCircuit& QuantumCircuit::mcx(const std::vector<unsigned>& controls,
                                    unsigned target) {
  append(Gate{GateKind::kCnot, {target}, controls});
  return *this;
}

QuantumCircuit& QuantumCircuit::mcz(const std::vector<unsigned>& controls,
                                    unsigned target) {
  append(Gate{GateKind::kCz, {target}, controls});
  return *this;
}

QuantumCircuit& QuantumCircuit::swap(unsigned q0, unsigned q1) {
  append(Gate{GateKind::kSwap, {q0, q1}, {}});
  return *this;
}

QuantumCircuit& QuantumCircuit::cswap(unsigned control, unsigned q0,
                                      unsigned q1) {
  append(Gate{GateKind::kSwap, {q0, q1}, {control}});
  return *this;
}

QuantumCircuit& QuantumCircuit::measure(unsigned qubit, unsigned cbit) {
  Gate g{GateKind::kMeasure, {qubit}, {}};
  g.cbit = cbit;
  append(std::move(g));
  return *this;
}

QuantumCircuit& QuantumCircuit::reset(unsigned qubit) {
  append(Gate{GateKind::kReset, {qubit}, {}});
  return *this;
}

QuantumCircuit& QuantumCircuit::onlyIf(std::uint64_t value, Gate gate) {
  gate.conditioned = true;
  gate.conditionValue = value;
  append(std::move(gate));
  return *this;
}

QuantumCircuit& QuantumCircuit::compose(const QuantumCircuit& other) {
  SLIQ_REQUIRE(other.numQubits_ == numQubits_,
               "compose requires equal qubit counts");
  SLIQ_REQUIRE(other.numClbits_ == 0 || other.numClbits_ == numClbits_,
               "compose requires equal classical register sizes");
  // Route through append so the dynamic-op counter stays coherent.
  for (const Gate& g : other.gates_) append(g);
  return *this;
}

QuantumCircuit QuantumCircuit::inverse() const {
  if (isDynamic()) {
    throw std::logic_error(
        "dynamic circuits have no inverse: measurement and reset are "
        "irreversible");
  }
  QuantumCircuit inv(numQubits_, name_ + "_inv");
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    Gate g = *it;
    switch (g.kind) {
      case GateKind::kS: g.kind = GateKind::kSdg; break;
      case GateKind::kSdg: g.kind = GateKind::kS; break;
      case GateKind::kT: g.kind = GateKind::kTdg; break;
      case GateKind::kTdg: g.kind = GateKind::kT; break;
      case GateKind::kRx90:
        // Rx(π/2)⁻¹ ≃ H·S†·H (global phase ω; probabilities exact).
        inv.h(g.target()).sdg(g.target()).h(g.target());
        continue;
      case GateKind::kRy90:
        // Ry(π/2) = H·Z exactly, so the inverse is Z·H.
        inv.h(g.target()).z(g.target());
        continue;
      default: break;  // self-inverse
    }
    inv.append(std::move(g));
  }
  return inv;
}

FusedCircuit QuantumCircuit::fused() const { return fuseCircuit(*this); }

std::map<std::string, std::size_t> QuantumCircuit::histogram() const {
  std::map<std::string, std::size_t> h;
  for (const Gate& g : gates_) ++h[gateName(g)];
  return h;
}

std::size_t QuantumCircuit::countKIncrements() const {
  std::size_t n = 0;
  for (const Gate& g : gates_) n += incrementsK(g.kind);
  return n;
}

std::string QuantumCircuit::summary() const {
  std::ostringstream os;
  os << name_ << ": " << numQubits_ << " qubits, ";
  if (numClbits_ > 0) os << numClbits_ << " clbits, ";
  os << gates_.size() << " gates";
  if (isDynamic()) os << " (dynamic)";
  bool first = true;
  for (const auto& [name, count] : histogram()) {
    os << (first ? " [" : ", ") << name << ":" << count;
    first = false;
  }
  if (!first) os << "]";
  return os.str();
}

}  // namespace sliq
