// RevLib ".real" reversible-circuit format frontend.
//
// Supports the common core of the format: .numvars/.variables/.constants/
// .begin..end with tN (multi-control Toffoli), fN (multi-control Fredkin)
// lines, and negative controls written with a '-' prefix (rewritten with
// surrounding X gates). This covers the paper's Table IV benchmark family.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace sliq {

struct RealProgram {
  QuantumCircuit circuit;
  /// Per-qubit input constraint from ".constants": '0', '1' or '-'
  /// (unspecified). Unspecified inputs are the ones the paper's "modified"
  /// variant superposes with Hadamards.
  std::string constants;
};

RealProgram parseReal(std::istream& in, const std::string& name = "real");
RealProgram parseRealString(const std::string& text,
                            const std::string& name = "real");
RealProgram parseRealFile(const std::string& path);

/// The paper's Table IV modification: prepend an H gate on every input whose
/// initial value is unspecified ('-'), creating an input superposition.
QuantumCircuit modifyWithHadamards(const RealProgram& program);

/// Prepend X gates setting '1'-constant inputs (and leave '0's alone), as a
/// concrete initial-value assignment for the *original* circuits; inputs
/// marked '-' are assigned pseudo-random classical values from `seed`.
QuantumCircuit instantiateOriginal(const RealProgram& program,
                                   std::uint64_t seed);

}  // namespace sliq
