// OpenQASM 2.0 subset frontend, restricted to the algebraically
// representable gate library (Table I + S†/T†). Supported statements:
//
//   OPENQASM 2.0;            include "qelib1.inc";     // both optional
//   qreg q[N];               creg c[N];                // creg accepted+ignored
//   h q[0];  x q[1];  ... (y z s sdg t tdg)
//   rx(pi/2) q[0];  ry(pi/2) q[0];
//   cx q[0],q[1];  cz q[0],q[1];  ccx q[0],q[1],q[2];
//   swap q[0],q[1];  cswap q[0],q[1],q[2];
//   measure q[i] -> c[i];    barrier ...;              // accepted+ignored
//
// Anything else (arbitrary-angle rotations, user gate defs) is rejected —
// mirroring the paper's exclusion of circuits "not algebraically
// representable" (QFT, Shor).
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/circuit.hpp"

namespace sliq {

/// Parses the QASM subset; throws std::invalid_argument with line context.
QuantumCircuit parseQasm(std::istream& in, const std::string& name = "qasm");
QuantumCircuit parseQasmString(const std::string& text,
                               const std::string& name = "qasm");
QuantumCircuit parseQasmFile(const std::string& path);

/// Serializes to the same subset; parseQasm(writeQasm(c)) round-trips.
void writeQasm(const QuantumCircuit& circuit, std::ostream& out);
std::string toQasmString(const QuantumCircuit& circuit);

}  // namespace sliq
