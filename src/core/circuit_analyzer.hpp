// Circuit analyzer — the feature extraction half of the adaptive engine
// portfolio (DESIGN.md §13). One linear pass over the op stream computes
// the workload features the dispatcher's cost model scores engines with:
// the DAC'21 paper's core observation is that the right state
// representation is workload-dependent, and these features are what
// "workload" means to the planner.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "circuit/circuit.hpp"

namespace sliq {

/// Structural workload features of one circuit. "Clifford" throughout
/// means StabilizerSimulator::supportsGate — the exact gate set the chp
/// engine executes — so the dispatcher can never pick chp for a gate the
/// tableau would refuse.
struct CircuitFeatures {
  unsigned numQubits = 0;
  /// All ops, dynamic ones included.
  std::size_t gateCount = 0;
  /// Per-gate-name op counts (QuantumCircuit::histogram).
  std::map<std::string, std::size_t> histogram;
  /// Unitary (non-measure/reset) ops.
  std::size_t unitaryGates = 0;
  /// Unitary Clifford ops.
  std::size_t cliffordGates = 0;
  /// Unitary non-Clifford ops (T/T†, multi-controlled, controlled swap).
  std::size_t nonCliffordGates = 0;
  /// cliffordGates / unitaryGates; 1.0 for an empty (or unitary-free)
  /// circuit.
  double cliffordFraction = 1.0;
  /// T/T† ops (controlled or not) — the magic-state count driving DD/BDD
  /// growth.
  std::size_t tCount = 0;
  /// Measure/reset ops plus classically conditioned ops.
  std::size_t dynamicOps = 0;
  /// Unitary ops touching >= 2 qubits (targets + controls).
  std::size_t twoQubitGates = 0;
  /// Circuit depth counting only the multi-qubit ops — an entanglement
  /// proxy: deep two-qubit layers spread correlations across the register.
  std::size_t twoQubitDepth = 0;
  /// Largest connected component of the qubit interaction graph (qubits
  /// joined by shared multi-qubit ops) — how wide entanglement can reach.
  unsigned interactionWidth = 0;
  /// Longest prefix of unconditioned unitary Clifford ops — the segment a
  /// mid-circuit chp → best-engine handoff can run on the tableau.
  std::size_t cliffordPrefixGates = 0;
  /// QuantumCircuit::isDynamic().
  bool dynamic = false;
};

/// One linear pass over `circuit`; O(gates · arity + qubits).
CircuitFeatures analyzeCircuit(const QuantumCircuit& circuit);

}  // namespace sliq
