// Exact amplitude queries and dense statevector extraction.
#include <cmath>

#include "core/simulator.hpp"
#include "support/assert.hpp"
#include "support/memuse.hpp"

namespace sliq {

AlgebraicComplex SliqSimulator::amplitude(std::uint64_t basisState) const {
  SLIQ_REQUIRE(!symbolic_,
               "amplitude query is unavailable in symbolic mode");
  SLIQ_REQUIRE(n_ <= 64, "amplitude query limited to 64 qubits");
  SLIQ_REQUIRE(n_ == 64 || basisState < (std::uint64_t{1} << n_),
               "basis state out of range");
  std::vector<bool> assignment(mgr_.varCount(), false);
  for (unsigned q = 0; q < n_; ++q)
    assignment[q] = ((basisState >> q) & 1) != 0;
  BigInt coef[4];
  for (unsigned vecIdx = 0; vecIdx < 4; ++vecIdx) {
    std::vector<bool> bits(r_);
    for (unsigned i = 0; i < r_; ++i)
      bits[i] = mgr_.evalPoint(vec_[vecIdx][i].edge(), assignment);
    coef[vecIdx] = BigInt::fromTwosComplementBits(bits);
  }
  return AlgebraicComplex(coef[0], coef[1], coef[2], coef[3], k_);
}

std::vector<std::complex<double>> SliqSimulator::statevector(
    std::uint64_t budgetBytes) {
  // Budgeted, not capped at a fixed width: a typed MemoryBudgetError lets
  // the dispatcher/conversion layer catch the infeasible case and fall
  // back, instead of a blanket n<=20 abort.
  requireDenseBudget(n_, budgetBytes);
  const double correction = normalizationCorrection();
  std::vector<std::complex<double>> out(std::uint64_t{1} << n_);
  for (std::uint64_t i = 0; i < out.size(); ++i)
    out[i] = amplitude(i).toComplex() * correction;
  return out;
}

}  // namespace sliq
