// SliqSimulator — the paper's contribution: exact quantum circuit simulation
// by bit-slicing the algebraically represented state vector into BDDs.
//
// State representation (paper §III-B): an n-qubit state is
//     |ψ⟩_i = (a_i·ω³ + b_i·ω² + c_i·ω + d_i) / √2ᵏ
// with the four integer vectors a,b,c,d stored bit-slice-wise: slice j of
// vector a is the Boolean function F_{a_j}(q₀..q_{n-1}) giving bit j of a_i
// at basis state i. Integers use r-bit two's complement, r grown on demand.
//
// Gates are applied with the pre-characterized Boolean formulas of Table II
// (re-derived in gate_kernels.cpp); measurement uses the monolithic
// hyper-function BDD of Eq. 12 with *exact* Z[√2] probability accumulation
// (our substitute for the paper's MPFR usage — see DESIGN.md).
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "algebra/algebraic.hpp"
#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "bigint/zroot2.hpp"
#include "circuit/circuit.hpp"
#include "support/memuse.hpp"
#include "support/rng.hpp"

namespace sliq::serialize {
class Writer;
class Reader;
}  // namespace sliq::serialize

namespace sliq {

class MeasurementContext;

class SliqSimulator {
 public:
  struct Config {
    /// Settings forwarded to the underlying BDD package.
    bdd::BddManager::Config bdd;
    /// Initial integer bit width. The paper uses 32 and grows on overflow;
    /// our default starts minimal (2) and grows by sign extension. Kept
    /// configurable for the bit-width ablation bench.
    unsigned initialBitWidth = 2;
    /// Trim redundant sign-extension slices after arithmetic gates.
    bool trimBitWidth = true;
  };

  /// Prepares |basisState⟩ (bit q of basisState = initial value of qubit q).
  explicit SliqSimulator(unsigned numQubits, std::uint64_t basisState = 0);
  SliqSimulator(unsigned numQubits, std::uint64_t basisState,
                const Config& config);

  /// Tag type selecting the *symbolic* initial state used for functional
  /// equivalence checking (see core/equivalence.hpp): n extra "input label"
  /// variables x₀..x_{n-1} are created and the initial d₀ slice is
  /// ⋀_q (q_q ⊙ x_q), i.e. the simulator tracks all 2ⁿ basis-state columns
  /// of the circuit unitary at once. Measurement/probability APIs are
  /// unavailable in this mode.
  struct SymbolicInit {};
  SliqSimulator(unsigned numQubits, SymbolicInit, const Config& config);

  ~SliqSimulator();  // out of line: MeasurementContext is incomplete here

  unsigned numQubits() const { return n_; }
  /// Current integer bit width r (number of BDD slices per vector).
  unsigned bitWidth() const { return r_; }
  /// The shared scalar k of Eq. 5 (√2 exponent).
  std::int64_t kScalar() const { return k_; }

  void applyGate(const Gate& gate);
  void run(const QuantumCircuit& circuit);

  // ---- queries (exact) ---------------------------------------------------
  /// Exact algebraic amplitude of a basis state. After measurements the
  /// state is sub-normalized; multiply toComplex() by
  /// normalizationCorrection() for the physical amplitude.
  AlgebraicComplex amplitude(std::uint64_t basisState) const;
  /// Dense statevector, physical (normalization applied). Throws the
  /// typed, catchable MemoryBudgetError (support/memuse.hpp) when the 2^n
  /// array would exceed `budgetBytes` — callers (conversion, dispatch) can
  /// catch it and fall back instead of aborting.
  std::vector<std::complex<double>> statevector(
      std::uint64_t budgetBytes = kDefaultDenseBudgetBytes);

  /// Σ|α_i|²·2ᵏ over all basis states, exactly. Equals 2ᵏ while the state
  /// is normalized (invariant checked by tests).
  Zroot2 totalWeightScaled();
  /// Σ|α_i|² as a double (1.0 up to one final rounding when normalized).
  double totalProbability();
  /// Pr[qubit = 1], exact ratio of Z[√2] weights rounded once.
  double probabilityOne(unsigned qubit);
  /// √(2ᵏ / current weight): multiply raw amplitudes by this after
  /// measurement collapses.
  double normalizationCorrection();

  // ---- measurement (paper §III-E) ----------------------------------------
  /// Measures one qubit: collapse + implicit renormalization (the exact
  /// current weight is the denominator of later probabilities). `random`
  /// in [0,1) selects the outcome.
  bool measure(unsigned qubit, double random);
  /// Resets one qubit to |0⟩: collapse exactly like measure(), then an X
  /// kernel when the observed bit was 1. Consumes exactly one deviate (the
  /// collapse), like every engine's reset — the shared dynamic-circuit
  /// deviate contract. Returns the pre-reset measured bit.
  bool reset(unsigned qubit, double random);
  /// Samples a complete basis state (bit q = outcome of qubit q) by one
  /// weighted descent of the monolithic BDD without collapsing the register.
  std::vector<bool> sampleAll(Rng& rng);
  /// `count` independent shots sharing the persistent measurement context:
  /// one weight traversal total instead of one per shot. Equivalent (same
  /// deviate consumption) to calling sampleAll `count` times.
  std::vector<std::vector<bool>> sampleShots(unsigned count, Rng& rng);

  /// The persistent measurement context (built lazily, auto-invalidated
  /// when the state mutates). All probability/sampling queries above go
  /// through it; expose it directly for callers that want to control cache
  /// lifetime (e.g. the sampling benches).
  MeasurementContext& measurementContext();

  // ---- instrumentation ----------------------------------------------------
  struct Stats {
    std::size_t gatesApplied = 0;
    unsigned maxBitWidth = 0;
    std::size_t peakLiveNodes = 0;
  };
  const Stats& stats() const { return stats_; }
  bdd::BddManager& bddManager() { return mgr_; }
  /// Observability hook (DESIGN.md §11): forwards to the BDD manager (GC
  /// spans) and lets the MeasurementContext emit memo fill/invalidate
  /// events. Never owned; nullptr disables.
  void setMetrics(metrics::Registry* registry) {
    metricsRegistry_ = registry;
    mgr_.setMetrics(registry);
  }
  metrics::Registry* metricsRegistry() const { return metricsRegistry_; }
  /// Live BDD nodes across all 4r slices.
  std::size_t stateNodeCount() const;
  /// Read-only access to slice BDD F_{x_bit} for vector x ∈ {0:a,1:b,2:c,
  /// 3:d} — research/inspection API (e.g. regenerating the paper's Fig. 1).
  const bdd::Bdd& slice(unsigned vectorIndex, unsigned bit) const;
  /// The measurement hyper-function BDD of Eq. 12 (builds it if needed) —
  /// inspection analogue of the paper's Fig. 2. Not available in symbolic
  /// mode.
  bdd::Bdd monolithicForInspection() { return monolithic(); }

  bool isSymbolic() const { return symbolic_; }

  // ---- snapshots (support/serialize.hpp; DESIGN.md §12) -------------------
  /// Serializes the bit-sliced state: (n, r, k) scalars plus the shared
  /// 4·r slice BDDs in one children-first node listing (state_io.cpp).
  /// Unavailable in symbolic mode.
  void saveStatePayload(serialize::Writer& out);
  /// Rebuilds the state from a saveStatePayload stream through the public
  /// ITE interface (canonical by construction). Validates every node record
  /// before committing; throws serialize::SerializationError on corrupt
  /// input with the state unchanged.
  void loadStatePayload(serialize::Reader& in);

  /// Deep structural audit (DESIGN.md §10): the full BDD-package audit
  /// (unique-table canonicity, refcount recount, freelist integrity) plus
  /// the bit-sliced state's own invariants — 4 vectors × r live slices and
  /// the k-scalar inside its reachable range (k only grows by 1 per √2
  /// gate and renormalization keeps it non-negative). Throws
  /// audit::AuditError naming the failing structure.
  void auditInvariants() const;

 private:
  friend class MeasurementContext;
  friend class EquivalenceChecker;
  friend struct AuditCorruptor;  // test-only deliberate corruption hooks
  using Slices = std::vector<bdd::Bdd>;

  // -- helpers shared by the gate kernels (gate_kernels.cpp) --
  bdd::Bdd qvar(unsigned q) const;
  bdd::Bdd zero() const;
  bdd::Bdd one() const;
  /// Sign-extended copy with one extra slice.
  Slices extended(const Slices& v) const;
  /// Swap the qt halves of every slice: value at (x, qt=b) taken from
  /// (x, qt=!b).
  Slices swapHalves(const Slices& v, unsigned t) const;
  /// Slice-wise ITE(cond, a, b).
  Slices select(const bdd::Bdd& cond, const Slices& a, const Slices& b) const;
  /// Slice-wise ripple-carry sum G + D + carry0 (D empty means zero).
  Slices rippleSum(const Slices& g, const Slices& d,
                   const bdd::Bdd& carry0) const;
  /// Drop redundant top slices (all four vectors sign-extended).
  void trim();

  // -- whole-state scalar kernels (used by the equivalence checker) --
  /// Multiplies the entire state by √2 and increments k (net identity);
  /// used to align the k scalars of two states before comparison.
  void multiplyStateBySqrt2();
  /// Multiplies the entire state by ω (global phase).
  void multiplyStateByOmega();

  // -- per-gate kernels --
  void applyX(unsigned t);
  void applyCnot(const std::vector<unsigned>& controls, unsigned t);
  void applySwap(const std::vector<unsigned>& controls, unsigned t0,
                 unsigned t1);
  void applyPhaseFlip(const bdd::Bdd& condition);  // Z / CZ / MCZ
  void applyS(unsigned t, bool inverse);
  void applyT(unsigned t, bool inverse);
  void applyY(unsigned t);
  void applyH(unsigned t);
  void applyRx90(unsigned t);
  void applyRy90(unsigned t);

  // -- measurement internals (measurement.cpp) --
  void ensureEncodingVars();
  /// Builds (and caches) the hyper-function BDD of Eq. 12.
  bdd::Bdd monolithic();
  /// Every state mutation lands here: bumps the version the persistent
  /// MeasurementContext checks, and eagerly drops the now-stale cached
  /// BDD handles so dead cones do not stay pinned across later gates.
  /// Out of line: needs MeasurementContext complete (measurement.cpp).
  void invalidateMonolithic();

  Config config_;
  mutable bdd::BddManager mgr_;  // lazy projection-node creation is benign
  unsigned n_;
  unsigned r_;
  std::int64_t k_ = 0;
  std::array<Slices, 4> vec_;  // a, b, c, d
  std::vector<unsigned> encVars_;  // x0, x1, e0, e1, ... (created lazily)
  bdd::Bdd monolithicCache_;
  bool monolithicValid_ = false;
  bool symbolic_ = false;
  /// Incremented on every state mutation; MeasurementContext compares it
  /// against the version its caches were built at.
  std::uint64_t stateVersion_ = 0;
  std::unique_ptr<MeasurementContext> ctx_;
  Stats stats_;
  metrics::Registry* metricsRegistry_ = nullptr;
};

}  // namespace sliq
