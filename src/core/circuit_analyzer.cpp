#include "core/circuit_analyzer.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "stabilizer/stabilizer.hpp"

namespace sliq {
namespace {

// Union-find over qubits for the interaction-width proxy.
unsigned findRoot(std::vector<unsigned>& parent, unsigned q) {
  while (parent[q] != q) {
    parent[q] = parent[parent[q]];
    q = parent[q];
  }
  return q;
}

}  // namespace

CircuitFeatures analyzeCircuit(const QuantumCircuit& circuit) {
  CircuitFeatures f;
  f.numQubits = circuit.numQubits();
  f.gateCount = circuit.gateCount();
  f.histogram = circuit.histogram();
  f.dynamic = circuit.isDynamic();

  const unsigned n = circuit.numQubits();
  std::vector<unsigned> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  std::vector<std::size_t> qubitDepth(n, 0);

  bool inCliffordPrefix = true;
  for (const Gate& g : circuit.gates()) {
    const bool dynamicOp = g.isDynamicOp() || g.conditioned;
    if (dynamicOp) ++f.dynamicOps;

    const bool clifford = StabilizerSimulator::supportsGate(g);
    if (!g.isDynamicOp()) {
      ++f.unitaryGates;
      if (clifford) {
        ++f.cliffordGates;
      } else {
        ++f.nonCliffordGates;
      }
      if (g.kind == GateKind::kT || g.kind == GateKind::kTdg) ++f.tCount;
    }
    if (inCliffordPrefix && !dynamicOp && clifford) {
      ++f.cliffordPrefixGates;
    } else {
      inCliffordPrefix = false;
    }

    if (g.arity() >= 2 && !g.isDynamicOp()) {
      ++f.twoQubitGates;
      std::size_t depth = 0;
      unsigned root = findRoot(parent, g.targets[0]);
      const auto touch = [&](unsigned q) {
        depth = std::max(depth, qubitDepth[q]);
        const unsigned other = findRoot(parent, q);
        parent[other] = root;
      };
      for (unsigned q : g.targets) touch(q);
      for (unsigned q : g.controls) touch(q);
      ++depth;
      for (unsigned q : g.targets) qubitDepth[q] = depth;
      for (unsigned q : g.controls) qubitDepth[q] = depth;
      f.twoQubitDepth = std::max(f.twoQubitDepth, depth);
    }
  }

  if (f.unitaryGates > 0) {
    f.cliffordFraction = static_cast<double>(f.cliffordGates) /
                         static_cast<double>(f.unitaryGates);
  }

  std::vector<unsigned> componentSize(n, 0);
  for (unsigned q = 0; q < n; ++q) {
    const unsigned root = findRoot(parent, q);
    ++componentSize[root];
    f.interactionWidth = std::max(f.interactionWidth, componentSize[root]);
  }
  return f;
}

}  // namespace sliq
