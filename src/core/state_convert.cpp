// Engine::exportTo — cross-representation state conversion over the hook
// trio extractPreparation / extractDense / loadDense (see the route matrix
// in state_convert.hpp).
#include "core/state_convert.hpp"

#include <complex>
#include <sstream>
#include <vector>

#include "core/engine_registry.hpp"

namespace sliq {

void Engine::exportTo(Engine& dst, std::uint64_t denseBudgetBytes) {
  if (&dst == this) {
    throw ConversionError("exportTo: source and target are the same engine "
                          "instance");
  }
  if (dst.numQubits() != numQubits()) {
    throw ConversionError(
        "exportTo: target engine is " + std::to_string(dst.numQubits()) +
        " qubit(s) wide but the source state has " +
        std::to_string(numQubits()));
  }
  const metrics::ScopedSpan span(metrics_, "state.convert");

  // Route 1 — same representation: the versioned snapshot round-trip is
  // bit-identical and costs no re-encoding.
  if (dst.name() == name()) {
    std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
    saveState(buffer);
    dst.loadState(buffer);  // re-arms dst's collapse restriction itself
    metrics_.add("convert.snapshot");
    return;
  }

  // Route 2 — stabilizer extraction: replay the tableau's preparation
  // circuit on the target. Every engine applies plain Clifford gates, so
  // this route reaches all of them.
  QuantumCircuit prep(numQubits());
  if (extractPreparation(&prep)) {
    for (const Gate& g : prep.gates()) dst.applyGate(g);
    metrics_.add("convert.prep_gates", prep.gateCount());
    metrics_.add("convert.prep_replay");
    dst.collapsed_ = false;  // the converted state is a new reference state
    dst.maybeAudit();
    return;
  }

  // Route 3 — dense hand-over: budgeted 2^n extraction, re-encoded
  // natively by the target. An over-budget width throws MemoryBudgetError
  // out of extractDense (typed — callers fall back).
  std::vector<std::complex<double>> amplitudes;
  if (extractDense(&amplitudes, denseBudgetBytes)) {
    if (dst.loadDense(amplitudes)) {
      metrics_.add("convert.dense");
      dst.collapsed_ = false;
      dst.maybeAudit();
      return;
    }
    throw ConversionError(
        "no conversion route from '" + name() + "' to '" + dst.name() +
        "': the target cannot ingest dense amplitudes (a generic state is "
        "not a stabilizer state; doubles have no exact Z[\xE2\x88\x9A"
        "2] decomposition)");
  }
  throw ConversionError("no conversion route from '" + name() + "' to '" +
                        dst.name() +
                        "': the source extracts neither a preparation "
                        "circuit nor a dense amplitude array");
}

}  // namespace sliq
