// Gate application kernels — the Boolean update formulas of the paper's
// Table II, re-derived from first principles (the published table has
// typographic losses in its overlines; every derivation is spelled out
// below and each kernel is validated against the dense simulator in
// tests/core/test_gates_vs_statevector.cpp).
//
// Notation: for gate target t, "swap(V)" is the vector whose entry at
// (x, q_t = b) is V's entry at (x, q_t = ¬b). Conditional negation uses the
// two's-complement identity −v = ¬v + 1, realized with a ripple carry whose
// initial value is the negation condition.
//
// Amplitude algebra (ω = e^{iπ/4}, α = aω³ + bω² + cω + d):
//   α·ω  = bω³ + cω² + dω − a         (cyclic shift, sign on wraparound)
//   α·ω² = cω³ + dω² − aω − b
//   α·(−i) = α·ω⁶ = −aω − bω² + ... worked per gate below.
#include "core/simulator.hpp"
#include "support/assert.hpp"

namespace sliq {

using bdd::Bdd;

// ---- whole-state scalar kernels --------------------------------------------

// Multiply every amplitude by √2 = ω − ω³ and increment k: the represented
// state is unchanged, but the scalar k grows by one — used to align two
// states' k before slice-wise comparison. Coefficient rotation:
//   (a,b,c,d)·√2 = (b − d, a + c, b + d, c − a).
void SliqSimulator::multiplyStateBySqrt2() {
  const Slices a = extended(vec_[0]), b = extended(vec_[1]),
               c = extended(vec_[2]), d = extended(vec_[3]);
  auto sub = [&](const Slices& x, const Slices& y) {  // x − y
    Slices negY;
    negY.reserve(y.size());
    for (const bdd::Bdd& bit : y) negY.push_back(~bit);
    return rippleSum(x, negY, one());
  };
  vec_[0] = sub(b, d);
  vec_[1] = rippleSum(a, c, zero());
  vec_[2] = rippleSum(b, d, zero());
  vec_[3] = sub(c, a);
  ++k_;
  ++r_;
  trim();
  invalidateMonolithic();
}

// Multiply every amplitude by the global phase ω: (a,b,c,d) → (b,c,d,−a).
void SliqSimulator::multiplyStateByOmega() {
  const Slices a = extended(vec_[0]);
  vec_[0] = extended(vec_[1]);
  vec_[1] = extended(vec_[2]);
  vec_[2] = extended(vec_[3]);
  Slices negA;
  negA.reserve(a.size());
  for (const bdd::Bdd& bit : a) negA.push_back(~bit);
  vec_[3] = rippleSum(negA, {}, one());
  ++r_;
  trim();
  invalidateMonolithic();
}

// ---- permutation gates (no arithmetic, width unchanged) -------------------

// X on t: amplitudes at (x, t=b) and (x, t=¬b) exchange.
// Table II: F̂ = q̄t·F|qt ∨ qt·F|q̄t.
void SliqSimulator::applyX(unsigned t) {
  for (auto& slices : vec_) slices = swapHalves(slices, t);
}

// CNOT/Toffoli with control cube Qc: exchange the t-halves where all
// controls are 1. Table II: F̂ = Q̄c·F ∨ Qc·q̄t·F|Qc,qt ∨ Qc·qt·F|Qc,q̄t.
void SliqSimulator::applyCnot(const std::vector<unsigned>& controls,
                              unsigned t) {
  Bdd controlCube = one();
  for (unsigned c : controls) controlCube &= qvar(c);
  std::vector<bdd::Literal> cubeT0, cubeT1;
  for (unsigned c : controls) {
    cubeT0.push_back({c, true});
    cubeT1.push_back({c, true});
  }
  cubeT0.push_back({t, false});
  cubeT1.push_back({t, true});
  const Bdd qt = qvar(t);
  for (auto& slices : vec_) {
    for (Bdd& f : slices) {
      const Bdd swapped = qt.ite(f.cofactorCube(cubeT0),  // t=1 takes old t=0
                                 f.cofactorCube(cubeT1));
      f = controlCube.ite(swapped, f);
    }
  }
}

// SWAP/Fredkin: exchange amplitudes where (t0, t1) ∈ {(0,1), (1,0)} under
// the control cube. Table II (Fredkin row).
void SliqSimulator::applySwap(const std::vector<unsigned>& controls,
                              unsigned t0, unsigned t1) {
  Bdd active = qvar(t0) ^ qvar(t1);
  for (unsigned c : controls) active &= qvar(c);
  std::vector<bdd::Literal> cube01, cube10;  // (t0, t1) values of the source
  for (unsigned c : controls) {
    cube01.push_back({c, true});
    cube10.push_back({c, true});
  }
  cube01.push_back({t0, false});
  cube01.push_back({t1, true});
  cube10.push_back({t0, true});
  cube10.push_back({t1, false});
  const Bdd qt0 = qvar(t0);
  for (auto& slices : vec_) {
    for (Bdd& f : slices) {
      // Under active (t0 ≠ t1): the (1,0) half takes the old (0,1) value
      // and vice versa.
      const Bdd swapped = qt0.ite(f.cofactorCube(cube01),
                                  f.cofactorCube(cube10));
      f = active.ite(swapped, f);
    }
  }
}

// ---- phase-flip gates (conditional negation) -------------------------------

// Z (condition = qt), CZ (condition = qc·qt), multi-controlled Z: negate
// amplitudes where the condition holds. Per vector: V̂ = ITE(P, ¬V, V) + P.
// Table II Z/CZ rows: G = P̄·F ∨ P·F̄, C₀ = P, F̂ = Sum(G, 0, C).
void SliqSimulator::applyPhaseFlip(const Bdd& condition) {
  for (auto& slices : vec_) {
    Slices g = extended(slices);
    for (Bdd& bit : g) bit = bit ^ condition;
    slices = rippleSum(g, {}, condition);
  }
  ++r_;
  trim();
}

// ---- phase-rotation gates (coefficient permutations) -----------------------

// S on t: amplitudes with qt=1 multiply by i = ω²:
//   α·ω² : (a,b,c,d) → (c, d, −a, −b).
// Table II S row: F̂a = q̄t·Fa ∨ qt·Fc ;  F̂c = Sum(q̄t·Fc ∨ qt·F̄a, 0, qt).
// S† multiplies by −i = ω⁶: (a,b,c,d) → (−c, −d, a, b).
void SliqSimulator::applyS(unsigned t, bool inverse) {
  const Bdd qt = qvar(t);
  const Slices a = extended(vec_[0]), b = extended(vec_[1]),
               c = extended(vec_[2]), d = extended(vec_[3]);
  auto negUnder = [&](const Slices& keep, const Slices& negate) {
    // ITE(qt, ¬negate, keep) summed with carry-in qt realizes
    // "under qt: −negate, else keep".
    Slices g;
    g.reserve(keep.size());
    for (std::size_t i = 0; i < keep.size(); ++i)
      g.push_back(qt.ite(~negate[i], keep[i]));
    return rippleSum(g, {}, qt);
  };
  if (!inverse) {
    vec_[0] = select(qt, c, a);
    vec_[1] = select(qt, d, b);
    vec_[2] = negUnder(c, a);
    vec_[3] = negUnder(d, b);
  } else {
    vec_[2] = select(qt, a, c);
    vec_[3] = select(qt, b, d);
    vec_[0] = negUnder(a, c);
    vec_[1] = negUnder(b, d);
  }
  ++r_;
  trim();
}

// T on t: amplitudes with qt=1 multiply by ω:
//   α·ω : (a,b,c,d) → (b, c, d, −a).
// Table II T row. T† multiplies by ω⁷: (a,b,c,d) → (−d, a, b, c).
void SliqSimulator::applyT(unsigned t, bool inverse) {
  const Bdd qt = qvar(t);
  const Slices a = extended(vec_[0]), b = extended(vec_[1]),
               c = extended(vec_[2]), d = extended(vec_[3]);
  auto negUnder = [&](const Slices& keep, const Slices& negate) {
    Slices g;
    g.reserve(keep.size());
    for (std::size_t i = 0; i < keep.size(); ++i)
      g.push_back(qt.ite(~negate[i], keep[i]));
    return rippleSum(g, {}, qt);
  };
  if (!inverse) {
    vec_[0] = select(qt, b, a);
    vec_[1] = select(qt, c, b);
    vec_[2] = select(qt, d, c);
    vec_[3] = negUnder(d, a);
  } else {
    vec_[1] = select(qt, a, b);
    vec_[2] = select(qt, b, c);
    vec_[3] = select(qt, c, d);
    vec_[0] = negUnder(a, d);
  }
  ++r_;
  trim();
}

// Y on t: α'(x, t=0) = −i·α(x, t=1), α'(x, t=1) = +i·α(x, t=0).
//   i·α : (a,b,c,d) → (c, d, −a, −b);  −i·α : → (−c, −d, a, b).
// Per vector: a' = ±swap(c) (negated on the t=0 half), etc. Table II Y row.
void SliqSimulator::applyY(unsigned t) {
  const Bdd qt = qvar(t);
  const Bdd nqt = ~qt;
  const Slices sa = swapHalves(extended(vec_[0]), t);
  const Slices sb = swapHalves(extended(vec_[1]), t);
  const Slices sc = swapHalves(extended(vec_[2]), t);
  const Slices sd = swapHalves(extended(vec_[3]), t);
  auto signedCopy = [&](const Slices& src, const Bdd& negateWhen) {
    Slices g;
    g.reserve(src.size());
    for (const Bdd& bit : src) g.push_back(bit ^ negateWhen);
    return rippleSum(g, {}, negateWhen);
  };
  vec_[0] = signedCopy(sc, nqt);  // a' = −swap(c) at t=0, +swap(c) at t=1
  vec_[1] = signedCopy(sd, nqt);
  vec_[2] = signedCopy(sa, qt);   // c' = +swap(a) at t=0, −swap(a) at t=1
  vec_[3] = signedCopy(sb, qt);
  ++r_;
  trim();
}

// ---- superposition gates (true additions; k increments) -------------------

// H on t (Proposition 1): with the 1/√2 factor folded into k,
//   α'(x, t=0) = α(x,0) + α(x,1),  α'(x, t=1) = α(x,0) − α(x,1).
// Component vectors: G = F|q̄t (both halves = old t=0 value) and
// D = ±F|qt (negated on the t=1 half), summed with carry-in qt.
void SliqSimulator::applyH(unsigned t) {
  const Bdd qt = qvar(t);
  for (auto& slices : vec_) {
    const Slices f = extended(slices);
    Slices g, d;
    g.reserve(f.size());
    d.reserve(f.size());
    for (const Bdd& bit : f) {
      g.push_back(bit.cofactor(t, false));
      const Bdd hiCof = bit.cofactor(t, true);
      d.push_back(qt.ite(~hiCof, hiCof));
    }
    slices = rippleSum(g, d, qt);
  }
  ++k_;
  ++r_;
  trim();
}

// Ry(π/2) on t: matrix (1/√2)[[1, −1], [1, 1]]:
//   α'(x,0) = α(x,0) − α(x,1),  α'(x,1) = α(x,0) + α(x,1).
// Same structure as H with the negation on the t=0 half (carry-in q̄t).
void SliqSimulator::applyRy90(unsigned t) {
  const Bdd qt = qvar(t);
  const Bdd nqt = ~qt;
  for (auto& slices : vec_) {
    const Slices f = extended(slices);
    Slices g, d;
    g.reserve(f.size());
    d.reserve(f.size());
    for (const Bdd& bit : f) {
      g.push_back(bit.cofactor(t, false));
      const Bdd hiCof = bit.cofactor(t, true);
      d.push_back(qt.ite(hiCof, ~hiCof));
    }
    slices = rippleSum(g, d, nqt);
  }
  ++k_;
  ++r_;
  trim();
}

// Rx(π/2) on t: matrix (1/√2)[[1, −i], [−i, 1]]: α' = α + (−i)·swap(α).
//   (−i)·β : (a,b,c,d) → (−c, −d, a, b), so
//   a' = a − swap(c), b' = b − swap(d), c' = c + swap(a), d' = d + swap(b).
// Table II Rx row: carries 1,1,0,0 realize the two subtractions.
void SliqSimulator::applyRx90(unsigned t) {
  const Slices a = extended(vec_[0]), b = extended(vec_[1]),
               c = extended(vec_[2]), d = extended(vec_[3]);
  const Slices sa = swapHalves(a, t), sb = swapHalves(b, t),
               sc = swapHalves(c, t), sd = swapHalves(d, t);
  auto negated = [](Slices v) {
    for (Bdd& bit : v) bit = ~bit;
    return v;
  };
  vec_[0] = rippleSum(a, negated(sc), one());
  vec_[1] = rippleSum(b, negated(sd), one());
  vec_[2] = rippleSum(c, sa, zero());
  vec_[3] = rippleSum(d, sb, zero());
  ++k_;
  ++r_;
  trim();
}

}  // namespace sliq
