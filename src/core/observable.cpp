#include "core/observable.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "circuit/circuit.hpp"
#include "core/engine_registry.hpp"

namespace sliq {

char pauliChar(Pauli p) {
  switch (p) {
    case Pauli::kI: return 'I';
    case Pauli::kX: return 'X';
    case Pauli::kY: return 'Y';
    case Pauli::kZ: return 'Z';
  }
  return '?';
}

bool PauliString::isDiagonal() const {
  for (const PauliFactor& f : factors) {
    if (f.op != Pauli::kZ) return false;
  }
  return true;
}

std::string PauliString::pauliText() const {
  if (factors.empty()) return "I";
  std::string s;
  for (const PauliFactor& f : factors) {
    if (!s.empty()) s += ' ';
    s += pauliChar(f.op);
    s += std::to_string(f.qubit);
  }
  return s;
}

void PauliObservable::addTerm(double coefficient,
                              std::vector<PauliFactor> factors,
                              unsigned sourceLine) {
  factors.erase(std::remove_if(
                    factors.begin(), factors.end(),
                    [](const PauliFactor& f) { return f.op == Pauli::kI; }),
                factors.end());
  std::sort(factors.begin(), factors.end(),
            [](const PauliFactor& a, const PauliFactor& b) {
              return a.qubit < b.qubit;
            });
  for (std::size_t i = 1; i < factors.size(); ++i) {
    if (factors[i].qubit == factors[i - 1].qubit) {
      throw ObservableSpecError(
          "duplicate qubit " + std::to_string(factors[i].qubit) +
          " in one Pauli string (pre-multiply same-qubit factors instead)");
    }
  }
  terms_.push_back(PauliString{coefficient, std::move(factors), sourceLine});
}

unsigned PauliObservable::numQubitsRequired() const {
  unsigned n = 0;
  for (const PauliString& term : terms_) {
    for (const PauliFactor& f : term.factors) n = std::max(n, f.qubit + 1);
  }
  return n;
}

std::string PauliObservable::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    const PauliString& term = terms_[i];
    if (i == 0) {
      os << term.coefficient;
    } else {
      os << (term.coefficient < 0 ? " - " : " + ")
         << std::abs(term.coefficient);
    }
    os << "*" << term.pauliText();
  }
  os << " (" << terms_.size() << (terms_.size() == 1 ? " term)" : " terms)");
  return os.str();
}

void PauliObservable::validateForWidth(unsigned numQubits) const {
  for (const PauliString& term : terms_) {
    for (const PauliFactor& f : term.factors) {
      if (f.qubit >= numQubits) {
        std::ostringstream os;
        os << origin_;
        if (term.sourceLine > 0) os << ":" << term.sourceLine;
        os << ": term '" << term.pauliText() << "' references qubit "
           << f.qubit << " but the circuit has only " << numQubits
           << " qubits";
        throw ObservableSpecError(os.str());
      }
    }
  }
}

// ---- spec parsing ---------------------------------------------------------

namespace {

[[noreturn]] void specError(const std::string& origin, unsigned line,
                            const std::string& what) {
  throw ObservableSpecError(origin + ":" + std::to_string(line) + ": " + what);
}

/// Strict double parse (whole token, no garbage) — the noise parser's rule.
double parseCoefficient(const std::string& origin, unsigned line,
                        const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) {
    specError(origin, line, "expected a coefficient, got '" + token + "'");
  }
  return value;
}

/// One factor token: a Pauli letter immediately followed by a qubit index,
/// e.g. "Z0", "x12" (case-insensitive).
PauliFactor parseFactor(const std::string& origin, unsigned line,
                        const std::string& token) {
  Pauli op;
  switch (token.empty() ? '\0' : std::toupper(
                                     static_cast<unsigned char>(token[0]))) {
    case 'I': op = Pauli::kI; break;
    case 'X': op = Pauli::kX; break;
    case 'Y': op = Pauli::kY; break;
    case 'Z': op = Pauli::kZ; break;
    default:
      specError(origin, line,
                "bad Pauli factor '" + token +
                    "' (expected I/X/Y/Z immediately followed by a qubit "
                    "index, e.g. Z0)");
  }
  const std::string digits = token.substr(1);
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(digits.c_str(), &end, 10);
  if (digits.empty() || digits[0] == '-' || end == digits.c_str() ||
      *end != '\0' || errno == ERANGE || value > 1u << 24) {
    specError(origin, line, "bad Pauli factor '" + token +
                                "' (expected a qubit index after '" +
                                std::string(1, token[0]) + "')");
  }
  return PauliFactor{static_cast<unsigned>(value), op};
}

}  // namespace

PauliObservable PauliObservable::parse(std::istream& in,
                                       const std::string& origin) {
  PauliObservable observable;
  observable.origin_ = origin;
  std::string line;
  unsigned lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::string coeffToken;
    if (!(tokens >> coeffToken)) continue;  // blank / comment-only line

    const double coefficient = parseCoefficient(origin, lineNo, coeffToken);
    std::vector<PauliFactor> factors;
    std::string factorToken;
    while (tokens >> factorToken) {
      factors.push_back(parseFactor(origin, lineNo, factorToken));
    }
    try {
      observable.addTerm(coefficient, std::move(factors), lineNo);
    } catch (const ObservableSpecError& e) {
      specError(origin, lineNo, e.what());
    }
  }
  if (observable.terms_.empty()) {
    specError(origin, std::max(lineNo, 1u),
              "observable spec defines no terms (every line is blank or a "
              "comment)");
  }
  return observable;
}

PauliObservable PauliObservable::parseString(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

PauliObservable PauliObservable::parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ObservableSpecError("cannot open observable spec '" + path + "'");
  }
  return parse(in, path);
}

PauliObservable singleStringObservable(const PauliString& term) {
  PauliObservable obs;
  obs.addTerm(1.0, term.factors, term.sourceLine);
  return obs;
}

// ---- generic (engine-agnostic) expectation --------------------------------

namespace {

/// Clifford circuit U with U† Z_anchor U = P: per-factor basis changes
/// (H for X; S† then H for Y) followed by CNOTs folding every other support
/// qubit's Z onto the anchor (the highest support qubit).
QuantumCircuit conjugationCircuit(unsigned numQubits,
                                  const PauliString& term) {
  QuantumCircuit rot(numQubits, "pauli-conjugation");
  for (const PauliFactor& f : term.factors) {
    if (f.op == Pauli::kX) {
      rot.h(f.qubit);
    } else if (f.op == Pauli::kY) {
      rot.sdg(f.qubit).h(f.qubit);
    }
  }
  const unsigned anchor = term.factors.back().qubit;  // factors are sorted
  for (const PauliFactor& f : term.factors) {
    if (f.qubit != anchor) rot.cx(f.qubit, anchor);
  }
  return rot;
}

}  // namespace

double genericStringExpectation(Engine& engine, const PauliString& term) {
  if (term.isIdentity()) return 1.0;
  const QuantumCircuit rot = conjugationCircuit(engine.numQubits(), term);
  engine.run(rot);
  const double value = 1.0 - 2.0 * engine.probabilityOne(term.factors.back().qubit);
  // H, S/S† and CNOT invert exactly, so this restores the run() state (the
  // exact engine's representation may carry a benign 2/√2² rescaling).
  engine.run(rot.inverse());
  return value;
}

double genericExpectation(Engine& engine, const PauliObservable& observable) {
  double sum = 0;
  for (const PauliString& term : observable.terms()) {
    sum += term.coefficient * genericStringExpectation(engine, term);
  }
  return sum;
}

// ---- Engine facade entry --------------------------------------------------

double Engine::expectation(const PauliObservable& observable) {
  // Expectations are defined on the state prepared by run(), like shot
  // sampling: the facade contract rejects collapsed registers uniformly.
  requireUncollapsed();
  observable.validateForWidth(numQubits());
  return expectationImpl(observable);
}

double Engine::expectationImpl(const PauliObservable& observable) {
  return genericExpectation(*this, observable);
}

}  // namespace sliq
