// Exact functional equivalence checking of quantum circuits — the natural
// extension of the bit-sliced representation that the authors later shipped
// as SliQEC. Implemented here from the paper's machinery alone:
//
// Both circuits are simulated once on the *symbolic* initial state
// Σ_x |x⟩|x⟩ (qubit variables entangled with n fresh input-label variables),
// which tracks every column of the circuit unitary simultaneously. Two
// circuits are equivalent iff the resulting 4r-slice states are identical
// BDDs after aligning the √2 scalars — an exact, canonical comparison with
// no numerics anywhere.
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace sliq {

enum class Equivalence {
  kEqual,               // U₁ == U₂ exactly, including global phase
  kEqualUpToPhase,      // U₁ == ω^p · U₂ for some p in 1..7
  kNotEquivalent,
};

std::string toString(Equivalence e);

struct EquivalenceOptions {
  /// Also search the ω^p global-phase orbit (p = 1..7).
  bool allowGlobalPhase = true;
  /// Forwarded to the two symbolic simulators.
  unsigned initialBitWidth = 2;
};

/// Decides functional equivalence of two same-width circuits. Cost: two
/// symbolic simulations (2n BDD variables each) plus slice comparisons.
Equivalence checkEquivalence(const QuantumCircuit& first,
                             const QuantumCircuit& second,
                             const EquivalenceOptions& options = {});

}  // namespace sliq
