// PauliObservable — weighted sums of Pauli strings, the readout layer for
// expectation-value workloads (VQE-style energy estimation, noisy-observable
// studies).
//
// An observable is O = Σ_s c_s · P_s with real coefficients c_s and Pauli
// strings P_s = ⊗_q σ_q (σ ∈ {I, X, Y, Z}). The exact BDD representation is
// strongest when the state is *not* collapsed: the same weight algebra that
// yields per-qubit probabilities from one traversal of the monolithic
// hyper-function also yields exact ⟨P⟩ for any Pauli string (a signed
// traversal — see MeasurementContext::expectationZ). Every engine gets a
// native fast path (engine_registry.cpp); the generic fallback below works
// on any Engine through basis changes + a CNOT parity chain + the existing
// probabilityOne machinery.
//
// Observables parse from a line-based text spec mirroring the noise-model
// parser (noise_model.hpp), with file:line diagnostics:
//   # comment
//   <coefficient> <pauli><qubit> [<pauli><qubit> ...]
//   0.5  Z0 Z1
//   -.25 X0 Y2
//   1.5             # bare coefficient: identity term (constant offset)
// 'I<q>' factors are accepted and dropped; listing one qubit twice in a
// string is an error (products of same-qubit Paulis are not normalized
// here — pre-multiply them in the spec instead).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace sliq {

class Engine;  // core/engine_registry.hpp

/// Single-qubit Pauli operator. Shared by the observable subsystem and the
/// noise channels (sliq::noise re-exports this enum — one Pauli type across
/// the library).
enum class Pauli : std::uint8_t { kI, kX, kY, kZ };

/// Mnemonic character: 'I', 'X', 'Y', 'Z'.
char pauliChar(Pauli p);

/// Observable spec / validation failure, with the spec origin ("file:line")
/// in the message.
class ObservableSpecError : public std::runtime_error {
 public:
  explicit ObservableSpecError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One non-identity Pauli factor of a string: `op` acting on `qubit`.
struct PauliFactor {
  unsigned qubit;
  Pauli op;  ///< kX, kY or kZ (identity factors are never stored)
};

/// One weighted Pauli string c · ⊗ σ_q. Factors are sorted by qubit and
/// qubit-distinct; an empty factor list is the identity term (constant c).
struct PauliString {
  double coefficient = 0;
  std::vector<PauliFactor> factors;
  /// 1-based line of the defining spec line (0 for programmatic terms) —
  /// lets width validation report file:line like the parser itself.
  unsigned sourceLine = 0;

  bool isIdentity() const { return factors.empty(); }
  /// True when every factor is Z (diagonal in the computational basis).
  bool isDiagonal() const;
  /// "Z0 Z1" / "I" — the string without its coefficient.
  std::string pauliText() const;
};

class PauliObservable {
 public:
  PauliObservable() = default;

  /// Adds c · ⊗ factors. Factors are sorted/validated (duplicate qubits
  /// rejected with ObservableSpecError); identity factors are dropped.
  void addTerm(double coefficient, std::vector<PauliFactor> factors,
               unsigned sourceLine = 0);

  const std::vector<PauliString>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }
  /// Smallest register width able to hold every factor (0 for an
  /// identity-only observable).
  unsigned numQubitsRequired() const;
  /// Where this observable was parsed from ("<spec>" for programmatic).
  const std::string& origin() const { return origin_; }
  /// One line, e.g. "0.5*Z0 Z1 - 0.25*X0 (2 terms)".
  std::string summary() const;
  /// Throws ObservableSpecError (citing origin:line for parsed terms) if
  /// any factor references a qubit >= numQubits.
  void validateForWidth(unsigned numQubits) const;

  // ---- spec parsing ------------------------------------------------------
  /// Throws ObservableSpecError (with origin:line) on malformed input or an
  /// empty spec (an observable with no terms has no defined expectation).
  static PauliObservable parse(std::istream& in,
                               const std::string& origin = "<spec>");
  static PauliObservable parseString(const std::string& text);
  static PauliObservable parseFile(const std::string& path);

 private:
  std::vector<PauliString> terms_;
  std::string origin_ = "<spec>";
};

/// `term`'s factors as a standalone 1.0-coefficient observable — the
/// per-string probe shared by the CLI, the trajectory runner and the
/// differential tests.
PauliObservable singleStringObservable(const PauliString& term);

/// ⟨P⟩ of one Pauli string (coefficient ignored) on the engine's current
/// state, via the engine-agnostic fallback: single-qubit basis changes map
/// X/Y factors to Z, a CNOT parity chain folds the multi-qubit Z string
/// onto its highest support qubit, probabilityOne reads ⟨Z⟩ = 1 − 2·Pr[1],
/// and the inverse circuit restores the state. Every gate used (H, S†/S,
/// CNOT) is Clifford and inverts exactly, so the engine's state is restored
/// up to representation details (never up to probabilities).
double genericStringExpectation(Engine& engine, const PauliString& term);

/// Σ_s c_s · genericStringExpectation(engine, s) — the Engine facade's
/// default expectation() implementation, exposed for differential tests
/// against the native per-engine fast paths.
double genericExpectation(Engine& engine, const PauliObservable& observable);

}  // namespace sliq
