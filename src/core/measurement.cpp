// Measurement and probability calculation (paper §III-E).
//
// The 4r slice BDDs are merged into one monolithic hyper-function BDD
// (Eq. 12): two fresh variables x0 x1 select the vector (a,b,c,d) and
// ⌈log2 r⌉ more encode the bit index; all encoding variables sit *below*
// the qubit variables. Probabilities are then computed by one memoized
// top-down traversal whose node weights live in the exact ring Z[√2]
// (substituting the paper's MPFR floats — see DESIGN.md §4): a boundary
// node (below the qubit variables) decodes its four integers by point
// evaluation and contributes |α|²·2ᵏ = (a²+b²+c²+d²) + √2(dc − da + ab + bc).
#include <unordered_map>

#include "algebra/algebraic.hpp"
#include "core/simulator.hpp"
#include "support/assert.hpp"

namespace sliq {

using bdd::Bdd;
using bdd::Edge;

namespace {

Zroot2 shiftLeft(const Zroot2& w, unsigned bits) {
  if (bits == 0 || w.isZero()) return w;
  return Zroot2(w.rational() << bits, w.irrational() << bits);
}

/// Exact weight accumulator over a monolithic state BDD.
class WeightCalc {
 public:
  WeightCalc(const bdd::BddManager& mgr, unsigned numQubits,
             const std::vector<unsigned>& encVars, unsigned bitWidth)
      : mgr_(mgr), n_(numQubits), encVars_(encVars), r_(bitWidth),
        assignment_(mgr.varCount(), false) {}

  /// Σ over all qubit assignments of |α|²·2ᵏ below `root`.
  Zroot2 total(Edge root) {
    const unsigned level = std::min(mgr_.edgeLevel(root), n_);
    return shiftLeft(weightBelow(root), level);
  }

  /// Weight over qubit variables at levels [level(e), n).
  Zroot2 weightBelow(Edge e) {
    if (mgr_.edgeLevel(e) >= n_) return ampSq(e);
    const auto it = memo_.find(e.raw);
    if (it != memo_.end()) return it->second;
    const unsigned level = mgr_.edgeLevel(e);
    Zroot2 sum;
    for (const Edge child : {mgr_.thenEdge(e), mgr_.elseEdge(e)}) {
      const unsigned childLevel = std::min(mgr_.edgeLevel(child), n_);
      sum += shiftLeft(weightBelow(child), childLevel - level - 1);
    }
    memo_.emplace(e.raw, sum);
    return sum;
  }

  /// |α|²·2ᵏ of the boundary node e (which encodes the four integers).
  Zroot2 ampSq(Edge e) {
    const auto it = ampMemo_.find(e.raw);
    if (it != ampMemo_.end()) return it->second;
    BigInt coef[4];
    for (unsigned vecIdx = 0; vecIdx < 4; ++vecIdx) {
      assignment_[encVars_[0]] = (vecIdx & 2) != 0;  // x0: selects {c,d}
      assignment_[encVars_[1]] = (vecIdx & 1) != 0;  // x1: selects {b,d}
      std::vector<bool> bits(r_);
      for (unsigned i = 0; i < r_; ++i) {
        for (unsigned j = 2; j < encVars_.size(); ++j)
          assignment_[encVars_[j]] = ((i >> (j - 2)) & 1) != 0;
        bits[i] = mgr_.evalPoint(e, assignment_);
      }
      coef[vecIdx] = BigInt::fromTwosComplementBits(bits);
    }
    const AlgebraicComplex alpha(coef[0], coef[1], coef[2], coef[3], 0);
    Zroot2 w = alpha.normSqScaled();
    ampMemo_.emplace(e.raw, w);
    return w;
  }

 private:
  const bdd::BddManager& mgr_;
  unsigned n_;
  const std::vector<unsigned>& encVars_;
  unsigned r_;
  std::vector<bool> assignment_;
  std::unordered_map<std::uint32_t, Zroot2> memo_;
  std::unordered_map<std::uint32_t, Zroot2> ampMemo_;
};

}  // namespace

void SliqSimulator::ensureEncodingVars() {
  SLIQ_REQUIRE(!symbolic_,
               "measurement is unavailable in symbolic (equivalence) mode");
  unsigned indexBits = 0;
  while ((1u << indexBits) < r_) ++indexBits;
  const unsigned needed = 2 + indexBits;
  while (encVars_.size() < needed) encVars_.push_back(mgr_.newVar());
  // The hyper-function layout requires every encoding variable to sit below
  // every qubit variable in the order (Fig. 2). This holds by construction
  // (encoding variables are created later) and must survive any reordering.
  unsigned maxQubitLevel = 0;
  for (unsigned q = 0; q < n_; ++q)
    maxQubitLevel = std::max(maxQubitLevel, mgr_.levelOfVar(q));
  for (unsigned v : encVars_)
    SLIQ_CHECK(mgr_.levelOfVar(v) > maxQubitLevel,
               "encoding variables reordered above qubit variables");
}

Bdd SliqSimulator::monolithic() {
  if (monolithicValid_) return monolithicCache_;
  ensureEncodingVars();
  Bdd result = zero();
  for (unsigned vecIdx = 0; vecIdx < 4; ++vecIdx) {
    Bdd vecPart = zero();
    for (unsigned i = 0; i < r_; ++i) {
      if (vec_[vecIdx][i].isZero()) continue;
      std::vector<bdd::Literal> sel;
      sel.push_back({encVars_[0], (vecIdx & 2) != 0});
      sel.push_back({encVars_[1], (vecIdx & 1) != 0});
      for (unsigned j = 2; j < encVars_.size(); ++j)
        sel.push_back({encVars_[j], ((i >> (j - 2)) & 1) != 0});
      const Bdd cube(&mgr_, mgr_.cubeEdge(sel));
      vecPart |= vec_[vecIdx][i] & cube;
    }
    result |= vecPart;
  }
  monolithicCache_ = result;
  monolithicValid_ = true;
  return result;
}

Zroot2 SliqSimulator::totalWeightScaled() {
  const Bdd f = monolithic();
  WeightCalc calc(mgr_, n_, encVars_, r_);
  return calc.total(f.edge());
}

double SliqSimulator::totalProbability() {
  SLIQ_CHECK(k_ >= 0, "negative k");
  return ratio(totalWeightScaled(),
               Zroot2(BigInt::pow2(static_cast<unsigned>(k_)), BigInt(0)));
}

double SliqSimulator::probabilityOne(unsigned qubit) {
  SLIQ_REQUIRE(qubit < n_, "qubit out of range");
  const Bdd f = monolithic();
  const Bdd f1 = f & qvar(qubit);  // zero out amplitudes with qubit = 0
  WeightCalc calc(mgr_, n_, encVars_, r_);
  const Zroot2 total = calc.total(f.edge());
  const Zroot2 one = calc.total(f1.edge());
  if (one.isZero()) return 0.0;
  return ratio(one, total);
}

double SliqSimulator::normalizationCorrection() {
  const Zroot2 weight = totalWeightScaled();
  SLIQ_CHECK(!weight.isZero(), "state has zero weight");
  SLIQ_CHECK(k_ >= 0, "negative k");
  const Zroot2 pow2k(BigInt::pow2(static_cast<unsigned>(k_)), BigInt(0));
  return std::sqrt(ratio(pow2k, weight));
}

bool SliqSimulator::measure(unsigned qubit, double random) {
  SLIQ_REQUIRE(qubit < n_, "qubit out of range");
  SLIQ_REQUIRE(random >= 0.0 && random < 1.0, "random must be in [0,1)");
  const double p1 = probabilityOne(qubit);
  const bool outcome = random < p1;
  // Collapse (paper: connect the discarded half to the constant-0 node):
  // conjoin every slice with the observed literal. Renormalization is
  // implicit — later probabilities divide by the new exact total weight.
  const Bdd literal = outcome ? qvar(qubit) : ~qvar(qubit);
  for (auto& slices : vec_)
    for (Bdd& f : slices) f &= literal;
  invalidateMonolithic();
  return outcome;
}

std::vector<bool> SliqSimulator::sampleAll(Rng& rng) {
  const Bdd f = monolithic();
  WeightCalc calc(mgr_, n_, encVars_, r_);
  std::vector<bool> outcome(n_);
  Edge e = f.edge();
  unsigned level = 0;
  while (level < n_) {
    const unsigned nodeLevel = std::min(mgr_.edgeLevel(e), n_);
    // Qubits skipped by the edge have amplitude-independent outcomes:
    // both values are equally likely.
    while (level < nodeLevel) {
      outcome[mgr_.varAtLevel(level)] = rng.flip();
      ++level;
    }
    if (level >= n_) break;
    const Edge hi = mgr_.thenEdge(e);
    const Edge lo = mgr_.elseEdge(e);
    const Zroot2 w1 = shiftLeft(calc.weightBelow(hi),
                                std::min(mgr_.edgeLevel(hi), n_) - level - 1);
    const Zroot2 w0 = shiftLeft(calc.weightBelow(lo),
                                std::min(mgr_.edgeLevel(lo), n_) - level - 1);
    const Zroot2 sum = w0 + w1;
    SLIQ_CHECK(!sum.isZero(), "zero-weight state cannot be sampled");
    const double p1 = w1.isZero() ? 0.0 : ratio(w1, sum);
    const bool bit = rng.uniform() < p1;
    outcome[mgr_.varAtLevel(level)] = bit;
    e = bit ? hi : lo;
    ++level;
  }
  return outcome;
}

}  // namespace sliq
