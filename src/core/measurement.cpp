// Measurement and probability calculation (paper §III-E).
//
// The 4r slice BDDs are merged into one monolithic hyper-function BDD
// (Eq. 12): two fresh variables x0 x1 select the vector (a,b,c,d) and
// ⌈log2 r⌉ more encode the bit index; all encoding variables sit *below*
// the qubit variables. Probabilities are then computed by one memoized
// top-down traversal whose node weights live in the exact ring Z[√2]
// (substituting the paper's MPFR floats — see DESIGN.md §4). The traversal
// state is persistent: every query below delegates to the simulator's
// MeasurementContext (measurement_context.cpp), which keeps the monolithic
// handle and the weightBelow/ampSq memos alive until the state mutates.
#include <algorithm>

#include "core/measurement_context.hpp"
#include "core/simulator.hpp"
#include "support/assert.hpp"

namespace sliq {

using bdd::Bdd;

SliqSimulator::~SliqSimulator() = default;

void SliqSimulator::invalidateMonolithic() {
  monolithicValid_ = false;
  ++stateVersion_;
  // Eagerly release the stale hyper-function cone (and the context's
  // handles into it) so GC can reclaim it while further gates run.
  monolithicCache_ = Bdd();
  if (ctx_) ctx_->dropCaches();
}

void SliqSimulator::ensureEncodingVars() {
  SLIQ_REQUIRE(!symbolic_,
               "measurement is unavailable in symbolic (equivalence) mode");
  unsigned indexBits = 0;
  while ((1u << indexBits) < r_) ++indexBits;
  const unsigned needed = 2 + indexBits;
  while (encVars_.size() < needed) encVars_.push_back(mgr_.newVar());
  // The hyper-function layout requires every encoding variable to sit below
  // every qubit variable in the order (Fig. 2). This holds by construction
  // (encoding variables are created later) and must survive any reordering.
  unsigned maxQubitLevel = 0;
  for (unsigned q = 0; q < n_; ++q)
    maxQubitLevel = std::max(maxQubitLevel, mgr_.levelOfVar(q));
  for (unsigned v : encVars_)
    SLIQ_CHECK(mgr_.levelOfVar(v) > maxQubitLevel,
               "encoding variables reordered above qubit variables");
}

Bdd SliqSimulator::monolithic() {
  if (monolithicValid_) return monolithicCache_;
  ensureEncodingVars();
  Bdd result = zero();
  for (unsigned vecIdx = 0; vecIdx < 4; ++vecIdx) {
    Bdd vecPart = zero();
    for (unsigned i = 0; i < r_; ++i) {
      if (vec_[vecIdx][i].isZero()) continue;
      std::vector<bdd::Literal> sel;
      sel.push_back({encVars_[0], (vecIdx & 2) != 0});
      sel.push_back({encVars_[1], (vecIdx & 1) != 0});
      for (unsigned j = 2; j < encVars_.size(); ++j)
        sel.push_back({encVars_[j], ((i >> (j - 2)) & 1) != 0});
      const Bdd cube(&mgr_, mgr_.cubeEdge(sel));
      vecPart |= vec_[vecIdx][i] & cube;
    }
    result |= vecPart;
  }
  monolithicCache_ = result;
  monolithicValid_ = true;
  return result;
}

MeasurementContext& SliqSimulator::measurementContext() {
  if (!ctx_) ctx_ = std::make_unique<MeasurementContext>(*this);
  return *ctx_;
}

Zroot2 SliqSimulator::totalWeightScaled() {
  return measurementContext().totalWeightScaled();
}

double SliqSimulator::totalProbability() {
  return measurementContext().totalProbability();
}

double SliqSimulator::probabilityOne(unsigned qubit) {
  return measurementContext().probabilityOne(qubit);
}

double SliqSimulator::normalizationCorrection() {
  return measurementContext().normalizationCorrection();
}

bool SliqSimulator::measure(unsigned qubit, double random) {
  SLIQ_REQUIRE(qubit < n_, "qubit out of range");
  SLIQ_REQUIRE(random >= 0.0 && random < 1.0, "random must be in [0,1)");
  const double p1 = measurementContext().probabilityOne(qubit);
  const bool outcome = random < p1;
  // Collapse (paper: connect the discarded half to the constant-0 node):
  // conjoin every slice with the observed literal. Renormalization is
  // implicit — later probabilities divide by the new exact total weight.
  const Bdd literal = outcome ? qvar(qubit) : ~qvar(qubit);
  for (auto& slices : vec_)
    for (Bdd& f : slices) f &= literal;
  invalidateMonolithic();
  // Post-measure renormalization (DESIGN.md §8): scaling the physical
  // state by √2 is free in this representation — it is one decrement of
  // the k scalar — so whenever the post-collapse weight Σ|α|²·2ᵏ is an
  // exact power of two (always for Clifford circuits, whose measurement
  // probabilities are dyadic) the state is renormalized *exactly* by
  // re-pointing k at it. Non-dyadic weights (T-circuits) keep the implicit
  // path: every query divides by the current weight, so probabilities are
  // identical either way. The traversal this costs is the one the next
  // probability query would run anyway (the context caches it; k does not
  // enter the cached weights).
  const Zroot2& weight = measurementContext().totalWeightScaled();
  if (weight.irrational().isZero() && weight.rational().signum() > 0) {
    const BigInt& u = weight.rational();
    const unsigned bits = u.bitLength();
    if (u == BigInt::pow2(bits - 1)) {
      k_ = static_cast<std::int64_t>(bits) - 1;  // Σ|α|² = 2ᵏ/2ᵏ = 1 again
    }
  }
  return outcome;
}

bool SliqSimulator::reset(unsigned qubit, double random) {
  const bool was = measure(qubit, random);
  if (was) applyGate(Gate{GateKind::kX, {qubit}, {}});
  return was;
}

std::vector<bool> SliqSimulator::sampleAll(Rng& rng) {
  return measurementContext().sampleAll(rng);
}

std::vector<std::vector<bool>> SliqSimulator::sampleShots(unsigned count,
                                                          Rng& rng) {
  return measurementContext().sampleShots(count, rng);
}

}  // namespace sliq
