#include "core/engine_registry.hpp"

#include <algorithm>
#include <cmath>
#include <cctype>
#include <sstream>

#include "circuit/optimizer.hpp"
#include "core/measurement_context.hpp"
#include "core/observable.hpp"
#include "core/simulator.hpp"
#include "qmdd/qmdd_sim.hpp"
#include "stabilizer/stabilizer.hpp"
#include "statevector/statevector.hpp"
#include "support/memuse.hpp"
#include "support/serialize.hpp"
#include "support/thread_pool.hpp"

namespace sliq {

namespace {

std::string toLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Unpacks a sampled basis-state word into bit q = outcome of qubit q.
std::vector<bool> bitsOf(std::uint64_t sample, unsigned numQubits) {
  std::vector<bool> bits(numQubits);
  for (unsigned q = 0; q < numQubits; ++q) bits[q] = (sample >> q) & 1;
  return bits;
}

// ---- exact: the paper's bit-sliced BDD engine ----------------------------

class ExactEngine final : public Engine {
 public:
  explicit ExactEngine(unsigned numQubits) : name_("exact"), sim_(numQubits) {
    // One registry serves the whole stack: the simulator forwards it to the
    // BDD manager (GC spans) and the MeasurementContext (memo telemetry).
    sim_.setMetrics(&metrics());
  }

  const std::string& name() const override { return name_; }
  unsigned numQubits() const override { return sim_.numQubits(); }
  EngineCapabilities capabilities() const override {
    return {/*batchedSampling=*/true, /*noiseFastPath=*/false,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true};
  }
  void applyGate(const Gate& gate) override { sim_.applyGate(gate); }
  double probabilityOne(unsigned qubit) override {
    return sim_.probabilityOne(qubit);
  }
  double totalProbability() override { return sim_.totalProbability(); }
  bool measure(unsigned qubit, double random) override {
    noteCollapsed();
    return sim_.measure(qubit, random);
  }
  bool reset(unsigned qubit, double random) override {
    // Collapse through the MeasurementContext (state-version bump included)
    // plus the exact X kernel; later probabilities renormalize implicitly
    // against the post-collapse Z[√2] weight.
    noteCollapsed();
    return sim_.reset(qubit, random);
  }
  void saveStatePayload(serialize::Writer& out) override {
    sim_.saveStatePayload(out);
  }
  void loadStatePayload(serialize::Reader& in) override {
    sim_.loadStatePayload(in);
  }
  bool extractDense(std::vector<std::complex<double>>* out,
                    std::uint64_t budgetBytes) override {
    // Physical amplitudes (normalization correction applied); the typed
    // MemoryBudgetError propagates when 2^n is over budget.
    *out = sim_.statevector(budgetBytes);
    return true;
  }
  std::vector<bool> sampleShot(Rng& rng) override {
    requireUncollapsed();
    return sim_.sampleAll(rng);
  }
  std::vector<std::vector<bool>> sampleShots(unsigned count,
                                             Rng& rng) override {
    requireUncollapsed();
    // The persistent MeasurementContext makes the batch one exact weight
    // traversal plus count cheap descents.
    return sim_.sampleShots(count, rng);
  }
  double expectationImpl(const PauliObservable& observable) override {
    double sum = 0;
    for (const PauliString& term : observable.terms()) {
      sum += term.coefficient * stringExpectation(term);
    }
    return sum;
  }
  bool numericalError() override {
    // Exact arithmetic: only the single final rounding of totalProbability
    // can move it off 1, never beyond this tolerance. Can't fire by
    // construction — kept as the invariant the benches assert.
    return std::abs(sim_.totalProbability() - 1.0) > 1e-3;
  }
  std::string runSummary() override {
    std::ostringstream os;
    os << "k = " << sim_.kScalar() << ", r = " << sim_.bitWidth()
       << ", Σ|α|² = " << sim_.totalProbability() << " (exact)";
    return os.str();
  }
  std::string statsSummary() override {
    std::ostringstream os;
    os << "gates: " << sim_.stats().gatesApplied
       << ", max r: " << sim_.stats().maxBitWidth
       << ", peak BDD nodes: " << sim_.stats().peakLiveNodes
       << ", peak RSS: " << toMiB(peakRssBytes()) << " MiB";
    return os.str();
  }
  std::vector<std::pair<std::uint64_t, std::string>> nonzeroAmplitudes(
      unsigned maxCount) override {
    std::vector<std::pair<std::uint64_t, std::string>> out;
    if (sim_.numQubits() > 32) return out;
    const std::uint64_t states = std::uint64_t{1} << sim_.numQubits();
    for (std::uint64_t i = 0; i < states && out.size() < maxCount; ++i) {
      const AlgebraicComplex amp = sim_.amplitude(i);
      if (amp.isZero()) continue;
      out.emplace_back(i, amp.toString());
    }
    return out;
  }
  void auditInvariants() override { sim_.auditInvariants(); }

 protected:
  void fillRunReport() override {
    const bdd::ManagerStats& s = sim_.bddManager().stats();
    metrics::Registry& m = metrics();
    m.counterSet("gates.applied", sim_.stats().gatesApplied);
    m.counterSet("gc.runs", s.gcRuns);
    m.counterSet("gc.reclaimed_nodes", s.gcReclaimed);
    m.counterSet("cache.lookups", s.cacheLookups);
    m.counterSet("cache.hits", s.cacheHits);
    m.counterSet("cache.misses", s.cacheLookups - s.cacheHits);
    m.counterSet("bdd.created_nodes", s.createdNodes);
    m.counterSet("bdd.reorderings", s.reorderings);
    m.gaugeMax("nodes.peak_live", static_cast<double>(s.peakLiveNodes));
    m.gaugeSet("nodes.live",
               static_cast<double>(sim_.bddManager().liveNodeCount()));
    m.gaugeSet("bitwidth.max", sim_.stats().maxBitWidth);
    m.gaugeSet("state.bytes",
               static_cast<double>(sim_.bddManager().memoryBytes()));
  }

 private:
  /// ⟨P⟩ of one string, exactly. Z factors need no state change at all —
  /// one signed weight traversal of the monolithic hyper-function
  /// (MeasurementContext::expectationZ). X/Y factors are first rotated into
  /// the Z basis with the simulator's own exact Clifford kernels (H for X,
  /// S†·H for Y) and rotated back afterwards: phase arithmetic in the
  /// algebraic representation is exact, so the round trip restores every
  /// amplitude bit for bit (the representation picks up a benign
  /// 2/√2² rescaling per H pair).
  double stringExpectation(const PauliString& term) {
    if (term.isIdentity()) return 1.0;
    std::vector<bool> zmask(sim_.numQubits(), false);
    std::vector<Gate> applied;
    for (const PauliFactor& f : term.factors) {
      zmask[f.qubit] = true;
      if (f.op == Pauli::kX) {
        applied.push_back(Gate{GateKind::kH, {f.qubit}, {}});
      } else if (f.op == Pauli::kY) {
        applied.push_back(Gate{GateKind::kSdg, {f.qubit}, {}});
        applied.push_back(Gate{GateKind::kH, {f.qubit}, {}});
      }
    }
    for (const Gate& g : applied) sim_.applyGate(g);
    const double value = sim_.measurementContext().expectationZ(zmask);
    for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
      sim_.applyGate(Gate{it->kind == GateKind::kSdg ? GateKind::kS
                                                     : GateKind::kH,
                          it->targets, {}});
    }
    return value;
  }

  void runStatic(const QuantumCircuit& circuit) override {
    // The exact engine applies gates verbatim (no fusion pass).
    metrics().add("gates.post_fusion", circuit.gateCount());
    const metrics::ScopedSpan span(metrics(), "gate_loop");
    sim_.run(circuit);
  }

  std::string name_;
  SliqSimulator sim_;
};

// ---- qmdd: the DDSIM stand-in baseline -----------------------------------

class QmddEngine final : public Engine {
 public:
  explicit QmddEngine(unsigned numQubits) : name_("qmdd"), sim_(numQubits) {
    sim_.setMetrics(&metrics());
  }

  const std::string& name() const override { return name_; }
  unsigned numQubits() const override { return sim_.numQubits(); }
  EngineCapabilities capabilities() const override {
    return {/*batchedSampling=*/true, /*noiseFastPath=*/false,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true};
  }
  void applyGate(const Gate& gate) override { sim_.applyGate(gate); }
  double probabilityOne(unsigned qubit) override {
    return sim_.probabilityOne(qubit);
  }
  double totalProbability() override { return sim_.totalProbability(); }
  bool measure(unsigned qubit, double random) override {
    noteCollapsed();
    return sim_.measure(qubit, random);
  }
  bool reset(unsigned qubit, double random) override {
    // Weighted-descent collapse (renormalizing the root weight) + X.
    noteCollapsed();
    return sim_.reset(qubit, random);
  }
  void saveStatePayload(serialize::Writer& out) override {
    sim_.saveStatePayload(out);
  }
  void loadStatePayload(serialize::Reader& in) override {
    sim_.loadStatePayload(in);
  }
  bool extractDense(std::vector<std::complex<double>>* out,
                    std::uint64_t budgetBytes) override {
    *out = sim_.statevector(budgetBytes);
    return true;
  }
  bool loadDense(
      const std::vector<std::complex<double>>& amplitudes) override {
    sim_.loadDense(amplitudes);
    return true;
  }
  std::vector<bool> sampleShot(Rng& rng) override {
    requireUncollapsed();
    return bitsOf(sim_.sampleAll(rng), sim_.numQubits());
  }
  std::vector<std::vector<bool>> sampleShots(unsigned count,
                                             Rng& rng) override {
    requireUncollapsed();
    // Cached downward edge-weight products: one weight pass per batch.
    std::vector<std::vector<bool>> shots;
    shots.reserve(count);
    for (const std::uint64_t sample : sim_.sampleShots(count, rng))
      shots.push_back(bitsOf(sample, sim_.numQubits()));
    return shots;
  }
  double expectationImpl(const PauliObservable& observable) override {
    double sum = 0;
    for (const PauliString& term : observable.terms()) {
      // Per-qubit code for the DD pair contraction (0=I, 1=X, 2=Y, 3=Z).
      std::vector<std::uint8_t> codes(sim_.numQubits(), 0);
      for (const PauliFactor& f : term.factors)
        codes[f.qubit] = static_cast<std::uint8_t>(f.op);
      sum += term.coefficient * sim_.expectationPauli(codes);
    }
    return sum;
  }
  bool numericalError() override {
    return !sim_.isNormalized(1e-4);  // the paper's 'error' criterion
  }
  std::string runSummary() override {
    std::ostringstream os;
    os << "Σ|α|² = " << sim_.totalProbability();
    return os.str();
  }
  std::string statsSummary() override {
    std::ostringstream os;
    os << "peak DD nodes: " << sim_.peakNodes()
       << ", DD memory: " << toMiB(sim_.memoryBytes()) << " MiB";
    return os.str();
  }
  std::vector<std::pair<std::uint64_t, std::string>> nonzeroAmplitudes(
      unsigned maxCount) override {
    std::vector<std::pair<std::uint64_t, std::string>> out;
    if (sim_.numQubits() > 26) return out;  // 2^n enumeration
    const std::uint64_t states = std::uint64_t{1} << sim_.numQubits();
    for (std::uint64_t i = 0; i < states && out.size() < maxCount; ++i) {
      const qmdd::Complex amp = sim_.amplitude(i);
      if (std::norm(amp) < 1e-24) continue;
      std::ostringstream os;
      os << amp.real() << (amp.imag() < 0 ? " - " : " + ")
         << std::abs(amp.imag()) << "i";
      out.emplace_back(i, os.str());
    }
    return out;
  }
  void auditInvariants() override { sim_.auditInvariants(); }

 protected:
  void fillRunReport() override {
    const qmdd::QmddManager::CacheStats& s = sim_.cacheStats();
    metrics::Registry& m = metrics();
    m.counterSet("gc.runs", s.gcRuns);
    m.counterSet("cache.lookups", s.lookups);
    m.counterSet("cache.hits", s.hits);
    m.counterSet("cache.misses", s.lookups - s.hits);
    m.gaugeMax("nodes.peak_live", static_cast<double>(sim_.peakNodes()));
    m.gaugeSet("nodes.live", static_cast<double>(sim_.liveNodes()));
    m.gaugeSet("complex_table.entries",
               static_cast<double>(sim_.complexTableSize()));
    m.gaugeSet("state.bytes", static_cast<double>(sim_.memoryBytes()));
  }

 private:
  void runStatic(const QuantumCircuit& circuit) override {
    // Fused execution: one matrix-DD multiply per fused block instead of
    // one per gate (optimizer.hpp).
    const FusedCircuit fused = [&] {
      const metrics::ScopedSpan span(metrics(), "fusion");
      return circuit.fused();
    }();
    metrics().add("gates.post_fusion", fused.opCount());
    metrics().add("gates.applied", fused.opCount());
    const metrics::ScopedSpan span(metrics(), "gate_loop");
    sim_.runFused(fused);
  }

  std::string name_;
  qmdd::QmddSimulator sim_;
};

// ---- chp: stabilizer tableau (Clifford only) -----------------------------

class ChpEngine final : public Engine {
 public:
  explicit ChpEngine(unsigned numQubits) : name_("chp"), sim_(numQubits) {}

  const std::string& name() const override { return name_; }
  unsigned numQubits() const override { return sim_.numQubits(); }
  EngineCapabilities capabilities() const override {
    // Pauli noise is native here: a tableau absorbs X/Y/Z errors without
    // ever leaving the stabilizer formalism (the trajectory fast path).
    return {/*batchedSampling=*/false, /*noiseFastPath=*/true,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true};
  }
  bool supports(const QuantumCircuit& c) const override {
    return StabilizerSimulator::supports(c);
  }
  void applyGate(const Gate& gate) override { sim_.applyGate(gate); }
  void saveStatePayload(serialize::Writer& out) override {
    sim_.saveStatePayload(out);
  }
  void loadStatePayload(serialize::Reader& in) override {
    sim_.loadStatePayload(in);
  }
  bool extractPreparation(QuantumCircuit* out) override {
    // Tableau disentangling (stabilizer.cpp): a {H, S, X, CNOT, CZ}
    // circuit preparing the state from |0...0⟩ — the chp → anything route.
    *out = sim_.extractPreparation();
    return true;
  }
  double probabilityOne(unsigned qubit) override {
    return sim_.probabilityOne(qubit);
  }
  double totalProbability() override {
    return 1.0;  // tableau states are exactly normalized
  }
  bool measure(unsigned qubit, double random) override {
    noteCollapsed();
    return sim_.measure(qubit, random);
  }
  bool reset(unsigned qubit, double random) override {
    // Tableau measurement + row phase flip (StabilizerSimulator::reset).
    noteCollapsed();
    return sim_.reset(qubit, random);
  }
  std::vector<bool> sampleShot(Rng& rng) override {
    requireUncollapsed();
    // Tableau snapshot reuse: measure every qubit on a scratch copy of the
    // run() tableau instead of replaying the circuit.
    return sim_.sampleAll(rng);
  }
  double expectationImpl(const PauliObservable& observable) override {
    double sum = 0;
    for (const PauliString& term : observable.terms()) {
      // Tableau commutation gives the exact ±1/0 per string directly.
      std::vector<bool> x(sim_.numQubits(), false);
      std::vector<bool> z(sim_.numQubits(), false);
      for (const PauliFactor& f : term.factors) {
        if (f.op == Pauli::kX || f.op == Pauli::kY) x[f.qubit] = true;
        if (f.op == Pauli::kZ || f.op == Pauli::kY) z[f.qubit] = true;
      }
      sum += term.coefficient * sim_.expectationPauli(x, z);
    }
    return sum;
  }
  std::string runSummary() override { return "stabilizer tableau"; }
  void auditInvariants() override { sim_.auditInvariants(); }

 protected:
  void fillRunReport() override {
    metrics::Registry& m = metrics();
    // Tableau dims: rows 0..n-1 destabilizers, n..2n-1 stabilizers, 2n
    // scratch — the representation is exactly this dense bit matrix.
    m.gaugeSet("tableau.rows", 2.0 * sim_.numQubits() + 1.0);
    m.gaugeSet("state.bytes", static_cast<double>(sim_.memoryBytes()));
  }

 private:
  void runStatic(const QuantumCircuit& circuit) override {
    // Clifford gates apply verbatim (no fusion pass for tableaus).
    metrics().add("gates.post_fusion", circuit.gateCount());
    metrics().add("gates.applied", circuit.gateCount());
    const metrics::ScopedSpan span(metrics(), "gate_loop");
    sim_.run(circuit);
  }

  std::string name_;
  StabilizerSimulator sim_;
};

// ---- statevector: dense array comparator ---------------------------------

class StatevectorEngine final : public Engine {
 public:
  // The 2^n array is allocated lazily on first use, so constructing this
  // engine is free at every width: supports() probes (CLI, trajectory
  // runner) never pay the allocation, and an infeasible width only throws
  // when actually *used*.
  explicit StatevectorEngine(unsigned numQubits)
      : name_("statevector"), n_(numQubits) {}

  const std::string& name() const override { return name_; }
  unsigned numQubits() const override { return n_; }
  EngineCapabilities capabilities() const override {
    return {/*batchedSampling=*/true, /*noiseFastPath=*/false,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true};
  }
  bool supports(const QuantumCircuit& c) const override {
    return c.numQubits() <= kMaxQubits && n_ <= kMaxQubits;
  }
  void applyGate(const Gate& gate) override { sim().applyGate(gate); }
  // sim() forces the lazy allocation: loading INTO a never-used engine is
  // the checkpoint-restore path, and saving pays the allocation anyway.
  void saveStatePayload(serialize::Writer& out) override {
    sim().saveStatePayload(out);
  }
  void loadStatePayload(serialize::Reader& in) override {
    sim().loadStatePayload(in);
  }
  bool extractDense(std::vector<std::complex<double>>* out,
                    std::uint64_t budgetBytes) override {
    // The copy is the conversion's working set — hold it to the same
    // budget contract as the DD extractions.
    requireDenseBudget(n_, budgetBytes);
    *out = sim().state();
    return true;
  }
  bool loadDense(
      const std::vector<std::complex<double>>& amplitudes) override {
    sim().setState(amplitudes);
    return true;
  }
  double probabilityOne(unsigned qubit) override {
    return sim().probabilityOne(qubit);
  }
  double totalProbability() override { return sim().totalProbability(); }
  bool measure(unsigned qubit, double random) override {
    noteCollapsed();
    return sim().measure(qubit, random);
  }
  bool reset(unsigned qubit, double random) override {
    // Projective collapse (renormalizing) + dense X.
    noteCollapsed();
    return sim().reset(qubit, random);
  }
  std::vector<bool> sampleShot(Rng& rng) override {
    requireUncollapsed();
    return bitsOf(sim().sampleAll(rng.uniform()), n_);
  }
  std::vector<std::vector<bool>> sampleShots(unsigned count,
                                             Rng& rng) override {
    requireUncollapsed();
    // One cumulative distribution + binary search per shot instead of a
    // full 2^n scan per shot.
    std::vector<std::vector<bool>> shots;
    shots.reserve(count);
    for (const std::uint64_t sample : sim().sampleShots(count, rng))
      shots.push_back(bitsOf(sample, n_));
    return shots;
  }
  double expectationImpl(const PauliObservable& observable) override {
    double sum = 0;
    for (const PauliString& term : observable.terms()) {
      std::uint64_t xmask = 0, ymask = 0, zmask = 0;
      for (const PauliFactor& f : term.factors) {
        const std::uint64_t bit = std::uint64_t{1} << f.qubit;
        if (f.op == Pauli::kX) xmask |= bit;
        if (f.op == Pauli::kY) ymask |= bit;
        if (f.op == Pauli::kZ) zmask |= bit;
      }
      sum += term.coefficient * sim().expectationPauli(xmask, ymask, zmask);
    }
    return sum;
  }
  bool numericalError() override {
    return std::abs(sim().totalProbability() - 1.0) > 1e-4;
  }
  std::string runSummary() override {
    std::ostringstream os;
    os << "Σ|α|² = " << sim().totalProbability();
    return os.str();
  }
  std::vector<std::pair<std::uint64_t, std::string>> nonzeroAmplitudes(
      unsigned maxCount) override {
    std::vector<std::pair<std::uint64_t, std::string>> out;
    if (n_ > kMaxQubits) return out;  // infeasible width, per the contract
    const std::uint64_t states = std::uint64_t{1} << n_;
    for (std::uint64_t i = 0; i < states && out.size() < maxCount; ++i) {
      const std::complex<double> amp = sim().amplitude(i);
      if (std::norm(amp) < 1e-24) continue;
      std::ostringstream os;
      os << amp.real() << (amp.imag() < 0 ? " - " : " + ")
         << std::abs(amp.imag()) << "i";
      out.emplace_back(i, os.str());
    }
    return out;
  }

  void auditInvariants() override {
    // The 2^n array is allocated lazily; before first use there is no
    // state to scan.
    if (sim_) sim_->auditInvariants();
  }

 protected:
  void setExecutionThreadsImpl(unsigned resolvedThreads) override {
    threads_ = resolvedThreads;
    if (sim_) sim_->setThreads(resolvedThreads);
  }

  void fillRunReport() override {
    metrics::Registry& m = metrics();
    // Report the dense array's footprint without forcing the lazy
    // allocation: an unused engine holds no state.
    const double bytes =
        sim_ ? static_cast<double>(sim_->state().size()) *
                   sizeof(StatevectorSimulator::Amplitude)
             : 0.0;
    m.gaugeSet("state.bytes", bytes);
  }

 private:
  void runStatic(const QuantumCircuit& circuit) override {
    // Fused execution: one amplitude-array traversal per fused block
    // instead of one per gate (optimizer.hpp).
    const FusedCircuit fused = [&] {
      const metrics::ScopedSpan span(metrics(), "fusion");
      return circuit.fused();
    }();
    metrics().add("gates.post_fusion", fused.opCount());
    metrics().add("gates.applied", fused.opCount());
    const metrics::ScopedSpan span(metrics(), "gate_loop");
    sim().runFused(fused);
  }

  // 2^26 amplitudes = 1 GiB of complex<double>; beyond that the dense
  // representation is infeasible, not merely slow.
  static constexpr unsigned kMaxQubits = 26;

  StatevectorSimulator& sim() {
    if (!sim_) {
      if (n_ > kMaxQubits) {
        throw std::runtime_error(
            "statevector engine supports at most " +
            std::to_string(kMaxQubits) + " qubits (got " +
            std::to_string(n_) + ")");
      }
      sim_ = std::make_unique<StatevectorSimulator>(n_);
      sim_->setThreads(threads_);
    }
    return *sim_;
  }

  std::string name_;
  unsigned n_;
  unsigned threads_ = 1;
  std::unique_ptr<StatevectorSimulator> sim_;
};

}  // namespace

// ---- facade: static vs dynamic execution ---------------------------------

void Engine::run(const QuantumCircuit& circuit) {
  if (circuit.isDynamic()) {
    throw std::logic_error(
        "run() cannot execute a dynamic circuit (mid-circuit "
        "measure/reset/classical control): use runDynamic(circuit, rng)");
  }
  metrics_.add("gates.pre_fusion", circuit.gateCount());
  {
    const metrics::ScopedSpan span(metrics_, "engine.run");
    runStatic(circuit);
  }
  metrics_.gaugeMax("rss.high_water_bytes",
                    static_cast<double>(peakRssBytes()));
  maybeAudit();  // SLIQ_AUDIT builds validate the representation post-run
}

// ---- facade: state serialization (DESIGN.md §12) -------------------------

void Engine::saveStatePayload(serialize::Writer& out) {
  (void)out;
  throw std::logic_error("engine '" + name() +
                         "' does not support state serialization "
                         "(capabilities().serialization is false)");
}

void Engine::loadStatePayload(serialize::Reader& in) {
  (void)in;
  throw std::logic_error("engine '" + name() +
                         "' does not support state serialization "
                         "(capabilities().serialization is false)");
}

void Engine::saveState(std::ostream& out) {
  const metrics::ScopedSpan span(metrics_, "state.save");
  serialize::Writer payload;
  saveStatePayload(payload);
  serialize::writeSnapshot(out, name(), numQubits(), payload.data());
}

void Engine::loadState(std::istream& in) {
  const metrics::ScopedSpan span(metrics_, "state.load");
  // Envelope + checksum validation happens entirely before the payload is
  // interpreted; representation/width mismatches are rejected here so the
  // payload hooks only ever see a snapshot of their own engine.
  serialize::Snapshot snap = serialize::readSnapshot(in);
  if (snap.info.representation != name()) {
    throw serialize::SerializationError(
        "snapshot holds a '" + snap.info.representation +
        "' state but this engine is '" + name() +
        "' (field 'representation')");
  }
  if (snap.info.numQubits != numQubits()) {
    throw serialize::SerializationError(
        "snapshot is " + std::to_string(snap.info.numQubits) +
        " qubit(s) wide but this engine is " + std::to_string(numQubits()) +
        " (field 'numQubits')");
  }
  serialize::Reader payload(snap.payload, snap.info.payloadOffset);
  loadStatePayload(payload);
  payload.requireExhausted(name().c_str());
  // The loaded state is a NEW reference state: re-arm the sampling /
  // expectation collapse restriction (MeasurementContext memos and batch
  // samplers re-key off the representation's own state version).
  collapsed_ = false;
  maybeAudit();  // SLIQ_AUDIT: validate every successfully loaded state
}

void Engine::setExecutionThreads(unsigned threads) {
  // Resolve the 0 auto sentinel HERE so every downstream consumer — the
  // engines, the run report's threads.resolved gauge, the bench
  // thread-scaling rows — sees the actual worker count, never the request.
  resolvedThreads_ =
      threads == 0 ? ThreadPool::hardwareConcurrency() : threads;
  setExecutionThreadsImpl(resolvedThreads_);
}

metrics::RunReport Engine::runMetrics() {
  metrics_.gaugeSet("threads.resolved",
                    static_cast<double>(resolvedThreads_));
  metrics_.gaugeMax("rss.high_water_bytes",
                    static_cast<double>(peakRssBytes()));
  fillRunReport();
  metrics::RunReport report;
  report.engine = name();
  report.qubits = numQubits();
  report.metrics = metrics_.snapshot();
  // Pin the cross-engine schema (tests/core/test_run_report.cpp): every
  // report carries the shared keys, zero-valued when an engine has no
  // native source for them — so consumers never branch on key presence.
  metrics::pinCommonSchemaKeys(report.metrics);
  return report;
}

DynamicRun Engine::runDynamic(const QuantumCircuit& circuit, Rng& rng,
                              const DynamicInstrument* instrument) {
  if (circuit.numQubits() != numQubits()) {
    throw std::invalid_argument("runDynamic: circuit width " +
                                std::to_string(circuit.numQubits()) +
                                " != engine width " +
                                std::to_string(numQubits()));
  }
  DynamicRun result;
  metrics_.add("gates.pre_fusion", circuit.gateCount());
  // Dynamic circuits never fuse (collapse points and classical conditions
  // need per-op execution), so the post-fusion count equals the op count.
  metrics_.add("gates.post_fusion", circuit.gateCount());
  const metrics::ScopedSpan span(metrics_, "engine.run_dynamic");
  std::uint64_t applied = 0;
  std::uint64_t creg = 0;
  for (std::size_t i = 0; i < circuit.gateCount(); ++i) {
    const Gate& op = circuit.gate(i);
    // The classical condition gates EXECUTION: a skipped op applies no
    // gate, consumes no deviate, and fires no instrument hook.
    if (op.conditioned && creg != op.conditionValue) continue;
    switch (op.kind) {
      case GateKind::kMeasure: {
        bool bit = measure(op.target(), rng.uniform());
        ++result.measures;
        if (instrument != nullptr && instrument->recordMeasure) {
          bit = instrument->recordMeasure(bit);
        }
        result.outcomes.push_back(bit);
        const std::uint64_t mask = std::uint64_t{1} << op.cbit;
        creg = bit ? (creg | mask) : (creg & ~mask);
        maybeAudit();  // SLIQ_AUDIT: validate after every collapse
        break;
      }
      case GateKind::kReset:
        reset(op.target(), rng.uniform());
        ++result.resets;
        maybeAudit();  // SLIQ_AUDIT: validate after every collapse
        break;
      default:
        applyGate(op);
        ++applied;
        break;
    }
    if (instrument != nullptr && instrument->afterOp) {
      instrument->afterOp(*this, i);
    }
  }
  metrics_.add("gates.applied", applied);
  metrics_.add("dynamic.measures", result.measures);
  metrics_.add("dynamic.resets", result.resets);
  metrics_.gaugeMax("rss.high_water_bytes",
                    static_cast<double>(peakRssBytes()));
  result.creg.assign(circuit.numClbits(), false);
  for (unsigned c = 0; c < circuit.numClbits(); ++c)
    result.creg[c] = (creg >> c) & 1;
  // The post-execution state is the new reference state: re-arm (rather
  // than leave tripped) the ad-hoc-measure() collapse restriction so
  // sampleShot/expectation answer questions about it.
  collapsed_ = false;
  maybeAudit();  // SLIQ_AUDIT: validate the post-execution reference state
  return result;
}

// ---- registry ------------------------------------------------------------

EngineRegistry& EngineRegistry::instance() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry;
    r->add("exact", "bit-sliced BDD engine (the paper's contribution)",
           [](unsigned n) { return std::make_unique<ExactEngine>(n); },
           {/*batchedSampling=*/true, /*noiseFastPath=*/false,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true});
    r->add("qmdd", "QMDD baseline, our DDSIM reimplementation",
           [](unsigned n) { return std::make_unique<QmddEngine>(n); },
           {/*batchedSampling=*/true, /*noiseFastPath=*/false,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true});
    r->add("chp", "CHP stabilizer tableau (Clifford circuits only)",
           [](unsigned n) { return std::make_unique<ChpEngine>(n); },
           {/*batchedSampling=*/false, /*noiseFastPath=*/true,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true});
    r->add("statevector", "dense 2^n array simulator (ground truth, n <= 26)",
           [](unsigned n) { return std::make_unique<StatevectorEngine>(n); },
           {/*batchedSampling=*/true, /*noiseFastPath=*/false,
            /*nativeExpectation=*/true, /*dynamicCircuits=*/true,
            /*invariantAudit=*/true, /*serialization=*/true});
    return r;
  }();
  return *registry;
}

void EngineRegistry::add(const std::string& name,
                         const std::string& description, Factory factory,
                         EngineCapabilities capabilities) {
  const std::string key = toLower(name);
  for (Entry& e : entries_) {
    if (e.name == key) {
      e.description = description;
      e.factory = std::move(factory);
      e.capabilities = capabilities;
      return;
    }
  }
  entries_.push_back(Entry{key, description, std::move(factory), capabilities});
}

const EngineRegistry::Entry* EngineRegistry::find(
    const std::string& name) const {
  const std::string key = toLower(name);
  for (const Entry& e : entries_) {
    if (e.name == key) return &e;
  }
  return nullptr;
}

bool EngineRegistry::contains(const std::string& name) const {
  return find(name) != nullptr;
}

std::vector<std::string> EngineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  std::sort(out.begin(), out.end());
  return out;
}

std::string EngineRegistry::namesJoined() const {
  std::string out;
  for (const std::string& n : names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

namespace {

// Plain two-row Levenshtein distance; the operand strings are engine names,
// so quadratic cost is irrelevant.
std::size_t editDistance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

std::string EngineRegistry::closestName(const std::string& name) const {
  const std::string key = toLower(name);
  std::string best;
  std::size_t bestDistance = 3;  // suggest only within distance 2
  for (const std::string& candidate : names()) {
    const std::size_t d = editDistance(key, candidate);
    if (d < bestDistance) {
      bestDistance = d;
      best = candidate;
    }
  }
  return best;
}

void EngineRegistry::throwUnknown(const std::string& name) const {
  std::string message =
      "unknown engine '" + name + "' (registered: " + namesJoined() + ")";
  const std::string suggestion = closestName(name);
  if (!suggestion.empty()) {
    message += " — did you mean '" + suggestion + "'?";
  }
  throw UnknownEngineError(message);
}

std::string EngineRegistry::describe(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) throwUnknown(name);
  return e->description;
}

EngineCapabilities EngineRegistry::capabilities(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) throwUnknown(name);
  return e->capabilities;
}

std::unique_ptr<Engine> EngineRegistry::create(const std::string& name,
                                               unsigned numQubits) const {
  const Entry* e = find(name);
  if (e == nullptr) throwUnknown(name);
  return e->factory(numQubits);
}

std::unique_ptr<Engine> makeEngine(const std::string& name,
                                   unsigned numQubits) {
  return EngineRegistry::instance().create(name, numQubits);
}

std::vector<std::string> engineNames() {
  return EngineRegistry::instance().names();
}

}  // namespace sliq
