// Persistent measurement context (see measurement_context.hpp).
//
// The traversal itself is the paper's §III-E scheme: a boundary node (below
// the qubit variables) decodes its four integers by point evaluation and
// contributes |α|²·2ᵏ = (a²+b²+c²+d²) + √2(dc − da + ab + bc); interior
// weights accumulate in the exact ring Z[√2] with level-difference shifts
// for skipped variables. What is new relative to the former per-call
// WeightCalc is only the lifetime: the memos survive between queries.
#include "core/measurement_context.hpp"

#include <algorithm>
#include <cmath>

#include "algebra/algebraic.hpp"
#include "core/simulator.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace sliq {

using bdd::Bdd;
using bdd::Edge;

namespace {

Zroot2 shiftLeft(const Zroot2& w, unsigned bits) {
  if (bits == 0 || w.isZero()) return w;
  return Zroot2(w.rational() << bits, w.irrational() << bits);
}

}  // namespace

MeasurementContext::MeasurementContext(SliqSimulator& sim) : sim_(&sim) {}

bool MeasurementContext::current() const {
  return builtVersion_ == sim_->stateVersion_ &&
         builtReorderings_ == sim_->mgr_.stats().reorderings;
}

void MeasurementContext::dropCaches() {
  // Trace only invalidations of a memo that was actually built: dropCaches
  // runs after every gate, but an empty drop is not an event worth a trace
  // row (and would swamp the trace on gate-heavy circuits).
  if (builtVersion_ != ~std::uint64_t{0}) {
    if (metrics::Registry* reg = sim_->metricsRegistry()) {
      reg->gaugeMax("memo.peak_entries",
                    static_cast<double>(weightMemo_.size() + ampMemo_.size() +
                                        branchProbMemo_.size()));
      reg->instant("memo.invalidate");
    }
  }
  mono_ = Bdd();
  restrictedOne_.clear();
  weightMemo_.clear();
  ampMemo_.clear();
  branchProbMemo_.clear();
  totalValid_ = false;
  builtVersion_ = ~std::uint64_t{0};
}

void MeasurementContext::refreshIfStale() {
  if (current()) return;
  const metrics::ScopedSpan span(sim_->metricsRegistry(), "memo.fill");
  // monolithic() rebuilds the hyper-function BDD if needed (and rejects
  // symbolic mode); holding it as a handle pins every node the memos will
  // reference across garbage collections.
  mono_ = sim_->monolithic();
  restrictedOne_.assign(sim_->n_, Bdd());
  weightMemo_.clear();
  ampMemo_.clear();
  branchProbMemo_.clear();
  assignment_.assign(sim_->mgr_.varCount(), false);
  totalValid_ = false;
  builtVersion_ = sim_->stateVersion_;
  builtReorderings_ = sim_->mgr_.stats().reorderings;
}

// lint: memo-traversal — reads the DD through evalPoint only; creating
// nodes here could trigger a GC that moves the very edges being memoized.
Zroot2 MeasurementContext::ampSq(Edge e) {
  const auto it = ampMemo_.find(e.raw);
  if (it != ampMemo_.end()) return it->second;
  const auto& mgr = sim_->mgr_;
  const std::vector<unsigned>& encVars = sim_->encVars_;
  const unsigned r = sim_->r_;
  BigInt coef[4];
  for (unsigned vecIdx = 0; vecIdx < 4; ++vecIdx) {
    assignment_[encVars[0]] = (vecIdx & 2) != 0;  // x0: selects {c,d}
    assignment_[encVars[1]] = (vecIdx & 1) != 0;  // x1: selects {b,d}
    std::vector<bool> bits(r);
    for (unsigned i = 0; i < r; ++i) {
      for (unsigned j = 2; j < encVars.size(); ++j)
        assignment_[encVars[j]] = ((i >> (j - 2)) & 1) != 0;
      bits[i] = mgr.evalPoint(e, assignment_);
    }
    coef[vecIdx] = BigInt::fromTwosComplementBits(bits);
  }
  const AlgebraicComplex alpha(coef[0], coef[1], coef[2], coef[3], 0);
  Zroot2 w = alpha.normSqScaled();
  ampMemo_.emplace(e.raw, w);
  return w;
}

// lint: memo-traversal
Zroot2 MeasurementContext::weightBelow(Edge e) {
  const auto& mgr = sim_->mgr_;
  const unsigned n = sim_->n_;
  if (mgr.edgeLevel(e) >= n) return ampSq(e);
  const auto it = weightMemo_.find(e.raw);
  if (it != weightMemo_.end()) return it->second;
  const unsigned level = mgr.edgeLevel(e);
  Zroot2 sum;
  for (const Edge child : {mgr.thenEdge(e), mgr.elseEdge(e)}) {
    const unsigned childLevel = std::min(mgr.edgeLevel(child), n);
    sum += shiftLeft(weightBelow(child), childLevel - level - 1);
  }
  weightMemo_.emplace(e.raw, sum);
  return sum;
}

// lint: memo-traversal
Zroot2 MeasurementContext::signedWeightBelow(
    Edge e, const std::vector<bool>& zmask,
    std::unordered_map<std::uint32_t, Zroot2>& memo) {
  const auto& mgr = sim_->mgr_;
  const unsigned n = sim_->n_;
  if (mgr.edgeLevel(e) >= n) return ampSq(e);
  const auto it = memo.find(e.raw);
  if (it != memo.end()) return it->second;
  const unsigned level = mgr.edgeLevel(e);
  // A level skipped by a child edge means the amplitude is independent of
  // that qubit: an unmasked qubit doubles the weight, a masked one cancels
  // the +/− pair exactly.
  auto childTerm = [&](Edge child) -> Zroot2 {
    const unsigned childLevel = std::min(mgr.edgeLevel(child), n);
    unsigned doublings = 0;
    for (unsigned skipped = level + 1; skipped < childLevel; ++skipped) {
      if (zmask[mgr.varAtLevel(skipped)]) return Zroot2();
      ++doublings;
    }
    return shiftLeft(signedWeightBelow(child, zmask, memo), doublings);
  };
  const Zroot2 thenWeight = childTerm(mgr.thenEdge(e));
  const Zroot2 elseWeight = childTerm(mgr.elseEdge(e));
  // Z on this qubit: the qubit=1 half enters with a − sign.
  const Zroot2 sum = zmask[mgr.varAtLevel(level)] ? elseWeight - thenWeight
                                                  : elseWeight + thenWeight;
  memo.emplace(e.raw, sum);
  return sum;
}

double MeasurementContext::expectationZ(const std::vector<bool>& zmask) {
  SLIQ_REQUIRE(zmask.size() == sim_->n_, "zmask width mismatch");
  refreshIfStale();
  bool any = false;
  for (const bool bit : zmask) any = any || bit;
  if (!any) return 1.0;  // ⟨I⟩, exactly
  const Edge root = mono_.edge();
  const unsigned rootLevel = std::min(sim_->mgr_.edgeLevel(root), sim_->n_);
  // Masked qubits skipped above the root cancel the whole signed sum.
  for (unsigned level = 0; level < rootLevel; ++level) {
    if (zmask[sim_->mgr_.varAtLevel(level)]) return 0.0;
  }
  std::unordered_map<std::uint32_t, Zroot2> memo;
  const Zroot2 signedSum =
      shiftLeft(signedWeightBelow(root, zmask, memo), rootLevel);
  if (signedSum.isZero()) return 0.0;
  return ratio(signedSum, totalWeightScaled());
}

Zroot2 MeasurementContext::rootWeight(const Bdd& f) {
  const Edge root = f.edge();
  const unsigned level = std::min(sim_->mgr_.edgeLevel(root), sim_->n_);
  return shiftLeft(weightBelow(root), level);
}

const Zroot2& MeasurementContext::totalWeightScaled() {
  refreshIfStale();
  if (!totalValid_) {
    total_ = rootWeight(mono_);
    totalValid_ = true;
  }
  return total_;
}

double MeasurementContext::totalProbability() {
  SLIQ_CHECK(sim_->k_ >= 0, "negative k");
  return ratio(totalWeightScaled(),
               Zroot2(BigInt::pow2(static_cast<unsigned>(sim_->k_)),
                      BigInt(0)));
}

double MeasurementContext::probabilityOne(unsigned qubit) {
  SLIQ_REQUIRE(qubit < sim_->n_, "qubit out of range");
  refreshIfStale();
  Bdd& f1 = restrictedOne_[qubit];
  if (!f1.valid()) {
    f1 = mono_ & sim_->qvar(qubit);  // zero out amplitudes with qubit = 0
    // The conjunction is a GC point and, with auto-reorder enabled, may
    // even re-level the order; memoized weights depend on levels, so a
    // reorder mid-build empties the memos (handles keep the roots alive).
    if (builtReorderings_ != sim_->mgr_.stats().reorderings) {
      if (metrics::Registry* reg = sim_->metricsRegistry())
        reg->instant("memo.invalidate");
      weightMemo_.clear();
      ampMemo_.clear();
      branchProbMemo_.clear();
      totalValid_ = false;
      builtReorderings_ = sim_->mgr_.stats().reorderings;
    }
  }
  const Zroot2 one = rootWeight(f1);
  if (one.isZero()) return 0.0;
  return ratio(one, totalWeightScaled());
}

Zroot2 MeasurementContext::computeTotalFresh() {
  // Independent context with empty memos — a from-scratch recomputation.
  MeasurementContext fresh(*sim_);
  return fresh.totalWeightScaled();
}

double MeasurementContext::normalizationCorrection() {
  const Zroot2& weight = totalWeightScaled();
  SLIQ_CHECK(!weight.isZero(), "state has zero weight");
  SLIQ_CHECK(sim_->k_ >= 0, "negative k");
#ifndef NDEBUG
  // Callers that used to recompute the total from scratch now read the
  // cache; in debug builds verify the cache against a fresh traversal.
  // The traversal is hoisted out of the assertion: SLIQ_ASSERT compiles
  // to nothing under NDEBUG, so its argument must stay side-effect-free.
  const Zroot2 freshTotal = computeTotalFresh();
  SLIQ_ASSERT(weight == freshTotal);
#endif
  const Zroot2 pow2k(BigInt::pow2(static_cast<unsigned>(sim_->k_)),
                     BigInt(0));
  return std::sqrt(ratio(pow2k, weight));
}

std::vector<bool> MeasurementContext::sampleAll(Rng& rng) {
  refreshIfStale();
  const auto& mgr = sim_->mgr_;
  const unsigned n = sim_->n_;
  std::vector<bool> outcome(n);
  Edge e = mono_.edge();
  unsigned level = 0;
  while (level < n) {
    const unsigned nodeLevel = std::min(mgr.edgeLevel(e), n);
    // Qubits skipped by the edge have amplitude-independent outcomes:
    // both values are equally likely.
    while (level < nodeLevel) {
      outcome[mgr.varAtLevel(level)] = rng.flip();
      ++level;
    }
    if (level >= n) break;
    const Edge hi = mgr.thenEdge(e);
    const Edge lo = mgr.elseEdge(e);
    double p1;
    const auto cached = branchProbMemo_.find(e.raw);
    if (cached != branchProbMemo_.end()) {
      p1 = cached->second;
    } else {
      const Zroot2 w1 = shiftLeft(weightBelow(hi),
                                  std::min(mgr.edgeLevel(hi), n) - level - 1);
      const Zroot2 w0 = shiftLeft(weightBelow(lo),
                                  std::min(mgr.edgeLevel(lo), n) - level - 1);
      const Zroot2 sum = w0 + w1;
      SLIQ_CHECK(!sum.isZero(), "zero-weight state cannot be sampled");
      p1 = w1.isZero() ? 0.0 : ratio(w1, sum);
      branchProbMemo_.emplace(e.raw, p1);
    }
    const bool bit = rng.uniform() < p1;
    outcome[mgr.varAtLevel(level)] = bit;
    e = bit ? hi : lo;
    ++level;
  }
  return outcome;
}

std::vector<std::vector<bool>> MeasurementContext::sampleShots(unsigned count,
                                                               Rng& rng) {
  std::vector<std::vector<bool>> shots;
  shots.reserve(count);
  // Warm the caches once so every shot is a pure descent.
  if (count > 0) (void)totalWeightScaled();
  for (unsigned s = 0; s < count; ++s) shots.push_back(sampleAll(rng));
  return shots;
}

}  // namespace sliq
