// Cross-representation state conversion (DESIGN.md §13).
//
// Engine::exportTo(dst) — declared on the facade in engine_registry.hpp,
// implemented in state_convert.cpp — moves a prepared state between the
// four representations:
//
//   source \ target |  exact  |  qmdd   |   chp   | statevector
//   ----------------+---------+---------+---------+------------
//   exact           | snapshot|  dense  |    —    |   dense
//   qmdd            |    —    | snapshot|    —    |   dense
//   chp             |  prep   |  prep   | snapshot|   prep
//   statevector     |    —    |  dense  |    —    |  snapshot
//
//   snapshot — same-representation sliq.state.v1 round-trip (bit-identical)
//   prep     — tableau disentangling extraction: a Clifford circuit over
//              {H, S, X, CNOT, CZ} preparing the state from |0...0⟩,
//              replayed on the target (exact up to global phase). The one
//              route that composes with the target's existing state rather
//              than replacing it — the target must still be in |0...0⟩
//   dense    — budgeted 2^n amplitude extraction, re-encoded natively
//              (qmdd rebuilds bottom-up through makeVNode; statevector
//              swaps the array in)
//   —        — no route: ConversionError (a generic state is not a
//              stabilizer state; doubles have no exact Z[√2] decomposition)
//
// The conversion is what makes mid-circuit engine handoff possible: run a
// Clifford prefix on chp, exportTo the scored-best engine, finish there —
// pinned bit-identical (<= 1e-10 on probabilities and expectations) against
// monolithic runs by the differential harness.
#pragma once

#include <stdexcept>
#include <string>

namespace sliq {

/// No conversion route exists between the two representations (or the
/// target was not of the same width). Typed so the dispatcher/handoff
/// layer can catch it and fall back to a monolithic run.
class ConversionError : public std::runtime_error {
 public:
  explicit ConversionError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace sliq
