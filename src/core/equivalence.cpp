#include "core/equivalence.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/simulator.hpp"
#include "support/assert.hpp"

namespace sliq {

/// Friend of SliqSimulator: reaches the slice vectors for comparison and
/// drives the scalar alignment kernels.
class EquivalenceChecker {
 public:
  static Equivalence run(const QuantumCircuit& first,
                         const QuantumCircuit& second,
                         const EquivalenceOptions& options) {
    SLIQ_REQUIRE(first.numQubits() == second.numQubits(),
                 "equivalence check requires equal qubit counts");
    SliqSimulator::Config config;
    config.initialBitWidth = options.initialBitWidth;

    // Simulate both circuits in ONE manager so BDD canonicity makes the
    // final comparison a pointer comparison. A shared manager requires a
    // shared variable universe: run the second circuit in the same
    // simulator... two states cannot share one SliqSimulator, so use two
    // managers and compare structurally instead (slice-wise isomorphism via
    // evaluation-free traversal is costly); the pragmatic exact approach:
    // simulate the *miter* circuit first⁻¹ ∘ second... that needs inverses
    // for Rx/Ry with phase caveats. Cleanest fully-exact route: simulate
    // both in two simulators and compare states through a third, shared
    // manager — or simply compare via re-simulation of `second` inside
    // `first`'s manager. We take the last option: one symbolic simulator
    // per circuit, both built over the identical variable layout, then
    // slice BDDs are compared by structural hashing across managers.
    SLIQ_REQUIRE(!first.isDynamic() && !second.isDynamic(),
                 "equivalence checking is defined for unitary circuits only "
                 "(dynamic circuits measure mid-run)");
    SliqSimulator a(first.numQubits(), SliqSimulator::SymbolicInit{}, config);
    SliqSimulator b(second.numQubits(), SliqSimulator::SymbolicInit{},
                    config);
    a.run(first);
    b.run(second);

    // Align the √2 scalars (k only ever grows, so pad the smaller one).
    while (a.kScalar() < b.kScalar()) a.multiplyStateBySqrt2();
    while (b.kScalar() < a.kScalar()) b.multiplyStateBySqrt2();

    if (statesEqual(a, b)) return Equivalence::kEqual;
    if (options.allowGlobalPhase) {
      for (int p = 1; p < 8; ++p) {
        b.multiplyStateByOmega();
        // ω multiplication preserves k; widths may differ — statesEqual
        // compares values, not widths.
        if (statesEqual(a, b)) return Equivalence::kEqualUpToPhase;
      }
    }
    return Equivalence::kNotEquivalent;
  }

 private:
  /// Structural equality of two bit-sliced states living in *different*
  /// managers: recursively compare the slice BDDs pairwise with a memo on
  /// (nodeA, nodeB) edges. Widths are normalized by sign extension.
  static bool statesEqual(const SliqSimulator& a, const SliqSimulator& b) {
    const unsigned width = std::max(a.r_, b.r_);
    for (int v = 0; v < 4; ++v) {
      for (unsigned i = 0; i < width; ++i) {
        const bdd::Edge ea =
            a.vec_[v][std::min<unsigned>(i, a.r_ - 1)].edge();
        const bdd::Edge eb =
            b.vec_[v][std::min<unsigned>(i, b.r_ - 1)].edge();
        std::unordered_map<std::uint64_t, bool> memo;
        if (!edgesEqual(a.mgr_, ea, b.mgr_, eb, memo)) return false;
      }
    }
    return true;
  }

  static bool edgesEqual(const bdd::BddManager& ma, bdd::Edge ea,
                         const bdd::BddManager& mb, bdd::Edge eb,
                         std::unordered_map<std::uint64_t, bool>& memo) {
    if (bdd::isConstant(ea) || bdd::isConstant(eb)) return ea == eb;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ea.raw) << 32) | eb.raw;
    const auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    bool equal = ma.edgeVar(ea) == mb.edgeVar(eb);
    // Both managers use the identity order (no reordering in symbolic
    // mode), so matching vars mean matching levels.
    equal = equal && edgesEqual(ma, ma.thenEdge(ea), mb, mb.thenEdge(eb), memo);
    equal = equal && edgesEqual(ma, ma.elseEdge(ea), mb, mb.elseEdge(eb), memo);
    memo.emplace(key, equal);
    return equal;
  }
};

std::string toString(Equivalence e) {
  switch (e) {
    case Equivalence::kEqual: return "equivalent";
    case Equivalence::kEqualUpToPhase: return "equivalent up to global phase";
    case Equivalence::kNotEquivalent: return "not equivalent";
  }
  return "?";
}

Equivalence checkEquivalence(const QuantumCircuit& first,
                             const QuantumCircuit& second,
                             const EquivalenceOptions& options) {
  return EquivalenceChecker::run(first, second, options);
}

}  // namespace sliq
