#include "core/dispatch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "core/engine_registry.hpp"
#include "support/assert.hpp"

namespace sliq {
namespace {

// Relative per-gate node-touch cost of the two decision-diagram engines.
// The bit-sliced Z[√2] representation packs a node tighter than the
// complex-table QMDD node, so on equal structure exact wins the tie.
constexpr double kExactNodeCost = 64.0;
constexpr double kQmddNodeCost = 80.0;

// Tie-break preference among equal-cost feasible engines: leaner
// representation first.
int preferenceRank(const std::string& name) {
  if (name == "chp") return 0;
  if (name == "exact") return 1;
  if (name == "statevector") return 2;
  if (name == "qmdd") return 3;
  return 4;
}

std::string shortDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

// Effective decision-diagram width: pure Clifford circuits keep diagrams
// near-linear, while each T gate and each layer of two-qubit depth can
// roughly double the reachable amplitude set until the full 2^n width is
// hit. A heuristic, not a bound — it only has to rank engines.
unsigned effectiveDiagramWidth(const CircuitFeatures& f) {
  const std::size_t w = 2 + f.tCount + f.twoQubitDepth / 2;
  return static_cast<unsigned>(std::min<std::size_t>(w, f.numQubits));
}

EngineScore scoreEngine(const std::string& name, const CircuitFeatures& f,
                        std::uint64_t denseBudgetBytes) {
  EngineScore s;
  s.name = name;
  const EngineCapabilities caps =
      EngineRegistry::instance().capabilities(name);
  if (f.dynamic && !caps.dynamicCircuits) {
    s.rationale = "infeasible: circuit is dynamic and the engine does not "
                  "implement the runDynamic primitives";
    return s;
  }
  const double gates = static_cast<double>(std::max<std::size_t>(f.gateCount, 1));

  if (name == "chp") {
    if (f.nonCliffordGates > 0) {
      s.rationale = "infeasible: " + std::to_string(f.nonCliffordGates) +
                    " non-Clifford gate(s) (" + std::to_string(f.tCount) +
                    " T/T\xE2\x80\xA0) outside the tableau gate set";
      return s;
    }
    s.feasible = true;
    s.cost = gates * static_cast<double>(std::max(f.numQubits, 1u));
    s.rationale = "cost " + shortDouble(s.cost) +
                  " = gates x qubits (Clifford-only tableau)";
    return s;
  }
  if (name == "statevector") {
    const std::uint64_t required = denseStateBytes(f.numQubits);
    if (required > denseBudgetBytes) {
      s.rationale = "infeasible: dense state needs " +
                    std::to_string(required) + " bytes (2^" +
                    std::to_string(f.numQubits) + " amplitudes), over the " +
                    std::to_string(denseBudgetBytes) + "-byte budget";
      return s;
    }
    s.feasible = true;
    s.cost = gates * std::ldexp(1.0, static_cast<int>(f.numQubits));
    s.rationale = "cost " + shortDouble(s.cost) +
                  " = gates x 2^qubits (dense array)";
    return s;
  }
  if (name == "exact" || name == "qmdd") {
    const unsigned width = effectiveDiagramWidth(f);
    const double nodeCost = name == "exact" ? kExactNodeCost : kQmddNodeCost;
    s.feasible = true;
    s.cost = gates * nodeCost * std::ldexp(1.0, static_cast<int>(width));
    s.rationale = "cost " + shortDouble(s.cost) + " = gates x " +
                  shortDouble(nodeCost) + " x 2^" + std::to_string(width) +
                  " (effective diagram width)";
    return s;
  }
  s.rationale = "infeasible: no cost model for this engine";
  return s;
}

}  // namespace

EnginePlan planEngine(const QuantumCircuit& circuit,
                      std::uint64_t denseBudgetBytes) {
  EnginePlan plan;
  plan.features = analyzeCircuit(circuit);
  for (const std::string& name : EngineRegistry::instance().names()) {
    plan.scores.push_back(scoreEngine(name, plan.features, denseBudgetBytes));
  }
  const EngineScore* best = nullptr;
  for (const EngineScore& s : plan.scores) {
    if (!s.feasible) continue;
    if (best == nullptr || s.cost < best->cost ||
        (s.cost == best->cost &&
         preferenceRank(s.name) < preferenceRank(best->name))) {
      best = &s;
    }
  }
  SLIQ_CHECK(best != nullptr,
             "engine auto: no registered engine is feasible for this circuit");
  plan.chosen = best->name;

  // Handoff: a static circuit with a long Clifford prefix runs the prefix
  // on the tableau and converts into the chosen engine at the split. The
  // chp plan itself never splits, and neither do dynamic circuits (the
  // deviate-stream contract pins the whole run to one engine).
  if (!plan.features.dynamic && plan.chosen != "chp" &&
      plan.features.cliffordPrefixGates >= kMinHandoffPrefixGates &&
      plan.features.cliffordPrefixGates < plan.features.gateCount) {
    plan.handoff = true;
    plan.splitIndex = plan.features.cliffordPrefixGates;
  }
  return plan;
}

void recordPlan(const EnginePlan& plan, metrics::Registry& registry) {
  const CircuitFeatures& f = plan.features;
  registry.gaugeSet("dispatch.chosen." + plan.chosen, 1.0);
  for (const EngineScore& s : plan.scores) {
    registry.gaugeSet("dispatch.feasible." + s.name, s.feasible ? 1.0 : 0.0);
    if (s.feasible) registry.gaugeSet("dispatch.cost." + s.name, s.cost);
  }
  registry.gaugeSet("dispatch.feature.qubits", static_cast<double>(f.numQubits));
  registry.gaugeSet("dispatch.feature.gates", static_cast<double>(f.gateCount));
  registry.gaugeSet("dispatch.feature.clifford_fraction", f.cliffordFraction);
  registry.gaugeSet("dispatch.feature.t_count", static_cast<double>(f.tCount));
  registry.gaugeSet("dispatch.feature.dynamic_ops",
                    static_cast<double>(f.dynamicOps));
  registry.gaugeSet("dispatch.feature.two_qubit_gates",
                    static_cast<double>(f.twoQubitGates));
  registry.gaugeSet("dispatch.feature.two_qubit_depth",
                    static_cast<double>(f.twoQubitDepth));
  registry.gaugeSet("dispatch.feature.interaction_width",
                    static_cast<double>(f.interactionWidth));
  registry.gaugeSet("dispatch.feature.clifford_prefix",
                    static_cast<double>(f.cliffordPrefixGates));
  registry.gaugeSet("dispatch.handoff", plan.handoff ? 1.0 : 0.0);
  registry.gaugeSet("dispatch.split_index",
                    static_cast<double>(plan.splitIndex));
}

std::string planRationale(const EnginePlan& plan) {
  const CircuitFeatures& f = plan.features;
  std::ostringstream os;
  os << "engine auto: chose '" << plan.chosen << "'";
  if (plan.handoff) {
    os << " with chp handoff after gate " << plan.splitIndex;
  }
  os << "\n  features: " << f.numQubits << " qubit(s), " << f.gateCount
     << " op(s), clifford fraction " << shortDouble(f.cliffordFraction)
     << ", T count " << f.tCount << ", 2q depth " << f.twoQubitDepth
     << ", interaction width " << f.interactionWidth << ", dynamic ops "
     << f.dynamicOps << ", clifford prefix " << f.cliffordPrefixGates
     << "\n";
  for (const EngineScore& s : plan.scores) {
    os << "  " << s.name << (s.name == plan.chosen ? " [chosen]: " : ": ")
       << s.rationale << "\n";
  }
  return os.str();
}

}  // namespace sliq
