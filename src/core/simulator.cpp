#include "core/simulator.hpp"

#include <algorithm>
#include <string>

#include "core/measurement_context.hpp"  // complete type for ctx_ cleanup
#include "support/assert.hpp"
#include "support/audit.hpp"

namespace sliq {

using bdd::Bdd;
using bdd::kFalseEdge;
using bdd::kTrueEdge;

namespace {

SliqSimulator::Config withVars(SliqSimulator::Config config, unsigned n) {
  // Qubit variables are 0..n-1; encoding variables are created lazily later.
  config.bdd.initialVars = n;
  return config;
}

}  // namespace

SliqSimulator::SliqSimulator(unsigned numQubits, std::uint64_t basisState)
    : SliqSimulator(numQubits, basisState, Config{}) {}

SliqSimulator::SliqSimulator(unsigned numQubits, std::uint64_t basisState,
                             const Config& config)
    : config_(withVars(config, numQubits)),
      mgr_(config_.bdd),
      n_(numQubits),
      r_(std::max(2u, config.initialBitWidth)) {
  SLIQ_REQUIRE(numQubits >= 1, "need at least one qubit");
  SLIQ_REQUIRE(numQubits >= 64 || basisState < (std::uint64_t{1} << std::min(numQubits, 63u)),
               "basis state out of range");
  // Initial state |i⟩: every slice is constant 0 except F_{d_0}, the
  // minterm of the basis state (paper Eq. 6).
  std::vector<bdd::Literal> minterm;
  minterm.reserve(n_);
  for (unsigned q = 0; q < n_; ++q) {
    const bool bit = q < 64 && ((basisState >> q) & 1) != 0;
    minterm.push_back({q, bit});
  }
  for (auto& slices : vec_) slices.assign(r_, zero());
  vec_[3][0] = Bdd(&mgr_, mgr_.cubeEdge(minterm));
  stats_.maxBitWidth = r_;
}

SliqSimulator::SliqSimulator(unsigned numQubits, SymbolicInit,
                             const Config& config)
    : config_(withVars(config, 2 * numQubits)),
      mgr_(config_.bdd),
      n_(numQubits),
      r_(std::max(2u, config.initialBitWidth)),
      symbolic_(true) {
  SLIQ_REQUIRE(numQubits >= 1, "need at least one qubit");
  // Initial d0 = ⋀_q (q_q XNOR x_q): the state is the superposed family of
  // all basis columns, one per assignment to the input labels x (variables
  // n..2n-1, below the qubit variables in the order).
  Bdd pattern = one();
  for (unsigned q = 0; q < n_; ++q) {
    pattern &= ~(qvar(q) ^ qvar(n_ + q));
  }
  for (auto& slices : vec_) slices.assign(r_, zero());
  vec_[3][0] = pattern;
  stats_.maxBitWidth = r_;
}

Bdd SliqSimulator::qvar(unsigned q) const { return bdd::makeVar(mgr_, q); }
Bdd SliqSimulator::zero() const { return Bdd(&mgr_, kFalseEdge); }
Bdd SliqSimulator::one() const { return Bdd(&mgr_, kTrueEdge); }

SliqSimulator::Slices SliqSimulator::extended(const Slices& v) const {
  Slices out = v;
  out.push_back(v.back());  // sign extension
  return out;
}

SliqSimulator::Slices SliqSimulator::swapHalves(const Slices& v,
                                                unsigned t) const {
  Slices out;
  out.reserve(v.size());
  const Bdd qt = qvar(t);
  for (const Bdd& f : v) {
    out.push_back(qt.ite(f.cofactor(t, false), f.cofactor(t, true)));
  }
  return out;
}

SliqSimulator::Slices SliqSimulator::select(const Bdd& cond, const Slices& a,
                                            const Slices& b) const {
  SLIQ_ASSERT(a.size() == b.size());
  Slices out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.push_back(cond.ite(a[i], b[i]));
  return out;
}

SliqSimulator::Slices SliqSimulator::rippleSum(const Slices& g,
                                               const Slices& d,
                                               const Bdd& carry0) const {
  // Paper's Car/Sum forms: Sum(A,B,C) = A⊕B⊕C, Car(A,B,C) = AB ∨ (A∨B)C.
  SLIQ_ASSERT(d.empty() || d.size() == g.size());
  Slices out;
  out.reserve(g.size());
  Bdd carry = carry0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (d.empty()) {
      out.push_back(g[i] ^ carry);
      carry = g[i] & carry;
    } else {
      out.push_back(g[i] ^ d[i] ^ carry);
      carry = (g[i] & d[i]) | ((g[i] | d[i]) & carry);
    }
  }
  // The width was pre-extended by one sign slice, so the final carry can
  // never produce an overflowing value (sum of two r-bit values fits r+1).
  return out;
}

void SliqSimulator::trim() {
  if (!config_.trimBitWidth) return;
  while (r_ >= 2) {
    bool redundant = true;
    for (const auto& slices : vec_)
      redundant &= slices[r_ - 1] == slices[r_ - 2];
    if (!redundant) break;
    for (auto& slices : vec_) slices.pop_back();
    --r_;
  }
}

void SliqSimulator::applyGate(const Gate& gate) {
  validateGate(gate, n_);
  switch (gate.kind) {
    case GateKind::kX:
      if (gate.controls.empty()) applyX(gate.target());
      else applyCnot(gate.controls, gate.target());
      break;
    case GateKind::kCnot:
      if (gate.controls.empty()) applyX(gate.target());
      else applyCnot(gate.controls, gate.target());
      break;
    case GateKind::kY: applyY(gate.target()); break;
    case GateKind::kZ:
    case GateKind::kCz: {
      Bdd condition = qvar(gate.target());
      for (unsigned c : gate.controls) condition &= qvar(c);
      applyPhaseFlip(condition);
      break;
    }
    case GateKind::kH: applyH(gate.target()); break;
    case GateKind::kS: applyS(gate.target(), /*inverse=*/false); break;
    case GateKind::kSdg: applyS(gate.target(), /*inverse=*/true); break;
    case GateKind::kT: applyT(gate.target(), /*inverse=*/false); break;
    case GateKind::kTdg: applyT(gate.target(), /*inverse=*/true); break;
    case GateKind::kRx90: applyRx90(gate.target()); break;
    case GateKind::kRy90: applyRy90(gate.target()); break;
    case GateKind::kSwap:
      applySwap(gate.controls, gate.targets[0], gate.targets[1]);
      break;
    case GateKind::kMeasure:
    case GateKind::kReset:
      SLIQ_REQUIRE(false,
                   "measure/reset are not unitary gates — dynamic circuits "
                   "execute through Engine::runDynamic");
      break;
  }
  ++stats_.gatesApplied;
  stats_.maxBitWidth = std::max(stats_.maxBitWidth, r_);
  stats_.peakLiveNodes =
      std::max(stats_.peakLiveNodes, mgr_.liveNodeCount());
  invalidateMonolithic();
}

void SliqSimulator::run(const QuantumCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == n_, "circuit width mismatch");
  for (const Gate& g : circuit.gates()) applyGate(g);
}

const bdd::Bdd& SliqSimulator::slice(unsigned vectorIndex,
                                     unsigned bit) const {
  SLIQ_REQUIRE(vectorIndex < 4 && bit < r_, "slice index out of range");
  return vec_[vectorIndex][bit];
}

std::size_t SliqSimulator::stateNodeCount() const {
  std::vector<bdd::Edge> roots;
  for (const auto& slices : vec_)
    for (const Bdd& f : slices) roots.push_back(f.edge());
  return mgr_.nodeCountMulti(roots);
}

void SliqSimulator::auditInvariants() const {
  static const std::string kStructure = "sliq-bitsliced-state";
  mgr_.auditInvariants();
  if (r_ < 1) audit::fail(kStructure, "bit width r fell below 1");
  for (unsigned v = 0; v < 4; ++v) {
    if (vec_[v].size() != r_) {
      audit::fail(kStructure, "vector " + std::to_string(v) + " holds " +
                                  std::to_string(vec_[v].size()) +
                                  " slices, expected r = " +
                                  std::to_string(r_));
    }
    for (unsigned bit = 0; bit < r_; ++bit) {
      if (!vec_[v][bit].valid()) {
        audit::fail(kStructure, "slice (" + std::to_string(v) + ", " +
                                    std::to_string(bit) +
                                    ") holds a detached BDD handle");
      }
    }
  }
  // k grows by at most 1 per √2-introducing gate (H/Rx90/Ry90 and the
  // equivalence checker's alignment kernel, bounded by gate count), and
  // the dyadic renormalization after collapse keeps it non-negative.
  const std::int64_t kBound =
      2 * static_cast<std::int64_t>(stats_.gatesApplied) +
      2 * static_cast<std::int64_t>(n_) + 64;
  if (k_ < 0 || k_ > kBound) {
    audit::fail(kStructure, "k-scalar " + std::to_string(k_) +
                                " outside its reachable range [0, " +
                                std::to_string(kBound) + "]");
  }
  if (monolithicValid_ && !monolithicCache_.valid()) {
    audit::fail(kStructure,
                "monolithic cache flagged valid but handle is detached");
  }
}

}  // namespace sliq
