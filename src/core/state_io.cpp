// Snapshot payload of the exact bit-sliced engine (DESIGN.md §12).
//
// Payload layout (`sliq.state.v1`, representation "exact"):
//
//   u32 numQubits        must match the receiving simulator
//   u32 bitWidth         r — slices per vector
//   i64 kScalar          the shared √2 exponent of Eq. 5
//   u64 nodeCount        decision nodes shared across all 4·r slices
//   nodeCount × record   children-first: (u32 var, u32 hiRef, u32 loRef)
//   4·r × u32            root refs, vector-major (a slices, b, c, d)
//
// A ref is (localId << 1) | complementBit; localId 0 is the ONE terminal,
// record i defines localId i+1, and a record may only reference earlier
// localIds — so the loader rebuilds bottom-up through the public ITE
// interface and lands on the canonical unique-table nodes by construction.
// Every rebuilt node is pinned by a Bdd handle for the whole load, which
// keeps the in-progress cone safe across ITE-triggered garbage collections.
#include <unordered_map>
#include <utility>

#include "core/simulator.hpp"
#include "support/serialize.hpp"

namespace sliq {

namespace {

/// Local-id encoding of one stored edge (complement bit preserved).
std::uint32_t refOf(bdd::Edge e,
                    const std::unordered_map<std::uint32_t, std::uint32_t>&
                        localIds) {
  return (localIds.at(e.index()) << 1) |
         static_cast<std::uint32_t>(e.complemented());
}

}  // namespace

void SliqSimulator::saveStatePayload(serialize::Writer& out) {
  if (symbolic_) {
    throw serialize::SerializationError(
        "symbolic-mode states (equivalence checking) cannot be snapshotted");
  }
  out.u32(n_);
  out.u32(r_);
  out.i64(k_);

  // Children-first walk over the union of all slice cones. Traversal is by
  // node index (complement bits do not change the cone), reading the STORED
  // children via a non-complemented view edge so the emitted records match
  // the unique-table contents exactly.
  std::unordered_map<std::uint32_t, std::uint32_t> localIds;
  localIds.emplace(0, 0);  // the ONE terminal
  std::vector<std::uint32_t> order;  // node indices, children first
  std::vector<std::pair<std::uint32_t, bool>> stack;
  for (const Slices& slices : vec_) {
    for (const bdd::Bdd& slice : slices) {
      if (!bdd::isConstant(slice.edge())) {
        stack.emplace_back(slice.edge().index(), false);
      }
      while (!stack.empty()) {
        auto [idx, expanded] = stack.back();
        stack.pop_back();
        if (localIds.count(idx) != 0) continue;
        const bdd::Edge view = bdd::Edge::make(idx, false);
        if (expanded) {
          localIds.emplace(idx,
                           static_cast<std::uint32_t>(localIds.size()));
          order.push_back(idx);
          continue;
        }
        stack.emplace_back(idx, true);
        for (const bdd::Edge child :
             {mgr_.thenEdge(view), mgr_.elseEdge(view)}) {
          if (!bdd::isConstant(child) && localIds.count(child.index()) == 0) {
            stack.emplace_back(child.index(), false);
          }
        }
      }
    }
  }

  out.u64(order.size());
  for (const std::uint32_t idx : order) {
    const bdd::Edge view = bdd::Edge::make(idx, false);
    out.u32(mgr_.edgeVar(view));
    out.u32(refOf(mgr_.thenEdge(view), localIds));
    out.u32(refOf(mgr_.elseEdge(view), localIds));
  }
  for (const Slices& slices : vec_) {
    for (const bdd::Bdd& slice : slices) {
      out.u32(refOf(slice.edge(), localIds));
    }
  }
}

void SliqSimulator::loadStatePayload(serialize::Reader& in) {
  if (symbolic_) {
    throw serialize::SerializationError(
        "symbolic-mode states (equivalence checking) cannot load snapshots");
  }
  const std::uint32_t n = in.u32("exact.numQubits");
  if (n != n_) {
    throw serialize::SerializationError(
        "snapshot field 'exact.numQubits': payload says " +
        std::to_string(n) + " qubit(s) but the simulator has " +
        std::to_string(n_));
  }
  const std::uint32_t r = in.u32("exact.bitWidth");
  if (r == 0) {
    throw serialize::SerializationError(
        "snapshot field 'exact.bitWidth' at byte offset " +
        std::to_string(in.offset()) + ": bit width 0 is invalid");
  }
  const std::int64_t k = in.i64("exact.kScalar");
  const std::uint64_t nodeCount = in.u64("exact.nodeCount");

  // Rebuild bottom-up; `built[localId]` pins every node with a handle so
  // GC during later ITE calls cannot reclaim the in-progress cone.
  std::vector<bdd::Bdd> built;
  built.emplace_back(&mgr_, bdd::kTrueEdge);  // localId 0: terminal
  const auto resolve = [&](std::uint32_t ref, const char* field) {
    const std::uint32_t id = ref >> 1;
    if (id >= built.size()) {
      throw serialize::SerializationError(
          "snapshot field '" + std::string(field) + "' at byte offset " +
          std::to_string(in.offset()) + ": ref " + std::to_string(id) +
          " points past the " + std::to_string(built.size()) +
          " node(s) defined so far (children must precede parents)");
    }
    return (ref & 1u) != 0 ? ~built[id] : built[id];
  };
  for (std::uint64_t i = 0; i < nodeCount; ++i) {
    const std::uint32_t var = in.u32("exact.node.var");
    if (var >= n_) {
      throw serialize::SerializationError(
          "snapshot field 'exact.node.var' at byte offset " +
          std::to_string(in.offset()) + ": variable " + std::to_string(var) +
          " out of range for " + std::to_string(n_) + " qubit(s)");
    }
    const bdd::Bdd hi = resolve(in.u32("exact.node.hi"), "exact.node.hi");
    const bdd::Bdd lo = resolve(in.u32("exact.node.lo"), "exact.node.lo");
    built.push_back(bdd::makeVar(mgr_, var).ite(hi, lo));
  }

  std::array<Slices, 4> vec;
  for (Slices& slices : vec) {
    slices.reserve(r);
    for (std::uint32_t bit = 0; bit < r; ++bit) {
      slices.push_back(resolve(in.u32("exact.root"), "exact.root"));
    }
  }

  // All parsed and validated — commit atomically.
  vec_ = std::move(vec);
  r_ = r;
  k_ = k;
  if (r_ > stats_.maxBitWidth) stats_.maxBitWidth = r_;
  invalidateMonolithic();
  mgr_.garbageCollect();  // drop the replaced state's cones now
}

}  // namespace sliq
