// Engine registry — one code path for selecting a simulation engine by name.
//
// The CLI (tools/sliqsim_main.cpp), the cross-engine integration test and
// the benchmark harness previously each hand-rolled an if/else ladder over
// the concrete simulator classes; they now all go through
// EngineRegistry::instance().create(name, numQubits), which returns the
// uniform Engine facade below. Built-in engines: exact (the paper's
// bit-sliced BDD simulator), qmdd (the DDSIM stand-in baseline), chp
// (stabilizer tableau, Clifford only) and statevector (dense array).
#pragma once

#include <complex>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "support/memuse.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace sliq::serialize {
class Writer;  // support/serialize.hpp
class Reader;
}  // namespace sliq::serialize

namespace sliq {

class PauliObservable;  // core/observable.hpp
class Engine;

class UnknownEngineError : public std::runtime_error {
 public:
  explicit UnknownEngineError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Per-engine capability flags, surfaced by `sliqsim --list-engines` and
/// used by callers that pick execution strategies (e.g. the trajectory
/// runner's reporting).
struct EngineCapabilities {
  /// sampleShots() is overridden with a native batch path that amortizes
  /// per-state setup across the batch (vs the facade's sampleShot loop).
  bool batchedSampling = false;
  /// Pauli noise stays inside the engine's native formalism: stabilizer
  /// tableaus absorb Pauli errors without leaving the Clifford fragment,
  /// so noise trajectories never change the representation's cost class.
  bool noiseFastPath = false;
  /// expectation() is overridden with a native contraction (signed BDD
  /// weight traversal, DD pair contraction, tableau commutation, dense
  /// contraction) instead of the facade's basis-change + probabilityOne
  /// fallback.
  bool nativeExpectation = false;
  /// The engine implements the per-op primitives (applyGate / measure /
  /// reset) that runDynamic() drives, so it executes dynamic circuits
  /// (mid-circuit measurement, reset, classical control). The noise
  /// trajectory runner checks this flag before replaying dynamic circuits
  /// and refuses the Pauli-frame fast path for them regardless (frames do
  /// not commute through classical control).
  bool dynamicCircuits = false;
  /// auditInvariants() is overridden with a deep structural validator of
  /// the engine's representation (unique-table canonicity, tableau
  /// symplectic checks, norm scans — DESIGN.md §10). Engines without one
  /// keep the facade's no-op, and SLIQ_AUDIT builds audit nothing there.
  bool invariantAudit = false;
  /// saveState()/loadState() are implemented natively: the engine's
  /// representation round-trips through the versioned `sliq.state.v1`
  /// binary snapshot format (support/serialize.hpp, DESIGN.md §12) with
  /// bit-identical post-load query/sampling/expectation results. Engines
  /// without the flag throw std::logic_error from both entry points.
  bool serialization = false;
};

/// Result of one dynamic-circuit execution (Engine::runDynamic).
struct DynamicRun {
  /// Final classical register, bit c = creg[c] (the value classical
  /// conditions compared against mid-run).
  std::vector<bool> creg;
  /// Chronological recorded outcomes of every *executed* measure op (after
  /// any instrument readout transformation) — the per-shot classical
  /// outcome stream the differential harness compares across engines.
  std::vector<bool> outcomes;
  /// Executed op counts: the run consumed exactly `measures + resets`
  /// uniform deviates (one per collapse; conditioned ops whose condition
  /// failed consume none) — the cross-engine deviate contract, plus any
  /// deviates an instrument drew.
  unsigned measures = 0;
  unsigned resets = 0;

  /// Final register as an integer (bit c = creg[c]); 0 when no creg.
  std::uint64_t cregValue() const {
    std::uint64_t v = 0;
    for (std::size_t c = 0; c < creg.size(); ++c)
      if (creg[c]) v |= std::uint64_t{1} << c;
    return v;
  }
};

/// Optional per-op instrumentation for runDynamic(). The noise subsystem
/// injects sampled error gates and readout flips through these hooks so the
/// classical-control walk (condition evaluation, deviate order, creg
/// updates) lives in exactly one place. Hooks fire for *executed* ops only.
struct DynamicInstrument {
  /// Called after op `opIndex` executed (gate applied / outcome recorded).
  std::function<void(Engine&, std::size_t opIndex)> afterOp;
  /// Transforms a measured bit before it is recorded into the creg (e.g. a
  /// classical readout flip). Classical control sees the transformed bit.
  std::function<bool(bool outcome)> recordMeasure;
};

/// Uniform facade over one engine instance of a fixed qubit width,
/// prepared in |0...0⟩.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Canonical (lower-case) registry name of this engine.
  virtual const std::string& name() const = 0;
  virtual unsigned numQubits() const = 0;
  virtual EngineCapabilities capabilities() const { return {}; }

  /// True when the engine can simulate every gate of `c` at this width
  /// within its structural limits (gate set, memory feasibility). Callers
  /// that iterate all engines use this to skip inapplicable ones.
  virtual bool supports(const QuantumCircuit& c) const {
    (void)c;
    return true;
  }

  /// Prepares the engine state by applying a *static* circuit. Dynamic
  /// circuits (mid-circuit measure / reset / classical control) throw
  /// std::logic_error here — they carry classical state the static path
  /// cannot execute; use runDynamic().
  void run(const QuantumCircuit& circuit);

  /// Executes `circuit` op by op, owning the classical register: plain
  /// gates go through applyGate(), a conditioned op executes iff the
  /// register currently equals its condition value, kMeasure collapses via
  /// measure() and records the bit, kReset collapses via reset(). Every
  /// engine consumes `rng` identically — exactly one uniform deviate per
  /// executed measure/reset, in op order — so a shared seed yields
  /// bit-identical classical outcome streams wherever the engines agree on
  /// probabilities (they do, to ≥10 digits). Also valid for static
  /// circuits (it degenerates to run()). Afterwards the engine holds the
  /// post-execution state as a NEW well-defined reference state:
  /// probabilityOne / sampleShot(s) / expectation query it (the
  /// measure()-collapse restriction is re-armed, not left tripped).
  /// `instrument` (optional) receives per-executed-op callbacks — see
  /// DynamicInstrument.
  DynamicRun runDynamic(const QuantumCircuit& circuit, Rng& rng,
                        const DynamicInstrument* instrument = nullptr);

  /// Applies one unitary gate to the current state (the per-op primitive
  /// runDynamic drives; also useful for incremental state preparation).
  /// Throws for the non-unitary kinds (kMeasure/kReset) and, for engines
  /// with a restricted gate set, for unsupported gates.
  virtual void applyGate(const Gate& gate) = 0;

  virtual double probabilityOne(unsigned qubit) = 0;
  /// Σ|α|² (1 up to engine-specific rounding while normalized).
  virtual double totalProbability() = 0;
  /// Collapses `qubit`; `random` in [0,1) picks the outcome, which is 1
  /// iff random < Pr[qubit = 1] — the convention shared by every engine,
  /// so identical deviates yield identical collapse cascades.
  virtual bool measure(unsigned qubit, double random) = 0;
  /// Resets `qubit` to |0⟩: a measure() collapse (consuming exactly the
  /// one deviate) followed by an X flip when the observed bit was 1.
  /// Returns the pre-reset measured bit. Engines override this with their
  /// native reset; the semantics and deviate count are pinned identical.
  virtual bool reset(unsigned qubit, double random) {
    const bool was = measure(qubit, random);
    if (was) applyGate(Gate{GateKind::kX, {qubit}, {}});
    return was;
  }
  /// One full-register shot (bit q = outcome of qubit q) from the state
  /// prepared by run(), leaving the engine state intact. Every built-in
  /// engine samples natively without collapsing (BDD/DD descent, tableau
  /// snapshot, statevector scan). Only valid before any measure() call —
  /// throws std::logic_error afterwards (the facade contract pins shot
  /// sampling to the state prepared by run(), keeping the sampled
  /// distribution identical across engines).
  virtual std::vector<bool> sampleShot(Rng& rng) = 0;
  /// `count` independent shots from the state prepared by run(). The base
  /// implementation loops over sampleShot(); engines override it with a
  /// batched sampler that amortizes per-state setup (weight traversal,
  /// cumulative distribution, ...) across the batch. Every override
  /// consumes deviates exactly like `count` sampleShot() calls, so a fixed
  /// seed yields the same shots either way. Same collapse restriction as
  /// sampleShot(). Contract pinned across engines: `count == 0` returns an
  /// empty vector WITHOUT consuming any deviate (so interleaving empty
  /// batches never perturbs a seeded run); overrides must preserve this.
  virtual std::vector<std::vector<bool>> sampleShots(unsigned count,
                                                     Rng& rng) {
    requireUncollapsed();
    std::vector<std::vector<bool>> shots;
    if (count == 0) return shots;
    shots.reserve(count);
    for (unsigned s = 0; s < count; ++s) shots.push_back(sampleShot(rng));
    return shots;
  }

  /// ⟨O⟩ = Σ_s c_s·⟨P_s⟩ of a weighted Pauli-string observable on the state
  /// prepared by run(), WITHOUT collapsing it (the state is restored up to
  /// representation details; probabilities are never perturbed). Same
  /// restriction as sampleShot(): only valid before any measure() call —
  /// throws std::logic_error afterwards. Throws ObservableSpecError when the
  /// observable references a qubit >= numQubits(). Implemented by
  /// expectationImpl(); the default is the engine-agnostic basis-change
  /// fallback (core/observable.hpp), overridden per engine with a native
  /// contraction. Defined out of line in observable.cpp.
  double expectation(const PauliObservable& observable);

  /// Requests `threads` worker threads for single-circuit execution
  /// (0 = hardware concurrency). Engines without an intra-circuit parallel
  /// path ignore it — today only the dense statevector engine partitions
  /// its amplitude groups (StatevectorSimulator::setThreads); the result is
  /// bit-identical for every thread count. Distinct from the *inter*-
  /// trajectory parallelism of the noise runner, which runs one engine per
  /// worker. The facade resolves the auto sentinel here, so run reports
  /// always carry the actual worker count (resolvedExecutionThreads) and
  /// engines only ever see a concrete value.
  void setExecutionThreads(unsigned threads);
  /// The worker count execution actually uses: setExecutionThreads' value
  /// with 0 resolved to the detected hardware concurrency; 1 before any
  /// request. Surfaced as the `threads.resolved` gauge of every run report.
  unsigned resolvedExecutionThreads() const { return resolvedThreads_; }

  // ---- telemetry (DESIGN.md §11) ------------------------------------------
  /// This engine's metrics registry. Disabled (near-zero overhead) until
  /// the caller enables it; every facade phase and engine-native
  /// instrumentation site records into it. Recording never consumes RNG
  /// deviates or mutates engine state, so enabling it is observationally
  /// invisible to the simulation.
  metrics::Registry& metrics() { return metrics_; }
  /// The unified per-run telemetry record (sliq.run_report.v1): common
  /// fields (engine, qubits, resolved threads, RSS high-water, phase
  /// timings) plus the engine-native counters mirrored by fillRunReport —
  /// BDD manager stats, QMDD node/table sizes, tableau dims, statevector
  /// bytes. Idempotent: native totals are absolute mirrors, not deltas.
  metrics::RunReport runMetrics();

  // ---- state serialization (DESIGN.md §12) --------------------------------
  /// Serializes the engine's current state as one `sliq.state.v1` snapshot
  /// (envelope + engine-native payload) to `out`. Only meaningful for
  /// engines with capabilities().serialization — others throw
  /// std::logic_error. Does not mutate the state; records a `state.save`
  /// span into metrics(). Throws serialize::SerializationError on stream
  /// failure.
  void saveState(std::ostream& out);
  /// Replaces the engine's state with the snapshot read from `in`. The
  /// envelope must match this engine (representation name, qubit count,
  /// format version <= supported) and pass its checksum; any violation —
  /// including truncation or byte corruption anywhere in the file — throws
  /// serialize::SerializationError naming the offending field and byte
  /// offset, leaving the previous state intact (payloads are parsed into
  /// locals and swapped in only on success). A successful load re-arms the
  /// sampling/expectation collapse restriction (the loaded state is a new
  /// reference state, exactly like runDynamic's post-state) and, under
  /// -DSLIQ_AUDIT, runs the full structural audit on the loaded state.
  /// Records a `state.load` span into metrics().
  void loadState(std::istream& in);

  // ---- cross-representation conversion (core/state_convert.cpp) ----------
  /// Converts this engine's current state INTO `dst`, which must be a
  /// freshly constructed engine of the same width (still in |0...0⟩ —
  /// conversion composes its route on top of dst's initial state). Routes,
  /// tried in order:
  ///   1. same representation — sliq.state.v1 snapshot round-trip;
  ///   2. stabilizer extraction — the tableau's preparation circuit
  ///      replayed gate by gate on dst (chp → exact/qmdd/statevector,
  ///      exact up to global phase);
  ///   3. dense hand-over — budgeted 2^n amplitude extraction re-encoded
  ///      into dst ({exact, qmdd, statevector} → {qmdd, statevector}).
  /// Afterwards dst holds the same state as a NEW reference state
  /// (sampling/expectation re-armed; probabilities agree to >= 10 digits —
  /// pinned by the differential harness). Pairs with no route (anything
  /// non-chp → chp or → exact) throw ConversionError (state_convert.hpp);
  /// an over-budget dense extraction throws MemoryBudgetError
  /// (support/memuse.hpp). Both are typed and catchable, so the dispatcher
  /// falls back instead of aborting. Records a `state.convert` span.
  void exportTo(Engine& dst,
                std::uint64_t denseBudgetBytes = kDefaultDenseBudgetBytes);

  /// The paper's 'error' column: true when the engine's normalization
  /// invariant has drifted beyond its engine-specific tolerance.
  virtual bool numericalError() { return false; }

  /// One-line engine-specific summary for after run() (k, r, Σ|α|², ...).
  virtual std::string runSummary() { return {}; }
  /// One-line statistics summary (--stats).
  virtual std::string statsSummary() { return {}; }
  /// Up to `maxCount` nonzero amplitudes as (basis index, printable
  /// value); empty when the engine cannot enumerate amplitudes at this
  /// width.
  virtual std::vector<std::pair<std::uint64_t, std::string>>
  nonzeroAmplitudes(unsigned maxCount) {
    (void)maxCount;
    return {};
  }

  /// Deep structural audit of the engine's representation (DESIGN.md §10):
  /// throws audit::AuditError naming the violated structure and node on
  /// the first broken invariant, returns normally on a sound state. The
  /// facade default is a no-op (capabilities().invariantAudit tells
  /// callers whether an engine actually validates anything). Under
  /// `-DSLIQ_AUDIT=ON` the facade calls this automatically after run(),
  /// and after every executed collapse inside runDynamic(). Tests can wrap
  /// single operations in any build via audit::withAudit.
  virtual void auditInvariants() {}

 protected:
  /// The SLIQ_AUDIT hook point: compiled to auditInvariants() only when
  /// the audit build option is on, so release binaries pay nothing.
  void maybeAudit() {
#ifdef SLIQ_AUDIT
    auditInvariants();
#endif
  }

  /// run() body for a static circuit, called after the facade has rejected
  /// dynamic circuits.
  virtual void runStatic(const QuantumCircuit& circuit) = 0;

  /// setExecutionThreads() body: receives the RESOLVED worker count (never
  /// the 0 auto sentinel). Engines without an intra-circuit parallel path
  /// keep the no-op default.
  virtual void setExecutionThreadsImpl(unsigned resolvedThreads) {
    (void)resolvedThreads;
  }

  /// runMetrics() body: mirror engine-native totals into metrics() with
  /// counterSet/gaugeSet (absolute values, so repeated calls do not
  /// double-count). The base contributes nothing; every built-in engine
  /// overrides it.
  virtual void fillRunReport() {}

  /// saveState() body: append the engine-native payload (everything inside
  /// the envelope) to `out`. The facade owns the envelope + checksum.
  /// The default throws std::logic_error (capabilities().serialization
  /// tells callers ahead of time).
  virtual void saveStatePayload(serialize::Writer& out);
  /// loadState() body: parse the checksum-verified payload from `in` and
  /// swap the decoded state in. MUST parse into locals first so a throw
  /// leaves the engine untouched; the facade rejects envelope mismatches
  /// (representation/width/version/checksum) before calling this.
  virtual void loadStatePayload(serialize::Reader& in);

  /// expectation() body, called after the facade has checked the collapse
  /// restriction and the observable's width. The base implementation is the
  /// generic basis-change + probabilityOne fallback.
  virtual double expectationImpl(const PauliObservable& observable);

  // ---- conversion hooks (exportTo's routes; core/state_convert.cpp) ------
  /// Fills `out` with a static circuit preparing the current state from
  /// |0...0⟩ (up to global phase) and returns true; false when the
  /// representation cannot extract one (every engine but chp).
  virtual bool extractPreparation(QuantumCircuit* out) {
    (void)out;
    return false;
  }
  /// Fills `out` with the dense 2^n amplitude array (bit q of the index =
  /// qubit q, physical normalization applied) and returns true; false when
  /// the representation cannot enumerate amplitudes (chp). Throws the
  /// typed MemoryBudgetError when 2^n complex doubles exceed `budgetBytes`.
  virtual bool extractDense(std::vector<std::complex<double>>* out,
                            std::uint64_t budgetBytes) {
    (void)out;
    (void)budgetBytes;
    return false;
  }
  /// Replaces the engine state with the dense array and returns true;
  /// false when the representation cannot ingest arbitrary complex
  /// amplitudes (chp — not a stabilizer state in general; exact — doubles
  /// carry no exact Z[√2] decomposition).
  virtual bool loadDense(const std::vector<std::complex<double>>& amplitudes) {
    (void)amplitudes;
    return false;
  }

  /// Wrapper measure() implementations call this; sampleShot() then
  /// refuses via requireUncollapsed().
  void noteCollapsed() { collapsed_ = true; }
  void requireUncollapsed() const {
    if (collapsed_) {
      throw std::logic_error(
          "sampleShot() after measure(): shot sampling is defined on the "
          "state prepared by run()/runDynamic(), not on a collapsed "
          "register");
    }
  }

 private:
  bool collapsed_ = false;
  unsigned resolvedThreads_ = 1;
  metrics::Registry metrics_;
};

class EngineRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Engine>(unsigned numQubits)>;

  /// The process-wide registry, pre-populated with the built-in engines.
  static EngineRegistry& instance();

  /// Registers `factory` under `name` (matched case-insensitively).
  /// Re-registering an existing name replaces its factory. `capabilities`
  /// must mirror what the engine's instances report (pinned by the registry
  /// test for the built-ins) — stored here so that callers (e.g.
  /// --list-engines) can query flags without constructing a throwaway
  /// engine. Deliberately no default: registering forces the decision.
  void add(const std::string& name, const std::string& description,
           Factory factory, EngineCapabilities capabilities);

  bool contains(const std::string& name) const;
  /// Canonical engine names, sorted.
  std::vector<std::string> names() const;
  /// The registered name closest to `name` (case-insensitive Levenshtein
  /// distance <= 2), or "" when nothing is close enough — the "did you
  /// mean" half of the UnknownEngineError message. Distance ties break
  /// toward the alphabetically first name so the suggestion is stable.
  std::string closestName(const std::string& name) const;
  /// names() joined with ", " — for error and usage messages.
  std::string namesJoined() const;
  std::string describe(const std::string& name) const;
  /// Registered capability flags; throws UnknownEngineError like describe.
  EngineCapabilities capabilities(const std::string& name) const;

  /// Instantiates the engine registered under `name` (case-insensitive);
  /// throws UnknownEngineError listing the registered names otherwise.
  std::unique_ptr<Engine> create(const std::string& name,
                                 unsigned numQubits) const;

 private:
  struct Entry {
    std::string name;  // canonical lower-case
    std::string description;
    Factory factory;
    EngineCapabilities capabilities;
  };
  const Entry* find(const std::string& name) const;
  [[noreturn]] void throwUnknown(const std::string& name) const;

  std::vector<Entry> entries_;
};

/// Shorthand for EngineRegistry::instance().create(name, numQubits).
std::unique_ptr<Engine> makeEngine(const std::string& name,
                                   unsigned numQubits);
/// Shorthand for EngineRegistry::instance().names().
std::vector<std::string> engineNames();

}  // namespace sliq
