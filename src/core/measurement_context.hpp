// MeasurementContext — persistent measurement state for SliqSimulator.
//
// The paper computes probabilities by one memoized traversal of the
// monolithic hyper-function BDD (Eq. 12). This class makes that memo
// *persistent*: it owns a handle to the monolithic BDD plus the
// weightBelow/ampSq memo tables, so K shots cost one exact Z[√2] weight
// traversal plus K·n cheap descents instead of K full traversals. The
// caches are invalidated only when the simulator state mutates (gate
// application, collapse, k-alignment) or the variable order changes —
// detected via the simulator's state version and the manager's reordering
// counter, so a stale context silently rebuilds on next use.
//
// Memo safety: entries are keyed by raw edge words, which stay valid as
// long as the underlying nodes are live. The context therefore keeps Bdd
// handles to every root it has memoized under (the monolithic BDD and the
// per-qubit restrictions), pinning all memoized cones across garbage
// collections. Node *levels* enter the memoized weights, so a dynamic
// reordering invalidates everything — hence the reordering-counter check.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.hpp"
#include "bigint/zroot2.hpp"
#include "support/rng.hpp"

namespace sliq {

class SliqSimulator;

class MeasurementContext {
 public:
  /// Binds to `sim` (which must outlive the context). Caches build lazily
  /// on first query; construction itself does no BDD work.
  explicit MeasurementContext(SliqSimulator& sim);

  /// Σ|α_i|²·2ᵏ over all basis states, exactly (cached).
  const Zroot2& totalWeightScaled();
  /// Σ|α_i|² as a double (1.0 up to one final rounding when normalized).
  double totalProbability();
  /// Pr[qubit = 1], exact ratio of Z[√2] weights rounded once.
  double probabilityOne(unsigned qubit);
  /// √(2ᵏ / current weight); see SliqSimulator::normalizationCorrection.
  double normalizationCorrection();

  /// Exact ⟨⊗_{q: zmask[q]} Z_q⟩ on the current state, by ONE signed
  /// non-collapsing weight traversal of the monolithic hyper-function:
  /// identical to the weightBelow recursion except that a THEN branch under
  /// a masked qubit variable enters negatively (Z phase bookkeeping) and a
  /// masked variable skipped by an edge zeroes the branch (the qubit's two
  /// outcomes are equally weighted there, so +w and −w cancel exactly).
  /// The signed sum and the total weight live in Z[√2]; their ratio is
  /// rounded once. `zmask` is indexed by qubit; an empty mask yields 1.
  double expectationZ(const std::vector<bool>& zmask);

  /// One full-register shot (bit q = outcome of qubit q) by weighted
  /// descent of the monolithic BDD; does not collapse the register.
  std::vector<bool> sampleAll(Rng& rng);
  /// `count` independent shots sharing one warmed-up weight memo. Deviate
  /// consumption per shot is identical to sampleAll, so a fixed seed yields
  /// the same shot sequence as `count` sampleAll calls.
  std::vector<std::vector<bool>> sampleShots(unsigned count, Rng& rng);

  /// True when the cached traversal state matches the simulator's current
  /// state (i.e. the next query will be a cheap cache read).
  bool current() const;

  /// Releases every cached handle and memo now. Called by the simulator on
  /// state mutation so stale BDD cones are not pinned across later gates;
  /// the next query rebuilds from scratch.
  void dropCaches();

 private:
  void refreshIfStale();
  /// Signed weight over qubit variables at levels [level(e), n) under
  /// `zmask`; `memo` is per-call (keyed by edge word) because the values
  /// depend on the mask, unlike the persistent unsigned weightMemo_.
  Zroot2 signedWeightBelow(bdd::Edge e, const std::vector<bool>& zmask,
                           std::unordered_map<std::uint32_t, Zroot2>& memo);
  /// Weight over qubit variables at levels [level(e), n).
  Zroot2 weightBelow(bdd::Edge e);
  /// |α|²·2ᵏ of the boundary node e (which encodes the four integers).
  Zroot2 ampSq(bdd::Edge e);
  /// Σ over all qubit assignments of |α|²·2ᵏ below `f`'s root.
  Zroot2 rootWeight(const bdd::Bdd& f);
  /// Independent un-memoized recomputation (debug cross-check).
  Zroot2 computeTotalFresh();

  SliqSimulator* sim_;
  bdd::Bdd mono_;                    // pins the monolithic cone
  std::vector<bdd::Bdd> restrictedOne_;  // per-qubit f ∧ q, built lazily
  std::unordered_map<std::uint32_t, Zroot2> weightMemo_;
  std::unordered_map<std::uint32_t, Zroot2> ampMemo_;
  /// Per-edge THEN-branch probability for the sampling descent. A node's
  /// branch ratio is path-independent, so after the first visit a descent
  /// step is one hash lookup instead of two Z[√2] shifts and a division.
  std::unordered_map<std::uint32_t, double> branchProbMemo_;
  std::vector<bool> assignment_;     // scratch for ampSq point evaluation
  Zroot2 total_;
  bool totalValid_ = false;
  std::uint64_t builtVersion_ = ~std::uint64_t{0};
  std::uint64_t builtReorderings_ = 0;
};

}  // namespace sliq
