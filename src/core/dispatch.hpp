// Engine dispatch planner (DESIGN.md §13) — the decision half of the
// adaptive portfolio behind `--engine auto`: score every registered engine
// from the analyzer's workload features and each engine's capability
// flags, pick the cheapest feasible one, and decide whether a mid-circuit
// chp → chosen-engine handoff pays off.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "core/circuit_analyzer.hpp"
#include "support/memuse.hpp"
#include "support/metrics.hpp"

namespace sliq {

/// One engine's score under the planner's cost model. Costs are relative
/// model units (lower is better), comparable only within one plan.
struct EngineScore {
  std::string name;
  bool feasible = false;
  double cost = 0.0;
  /// One human-facing line: the cost formula instantiated, or why the
  /// engine is infeasible for this circuit.
  std::string rationale;
};

/// The planner's full decision for one circuit: the chosen engine, every
/// engine's score (name-sorted, so rendering is deterministic), the
/// features that drove the decision, and the handoff split if one applies.
struct EnginePlan {
  std::string chosen;
  std::vector<EngineScore> scores;
  CircuitFeatures features;
  /// True when the plan is: run gates [0, splitIndex) on chp, exportTo the
  /// chosen engine, finish gates [splitIndex, end) there. Only set for
  /// static circuits whose Clifford prefix is long enough to amortize the
  /// conversion and whose chosen engine is not chp itself.
  bool handoff = false;
  std::size_t splitIndex = 0;
};

/// Minimum Clifford-prefix length before the planner proposes a handoff —
/// shorter prefixes do not amortize the O(n^3) tableau extraction.
inline constexpr std::size_t kMinHandoffPrefixGates = 4;

/// Scores every registered engine against `circuit` and picks the cheapest
/// feasible one (ties break toward the leaner representation:
/// chp, exact, statevector, qmdd). `denseBudgetBytes` bounds the
/// statevector engine's feasibility the same way it bounds dense
/// extraction. Throws std::logic_error if no registered engine is feasible
/// (cannot happen with the built-in four: the decision-diagram engines are
/// always feasible).
EnginePlan planEngine(const QuantumCircuit& circuit,
                      std::uint64_t denseBudgetBytes = kDefaultDenseBudgetBytes);

/// Emits the plan as dispatch.* gauges: dispatch.chosen.<name>=1 (one-hot),
/// per-engine dispatch.feasible.<name> / dispatch.cost.<name>, the driving
/// features under dispatch.feature.*, and dispatch.handoff /
/// dispatch.split_index.
void recordPlan(const EnginePlan& plan, metrics::Registry& registry);

/// Multi-line human rendering of the plan (the CLI prints it under
/// `--engine auto`): chosen engine, feature summary, per-engine verdicts.
std::string planRationale(const EnginePlan& plan);

}  // namespace sliq
