#include "bigint/zroot2.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace sliq {

namespace {
constexpr double kSqrt2 = 1.4142135623730951;
}

int Zroot2::signum() const {
  const int su = u_.signum();
  const int sv = v_.signum();
  if (sv == 0) return su;
  if (su == 0) return sv;
  if (su == sv) return su;
  // Opposite signs: compare u² with 2v² — sign(u + v√2) is the sign of the
  // larger-magnitude term, and u² vs 2v² decides which dominates.
  const BigInt u2 = u_ * u_;
  const BigInt v2twice = (v_ * v_) << 1;
  const int cmp = u2.compare(v2twice);
  if (cmp == 0) return 0;  // only possible when u = v = 0, handled above,
                           // but kept for robustness
  return cmp > 0 ? su : sv;
}

Zroot2& Zroot2::operator+=(const Zroot2& rhs) {
  u_ += rhs.u_;
  v_ += rhs.v_;
  return *this;
}

Zroot2& Zroot2::operator-=(const Zroot2& rhs) {
  u_ -= rhs.u_;
  v_ -= rhs.v_;
  return *this;
}

Zroot2& Zroot2::operator*=(const Zroot2& rhs) {
  // (u + v√2)(u' + v'√2) = (uu' + 2vv') + (uv' + vu')√2
  BigInt newU = u_ * rhs.u_ + ((v_ * rhs.v_) << 1);
  BigInt newV = u_ * rhs.v_ + v_ * rhs.u_;
  u_ = std::move(newU);
  v_ = std::move(newV);
  return *this;
}

void Zroot2::toScaledDouble(double& mantissa, std::int64_t& exponent) const {
  if (isZero()) {
    mantissa = 0.0;
    exponent = 0;
    return;
  }
  const bool sameSign = u_.signum() * v_.signum() >= 0;
  double mu, mv;
  std::int64_t eu, ev;
  if (sameSign) {
    u_.toScaledDouble(mu, eu);
    v_.toScaledDouble(mv, ev);
  } else {
    // Cancellation-safe path: u + v√2 = (u² − 2v²) / (u − v√2). The
    // conjugate denominator has same-signed terms.
    const BigInt num = u_ * u_ - ((v_ * v_) << 1);
    const Zroot2 den(u_, -v_);
    double mn, md;
    std::int64_t en, ed;
    num.toScaledDouble(mn, en);
    den.toScaledDouble(md, ed);  // recursion bottoms out: same-sign terms
    const double q = mn / md;
    int qe = 0;
    mantissa = std::frexp(q, &qe);
    exponent = en - ed + qe;
    return;
  }
  // Align exponents and add mantissas. Cap the shift: beyond ~64 bits the
  // smaller term is below double precision anyway.
  const std::int64_t e = std::max(eu, ev);
  const double du = std::ldexp(mu, static_cast<int>(std::max<std::int64_t>(eu - e, -1000)));
  const double dv = std::ldexp(mv, static_cast<int>(std::max<std::int64_t>(ev - e, -1000)));
  const double sum = du + dv * kSqrt2;
  int se = 0;
  mantissa = std::frexp(sum, &se);
  exponent = e + se;
}

double Zroot2::toDouble() const {
  double m;
  std::int64_t e;
  toScaledDouble(m, e);
  if (e > 1023) return m * HUGE_VAL;
  if (e < -1070) return m * 0.0;
  return std::ldexp(m, static_cast<int>(e));
}

std::string Zroot2::toString() const {
  if (isZero()) return "0";
  std::string s;
  if (!u_.isZero()) s = u_.toDecimal();
  if (!v_.isZero()) {
    if (!s.empty()) s += v_.isNegative() ? " - " : " + ";
    else if (v_.isNegative()) s += "-";
    BigInt absV = v_.isNegative() ? -v_ : v_;
    if (!(absV == BigInt(1))) s += absV.toDecimal();
    s += "√2";
  }
  return s;
}

double ratio(const Zroot2& a, const Zroot2& b) {
  SLIQ_REQUIRE(!b.isZero(), "division by zero Zroot2");
  double ma, mb;
  std::int64_t ea, eb;
  a.toScaledDouble(ma, ea);
  b.toScaledDouble(mb, eb);
  if (ma == 0.0) return 0.0;
  const double q = ma / mb;
  const std::int64_t e = ea - eb;
  SLIQ_CHECK(e < 1023 && e > -1070, "probability ratio out of double range");
  return std::ldexp(q, static_cast<int>(e));
}

}  // namespace sliq
