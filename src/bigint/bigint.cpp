#include "bigint/bigint.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace sliq {

namespace {
constexpr unsigned kLimbBits = 64;

#if defined(__SIZEOF_INT128__)
using u128 = unsigned __int128;
#else
#error "BigInt requires __int128 support"
#endif
}  // namespace

BigInt::BigInt(std::int64_t v) {
  if (v == 0) return;
  sign_ = v > 0 ? 1 : -1;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  std::uint64_t mag =
      v > 0 ? static_cast<std::uint64_t>(v)
            : ~static_cast<std::uint64_t>(v) + 1;
  mag_.push_back(mag);
}

BigInt BigInt::fromDecimal(const std::string& s) {
  SLIQ_REQUIRE(!s.empty(), "empty decimal string");
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
    SLIQ_REQUIRE(s.size() > 1, "sign without digits");
  }
  BigInt result;
  for (; i < s.size(); ++i) {
    SLIQ_REQUIRE(s[i] >= '0' && s[i] <= '9', "invalid decimal digit");
    result *= BigInt(10);
    result += BigInt(s[i] - '0');
  }
  if (neg) result = -result;
  return result;
}

BigInt BigInt::fromTwosComplementBits(const std::vector<bool>& bits) {
  if (bits.empty()) return BigInt();
  const bool negative = bits.back();
  BigInt result;
  result.mag_.assign(bits.size() / kLimbBits + 1, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // For negative values, accumulate the complement and add 1 at the end:
    // value = -(~bits + 1) in 2's complement.
    const bool bit = negative ? !bits[i] : bits[i];
    if (bit) result.mag_[i / kLimbBits] |= 1ULL << (i % kLimbBits);
  }
  result.sign_ = 1;
  result.trim();
  if (result.mag_.empty()) result.sign_ = 0;
  if (negative) {
    result += BigInt(1);
    result.sign_ = -1;  // complemented magnitude is never 0 after +1
    return result;
  }
  return result;
}

BigInt BigInt::pow2(unsigned e) {
  BigInt r;
  r.sign_ = 1;
  r.mag_.assign(e / kLimbBits + 1, 0);
  r.mag_.back() = 1ULL << (e % kLimbBits);
  return r;
}

void BigInt::trim() {
  while (!mag_.empty() && mag_.back() == 0) mag_.pop_back();
  if (mag_.empty()) sign_ = 0;
}

int BigInt::compareMag(const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::addMag(std::vector<std::uint64_t>& a,
                    const std::vector<std::uint64_t>& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  unsigned carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t bi = i < b.size() ? b[i] : 0;
    const std::uint64_t sum = a[i] + bi;
    const std::uint64_t withCarry = sum + carry;
    carry = (sum < a[i]) || (withCarry < sum) ? 1 : 0;
    a[i] = withCarry;
    if (carry == 0 && i >= b.size()) return;
  }
  if (carry) a.push_back(1);
}

void BigInt::subMag(std::vector<std::uint64_t>& a,
                    const std::vector<std::uint64_t>& b) {
  SLIQ_ASSERT(compareMag(a, b) >= 0);
  unsigned borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t bi = i < b.size() ? b[i] : 0;
    const std::uint64_t diff = a[i] - bi;
    const std::uint64_t withBorrow = diff - borrow;
    borrow = (diff > a[i]) || (withBorrow > diff) ? 1 : 0;
    a[i] = withBorrow;
    if (borrow == 0 && i >= b.size()) break;
  }
  SLIQ_ASSERT(borrow == 0);
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  r.sign_ = -r.sign_;
  return r;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (rhs.sign_ == 0) return *this;
  if (sign_ == 0) return *this = rhs;
  if (sign_ == rhs.sign_) {
    addMag(mag_, rhs.mag_);
    return *this;
  }
  const int cmp = compareMag(mag_, rhs.mag_);
  if (cmp == 0) {
    sign_ = 0;
    mag_.clear();
  } else if (cmp > 0) {
    subMag(mag_, rhs.mag_);
  } else {
    std::vector<std::uint64_t> tmp = rhs.mag_;
    subMag(tmp, mag_);
    mag_ = std::move(tmp);
    sign_ = rhs.sign_;
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) {
  // Cheap sign flip; rhs is by value semantics below via copy in operator-.
  BigInt negated = rhs;
  negated.sign_ = -negated.sign_;
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& rhs) {
  if (sign_ == 0 || rhs.sign_ == 0) {
    sign_ = 0;
    mag_.clear();
    return *this;
  }
  std::vector<std::uint64_t> out(mag_.size() + rhs.mag_.size(), 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.mag_.size(); ++j) {
      const u128 cur = static_cast<u128>(mag_[i]) * rhs.mag_[j] +
                       out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out[i + rhs.mag_.size()] += carry;
  }
  mag_ = std::move(out);
  sign_ *= rhs.sign_;
  trim();
  return *this;
}

BigInt& BigInt::operator<<=(unsigned k) {
  if (sign_ == 0 || k == 0) return *this;
  const unsigned limbShift = k / kLimbBits;
  const unsigned bitShift = k % kLimbBits;
  if (bitShift == 0) {
    mag_.insert(mag_.begin(), limbShift, 0);
    return *this;
  }
  std::vector<std::uint64_t> out(mag_.size() + limbShift + 1, 0);
  for (std::size_t i = 0; i < mag_.size(); ++i) {
    out[i + limbShift] |= mag_[i] << bitShift;
    out[i + limbShift + 1] |= mag_[i] >> (kLimbBits - bitShift);
  }
  mag_ = std::move(out);
  trim();
  return *this;
}

BigInt& BigInt::operator>>=(unsigned k) {
  if (sign_ == 0 || k == 0) return *this;
  // Arithmetic shift: floor semantics. For negative values floor(v / 2^k)
  // = -ceil(|v| / 2^k) = -((|v| >> k) + (any dropped bit ? 1 : 0)).
  const unsigned limbShift = k / kLimbBits;
  const unsigned bitShift = k % kLimbBits;
  bool dropped = false;
  if (sign_ < 0) {
    for (std::size_t i = 0; i < std::min<std::size_t>(limbShift, mag_.size());
         ++i)
      dropped |= mag_[i] != 0;
    if (bitShift != 0 && limbShift < mag_.size())
      dropped |= (mag_[limbShift] & ((1ULL << bitShift) - 1)) != 0;
  }
  if (limbShift >= mag_.size()) {
    mag_.clear();
    sign_ = 0;
  } else {
    mag_.erase(mag_.begin(), mag_.begin() + limbShift);
    if (bitShift != 0) {
      for (std::size_t i = 0; i < mag_.size(); ++i) {
        mag_[i] >>= bitShift;
        if (i + 1 < mag_.size())
          mag_[i] |= mag_[i + 1] << (kLimbBits - bitShift);
      }
    }
    trim();
  }
  if (dropped) {
    const int savedSign = sign_ == 0 ? -1 : sign_;
    BigInt one(1);
    // magnitude increment for negative floor rounding
    addMag(mag_, one.mag_);
    sign_ = savedSign;
  }
  return *this;
}

int BigInt::compare(const BigInt& rhs) const {
  if (sign_ != rhs.sign_) return sign_ < rhs.sign_ ? -1 : 1;
  const int magCmp = compareMag(mag_, rhs.mag_);
  return sign_ >= 0 ? magCmp : -magCmp;
}

unsigned BigInt::bitLength() const {
  if (mag_.empty()) return 0;
  const std::uint64_t top = mag_.back();
  const unsigned topBits = kLimbBits - static_cast<unsigned>(__builtin_clzll(top));
  return static_cast<unsigned>((mag_.size() - 1) * kLimbBits) + topBits;
}

double BigInt::toDouble() const {
  double mantissa;
  std::int64_t exponent;
  toScaledDouble(mantissa, exponent);
  if (exponent > 2000) return mantissa * HUGE_VAL;  // deliberate overflow
  return std::ldexp(mantissa, static_cast<int>(exponent));
}

void BigInt::toScaledDouble(double& mantissa, std::int64_t& exponent) const {
  if (sign_ == 0) {
    mantissa = 0.0;
    exponent = 0;
    return;
  }
  // Take the top 64 bits of the magnitude for the mantissa.
  const unsigned bits = bitLength();
  std::uint64_t top = 0;
  if (bits <= kLimbBits) {
    top = mag_[0];
    exponent = 0;
  } else {
    const unsigned shift = bits - kLimbBits;  // bits to drop
    const unsigned limb = shift / kLimbBits;
    const unsigned off = shift % kLimbBits;
    top = mag_[limb] >> off;
    if (off != 0 && limb + 1 < mag_.size())
      top |= mag_[limb + 1] << (kLimbBits - off);
    exponent = shift;
  }
  int localExp = 0;
  mantissa = std::frexp(static_cast<double>(top), &localExp);
  exponent += localExp;
  if (sign_ < 0) mantissa = -mantissa;
}

bool BigInt::toInt64(std::int64_t* out) const {
  if (mag_.size() > 1) return false;
  const std::uint64_t mag = mag_.empty() ? 0 : mag_[0];
  if (sign_ >= 0) {
    if (mag > static_cast<std::uint64_t>(INT64_MAX)) return false;
    *out = static_cast<std::int64_t>(mag);
  } else {
    if (mag > static_cast<std::uint64_t>(INT64_MAX) + 1) return false;
    *out = static_cast<std::int64_t>(~mag + 1);
  }
  return true;
}

std::string BigInt::toDecimal() const {
  if (sign_ == 0) return "0";
  // Repeated division by 10^19 (largest power of ten in a 64-bit limb).
  constexpr std::uint64_t kChunk = 10'000'000'000'000'000'000ULL;
  std::vector<std::uint64_t> work = mag_;
  std::string digits;
  while (!work.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const u128 cur = (static_cast<u128>(rem) << 64) | work[i];
      work[i] = static_cast<std::uint64_t>(cur / kChunk);
      rem = static_cast<std::uint64_t>(cur % kChunk);
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 19; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::uint64_t BigInt::hashValue() const {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(sign_ + 1));
  for (const std::uint64_t limb : mag_) h = hashCombine(h, limb);
  return h;
}

}  // namespace sliq
