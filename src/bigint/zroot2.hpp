// Exact arithmetic in the ring Z[√2] = { u + v·√2 : u, v ∈ Z }.
//
// Squared amplitude magnitudes under the paper's algebraic representation
// (Eq. 5) are exactly |α|²·2ᵏ = (a²+b²+c²+d²) + √2·(dc − da + ab + bc), an
// element of Z[√2]. Accumulating measurement probabilities in this ring is
// our substitute for the paper's use of GNU MPFR: instead of bounding the
// floating-point error, we keep the value exact and round once at the end.
#pragma once

#include <cstdint>
#include <string>

#include "bigint/bigint.hpp"

namespace sliq {

class Zroot2 {
 public:
  Zroot2() = default;
  Zroot2(BigInt u, BigInt v) : u_(std::move(u)), v_(std::move(v)) {}
  explicit Zroot2(std::int64_t u) : u_(u) {}

  const BigInt& rational() const { return u_; }
  const BigInt& irrational() const { return v_; }

  bool isZero() const { return u_.isZero() && v_.isZero(); }
  /// Sign of the real value u + v·√2: -1, 0, or +1. Exact (no floats).
  int signum() const;

  Zroot2& operator+=(const Zroot2& rhs);
  Zroot2& operator-=(const Zroot2& rhs);
  Zroot2& operator*=(const Zroot2& rhs);
  friend Zroot2 operator+(Zroot2 a, const Zroot2& b) { return a += b; }
  friend Zroot2 operator-(Zroot2 a, const Zroot2& b) { return a -= b; }
  friend Zroot2 operator*(Zroot2 a, const Zroot2& b) { return a *= b; }
  Zroot2 operator-() const { return Zroot2(-u_, -v_); }

  friend bool operator==(const Zroot2& a, const Zroot2& b) {
    return a.u_ == b.u_ && a.v_ == b.v_;
  }
  friend bool operator!=(const Zroot2& a, const Zroot2& b) {
    return !(a == b);
  }
  /// Exact order comparison of the real values.
  friend bool operator<(const Zroot2& a, const Zroot2& b) {
    return (a - b).signum() < 0;
  }

  /// Real value as a double. Computed cancellation-safely: when u and v·√2
  /// nearly cancel, the value is rewritten as (u² − 2v²) / (u − v·√2) whose
  /// numerator is exact and whose denominator has no cancellation.
  double toDouble() const;
  /// value == mantissa * 2^exponent, cancellation-safe like toDouble().
  void toScaledDouble(double& mantissa, std::int64_t& exponent) const;

  /// Debug rendering, e.g. "3 - 2√2".
  std::string toString() const;

 private:
  BigInt u_;
  BigInt v_;
};

/// The ratio a/b of two ring elements as a double (b must be nonzero).
/// Used for renormalized measurement probabilities: exact until the final
/// division.
double ratio(const Zroot2& a, const Zroot2& b);

}  // namespace sliq
