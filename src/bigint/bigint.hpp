// Arbitrary-precision signed integers.
//
// The bit-sliced simulator stores state-vector integers as BDD slices; when
// amplitudes are decoded (measurement, amplitude queries) the slice bits are
// reassembled into integers whose width r is unbounded, so a bignum type is
// required. This is a from-scratch sign-magnitude implementation with the
// operations the simulator needs: +, -, *, shifts, comparison, exact
// conversion to scaled double, and decimal I/O.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sliq {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric type
  /// Parses an optionally '-'-prefixed decimal string. Throws on bad input.
  static BigInt fromDecimal(const std::string& s);
  /// Builds the value from 2's-complement bits, least-significant first.
  /// The final bit is the sign bit; an empty vector is 0.
  static BigInt fromTwosComplementBits(const std::vector<bool>& bits);
  /// 2^e for e >= 0.
  static BigInt pow2(unsigned e);

  bool isZero() const { return sign_ == 0; }
  bool isNegative() const { return sign_ < 0; }
  int signum() const { return sign_; }

  BigInt operator-() const;
  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  BigInt& operator<<=(unsigned k);
  /// Arithmetic right shift (floor division by 2^k).
  BigInt& operator>>=(unsigned k);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator<<(BigInt a, unsigned k) { return a <<= k; }
  friend BigInt operator>>(BigInt a, unsigned k) { return a >>= k; }

  /// Three-way comparison: negative/zero/positive like memcmp.
  int compare(const BigInt& rhs) const;
  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return a.compare(b) >= 0;
  }

  /// Number of bits in the magnitude (0 for value 0).
  unsigned bitLength() const;
  /// Value as double; loses precision beyond 53 bits, may overflow to inf.
  double toDouble() const;
  /// Exact scaled representation: value == mantissa * 2^exponent with
  /// |mantissa| in [0.5, 1) (mantissa 0 iff value 0). Never overflows.
  void toScaledDouble(double& mantissa, std::int64_t& exponent) const;
  /// Value fits in int64? If yes, *out receives it.
  bool toInt64(std::int64_t* out) const;
  std::string toDecimal() const;

  std::uint64_t hashValue() const;

 private:
  void trim();
  static int compareMag(const std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b);
  static void addMag(std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b);
  /// Requires |a| >= |b|; a -= b on magnitudes.
  static void subMag(std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b);

  int sign_ = 0;                     // -1, 0, +1
  std::vector<std::uint64_t> mag_;   // little-endian limbs; empty iff 0
};

}  // namespace sliq
