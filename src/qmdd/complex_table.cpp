#include "qmdd/complex_table.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "support/audit.hpp"
#include "support/hash.hpp"

namespace sliq::qmdd {

ComplexTable::ComplexTable() {
  values_.reserve(1024);
  values_.push_back({0.0, 0.0});  // index 0
  values_.push_back({1.0, 0.0});  // index 1
  // Seed buckets for the constants so lookup() can find them.
  for (CIndex i = 0; i < 2; ++i) {
    const Complex v = values_[i];
    const std::uint64_t key =
        hashCombine(static_cast<std::uint64_t>(gridKey(v.real())),
                    static_cast<std::uint64_t>(gridKey(v.imag())));
    buckets_[key].push_back(i);
  }
}

std::int64_t ComplexTable::gridKey(double v) const {
  return std::llround(v / (kTolerance * 16));
}

CIndex ComplexTable::lookup(Complex value) {
  if (std::abs(value.real()) < kTolerance) value.real(0.0);
  if (std::abs(value.imag()) < kTolerance) value.imag(0.0);
  // Probe the grid cell and its neighbors (values near a cell boundary may
  // have been filed next door).
  const std::int64_t kr = gridKey(value.real());
  const std::int64_t ki = gridKey(value.imag());
  for (std::int64_t dr = -1; dr <= 1; ++dr) {
    for (std::int64_t di = -1; di <= 1; ++di) {
      const std::uint64_t key =
          hashCombine(static_cast<std::uint64_t>(kr + dr),
                      static_cast<std::uint64_t>(ki + di));
      const auto it = buckets_.find(key);
      if (it == buckets_.end()) continue;
      for (const CIndex idx : it->second) {
        if (std::abs(values_[idx].real() - value.real()) < kTolerance &&
            std::abs(values_[idx].imag() - value.imag()) < kTolerance)
          return idx;
      }
    }
  }
  const CIndex idx = static_cast<CIndex>(values_.size());
  values_.push_back(value);
  const std::uint64_t key = hashCombine(static_cast<std::uint64_t>(kr),
                                        static_cast<std::uint64_t>(ki));
  buckets_[key].push_back(idx);
  return idx;
}

void ComplexTable::auditInvariants() const {
  static const std::string kStructure = "qmdd-complex-table";
  if (values_.size() < 2 || values_[0] != Complex{0.0, 0.0} ||
      values_[1] != Complex{1.0, 0.0}) {
    audit::fail(kStructure, "pre-interned 0/1 constants are not bit-exact");
  }
  for (CIndex i = 0; i < values_.size(); ++i) {
    if (!std::isfinite(values_[i].real()) || !std::isfinite(values_[i].imag()))
      audit::fail(kStructure,
                  "entry " + std::to_string(i) + " is not finite");
  }
  // Bucket integrity: every filed index is in range, filed exactly once,
  // and filed under the grid key of its own (snapped) value.
  std::vector<char> filed(values_.size(), 0);
  std::size_t filedCount = 0;
  for (const auto& [key, bucket] : buckets_) {
    for (const CIndex idx : bucket) {
      if (idx >= values_.size()) {
        audit::fail(kStructure, "bucket holds out-of-range entry " +
                                    std::to_string(idx));
      }
      if (filed[idx]) {
        audit::fail(kStructure,
                    "entry " + std::to_string(idx) + " filed twice");
      }
      const std::uint64_t home =
          hashCombine(static_cast<std::uint64_t>(gridKey(values_[idx].real())),
                      static_cast<std::uint64_t>(gridKey(values_[idx].imag())));
      if (key != home) {
        audit::fail(kStructure, "entry " + std::to_string(idx) +
                                    " filed in a foreign grid cell");
      }
      filed[idx] = 1;
      ++filedCount;
    }
  }
  if (filedCount != values_.size()) {
    audit::fail(kStructure,
                std::to_string(values_.size() - filedCount) +
                    " entries are unreachable from the grid buckets");
  }
  // Dedup: within-tolerance values have grid keys at most one cell apart
  // (cell = 16·tolerance), so probing the neighbors mirrors lookup exactly.
  for (CIndex i = 0; i < values_.size(); ++i) {
    const std::int64_t kr = gridKey(values_[i].real());
    const std::int64_t ki = gridKey(values_[i].imag());
    for (std::int64_t dr = -1; dr <= 1; ++dr) {
      for (std::int64_t di = -1; di <= 1; ++di) {
        const std::uint64_t key =
            hashCombine(static_cast<std::uint64_t>(kr + dr),
                        static_cast<std::uint64_t>(ki + di));
        const auto it = buckets_.find(key);
        if (it == buckets_.end()) continue;
        for (const CIndex j : it->second) {
          if (j <= i) continue;
          if (std::abs(values_[j].real() - values_[i].real()) < kTolerance &&
              std::abs(values_[j].imag() - values_[i].imag()) < kTolerance) {
            audit::fail(kStructure, "dedup violation: entries " +
                                        std::to_string(i) + " and " +
                                        std::to_string(j) +
                                        " are within the intern tolerance");
          }
        }
      }
    }
  }
}

CIndex ComplexTable::mul(CIndex a, CIndex b) {
  if (a == 0 || b == 0) return 0;
  if (a == 1) return b;
  if (b == 1) return a;
  return lookup(values_[a] * values_[b]);
}

CIndex ComplexTable::add(CIndex a, CIndex b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return lookup(values_[a] + values_[b]);
}

CIndex ComplexTable::div(CIndex a, CIndex b) {
  if (a == 0) return 0;
  if (b == 1) return a;
  return lookup(values_[a] / values_[b]);
}

}  // namespace sliq::qmdd
