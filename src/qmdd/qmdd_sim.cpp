#include "qmdd/qmdd_sim.hpp"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "circuit/optimizer.hpp"
#include "support/assert.hpp"
#include "support/serialize.hpp"

namespace sliq::qmdd {

namespace {

struct U2 {
  Complex m[4];  // row-major
};

// Shared Table I constants (circuit/gate.cpp) — one definition of 1/√2 and
// ω for every dense engine, so cross-engine differential tests compare the
// exact same matrices.
U2 gateMatrix(GateKind kind) {
  SLIQ_REQUIRE(kind != GateKind::kMeasure && kind != GateKind::kReset,
               "measure/reset are not unitary gates — dynamic circuits "
               "execute through Engine::runDynamic");
  U2 u;
  gateUnitary2x2(kind, u.m);
  return u;
}

const Complex kIdentityBlock[4] = {1, 0, 0, 1};
const Complex kProjectOne[4] = {0, 0, 0, 1};

}  // namespace

QmddSimulator::QmddSimulator(unsigned numQubits, std::uint64_t basisState)
    : QmddSimulator(numQubits, basisState, Config{}) {}

QmddSimulator::QmddSimulator(unsigned numQubits, std::uint64_t basisState,
                             const Config& config)
    : n_(numQubits), mgr_(config.dd) {
  SLIQ_REQUIRE(numQubits >= 1, "need at least one qubit");
  std::vector<bool> basis(n_);
  for (unsigned q = 0; q < n_ && q < 64; ++q)
    basis[q] = ((basisState >> q) & 1) != 0;
  mgr_.setRoot(mgr_.makeBasisState(n_, basis));
}

void QmddSimulator::applyControlledU(const Complex u[4],
                                     const std::vector<unsigned>& controls,
                                     unsigned target) {
  // M = I + (⊗_{c} P1) ⊗_{target} (U − I) ⊗ I elsewhere.
  const Complex uMinusI[4] = {u[0] - 1.0, u[1], u[2], u[3] - 1.0};
  std::vector<const Complex*> blocks(n_, kIdentityBlock);
  for (unsigned c : controls) blocks[c] = kProjectOne;
  blocks[target] = uMinusI;
  const MEdge kron = mgr_.makeKronecker(n_, blocks);
  const MEdge gate = mgr_.mAdd(mgr_.makeIdentity(n_), kron);
  mgr_.setRoot(mgr_.mvMultiply(gate, mgr_.root()));
}

void QmddSimulator::applyGate(const Gate& gate) {
  validateGate(gate, n_);
  mgr_.gcIfNeeded();
  if (gate.kind == GateKind::kSwap) {
    // SWAP(a,b) = CX(b→a) · CX(a→b) · CX(b→a); Fredkin adds the controls to
    // the middle CX (textbook decomposition).
    const unsigned a = gate.targets[0];
    const unsigned b = gate.targets[1];
    const U2 x = gateMatrix(GateKind::kX);
    applyControlledU(x.m, {b}, a);
    std::vector<unsigned> middle = gate.controls;
    middle.push_back(a);
    applyControlledU(x.m, middle, b);
    applyControlledU(x.m, {b}, a);
    return;
  }
  const U2 u = gateMatrix(gate.kind);
  applyControlledU(u.m, gate.controls, gate.target());
}

void QmddSimulator::applyTwoQubitU(const Complex u[16], unsigned qLow,
                                   unsigned qHigh) {
  SLIQ_REQUIRE(qLow < qHigh && qHigh < n_, "bad two-qubit block support");
  mgr_.gcIfNeeded();
  // Gate DD = Σ_{r,c} E_{rc} at qHigh ⊗ (2×2 sub-block at qLow), identity
  // on every other level. All-zero sub-blocks contribute nothing and are
  // skipped (every diagonal fused block has two of them).
  bool haveSum = false;
  MEdge sum{};
  for (unsigned r = 0; r < 2; ++r) {
    for (unsigned c = 0; c < 2; ++c) {
      const Complex sub[4] = {u[(2 * r + 0) * 4 + (2 * c + 0)],
                              u[(2 * r + 0) * 4 + (2 * c + 1)],
                              u[(2 * r + 1) * 4 + (2 * c + 0)],
                              u[(2 * r + 1) * 4 + (2 * c + 1)]};
      if (sub[0] == Complex{} && sub[1] == Complex{} && sub[2] == Complex{} &&
          sub[3] == Complex{}) {
        continue;
      }
      Complex outer[4] = {0, 0, 0, 0};
      outer[r * 2 + c] = 1;
      std::vector<const Complex*> blocks(n_, kIdentityBlock);
      blocks[qHigh] = outer;
      blocks[qLow] = sub;
      const MEdge term = mgr_.makeKronecker(n_, blocks);
      sum = haveSum ? mgr_.mAdd(sum, term) : term;
      haveSum = true;
    }
  }
  SLIQ_CHECK(haveSum, "two-qubit block is the zero matrix");
  mgr_.setRoot(mgr_.mvMultiply(sum, mgr_.root()));
}

void QmddSimulator::applyFusedOp(const FusedOp& op) {
  switch (op.kind) {
    case FusedOp::Kind::kGate:
      applyGate(op.gate);
      return;
    case FusedOp::Kind::k1q:
      mgr_.gcIfNeeded();
      applyControlledU(op.m1.data(), {}, op.q0);
      return;
    case FusedOp::Kind::k2q:
      applyTwoQubitU(op.m2.data(), op.q0, op.q1);
      return;
  }
}

void QmddSimulator::run(const QuantumCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == n_, "circuit width mismatch");
  for (const Gate& g : circuit.gates()) applyGate(g);
}

void QmddSimulator::runFused(const FusedCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == n_, "circuit width mismatch");
  for (const FusedOp& op : circuit.ops()) applyFusedOp(op);
}

Complex QmddSimulator::amplitude(std::uint64_t basisState) {
  return mgr_.getAmplitude(mgr_.root(), n_, basisState);
}

double QmddSimulator::totalProbability() {
  return mgr_.totalProbability(mgr_.root(), n_);
}

double QmddSimulator::probabilityOne(unsigned qubit) {
  return mgr_.probabilityOne(mgr_.root(), n_, qubit);
}

bool QmddSimulator::measure(unsigned qubit, double random) {
  SLIQ_REQUIRE(random >= 0.0 && random < 1.0, "random must be in [0,1)");
  const double p1 = probabilityOne(qubit);
  const bool outcome = random < p1;
  mgr_.setRoot(mgr_.collapse(mgr_.root(), n_, qubit, outcome));
  return outcome;
}

bool QmddSimulator::reset(unsigned qubit, double random) {
  const bool was = measure(qubit, random);
  if (was) applyGate(Gate{GateKind::kX, {qubit}, {}});
  return was;
}

std::uint64_t QmddSimulator::sampleAll(Rng& rng) {
  std::unordered_map<NodeId, double> memo;
  return mgr_.sampleOnce(mgr_.root(), n_, rng, memo);
}

std::vector<std::uint64_t> QmddSimulator::sampleShots(unsigned count,
                                                      Rng& rng) {
  std::vector<std::uint64_t> shots;
  shots.reserve(count);
  std::unordered_map<NodeId, double> memo;  // shared across the batch
  for (unsigned s = 0; s < count; ++s)
    shots.push_back(mgr_.sampleOnce(mgr_.root(), n_, rng, memo));
  return shots;
}

double QmddSimulator::expectationPauli(
    const std::vector<std::uint8_t>& paulis) {
  const double norm = totalProbability();
  SLIQ_CHECK(norm > 0, "zero state has no expectation values");
  // ⟨P⟩ of a Hermitian Pauli string is real; the imaginary part the double
  // arithmetic leaves behind is rounding noise and is dropped with it.
  return mgr_.pauliExpectation(mgr_.root(), n_, paulis).real() / norm;
}

bool QmddSimulator::isNormalized(double tolerance) {
  return std::abs(totalProbability() - 1.0) <= tolerance;
}

// ---- snapshots (DESIGN.md §12) ---------------------------------------------
//
// Payload layout (`sliq.state.v1`, representation "qmdd"):
//
//   u32 numQubits        must match the receiving simulator
//   u64 nodeCount        vector nodes reachable from the registered root
//   nodeCount × record   children-first:
//                          u32 level,
//                          2 × (u32 ref, f64 re, f64 im)   |0⟩/|1⟩ cofactors
//   root record          u32 ref, f64 re, f64 im
//
// A ref is 0xffffffff for the terminal, otherwise the (0-based) index of an
// earlier record. Weights travel as explicit doubles — re-interning them
// into the loader's ComplexTable reproduces the same entries bit for bit
// because the audit guarantees table entries sit pairwise farther apart
// than the intern tolerance.

void QmddSimulator::saveStatePayload(serialize::Writer& out) {
  out.u32(n_);

  // Children-first walk of the root cone (levels strictly decrease, so an
  // explicit stack with an expansion flag suffices).
  std::unordered_map<NodeId, std::uint32_t> localIds;
  std::vector<NodeId> order;
  std::vector<std::pair<NodeId, bool>> stack;
  if (mgr_.root().node != kTerminal) stack.emplace_back(mgr_.root().node, false);
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (localIds.count(id) != 0) continue;
    if (expanded) {
      localIds.emplace(id, static_cast<std::uint32_t>(order.size()));
      order.push_back(id);
      continue;
    }
    stack.emplace_back(id, true);
    const VNode& node = mgr_.vnode(id);
    for (const VEdge& child : node.e) {
      if (child.node != kTerminal && localIds.count(child.node) == 0) {
        stack.emplace_back(child.node, false);
      }
    }
  }

  const ComplexTable& ct = mgr_.complexTable();
  const auto writeEdge = [&](const VEdge& e) {
    out.u32(e.node == kTerminal ? kTerminal : localIds.at(e.node));
    const Complex w = ct.value(e.w);
    out.f64(w.real());
    out.f64(w.imag());
  };
  out.u64(order.size());
  for (const NodeId id : order) {
    const VNode& node = mgr_.vnode(id);
    out.u32(static_cast<std::uint32_t>(node.level));
    writeEdge(node.e[0]);
    writeEdge(node.e[1]);
  }
  writeEdge(mgr_.root());
}

void QmddSimulator::loadStatePayload(serialize::Reader& in) {
  const std::uint32_t n = in.u32("qmdd.numQubits");
  if (n != n_) {
    throw serialize::SerializationError(
        "snapshot field 'qmdd.numQubits': payload says " + std::to_string(n) +
        " qubit(s) but the simulator has " + std::to_string(n_));
  }
  const std::uint64_t nodeCount = in.u64("qmdd.nodeCount");

  // Rebuild bottom-up through makeVNode: saved child weights compose with
  // the built child's own top weight (exactly 1 for a normalized snapshot),
  // and makeVNode re-derives the normalization — so a corrupt file can at
  // worst produce a *valid* diagram of the wrong state, which the checksum
  // has already ruled out. Nothing touches the registered root until the
  // final setRoot, so a throw mid-way leaves the state unchanged (the
  // orphaned nodes are swept by the next collection).
  ComplexTable& ct = mgr_.complexTable();
  std::vector<VEdge> built;
  std::vector<std::int32_t> levels;
  const auto readEdge = [&](std::int32_t parentLevel, const char* field) {
    const std::uint32_t ref = in.u32(field);
    const double re = in.f64(field);
    const double im = in.f64(field);
    const CIndex w = ct.lookup(Complex(re, im));
    if (ref == kTerminal) {
      // Zero-weight edges point at the terminal from any level; nonzero
      // edges only from level 0 (the audit's full-depth invariant).
      if (parentLevel != 0 && !ct.isZero(w)) {
        throw serialize::SerializationError(
            "snapshot field '" + std::string(field) + "' at byte offset " +
            std::to_string(in.offset()) +
            ": nonzero-weight terminal child under level " +
            std::to_string(parentLevel) + " breaks the full-depth invariant");
      }
      return VEdge{kTerminal, w};
    }
    if (ct.isZero(w)) {
      throw serialize::SerializationError(
          "snapshot field '" + std::string(field) + "' at byte offset " +
          std::to_string(in.offset()) +
          ": zero-weight child must point at the terminal, not node record " +
          std::to_string(ref));
    }
    if (ref >= built.size()) {
      throw serialize::SerializationError(
          "snapshot field '" + std::string(field) + "' at byte offset " +
          std::to_string(in.offset()) + ": ref " + std::to_string(ref) +
          " points past the " + std::to_string(built.size()) +
          " node(s) defined so far (children must precede parents)");
    }
    if (levels[ref] != parentLevel - 1) {
      throw serialize::SerializationError(
          "snapshot field '" + std::string(field) + "' at byte offset " +
          std::to_string(in.offset()) + ": child at level " +
          std::to_string(levels[ref]) + " under level " +
          std::to_string(parentLevel) + " breaks the full-depth invariant");
    }
    return VEdge{built[ref].node, ct.mul(w, built[ref].w)};
  };
  for (std::uint64_t i = 0; i < nodeCount; ++i) {
    const std::uint32_t level = in.u32("qmdd.node.level");
    if (level >= n_) {
      throw serialize::SerializationError(
          "snapshot field 'qmdd.node.level' at byte offset " +
          std::to_string(in.offset()) + ": level " + std::to_string(level) +
          " out of range for " + std::to_string(n_) + " qubit(s)");
    }
    const auto l = static_cast<std::int32_t>(level);
    const VEdge e0 = readEdge(l, "qmdd.node.e0");
    const VEdge e1 = readEdge(l, "qmdd.node.e1");
    built.push_back(mgr_.makeVNode(l, e0, e1));
    levels.push_back(l);
  }
  const VEdge root = readEdge(static_cast<std::int32_t>(n_), "qmdd.root");

  mgr_.setRoot(root);
  mgr_.gcIfNeeded();
}

std::vector<std::complex<double>> QmddSimulator::statevector(
    std::uint64_t budgetBytes) {
  requireDenseBudget(n_, budgetBytes);
  std::vector<std::complex<double>> out(std::uint64_t{1} << n_,
                                        std::complex<double>(0.0, 0.0));
  const ComplexTable& ct = mgr_.complexTable();
  // Weighted descent accumulating downward edge-weight products; a zero
  // weight prunes the whole subtree, so sparse states cost far fewer than
  // 2^n visits. Terminal edges with nonzero weight only occur below level 0
  // (the full-depth invariant), where the subtree is the single entry.
  const auto fill = [&](const auto& self, VEdge e, std::uint64_t base,
                        Complex weight) -> void {
    const Complex w = weight * ct.value(e.w);
    if (w.real() == 0.0 && w.imag() == 0.0) return;
    if (e.node == kTerminal) {
      out[base] = w;
      return;
    }
    const VNode& node = mgr_.vnode(e.node);
    self(self, node.e[0], base, w);
    self(self, node.e[1], base | (std::uint64_t{1} << node.level), w);
  };
  fill(fill, mgr_.root(), 0, Complex(1.0, 0.0));
  return out;
}

void QmddSimulator::loadDense(
    const std::vector<std::complex<double>>& amplitudes) {
  SLIQ_REQUIRE(amplitudes.size() == (std::uint64_t{1} << n_),
               "dense amplitude array size must be 2^numQubits");
  // Bottom-up rebuild through makeVNode, exactly like loadStatePayload:
  // the unique table re-merges equal suffixes (a product state costs O(n)
  // distinct nodes) and makeVNode re-derives the edge normalization.
  // Nothing touches the registered root until the final setRoot, so a
  // throw mid-way leaves the state unchanged.
  ComplexTable& ct = mgr_.complexTable();
  const auto build = [&](const auto& self, std::int32_t level,
                         std::uint64_t base) -> VEdge {
    if (level < 0) {
      return VEdge{kTerminal, ct.lookup(Complex(amplitudes[base]))};
    }
    const VEdge e0 = self(self, level - 1, base);
    const VEdge e1 =
        self(self, level - 1, base | (std::uint64_t{1} << level));
    return mgr_.makeVNode(level, e0, e1);
  };
  mgr_.setRoot(build(build, static_cast<std::int32_t>(n_) - 1, 0));
  mgr_.gcIfNeeded();
}

}  // namespace sliq::qmdd
