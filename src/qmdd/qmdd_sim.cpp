#include "qmdd/qmdd_sim.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace sliq::qmdd {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;
const Complex kI{0.0, 1.0};

struct U2 {
  Complex m[4];  // row-major
};

U2 gateMatrix(GateKind kind) {
  const Complex omega = std::polar(1.0, M_PI / 4);
  switch (kind) {
    case GateKind::kX: return {{0, 1, 1, 0}};
    case GateKind::kY: return {{0, -kI, kI, 0}};
    case GateKind::kZ: return {{1, 0, 0, -1}};
    case GateKind::kH: return {{kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2}};
    case GateKind::kS: return {{1, 0, 0, kI}};
    case GateKind::kSdg: return {{1, 0, 0, -kI}};
    case GateKind::kT: return {{1, 0, 0, omega}};
    case GateKind::kTdg: return {{1, 0, 0, std::conj(omega)}};
    case GateKind::kRx90:
      return {{kInvSqrt2, -kI * kInvSqrt2, -kI * kInvSqrt2, kInvSqrt2}};
    case GateKind::kRy90:
      return {{kInvSqrt2, -kInvSqrt2, kInvSqrt2, kInvSqrt2}};
    case GateKind::kCnot: return {{0, 1, 1, 0}};
    case GateKind::kCz: return {{1, 0, 0, -1}};
    case GateKind::kSwap: break;
    case GateKind::kMeasure:
    case GateKind::kReset:
      SLIQ_REQUIRE(false,
                   "measure/reset are not unitary gates — dynamic circuits "
                   "execute through Engine::runDynamic");
      break;
  }
  SLIQ_CHECK(false, "no single-qubit matrix for this gate");
  return {};
}

const Complex kIdentityBlock[4] = {1, 0, 0, 1};
const Complex kProjectOne[4] = {0, 0, 0, 1};

}  // namespace

QmddSimulator::QmddSimulator(unsigned numQubits, std::uint64_t basisState)
    : QmddSimulator(numQubits, basisState, Config{}) {}

QmddSimulator::QmddSimulator(unsigned numQubits, std::uint64_t basisState,
                             const Config& config)
    : n_(numQubits), mgr_(config.dd) {
  SLIQ_REQUIRE(numQubits >= 1, "need at least one qubit");
  std::vector<bool> basis(n_);
  for (unsigned q = 0; q < n_ && q < 64; ++q)
    basis[q] = ((basisState >> q) & 1) != 0;
  mgr_.setRoot(mgr_.makeBasisState(n_, basis));
}

void QmddSimulator::applyControlledU(const Complex u[4],
                                     const std::vector<unsigned>& controls,
                                     unsigned target) {
  // M = I + (⊗_{c} P1) ⊗_{target} (U − I) ⊗ I elsewhere.
  const Complex uMinusI[4] = {u[0] - 1.0, u[1], u[2], u[3] - 1.0};
  std::vector<const Complex*> blocks(n_, kIdentityBlock);
  for (unsigned c : controls) blocks[c] = kProjectOne;
  blocks[target] = uMinusI;
  const MEdge kron = mgr_.makeKronecker(n_, blocks);
  const MEdge gate = mgr_.mAdd(mgr_.makeIdentity(n_), kron);
  mgr_.setRoot(mgr_.mvMultiply(gate, mgr_.root()));
}

void QmddSimulator::applyGate(const Gate& gate) {
  validateGate(gate, n_);
  mgr_.gcIfNeeded();
  if (gate.kind == GateKind::kSwap) {
    // SWAP(a,b) = CX(b→a) · CX(a→b) · CX(b→a); Fredkin adds the controls to
    // the middle CX (textbook decomposition).
    const unsigned a = gate.targets[0];
    const unsigned b = gate.targets[1];
    const U2 x = gateMatrix(GateKind::kX);
    applyControlledU(x.m, {b}, a);
    std::vector<unsigned> middle = gate.controls;
    middle.push_back(a);
    applyControlledU(x.m, middle, b);
    applyControlledU(x.m, {b}, a);
    return;
  }
  const U2 u = gateMatrix(gate.kind);
  applyControlledU(u.m, gate.controls, gate.target());
}

void QmddSimulator::run(const QuantumCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == n_, "circuit width mismatch");
  for (const Gate& g : circuit.gates()) applyGate(g);
}

Complex QmddSimulator::amplitude(std::uint64_t basisState) {
  return mgr_.getAmplitude(mgr_.root(), n_, basisState);
}

double QmddSimulator::totalProbability() {
  return mgr_.totalProbability(mgr_.root(), n_);
}

double QmddSimulator::probabilityOne(unsigned qubit) {
  return mgr_.probabilityOne(mgr_.root(), n_, qubit);
}

bool QmddSimulator::measure(unsigned qubit, double random) {
  SLIQ_REQUIRE(random >= 0.0 && random < 1.0, "random must be in [0,1)");
  const double p1 = probabilityOne(qubit);
  const bool outcome = random < p1;
  mgr_.setRoot(mgr_.collapse(mgr_.root(), n_, qubit, outcome));
  return outcome;
}

bool QmddSimulator::reset(unsigned qubit, double random) {
  const bool was = measure(qubit, random);
  if (was) applyGate(Gate{GateKind::kX, {qubit}, {}});
  return was;
}

std::uint64_t QmddSimulator::sampleAll(Rng& rng) {
  std::unordered_map<NodeId, double> memo;
  return mgr_.sampleOnce(mgr_.root(), n_, rng, memo);
}

std::vector<std::uint64_t> QmddSimulator::sampleShots(unsigned count,
                                                      Rng& rng) {
  std::vector<std::uint64_t> shots;
  shots.reserve(count);
  std::unordered_map<NodeId, double> memo;  // shared across the batch
  for (unsigned s = 0; s < count; ++s)
    shots.push_back(mgr_.sampleOnce(mgr_.root(), n_, rng, memo));
  return shots;
}

double QmddSimulator::expectationPauli(
    const std::vector<std::uint8_t>& paulis) {
  const double norm = totalProbability();
  SLIQ_CHECK(norm > 0, "zero state has no expectation values");
  // ⟨P⟩ of a Hermitian Pauli string is real; the imaginary part the double
  // arithmetic leaves behind is rounding noise and is dropped with it.
  return mgr_.pauliExpectation(mgr_.root(), n_, paulis).real() / norm;
}

bool QmddSimulator::isNormalized(double tolerance) {
  return std::abs(totalProbability() - 1.0) <= tolerance;
}

}  // namespace sliq::qmdd
