// QMDD package: vector and matrix decision diagrams with complex edge
// weights (Niemann et al., TCAD'16; Zulehner & Wille, TCAD'19) — the data
// structure behind DDSIM, rebuilt as the paper's baseline.
//
// Conventions:
//  * Full-depth diagrams: a node at level L has children exactly at L-1
//    (terminal below level 0); no level skipping.
//  * Vector nodes have 2 children (|0⟩, |1⟩ cofactors); matrix nodes have 4
//    (blocks row-major: e[2r + c]).
//  * Edges carry an interned complex weight; nodes are normalized by the
//    largest-magnitude child weight (leftmost on ties), weights propagate up.
//  * Mark-sweep garbage collection from the registered roots.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "qmdd/complex_table.hpp"
#include "support/rng.hpp"

namespace sliq::metrics {
class Registry;
}

namespace sliq::qmdd {

class QmddLimitError : public std::runtime_error {
 public:
  explicit QmddLimitError(const std::string& what)
      : std::runtime_error(what) {}
};

using NodeId = std::uint32_t;
constexpr NodeId kTerminal = 0xffffffffu;

struct VEdge {
  NodeId node = kTerminal;
  CIndex w = 0;  // weight index in the ComplexTable
};

struct MEdge {
  NodeId node = kTerminal;
  CIndex w = 0;
};

struct VNode {
  std::int32_t level;  // qubit index of this node
  VEdge e[2];
  bool mark = false;
};

struct MNode {
  std::int32_t level;
  MEdge e[4];
  bool mark = false;
};

class QmddManager {
 public:
  struct Config {
    std::size_t maxNodes = 8u << 20;  // across vector + matrix nodes
    std::size_t gcThreshold = 1u << 18;
  };

  /// Cumulative operation-cache telemetry across the three memo tables
  /// (vAdd, mAdd, mvMultiply probe sites) plus GC entries — the QMDD
  /// counterpart of bdd::ManagerStats (hits <= lookups always).
  struct CacheStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t gcRuns = 0;
  };

  QmddManager();
  explicit QmddManager(const Config& config);
  QmddManager(const QmddManager&) = delete;
  QmddManager& operator=(const QmddManager&) = delete;
  ~QmddManager();

  ComplexTable& complexTable() { return ct_; }
  /// Interned distinct complex values (telemetry: run-report gauge).
  std::size_t complexTableSize() const { return ct_.size(); }

  // ---- vector DDs ---------------------------------------------------------
  /// |basis⟩ over `n` qubits (bit q of `basis` = qubit q; level n-1 on top).
  VEdge makeBasisState(unsigned n, const std::vector<bool>& basis);
  VEdge makeVNode(std::int32_t level, VEdge e0, VEdge e1);
  VEdge vAdd(VEdge a, VEdge b);
  Complex getAmplitude(VEdge root, unsigned n, std::uint64_t basis);

  // ---- matrix DDs ---------------------------------------------------------
  MEdge makeMNode(std::int32_t level, const MEdge children[4]);
  /// Identity over levels [0, n).
  MEdge makeIdentity(unsigned n);
  /// Kronecker chain: per-level 2x2 blocks (level n-1 ... 0), where each
  /// block is given row-major. Used for the controlled-gate construction
  /// M = I + (⊗ controls P1) ⊗ (U − I).
  MEdge makeKronecker(unsigned n, const std::vector<const Complex*>& blocks);
  MEdge mAdd(MEdge a, MEdge b);

  /// Matrix-vector product (the state update v' = M·v).
  VEdge mvMultiply(MEdge m, VEdge v);

  // ---- analysis / measurement ---------------------------------------------
  /// Σ|amplitude|² under `root` (1.0 up to accumulated rounding error —
  /// deviations are exactly the "numerical error" cases of the paper).
  double totalProbability(VEdge root, unsigned n);
  double probabilityOne(VEdge root, unsigned n, unsigned qubit);
  /// Collapse: zero out the ¬outcome branch of `qubit` and renormalize.
  VEdge collapse(VEdge root, unsigned n, unsigned qubit, bool outcome);
  /// One full basis-state sample (bit q of the result = outcome of qubit q)
  /// by weighted top-down descent, without collapsing anything. `weightMemo`
  /// caches the downward edge-weight products; share it across shots of an
  /// unchanged root so a batch costs one weight pass plus n steps per shot.
  /// Consumes exactly one uniform deviate per qubit, top level first.
  std::uint64_t sampleOnce(VEdge root, unsigned n, Rng& rng,
                           std::unordered_map<NodeId, double>& weightMemo);

  /// ⟨v|P|v⟩ (UN-normalized) for the Pauli string P given per qubit by
  /// `paulis` (0=I, 1=X, 2=Y, 3=Z, indexed by qubit level), by one weighted
  /// descent over node *pairs*: inner(a, b) = ⟨v_a|P_below|v_b⟩, memoized on
  /// the (bra node, ket node) pair. Diagonal factors pair same-branch
  /// children, X/Y pair opposite branches (the off-diagonal couplings),
  /// Y adds the ±i bookkeeping. Does not collapse or mutate the diagram.
  Complex pauliExpectation(VEdge root, unsigned n,
                           const std::vector<std::uint8_t>& paulis);

  // ---- resource management -------------------------------------------------
  /// Roots registered here survive garbage collection.
  void setRoot(VEdge root) { root_ = root; }
  VEdge root() const { return root_; }
  /// Read-only node access (valid while the node is live) — used by the
  /// snapshot writer to walk the registered root's cone.
  const VNode& vnode(NodeId id) const { return vNodes_[id]; }
  void garbageCollect();
  /// Collects when the node count exceeds the adaptive threshold. Call only
  /// between operations (matrix DDs do not survive collection).
  void gcIfNeeded() { maybeGc(); }
  std::size_t liveNodes() const { return vNodes_.size() + mNodes_.size(); }
  std::size_t peakNodes() const { return peakNodes_; }
  const CacheStats& cacheStats() const { return cacheStats_; }
  /// Approximate bytes held by nodes + tables.
  std::size_t memoryBytes() const;

  /// Observability hook (DESIGN.md §11): when set, each garbage collection
  /// emits a "qmdd.gc" instant event. Never owned; nullptr disables.
  void setMetrics(metrics::Registry* registry) { metricsRegistry_ = registry; }

  /// Deep structural audit (DESIGN.md §10): complex-table dedup/bucket
  /// integrity, unique-table filing (every node filed exactly once under
  /// its own key, no duplicate (level, children) tuples), edge-weight
  /// normalization (each node has a child with weight exactly 1; zero
  /// weights point at the terminal), full-depth level structure, and cache
  /// entry validity. When `numQubits` > 0, also checks the registered
  /// root's depth. Throws audit::AuditError naming the offending node.
  void auditInvariants(unsigned numQubits = 0) const;

 private:
  friend struct AuditCorruptor;  // test-only deliberate corruption hooks
  void maybeGc();
  double nodeWeight(VEdge e, std::unordered_map<NodeId, double>& memo);

  Config config_;
  ComplexTable ct_;
  std::vector<VNode> vNodes_;
  std::vector<MNode> mNodes_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> vUnique_;
  std::unordered_map<std::uint64_t, std::vector<NodeId>> mUnique_;
  std::unordered_map<std::uint64_t, VEdge> addCache_;
  std::unordered_map<std::uint64_t, VEdge> mvCache_;
  std::unordered_map<std::uint64_t, MEdge> mAddCache_;
  VEdge root_;
  std::size_t peakNodes_ = 0;
  std::size_t gcThreshold_;
  CacheStats cacheStats_;
  metrics::Registry* metricsRegistry_ = nullptr;
};

}  // namespace sliq::qmdd
