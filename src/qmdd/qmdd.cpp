#include "qmdd/qmdd.hpp"

#include <cmath>
#include <string>

#include "support/assert.hpp"
#include "support/audit.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"

namespace sliq::qmdd {

namespace {

std::uint64_t vKey(std::int32_t level, const VEdge& e0, const VEdge& e1) {
  return hash3(hashCombine(static_cast<std::uint64_t>(level), e0.node),
               e0.w, hashCombine(e1.node, e1.w));
}

std::uint64_t mKey(std::int32_t level, const MEdge children[4]) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(level));
  for (int i = 0; i < 4; ++i)
    h = hash3(h, children[i].node, children[i].w);
  return h;
}

std::uint64_t pairKey(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                      std::uint64_t d) {
  return hashCombine(hash3(a, b, c), d);
}

}  // namespace

QmddManager::QmddManager() : QmddManager(Config{}) {}

QmddManager::QmddManager(const Config& config)
    : config_(config), gcThreshold_(config.gcThreshold) {
  vNodes_.reserve(1u << 12);
  mNodes_.reserve(1u << 12);
  audit::noteLiveStructure(audit::StructureKind::kQmddManager);
}

QmddManager::~QmddManager() {
  audit::noteDeadStructure(audit::StructureKind::kQmddManager);
}

VEdge QmddManager::makeVNode(std::int32_t level, VEdge e0, VEdge e1) {
  if (ct_.isZero(e0.w) && ct_.isZero(e1.w)) return VEdge{kTerminal, 0};
  // Normalize by the largest-magnitude child weight (leftmost on ties).
  CIndex norm;
  if (ct_.isZero(e0.w)) {
    norm = e1.w;
  } else if (ct_.isZero(e1.w)) {
    norm = e0.w;
  } else {
    norm = std::abs(ct_.value(e0.w)) + ComplexTable::kTolerance >=
                   std::abs(ct_.value(e1.w))
               ? e0.w
               : e1.w;
  }
  e0.w = ct_.div(e0.w, norm);
  e1.w = ct_.div(e1.w, norm);
  if (ct_.isZero(e0.w)) e0.node = kTerminal;
  if (ct_.isZero(e1.w)) e1.node = kTerminal;

  const std::uint64_t key = vKey(level, e0, e1);
  auto& bucket = vUnique_[key];
  for (const NodeId id : bucket) {
    const VNode& n = vNodes_[id];
    if (n.level == level && n.e[0].node == e0.node && n.e[0].w == e0.w &&
        n.e[1].node == e1.node && n.e[1].w == e1.w)
      return VEdge{id, norm};
  }
  if (liveNodes() >= config_.maxNodes)
    throw QmddLimitError("QMDD node limit exceeded");
  const NodeId id = static_cast<NodeId>(vNodes_.size());
  vNodes_.push_back(VNode{level, {e0, e1}, false});
  bucket.push_back(id);
  peakNodes_ = std::max(peakNodes_, liveNodes());
  return VEdge{id, norm};
}

VEdge QmddManager::makeBasisState(unsigned n, const std::vector<bool>& basis) {
  SLIQ_REQUIRE(basis.size() == n, "basis width mismatch");
  VEdge cur{kTerminal, ct_.one()};
  for (unsigned level = 0; level < n; ++level) {
    const VEdge zeroEdge{kTerminal, ct_.zero()};
    cur = basis[level]
              ? makeVNode(static_cast<std::int32_t>(level), zeroEdge, cur)
              : makeVNode(static_cast<std::int32_t>(level), cur, zeroEdge);
  }
  return cur;
}

VEdge QmddManager::vAdd(VEdge a, VEdge b) {
  if (ct_.isZero(a.w)) return b;
  if (ct_.isZero(b.w)) return a;
  if (a.node == kTerminal && b.node == kTerminal)
    return VEdge{kTerminal, ct_.add(a.w, b.w)};
  SLIQ_ASSERT(a.node != kTerminal && b.node != kTerminal);
  SLIQ_ASSERT(vNodes_[a.node].level == vNodes_[b.node].level);
  const std::uint64_t key = pairKey(a.node, a.w, b.node, b.w);
  ++cacheStats_.lookups;
  const auto cached = addCache_.find(key);
  if (cached != addCache_.end()) {
    ++cacheStats_.hits;
    return cached->second;
  }

  // Copy: recursive makeVNode calls may reallocate the node vector.
  const VNode na = vNodes_[a.node];
  const VNode nb = vNodes_[b.node];
  const std::int32_t level = na.level;
  VEdge children[2];
  for (int c = 0; c < 2; ++c) {
    const VEdge ea{na.e[c].node, ct_.mul(a.w, na.e[c].w)};
    const VEdge eb{nb.e[c].node, ct_.mul(b.w, nb.e[c].w)};
    children[c] = vAdd(ea, eb);
  }
  const VEdge result = makeVNode(level, children[0], children[1]);
  addCache_[key] = result;
  return result;
}

Complex QmddManager::getAmplitude(VEdge root, unsigned n,
                                  std::uint64_t basis) {
  Complex amp = ct_.value(root.w);
  VEdge cur = root;
  for (unsigned level = n; level-- > 0;) {
    if (cur.node == kTerminal) return ct_.isZero(cur.w) ? Complex{0, 0} : amp;
    const VNode& node = vNodes_[cur.node];
    SLIQ_ASSERT(node.level == static_cast<std::int32_t>(level));
    cur = node.e[(basis >> level) & 1];
    amp *= ct_.value(cur.w);
    if (amp == Complex{0, 0}) return amp;
  }
  return amp;
}

MEdge QmddManager::makeMNode(std::int32_t level, const MEdge children[4]) {
  bool allZero = true;
  for (int i = 0; i < 4; ++i) allZero &= ct_.isZero(children[i].w);
  if (allZero) return MEdge{kTerminal, 0};
  CIndex norm = 0;
  double best = -1;
  for (int i = 0; i < 4; ++i) {
    if (ct_.isZero(children[i].w)) continue;
    const double mag = std::abs(ct_.value(children[i].w));
    if (mag > best + ComplexTable::kTolerance) {
      best = mag;
      norm = children[i].w;
    }
  }
  MEdge normalized[4];
  for (int i = 0; i < 4; ++i) {
    normalized[i].w = ct_.div(children[i].w, norm);
    normalized[i].node =
        ct_.isZero(normalized[i].w) ? kTerminal : children[i].node;
  }
  const std::uint64_t key = mKey(level, normalized);
  auto& bucket = mUnique_[key];
  for (const NodeId id : bucket) {
    const MNode& n = mNodes_[id];
    bool same = n.level == level;
    for (int i = 0; i < 4 && same; ++i)
      same = n.e[i].node == normalized[i].node && n.e[i].w == normalized[i].w;
    if (same) return MEdge{id, norm};
  }
  if (liveNodes() >= config_.maxNodes)
    throw QmddLimitError("QMDD node limit exceeded");
  const NodeId id = static_cast<NodeId>(mNodes_.size());
  MNode node;
  node.level = level;
  for (int i = 0; i < 4; ++i) node.e[i] = normalized[i];
  mNodes_.push_back(node);
  bucket.push_back(id);
  peakNodes_ = std::max(peakNodes_, liveNodes());
  return MEdge{id, norm};
}

MEdge QmddManager::makeIdentity(unsigned n) {
  MEdge cur{kTerminal, ct_.one()};
  for (unsigned level = 0; level < n; ++level) {
    const MEdge zero{kTerminal, ct_.zero()};
    const MEdge children[4] = {cur, zero, zero, cur};
    cur = makeMNode(static_cast<std::int32_t>(level), children);
  }
  return cur;
}

MEdge QmddManager::makeKronecker(unsigned n,
                                 const std::vector<const Complex*>& blocks) {
  SLIQ_REQUIRE(blocks.size() == n, "kronecker block count mismatch");
  MEdge cur{kTerminal, ct_.one()};
  for (unsigned level = 0; level < n; ++level) {
    MEdge children[4];
    for (int i = 0; i < 4; ++i) {
      const CIndex w = ct_.lookup(blocks[level][i]);
      children[i] = MEdge{ct_.isZero(w) ? kTerminal : cur.node,
                          ct_.mul(w, cur.w)};
    }
    cur = makeMNode(static_cast<std::int32_t>(level), children);
  }
  return cur;
}

MEdge QmddManager::mAdd(MEdge a, MEdge b) {
  if (ct_.isZero(a.w)) return b;
  if (ct_.isZero(b.w)) return a;
  if (a.node == kTerminal && b.node == kTerminal)
    return MEdge{kTerminal, ct_.add(a.w, b.w)};
  SLIQ_ASSERT(a.node != kTerminal && b.node != kTerminal);
  const std::uint64_t key = pairKey(a.node, a.w, b.node, b.w);
  ++cacheStats_.lookups;
  const auto cached = mAddCache_.find(key);
  if (cached != mAddCache_.end()) {
    ++cacheStats_.hits;
    return cached->second;
  }

  // Copy: recursive makeMNode calls may reallocate the node vector.
  const MNode na = mNodes_[a.node];
  const MNode nb = mNodes_[b.node];
  MEdge children[4];
  for (int i = 0; i < 4; ++i) {
    const MEdge ea{na.e[i].node, ct_.mul(a.w, na.e[i].w)};
    const MEdge eb{nb.e[i].node, ct_.mul(b.w, nb.e[i].w)};
    children[i] = mAdd(ea, eb);
  }
  const MEdge result = makeMNode(na.level, children);
  mAddCache_[key] = result;
  return result;
}

VEdge QmddManager::mvMultiply(MEdge m, VEdge v) {
  if (ct_.isZero(m.w) || ct_.isZero(v.w)) return VEdge{kTerminal, 0};
  if (m.node == kTerminal && v.node == kTerminal)
    return VEdge{kTerminal, ct_.mul(m.w, v.w)};
  SLIQ_ASSERT(m.node != kTerminal && v.node != kTerminal);
  // Factor the top weights out so the cache works on unit-weight operands.
  const std::uint64_t key = pairKey(m.node, v.node, 0x6d76, 0);
  ++cacheStats_.lookups;
  const auto cached = mvCache_.find(key);
  if (cached != mvCache_.end()) {
    ++cacheStats_.hits;
    VEdge r = cached->second;
    r.w = ct_.mul(r.w, ct_.mul(m.w, v.w));
    if (ct_.isZero(r.w)) return VEdge{kTerminal, 0};
    return r;
  }
  // Copy: recursive calls may reallocate both node vectors.
  const MNode mn = mNodes_[m.node];
  const VNode vn = vNodes_[v.node];
  SLIQ_ASSERT(mn.level == vn.level);
  VEdge rows[2];
  for (int r = 0; r < 2; ++r) {
    VEdge acc{kTerminal, 0};
    for (int c = 0; c < 2; ++c) {
      const MEdge me = mn.e[2 * r + c];
      const VEdge ve = vn.e[c];
      acc = vAdd(acc, mvMultiply(me, ve));
    }
    rows[r] = acc;
  }
  const VEdge unit = makeVNode(mn.level, rows[0], rows[1]);
  mvCache_[key] = unit;
  VEdge result = unit;
  result.w = ct_.mul(result.w, ct_.mul(m.w, v.w));
  if (ct_.isZero(result.w)) return VEdge{kTerminal, 0};
  return result;
}

// lint: memo-traversal — the memo keys node ids, which makeVNode/GC would
// invalidate mid-walk; this walk must stay read-only.
double QmddManager::nodeWeight(VEdge e,
                               std::unordered_map<NodeId, double>& memo) {
  if (ct_.isZero(e.w)) return 0.0;
  const double own = std::norm(ct_.value(e.w));
  if (e.node == kTerminal) return own;
  const auto it = memo.find(e.node);
  if (it != memo.end()) return own * it->second;
  const VNode& n = vNodes_[e.node];
  const double below = nodeWeight(n.e[0], memo) + nodeWeight(n.e[1], memo);
  memo.emplace(e.node, below);
  return own * below;
}

double QmddManager::totalProbability(VEdge root, unsigned n) {
  (void)n;
  std::unordered_map<NodeId, double> memo;
  return nodeWeight(root, memo);
}

double QmddManager::probabilityOne(VEdge root, unsigned n, unsigned qubit) {
  SLIQ_REQUIRE(qubit < n, "qubit out of range");
  std::unordered_map<NodeId, double> weightMemo;
  std::unordered_map<NodeId, double> oneMemo;
  // pOne(node) = Pr contribution below `node` restricted to qubit = 1,
  // excluding the incoming edge weight.
  auto pOne = [&](auto&& self, NodeId id) -> double {
    if (id == kTerminal) return 0.0;
    const auto it = oneMemo.find(id);
    if (it != oneMemo.end()) return it->second;
    const VNode& node = vNodes_[id];
    double result;
    if (node.level == static_cast<std::int32_t>(qubit)) {
      result = nodeWeight(node.e[1], weightMemo);
    } else {
      result = 0.0;
      for (int c = 0; c < 2; ++c) {
        if (ct_.isZero(node.e[c].w)) continue;
        result += std::norm(ct_.value(node.e[c].w)) *
                  self(self, node.e[c].node);
      }
    }
    oneMemo.emplace(id, result);
    return result;
  };
  if (ct_.isZero(root.w) || root.node == kTerminal) return 0.0;
  return std::norm(ct_.value(root.w)) * pOne(pOne, root.node);
}

std::uint64_t QmddManager::sampleOnce(
    VEdge root, unsigned n, Rng& rng,
    std::unordered_map<NodeId, double>& weightMemo) {
  SLIQ_CHECK(!ct_.isZero(root.w), "zero state cannot be sampled");
  std::uint64_t bits = 0;
  VEdge e = root;
  // Full-depth diagrams: the node at each step sits exactly at `level`
  // (qubit index), so the descent is a straight n-step walk.
  for (unsigned level = n; level-- > 0;) {
    SLIQ_CHECK(e.node != kTerminal, "diagram shallower than qubit count");
    const VNode& node = vNodes_[e.node];
    SLIQ_ASSERT(node.level == static_cast<std::int32_t>(level));
    const double w0 = nodeWeight(node.e[0], weightMemo);
    const double w1 = nodeWeight(node.e[1], weightMemo);
    const double sum = w0 + w1;
    SLIQ_CHECK(sum > 0, "zero-weight subtree cannot be sampled");
    const bool bit = rng.uniform() < w1 / sum;
    if (bit) bits |= std::uint64_t{1} << level;
    e = node.e[bit ? 1 : 0];
  }
  return bits;
}

Complex QmddManager::pauliExpectation(
    VEdge root, unsigned n, const std::vector<std::uint8_t>& paulis) {
  SLIQ_REQUIRE(paulis.size() == n, "pauli string width mismatch");
  // inner(bra, ket, level): ⟨v_bra| ⊗_{q<level} P_q |v_ket⟩ including both
  // edge weights (bra side conjugated). Memoized on the node pair — levels
  // are implied because vector DDs are full-depth.
  std::unordered_map<std::uint64_t, Complex> memo;
  auto inner = [&](auto&& self, VEdge bra, VEdge ket,
                   unsigned level) -> Complex {
    if (ct_.isZero(bra.w) || ct_.isZero(ket.w)) return {0, 0};
    const Complex base = std::conj(ct_.value(bra.w)) * ct_.value(ket.w);
    if (level == 0) return base;
    SLIQ_CHECK(bra.node != kTerminal && ket.node != kTerminal,
               "diagram shallower than qubit count");
    const std::uint64_t key =
        (std::uint64_t{bra.node} << 32) | ket.node;
    const auto it = memo.find(key);
    if (it != memo.end()) return base * it->second;
    const VNode& b = vNodes_[bra.node];
    const VNode& k = vNodes_[ket.node];
    SLIQ_ASSERT(b.level == static_cast<std::int32_t>(level) - 1 &&
                k.level == b.level);
    Complex below;
    switch (paulis[level - 1]) {
      case 1:  // X: ⟨0|X|1⟩ = ⟨1|X|0⟩ = 1
        below = self(self, b.e[0], k.e[1], level - 1) +
                self(self, b.e[1], k.e[0], level - 1);
        break;
      case 2:  // Y: Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩
        below = Complex{0, 1} * self(self, b.e[1], k.e[0], level - 1) -
                Complex{0, 1} * self(self, b.e[0], k.e[1], level - 1);
        break;
      case 3:  // Z: the |1⟩ branch enters negatively
        below = self(self, b.e[0], k.e[0], level - 1) -
                self(self, b.e[1], k.e[1], level - 1);
        break;
      default:  // I
        below = self(self, b.e[0], k.e[0], level - 1) +
                self(self, b.e[1], k.e[1], level - 1);
        break;
    }
    memo.emplace(key, below);
    return base * below;
  };
  return inner(inner, root, root, n);
}

VEdge QmddManager::collapse(VEdge root, unsigned n, unsigned qubit,
                            bool outcome) {
  const double pKeep = outcome ? probabilityOne(root, n, qubit)
                               : 1.0 - probabilityOne(root, n, qubit);
  SLIQ_CHECK(pKeep > 0, "collapse onto zero-probability outcome");
  auto rec = [&](auto&& self, VEdge e) -> VEdge {
    if (ct_.isZero(e.w) || e.node == kTerminal) return e;
    const VNode node = vNodes_[e.node];  // copy: makeVNode may reallocate
    VEdge e0 = node.e[0];
    VEdge e1 = node.e[1];
    if (node.level == static_cast<std::int32_t>(qubit)) {
      if (outcome) e0 = VEdge{kTerminal, 0};
      else e1 = VEdge{kTerminal, 0};
    } else {
      e0 = self(self, e0);
      e1 = self(self, e1);
    }
    VEdge rebuilt = makeVNode(node.level, e0, e1);
    rebuilt.w = ct_.mul(rebuilt.w, e.w);
    return rebuilt;
  };
  VEdge collapsed = rec(rec, root);
  collapsed.w =
      ct_.lookup(ct_.value(collapsed.w) / std::sqrt(pKeep));
  return collapsed;
}

void QmddManager::auditInvariants(unsigned numQubits) const {
  static const std::string kV = "qmdd-vector-table";
  static const std::string kM = "qmdd-matrix-table";
  ct_.auditInvariants();

  const auto checkWeight = [this](const std::string& structure, NodeId id,
                                  CIndex w) {
    if (w >= ct_.size()) {
      audit::fail(structure, "node " + std::to_string(id) +
                                 " references out-of-range weight " +
                                 std::to_string(w));
    }
  };

  // Vector unique table: every node filed exactly once under its own key;
  // no duplicate (level, child-edges) tuples within a bucket.
  std::vector<char> filed(vNodes_.size(), 0);
  std::size_t filedCount = 0;
  for (const auto& [key, bucket] : vUnique_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      if (id >= vNodes_.size()) {
        audit::fail(kV, "bucket holds out-of-range node " + std::to_string(id));
      }
      if (filed[id]) {
        audit::fail(kV, "node " + std::to_string(id) + " filed twice");
      }
      const VNode& n = vNodes_[id];
      if (vKey(n.level, n.e[0], n.e[1]) != key) {
        audit::fail(kV, "node " + std::to_string(id) +
                            " filed under a foreign key");
      }
      for (std::size_t j = 0; j < i; ++j) {
        const VNode& m = vNodes_[bucket[j]];
        if (m.level == n.level && m.e[0].node == n.e[0].node &&
            m.e[0].w == n.e[0].w && m.e[1].node == n.e[1].node &&
            m.e[1].w == n.e[1].w) {
          audit::fail(kV, "duplicate (level, children) tuple: nodes " +
                              std::to_string(bucket[j]) + " and " +
                              std::to_string(id) + " at level " +
                              std::to_string(n.level));
        }
      }
      filed[id] = 1;
      ++filedCount;
    }
  }
  if (filedCount != vNodes_.size()) {
    audit::fail(kV, std::to_string(vNodes_.size() - filedCount) +
                        " vector nodes are unreachable from the unique table");
  }

  // Per-node structure: normalization and full-depth levels.
  for (NodeId id = 0; id < vNodes_.size(); ++id) {
    const VNode& n = vNodes_[id];
    if (n.level < 0) {
      audit::fail(kV, "node " + std::to_string(id) + " has negative level");
    }
    bool hasUnitChild = false;
    for (int c = 0; c < 2; ++c) {
      const VEdge& e = n.e[c];
      checkWeight(kV, id, e.w);
      if (ct_.isZero(e.w)) {
        if (e.node != kTerminal) {
          audit::fail(kV, "node " + std::to_string(id) +
                              " has a zero-weight child not at the terminal");
        }
        continue;
      }
      hasUnitChild |= ct_.isOne(e.w);
      if (n.level == 0) {
        if (e.node != kTerminal) {
          audit::fail(kV, "level-0 node " + std::to_string(id) +
                              " has a non-terminal child");
        }
      } else if (e.node == kTerminal ||
                 e.node >= vNodes_.size() ||
                 vNodes_[e.node].level != n.level - 1) {
        audit::fail(kV, "full-depth violation: node " + std::to_string(id) +
                            " (level " + std::to_string(n.level) +
                            ") child is not at level " +
                            std::to_string(n.level - 1));
      }
    }
    if (!hasUnitChild) {
      audit::fail(kV, "normalization violation on node " + std::to_string(id) +
                          ": no child carries weight 1");
    }
  }

  // Matrix table: same filing + normalization checks over 4 children.
  std::vector<char> mFiled(mNodes_.size(), 0);
  std::size_t mFiledCount = 0;
  for (const auto& [key, bucket] : mUnique_) {
    for (const NodeId id : bucket) {
      if (id >= mNodes_.size()) {
        audit::fail(kM, "bucket holds out-of-range node " + std::to_string(id));
      }
      if (mFiled[id]) {
        audit::fail(kM, "node " + std::to_string(id) + " filed twice");
      }
      const MNode& n = mNodes_[id];
      if (mKey(n.level, n.e) != key) {
        audit::fail(kM, "node " + std::to_string(id) +
                            " filed under a foreign key");
      }
      mFiled[id] = 1;
      ++mFiledCount;
    }
  }
  if (mFiledCount != mNodes_.size()) {
    audit::fail(kM, std::to_string(mNodes_.size() - mFiledCount) +
                        " matrix nodes are unreachable from the unique table");
  }
  for (NodeId id = 0; id < mNodes_.size(); ++id) {
    const MNode& n = mNodes_[id];
    bool hasUnitChild = false;
    for (int c = 0; c < 4; ++c) {
      const MEdge& e = n.e[c];
      checkWeight(kM, id, e.w);
      if (ct_.isZero(e.w)) {
        if (e.node != kTerminal) {
          audit::fail(kM, "node " + std::to_string(id) +
                              " has a zero-weight child not at the terminal");
        }
        continue;
      }
      hasUnitChild |= ct_.isOne(e.w);
      if (n.level == 0) {
        if (e.node != kTerminal) {
          audit::fail(kM, "level-0 node " + std::to_string(id) +
                              " has a non-terminal child");
        }
      } else if (e.node == kTerminal || e.node >= mNodes_.size() ||
                 mNodes_[e.node].level != n.level - 1) {
        audit::fail(kM, "full-depth violation: node " + std::to_string(id) +
                            " (level " + std::to_string(n.level) + ")");
      }
    }
    if (!hasUnitChild) {
      audit::fail(kM, "normalization violation on node " + std::to_string(id) +
                          ": no child carries weight 1");
    }
  }

  // Registered root and operation caches must name live nodes.
  if (root_.w >= ct_.size() ||
      (root_.node != kTerminal && root_.node >= vNodes_.size())) {
    audit::fail(kV, "registered root is dangling");
  }
  if (numQubits > 0 && root_.node != kTerminal &&
      vNodes_[root_.node].level != static_cast<std::int32_t>(numQubits) - 1) {
    audit::fail(kV, "registered root at level " +
                        std::to_string(vNodes_[root_.node].level) +
                        ", expected " + std::to_string(numQubits - 1));
  }
  for (const auto& [key, e] : addCache_) {
    if (e.node != kTerminal && e.node >= vNodes_.size()) {
      audit::fail(kV, "add-cache entry names a reclaimed node");
    }
  }
  for (const auto& [key, e] : mvCache_) {
    if (e.node != kTerminal && e.node >= vNodes_.size()) {
      audit::fail(kV, "mv-cache entry names a reclaimed node");
    }
  }
  for (const auto& [key, e] : mAddCache_) {
    if (e.node != kTerminal && e.node >= mNodes_.size()) {
      audit::fail(kM, "madd-cache entry names a reclaimed node");
    }
  }
}

void QmddManager::garbageCollect() {
  ++cacheStats_.gcRuns;
  // An instant (not a span): QMDD GC is a stop-the-world compaction whose
  // interesting telemetry is *when* it fires relative to the gate loop.
  if (metricsRegistry_ != nullptr) metricsRegistry_->instant("qmdd.gc");
  // Mark live vector nodes from the registered root; matrix nodes are
  // per-gate temporaries and dropped wholesale.
  for (VNode& n : vNodes_) n.mark = false;
  auto mark = [&](auto&& self, NodeId id) -> void {
    if (id == kTerminal) return;
    VNode& n = vNodes_[id];
    if (n.mark) return;
    n.mark = true;
    self(self, n.e[0].node);
    self(self, n.e[1].node);
  };
  mark(mark, root_.node);

  std::vector<NodeId> remap(vNodes_.size(), kTerminal);
  std::vector<VNode> compacted;
  compacted.reserve(vNodes_.size() / 2 + 1);
  for (NodeId id = 0; id < vNodes_.size(); ++id) {
    if (!vNodes_[id].mark) continue;
    remap[id] = static_cast<NodeId>(compacted.size());
    compacted.push_back(vNodes_[id]);
  }
  for (VNode& n : compacted) {
    for (VEdge& e : n.e) {
      if (e.node != kTerminal) e.node = remap[e.node];
    }
  }
  vNodes_ = std::move(compacted);
  if (root_.node != kTerminal) root_.node = remap[root_.node];
  mNodes_.clear();
  mUnique_.clear();
  vUnique_.clear();
  for (NodeId id = 0; id < vNodes_.size(); ++id) {
    const VNode& n = vNodes_[id];
    vUnique_[vKey(n.level, n.e[0], n.e[1])].push_back(id);
  }
  addCache_.clear();
  mvCache_.clear();
  mAddCache_.clear();
  gcThreshold_ = std::max(config_.gcThreshold, liveNodes() * 2);
}

void QmddManager::maybeGc() {
  if (liveNodes() > gcThreshold_) garbageCollect();
}

std::size_t QmddManager::memoryBytes() const {
  std::size_t bytes = vNodes_.capacity() * sizeof(VNode) +
                      mNodes_.capacity() * sizeof(MNode);
  bytes += ct_.size() * (sizeof(Complex) + 16);
  bytes += (addCache_.size() + mvCache_.size() + mAddCache_.size()) * 48;
  bytes += (vUnique_.size() + mUnique_.size()) * 64;
  return bytes;
}

}  // namespace sliq::qmdd
