// QmddSimulator — the DDSIM stand-in baseline (see DESIGN.md §4): quantum
// circuit simulation over QMDDs with double-precision complex edge weights.
// Same public surface as SliqSimulator so the benchmark harnesses can drive
// both engines uniformly.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "qmdd/qmdd.hpp"
#include "support/memuse.hpp"
#include "support/rng.hpp"

namespace sliq {
struct FusedOp;  // circuit/optimizer.hpp
}

namespace sliq::serialize {
class Writer;
class Reader;
}  // namespace sliq::serialize

namespace sliq::qmdd {

class QmddSimulator {
 public:
  struct Config {
    QmddManager::Config dd;
  };

  explicit QmddSimulator(unsigned numQubits, std::uint64_t basisState = 0);
  QmddSimulator(unsigned numQubits, std::uint64_t basisState,
                const Config& config);

  unsigned numQubits() const { return n_; }

  void applyGate(const Gate& gate);
  void run(const QuantumCircuit& circuit);
  /// Applies one fused op (circuit/optimizer.hpp): a verbatim gate, a
  /// fused 2×2 through the controlled-U path, or a fused 4×4 built as a
  /// matrix DD (applyTwoQubitU) — one DD traversal for the whole block.
  void applyFusedOp(const FusedOp& op);
  /// Runs a fused circuit — run(c.fused()) equals run(c) up to the
  /// reassociation rounding of the fused matrix products.
  void runFused(const FusedCircuit& circuit);

  Complex amplitude(std::uint64_t basisState);
  /// Σ|α|²; drifts away from 1 as rounding accumulates — the paper's
  /// "numerical error" failure mode.
  double totalProbability();
  double probabilityOne(unsigned qubit);
  bool measure(unsigned qubit, double random);
  /// Resets a qubit to |0⟩: weighted-descent collapse exactly like
  /// measure(), then an X when the observed bit was 1. Consumes one
  /// deviate; returns the pre-reset measured bit.
  bool reset(unsigned qubit, double random);
  /// One full-register sample (bit q = outcome of qubit q) by weighted
  /// descent of the state DD, without collapsing the register.
  std::uint64_t sampleAll(Rng& rng);
  /// `count` samples sharing one downward edge-weight memo across the
  /// batch: one weight pass plus n steps per shot. Deviate consumption per
  /// shot matches sampleAll, so a fixed seed yields the same sequence.
  std::vector<std::uint64_t> sampleShots(unsigned count, Rng& rng);

  /// Dense statevector extraction by one weighted DD descent (zero-weight
  /// subtrees skipped). Throws the typed MemoryBudgetError
  /// (support/memuse.hpp) when the 2^n array would exceed `budgetBytes` —
  /// the qmdd → statevector conversion route, budgeted so callers can
  /// catch the infeasible case and fall back.
  std::vector<std::complex<double>> statevector(
      std::uint64_t budgetBytes = kDefaultDenseBudgetBytes);
  /// Replaces the state with the dense amplitude array (size 2^n, bit q of
  /// the index = qubit q), rebuilt bottom-up through makeVNode exactly like
  /// loadStatePayload — shared suffixes re-merge into shared nodes and the
  /// normalization is re-derived. The statevector → qmdd re-encoding route.
  void loadDense(const std::vector<std::complex<double>>& amplitudes);

  /// ⟨P⟩ for the Pauli string given per qubit (0=I, 1=X, 2=Y, 3=Z),
  /// normalized by Σ|α|² so accumulated edge-weight rounding drift cancels.
  /// One pair-wise weighted descent of the state DD (QmddManager::
  /// pauliExpectation); does not collapse or mutate the state.
  double expectationPauli(const std::vector<std::uint8_t>& paulis);

  /// True when |Σ|α|² − 1| ≤ tolerance (paper: the 'error' column trips
  /// when state probabilities no longer sum to 1).
  bool isNormalized(double tolerance = 1e-4);

  std::size_t liveNodes() const { return mgr_.liveNodes(); }
  std::size_t peakNodes() const { return mgr_.peakNodes(); }
  std::size_t memoryBytes() const { return mgr_.memoryBytes(); }
  const QmddManager::CacheStats& cacheStats() const {
    return mgr_.cacheStats();
  }
  std::size_t complexTableSize() const { return mgr_.complexTableSize(); }
  /// Observability hook: forwarded to the manager (GC instants).
  void setMetrics(metrics::Registry* registry) { mgr_.setMetrics(registry); }

  // ---- snapshots (support/serialize.hpp; DESIGN.md §12) -------------------
  /// Serializes the state DD: a children-first node listing with explicit
  /// (re, im) edge weights — weights travel as doubles, not table indices,
  /// so the snapshot is independent of this manager's ComplexTable layout.
  void saveStatePayload(serialize::Writer& out);
  /// Rebuilds the state DD via makeVNode (weights re-interned into this
  /// manager's ComplexTable, normalization re-derived). Validates levels /
  /// child references before committing; throws
  /// serialize::SerializationError on corrupt input with the state
  /// unchanged.
  void loadStatePayload(serialize::Reader& in);

  /// Deep structural audit of the DD package state (DESIGN.md §10),
  /// including the registered root's full-depth check against this
  /// simulator's width. Throws audit::AuditError on the first violation.
  void auditInvariants() const { mgr_.auditInvariants(n_); }

 private:
  friend struct AuditCorruptor;  // test-only deliberate corruption hooks
  void applyControlledU(const Complex u[4],
                        const std::vector<unsigned>& controls,
                        unsigned target);
  /// Applies a 4×4 unitary over (qLow, qHigh), qLow < qHigh, basis index
  /// b = 2·(bit of qHigh) + (bit of qLow), matrix row-major: the gate DD
  /// is Σ_{r,c} E_{rc}(qHigh) ⊗ U_{rc}(qLow) with identity elsewhere.
  void applyTwoQubitU(const Complex u[16], unsigned qLow, unsigned qHigh);

  unsigned n_;
  QmddManager mgr_;
};

}  // namespace sliq::qmdd
