// QmddSimulator — the DDSIM stand-in baseline (see DESIGN.md §4): quantum
// circuit simulation over QMDDs with double-precision complex edge weights.
// Same public surface as SliqSimulator so the benchmark harnesses can drive
// both engines uniformly.
#pragma once

#include <complex>
#include <cstdint>

#include "circuit/circuit.hpp"
#include "qmdd/qmdd.hpp"

namespace sliq::qmdd {

class QmddSimulator {
 public:
  struct Config {
    QmddManager::Config dd;
  };

  explicit QmddSimulator(unsigned numQubits, std::uint64_t basisState = 0);
  QmddSimulator(unsigned numQubits, std::uint64_t basisState,
                const Config& config);

  unsigned numQubits() const { return n_; }

  void applyGate(const Gate& gate);
  void run(const QuantumCircuit& circuit);

  Complex amplitude(std::uint64_t basisState);
  /// Σ|α|²; drifts away from 1 as rounding accumulates — the paper's
  /// "numerical error" failure mode.
  double totalProbability();
  double probabilityOne(unsigned qubit);
  bool measure(unsigned qubit, double random);

  /// True when |Σ|α|² − 1| ≤ tolerance (paper: the 'error' column trips
  /// when state probabilities no longer sum to 1).
  bool isNormalized(double tolerance = 1e-4);

  std::size_t liveNodes() const { return mgr_.liveNodes(); }
  std::size_t peakNodes() const { return mgr_.peakNodes(); }
  std::size_t memoryBytes() const { return mgr_.memoryBytes(); }

 private:
  void applyControlledU(const Complex u[4],
                        const std::vector<unsigned>& controls,
                        unsigned target);

  unsigned n_;
  QmddManager mgr_;
};

}  // namespace sliq::qmdd
