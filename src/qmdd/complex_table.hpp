// Interned complex numbers with tolerance-based lookup — the QMDD package's
// "complex table" (Zulehner/Hillmich/Wille, ICCAD'19). Edge weights are
// stored once and referenced by index; two weights closer than the tolerance
// collapse into one entry. This is the (deliberate, authentic) source of the
// precision loss the paper reports for DDSIM ("error" outcomes): unlike the
// algebraic representation of the bit-sliced engine, amplitudes here are
// rounded doubles.
#pragma once

#include <complex>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sliq::qmdd {

using Complex = std::complex<double>;
using CIndex = std::uint32_t;

class ComplexTable {
 public:
  static constexpr double kTolerance = 1e-10;

  ComplexTable();

  /// Index of 0 and 1 (pre-interned).
  CIndex zero() const { return 0; }
  CIndex one() const { return 1; }

  /// Interns `value`, snapping to an existing entry within tolerance.
  CIndex lookup(Complex value);
  Complex value(CIndex i) const { return values_[i]; }

  bool isZero(CIndex i) const { return i == 0; }
  bool isOne(CIndex i) const { return i == 1; }

  CIndex mul(CIndex a, CIndex b);
  CIndex add(CIndex a, CIndex b);
  CIndex div(CIndex a, CIndex b);

  std::size_t size() const { return values_.size(); }

  /// Structural audit (DESIGN.md §10): the 0/1 constants are bit-exact,
  /// every entry is finite and filed in its grid bucket, and no two entries
  /// lie within the intern tolerance of each other (dedup — probed over
  /// neighboring grid cells exactly like lookup). Throws audit::AuditError
  /// naming the offending entries.
  void auditInvariants() const;

 private:
  friend struct AuditCorruptor;  // test-only deliberate corruption hooks

  std::int64_t gridKey(double v) const;

  std::vector<Complex> values_;
  std::unordered_map<std::uint64_t, std::vector<CIndex>> buckets_;
};

}  // namespace sliq::qmdd
