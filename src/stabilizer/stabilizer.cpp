#include "stabilizer/stabilizer.hpp"

#include <string>
#include <utility>

#include "support/assert.hpp"
#include "support/audit.hpp"
#include "support/serialize.hpp"

namespace sliq {

StabilizerSimulator::StabilizerSimulator(unsigned numQubits)
    : n_(numQubits), words_((numQubits + 63) / 64) {
  SLIQ_REQUIRE(numQubits >= 1, "need at least one qubit");
  rows_.resize(2 * n_ + 1);
  for (Row& r : rows_) {
    r.x.assign(words_, 0);
    r.z.assign(words_, 0);
  }
  // Initial |0...0⟩: destabilizer i = X_i, stabilizer i = Z_i.
  for (unsigned i = 0; i < n_; ++i) {
    setX(rows_[i], i, true);
    setZ(rows_[n_ + i], i, true);
  }
}

// Phase exponent (mod 4) contribution of multiplying Pauli rows a·b, per
// Aaronson-Gottesman's g() function summed over qubits.
int StabilizerSimulator::rowPhaseExponent(const Row& a, const Row& b) const {
  int e = 0;
  for (unsigned q = 0; q < n_; ++q) {
    const int x1 = getX(a, q), z1 = getZ(a, q);
    const int x2 = getX(b, q), z2 = getZ(b, q);
    if (x1 == 0 && z1 == 0) continue;
    if (x1 == 1 && z1 == 1) e += z2 - x2;          // Y · P
    else if (x1 == 1) e += z2 * (2 * x2 - 1);      // X · P
    else e += x2 * (1 - 2 * z2);                   // Z · P
  }
  return e;
}

void StabilizerSimulator::rowMult(Row& target, const Row& source) const {
  // Valid only for commuting rows (phase stays in i^even); anticommuting
  // products need rowMultMaskOnly (destabilizer updates, where the phase
  // is never read).
  const int e = 2 * (target.phase ? 1 : 0) + 2 * (source.phase ? 1 : 0) +
                rowPhaseExponent(source, target);
  SLIQ_ASSERT(((e % 4) + 4) % 4 % 2 == 0);
  target.phase = (((e % 4) + 4) % 4) == 2;
  for (unsigned w = 0; w < words_; ++w) {
    target.x[w] ^= source.x[w];
    target.z[w] ^= source.z[w];
  }
}

void StabilizerSimulator::rowMultMaskOnly(Row& target,
                                          const Row& source) const {
  for (unsigned w = 0; w < words_; ++w) {
    target.x[w] ^= source.x[w];
    target.z[w] ^= source.z[w];
  }
}

void StabilizerSimulator::applyH(unsigned q) {
  for (Row& r : rows_) {
    const bool x = getX(r, q), z = getZ(r, q);
    r.phase ^= x && z;
    setX(r, q, z);
    setZ(r, q, x);
  }
}

void StabilizerSimulator::applyS(unsigned q) {
  for (Row& r : rows_) {
    const bool x = getX(r, q), z = getZ(r, q);
    r.phase ^= x && z;
    setZ(r, q, x != z);
  }
}

void StabilizerSimulator::applyX(unsigned q) {
  for (Row& r : rows_) r.phase ^= getZ(r, q);
}

void StabilizerSimulator::applyZ(unsigned q) {
  for (Row& r : rows_) r.phase ^= getX(r, q);
}

void StabilizerSimulator::applyCnot(unsigned control, unsigned target) {
  for (Row& r : rows_) {
    const bool xc = getX(r, control), zc = getZ(r, control);
    const bool xt = getX(r, target), zt = getZ(r, target);
    r.phase ^= xc && zt && (xt == zc);
    setX(r, target, xt != xc);
    setZ(r, control, zc != zt);
  }
}

void StabilizerSimulator::applyGate(const Gate& gate) {
  validateGate(gate, n_);
  auto unsupported = [&] {
    throw UnsupportedGateError("stabilizer simulator cannot apply " +
                               gateName(gate) + " (non-Clifford)");
  };
  if (!gate.controls.empty() && gate.controls.size() > 1) unsupported();
  switch (gate.kind) {
    case GateKind::kH: applyH(gate.target()); break;
    case GateKind::kS: applyS(gate.target()); break;
    case GateKind::kSdg:  // S† = S·S·S
      applyS(gate.target());
      applyS(gate.target());
      applyS(gate.target());
      break;
    case GateKind::kX: applyX(gate.target()); break;
    case GateKind::kY:  // Y = i·X·Z: global phase drops out of the tableau
      applyZ(gate.target());
      applyX(gate.target());
      break;
    case GateKind::kZ: applyZ(gate.target()); break;
    case GateKind::kRx90:  // Rx(π/2) = H·S·H up to global phase
      applyH(gate.target());
      applyS(gate.target());
      applyH(gate.target());
      break;
    case GateKind::kRy90:  // Ry(π/2) = H·Z exactly (Z first, then H)
      applyZ(gate.target());
      applyH(gate.target());
      break;
    case GateKind::kCnot:
      if (gate.controls.size() != 1) unsupported();
      applyCnot(gate.controls[0], gate.target());
      break;
    case GateKind::kCz:
      if (gate.controls.size() != 1) unsupported();
      applyH(gate.target());
      applyCnot(gate.controls[0], gate.target());
      applyH(gate.target());
      break;
    case GateKind::kSwap:
      if (!gate.controls.empty()) unsupported();
      applyCnot(gate.targets[0], gate.targets[1]);
      applyCnot(gate.targets[1], gate.targets[0]);
      applyCnot(gate.targets[0], gate.targets[1]);
      break;
    case GateKind::kT:
    case GateKind::kTdg:
      unsupported();
      break;
    case GateKind::kMeasure:
    case GateKind::kReset:
      SLIQ_REQUIRE(false,
                   "measure/reset are not unitary gates — dynamic circuits "
                   "execute through Engine::runDynamic");
      break;
  }
}

void StabilizerSimulator::run(const QuantumCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == n_, "circuit width mismatch");
  for (const Gate& g : circuit.gates()) applyGate(g);
}

bool StabilizerSimulator::supportsGate(const Gate& g) {
  if (g.kind == GateKind::kT || g.kind == GateKind::kTdg) return false;
  if (g.controls.size() > 1) return false;
  if (g.kind == GateKind::kSwap && !g.controls.empty()) return false;
  return true;
}

bool StabilizerSimulator::supports(const QuantumCircuit& circuit) {
  for (const Gate& g : circuit.gates()) {
    if (!supportsGate(g)) return false;
  }
  return true;
}

QuantumCircuit StabilizerSimulator::extractPreparation() const {
  // Disentangle a working copy qubit by qubit, recording the gates; the
  // inverse of the recording prepares this state from |0...0⟩.
  //
  // Per qubit q: when some stabilizer row p carries X (or Y) at q, the
  // outcome of measuring q is random — normalize row p to ±X_q (S turns a
  // Y into ∓X; CNOT absorbs X support on other qubits into q, CZ absorbs Z
  // support), then H maps it to ±Z_q and an X fixes a negative sign. When
  // no row carries X at q the outcome is deterministic (±Z_q is already in
  // the stabilizer group) and at most an X is needed. Either way +Z_q ends
  // up a generator, i.e. qubit q is a disentangled |0⟩.
  //
  // Safety of later iterations: once +Z_j stabilizes the state, every
  // group element commutes with it, so no row can carry X or Y at a
  // cleared qubit j — the only gate ever aimed at one is CZ(q, j), which
  // acts trivially on |0⟩_j and leaves Z columns invariant.
  StabilizerSimulator work = *this;
  QuantumCircuit undo(n_, "chp-disentangle");
  const auto emit = [&](GateKind kind, std::vector<unsigned> targets,
                        std::vector<unsigned> controls) {
    Gate g{kind, std::move(targets), std::move(controls)};
    work.applyGate(g);
    undo.append(std::move(g));
  };
  for (unsigned q = 0; q < n_; ++q) {
    const unsigned p = work.anticommutingStabilizer(q);
    if (p == 2 * n_) {
      // Deterministic qubit: |1⟩ iff −Z_q is in the group.
      if (work.probabilityOne(q) > 0.5) emit(GateKind::kX, {q}, {});
      continue;
    }
    Row& row = work.rows_[p];
    if (work.getZ(row, q)) emit(GateKind::kS, {q}, {});  // Y_q → ∓X_q
    for (unsigned j = 0; j < n_; ++j) {
      if (j == q) continue;
      if (work.getX(row, j) && work.getZ(row, j)) {
        emit(GateKind::kS, {j}, {});  // Y_j → ∓X_j
      }
      if (work.getX(row, j)) {
        emit(GateKind::kCnot, {j}, {q});  // X_q X_j → X_q
      } else if (work.getZ(row, j)) {
        emit(GateKind::kCz, {j}, {q});  // X_q Z_j → X_q
      }
    }
    emit(GateKind::kH, {q}, {});  // ±X_q → ±Z_q
    if (row.phase) emit(GateKind::kX, {q}, {});
  }
#ifndef NDEBUG
  for (unsigned q = 0; q < n_; ++q) {
    const double disentangledP1 = work.probabilityOne(q);
    SLIQ_ASSERT(disentangledP1 == 0.0);
  }
#endif
  return undo.inverse();
}

bool StabilizerSimulator::anticommutes(const Row& a, const Row& b) const {
  // popcount(u) + popcount(v) ≡ popcount(u ^ v) (mod 2), so the symplectic
  // product reduces to one XOR + parity per word.
  bool parity = false;
  for (unsigned w = 0; w < words_; ++w) {
    parity ^= __builtin_parityll((a.x[w] & b.z[w]) ^ (a.z[w] & b.x[w]));
  }
  return parity;
}

double StabilizerSimulator::expectationPauli(const std::vector<bool>& x,
                                             const std::vector<bool>& z) const {
  SLIQ_REQUIRE(x.size() == n_ && z.size() == n_, "pauli width mismatch");
  Row p;
  p.x.assign(words_, 0);
  p.z.assign(words_, 0);
  for (unsigned q = 0; q < n_; ++q) {
    if (x[q]) p.x[q >> 6] |= std::uint64_t{1} << (q & 63);
    if (z[q]) p.z[q >> 6] |= std::uint64_t{1} << (q & 63);
  }
  // Anticommuting with any stabilizer means the measurement of P is
  // unbiased: ⟨P⟩ = 0.
  for (unsigned i = n_; i < 2 * n_; ++i) {
    if (anticommutes(rows_[i], p)) return 0.0;
  }
  // P commutes with the full stabilizer group, so P = ± Π s_i over exactly
  // the generators whose destabilizer partners anticommute with P.
  // Accumulate that product (with Aaronson–Gottesman phase bookkeeping) and
  // read the sign off its phase bit.
  Row product;
  product.x.assign(words_, 0);
  product.z.assign(words_, 0);
  for (unsigned i = 0; i < n_; ++i) {
    if (anticommutes(rows_[i], p)) rowMult(product, rows_[n_ + i]);
  }
  SLIQ_CHECK(product.x == p.x && product.z == p.z,
             "commuting Pauli is not in the stabilizer group");
  return product.phase ? -1.0 : 1.0;
}

double StabilizerSimulator::probabilityOne(unsigned qubit) {
  SLIQ_REQUIRE(qubit < n_, "qubit out of range");
  // Random outcome iff some stabilizer anticommutes with Z_q, i.e. has an
  // X on qubit q.
  for (unsigned i = n_; i < 2 * n_; ++i) {
    if (getX(rows_[i], qubit)) return 0.5;
  }
  // Deterministic: accumulate the product of stabilizers whose destabilizer
  // partner has X on q into the scratch row.
  Row& scratch = rows_[2 * n_];
  scratch.x.assign(words_, 0);
  scratch.z.assign(words_, 0);
  scratch.phase = false;
  for (unsigned i = 0; i < n_; ++i) {
    if (getX(rows_[i], qubit)) rowMult(scratch, rows_[n_ + i]);
  }
  return scratch.phase ? 1.0 : 0.0;
}

unsigned StabilizerSimulator::anticommutingStabilizer(unsigned qubit) const {
  for (unsigned i = n_; i < 2 * n_; ++i) {
    if (getX(rows_[i], qubit)) return i;
  }
  return 2 * n_;
}

bool StabilizerSimulator::collapseRandom(unsigned qubit, unsigned p,
                                         bool outcome) {
  // Random outcome: update the tableau per Aaronson-Gottesman. Stabilizer
  // rows commute with row p (stabilizers commute mutually), so their phase
  // bookkeeping stays in i^even. Destabilizer rows may ANTICOMMUTE with
  // row p — their product picks up an i^odd the ±1 phase bit cannot
  // represent — but destabilizer phases are never read (probabilityOne /
  // expectationPauli only consult their X/Z masks to select stabilizers),
  // so they update mask-only.
  for (unsigned i = 0; i < 2 * n_; ++i) {
    if (i == p || !getX(rows_[i], qubit)) continue;
    if (i < n_) {
      rowMultMaskOnly(rows_[i], rows_[p]);
    } else {
      rowMult(rows_[i], rows_[p]);
    }
  }
  rows_[p - n_] = rows_[p];  // destabilizer partner takes the old stabilizer
  Row& fresh = rows_[p];
  fresh.x.assign(words_, 0);
  fresh.z.assign(words_, 0);
  setZ(fresh, qubit, true);
  fresh.phase = outcome;
  return fresh.phase;
}

bool StabilizerSimulator::measure(unsigned qubit, Rng& rng) {
  SLIQ_REQUIRE(qubit < n_, "qubit out of range");
  const unsigned p = anticommutingStabilizer(qubit);
  if (p == 2 * n_) {
    // Deterministic outcome.
    return probabilityOne(qubit) > 0.5;
  }
  return collapseRandom(qubit, p, rng.flip());
}

bool StabilizerSimulator::measure(unsigned qubit, double random) {
  SLIQ_REQUIRE(qubit < n_, "qubit out of range");
  SLIQ_REQUIRE(random >= 0.0 && random < 1.0, "random must be in [0,1)");
  const unsigned p = anticommutingStabilizer(qubit);
  if (p == 2 * n_) {
    // Deterministic outcome.
    return probabilityOne(qubit) > 0.5;
  }
  // Pr[qubit = 1] is exactly 1/2 here: outcome = random < p1.
  return collapseRandom(qubit, p, random < 0.5);
}

bool StabilizerSimulator::reset(unsigned qubit, double random) {
  // Tableau reset: measure (collapsing the tableau rows onto the observed
  // eigenspace), then flip the row phases with an X when the bit was 1 —
  // afterwards Z_qubit is a +1 stabilizer again.
  const bool was = measure(qubit, random);
  if (was) applyX(qubit);
  return was;
}

void StabilizerSimulator::auditInvariants() const {
  static const std::string kStructure = "chp-tableau";
  const auto rowName = [this](unsigned i) {
    return i < n_ ? "destabilizer " + std::to_string(i)
                  : "stabilizer " + std::to_string(i - n_);
  };
  if (rows_.size() != 2 * n_ + 1) {
    audit::fail(kStructure, "tableau holds " + std::to_string(rows_.size()) +
                                " rows, expected " +
                                std::to_string(2 * n_ + 1));
  }
  // Packing: correct word counts, no stray bits above qubit n-1.
  const std::uint64_t padMask =
      (n_ & 63) ? ~((std::uint64_t{1} << (n_ & 63)) - 1) : 0;
  for (unsigned i = 0; i < 2 * n_; ++i) {
    const Row& r = rows_[i];
    if (r.x.size() != words_ || r.z.size() != words_) {
      audit::fail(kStructure, rowName(i) + " has wrong word count");
    }
    if (padMask != 0 &&
        ((r.x[words_ - 1] & padMask) != 0 || (r.z[words_ - 1] & padMask) != 0)) {
      audit::fail(kStructure, rowName(i) + " has set bits beyond qubit n-1");
    }
    bool zero = true;
    for (unsigned w = 0; w < words_ && zero; ++w)
      zero = r.x[w] == 0 && r.z[w] == 0;
    if (zero) {
      audit::fail(kStructure, rowName(i) + " is the identity Pauli "
                                           "(degenerate generator)");
    }
  }
  // Symplectic pairing: ⟨row_i, row_j⟩ must be δ_{i, j±n} — stabilizers
  // pairwise commute, destabilizers pairwise commute, and destabilizer i
  // anticommutes with exactly its partner stabilizer i. Together these
  // force all 2n generators linearly independent.
  for (unsigned i = 0; i < 2 * n_; ++i) {
    for (unsigned j = i + 1; j < 2 * n_; ++j) {
      const bool expect = (j == i + n_);
      if (anticommutes(rows_[i], rows_[j]) != expect) {
        audit::fail(kStructure,
                    rowName(i) + " and " + rowName(j) +
                        (expect ? " commute (pairing violation: partners "
                                  "must anticommute)"
                                : " anticommute (symplectic violation)"));
      }
    }
  }
}

std::vector<bool> StabilizerSimulator::sampleAll(Rng& rng) const {
  StabilizerSimulator snapshot(*this);
  std::vector<bool> bits(n_);
  for (unsigned q = 0; q < n_; ++q)
    bits[q] = snapshot.measure(q, rng.uniform());
  return bits;
}

// ---- snapshots (DESIGN.md §12) ---------------------------------------------
//
// Payload layout (`sliq.state.v1`, representation "chp"):
//
//   u32 numQubits        must match the receiving simulator
//   u32 words            packed 64-bit words per x/z vector: ⌈n/64⌉
//   (2n+1) × row         destabilizers 0..n-1, stabilizers n..2n-1, scratch:
//                          words × u64 (x), words × u64 (z), u8 phase

void StabilizerSimulator::saveStatePayload(serialize::Writer& out) {
  out.u32(n_);
  out.u32(words_);
  for (const Row& row : rows_) {
    for (const std::uint64_t w : row.x) out.u64(w);
    for (const std::uint64_t w : row.z) out.u64(w);
    out.u8(row.phase ? 1 : 0);
  }
}

void StabilizerSimulator::loadStatePayload(serialize::Reader& in) {
  const std::uint32_t n = in.u32("chp.numQubits");
  if (n != n_) {
    throw serialize::SerializationError(
        "snapshot field 'chp.numQubits': payload says " + std::to_string(n) +
        " qubit(s) but the simulator has " + std::to_string(n_));
  }
  const std::uint32_t words = in.u32("chp.words");
  if (words != words_) {
    throw serialize::SerializationError(
        "snapshot field 'chp.words': payload says " + std::to_string(words) +
        " word(s) per row but " + std::to_string(n_) + " qubit(s) need " +
        std::to_string(words_));
  }
  // Bits above qubit n-1 in the top word must be clear — the packed-word
  // kernels (and the audit) rely on it.
  const std::uint64_t strayMask =
      (n_ % 64 == 0) ? 0 : ~((std::uint64_t{1} << (n_ % 64)) - 1);

  std::vector<Row> rows(2 * static_cast<std::size_t>(n_) + 1);
  for (Row& row : rows) {
    row.x.resize(words_);
    row.z.resize(words_);
    for (std::uint64_t& w : row.x) w = in.u64("chp.row.x");
    for (std::uint64_t& w : row.z) w = in.u64("chp.row.z");
    if (words_ > 0 && ((row.x[words_ - 1] & strayMask) != 0 ||
                       (row.z[words_ - 1] & strayMask) != 0)) {
      throw serialize::SerializationError(
          "snapshot field 'chp.row' at byte offset " +
          std::to_string(in.offset()) + ": stray bits beyond qubit " +
          std::to_string(n_ - 1) + " in the top packed word");
    }
    const std::uint8_t phase = in.u8("chp.row.phase");
    if (phase > 1) {
      throw serialize::SerializationError(
          "snapshot field 'chp.row.phase' at byte offset " +
          std::to_string(in.offset()) + ": phase byte " +
          std::to_string(phase) + " is not 0 or 1");
    }
    row.phase = phase != 0;
  }
  rows_ = std::move(rows);  // all parsed and validated — commit atomically
}

}  // namespace sliq
