// CHP-style stabilizer simulator (Aaronson & Gottesman, PRA 70, 052328) —
// the specialized comparator the paper cites for the entanglement circuits
// of Table V. Simulates Clifford circuits (H, S, S†, X, Y, Z, CNOT, CZ,
// SWAP) in O(n²) per measurement using the tableau representation.
//
// Non-Clifford gates (T, T†, Rx/Ry(π/2) are Clifford — Rx/Ry included;
// T/Tdg and Toffoli/Fredkin with controls are not) throw
// UnsupportedGateError, mirroring CHP's scope.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "circuit/circuit.hpp"
#include "support/rng.hpp"

namespace sliq::serialize {
class Writer;
class Reader;
}  // namespace sliq::serialize

namespace sliq {

class UnsupportedGateError : public std::runtime_error {
 public:
  explicit UnsupportedGateError(const std::string& what)
      : std::runtime_error(what) {}
};

class StabilizerSimulator {
 public:
  explicit StabilizerSimulator(unsigned numQubits);

  unsigned numQubits() const { return n_; }

  /// Applies a Clifford gate; throws UnsupportedGateError otherwise.
  void applyGate(const Gate& gate);
  void run(const QuantumCircuit& circuit);
  /// True if every gate of `circuit` is in the supported Clifford set.
  static bool supports(const QuantumCircuit& circuit);
  /// Per-gate variant of supports(): true for the supported Clifford set
  /// and for the dynamic ops (measure/reset execute through runDynamic).
  /// The circuit analyzer keys its Clifford classification off this, so
  /// the dispatcher can never pick chp for a gate this class would refuse.
  static bool supportsGate(const Gate& gate);

  /// A static Clifford circuit over {H, S, X, CNOT, CZ} that prepares this
  /// tableau's state from |0...0⟩ (up to global phase — unobservable in
  /// probabilities and expectations). Derived by disentangling a working
  /// copy qubit by qubit: the recorded gates reduce the state to |0...0⟩
  /// (each qubit ends with +Z_q in the stabilizer group), and the inverse
  /// of that recording is the preparation. O(n³); does not mutate this
  /// tableau. Replaying the result on any engine reconstructs the state —
  /// the tableau → {exact, qmdd, statevector} conversion route.
  QuantumCircuit extractPreparation() const;

  /// Measures qubit q in the computational basis. Deterministic outcomes
  /// are returned directly; random ones consume `rng`.
  bool measure(unsigned qubit, Rng& rng);
  /// Deviate-driven variant matching the other engines' convention: the
  /// outcome is 1 iff `random` < Pr[qubit = 1] (which is 0.5 whenever the
  /// outcome is not deterministic), so identical deviates reproduce
  /// identical collapse cascades across engines.
  bool measure(unsigned qubit, double random);
  /// Resets a qubit to |0⟩: tableau measurement + row phase flip (X) when
  /// the observed bit was 1. Consumes one deviate (the collapse); returns
  /// the pre-reset measured bit.
  bool reset(unsigned qubit, double random);
  /// Pr[qubit = 1]: 0, 1, or 0.5 (stabilizer states admit nothing else).
  double probabilityOne(unsigned qubit);

  /// Exact ⟨P⟩ ∈ {−1, 0, +1} of the Pauli string with X support `x` and
  /// Z support `z` (both indexed by qubit; x[q] && z[q] means Y_q), by
  /// tableau commutation: 0 when P anticommutes with any stabilizer;
  /// otherwise P is (up to sign) the product of the stabilizers whose
  /// destabilizer partners anticommute with P, and the accumulated phase of
  /// that product is the sign. Generalizes probabilityOne's deterministic
  /// branch from Z_q to arbitrary strings; does not mutate the tableau.
  double expectationPauli(const std::vector<bool>& x,
                          const std::vector<bool>& z) const;

  /// One full-register shot (bit q = outcome of qubit q) without mutating
  /// this tableau: every qubit is measured on a scratch snapshot copy, so a
  /// shot costs one tableau copy instead of a circuit replay. Consumes one
  /// uniform deviate per qubit (the measure(q, double) convention).
  std::vector<bool> sampleAll(Rng& rng) const;

  /// Approximate bytes held by the tableau: (2n+1) rows of packed x/z
  /// words plus per-row bookkeeping (telemetry: run-report state.bytes).
  std::size_t memoryBytes() const {
    return rows_.size() * (2 * words_ * sizeof(std::uint64_t) + sizeof(Row));
  }

  // ---- snapshots (support/serialize.hpp; DESIGN.md §12) -------------------
  /// Serializes the full tableau: all 2n+1 rows (destabilizers,
  /// stabilizers, scratch) with packed x/z words and phase bits.
  void saveStatePayload(serialize::Writer& out);
  /// Restores a saveStatePayload tableau. Validates row shape, phase bytes
  /// and stray high bits before committing; throws
  /// serialize::SerializationError on corrupt input with the state
  /// unchanged.
  void loadStatePayload(serialize::Reader& in);

  /// Deep structural audit (DESIGN.md §10): symplectic consistency of the
  /// tableau — stabilizers pairwise commute, destabilizer i anticommutes
  /// with stabilizer i and commutes with every other row, no generator row
  /// is the identity, and the packed words carry no set bits beyond qubit
  /// n-1. Destabilizer *phases* are deliberately unchecked (they are
  /// mask-only by construction; see collapseRandom). Throws
  /// audit::AuditError naming the offending row. O(n³) bit-packed.
  void auditInvariants() const;

 private:
  friend struct AuditCorruptor;  // test-only deliberate corruption hooks
  // Tableau rows 0..n-1: destabilizers; n..2n-1: stabilizers; row 2n:
  // scratch. Each row stores x/z bit vectors (packed) and a phase bit.
  struct Row {
    std::vector<std::uint64_t> x;
    std::vector<std::uint64_t> z;
    bool phase = false;
  };

  bool getX(const Row& r, unsigned q) const {
    return (r.x[q >> 6] >> (q & 63)) & 1;
  }
  bool getZ(const Row& r, unsigned q) const {
    return (r.z[q >> 6] >> (q & 63)) & 1;
  }
  void setX(Row& r, unsigned q, bool v) {
    const std::uint64_t bit = std::uint64_t{1} << (q & 63);
    r.x[q >> 6] = v ? (r.x[q >> 6] | bit) : (r.x[q >> 6] & ~bit);
  }
  void setZ(Row& r, unsigned q, bool v) {
    const std::uint64_t bit = std::uint64_t{1} << (q & 63);
    r.z[q >> 6] = v ? (r.z[q >> 6] | bit) : (r.z[q >> 6] & ~bit);
  }

  void rowMult(Row& target, const Row& source) const;  // target *= source
  /// target *= source tracking X/Z masks only — for destabilizer updates,
  /// whose phases are never read (anticommuting products would need i^odd).
  void rowMultMaskOnly(Row& target, const Row& source) const;
  int rowPhaseExponent(const Row& a, const Row& b) const;
  /// Symplectic product: true iff the Paulis of rows `a` and `b`
  /// anticommute.
  bool anticommutes(const Row& a, const Row& b) const;

  /// Index of the first stabilizer row with X on `qubit`, or 2n when the
  /// measurement outcome is deterministic.
  unsigned anticommutingStabilizer(unsigned qubit) const;
  /// Tableau update for a random measurement outcome (Aaronson–Gottesman),
  /// forcing the observed bit to `outcome`.
  bool collapseRandom(unsigned qubit, unsigned p, bool outcome);

  void applyH(unsigned q);
  void applyS(unsigned q);
  void applyX(unsigned q);
  void applyZ(unsigned q);
  void applyCnot(unsigned control, unsigned target);

  unsigned n_;
  unsigned words_;
  std::vector<Row> rows_;
};

}  // namespace sliq
