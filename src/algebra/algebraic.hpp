// Algebraic representation of complex amplitudes (paper Eq. 5):
//
//     α = (a·ω³ + b·ω² + c·ω + d) / √2ᵏ,   ω = e^{iπ/4},
//
// with a, b, c, d ∈ Z (arbitrary precision here) and k ∈ Z. Every entry of a
// Clifford+T circuit's state vector is exactly representable in this form.
//
// Useful identities (ω⁸ = 1, ω⁴ = −1):
//   ω  = (1 + i)/√2       ω² = i       ω³ = (−1 + i)/√2
//   multiplication by ω is the cyclic coefficient shift
//   (a,b,c,d) → (b,c,d,−a).
#pragma once

#include <complex>
#include <cstdint>
#include <string>

#include "bigint/bigint.hpp"
#include "bigint/zroot2.hpp"

namespace sliq {

class AlgebraicComplex {
 public:
  /// Zero amplitude (k = 0).
  AlgebraicComplex() = default;
  AlgebraicComplex(BigInt a, BigInt b, BigInt c, BigInt d, std::int64_t k)
      : a_(std::move(a)), b_(std::move(b)), c_(std::move(c)),
        d_(std::move(d)), k_(k) {}

  /// The amplitude 1 (basis-state weight of a freshly prepared state).
  static AlgebraicComplex one() { return {BigInt(0), BigInt(0), BigInt(0), BigInt(1), 0}; }
  /// ω^p / √2ᵏ for p in [0, 8).
  static AlgebraicComplex omegaPower(unsigned p, std::int64_t k = 0);

  const BigInt& a() const { return a_; }
  const BigInt& b() const { return b_; }
  const BigInt& c() const { return c_; }
  const BigInt& d() const { return d_; }
  std::int64_t k() const { return k_; }

  bool isZero() const {
    return a_.isZero() && b_.isZero() && c_.isZero() && d_.isZero();
  }

  /// Exact equality *as complex numbers* — representations are normalized by
  /// aligning k (coefficients scale by 2 per two units of k).
  friend bool operator==(const AlgebraicComplex& x, const AlgebraicComplex& y);
  friend bool operator!=(const AlgebraicComplex& x,
                         const AlgebraicComplex& y) {
    return !(x == y);
  }

  /// Sum; operands may carry different k (aligned internally).
  AlgebraicComplex operator+(const AlgebraicComplex& rhs) const;
  AlgebraicComplex operator-() const {
    return {-a_, -b_, -c_, -d_, k_};
  }
  AlgebraicComplex operator-(const AlgebraicComplex& rhs) const {
    return *this + (-rhs);
  }
  /// Product (exact).
  AlgebraicComplex operator*(const AlgebraicComplex& rhs) const;

  /// Multiplication by ω^p: cyclic shift of coefficients with sign flips.
  AlgebraicComplex timesOmega(unsigned p = 1) const;
  AlgebraicComplex conjugate() const;

  /// Exact |α|²·2ᵏ  =  (a²+b²+c²+d²) + √2·(dc − da + ab + bc)  ∈ Z[√2].
  /// Divide by 2ᵏ (caller-side, via the k() accessor) for the probability.
  Zroot2 normSqScaled() const;
  /// |α|² as a double (exact ring value, one final rounding).
  double normSq() const;

  /// Numeric value (one rounding per term).
  std::complex<double> toComplex() const;

  /// Human-readable rendering, e.g. "(1 - ω²)/√2^3".
  std::string toString() const;

 private:
  BigInt a_, b_, c_, d_;
  std::int64_t k_ = 0;
};

}  // namespace sliq
