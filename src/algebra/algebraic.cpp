#include "algebra/algebraic.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace sliq {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;

/// Scales coefficients so both operands share max(k1, k2): increasing k by 2
/// multiplies all coefficients by 2 (since α = coeffs/√2ᵏ); an odd k delta
/// is resolved with the identity 1/√2 = ω − ω³... which mixes coefficients.
/// To stay coefficient-local we only align k in steps of 2 and, for odd
/// deltas, use √2 = ω − ω³ applied as a coefficient rotation:
///   (a,b,c,d)·√2 = (a(ω−ω³)... ) — worked out below in multiplySqrt2.
void multiplySqrt2(BigInt& a, BigInt& b, BigInt& c, BigInt& d) {
  // (aω³ + bω² + cω + d)(ω − ω³)
  //   = aω⁴ − aω⁶ + bω³ − bω⁵ + cω² − cω⁴ + dω − dω³
  //   = (−a + c·... ) — expand using ω⁴ = −1, ω⁵ = −ω, ω⁶ = −ω²:
  //   = −a + aω² + bω³ + bω + cω² + c + dω − dω³
  //   = (b − d)ω³ + (a + c)ω² + (b + d)ω + (c − a)
  BigInt na = b - d;
  BigInt nb = a + c;
  BigInt nc = b + d;
  BigInt nd = c - a;
  a = std::move(na);
  b = std::move(nb);
  c = std::move(nc);
  d = std::move(nd);
}

}  // namespace

AlgebraicComplex AlgebraicComplex::omegaPower(unsigned p, std::int64_t k) {
  AlgebraicComplex r = one().timesOmega(p % 8);
  r.k_ = k;
  return r;
}

bool operator==(const AlgebraicComplex& x, const AlgebraicComplex& y) {
  // Align to the larger k and compare coefficients.
  AlgebraicComplex lo = x.k_ <= y.k_ ? x : y;
  const AlgebraicComplex& hi = x.k_ <= y.k_ ? y : x;
  while (lo.k_ + 1 < hi.k_) {
    lo.a_ <<= 1;
    lo.b_ <<= 1;
    lo.c_ <<= 1;
    lo.d_ <<= 1;
    lo.k_ += 2;
  }
  if (lo.k_ != hi.k_) {
    multiplySqrt2(lo.a_, lo.b_, lo.c_, lo.d_);
    lo.k_ += 1;
  }
  return lo.a_ == hi.a_ && lo.b_ == hi.b_ && lo.c_ == hi.c_ && lo.d_ == hi.d_;
}

AlgebraicComplex AlgebraicComplex::operator+(
    const AlgebraicComplex& rhs) const {
  AlgebraicComplex lo = k_ <= rhs.k_ ? *this : rhs;
  AlgebraicComplex hi = k_ <= rhs.k_ ? rhs : *this;
  while (lo.k_ + 1 < hi.k_) {
    lo.a_ <<= 1;
    lo.b_ <<= 1;
    lo.c_ <<= 1;
    lo.d_ <<= 1;
    lo.k_ += 2;
  }
  if (lo.k_ != hi.k_) {
    multiplySqrt2(lo.a_, lo.b_, lo.c_, lo.d_);
    lo.k_ += 1;
  }
  return {lo.a_ + hi.a_, lo.b_ + hi.b_, lo.c_ + hi.c_, lo.d_ + hi.d_, hi.k_};
}

AlgebraicComplex AlgebraicComplex::operator*(
    const AlgebraicComplex& rhs) const {
  // Polynomial product modulo ω⁴ = −1. Term (i,j) contributes to ω^{i+j}.
  // Powers: a↔3, b↔2, c↔1, d↔0.
  const BigInt* lhsCoef[4] = {&d_, &c_, &b_, &a_};           // index = power
  const BigInt* rhsCoef[4] = {&rhs.d_, &rhs.c_, &rhs.b_, &rhs.a_};
  BigInt acc[4];  // accumulated coefficient of ω^p
  for (int i = 0; i < 4; ++i) {
    if (lhsCoef[i]->isZero()) continue;
    for (int j = 0; j < 4; ++j) {
      if (rhsCoef[j]->isZero()) continue;
      const int p = i + j;
      const BigInt term = *lhsCoef[i] * *rhsCoef[j];
      if (p < 4) {
        acc[p] += term;
      } else {
        acc[p - 4] -= term;  // ω⁴ = −1
      }
    }
  }
  return {acc[3], acc[2], acc[1], acc[0], k_ + rhs.k_};
}

AlgebraicComplex AlgebraicComplex::timesOmega(unsigned p) const {
  AlgebraicComplex r = *this;
  for (unsigned i = 0; i < p % 8; ++i) {
    // (aω³ + bω² + cω + d)·ω = aω⁴ + bω³ + cω² + dω = −a + bω³ + cω² + dω.
    BigInt newA = std::move(r.b_);
    BigInt newB = std::move(r.c_);
    BigInt newC = std::move(r.d_);
    BigInt newD = -r.a_;
    r.a_ = std::move(newA);
    r.b_ = std::move(newB);
    r.c_ = std::move(newC);
    r.d_ = std::move(newD);
  }
  return r;
}

AlgebraicComplex AlgebraicComplex::conjugate() const {
  // conj(ω) = ω⁻¹ = −ω³, conj(ω²) = −ω², conj(ω³) = −ω.
  return {-c_, -b_, -a_, d_, k_};
}

Zroot2 AlgebraicComplex::normSqScaled() const {
  // Re·√2ᵏ = d + (c − a)/√2, Im·√2ᵏ = b + (a + c)/√2 ⇒
  // |α|²·2ᵏ = a²+b²+c²+d² + √2(dc − da + ab + bc).
  BigInt u = a_ * a_ + b_ * b_ + c_ * c_ + d_ * d_;
  BigInt v = d_ * c_ - d_ * a_ + a_ * b_ + b_ * c_;
  return Zroot2(std::move(u), std::move(v));
}

double AlgebraicComplex::normSq() const {
  double m;
  std::int64_t e;
  normSqScaled().toScaledDouble(m, e);
  return std::ldexp(m, static_cast<int>(e - k_));
}

std::complex<double> AlgebraicComplex::toComplex() const {
  // α·√2ᵏ = (d + (c−a)/√2) + i(b + (a+c)/√2); evaluate with scaled doubles
  // to survive large coefficients / large k.
  double ma, mb, mc, md;
  std::int64_t ea, eb, ec, ed;
  a_.toScaledDouble(ma, ea);
  b_.toScaledDouble(mb, eb);
  c_.toScaledDouble(mc, ec);
  d_.toScaledDouble(md, ed);
  auto value = [](double m, std::int64_t e) {
    if (m == 0.0) return 0.0;
    return std::ldexp(m, static_cast<int>(e));
  };
  const double av = value(ma, ea), bv = value(mb, eb), cv = value(mc, ec),
               dv = value(md, ed);
  const double re = dv + (cv - av) * kInvSqrt2;
  const double im = bv + (cv + av) * kInvSqrt2;
  const double scale = std::pow(kInvSqrt2, static_cast<double>(k_));
  return {re * scale, im * scale};
}

std::string AlgebraicComplex::toString() const {
  std::string s = "(";
  bool first = true;
  auto term = [&](const BigInt& coef, const char* sym) {
    if (coef.isZero()) return;
    if (!first) s += coef.isNegative() ? " - " : " + ";
    else if (coef.isNegative()) s += "-";
    first = false;
    BigInt mag = coef.isNegative() ? -coef : coef;
    const bool unit = mag == BigInt(1) && sym[0] != '\0';
    if (!unit) s += mag.toDecimal();
    s += sym;
  };
  term(a_, "ω³");
  term(b_, "ω²");
  term(c_, "ω");
  term(d_, "");
  if (first) s += "0";
  s += ")";
  if (k_ != 0) s += "/√2^" + std::to_string(k_);
  return s;
}

}  // namespace sliq
