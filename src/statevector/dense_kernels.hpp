// Cache-blocked dense statevector kernels (DESIGN.md §9).
//
// Free-function kernels over a raw amplitude array, shared by the
// statevector simulator's per-gate path and its fused-block path. Each
// kernel decomposes the 2^n amplitude array into contiguous runs (bounded
// by the lowest varying qubit stride) so the inner loops are unit-stride
// streams the compiler auto-vectorizes; with SLIQ_SIMD defined the runs
// additionally dispatch to explicit AVX2 (x86-64) or NEON (aarch64)
// complex-arithmetic bodies.
//
// Parallelism: an ExecContext carries an optional ThreadPool. Work is the
// flattened group index (pairs for apply1, quads for apply2); it is split
// into `threads` contiguous ranges, one task per range. Every amplitude is
// written by exactly one task and each update reads only amplitudes inside
// its own range's groups — no reductions, no shared accumulators — so the
// result is bit-identical for every thread count (the fusion tests pin
// this exactly, not to a tolerance).
#pragma once

#include <complex>
#include <cstdint>

namespace sliq {

class ThreadPool;

namespace dense {

using Amp = std::complex<double>;

/// Execution context for one kernel call. Default: serial.
struct ExecContext {
  ThreadPool* pool = nullptr;  // null → serial
  unsigned threads = 1;        // partitions when pool != nullptr
};

/// Groups below this size run serially even with a pool attached — the
/// submit/join overhead dwarfs the arithmetic for small registers.
constexpr std::uint64_t kMinParallelGroups = std::uint64_t{1} << 15;

/// state[i], state[i+2^target] ← m · (…) for every pair. Row-major 2×2.
void apply1(Amp* state, std::uint64_t size, unsigned target, const Amp m[4],
            const ExecContext& ctx);

/// apply1 restricted to indices with every bit of controlMask set.
/// controlMask must not contain bit `target`.
void applyControlled1(Amp* state, std::uint64_t size,
                      std::uint64_t controlMask, unsigned target,
                      const Amp m[4], const ExecContext& ctx);

/// 4×4 block on the (qLow, qHigh) pair, qLow < qHigh; basis index
/// b = 2·(bit of qHigh) + (bit of qLow), matrix row-major. With
/// `diagonal` set only the 4 diagonal entries are read (phase multiply).
void apply2(Amp* state, std::uint64_t size, unsigned qLow, unsigned qHigh,
            const Amp m[16], bool diagonal, const ExecContext& ctx);

/// (Controlled) SWAP of qubits q0 and q1 (order irrelevant).
/// controlMask must not contain bit q0 or bit q1.
void applySwap(Amp* state, std::uint64_t size, std::uint64_t controlMask,
               unsigned q0, unsigned q1, const ExecContext& ctx);

/// True when this build carries the explicit SIMD kernel bodies
/// (compiled under SLIQ_SIMD with AVX2 or NEON available).
bool simdEnabled();

}  // namespace dense
}  // namespace sliq
