#include "statevector/statevector.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include <utility>

#include "circuit/optimizer.hpp"
#include "statevector/dense_kernels.hpp"
#include "support/assert.hpp"
#include "support/audit.hpp"
#include "support/serialize.hpp"
#include "support/thread_pool.hpp"

namespace sliq {

namespace {
const std::complex<double> kI{0.0, 1.0};
}  // namespace

StatevectorSimulator::StatevectorSimulator(unsigned numQubits,
                                           std::uint64_t basisState)
    : numQubits_(numQubits) {
  SLIQ_REQUIRE(numQubits >= 1 && numQubits <= 28,
               "dense simulation limited to 28 qubits");
  SLIQ_REQUIRE(basisState < (std::uint64_t{1} << numQubits),
               "basis state out of range");
  state_.assign(std::uint64_t{1} << numQubits, Amplitude{0.0, 0.0});
  state_[basisState] = 1.0;
}

StatevectorSimulator::~StatevectorSimulator() = default;
StatevectorSimulator::StatevectorSimulator(StatevectorSimulator&&) noexcept =
    default;
StatevectorSimulator& StatevectorSimulator::operator=(
    StatevectorSimulator&&) noexcept = default;

void StatevectorSimulator::setThreads(unsigned threads) {
  if (threads == 0) threads = ThreadPool::hardwareConcurrency();
  threads_ = threads;
  if (threads_ <= 1) {
    pool_.reset();
  } else if (!pool_ || pool_->size() != threads_) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
}

namespace {
dense::ExecContext execContext(ThreadPool* pool, unsigned threads) {
  dense::ExecContext ctx;
  ctx.pool = threads > 1 ? pool : nullptr;
  ctx.threads = threads;
  return ctx;
}
}  // namespace

void StatevectorSimulator::apply1(unsigned target, const Amplitude m[4]) {
  dense::apply1(state_.data(), state_.size(), target, m,
                execContext(pool_.get(), threads_));
}

void StatevectorSimulator::applyControlled1(
    const std::vector<unsigned>& controls, unsigned target,
    const Amplitude m[4]) {
  std::uint64_t controlMask = 0;
  for (unsigned c : controls) controlMask |= std::uint64_t{1} << c;
  dense::applyControlled1(state_.data(), state_.size(), controlMask, target,
                          m, execContext(pool_.get(), threads_));
}

void StatevectorSimulator::applySwap(const std::vector<unsigned>& controls,
                                     unsigned q0, unsigned q1) {
  std::uint64_t controlMask = 0;
  for (unsigned c : controls) controlMask |= std::uint64_t{1} << c;
  dense::applySwap(state_.data(), state_.size(), controlMask, q0, q1,
                   execContext(pool_.get(), threads_));
}

void StatevectorSimulator::applyGate(const Gate& gate) {
  validateGate(gate, numQubits_);
  switch (gate.kind) {
    case GateKind::kSwap:
      applySwap(gate.controls, gate.targets[0], gate.targets[1]);
      return;
    case GateKind::kMeasure:
    case GateKind::kReset:
      SLIQ_REQUIRE(false,
                   "measure/reset are not unitary gates — dynamic circuits "
                   "execute through Engine::runDynamic");
      return;
    default: {
      Amplitude m[4];
      gateUnitary2x2(gate.kind, m);
      applyControlled1(gate.controls, gate.target(), m);
      return;
    }
  }
}

void StatevectorSimulator::applyFused(const FusedOp& op) {
  const auto ctx = execContext(pool_.get(), threads_);
  switch (op.kind) {
    case FusedOp::Kind::kGate:
      applyGate(op.gate);
      return;
    case FusedOp::Kind::k1q:
      dense::apply1(state_.data(), state_.size(), op.q0, op.m1.data(), ctx);
      return;
    case FusedOp::Kind::k2q:
      dense::apply2(state_.data(), state_.size(), op.q0, op.q1,
                    op.m2.data(), op.diagonal, ctx);
      return;
  }
}

void StatevectorSimulator::run(const QuantumCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == numQubits_, "circuit width mismatch");
  for (const Gate& g : circuit.gates()) applyGate(g);
}

void StatevectorSimulator::runFused(const FusedCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == numQubits_, "circuit width mismatch");
  for (const FusedOp& op : circuit.ops()) applyFused(op);
}

double StatevectorSimulator::probabilityOne(unsigned qubit) const {
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  double p = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    if (i & bit) p += std::norm(state_[i]);
  }
  return p;
}

double StatevectorSimulator::totalProbability() const {
  double p = 0;
  for (const Amplitude& a : state_) p += std::norm(a);
  return p;
}

void StatevectorSimulator::auditInvariants(double normTolerance) const {
  static const std::string kStructure = "statevector";
  if (state_.size() != std::uint64_t{1} << numQubits_) {
    audit::fail(kStructure, "state holds " + std::to_string(state_.size()) +
                                " amplitudes, expected 2^" +
                                std::to_string(numQubits_));
  }
  double norm = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    const Amplitude& a = state_[i];
    if (!std::isfinite(a.real()) || !std::isfinite(a.imag())) {
      audit::fail(kStructure, "amplitude " + std::to_string(i) +
                                  " is not finite (NaN/Inf)");
    }
    norm += std::norm(a);
  }
  if (std::abs(norm - 1.0) > normTolerance) {
    audit::fail(kStructure,
                "norm drifted to " + std::to_string(norm) +
                    " (|Σ|α|² − 1| > " + std::to_string(normTolerance) + ")");
  }
}

double StatevectorSimulator::expectationPauli(std::uint64_t xmask,
                                              std::uint64_t ymask,
                                              std::uint64_t zmask) const {
  SLIQ_REQUIRE((xmask & ymask) == 0 && (xmask & zmask) == 0 &&
                   (ymask & zmask) == 0,
               "pauli supports must be disjoint");
  const std::uint64_t width =
      numQubits_ < 64 ? (std::uint64_t{1} << numQubits_) - 1 : ~std::uint64_t{0};
  SLIQ_REQUIRE(((xmask | ymask | zmask) & ~width) == 0,
               "pauli support exceeds register width");
  const std::uint64_t flip = xmask | ymask;      // X and Y flip the bit
  const std::uint64_t zlike = zmask | ymask;     // Z and Y carry (−1)^bit
  // i^|Y|: Hermitian strings have an even contribution overall, but the
  // per-basis-state phase carries it explicitly.
  Amplitude prefactor{1.0, 0.0};
  for (unsigned k = 0; k < (__builtin_popcountll(ymask) & 3u); ++k)
    prefactor *= kI;
  Amplitude sum{0.0, 0.0};
  double norm = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    norm += std::norm(state_[i]);
    if (state_[i] == Amplitude{0.0, 0.0}) continue;
    const double sign = __builtin_parityll(i & zlike) ? -1.0 : 1.0;
    sum += std::conj(state_[i ^ flip]) * (sign * state_[i]);
  }
  SLIQ_CHECK(norm > 0, "zero state has no expectation values");
  return (prefactor * sum).real() / norm;
}

bool StatevectorSimulator::measure(unsigned qubit, double random) {
  const double p1 = probabilityOne(qubit);
  const bool outcome = random < p1;
  const double keep = outcome ? p1 : 1.0 - p1;
  const double scale = keep > 0 ? 1.0 / std::sqrt(keep) : 0.0;
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    const bool isOne = (i & bit) != 0;
    state_[i] = isOne == outcome ? state_[i] * scale : Amplitude{0, 0};
  }
  return outcome;
}

bool StatevectorSimulator::reset(unsigned qubit, double random) {
  const bool was = measure(qubit, random);
  if (was) applyGate(Gate{GateKind::kX, {qubit}, {}});
  return was;
}

std::uint64_t StatevectorSimulator::sampleAll(double random) const {
  double acc = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    acc += std::norm(state_[i]);
    if (random < acc) return i;
  }
  return state_.size() - 1;
}

std::vector<std::uint64_t> StatevectorSimulator::sampleShots(unsigned count,
                                                             Rng& rng) const {
  std::vector<std::uint64_t> shots;
  shots.reserve(count);
  if (count == 0) return shots;
  // Sequential prefix sums: cdf[i] equals sampleAll's running `acc` after
  // index i, so upper_bound picks the same state sampleAll would.
  std::vector<double> cdf(state_.size());
  double acc = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    acc += std::norm(state_[i]);
    cdf[i] = acc;
  }
  for (unsigned s = 0; s < count; ++s) {
    const double random = rng.uniform();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), random);
    shots.push_back(it == cdf.end()
                        ? state_.size() - 1
                        : static_cast<std::uint64_t>(it - cdf.begin()));
  }
  return shots;
}

// ---- snapshots (DESIGN.md §12) ---------------------------------------------
//
// Payload layout (`sliq.state.v1`, representation "statevector"):
//
//   u32 numQubits        must match the receiving simulator
//   2ⁿ × (f64 re, f64 im)   amplitudes, basis index ascending

void StatevectorSimulator::saveStatePayload(serialize::Writer& out) {
  out.u32(numQubits_);
  for (const Amplitude& amp : state_) {
    out.f64(amp.real());
    out.f64(amp.imag());
  }
}

void StatevectorSimulator::loadStatePayload(serialize::Reader& in) {
  const std::uint32_t n = in.u32("statevector.numQubits");
  if (n != numQubits_) {
    throw serialize::SerializationError(
        "snapshot field 'statevector.numQubits': payload says " +
        std::to_string(n) + " qubit(s) but the simulator has " +
        std::to_string(numQubits_));
  }
  std::vector<Amplitude> state;
  state.reserve(state_.size());
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const double re = in.f64("statevector.amplitude");
    const double im = in.f64("statevector.amplitude");
    state.emplace_back(re, im);
  }
  state_ = std::move(state);  // all parsed — commit atomically
}

void StatevectorSimulator::setState(std::vector<Amplitude> amplitudes) {
  SLIQ_REQUIRE(amplitudes.size() ==
                   (std::uint64_t{1} << numQubits_),
               "dense amplitude array size must be 2^numQubits");
  state_ = std::move(amplitudes);
}

}  // namespace sliq
