#include "statevector/statevector.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace sliq {

namespace {
constexpr double kInvSqrt2 = 0.7071067811865476;
const std::complex<double> kI{0.0, 1.0};
}  // namespace

StatevectorSimulator::StatevectorSimulator(unsigned numQubits,
                                           std::uint64_t basisState)
    : numQubits_(numQubits) {
  SLIQ_REQUIRE(numQubits >= 1 && numQubits <= 28,
               "dense simulation limited to 28 qubits");
  SLIQ_REQUIRE(basisState < (std::uint64_t{1} << numQubits),
               "basis state out of range");
  state_.assign(std::uint64_t{1} << numQubits, Amplitude{0.0, 0.0});
  state_[basisState] = 1.0;
}

void StatevectorSimulator::apply1(unsigned target, const Amplitude m[2][2]) {
  const std::uint64_t stride = std::uint64_t{1} << target;
  for (std::uint64_t base = 0; base < state_.size(); base += 2 * stride) {
    for (std::uint64_t off = 0; off < stride; ++off) {
      const std::uint64_t i0 = base + off;
      const std::uint64_t i1 = i0 + stride;
      const Amplitude a0 = state_[i0];
      const Amplitude a1 = state_[i1];
      state_[i0] = m[0][0] * a0 + m[0][1] * a1;
      state_[i1] = m[1][0] * a0 + m[1][1] * a1;
    }
  }
}

void StatevectorSimulator::applyControlled1(
    const std::vector<unsigned>& controls, unsigned target,
    const Amplitude m[2][2]) {
  if (controls.empty()) {
    apply1(target, m);
    return;
  }
  std::uint64_t controlMask = 0;
  for (unsigned c : controls) controlMask |= std::uint64_t{1} << c;
  const std::uint64_t stride = std::uint64_t{1} << target;
  for (std::uint64_t i0 = 0; i0 < state_.size(); ++i0) {
    if ((i0 & stride) != 0) continue;
    if ((i0 & controlMask) != controlMask) continue;
    const std::uint64_t i1 = i0 | stride;
    const Amplitude a0 = state_[i0];
    const Amplitude a1 = state_[i1];
    state_[i0] = m[0][0] * a0 + m[0][1] * a1;
    state_[i1] = m[1][0] * a0 + m[1][1] * a1;
  }
}

void StatevectorSimulator::applySwap(const std::vector<unsigned>& controls,
                                     unsigned q0, unsigned q1) {
  std::uint64_t controlMask = 0;
  for (unsigned c : controls) controlMask |= std::uint64_t{1} << c;
  const std::uint64_t bit0 = std::uint64_t{1} << q0;
  const std::uint64_t bit1 = std::uint64_t{1} << q1;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    // Visit each swapped pair once: q0 set, q1 clear.
    if ((i & bit0) == 0 || (i & bit1) != 0) continue;
    if ((i & controlMask) != controlMask) continue;
    const std::uint64_t j = (i & ~bit0) | bit1;
    std::swap(state_[i], state_[j]);
  }
}

void StatevectorSimulator::applyGate(const Gate& gate) {
  validateGate(gate, numQubits_);
  const Amplitude kX[2][2] = {{0, 1}, {1, 0}};
  const Amplitude kY[2][2] = {{0, -kI}, {kI, 0}};
  const Amplitude kZ[2][2] = {{1, 0}, {0, -1}};
  const Amplitude kH[2][2] = {{kInvSqrt2, kInvSqrt2},
                              {kInvSqrt2, -kInvSqrt2}};
  const Amplitude kS[2][2] = {{1, 0}, {0, kI}};
  const Amplitude kSdg[2][2] = {{1, 0}, {0, -kI}};
  const Amplitude omega = std::polar(1.0, M_PI / 4);
  const Amplitude kT[2][2] = {{1, 0}, {0, omega}};
  const Amplitude kTdg[2][2] = {{1, 0}, {0, std::conj(omega)}};
  const Amplitude kRx[2][2] = {{kInvSqrt2, -kI * kInvSqrt2},
                               {-kI * kInvSqrt2, kInvSqrt2}};
  const Amplitude kRy[2][2] = {{kInvSqrt2, -kInvSqrt2},
                               {kInvSqrt2, kInvSqrt2}};

  switch (gate.kind) {
    case GateKind::kX: apply1(gate.target(), kX); break;
    case GateKind::kY: apply1(gate.target(), kY); break;
    case GateKind::kZ: apply1(gate.target(), kZ); break;
    case GateKind::kH: apply1(gate.target(), kH); break;
    case GateKind::kS: apply1(gate.target(), kS); break;
    case GateKind::kSdg: apply1(gate.target(), kSdg); break;
    case GateKind::kT: apply1(gate.target(), kT); break;
    case GateKind::kTdg: apply1(gate.target(), kTdg); break;
    case GateKind::kRx90: apply1(gate.target(), kRx); break;
    case GateKind::kRy90: apply1(gate.target(), kRy); break;
    case GateKind::kCnot:
      applyControlled1(gate.controls, gate.target(), kX);
      break;
    case GateKind::kCz:
      applyControlled1(gate.controls, gate.target(), kZ);
      break;
    case GateKind::kSwap:
      applySwap(gate.controls, gate.targets[0], gate.targets[1]);
      break;
    case GateKind::kMeasure:
    case GateKind::kReset:
      SLIQ_REQUIRE(false,
                   "measure/reset are not unitary gates — dynamic circuits "
                   "execute through Engine::runDynamic");
      break;
  }
}

void StatevectorSimulator::run(const QuantumCircuit& circuit) {
  SLIQ_REQUIRE(circuit.numQubits() == numQubits_, "circuit width mismatch");
  for (const Gate& g : circuit.gates()) applyGate(g);
}

double StatevectorSimulator::probabilityOne(unsigned qubit) const {
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  double p = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    if (i & bit) p += std::norm(state_[i]);
  }
  return p;
}

double StatevectorSimulator::totalProbability() const {
  double p = 0;
  for (const Amplitude& a : state_) p += std::norm(a);
  return p;
}

double StatevectorSimulator::expectationPauli(std::uint64_t xmask,
                                              std::uint64_t ymask,
                                              std::uint64_t zmask) const {
  SLIQ_REQUIRE((xmask & ymask) == 0 && (xmask & zmask) == 0 &&
                   (ymask & zmask) == 0,
               "pauli supports must be disjoint");
  const std::uint64_t width =
      numQubits_ < 64 ? (std::uint64_t{1} << numQubits_) - 1 : ~std::uint64_t{0};
  SLIQ_REQUIRE(((xmask | ymask | zmask) & ~width) == 0,
               "pauli support exceeds register width");
  const std::uint64_t flip = xmask | ymask;      // X and Y flip the bit
  const std::uint64_t zlike = zmask | ymask;     // Z and Y carry (−1)^bit
  // i^|Y|: Hermitian strings have an even contribution overall, but the
  // per-basis-state phase carries it explicitly.
  Amplitude prefactor{1.0, 0.0};
  for (unsigned k = 0; k < (__builtin_popcountll(ymask) & 3u); ++k)
    prefactor *= kI;
  Amplitude sum{0.0, 0.0};
  double norm = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    norm += std::norm(state_[i]);
    if (state_[i] == Amplitude{0.0, 0.0}) continue;
    const double sign = __builtin_parityll(i & zlike) ? -1.0 : 1.0;
    sum += std::conj(state_[i ^ flip]) * (sign * state_[i]);
  }
  SLIQ_CHECK(norm > 0, "zero state has no expectation values");
  return (prefactor * sum).real() / norm;
}

bool StatevectorSimulator::measure(unsigned qubit, double random) {
  const double p1 = probabilityOne(qubit);
  const bool outcome = random < p1;
  const double keep = outcome ? p1 : 1.0 - p1;
  const double scale = keep > 0 ? 1.0 / std::sqrt(keep) : 0.0;
  const std::uint64_t bit = std::uint64_t{1} << qubit;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    const bool isOne = (i & bit) != 0;
    state_[i] = isOne == outcome ? state_[i] * scale : Amplitude{0, 0};
  }
  return outcome;
}

bool StatevectorSimulator::reset(unsigned qubit, double random) {
  const bool was = measure(qubit, random);
  if (was) applyGate(Gate{GateKind::kX, {qubit}, {}});
  return was;
}

std::uint64_t StatevectorSimulator::sampleAll(double random) const {
  double acc = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    acc += std::norm(state_[i]);
    if (random < acc) return i;
  }
  return state_.size() - 1;
}

std::vector<std::uint64_t> StatevectorSimulator::sampleShots(unsigned count,
                                                             Rng& rng) const {
  std::vector<std::uint64_t> shots;
  shots.reserve(count);
  if (count == 0) return shots;
  // Sequential prefix sums: cdf[i] equals sampleAll's running `acc` after
  // index i, so upper_bound picks the same state sampleAll would.
  std::vector<double> cdf(state_.size());
  double acc = 0;
  for (std::uint64_t i = 0; i < state_.size(); ++i) {
    acc += std::norm(state_[i]);
    cdf[i] = acc;
  }
  for (unsigned s = 0; s < count; ++s) {
    const double random = rng.uniform();
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), random);
    shots.push_back(it == cdf.end()
                        ? state_.size() - 1
                        : static_cast<std::uint64_t>(it - cdf.begin()));
  }
  return shots;
}

}  // namespace sliq
