// Dense array-based statevector simulator.
//
// This is the "array-based" simulator class of the paper's related work
// ([5]-[9]): a 2^n complex<double> vector updated gate by gate. It serves as
// (a) ground truth for the exact BDD engine in tests (n <= ~24) and (b) the
// array-based comparator in the benchmark harnesses.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "support/rng.hpp"

namespace sliq::serialize {
class Writer;
class Reader;
}  // namespace sliq::serialize

namespace sliq {

class ThreadPool;
struct FusedOp;  // circuit/optimizer.hpp

class StatevectorSimulator {
 public:
  using Amplitude = std::complex<double>;

  /// Prepares |basisState⟩ over numQubits qubits (basis bit q of the index
  /// corresponds to qubit q; qubit 0 is the least significant bit).
  explicit StatevectorSimulator(unsigned numQubits,
                                std::uint64_t basisState = 0);
  ~StatevectorSimulator();
  StatevectorSimulator(StatevectorSimulator&&) noexcept;
  StatevectorSimulator& operator=(StatevectorSimulator&&) noexcept;

  unsigned numQubits() const { return numQubits_; }
  const std::vector<Amplitude>& state() const { return state_; }
  /// Replaces the register with `amplitudes` (size exactly 2^n, bit q of
  /// the index = qubit q) — the dense landing pad of cross-representation
  /// state conversion (core/state_convert.cpp). The caller owns
  /// normalization; auditInvariants() still checks Σ|α|² ≈ 1.
  void setState(std::vector<Amplitude> amplitudes);

  /// Number of worker threads the gate kernels partition amplitude groups
  /// across. 1 (default) runs in the calling thread; 0 means "auto"
  /// (hardware concurrency). The partitioning is contiguous and
  /// reduction-free, so every thread count yields bit-identical amplitudes
  /// (pinned exactly by the fusion tests). Small registers stay serial
  /// regardless (dense::kMinParallelGroups).
  void setThreads(unsigned threads);
  unsigned threads() const { return threads_; }

  void applyGate(const Gate& gate);
  void run(const QuantumCircuit& circuit);
  /// Applies one fused op (optimizer.hpp): a verbatim gate, a fused 2×2,
  /// or a fused 4×4 / diagonal block.
  void applyFused(const FusedOp& op);
  /// Runs a fused circuit — run(c.fused()) equals run(c) up to the
  /// reassociation error of the fused matrix products.
  void runFused(const FusedCircuit& circuit);

  Amplitude amplitude(std::uint64_t basisState) const {
    return state_[basisState];
  }
  /// Pr[qubit q = 1].
  double probabilityOne(unsigned qubit) const;
  /// Sum of |amplitude|² (should be 1 up to rounding).
  double totalProbability() const;
  /// Measures a single qubit (collapse + renormalize), consuming `random`
  /// in [0,1) to pick the outcome. Returns the observed bit.
  bool measure(unsigned qubit, double random);
  /// Resets a qubit to |0⟩: projective collapse exactly like measure(),
  /// then an X when the observed bit was 1. Consumes one deviate; returns
  /// the pre-reset measured bit.
  bool reset(unsigned qubit, double random);
  /// ⟨P⟩ for the Pauli string with X-support `xmask`, Y-support `ymask` and
  /// Z-support `zmask` (disjoint, bit q = qubit q), by direct contraction:
  /// Σ_i conj(α_{i⊕flip})·phase(i)·α_i with flip = X∪Y support and
  /// phase(i) = i^{|Y|}·(−1)^{popcount(i ∩ (Z∪Y))}. Normalized by Σ|α|²;
  /// does not collapse or mutate the state.
  double expectationPauli(std::uint64_t xmask, std::uint64_t ymask,
                          std::uint64_t zmask) const;
  /// Samples a full basis state without collapsing the register.
  std::uint64_t sampleAll(double random) const;
  /// `count` samples through a one-time cumulative distribution + binary
  /// search: O(2ⁿ + count·n) instead of sampleAll's O(count·2ⁿ). Prefix
  /// sums accumulate in the same order as sampleAll, so identical deviates
  /// select identical basis states. Consumes one deviate per shot.
  std::vector<std::uint64_t> sampleShots(unsigned count, Rng& rng) const;

  // ---- snapshots (support/serialize.hpp; DESIGN.md §12) -------------------
  /// Serializes all 2ⁿ amplitudes as (re, im) double pairs.
  void saveStatePayload(serialize::Writer& out);
  /// Restores a saveStatePayload amplitude array. Parses the whole array
  /// before committing; throws serialize::SerializationError on corrupt
  /// input with the state unchanged.
  void loadStatePayload(serialize::Reader& in);

  /// Structural audit (DESIGN.md §10): every amplitude finite (NaN/Inf
  /// scan) and Σ|α|² within `normTolerance` of 1 — measure() renormalizes,
  /// so the norm must survive any gate/collapse sequence. Throws
  /// audit::AuditError naming the first offending amplitude.
  void auditInvariants(double normTolerance = 1e-6) const;

 private:
  friend struct AuditCorruptor;  // test-only deliberate corruption hooks
  void apply1(unsigned target, const Amplitude m[4]);
  void applyControlled1(const std::vector<unsigned>& controls, unsigned target,
                        const Amplitude m[4]);
  void applySwap(const std::vector<unsigned>& controls, unsigned q0,
                 unsigned q1);

  unsigned numQubits_;
  unsigned threads_ = 1;
  std::vector<Amplitude> state_;
  std::unique_ptr<ThreadPool> pool_;  // lazily built on setThreads(>1)
};

}  // namespace sliq
