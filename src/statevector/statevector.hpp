// Dense array-based statevector simulator.
//
// This is the "array-based" simulator class of the paper's related work
// ([5]-[9]): a 2^n complex<double> vector updated gate by gate. It serves as
// (a) ground truth for the exact BDD engine in tests (n <= ~24) and (b) the
// array-based comparator in the benchmark harnesses.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "support/rng.hpp"

namespace sliq {

class StatevectorSimulator {
 public:
  using Amplitude = std::complex<double>;

  /// Prepares |basisState⟩ over numQubits qubits (basis bit q of the index
  /// corresponds to qubit q; qubit 0 is the least significant bit).
  explicit StatevectorSimulator(unsigned numQubits,
                                std::uint64_t basisState = 0);

  unsigned numQubits() const { return numQubits_; }
  const std::vector<Amplitude>& state() const { return state_; }

  void applyGate(const Gate& gate);
  void run(const QuantumCircuit& circuit);

  Amplitude amplitude(std::uint64_t basisState) const {
    return state_[basisState];
  }
  /// Pr[qubit q = 1].
  double probabilityOne(unsigned qubit) const;
  /// Sum of |amplitude|² (should be 1 up to rounding).
  double totalProbability() const;
  /// Measures a single qubit (collapse + renormalize), consuming `random`
  /// in [0,1) to pick the outcome. Returns the observed bit.
  bool measure(unsigned qubit, double random);
  /// Resets a qubit to |0⟩: projective collapse exactly like measure(),
  /// then an X when the observed bit was 1. Consumes one deviate; returns
  /// the pre-reset measured bit.
  bool reset(unsigned qubit, double random);
  /// ⟨P⟩ for the Pauli string with X-support `xmask`, Y-support `ymask` and
  /// Z-support `zmask` (disjoint, bit q = qubit q), by direct contraction:
  /// Σ_i conj(α_{i⊕flip})·phase(i)·α_i with flip = X∪Y support and
  /// phase(i) = i^{|Y|}·(−1)^{popcount(i ∩ (Z∪Y))}. Normalized by Σ|α|²;
  /// does not collapse or mutate the state.
  double expectationPauli(std::uint64_t xmask, std::uint64_t ymask,
                          std::uint64_t zmask) const;
  /// Samples a full basis state without collapsing the register.
  std::uint64_t sampleAll(double random) const;
  /// `count` samples through a one-time cumulative distribution + binary
  /// search: O(2ⁿ + count·n) instead of sampleAll's O(count·2ⁿ). Prefix
  /// sums accumulate in the same order as sampleAll, so identical deviates
  /// select identical basis states. Consumes one deviate per shot.
  std::vector<std::uint64_t> sampleShots(unsigned count, Rng& rng) const;

 private:
  void apply1(unsigned target, const Amplitude m[2][2]);
  void applyControlled1(const std::vector<unsigned>& controls, unsigned target,
                        const Amplitude m[2][2]);
  void applySwap(const std::vector<unsigned>& controls, unsigned q0,
                 unsigned q1);

  unsigned numQubits_;
  std::vector<Amplitude> state_;
};

}  // namespace sliq
