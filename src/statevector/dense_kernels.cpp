#include "statevector/dense_kernels.hpp"

#include <algorithm>
#include <future>
#include <vector>

#include "support/assert.hpp"
#include "support/thread_pool.hpp"

#if defined(SLIQ_SIMD) && defined(__AVX2__)
#define SLIQ_DENSE_AVX2 1
#include <immintrin.h>
#elif defined(SLIQ_SIMD) && defined(__ARM_NEON)
#define SLIQ_DENSE_NEON 1
#include <arm_neon.h>
#endif

namespace sliq::dense {

namespace {

// ---- partitioning ---------------------------------------------------------

// Runs body(lo, hi) over contiguous partitions of [0, work). Each partition
// is one pool task (the calling thread takes the first); partitions touch
// disjoint amplitude groups, so any thread count produces bit-identical
// state. Joins before returning — `body` may be captured by reference.
template <typename Body>
void parallelFor(const ExecContext& ctx, std::uint64_t work,
                 const Body& body) {
  const bool serial = ctx.pool == nullptr || ctx.threads <= 1 ||
                      work < kMinParallelGroups;
  if (serial) {
    body(std::uint64_t{0}, work);
    return;
  }
  const std::uint64_t parts = std::min<std::uint64_t>(ctx.threads, work);
  const std::uint64_t chunk = (work + parts - 1) / parts;
  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<std::size_t>(parts) - 1);
  for (std::uint64_t p = 1; p < parts; ++p) {
    const std::uint64_t lo = std::min(work, p * chunk);
    const std::uint64_t hi = std::min(work, lo + chunk);
    if (lo >= hi) break;
    pending.push_back(ctx.pool->submit([&body, lo, hi] { body(lo, hi); }));
  }
  body(std::uint64_t{0}, std::min(chunk, work));
  for (auto& f : pending) f.get();
}

// ---- complex run primitives ----------------------------------------------
//
// Every kernel below bottoms out in one of these: unit-stride loops over
// one, two or four parallel amplitude streams. The streams are what the
// run decomposition buys — the SIMD bodies need nothing but contiguous
// loads/stores, and the scalar fallbacks auto-vectorize.

#if SLIQ_DENSE_AVX2
// (re, im) broadcast pair for one matrix entry.
struct AvxEntry {
  __m256d re, im;
};
inline AvxEntry avxEntry(const Amp& c) {
  return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}
// Two complex products per vector: v·c with v = [a0r a0i a1r a1i].
inline __m256d cmul(__m256d v, const AvxEntry& c) {
  return _mm256_addsub_pd(_mm256_mul_pd(v, c.re),
                          _mm256_mul_pd(_mm256_permute_pd(v, 0x5), c.im));
}
inline __m256d load2(const Amp* p) {
  return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}
inline void store2(Amp* p, __m256d v) {
  _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}
#elif SLIQ_DENSE_NEON
struct NeonEntry {
  float64x2_t re, im;
};
inline NeonEntry neonEntry(const Amp& c) {
  return {vdupq_n_f64(c.real()), vdupq_n_f64(c.imag())};
}
// One complex product: [vr·cr − vi·ci, vi·cr + vr·ci].
inline float64x2_t cmul(float64x2_t v, const NeonEntry& c) {
  const float64x2_t sign = {-1.0, 1.0};
  return vfmaq_f64(vmulq_f64(v, c.re),
                   vmulq_f64(vextq_f64(v, v, 1), c.im), sign);
}
inline float64x2_t load1(const Amp* p) {
  return vld1q_f64(reinterpret_cast<const double*>(p));
}
inline void store1(Amp* p, float64x2_t v) {
  vst1q_f64(reinterpret_cast<double*>(p), v);
}
#endif

// lo/hi ← [m0 m1; m2 m3]·[lo; hi] over n contiguous pairs of streams.
void run2x2(Amp* lo, Amp* hi, std::uint64_t n, const Amp m[4]) {
  std::uint64_t k = 0;
#if SLIQ_DENSE_AVX2
  const AvxEntry e00 = avxEntry(m[0]), e01 = avxEntry(m[1]);
  const AvxEntry e10 = avxEntry(m[2]), e11 = avxEntry(m[3]);
  for (; k + 2 <= n; k += 2) {
    const __m256d a = load2(lo + k);
    const __m256d b = load2(hi + k);
    store2(lo + k, _mm256_add_pd(cmul(a, e00), cmul(b, e01)));
    store2(hi + k, _mm256_add_pd(cmul(a, e10), cmul(b, e11)));
  }
#elif SLIQ_DENSE_NEON
  const NeonEntry e00 = neonEntry(m[0]), e01 = neonEntry(m[1]);
  const NeonEntry e10 = neonEntry(m[2]), e11 = neonEntry(m[3]);
  for (; k < n; ++k) {
    const float64x2_t a = load1(lo + k);
    const float64x2_t b = load1(hi + k);
    store1(lo + k, vaddq_f64(cmul(a, e00), cmul(b, e01)));
    store1(hi + k, vaddq_f64(cmul(a, e10), cmul(b, e11)));
  }
#endif
  for (; k < n; ++k) {
    const Amp a = lo[k];
    const Amp b = hi[k];
    lo[k] = m[0] * a + m[1] * b;
    hi[k] = m[2] * a + m[3] * b;
  }
}

// s ← c·s over n contiguous amplitudes (diagonal fast path).
void runScale(Amp* s, std::uint64_t n, const Amp& c) {
  std::uint64_t k = 0;
#if SLIQ_DENSE_AVX2
  const AvxEntry e = avxEntry(c);
  for (; k + 2 <= n; k += 2) store2(s + k, cmul(load2(s + k), e));
#elif SLIQ_DENSE_NEON
  const NeonEntry e = neonEntry(c);
  for (; k < n; ++k) store1(s + k, cmul(load1(s + k), e));
#endif
  for (; k < n; ++k) s[k] *= c;
}

// Exchanges n contiguous amplitudes between two streams.
void runExchange(Amp* a, Amp* b, std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) std::swap(a[k], b[k]);
}

// Full 4×4 over the four streams of one run (basis b = 2·hi + lo).
void run4x4(Amp* s00, Amp* s01, Amp* s10, Amp* s11, std::uint64_t n,
            const Amp m[16]) {
  for (std::uint64_t k = 0; k < n; ++k) {
    const Amp a0 = s00[k], a1 = s01[k], a2 = s10[k], a3 = s11[k];
    s00[k] = m[0] * a0 + m[1] * a1 + m[2] * a2 + m[3] * a3;
    s01[k] = m[4] * a0 + m[5] * a1 + m[6] * a2 + m[7] * a3;
    s10[k] = m[8] * a0 + m[9] * a1 + m[10] * a2 + m[11] * a3;
    s11[k] = m[12] * a0 + m[13] * a1 + m[14] * a2 + m[15] * a3;
  }
}

// ---- generic fixed-bit index enumeration ----------------------------------
//
// A kernel that touches groups of amplitudes differing only in a few
// "free" qubit bits enumerates the base index of every group directly:
// the group counter k is expanded by inserting a fixed bit value at each
// fixed position (controls → 1, the group's own qubits → 0), ascending.
// This visits exactly the 2^(n−f) participating groups instead of
// scanning all 2^n indices and testing masks (the old controlled path) —
// for an (n−1)-control Toffoli that is a 2^(n-1)-fold reduction.
struct FixedBits {
  unsigned pos[66];            // ascending final bit positions
  std::uint64_t set[66];       // 0 or 1<<pos: value the position takes
  unsigned count = 0;
  std::uint64_t lowMask = 0;   // (1 << pos[0]) − 1: run-length bound

  void add(unsigned p, bool one) {
    unsigned i = count++;
    while (i > 0 && pos[i - 1] > p) {
      pos[i] = pos[i - 1];
      set[i] = set[i - 1];
      --i;
    }
    pos[i] = p;
    set[i] = one ? (std::uint64_t{1} << p) : 0;
  }
  void finish() { lowMask = count ? (std::uint64_t{1} << pos[0]) - 1 : 0; }

  std::uint64_t expand(std::uint64_t k) const {
    std::uint64_t idx = k;
    for (unsigned i = 0; i < count; ++i) {
      const std::uint64_t low = (std::uint64_t{1} << pos[i]) - 1;
      idx = ((idx & ~low) << 1) | (idx & low) | set[i];
    }
    return idx;
  }
};

// Decomposes [gLo, gHi) group indices into contiguous runs: group k and
// k+1 map to adjacent base indices exactly while k stays below the lowest
// fixed bit, so each run spans at most 2^pos[0] groups.
template <typename RunBody>
void forRuns(const FixedBits& fixed, std::uint64_t gLo, std::uint64_t gHi,
             const RunBody& body) {
  std::uint64_t g = gLo;
  while (g < gHi) {
    const std::uint64_t inSeg =
        fixed.lowMask ? (fixed.lowMask + 1) - (g & fixed.lowMask)
                      : std::uint64_t{1};
    const std::uint64_t run = std::min(inSeg, gHi - g);
    body(fixed.expand(g), run);
    g += run;
  }
}

inline bool isDiagonal2(const Amp m[4]) {
  return m[1] == Amp{} && m[2] == Amp{};
}

}  // namespace

// ---- kernels --------------------------------------------------------------

void apply1(Amp* state, std::uint64_t size, unsigned target, const Amp m[4],
            const ExecContext& ctx) {
  const std::uint64_t stride = std::uint64_t{1} << target;
  const std::uint64_t groups = size / 2;
  const bool diag = isDiagonal2(m);
  const bool skipLo = diag && m[0] == Amp{1.0, 0.0};
  parallelFor(ctx, groups, [&](std::uint64_t lo, std::uint64_t hi) {
    // Pairs (i, i+stride): runs are bounded by the target stride itself.
    std::uint64_t g = lo;
    while (g < hi) {
      const std::uint64_t off = g & (stride - 1);
      const std::uint64_t run = std::min(stride - off, hi - g);
      const std::uint64_t i0 = ((g >> target) << (target + 1)) | off;
      if (diag) {
        if (!skipLo) runScale(state + i0, run, m[0]);
        runScale(state + i0 + stride, run, m[3]);
      } else {
        run2x2(state + i0, state + i0 + stride, run, m);
      }
      g += run;
    }
  });
}

void applyControlled1(Amp* state, std::uint64_t size,
                      std::uint64_t controlMask, unsigned target,
                      const Amp m[4], const ExecContext& ctx) {
  if (controlMask == 0) {
    apply1(state, size, target, m, ctx);
    return;
  }
  SLIQ_CHECK((controlMask & (std::uint64_t{1} << target)) == 0,
             "target listed as its own control");
  FixedBits fixed;
  fixed.add(target, false);
  for (unsigned b = 0; b < 64; ++b)
    if (controlMask & (std::uint64_t{1} << b)) fixed.add(b, true);
  fixed.finish();
  const std::uint64_t stride = std::uint64_t{1} << target;
  const std::uint64_t groups = size >> fixed.count;
  const bool diag = isDiagonal2(m);
  const bool skipLo = diag && m[0] == Amp{1.0, 0.0};
  parallelFor(ctx, groups, [&](std::uint64_t lo, std::uint64_t hi) {
    forRuns(fixed, lo, hi, [&](std::uint64_t i0, std::uint64_t run) {
      if (diag) {
        if (!skipLo) runScale(state + i0, run, m[0]);
        runScale(state + i0 + stride, run, m[3]);
      } else {
        run2x2(state + i0, state + i0 + stride, run, m);
      }
    });
  });
}

void apply2(Amp* state, std::uint64_t size, unsigned qLow, unsigned qHigh,
            const Amp m[16], bool diagonal, const ExecContext& ctx) {
  SLIQ_CHECK(qLow < qHigh, "apply2 requires qLow < qHigh");
  FixedBits fixed;
  fixed.add(qLow, false);
  fixed.add(qHigh, false);
  fixed.finish();
  const std::uint64_t sLow = std::uint64_t{1} << qLow;
  const std::uint64_t sHigh = std::uint64_t{1} << qHigh;
  const std::uint64_t groups = size / 4;
  parallelFor(ctx, groups, [&](std::uint64_t lo, std::uint64_t hi) {
    forRuns(fixed, lo, hi, [&](std::uint64_t i00, std::uint64_t run) {
      Amp* s00 = state + i00;
      Amp* s01 = s00 + sLow;
      Amp* s10 = s00 + sHigh;
      Amp* s11 = s10 + sLow;
      if (diagonal) {
        if (m[0] != Amp{1.0, 0.0}) runScale(s00, run, m[0]);
        if (m[5] != Amp{1.0, 0.0}) runScale(s01, run, m[5]);
        if (m[10] != Amp{1.0, 0.0}) runScale(s10, run, m[10]);
        if (m[15] != Amp{1.0, 0.0}) runScale(s11, run, m[15]);
      } else {
        run4x4(s00, s01, s10, s11, run, m);
      }
    });
  });
}

void applySwap(Amp* state, std::uint64_t size, std::uint64_t controlMask,
               unsigned q0, unsigned q1, const ExecContext& ctx) {
  SLIQ_CHECK(q0 != q1, "swap requires distinct qubits");
  const std::uint64_t bit0 = std::uint64_t{1} << q0;
  const std::uint64_t bit1 = std::uint64_t{1} << q1;
  SLIQ_CHECK((controlMask & (bit0 | bit1)) == 0,
             "swapped qubit listed as a control");
  // Visit each exchanged pair once: q0 set, q1 clear.
  FixedBits fixed;
  fixed.add(q0, true);
  fixed.add(q1, false);
  for (unsigned b = 0; b < 64; ++b)
    if (controlMask & (std::uint64_t{1} << b)) fixed.add(b, true);
  fixed.finish();
  const std::uint64_t groups = size >> fixed.count;
  parallelFor(ctx, groups, [&](std::uint64_t lo, std::uint64_t hi) {
    forRuns(fixed, lo, hi, [&](std::uint64_t i, std::uint64_t run) {
      const std::uint64_t j = (i ^ bit0) | bit1;
      runExchange(state + i, state + j, run);
    });
  });
}

bool simdEnabled() {
#if SLIQ_DENSE_AVX2 || SLIQ_DENSE_NEON
  return true;
#else
  return false;
#endif
}

}  // namespace sliq::dense
