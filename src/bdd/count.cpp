// Structural analyses: node counts, satisfying fraction, support.
#include <unordered_map>
#include <unordered_set>

#include "bdd/manager.hpp"
#include "support/assert.hpp"

namespace sliq::bdd {

namespace {

void countRec(const BddManager& mgr, Edge e,
              std::unordered_set<std::uint32_t>& seen) {
  if (isConstant(e)) return;
  if (!seen.insert(e.index()).second) return;
  countRec(mgr, mgr.thenEdge(e), seen);
  countRec(mgr, mgr.elseEdge(e), seen);
}

/// Fraction of assignments over the variables *below or at* e's level that
/// satisfy the regular (uncomplemented) function rooted at e's node.
double satFracRec(const BddManager& mgr, Edge e,
                  std::unordered_map<std::uint32_t, double>& memo) {
  if (isConstant(e)) return e.complemented() ? 0.0 : 1.0;
  const bool complement = e.complemented();
  const Edge regular = complement ? !e : e;
  double frac;
  const auto it = memo.find(regular.index());
  if (it != memo.end()) {
    frac = it->second;
  } else {
    // Each cofactor fraction is relative to the variables strictly below
    // this node; skipped levels do not change fractions (both halves equal).
    const double hi = satFracRec(mgr, mgr.thenEdge(regular), memo);
    const double lo = satFracRec(mgr, mgr.elseEdge(regular), memo);
    frac = 0.5 * (hi + lo);
    memo.emplace(regular.index(), frac);
  }
  return complement ? 1.0 - frac : frac;
}

void supportRec(const BddManager& mgr, Edge e,
                std::unordered_set<std::uint32_t>& seen,
                std::vector<bool>& inSupport) {
  if (isConstant(e)) return;
  if (!seen.insert(e.index()).second) return;
  inSupport[mgr.edgeVar(e)] = true;
  supportRec(mgr, mgr.thenEdge(e), seen, inSupport);
  supportRec(mgr, mgr.elseEdge(e), seen, inSupport);
}

}  // namespace

std::size_t BddManager::nodeCount(Edge e) const {
  std::unordered_set<std::uint32_t> seen;
  countRec(*this, e, seen);
  return seen.size();
}

std::size_t BddManager::nodeCountMulti(const std::vector<Edge>& roots) const {
  std::unordered_set<std::uint32_t> seen;
  for (Edge e : roots) countRec(*this, e, seen);
  return seen.size();
}

double BddManager::satFraction(Edge f) const {
  std::unordered_map<std::uint32_t, double> memo;
  return satFracRec(*this, f, memo);
}

std::vector<unsigned> BddManager::supportVars(Edge f) const {
  std::unordered_set<std::uint32_t> seen;
  std::vector<bool> inSupport(varCount(), false);
  supportRec(*this, f, seen, inSupport);
  std::vector<unsigned> result;
  for (unsigned v = 0; v < inSupport.size(); ++v)
    if (inSupport[v]) result.push_back(v);
  return result;
}

}  // namespace sliq::bdd
