// Boolean function manipulation: ITE, restriction (cofactors), cubes, eval.
#include <algorithm>

#include "bdd/manager.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace sliq::bdd {

namespace {

// Operation tags for computed-cache keys. Packed into the low byte of key2's
// upper half so that distinct operations never collide.
enum class Op : std::uint64_t {
  kIte = 1,
  kRestrict0 = 2,
  kRestrict1 = 3,
};

std::uint64_t packKey1(Edge f, Edge g) {
  return (static_cast<std::uint64_t>(f.raw) << 32) | g.raw;
}
std::uint64_t packKey2(Op op, std::uint64_t extra) {
  return (extra << 8) | static_cast<std::uint64_t>(op);
}

/// RAII guard marking an operation in flight (blocks GC re-entry).
class OpGuard {
 public:
  explicit OpGuard(bool& flag) : flag_(flag) {
    SLIQ_ASSERT(!flag_);
    flag_ = true;
  }
  ~OpGuard() { flag_ = false; }

 private:
  bool& flag_;
};

}  // namespace

Edge BddManager::ite(Edge f, Edge g, Edge h) {
  maybeGc();
  OpGuard guard(inOperation_);
  return iteRec(f, g, h);
}

Edge BddManager::iteRec(Edge f, Edge g, Edge h) {
  // Terminal and absorption cases.
  if (f == kTrueEdge) return g;
  if (f == kFalseEdge) return h;
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return !f;
  if (g == f) g = kTrueEdge;
  else if (g == !f) g = kFalseEdge;
  if (h == f) h = kFalseEdge;
  else if (h == !f) h = kTrueEdge;
  if (g == h) return g;
  if (g == kTrueEdge && h == kFalseEdge) return f;
  if (g == kFalseEdge && h == kTrueEdge) return !f;

  // Canonicalize commutative forms to improve cache hit rates.
  if (g == kTrueEdge) {  // OR(f, h)
    if (edgeLevel(h) < edgeLevel(f)) std::swap(f, h);
  } else if (h == kFalseEdge) {  // AND(f, g)
    if (edgeLevel(g) < edgeLevel(f)) std::swap(f, g);
  } else if (h == !g) {  // XNOR(f, g) is symmetric in f and g
    if (edgeLevel(g) < edgeLevel(f)) {
      std::swap(f, g);
      h = !g;
    }
  }
  // Complement canonicalization: the first argument is regular...
  if (f.complemented()) {
    std::swap(g, h);
    f = !f;
  }
  // ...and so is the second, with the complement moved to the output.
  bool outputComplement = false;
  if (g.complemented()) {
    g = !g;
    h = !h;
    outputComplement = true;
  }

  const std::uint64_t key1 = packKey1(f, g);
  const std::uint64_t key2 = packKey2(Op::kIte, h.raw);
  Edge cached;
  if (cacheLookup(key1, key2, &cached))
    return outputComplement ? !cached : cached;

  const unsigned level =
      std::min({edgeLevel(f), edgeLevel(g), edgeLevel(h)});
  const unsigned var = levelToVar_[level];
  auto cof = [&](Edge e, bool positive) {
    if (edgeLevel(e) != level) return e;
    return positive ? thenEdge(e) : elseEdge(e);
  };
  const Edge hi = iteRec(cof(f, true), cof(g, true), cof(h, true));
  const Edge lo = iteRec(cof(f, false), cof(g, false), cof(h, false));
  const Edge result = makeNode(var, hi, lo);
  cacheInsert(key1, key2, result);
  return outputComplement ? !result : result;
}

Edge BddManager::restrict1(Edge f, unsigned var, bool value) {
  SLIQ_REQUIRE(var < varCount(), "restrict1: unknown variable");
  maybeGc();
  OpGuard guard(inOperation_);
  return restrict1Rec(f, var, varToLevel_[var], value);
}

Edge BddManager::restrict1Rec(Edge f, unsigned var, unsigned level,
                              bool value) {
  if (edgeLevel(f) > level) return f;  // var not in f's cone
  if (edgeLevel(f) == level) return value ? thenEdge(f) : elseEdge(f);

  // Keep the cached result canonical for complemented edges: restriction
  // commutes with negation, so cache on the regular edge only.
  const bool outputComplement = f.complemented();
  const Edge fr = outputComplement ? !f : f;
  const std::uint64_t key1 = packKey1(fr, Edge{var});
  const std::uint64_t key2 =
      packKey2(value ? Op::kRestrict1 : Op::kRestrict0, 0);
  Edge cached;
  if (cacheLookup(key1, key2, &cached))
    return outputComplement ? !cached : cached;

  const Edge hi = restrict1Rec(thenEdge(fr), var, level, value);
  const Edge lo = restrict1Rec(elseEdge(fr), var, level, value);
  const Edge result = makeNode(edgeVar(fr), hi, lo);
  cacheInsert(key1, key2, result);
  return outputComplement ? !result : result;
}

Edge BddManager::restrictCube(Edge f, const std::vector<Literal>& cube) {
  // Each restrict1 call is a GC point, so intermediate results must be
  // protected while the loop runs.
  Edge current = f;
  ref(current);
  for (const Literal& lit : cube) {
    const Edge next = restrict1(current, lit.var, lit.positive);
    ref(next);
    deref(current);
    current = next;
  }
  // Handoff contract (see manager.hpp): the result keeps the reference
  // acquired above. Returning it deref'd would let any GC point reached
  // before the caller refs it (e.g. the caller's next public-API call)
  // reclaim the cone. The caller owns one reference and must deref it —
  // typically after adopting the edge into a Bdd handle.
  return current;
}

Edge BddManager::cubeEdge(const std::vector<Literal>& cube) {
  // Build bottom-up in descending level order so each makeNode call sees
  // children strictly below it.
  std::vector<Literal> sorted = cube;
  std::sort(sorted.begin(), sorted.end(), [&](const Literal& a, const Literal& b) {
    return varToLevel_[a.var] > varToLevel_[b.var];
  });
  maybeGc();
  OpGuard guard(inOperation_);
  Edge acc = kTrueEdge;
  for (const Literal& lit : sorted) {
    acc = lit.positive ? makeNode(lit.var, acc, kFalseEdge)
                       : makeNode(lit.var, kFalseEdge, acc);
  }
  return acc;
}

bool BddManager::evalPoint(Edge f, const std::vector<bool>& assignment) const {
  bool parity = false;
  while (!isConstant(f)) {
    const Node& n = nodes_[f.index()];
    parity ^= f.complemented();
    SLIQ_ASSERT(n.var < assignment.size());
    f = assignment[n.var] ? n.hi : n.lo;
  }
  parity ^= f.complemented();
  return !parity;  // the terminal is ONE; an even complement count keeps it
}

}  // namespace sliq::bdd
