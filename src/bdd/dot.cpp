// Graphviz export, for debugging and documentation figures.
#include "bdd/dot.hpp"

#include <ostream>
#include <unordered_set>

#include "bdd/manager.hpp"

namespace sliq::bdd {

namespace {

void emitNodes(const BddManager& mgr, Edge e,
               std::unordered_set<std::uint32_t>& seen, std::ostream& os,
               const std::vector<std::string>& varNames) {
  if (isConstant(e)) return;
  if (!seen.insert(e.index()).second) return;
  const unsigned var = mgr.edgeVar(e);
  std::string label = var < varNames.size() && !varNames[var].empty()
                          ? varNames[var]
                          : "v" + std::to_string(var);
  os << "  n" << e.index() << " [label=\"" << label << "\"];\n";
  const Edge regular = e.complemented() ? !e : e;
  const Edge hi = mgr.thenEdge(regular);
  const Edge lo = mgr.elseEdge(regular);
  auto emitEdge = [&](Edge child, bool then) {
    os << "  n" << e.index() << " -> "
       << (isConstant(child) ? std::string("one") : "n" + std::to_string(child.index()))
       << " [style=" << (then ? "solid" : "dashed")
       << (child.complemented() ? ", arrowhead=odot" : "") << "];\n";
  };
  emitEdge(hi, true);
  emitEdge(lo, false);
  emitNodes(mgr, hi, seen, os, varNames);
  emitNodes(mgr, lo, seen, os, varNames);
}

}  // namespace

void writeDot(const BddManager& mgr, Edge root, std::ostream& os,
              const std::vector<std::string>& varNames) {
  os << "digraph bdd {\n";
  os << "  one [shape=box, label=\"1\"];\n";
  if (isConstant(root)) {
    os << "  root -> one" << (root.complemented() ? " [arrowhead=odot]" : "")
       << ";\n";
  } else {
    os << "  root [shape=point];\n";
    os << "  root -> n" << root.index()
       << (root.complemented() ? " [arrowhead=odot]" : "") << ";\n";
    std::unordered_set<std::uint32_t> seen;
    emitNodes(mgr, Edge::make(root.index(), false), seen, os, varNames);
  }
  os << "}\n";
}

}  // namespace sliq::bdd
