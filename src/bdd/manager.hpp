// The BDD node manager: unique tables, computed cache, garbage collection,
// dynamic variable creation and (optional) sifting-based reordering.
//
// This is the paper's "off-the-shelf BDD package" dependency (CUDD in the
// original), rebuilt from scratch. Design notes:
//
//  * Nodes are stored in one flat array and referenced by 32-bit indices;
//    edges carry a complement bit in the LSB (see types.hpp).
//  * One unique subtable per *level* (not per variable) so that adjacent-
//    level swaps during sifting and the level-ordered GC sweep are cheap.
//  * Reference counting: a node's count covers references from parent nodes
//    and from external `Bdd` handles. GC runs only at public-API boundaries,
//    so recursive operations never observe reclamation.
//  * The computed cache is direct-mapped and lossy; it is flushed on GC and
//    on reordering.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/types.hpp"

namespace sliq::metrics {
class Registry;
}

namespace sliq::bdd {

/// Cumulative event counters, each incremented at exactly one site:
/// createdNodes/peakLiveNodes in makeNode, gcRuns/gcReclaimed in
/// garbageCollect, cacheLookups/cacheHits in cacheLookup (hits strictly
/// after lookups, so hits <= lookups always), reorderings in reorderSift.
/// resetStats() zeroes them between runs.
struct ManagerStats {
  std::uint64_t createdNodes = 0;   // total makeNode insertions
  std::uint64_t gcRuns = 0;
  std::uint64_t gcReclaimed = 0;
  std::uint64_t cacheLookups = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t reorderings = 0;
  std::size_t peakLiveNodes = 0;
};

/// A (variable, phase) pair; phase true means the positive literal.
struct Literal {
  unsigned var = 0;
  bool positive = true;
};

class BddManager {
 public:
  struct Config {
    unsigned initialVars = 0;
    /// Hard cap on simultaneously live nodes; NodeLimitError beyond this.
    std::size_t maxLiveNodes = 80u << 20;
    /// log2 of computed-cache slots.
    unsigned cacheLog2 = 21;
    /// Run GC when live node count exceeds this (adapted upward after GC).
    std::size_t gcThreshold = 1u << 21;
    /// Enable automatic sifting when live nodes grow past reorderThreshold.
    bool autoReorder = false;
    std::size_t reorderThreshold = 1u << 18;
  };

  BddManager();  // default Config
  explicit BddManager(const Config& config);
  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;
  ~BddManager();

  // ---- variables -------------------------------------------------------
  unsigned varCount() const { return static_cast<unsigned>(varToLevel_.size()); }
  /// Creates a fresh variable at the bottom of the order; returns its id.
  unsigned newVar();
  /// Projection function for variable v (must exist).
  Edge varEdge(unsigned v) const;
  unsigned levelOfVar(unsigned v) const { return varToLevel_[v]; }
  unsigned varAtLevel(unsigned level) const { return levelToVar_[level]; }

  // ---- structural accessors (read-only; valid while nodes are live) -----
  static bool isTerminal(Edge e) { return isConstant(e); }
  unsigned edgeVar(Edge e) const { return nodes_[e.index()].var; }
  unsigned edgeLevel(Edge e) const {
    return isConstant(e) ? kTerminalLevel : varToLevel_[nodes_[e.index()].var];
  }
  /// THEN/ELSE cofactor edges with the complement bit pushed through.
  Edge thenEdge(Edge e) const {
    const Node& n = nodes_[e.index()];
    return e.complemented() ? !n.hi : n.hi;
  }
  Edge elseEdge(Edge e) const {
    const Node& n = nodes_[e.index()];
    return e.complemented() ? !n.lo : n.lo;
  }

  // ---- reference counting (used by the Bdd handle) ----------------------
  void ref(Edge e);
  void deref(Edge e);

  // ---- Boolean operations ------------------------------------------------
  Edge ite(Edge f, Edge g, Edge h);
  Edge andE(Edge f, Edge g) { return ite(f, g, kFalseEdge); }
  Edge orE(Edge f, Edge g) { return ite(f, kTrueEdge, g); }
  Edge xorE(Edge f, Edge g) { return ite(f, !g, g); }
  Edge xnorE(Edge f, Edge g) { return ite(f, g, !g); }
  static Edge notE(Edge f) { return !f; }

  /// Cofactor with respect to a single literal (Shannon restriction).
  Edge restrict1(Edge f, unsigned var, bool value);
  /// Cofactor with respect to a cube given as a list of literals.
  /// OWNERSHIP HANDOFF: unlike the other operations, the returned edge is
  /// already referenced — each restrict1 step is a GC point, and so is
  /// whatever the caller does next, so handing the result back unprotected
  /// would be a use-after-reclaim hazard. The caller must deref() it once
  /// (after wrapping it in a Bdd handle, or when done with it).
  Edge restrictCube(Edge f, const std::vector<Literal>& cube);
  /// Conjunction of literals as a BDD.
  Edge cubeEdge(const std::vector<Literal>& cube);

  /// Evaluate f under a complete assignment indexed by variable id.
  bool evalPoint(Edge f, const std::vector<bool>& assignment) const;

  // ---- analysis ----------------------------------------------------------
  /// Number of distinct decision nodes reachable from e (terminal excluded).
  std::size_t nodeCount(Edge e) const;
  /// Shared node count of a set of functions (terminal excluded).
  std::size_t nodeCountMulti(const std::vector<Edge>& roots) const;
  /// Fraction of assignments (over all current variables) satisfying f.
  double satFraction(Edge f) const;
  /// Variables in the true support of f, ascending by id.
  std::vector<unsigned> supportVars(Edge f) const;

  // ---- maintenance -------------------------------------------------------
  /// Reclaims all dead nodes now. Safe only between operations (public API).
  void garbageCollect();
  /// Sifting-based dynamic reordering (Rudell). Returns live-node delta.
  long reorderSift();
  void setAutoReorder(bool on) { config_.autoReorder = on; }

  std::size_t liveNodeCount() const { return liveNodes_; }
  const ManagerStats& stats() const { return stats_; }
  /// Zeroes the cumulative counters and re-seeds peakLiveNodes from the
  /// current live count, so per-run deltas start from a clean baseline.
  void resetStats();
  /// Approximate bytes held by node storage and caches.
  std::size_t memoryBytes() const;

  /// Observability hook (DESIGN.md §11): when set, GC runs emit "bdd.gc"
  /// spans into the engine's registry. Never owns the registry; nullptr
  /// (the default) disables tracing entirely.
  void setMetrics(metrics::Registry* registry) { metricsRegistry_ = registry; }

  /// Verifies unique-table canonicity and refcount consistency (tests).
  void checkConsistency() const;

  /// Deep structural audit (DESIGN.md §10): everything checkConsistency
  /// covers plus duplicate (var, then, else) triple detection, hash-bucket
  /// placement, freelist integrity, a full parent-reference recount
  /// (stored refcount must cover every parent edge; the surplus is the
  /// external Bdd-handle count, verified to reach zero at teardown), and
  /// computed-cache entry validity. Throws audit::AuditError naming the
  /// offending node on the first violation. O(allocated nodes).
  void auditInvariants() const;

 private:
  friend class Reorderer;
  friend struct AuditCorruptor;  // test-only deliberate corruption hooks

  struct Node {
    std::uint32_t var;
    std::uint32_t next;  // unique-table chain or freelist link
    Edge hi, lo;
    std::uint32_t ref;
  };

  struct Subtable {
    std::vector<std::uint32_t> buckets;  // heads; kNil for empty
    std::uint32_t count = 0;
  };

  struct CacheEntry {
    std::uint64_t key1 = ~0ULL;
    std::uint64_t key2 = ~0ULL;
    std::uint32_t result = 0;
    std::uint32_t valid = 0;
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr unsigned kTerminalLevel = 0x7fffffffu;

  Edge makeNode(std::uint32_t var, Edge hi, Edge lo);
  std::uint32_t allocNode();
  void maybeGc();
  void growSubtable(Subtable& st);
  static std::uint64_t nodeHash(std::uint32_t var, Edge hi, Edge lo);

  Edge iteRec(Edge f, Edge g, Edge h);
  Edge restrict1Rec(Edge f, unsigned var, unsigned level, bool value);

  bool cacheLookup(std::uint64_t key1, std::uint64_t key2, Edge* out);
  void cacheInsert(std::uint64_t key1, std::uint64_t key2, Edge value);
  void cacheClear();

  // Reordering internals (reorder.cpp).
  std::size_t swapLevels(unsigned level);  // swaps level and level+1
  void siftVar(unsigned var, std::size_t limitGrowth);

  Config config_;
  std::vector<Node> nodes_;
  std::vector<Subtable> subtables_;       // indexed by level
  std::vector<unsigned> varToLevel_;
  std::vector<unsigned> levelToVar_;
  std::vector<CacheEntry> cache_;
  std::uint64_t cacheMask_ = 0;
  std::uint32_t freeList_ = kNil;
  std::size_t liveNodes_ = 0;
  std::size_t gcThreshold_ = 0;
  bool gcPending_ = false;
  bool inOperation_ = false;
  ManagerStats stats_;
  metrics::Registry* metricsRegistry_ = nullptr;
};

}  // namespace sliq::bdd
