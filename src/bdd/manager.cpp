#include "bdd/manager.hpp"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "support/assert.hpp"
#include "support/audit.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"

namespace sliq::bdd {

namespace {
constexpr std::uint32_t kStickyRef = 0xffffffffu;
constexpr std::size_t kInitialBuckets = 16;
}  // namespace

BddManager::BddManager() : BddManager(Config{}) {}

BddManager::BddManager(const Config& config) : config_(config) {
  nodes_.reserve(1u << 16);
  // Node 0 is the ONE terminal; it owns no children and is never collected.
  nodes_.push_back(Node{/*var=*/0xffffffffu, /*next=*/kNil,
                        /*hi=*/kTrueEdge, /*lo=*/kTrueEdge,
                        /*ref=*/kStickyRef});
  liveNodes_ = 1;
  gcThreshold_ = config_.gcThreshold;
  cache_.assign(std::size_t{1} << config_.cacheLog2, CacheEntry{});
  cacheMask_ = (std::uint64_t{1} << config_.cacheLog2) - 1;
  for (unsigned i = 0; i < config_.initialVars; ++i) newVar();
  audit::noteLiveStructure(audit::StructureKind::kBddManager);
}

BddManager::~BddManager() {
  // Teardown leak scan (always on, O(allocated nodes)): recount parent
  // references over the unique table; any surplus in a stored refcount is
  // an external Bdd handle that outlived the manager. Destructors must not
  // throw, so leaks are recorded for the gtest leak-check environment.
  // A stored count *below* the parent recount is corruption, not a leak —
  // auditInvariants() reports it; here it clamps to zero.
  std::vector<std::uint64_t> parentRefs(nodes_.size(), 0);
  for (const Subtable& st : subtables_) {
    for (std::uint32_t head : st.buckets) {
      for (std::uint32_t idx = head; idx != kNil; idx = nodes_[idx].next) {
        ++parentRefs[nodes_[idx].hi.index()];
        ++parentRefs[nodes_[idx].lo.index()];
      }
    }
  }
  std::size_t leakedRefs = 0;
  std::string firstLeak;
  for (const Subtable& st : subtables_) {
    for (std::uint32_t head : st.buckets) {
      for (std::uint32_t idx = head; idx != kNil; idx = nodes_[idx].next) {
        const Node& n = nodes_[idx];
        if (n.ref == kStickyRef || n.ref <= parentRefs[idx]) continue;
        leakedRefs += n.ref - parentRefs[idx];
        if (firstLeak.empty()) {
          firstLeak = "node " + std::to_string(idx) + " (var " +
                      std::to_string(n.var) + ") holds " +
                      std::to_string(n.ref - parentRefs[idx]) +
                      " external reference(s) at teardown";
        }
      }
    }
  }
  if (leakedRefs > 0) {
    audit::noteLeakedNodes(audit::StructureKind::kBddManager, leakedRefs,
                           std::to_string(leakedRefs) +
                               " leaked reference(s); first: " + firstLeak);
  }
  audit::noteDeadStructure(audit::StructureKind::kBddManager);
}

unsigned BddManager::newVar() {
  const unsigned var = static_cast<unsigned>(varToLevel_.size());
  const unsigned level = static_cast<unsigned>(levelToVar_.size());
  varToLevel_.push_back(level);
  levelToVar_.push_back(var);
  Subtable st;
  st.buckets.assign(kInitialBuckets, kNil);
  subtables_.push_back(std::move(st));
  return var;
}

Edge BddManager::varEdge(unsigned v) const {
  SLIQ_REQUIRE(v < varCount(), "variable does not exist");
  // The projection node is created lazily by ite/makeNode; to keep this
  // method const we search the subtable, and the non-const path creates it.
  // In practice varEdge is called after the projection exists (see below),
  // so we create projections eagerly in newVar via a const_cast-free hack:
  // simplest correct approach: look it up, else build through a mutable self.
  const Subtable& st = subtables_[varToLevel_[v]];
  const std::uint64_t h = nodeHash(v, kTrueEdge, kFalseEdge) &
                          (st.buckets.size() - 1);
  for (std::uint32_t idx = st.buckets[h]; idx != kNil;
       idx = nodes_[idx].next) {
    const Node& n = nodes_[idx];
    if (n.var == v && n.hi == kTrueEdge && n.lo == kFalseEdge)
      return Edge::make(idx, false);
  }
  // Lazily materialize the projection function.
  auto* self = const_cast<BddManager*>(this);
  return self->makeNode(v, kTrueEdge, kFalseEdge);
}

void BddManager::ref(Edge e) {
  Node& n = nodes_[e.index()];
  if (n.ref != kStickyRef) ++n.ref;
}

void BddManager::deref(Edge e) {
  Node& n = nodes_[e.index()];
  if (n.ref != kStickyRef) {
    SLIQ_ASSERT(n.ref > 0);
    --n.ref;
  }
}

std::uint64_t BddManager::nodeHash(std::uint32_t var, Edge hi, Edge lo) {
  return hash3(var, hi.raw, lo.raw);
}

std::uint32_t BddManager::allocNode() {
  if (freeList_ != kNil) {
    const std::uint32_t idx = freeList_;
    freeList_ = nodes_[idx].next;
    ++liveNodes_;
    return idx;
  }
  if (liveNodes_ >= config_.maxLiveNodes)
    throw NodeLimitError("BDD node limit exceeded (" +
                         std::to_string(config_.maxLiveNodes) + " nodes)");
  nodes_.push_back(Node{});
  ++liveNodes_;
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void BddManager::growSubtable(Subtable& st) {
  std::vector<std::uint32_t> old = std::move(st.buckets);
  st.buckets.assign(old.size() * 2, kNil);
  const std::uint64_t mask = st.buckets.size() - 1;
  for (std::uint32_t head : old) {
    while (head != kNil) {
      const std::uint32_t next = nodes_[head].next;
      const Node& n = nodes_[head];
      const std::uint64_t h = nodeHash(n.var, n.hi, n.lo) & mask;
      nodes_[head].next = st.buckets[h];
      st.buckets[h] = head;
      head = next;
    }
  }
}

Edge BddManager::makeNode(std::uint32_t var, Edge hi, Edge lo) {
  if (hi == lo) return hi;
  // Canonical form: THEN edge must be regular.
  bool outputComplement = false;
  if (hi.complemented()) {
    hi = !hi;
    lo = !lo;
    outputComplement = true;
  }
  Subtable& st = subtables_[varToLevel_[var]];
  const std::uint64_t h = nodeHash(var, hi, lo) & (st.buckets.size() - 1);
  for (std::uint32_t idx = st.buckets[h]; idx != kNil;
       idx = nodes_[idx].next) {
    const Node& n = nodes_[idx];
    if (n.var == var && n.hi == hi && n.lo == lo)
      return Edge::make(idx, outputComplement);
  }
  const std::uint32_t idx = allocNode();
  Node& n = nodes_[idx];
  n.var = var;
  n.hi = hi;
  n.lo = lo;
  n.ref = 0;
  n.next = st.buckets[h];
  st.buckets[h] = idx;
  ++st.count;
  ref(hi);
  ref(lo);
  ++stats_.createdNodes;
  stats_.peakLiveNodes = std::max(stats_.peakLiveNodes, liveNodes_);
  if (st.count > st.buckets.size() * 4) growSubtable(st);
  if (liveNodes_ > gcThreshold_) gcPending_ = true;
  return Edge::make(idx, outputComplement);
}

void BddManager::maybeGc() {
  SLIQ_ASSERT(!inOperation_);
  if (!gcPending_) return;
  garbageCollect();
  gcPending_ = false;
  // Adapt: if most nodes survived, raise the threshold so we do not thrash.
  gcThreshold_ = std::max(config_.gcThreshold, liveNodes_ * 2);
}

void BddManager::garbageCollect() {
  SLIQ_CHECK(!inOperation_, "GC during an active operation");
  const metrics::ScopedSpan span(metricsRegistry_, "bdd.gc");
  ++stats_.gcRuns;
  std::size_t reclaimed = 0;
  // Sweep top level to bottom: freeing a parent can only kill children at
  // strictly lower levels, which the sweep has not reached yet.
  for (unsigned level = 0; level < subtables_.size(); ++level) {
    Subtable& st = subtables_[level];
    for (auto& head : st.buckets) {
      std::uint32_t* link = &head;
      while (*link != kNil) {
        const std::uint32_t idx = *link;
        Node& n = nodes_[idx];
        if (n.ref == 0) {
          *link = n.next;
          deref(n.hi);
          deref(n.lo);
          n.next = freeList_;
          n.var = 0xfffffffeu;  // poison for debugging
          freeList_ = idx;
          --st.count;
          --liveNodes_;
          ++reclaimed;
        } else {
          link = &nodes_[idx].next;
        }
      }
    }
  }
  stats_.gcReclaimed += reclaimed;
  if (reclaimed > 0) cacheClear();
}

void BddManager::resetStats() {
  stats_ = ManagerStats{};
  stats_.peakLiveNodes = liveNodes_;
}

std::size_t BddManager::memoryBytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(Node);
  bytes += cache_.capacity() * sizeof(CacheEntry);
  for (const Subtable& st : subtables_)
    bytes += st.buckets.capacity() * sizeof(std::uint32_t);
  return bytes;
}

void BddManager::checkConsistency() const {
  std::size_t counted = 1;  // terminal
  for (unsigned level = 0; level < subtables_.size(); ++level) {
    const Subtable& st = subtables_[level];
    std::size_t inTable = 0;
    for (std::uint32_t head : st.buckets) {
      for (std::uint32_t idx = head; idx != kNil; idx = nodes_[idx].next) {
        const Node& n = nodes_[idx];
        ++inTable;
        SLIQ_CHECK(varToLevel_[n.var] == level, "node filed at wrong level");
        SLIQ_CHECK(!n.hi.complemented(), "THEN edge complemented");
        SLIQ_CHECK(n.hi != n.lo, "redundant node in table");
        SLIQ_CHECK(edgeLevel(n.hi) > level && edgeLevel(n.lo) > level,
                   "child level not below parent");
      }
    }
    SLIQ_CHECK(inTable == st.count, "subtable count mismatch");
    counted += inTable;
  }
  SLIQ_CHECK(counted == liveNodes_, "live node count mismatch");
}

void BddManager::auditInvariants() const {
  static const std::string kStructure = "bdd-unique-table";
  const auto nodeDesc = [this](std::uint32_t idx) {
    return "node " + std::to_string(idx) + " (var " +
           std::to_string(nodes_[idx].var) + ")";
  };

  // Variable order: varToLevel_ / levelToVar_ must be inverse bijections
  // with one subtable per level.
  if (varToLevel_.size() != levelToVar_.size() ||
      subtables_.size() != levelToVar_.size()) {
    audit::fail(kStructure, "variable/level/subtable arrays out of sync");
  }
  for (unsigned v = 0; v < varToLevel_.size(); ++v) {
    if (varToLevel_[v] >= levelToVar_.size() ||
        levelToVar_[varToLevel_[v]] != v) {
      audit::fail(kStructure, "variable order is not a bijection at var " +
                                  std::to_string(v));
    }
  }
  if (nodes_.empty() || nodes_[0].ref != kStickyRef) {
    audit::fail(kStructure, "terminal node 0 lost its sticky refcount");
  }

  // Sweep the unique table: canonicity, level filing, bucket placement,
  // duplicate (var, then, else) triples, and a parent-reference recount.
  std::vector<std::uint64_t> parentRefs(nodes_.size(), 0);
  std::vector<char> inTable(nodes_.size(), 0);
  inTable[0] = 1;
  std::size_t counted = 1;  // terminal
  for (unsigned level = 0; level < subtables_.size(); ++level) {
    const Subtable& st = subtables_[level];
    // One variable per level, so a triple at this level is keyed by its
    // (then, else) edge pair alone.
    std::unordered_set<std::uint64_t> triples;
    std::size_t tableCount = 0;
    for (std::size_t bucket = 0; bucket < st.buckets.size(); ++bucket) {
      for (std::uint32_t idx = st.buckets[bucket]; idx != kNil;
           idx = nodes_[idx].next) {
        if (idx >= nodes_.size()) {
          audit::fail(kStructure, "bucket chain index " + std::to_string(idx) +
                                      " out of range at level " +
                                      std::to_string(level));
        }
        const Node& n = nodes_[idx];
        if (inTable[idx]) {
          audit::fail(kStructure, nodeDesc(idx) + " filed twice");
        }
        inTable[idx] = 1;
        ++tableCount;
        if (n.var >= varToLevel_.size() || varToLevel_[n.var] != level) {
          audit::fail(kStructure, nodeDesc(idx) + " filed at wrong level " +
                                      std::to_string(level));
        }
        if (n.hi.complemented()) {
          audit::fail(kStructure, "canonical form violated on " +
                                      nodeDesc(idx) +
                                      ": THEN edge complemented");
        }
        if (n.hi == n.lo) {
          audit::fail(kStructure, "redundant " + nodeDesc(idx) +
                                      ": THEN == ELSE");
        }
        if (edgeLevel(n.hi) <= level || edgeLevel(n.lo) <= level) {
          audit::fail(kStructure, "ordered-vars violation on " + nodeDesc(idx) +
                                      ": child level not below parent");
        }
        if ((nodeHash(n.var, n.hi, n.lo) & (st.buckets.size() - 1)) !=
            bucket) {
          audit::fail(kStructure, nodeDesc(idx) + " filed in wrong bucket");
        }
        const std::uint64_t triple =
            (static_cast<std::uint64_t>(n.hi.raw) << 32) | n.lo.raw;
        if (!triples.insert(triple).second) {
          audit::fail(kStructure,
                      "duplicate (var, then, else) triple at " + nodeDesc(idx) +
                          ": then=" + std::to_string(n.hi.raw) +
                          " else=" + std::to_string(n.lo.raw));
        }
        ++parentRefs[n.hi.index()];
        ++parentRefs[n.lo.index()];
      }
    }
    if (tableCount != st.count) {
      audit::fail(kStructure, "subtable count mismatch at level " +
                                  std::to_string(level));
    }
    counted += tableCount;
  }
  if (counted != liveNodes_) {
    audit::fail(kStructure,
                "live-node count mismatch: tables hold " +
                    std::to_string(counted) + ", manager claims " +
                    std::to_string(liveNodes_));
  }

  // Freelist: disjoint from the tables, acyclic, and together with them
  // accounting for every allocated slot.
  std::size_t freeCount = 0;
  std::vector<char> onFreeList(nodes_.size(), 0);
  for (std::uint32_t idx = freeList_; idx != kNil; idx = nodes_[idx].next) {
    if (idx >= nodes_.size()) {
      audit::fail(kStructure,
                  "freelist index " + std::to_string(idx) + " out of range");
    }
    if (onFreeList[idx]) {
      audit::fail(kStructure, "freelist cycle at node " + std::to_string(idx));
    }
    if (inTable[idx]) {
      audit::fail(kStructure,
                  nodeDesc(idx) + " is on the freelist AND in the table");
    }
    onFreeList[idx] = 1;
    ++freeCount;
  }
  if (counted + freeCount != nodes_.size()) {
    audit::fail(kStructure, "node accounting mismatch: " +
                                std::to_string(nodes_.size()) +
                                " allocated != " + std::to_string(counted) +
                                " live + " + std::to_string(freeCount) +
                                " free (leaked slots)");
  }

  // Refcount recount: a stored count below the parent recount means a
  // missing ref() — a use-after-reclaim waiting for the next GC. (A surplus
  // is legal: external Bdd handles. The teardown scan in ~BddManager
  // verifies the surplus reaches zero once all handles are gone.)
  for (std::uint32_t idx = 1; idx < nodes_.size(); ++idx) {
    if (!inTable[idx]) continue;
    const Node& n = nodes_[idx];
    if (n.ref == kStickyRef) continue;
    if (n.ref < parentRefs[idx]) {
      audit::fail(kStructure, "refcount underflow on " + nodeDesc(idx) +
                                  ": stored " + std::to_string(n.ref) +
                                  " < " + std::to_string(parentRefs[idx]) +
                                  " parent references");
    }
  }

  // Computed cache: valid entries must name live nodes (the cache is
  // flushed whenever GC reclaims or reordering moves anything).
  for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
    const CacheEntry& e = cache_[slot];
    if (!e.valid) continue;
    const std::uint32_t idx = Edge{e.result}.index();
    if (idx >= nodes_.size() || !inTable[idx]) {
      audit::fail("bdd-computed-cache",
                  "slot " + std::to_string(slot) +
                      " caches a reclaimed node " + std::to_string(idx));
    }
  }
}

bool BddManager::cacheLookup(std::uint64_t key1, std::uint64_t key2,
                             Edge* out) {
  ++stats_.cacheLookups;
  // 4-way set-associative probe: direct mapping alone thrashes badly on the
  // bit-sliced gate workload (many long-lived, rarely-repeated triples mixed
  // with hot ones).
  const std::uint64_t base = hashCombine(key1, key2) & cacheMask_ & ~3ull;
  for (unsigned way = 0; way < 4; ++way) {
    const CacheEntry& e = cache_[base + way];
    if (e.valid && e.key1 == key1 && e.key2 == key2) {
      ++stats_.cacheHits;
      *out = Edge{e.result};
      return true;
    }
  }
  return false;
}

void BddManager::cacheInsert(std::uint64_t key1, std::uint64_t key2,
                             Edge value) {
  const std::uint64_t base = hashCombine(key1, key2) & cacheMask_ & ~3ull;
  // Prefer an invalid slot; otherwise evict pseudo-randomly by key parity.
  std::uint64_t victim = base + (mix64(key1 + 0x9e37) & 3);
  for (unsigned way = 0; way < 4; ++way) {
    if (!cache_[base + way].valid) {
      victim = base + way;
      break;
    }
  }
  CacheEntry& e = cache_[victim];
  e.key1 = key1;
  e.key2 = key2;
  e.result = value.raw;
  e.valid = 1;
}

void BddManager::cacheClear() {
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
}

}  // namespace sliq::bdd
