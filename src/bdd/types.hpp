// Fundamental BDD types: edges with complement bits and resource errors.
//
// The package follows the classic ROBDD design with complement edges
// (Brace/Rudell/Bryant): an edge is a 32-bit word holding a node index and a
// complement bit. Canonical form: THEN-edges are never complemented, so each
// function and its negation share one node and negation is O(1).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sliq::bdd {

struct Edge {
  std::uint32_t raw = 1;  // default-constructed edge is the constant FALSE

  constexpr std::uint32_t index() const { return raw >> 1; }
  constexpr bool complemented() const { return (raw & 1u) != 0; }
  constexpr Edge operator!() const { return Edge{raw ^ 1u}; }
  constexpr bool operator==(const Edge&) const = default;

  static constexpr Edge make(std::uint32_t index, bool complement) {
    return Edge{(index << 1) | static_cast<std::uint32_t>(complement)};
  }
};

/// Constant functions live at node index 0 (the ONE terminal).
inline constexpr Edge kTrueEdge{0};
inline constexpr Edge kFalseEdge{1};

inline constexpr bool isConstant(Edge e) { return e.index() == 0; }

/// Thrown when the node limit configured on the manager is exceeded.
/// Benchmark harnesses map this to the paper's "MO" (memory out) outcome.
class NodeLimitError : public std::runtime_error {
 public:
  explicit NodeLimitError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace sliq::bdd
