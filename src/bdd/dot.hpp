// Graphviz (DOT) rendering of a BDD rooted at an edge.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bdd/types.hpp"

namespace sliq::bdd {

class BddManager;

/// Writes `root` as a DOT digraph. Dashed = ELSE edges; odot arrowheads mark
/// complemented edges. `varNames[v]`, when present, labels variable v.
void writeDot(const BddManager& mgr, Edge root, std::ostream& os,
              const std::vector<std::string>& varNames = {});

}  // namespace sliq::bdd
