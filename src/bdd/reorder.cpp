// Dynamic variable reordering by sifting (Rudell, ICCAD'93), the same
// heuristic family CUDD provides and the paper enables ("the implementation
// of [21] in CUDD was used").
//
// The key primitive is the in-place adjacent-level swap: every node keeps
// its identity (index) and function, so no external edge — handle or parent
// — ever needs rewriting. A node x at level l whose children involve the
// variable y at level l+1 is rewritten as a y-node over freshly built
// x-nodes; nodes without y in their cone simply get re-filed.
#include <algorithm>
#include <vector>

#include "bdd/manager.hpp"
#include "support/assert.hpp"

namespace sliq::bdd {

namespace {
constexpr std::uint32_t kNil = 0xffffffffu;
}

std::size_t BddManager::swapLevels(unsigned level) {
  SLIQ_ASSERT(level + 1 < subtables_.size());
  const unsigned x = levelToVar_[level];
  const unsigned y = levelToVar_[level + 1];

  // Detach every node at the two levels.
  auto detach = [&](Subtable& st) {
    std::vector<std::uint32_t> out;
    out.reserve(st.count);
    for (auto& head : st.buckets) {
      for (std::uint32_t idx = head; idx != kNil;) {
        const std::uint32_t next = nodes_[idx].next;
        out.push_back(idx);
        idx = next;
      }
      head = kNil;
    }
    st.count = 0;
    return out;
  };
  std::vector<std::uint32_t> xNodes = detach(subtables_[level]);
  std::vector<std::uint32_t> yNodes = detach(subtables_[level + 1]);

  // Swap the variable<->level maps first so makeNode files x at level+1.
  levelToVar_[level] = y;
  levelToVar_[level + 1] = x;
  varToLevel_[x] = level + 1;
  varToLevel_[y] = level;

  auto refile = [&](unsigned lvl, std::uint32_t idx) {
    Subtable& st = subtables_[lvl];
    Node& n = nodes_[idx];
    const std::uint64_t h = nodeHash(n.var, n.hi, n.lo) &
                            (st.buckets.size() - 1);
    n.next = st.buckets[h];
    st.buckets[h] = idx;
    ++st.count;
    if (st.count > st.buckets.size() * 4) growSubtable(st);
  };

  // All y nodes move to the upper level unchanged (their children are at
  // levels >= level+2, still strictly below).
  for (std::uint32_t idx : yNodes) refile(level, idx);

  // First pass: x nodes that do not depend on y keep their structure and
  // sink to level+1. They must be filed before the second pass so that the
  // rebuilt x-children can find them in the unique table.
  auto dependsOnY = [&](const Node& n) {
    return (!isConstant(n.hi) && nodes_[n.hi.index()].var == y) ||
           (!isConstant(n.lo) && nodes_[n.lo.index()].var == y);
  };
  for (std::uint32_t idx : xNodes) {
    if (!dependsOnY(nodes_[idx])) refile(level + 1, idx);
  }

  // Second pass: rewrite the interacting x nodes in place as y nodes.
  for (std::uint32_t idx : xNodes) {
    Node& n = nodes_[idx];
    if (!dependsOnY(n)) continue;
    const Edge f1 = n.hi;  // regular by canonicity
    const Edge f0 = n.lo;
    const bool hiIsY = !isConstant(f1) && nodes_[f1.index()].var == y;
    const bool loIsY = !isConstant(f0) && nodes_[f0.index()].var == y;
    const Edge f11 = hiIsY ? thenEdge(f1) : f1;
    const Edge f10 = hiIsY ? elseEdge(f1) : f1;
    const Edge f01 = loIsY ? thenEdge(f0) : f0;
    const Edge f00 = loIsY ? elseEdge(f0) : f0;
    // f11 is regular (THEN of a regular edge), so hi below stays regular.
    const Edge hi = makeNode(x, f11, f01);
    const Edge lo = makeNode(x, f10, f00);
    SLIQ_ASSERT(!hi.complemented());
    SLIQ_ASSERT(!(hi == lo));
    ref(hi);
    ref(lo);
    deref(f1);
    deref(f0);
    n.var = y;
    n.hi = hi;
    n.lo = lo;
    refile(level, idx);
  }

  // Reclaim nodes orphaned by the swap at the two touched levels so that
  // liveNodes_ is a faithful size metric for the sifting search. (Children
  // at deeper levels made dead by the cascade are left for the next full
  // GC; they do not affect relative comparisons during one sift pass.)
  for (unsigned lvl : {level, level + 1}) {
    Subtable& st = subtables_[lvl];
    for (auto& head : st.buckets) {
      std::uint32_t* link = &head;
      while (*link != kNil) {
        const std::uint32_t idx = *link;
        Node& n = nodes_[idx];
        if (n.ref == 0) {
          *link = n.next;
          deref(n.hi);
          deref(n.lo);
          n.next = freeList_;
          n.var = 0xfffffffeu;
          freeList_ = idx;
          --st.count;
          --liveNodes_;
        } else {
          link = &nodes_[idx].next;
        }
      }
    }
  }
  return liveNodes_;
}

void BddManager::siftVar(unsigned var, std::size_t limitGrowth) {
  const unsigned levels = static_cast<unsigned>(subtables_.size());
  if (levels < 2) return;
  const std::size_t startSize = liveNodes_;
  std::size_t bestSize = startSize;
  unsigned bestLevel = varToLevel_[var];

  // Phase 1: sift down to the bottom.
  while (varToLevel_[var] + 1 < levels) {
    const std::size_t size = swapLevels(varToLevel_[var]);
    if (size < bestSize) {
      bestSize = size;
      bestLevel = varToLevel_[var];
    }
    if (size > startSize + limitGrowth) break;
  }
  // Phase 2: sift up to the top.
  while (varToLevel_[var] > 0) {
    const std::size_t size = swapLevels(varToLevel_[var] - 1);
    if (size < bestSize) {
      bestSize = size;
      bestLevel = varToLevel_[var];
    }
    if (size > startSize + limitGrowth) break;
  }
  // Phase 3: return to the best observed position.
  while (varToLevel_[var] < bestLevel) swapLevels(varToLevel_[var]);
  while (varToLevel_[var] > bestLevel) swapLevels(varToLevel_[var] - 1);
}

long BddManager::reorderSift() {
  SLIQ_CHECK(!inOperation_, "reorder during an active operation");
  ++stats_.reorderings;
  // Collect dead nodes first so size measurements reflect live structure.
  garbageCollect();
  const long before = static_cast<long>(liveNodes_);

  // Sift variables in decreasing order of their level population.
  std::vector<unsigned> vars(varCount());
  for (unsigned v = 0; v < varCount(); ++v) vars[v] = v;
  std::sort(vars.begin(), vars.end(), [&](unsigned a, unsigned b) {
    return subtables_[varToLevel_[a]].count > subtables_[varToLevel_[b]].count;
  });
  const std::size_t growthLimit = std::max<std::size_t>(liveNodes_ / 5, 1024);
  for (unsigned v : vars) {
    siftVar(v, growthLimit);
    // Collect cascade-orphaned nodes so each sift starts from a clean count.
    garbageCollect();
  }

  cacheClear();
  garbageCollect();
  return before - static_cast<long>(liveNodes_);
}

}  // namespace sliq::bdd
